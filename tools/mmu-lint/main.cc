// mmu-lint CLI.
//
//   mmu-lint --root <repo> [--rules PREFIX[,PREFIX...]] [--fix-suggestions]
//   mmu-lint --list-rules
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error — so ctest and CI can
// tell "the tree is dirty" from "the linter could not run".

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "tools/mmu-lint/lint.h"

namespace {

int Usage(std::ostream& out, int code) {
  out << "usage: mmu-lint [--root DIR] [--rules PREFIX[,PREFIX...]] [--fix-suggestions]\n"
         "                [--baseline FILE]\n"
         "       mmu-lint --callgraph-dump dot|json [--root DIR]\n"
         "       mmu-lint --list-rules\n"
         "\n"
         "Checks the ppcmm tree against its architectural contracts: include-DAG\n"
         "layering, determinism of simulated state, hot-path purity, counter-name\n"
         "consistency, and the interprocedural flush/purity/SMP/attribution analyses\n"
         "over the src/ call graph. See DESIGN.md sections 12 and 16.\n"
         "\n"
         "  --root DIR          repo root to scan (default: current directory)\n"
         "  --rules PREFIXES    only run rules whose ID starts with a prefix,\n"
         "                      e.g. --rules LAYER or --rules DET-RAND,DET-TIME\n"
         "  --fix-suggestions   print a one-line suggested fix under each diagnostic\n"
         "  --baseline FILE     accepted-findings file (`RULE-ID <file>  # reason` lines);\n"
         "                      default: <root>/tools/mmu-lint/baseline.txt when present.\n"
         "                      Stale entries are errors.\n"
         "  --callgraph-dump F  print the src/ call graph as dot or json and exit\n"
         "  --list-rules        print every rule ID with its description and exit\n"
         "\n"
         "Suppress a diagnostic with a comment on the same or previous line:\n"
         "  // mmu-lint-allow(DET-ITER-012): order provably cannot reach simulated state\n"
         "Function-level contract annotations (reason required):\n"
         "  // mmu-lint-deferred-flush(FLUSH-CONTRACT-029): <where the flush happens>\n"
         "  // mmu-lint-ambient(ATTR-COVER-032): <why this charge is user time>\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  mmulint::LintConfig config;
  config.root = ".";
  bool fix_suggestions = false;
  std::string callgraph_format;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    } else if (arg == "--list-rules") {
      for (const auto& [id, description] : mmulint::ListRules()) {
        std::cout << id << "  " << description << "\n";
      }
      return 0;
    } else if (arg == "--fix-suggestions") {
      fix_suggestions = true;
    } else if (arg == "--root" && i + 1 < argc) {
      config.root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      config.baseline_path = argv[++i];
    } else if (arg == "--callgraph-dump" && i + 1 < argc) {
      callgraph_format = argv[++i];
    } else if (arg == "--rules" && i + 1 < argc) {
      std::stringstream ss(argv[++i]);
      std::string prefix;
      while (std::getline(ss, prefix, ',')) {
        if (!prefix.empty()) {
          config.rule_prefixes.push_back(prefix);
        }
      }
    } else {
      std::cerr << "mmu-lint: unknown argument '" << arg << "'\n";
      return Usage(std::cerr, 2);
    }
  }

  if (!callgraph_format.empty()) {
    std::vector<std::string> errors;
    const std::string dump = mmulint::DumpCallGraph(config, callgraph_format, &errors);
    for (const std::string& error : errors) {
      std::cerr << "mmu-lint: error: " << error << "\n";
    }
    if (!errors.empty()) {
      return 2;
    }
    std::cout << dump;
    return 0;
  }

  const mmulint::LintResult result = mmulint::RunLint(config);
  for (const std::string& error : result.errors) {
    std::cerr << "mmu-lint: error: " << error << "\n";
  }
  if (!result.errors.empty()) {
    return 2;
  }
  for (const mmulint::Diagnostic& d : result.diagnostics) {
    std::cout << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message << "\n";
    if (fix_suggestions && !d.fix.empty()) {
      std::cout << "    fix: " << d.fix << "\n";
    }
  }
  std::cout << "mmu-lint: " << result.files_scanned << " file(s) scanned, "
            << result.diagnostics.size() << " violation(s)\n";
  return result.diagnostics.empty() ? 0 : 1;
}
