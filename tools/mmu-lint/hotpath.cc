// HOT-* checks: the registered hot-path function bodies stay allocation-, exception-,
// lock-, and I/O-free, and the pure-translation tier never dispatches into the PTE tree.
//
// Body extraction is token-level: find the function name, require `( ... )` then
// (optionally `const`/`noexcept`/`override`) a `{`, and brace-match. Call sites fail the
// `{` test (they end in `;`, `)`, `,` ...), so the same name used as a call is skipped.
// The check is non-transitive by design: it reads the tokens the author wrote in the
// listed body, and the boundary helpers those bodies call (Tlb::Insert, Rng) are the
// audited escape hatch — see DESIGN.md §12.

#include <string>
#include <vector>

#include "tools/mmu-lint/rules.h"

namespace mmulint {
namespace {

// [begin, end) byte range of `name`'s body in sf.code, or {npos, npos} if no definition of
// that name with a braced body exists in the file.
std::pair<size_t, size_t> FindBody(const SourceFile& sf, const std::string& name) {
  for (size_t pos : FindIdentifier(sf.code, name)) {
    size_t p = sf.code.find_first_not_of(" \t\n", pos + name.size());
    if (p == std::string::npos || sf.code[p] != '(') {
      continue;
    }
    p = MatchForward(sf.code, p, '(', ')');
    if (p == std::string::npos) {
      continue;
    }
    // Skip trailing qualifiers between the parameter list and the body.
    for (;;) {
      p = sf.code.find_first_not_of(" \t\n", p);
      if (p == std::string::npos) {
        break;
      }
      bool skipped = false;
      for (const char* qual : {"const", "noexcept", "override", "final"}) {
        const std::string q(qual);
        if (sf.code.compare(p, q.size(), q) == 0) {
          p += q.size();
          skipped = true;
          break;
        }
      }
      if (!skipped) {
        break;
      }
    }
    if (p == std::string::npos || sf.code[p] != '{') {
      continue;  // declaration or call site, not a definition
    }
    const size_t end = MatchForward(sf.code, p, '{', '}');
    if (end == std::string::npos) {
      continue;
    }
    return {p, end};
  }
  return {std::string::npos, std::string::npos};
}

void CheckBody(const LintConfig& config, const SourceFile& sf, const HotFunction& fn,
               size_t begin, size_t end, std::vector<Diagnostic>* out) {
  const std::string body = sf.code.substr(begin, end - begin);
  const std::string label = fn.qualifier + "::" + fn.name;
  for (const BannedIdent& ban : HotPathBans()) {
    if (!RuleEnabled(config, ban.id)) {
      continue;
    }
    for (size_t pos : FindIdentifier(body, ban.ident)) {
      Emit(sf, LineOf(sf.code, begin + pos), ban.id,
           ban.ident + " in hot-path function " + label + ": " + ban.why, ban.fix, out);
    }
  }
  if (RuleEnabled(config, "HOT-VIRT-024")) {
    for (const std::string& ident : fn.banned_virtual) {
      for (size_t pos : FindIdentifier(body, ident)) {
        Emit(sf, LineOf(sf.code, begin + pos), "HOT-VIRT-024",
             label + " calls " + ident +
                 ": the pure-translation tier must not dispatch into the PTE tree "
                 "(only the reload tier may walk it)",
             "move the walk into Mmu::Reload/SoftwareRefill and consume its PteWalkInfo here",
             out);
      }
    }
  }
}

}  // namespace

void CheckHotPaths(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out) {
  // HOT-ATTR-026: whole-file scan of the attribution-free hot headers. Unlike the body
  // checks below this is not scoped to registered functions — a ledger reference anywhere
  // in one of these headers (member, friend, helper) defeats the CycleScope contract.
  for (const std::string& header : AttrCleanHeaders()) {
    auto it = tree.files.find(header);
    if (it == tree.files.end()) {
      continue;  // fixtures carry partial trees; absence is fine
    }
    const SourceFile& sf = it->second;
    for (const BannedIdent& ban : AttrBans()) {
      if (!RuleEnabled(config, ban.id)) {
        continue;
      }
      for (size_t pos : FindIdentifier(sf.code, ban.ident)) {
        Emit(sf, LineOf(sf.code, pos), ban.id,
             ban.ident + " in hot header " + header + ": " + ban.why, ban.fix, out);
      }
    }
  }

  for (const HotFunction& fn : HotFunctions()) {
    auto it = tree.files.find(fn.file);
    const std::string label = fn.qualifier + "::" + fn.name;
    if (it == tree.files.end()) {
      if (RuleEnabled(config, "HOT-MISSING-025")) {
        out->push_back({fn.file, 1, "HOT-MISSING-025",
                        "hot-path rule table lists " + label + " in " + fn.file +
                            ", but the file is not in the tree",
                        "update HotFunctions() in tools/mmu-lint/rules.cc to the new location"});
      }
      continue;
    }
    const auto [begin, end] = FindBody(it->second, fn.name);
    if (begin == std::string::npos) {
      if (RuleEnabled(config, "HOT-MISSING-025")) {
        out->push_back({fn.file, 1, "HOT-MISSING-025",
                        "hot-path rule table lists " + label +
                            ", but no definition with a body was found in " + fn.file,
                        "update HotFunctions() in tools/mmu-lint/rules.cc to the new location"});
      }
      continue;
    }
    CheckBody(config, it->second, fn, begin, end, out);
  }

  // SPAN-GEN-027: the registered span-validity bodies must derive validity from
  // generation counters alone — no wall-clock reads, no pointer identity smuggled in
  // through casts. Missing bodies rot the table exactly like hot functions, so they fall
  // under HOT-MISSING-025 too.
  for (const HotFunction& fn : SpanValidityFunctions()) {
    const std::string label = fn.qualifier + "::" + fn.name;
    auto it = tree.files.find(fn.file);
    const auto [begin, end] =
        it != tree.files.end()
            ? FindBody(it->second, fn.name)
            : std::pair<size_t, size_t>{std::string::npos, std::string::npos};
    if (begin == std::string::npos) {
      if (RuleEnabled(config, "HOT-MISSING-025")) {
        out->push_back(
            {fn.file, 1, "HOT-MISSING-025",
             "span-validity rule table lists " + label +
                 ", but no definition with a body was found in " + fn.file,
             "update SpanValidityFunctions() in tools/mmu-lint/rules.cc to the new location"});
      }
      continue;
    }
    const SourceFile& sf = it->second;
    const std::string body = sf.code.substr(begin, end - begin);
    for (const BannedIdent& ban : SpanValidityBans()) {
      if (!RuleEnabled(config, ban.id)) {
        continue;
      }
      for (size_t pos : FindIdentifier(body, ban.ident)) {
        Emit(sf, LineOf(sf.code, begin + pos), ban.id,
             ban.ident + " in span-validity function " + label + ": " + ban.why, ban.fix,
             out);
      }
    }
  }
}

}  // namespace mmulint
