// LAYER-* checks: the include DAG, oracle independence, and hot-header hygiene.

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/mmu-lint/rules.h"

namespace mmulint {
namespace {

// Layer a path belongs to, or nullptr for unlayered files (tests/, bench/, tools/, ...).
const Layer* LayerOf(const std::string& path) {
  for (const Layer& layer : Layers()) {
    if (path.compare(0, layer.prefix.size(), layer.prefix) == 0) {
      return &layer;
    }
  }
  return nullptr;
}

void CheckDag(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out) {
  if (!RuleEnabled(config, "LAYER-DAG-001")) {
    return;
  }
  for (const auto& [path, sf] : tree.files) {
    const Layer* self = LayerOf(path);
    if (self == nullptr) {
      continue;  // tests/bench/examples/tools may include anything
    }
    for (const Include& inc : sf.includes) {
      const Layer* target = LayerOf(inc.target);
      if (target == nullptr || target == self || target->rank < self->rank) {
        continue;  // non-layered target, same layer, or a downward edge: all fine
      }
      const char* shape = target->rank == self->rank ? "its peer layer" : "the higher layer";
      Emit(sf, inc.line, "LAYER-DAG-001",
           "\"" + inc.target + "\" pulls " + shape + " " + target->prefix + " into " +
               self->prefix + " (layer order: sim < mmu|pagetable < kernel < core < obs < "
               "workloads < verify)",
           "invert the dependency: move the shared type down into " +
               (self->rank <= target->rank ? std::string("src/sim/") : self->prefix) +
               " or route the call through an interface owned by the lower layer",
           out);
    }
  }
}

// Breadth-first include closure from `root`, recording the first parent of each file so a
// violation can show the chain that dragged the forbidden header in.
void CheckClosure(const ClosureRule& rule, const Tree& tree, std::vector<Diagnostic>* out) {
  for (const std::string& root : rule.roots) {
    auto root_it = tree.files.find(root);
    if (root_it == tree.files.end()) {
      continue;  // reported separately by the driver as a config error
    }
    std::map<std::string, std::string> parent;  // file -> includer
    std::deque<std::string> queue = {root};
    std::set<std::string> seen = {root};
    while (!queue.empty()) {
      const std::string cur = queue.front();
      queue.pop_front();
      auto it = tree.files.find(cur);
      if (it == tree.files.end()) {
        continue;  // include of a file outside the scanned tree: nothing more to follow
      }
      for (const Include& inc : it->second.includes) {
        for (const std::string& bad : rule.forbidden) {
          if (inc.target.compare(0, bad.size(), bad) == 0) {
            std::string chain = root;
            // Reconstruct root -> ... -> cur for the message.
            std::vector<std::string> hops;
            for (std::string hop = cur; hop != root; hop = parent[hop]) {
              hops.push_back(hop);
            }
            for (auto h = hops.rbegin(); h != hops.rend(); ++h) {
              chain += " -> " + *h;
            }
            Emit(it->second, inc.line, rule.id,
                 "\"" + inc.target + "\" puts " + bad + " in the include closure of " + root +
                     " (via " + chain + "): " + rule.why,
                 "depend on the src/sim/ abstraction instead, or move the shared type down",
                 out);
          }
        }
        if (seen.insert(inc.target).second) {
          parent[inc.target] = cur;
          queue.push_back(inc.target);
        }
      }
    }
  }
}

}  // namespace

void CheckLayering(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out) {
  CheckDag(config, tree, out);
  for (const ClosureRule& rule : ClosureRules()) {
    if (RuleEnabled(config, rule.id)) {
      CheckClosure(rule, tree, out);
    }
  }
}

}  // namespace mmulint
