// mmu-lint: project-specific static analysis for the ppcmm simulator.
//
// Five rule families, all driven by the declarative tables in rules.cc:
//
//   LAYER-*  include-DAG layering (sim < mmu/pagetable < kernel < core < obs < workloads
//            < verify), fuzz-oracle independence, hot-path headers free of src/obs
//   DET-*    no nondeterminism sources in simulated state (rand, wall clocks,
//            unordered-container iteration)
//   HOT-*    listed hot-path function bodies free of allocation, throw, locks, stream I/O,
//            and PTE-tree virtual dispatch
//   SMP-*    cross-CPU TLB mutation confined to the IPI shootdown path in
//            src/kernel/flush.cc (anything else edits a remote TLB for free)
//   CNT-*    HwCounters X-macro list consistent with MetricsRegistry dotted names and the
//            hw./sys./lat. references in docs and tests
//
// The checker is token/preprocessor-level on purpose: it needs no compiler, runs in
// milliseconds as a tier-1 ctest, and the invariants it enforces are all visible at that
// level. See DESIGN.md §12 for the contract behind each rule.

#ifndef PPCMM_TOOLS_MMU_LINT_LINT_H_
#define PPCMM_TOOLS_MMU_LINT_LINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mmulint {

struct Diagnostic {
  std::string file;   // root-relative path
  uint32_t line = 0;  // 1-based
  std::string rule;   // e.g. "LAYER-DAG-001"
  std::string message;
  std::string fix;  // one-line suggestion, shown under --fix-suggestions

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

struct LintConfig {
  std::string root;                     // repo root (absolute or relative)
  std::vector<std::string> rule_prefixes;  // empty = all rules; else keep rules matching any prefix
  // Baseline of accepted pre-existing findings, one per line: `RULE-ID <file>  # reason`.
  // Matching diagnostics are dropped; an entry matching nothing is stale and becomes an
  // error. Empty: auto-loads <root>/tools/mmu-lint/baseline.txt when present.
  std::string baseline_path;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // sorted by (file, line, rule)
  std::vector<std::string> errors;      // I/O or config problems (exit code 2)
  uint32_t files_scanned = 0;
};

// Runs every enabled rule family over the tree under config.root.
LintResult RunLint(const LintConfig& config);

// Builds the src/ call graph under config.root and serializes it. `format` is "dot" or
// "json" (--callgraph-dump); anything else, or an unreadable tree, appends to *errors and
// returns an empty string.
std::string DumpCallGraph(const LintConfig& config, const std::string& format,
                          std::vector<std::string>* errors);

// All known rule IDs with their one-line descriptions, for --list-rules.
std::vector<std::pair<std::string, std::string>> ListRules();

bool RuleEnabled(const LintConfig& config, const std::string& rule_id);

}  // namespace mmulint

#endif  // PPCMM_TOOLS_MMU_LINT_LINT_H_
