#include "tools/mmu-lint/source.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace mmulint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Blanks [begin, end) with spaces, preserving newlines so line numbers survive.
void Blank(std::string& text, size_t begin, size_t end) {
  for (size_t i = begin; i < end && i < text.size(); ++i) {
    if (text[i] != '\n') {
      text[i] = ' ';
    }
  }
}

// One pass over `raw` producing both stripped views. A hand-rolled state machine is enough
// here: the tree doesn't use raw strings or trigraphs, and mmu-lint must stay dependency-free.
void Strip(const std::string& raw, std::string* code, std::string* code_with_strings) {
  *code = raw;
  *code_with_strings = raw;
  enum class State { kNormal, kLineComment, kBlockComment, kString, kChar };
  State state = State::kNormal;
  size_t token_start = 0;
  for (size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
    switch (state) {
      case State::kNormal:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          token_start = i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          token_start = i;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          token_start = i + 1;
        } else if (c == '\'') {
          state = State::kChar;
          token_start = i + 1;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          Blank(*code, token_start, i);
          Blank(*code_with_strings, token_start, i);
          state = State::kNormal;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          Blank(*code, token_start, i + 2);
          Blank(*code_with_strings, token_start, i + 2);
          ++i;
          state = State::kNormal;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"' || c == '\n') {  // unterminated-at-newline: bail out of the state
          Blank(*code, token_start, i);
          state = State::kNormal;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'' || c == '\n') {
          Blank(*code, token_start, i);
          state = State::kNormal;
        }
        break;
    }
  }
  if (state == State::kLineComment) {
    Blank(*code, token_start, raw.size());
    Blank(*code_with_strings, token_start, raw.size());
  }
}

// Parses `mmu-lint-allow(ID, ID)` markers out of the raw text (they live in comments, so
// the stripped views can't see them).
void ParseSuppressions(const std::string& raw, std::map<uint32_t, std::set<std::string>>* allow) {
  static const std::string kMarker = "mmu-lint-allow(";
  size_t pos = 0;
  while ((pos = raw.find(kMarker, pos)) != std::string::npos) {
    const size_t open = pos + kMarker.size() - 1;
    const size_t close = raw.find(')', open);
    if (close == std::string::npos) {
      break;
    }
    const uint32_t line = LineOf(raw, pos);
    std::string list = raw.substr(open + 1, close - open - 1);
    std::stringstream ss(list);
    std::string id;
    while (std::getline(ss, id, ',')) {
      const size_t b = id.find_first_not_of(" \t");
      const size_t e = id.find_last_not_of(" \t");
      if (b != std::string::npos) {
        (*allow)[line].insert(id.substr(b, e - b + 1));
      }
    }
    pos = close;
  }
}

// Parses `mmu-lint-<marker>(RULE-ID): reason` annotations out of the raw text. The reason
// runs to end of line, trimmed; missing-or-empty reasons are kept as empty strings so the
// checks can flag them instead of silently honouring a bare annotation.
void ParseAnnotations(const std::string& raw, const std::string& marker,
                      std::vector<SourceFile::Annotation>* out) {
  const std::string prefix = "mmu-lint-" + marker + "(";
  size_t pos = 0;
  while ((pos = raw.find(prefix, pos)) != std::string::npos) {
    const size_t open = pos + prefix.size() - 1;
    const size_t close = raw.find(')', open);
    if (close == std::string::npos) {
      break;
    }
    SourceFile::Annotation ann;
    ann.line = LineOf(raw, pos);
    ann.pos = pos;
    ann.rule = raw.substr(open + 1, close - open - 1);
    size_t r = close + 1;
    if (r < raw.size() && raw[r] == ':') {
      ++r;
    }
    size_t eol = raw.find('\n', r);
    if (eol == std::string::npos) {
      eol = raw.size();
    }
    std::string reason = raw.substr(r, eol - r);
    const size_t b = reason.find_first_not_of(" \t");
    const size_t e = reason.find_last_not_of(" \t");
    ann.reason = b == std::string::npos ? "" : reason.substr(b, e - b + 1);
    out->push_back(ann);
    pos = close;
  }
}

void ParseIncludes(const SourceFile& sf, std::vector<Include>* includes) {
  size_t pos = 0;
  const std::string& text = sf.code_with_strings;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    size_t p = pos;
    while (p < eol && (text[p] == ' ' || text[p] == '\t')) {
      ++p;
    }
    if (p < eol && text[p] == '#') {
      ++p;
      while (p < eol && (text[p] == ' ' || text[p] == '\t')) {
        ++p;
      }
      if (text.compare(p, 7, "include") == 0) {
        const size_t q1 = text.find('"', p);
        if (q1 != std::string::npos && q1 < eol) {
          const size_t q2 = text.find('"', q1 + 1);
          if (q2 != std::string::npos && q2 < eol) {
            includes->push_back(
                {text.substr(q1 + 1, q2 - q1 - 1), LineOf(text, pos)});
          }
        }
      }
    }
    pos = eol + 1;
  }
}

}  // namespace

bool SourceFile::Suppressed(uint32_t line, const std::string& rule) const {
  for (uint32_t l : {line, line > 0 ? line - 1 : 0}) {
    auto it = allow.find(l);
    if (it != allow.end() && (it->second.count(rule) != 0 || it->second.count("*") != 0)) {
      return true;
    }
  }
  return false;
}

const SourceFile::Annotation* SourceFile::AnnotationIn(const std::vector<Annotation>& list,
                                                       size_t begin, size_t end,
                                                       const std::string& rule) {
  for (const Annotation& ann : list) {
    if (ann.pos >= begin && ann.pos < end && ann.rule == rule) {
      return &ann;
    }
  }
  return nullptr;
}

bool LoadSource(const std::string& fs_path, const std::string& rel_path, SourceFile* out,
                std::string* error) {
  std::ifstream in(fs_path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + fs_path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out->path = rel_path;
  out->raw = buf.str();
  Strip(out->raw, &out->code, &out->code_with_strings);
  ParseSuppressions(out->raw, &out->allow);
  ParseAnnotations(out->raw, "deferred-flush", &out->deferred_flush);
  ParseAnnotations(out->raw, "ambient", &out->ambient);
  ParseIncludes(*out, &out->includes);
  return true;
}

uint32_t LineOf(const std::string& text, size_t pos) {
  uint32_t line = 1;
  for (size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
    }
  }
  return line;
}

std::vector<size_t> FindIdentifier(const std::string& text, const std::string& ident) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = text.find(ident, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + ident.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) {
      hits.push_back(pos);
    }
    pos = end;
  }
  return hits;
}

size_t MatchForward(const std::string& text, size_t open_pos, char open, char close) {
  int depth = 0;
  for (size_t i = open_pos; i < text.size(); ++i) {
    if (text[i] == open) {
      ++depth;
    } else if (text[i] == close) {
      --depth;
      if (depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string::npos;
}

}  // namespace mmulint
