// CNT-* checks: the HwCounters X-macro list is the single source of truth for counter
// names; everything that spells a dotted metric name (string literals in code, docs in
// markdown) must agree with it, and MetricsRegistry must publish through ForEachField so
// it cannot drift.

#include <set>
#include <string>
#include <vector>

#include "tools/mmu-lint/rules.h"

namespace mmulint {
namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

// Field names from one backslash-continued X-macro definition in hw_counters.h.
std::set<std::string> ParseXMacro(const SourceFile& sf, const std::string& macro) {
  std::set<std::string> fields;
  const size_t def = sf.code.find("#define " + macro);
  if (def == std::string::npos) {
    return fields;
  }
  // The definition spans every backslash-continued line after the #define.
  size_t end = def;
  for (;;) {
    size_t eol = sf.code.find('\n', end);
    if (eol == std::string::npos) {
      end = sf.code.size();
      break;
    }
    size_t last = eol;
    while (last > end && (sf.code[last - 1] == ' ' || sf.code[last - 1] == '\t' ||
                          sf.code[last - 1] == '\r')) {
      --last;
    }
    if (last == end || sf.code[last - 1] != '\\') {
      end = eol;
      break;
    }
    end = eol + 1;
  }
  const std::string body = sf.code.substr(def, end - def);
  for (size_t pos : FindIdentifier(body, "X")) {
    const size_t open = pos + 1;
    if (open >= body.size() || body[open] != '(') {
      continue;
    }
    size_t p = body.find_first_not_of(" \t\n", open + 1);
    size_t q = p;
    while (q != std::string::npos && q < body.size() && IsIdentChar(body[q])) {
      ++q;
    }
    if (p != std::string::npos && q > p) {
      fields.insert(body.substr(p, q - p));
    }
  }
  return fields;
}

// String-literal contents of `sf` with their byte offsets: the spans that are blanked in
// `code` but not in `code_with_strings` (comments are blanked in both, so only literals
// differ between the views).
std::vector<std::pair<std::string, size_t>> Literals(const SourceFile& sf) {
  std::vector<std::pair<std::string, size_t>> out;
  const std::string& a = sf.code;
  const std::string& b = sf.code_with_strings;
  size_t i = 0;
  while (i < a.size()) {
    if (a[i] == ' ' && b[i] != ' ' && b[i] != '\n') {
      const size_t start = i;
      std::string text;
      // Same condition as the entry test, so this consumes at least one byte. Spaces and
      // escaped quotes split a literal into pieces; dotted metric names contain neither.
      while (i < a.size() && a[i] == ' ' && b[i] != ' ' && b[i] != '\n') {
        text += b[i];
        ++i;
      }
      out.emplace_back(text, start);
    } else {
      ++i;
    }
  }
  return out;
}

struct NameSets {
  std::set<std::string> hw;      // counters + gauges from the X-macros
  std::set<std::string> probes;  // latency probe names from probes.cc
};

// One dotted reference found in text: prefix family + the identifiers after it.
struct Reference {
  size_t pos;          // offset of the family prefix in the scanned text
  std::string first;   // identifier after "hw." / "sys." / "lat."
  std::string second;  // identifier after a second dot ("" if none)
};

std::vector<Reference> FindReferences(const std::string& text, const std::string& family) {
  std::vector<Reference> refs;
  size_t pos = 0;
  while ((pos = text.find(family, pos)) != std::string::npos) {
    const size_t start = pos;
    pos += family.size();
    if (start > 0 && (IsIdentChar(text[start - 1]) || text[start - 1] == '.')) {
      continue;  // tail of a longer name, e.g. "task.obs." or "xhw."
    }
    size_t p = start + family.size();
    size_t q = p;
    while (q < text.size() && IsIdentChar(text[q])) {
      ++q;
    }
    if (q == p) {
      continue;  // bare "hw." prefix used for concatenation — not a full name
    }
    if (q < text.size() && text[q] == '(') {
      continue;  // a call like sys.kernel() in prose, not a metric name
    }
    Reference ref{start, text.substr(p, q - p), ""};
    if (q + 1 < text.size() && text[q] == '.' && IsIdentChar(text[q + 1])) {
      size_t r = q + 1;
      while (r < text.size() && IsIdentChar(text[r])) {
        ++r;
      }
      if (!(r < text.size() && text[r] == '(')) {
        ref.second = text.substr(q + 1, r - q - 1);
      }
    }
    refs.push_back(ref);
  }
  return refs;
}

void CheckReferencesIn(const LintConfig& config, const SourceFile& sf, const std::string& text,
                       size_t base_offset, const NameSets& names,
                       std::vector<Diagnostic>* out) {
  static const std::set<std::string> kLatStats = {"count", "p50", "p95", "p99", "max", "mean"};
  if (RuleEnabled(config, "CNT-REF-030")) {
    for (const Reference& ref : FindReferences(text, "hw.")) {
      if (names.hw.count(ref.first) == 0) {
        Emit(sf, LineOf(sf.raw, base_offset + ref.pos), "CNT-REF-030",
             "hw." + ref.first + " is not a HwCounters field",
             "add it to PPCMM_HW_COUNTER_FIELDS/PPCMM_HW_GAUGE_FIELDS in src/sim/hw_counters.h "
             "or fix the reference",
             out);
      }
    }
  }
  if (RuleEnabled(config, "CNT-SYS-034")) {
    for (const Reference& ref : FindReferences(text, "sys.")) {
      bool known = false;
      for (const std::string& name : SysGaugeNames()) {
        known = known || name == ref.first;
      }
      if (!known) {
        Emit(sf, LineOf(sf.raw, base_offset + ref.pos), "CNT-SYS-034",
             "sys." + ref.first + " is not a published system gauge",
             "add it to SysGaugeNames() in tools/mmu-lint/rules.cc and to "
             "MetricsRegistry::Snapshot, or fix the reference",
             out);
      }
    }
  }
  if (RuleEnabled(config, "CNT-LAT-032")) {
    for (const Reference& ref : FindReferences(text, "lat.")) {
      const std::string full =
          "lat." + ref.first + (ref.second.empty() ? "" : "." + ref.second);
      bool known = false;
      for (const std::string& name : LatSpecialNames()) {
        known = known || name == full || name == full + "." ||
                name.compare(0, full.size(), full) == 0;
      }
      if (!known && names.probes.count(ref.first) != 0) {
        known = ref.second.empty() || kLatStats.count(ref.second) != 0;
      }
      if (!known) {
        Emit(sf, LineOf(sf.raw, base_offset + ref.pos), "CNT-LAT-032",
             full + " names no latency probe metric (probes come from LatencyProbeName in "
             "src/sim/probes.cc; stats are count/p50/p95/p99/max/mean)",
             "fix the probe or stat name, or register the new probe in probes.cc",
             out);
      }
    }
  }
}

}  // namespace

void CheckCounters(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out) {
  const CounterPaths paths;
  NameSets names;

  auto hw_it = tree.files.find(paths.hw_counters_h);
  if (hw_it == tree.files.end()) {
    if (RuleEnabled(config, "CNT-XMACRO-033")) {
      out->push_back({paths.hw_counters_h, 1, "CNT-XMACRO-033",
                      "src/sim/hw_counters.h not found: the counter name source of truth is "
                      "gone, so no hw./sys./lat. reference can be validated",
                      "restore the X-macro field lists (or update CounterPaths in "
                      "tools/mmu-lint/rules.h if the file moved)"});
    }
    return;
  }
  const std::set<std::string> counters = ParseXMacro(hw_it->second, "PPCMM_HW_COUNTER_FIELDS");
  const std::set<std::string> gauges = ParseXMacro(hw_it->second, "PPCMM_HW_GAUGE_FIELDS");
  if (RuleEnabled(config, "CNT-XMACRO-033") && (counters.empty() || gauges.empty())) {
    out->push_back({paths.hw_counters_h, 1, "CNT-XMACRO-033",
                    "failed to parse a non-empty field list out of PPCMM_HW_COUNTER_FIELDS/"
                    "PPCMM_HW_GAUGE_FIELDS",
                    "keep the X-macro lists in the backslash-continued X(name, comment) shape"});
    return;
  }
  names.hw = counters;
  names.hw.insert(gauges.begin(), gauges.end());

  auto probes_it = tree.files.find(paths.probes_cc);
  if (probes_it != tree.files.end()) {
    for (const auto& [text, pos] : Literals(probes_it->second)) {
      bool ident_shaped = !text.empty();
      for (char c : text) {
        ident_shaped = ident_shaped && IsIdentChar(c);
      }
      if (ident_shaped && text != "?") {
        names.probes.insert(text);
      }
    }
  }

  // MetricsRegistry must publish through the X-macro visitor, and its sys.* literals must
  // match the rule table in both directions.
  auto metrics_it = tree.files.find(paths.metrics_cc);
  if (metrics_it != tree.files.end()) {
    const SourceFile& metrics = metrics_it->second;
    if (RuleEnabled(config, "CNT-FOREACH-031")) {
      const bool uses_visitor = !FindIdentifier(metrics.code, "ForEachField").empty();
      if (!uses_visitor) {
        Emit(metrics, 1, "CNT-FOREACH-031",
             "MetricsRegistry no longer publishes hw counters via HwCounters::ForEachField — "
             "a hand-maintained name list will silently drift from the X-macro",
             "iterate hw.ForEachField and build names as \"hw.\" + field", out);
      }
    }
    if (RuleEnabled(config, "CNT-SYS-034")) {
      std::set<std::string> published;
      for (const auto& [text, pos] : Literals(metrics)) {
        if (text.compare(0, 4, "sys.") == 0 && text.size() > 4) {
          published.insert(text.substr(4));
        }
      }
      for (const std::string& name : SysGaugeNames()) {
        if (published.count(name) == 0) {
          Emit(metrics, 1, "CNT-SYS-034",
               "sys." + name + " is in the mmu-lint gauge table but MetricsRegistry::Snapshot "
               "never publishes it",
               "publish the gauge or remove it from SysGaugeNames() in tools/mmu-lint/rules.cc",
               out);
        }
      }
      for (const std::string& name : published) {
        bool known = false;
        for (const std::string& t : SysGaugeNames()) {
          known = known || t == name;
        }
        if (!known) {
          Emit(metrics, 1, "CNT-SYS-034",
               "MetricsRegistry publishes sys." + name + " but the mmu-lint gauge table does "
               "not know it — docs referencing it would lint clean or dirty at random",
               "add it to SysGaugeNames() in tools/mmu-lint/rules.cc", out);
        }
      }
    }
  }

  // References: string literals in every scanned source file, plus the markdown docs.
  for (const auto& [path, sf] : tree.files) {
    if (path == paths.metrics_cc || path == paths.hw_counters_h) {
      continue;  // the producers themselves assemble names from parts; checked above
    }
    for (const auto& [text, pos] : Literals(sf)) {
      CheckReferencesIn(config, sf, text, pos, names, out);
    }
  }
  for (const auto& [path, sf] : tree.markdown) {
    CheckReferencesIn(config, sf, sf.raw, 0, names, out);
  }
}

}  // namespace mmulint
