// Tree walking and rule-family dispatch.

#include "tools/mmu-lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/mmu-lint/callgraph.h"
#include "tools/mmu-lint/rules.h"
#include "tools/mmu-lint/source.h"

namespace mmulint {
namespace {

namespace fs = std::filesystem;

// Source roots. tools/ is deliberately not scanned: the rule tables spell the banned
// names, and the fixture corpus under tools/mmu-lint/fixtures must only be linted when a
// test points --root at it directly.
constexpr const char* kSourceDirs[] = {"src", "tests", "bench", "examples"};
// Docs whose hw./sys./lat. references the counter rules validate. SNIPPETS.md is excluded
// on purpose — it quotes third-party exemplar code verbatim.
constexpr const char* kMarkdownFiles[] = {"EXPERIMENTS.md", "README.md", "DESIGN.md"};

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

void LoadTree(const LintConfig& config, Tree* tree, LintResult* result) {
  tree->root = config.root;
  const fs::path root(config.root);
  for (const char* dir : kSourceDirs) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      continue;  // fixture trees routinely have only some of the roots
    }
    for (fs::recursive_directory_iterator it(base, ec), end; it != end; it.increment(ec)) {
      if (ec) {
        result->errors.push_back("walk failed under " + base.string() + ": " + ec.message());
        break;
      }
      if (!it->is_regular_file() || !IsSourceFile(it->path())) {
        continue;
      }
      const std::string rel = fs::relative(it->path(), root).generic_string();
      SourceFile sf;
      std::string error;
      if (!LoadSource(it->path().string(), rel, &sf, &error)) {
        result->errors.push_back(error);
        continue;
      }
      tree->files.emplace(rel, std::move(sf));
      ++result->files_scanned;
    }
  }
  for (const char* name : kMarkdownFiles) {
    const fs::path p = root / name;
    std::error_code ec;
    if (!fs::is_regular_file(p, ec)) {
      continue;
    }
    SourceFile sf;
    std::string error;
    if (!LoadSource(p.string(), name, &sf, &error)) {
      result->errors.push_back(error);
      continue;
    }
    tree->markdown.emplace(name, std::move(sf));
    ++result->files_scanned;
  }
}

// The closure rules and hot-function table name specific files; if the real tree no longer
// has them, the rule tables have rotted and the run must not quietly pass. Fixture trees
// opt out by running with a --rules filter that skips the family.
void CheckRuleTableRoots(const LintConfig& config, const Tree& tree, LintResult* result) {
  for (const ClosureRule& rule : ClosureRules()) {
    if (!RuleEnabled(config, rule.id)) {
      continue;
    }
    for (const std::string& root : rule.roots) {
      if (tree.files.find(root) == tree.files.end()) {
        result->errors.push_back(rule.id + " root " + root +
                                 " is missing from the tree: update ClosureRules() in "
                                 "tools/mmu-lint/rules.cc");
      }
    }
  }
}

// Drops diagnostics matching baseline entries (`RULE-ID <file>  # reason` lines). A
// baselined finding that no longer fires is stale and turns into an error — the baseline
// may only shrink silently, never rot.
void ApplyBaseline(const LintConfig& config, LintResult* result) {
  const bool explicit_path = !config.baseline_path.empty();
  const std::string path =
      explicit_path ? config.baseline_path
                    : (fs::path(config.root) / "tools/mmu-lint/baseline.txt").string();
  std::ifstream in(path);
  if (!in) {
    if (explicit_path) {
      result->errors.push_back("cannot open baseline file " + path);
    }
    return;  // no auto-baseline in this tree: nothing to subtract
  }
  struct Entry {
    std::string rule, file;
    uint32_t line_no;
    bool used = false;
  };
  std::vector<Entry> entries;
  std::string line;
  uint32_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream fields(line);
    Entry entry;
    entry.line_no = line_no;
    if (!(fields >> entry.rule >> entry.file)) {
      continue;  // blank or comment-only line
    }
    std::string extra;
    if (fields >> extra) {
      result->errors.push_back(path + ":" + std::to_string(line_no) +
                               ": malformed baseline entry (want `RULE-ID <file>  # reason`)");
      continue;
    }
    entries.push_back(entry);
  }
  std::vector<Diagnostic> kept;
  for (const Diagnostic& d : result->diagnostics) {
    bool matched = false;
    for (Entry& entry : entries) {
      if (entry.rule == d.rule && entry.file == d.file) {
        entry.used = true;
        matched = true;
      }
    }
    if (!matched) {
      kept.push_back(d);
    }
  }
  result->diagnostics = std::move(kept);
  for (const Entry& entry : entries) {
    if (!entry.used) {
      result->errors.push_back(path + ":" + std::to_string(entry.line_no) +
                               ": stale baseline entry `" + entry.rule + " " + entry.file +
                               "`: no such finding anymore — delete the line");
    }
  }
}

}  // namespace

LintResult RunLint(const LintConfig& config) {
  LintResult result;
  Tree tree;
  LoadTree(config, &tree, &result);
  if (!result.errors.empty()) {
    return result;
  }
  CheckRuleTableRoots(config, tree, &result);
  CheckLayering(config, tree, &result.diagnostics);
  CheckDeterminism(config, tree, &result.diagnostics);
  CheckHotPaths(config, tree, &result.diagnostics);
  CheckSmp(config, tree, &result.diagnostics);
  CheckCounters(config, tree, &result.diagnostics);
  const CallGraph graph = BuildCallGraph(tree);
  CheckGraphRules(config, tree, graph, &result);
  std::sort(result.diagnostics.begin(), result.diagnostics.end());
  ApplyBaseline(config, &result);
  return result;
}

std::string DumpCallGraph(const LintConfig& config, const std::string& format,
                          std::vector<std::string>* errors) {
  if (format != "dot" && format != "json") {
    errors->push_back("unknown call-graph format '" + format + "' (want dot or json)");
    return std::string();
  }
  LintResult result;
  Tree tree;
  LoadTree(config, &tree, &result);
  if (!result.errors.empty()) {
    errors->insert(errors->end(), result.errors.begin(), result.errors.end());
    return std::string();
  }
  const CallGraph graph = BuildCallGraph(tree);
  return format == "dot" ? CallGraphToDot(graph) : CallGraphToJson(graph);
}

}  // namespace mmulint
