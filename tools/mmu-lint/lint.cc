// Tree walking and rule-family dispatch.

#include "tools/mmu-lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/mmu-lint/rules.h"
#include "tools/mmu-lint/source.h"

namespace mmulint {
namespace {

namespace fs = std::filesystem;

// Source roots. tools/ is deliberately not scanned: the rule tables spell the banned
// names, and the fixture corpus under tools/mmu-lint/fixtures must only be linted when a
// test points --root at it directly.
constexpr const char* kSourceDirs[] = {"src", "tests", "bench", "examples"};
// Docs whose hw./sys./lat. references the counter rules validate. SNIPPETS.md is excluded
// on purpose — it quotes third-party exemplar code verbatim.
constexpr const char* kMarkdownFiles[] = {"EXPERIMENTS.md", "README.md", "DESIGN.md"};

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

void LoadTree(const LintConfig& config, Tree* tree, LintResult* result) {
  tree->root = config.root;
  const fs::path root(config.root);
  for (const char* dir : kSourceDirs) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      continue;  // fixture trees routinely have only some of the roots
    }
    for (fs::recursive_directory_iterator it(base, ec), end; it != end; it.increment(ec)) {
      if (ec) {
        result->errors.push_back("walk failed under " + base.string() + ": " + ec.message());
        break;
      }
      if (!it->is_regular_file() || !IsSourceFile(it->path())) {
        continue;
      }
      const std::string rel = fs::relative(it->path(), root).generic_string();
      SourceFile sf;
      std::string error;
      if (!LoadSource(it->path().string(), rel, &sf, &error)) {
        result->errors.push_back(error);
        continue;
      }
      tree->files.emplace(rel, std::move(sf));
      ++result->files_scanned;
    }
  }
  for (const char* name : kMarkdownFiles) {
    const fs::path p = root / name;
    std::error_code ec;
    if (!fs::is_regular_file(p, ec)) {
      continue;
    }
    SourceFile sf;
    std::string error;
    if (!LoadSource(p.string(), name, &sf, &error)) {
      result->errors.push_back(error);
      continue;
    }
    tree->markdown.emplace(name, std::move(sf));
    ++result->files_scanned;
  }
}

// The closure rules and hot-function table name specific files; if the real tree no longer
// has them, the rule tables have rotted and the run must not quietly pass. Fixture trees
// opt out by running with a --rules filter that skips the family.
void CheckRuleTableRoots(const LintConfig& config, const Tree& tree, LintResult* result) {
  for (const ClosureRule& rule : ClosureRules()) {
    if (!RuleEnabled(config, rule.id)) {
      continue;
    }
    for (const std::string& root : rule.roots) {
      if (tree.files.find(root) == tree.files.end()) {
        result->errors.push_back(rule.id + " root " + root +
                                 " is missing from the tree: update ClosureRules() in "
                                 "tools/mmu-lint/rules.cc");
      }
    }
  }
}

}  // namespace

LintResult RunLint(const LintConfig& config) {
  LintResult result;
  Tree tree;
  LoadTree(config, &tree, &result);
  if (!result.errors.empty()) {
    return result;
  }
  CheckRuleTableRoots(config, tree, &result);
  CheckLayering(config, tree, &result.diagnostics);
  CheckDeterminism(config, tree, &result.diagnostics);
  CheckHotPaths(config, tree, &result.diagnostics);
  CheckSmp(config, tree, &result.diagnostics);
  CheckCounters(config, tree, &result.diagnostics);
  std::sort(result.diagnostics.begin(), result.diagnostics.end());
  return result;
}

}  // namespace mmulint
