// Token-level symbol index and call graph over src/.
//
// mmu-lint's interprocedural rules (FLUSH-CONTRACT-029, HOT-CLOSURE-030, SMP-CONFINE-031,
// ATTR-COVER-032) need to reason about reachability, not just the tokens in one body. The
// builder stays at the same token/preprocessor level as the rest of the linter — no
// compiler, no external deps — and accepts the precision that buys:
//
//   definitions   `name ( params ) [quals] [ctor-init] {` with a brace-matched body;
//                 `Class::name` out-of-line and in-class-brace-range definitions both get
//                 the qualified id, overloads merge into one node with several defs
//   call edges    resolved in confidence tiers: explicit `Cls::name(` (kQualified);
//                 `recv.name(` / `recv->name(` through the declarative receiver tables or
//                 a `Class&`/`Class*` parameter/local (kMember); a bare call matching a
//                 method of the caller's own class (kSameClass); a bare call whose name is
//                 defined exactly once in the tree (kUnique). A call through an UNKNOWN
//                 receiver gets no edge at all — wrong edges are worse than missing ones.
//
// The graph indexes src/ only: tests and benches may poke at anything, the contracts bind
// the simulator. See DESIGN.md §16 for the model and each rule's use of it.

#ifndef PPCMM_TOOLS_MMU_LINT_CALLGRAPH_H_
#define PPCMM_TOOLS_MMU_LINT_CALLGRAPH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/mmu-lint/rules.h"

namespace mmulint {

struct FuncDef {
  std::string file;        // root-relative path
  uint32_t line = 0;       // line of the function name
  size_t name_pos = 0;     // byte offset of the name token in the file's stripped code
  size_t body_begin = 0;   // byte offset of the opening `{`
  size_t body_end = 0;     // one past the matching `}`
};

struct CallSite {
  enum class Kind { kQualified, kMember, kSameClass, kUnique };
  std::string callee;  // node id the edge points at (may be undefined in the tree)
  std::string file;    // caller's file
  uint32_t line = 0;   // line of the call token
  size_t pos = 0;      // byte offset of the call token in the caller's stripped code
  size_t def_index = 0;  // index into the caller node's defs: which body holds the call
  Kind kind = Kind::kUnique;
};

struct CallNode {
  std::string id;    // "Class::Name" for methods, "Name" for free functions
  std::string cls;   // "" for free functions
  std::string name;  // unqualified name
  std::vector<FuncDef> defs;    // one per overload / out-of-line body
  std::vector<CallSite> calls;  // accumulated over every def
};

struct CallGraph {
  std::map<std::string, CallNode> nodes;                    // id -> node
  std::set<std::string> classes;                            // every class/struct name seen
  std::map<std::string, std::vector<std::string>> by_name;  // unqualified name -> node ids
};

// Indexes every tree file under src/ and resolves call edges. Deterministic: iteration
// follows the Tree's sorted file map.
CallGraph BuildCallGraph(const Tree& tree);

// Innermost function definition containing byte offset `pos` of `file`, or nullptr. The
// node's def index is written to *def_index when non-null.
const CallNode* EnclosingFunction(const CallGraph& graph, const std::string& file, size_t pos,
                                  size_t* def_index);

// Serializers for --callgraph-dump. Both are deterministic (sorted node order).
std::string CallGraphToJson(const CallGraph& graph);
std::string CallGraphToDot(const CallGraph& graph);

const char* CallKindName(CallSite::Kind kind);

}  // namespace mmulint

#endif  // PPCMM_TOOLS_MMU_LINT_CALLGRAPH_H_
