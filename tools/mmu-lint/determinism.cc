// DET-* checks: keep host nondeterminism out of simulated state.
//
// Scope is all of src/: every file there either holds simulated state or computes results
// from it. The only exemption is src/sim/rng.h, the seeded RNG everything else must use.

#include <set>
#include <string>
#include <vector>

#include "tools/mmu-lint/rules.h"

namespace mmulint {
namespace {

bool InScope(const std::string& path) {
  for (const std::string& prefix : DeterminismScope()) {
    if (path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    for (const std::string& exempt : DeterminismAllowlist()) {
      if (path == exempt) {
        return false;
      }
    }
    return true;
  }
  return false;
}

void CheckBannedIdents(const LintConfig& config, const SourceFile& sf,
                       std::vector<Diagnostic>* out) {
  for (const BannedIdent& ban : DeterminismBans()) {
    if (!RuleEnabled(config, ban.id)) {
      continue;
    }
    for (size_t pos : FindIdentifier(sf.code, ban.ident)) {
      Emit(sf, LineOf(sf.code, pos), ban.id, ban.ident + ": " + ban.why, ban.fix, out);
    }
  }
}

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

// Names declared as std::unordered_{map,set,multimap,multiset}<...> in this file.
std::vector<std::string> UnorderedNames(const SourceFile& sf) {
  std::vector<std::string> names;
  for (const char* type : {"unordered_map", "unordered_set", "unordered_multimap",
                           "unordered_multiset"}) {
    for (size_t pos : FindIdentifier(sf.code, type)) {
      // Template args, then optional refs/pointers, then the declared name.
      size_t p = sf.code.find_first_not_of(" \t\n", pos + std::string(type).size());
      if (p == std::string::npos || sf.code[p] != '<') {
        continue;
      }
      p = MatchForward(sf.code, p, '<', '>');
      if (p == std::string::npos) {
        continue;
      }
      p = sf.code.find_first_not_of(" \t\n&*", p);
      if (p == std::string::npos || !IsIdentChar(sf.code[p])) {
        continue;  // e.g. a template argument or a cast, not a declaration
      }
      size_t end = p;
      while (end < sf.code.size() && IsIdentChar(sf.code[end])) {
        ++end;
      }
      names.push_back(sf.code.substr(p, end - p));
    }
  }
  return names;
}

// Flags range-for over `name` and name.begin()/cbegin(): both walk the container in hash
// order, which varies across standard libraries and (with randomized hashing) across runs.
// `names` is collected across the whole tree, not just this file — the classic bug is a
// member declared in the .h and iterated in the .cc.
void CheckUnorderedIteration(const SourceFile& sf, const std::set<std::string>& names,
                             std::vector<Diagnostic>* out) {
  for (const std::string& name : names) {
    for (size_t pos : FindIdentifier(sf.code, name)) {
      // `... : name` inside a for — the previous non-space char is a lone ':'.
      size_t before = pos;
      while (before > 0 && (sf.code[before - 1] == ' ' || sf.code[before - 1] == '\t' ||
                            sf.code[before - 1] == '\n')) {
        --before;
      }
      const bool range_for = before >= 1 && sf.code[before - 1] == ':' &&
                             (before < 2 || sf.code[before - 2] != ':');
      // name.begin( / name.cbegin(
      size_t after = pos + name.size();
      const bool begin_call =
          sf.code.compare(after, 7, ".begin(") == 0 || sf.code.compare(after, 8, ".cbegin(") == 0;
      if (range_for || begin_call) {
        Emit(sf, LineOf(sf.code, pos), "DET-ITER-012",
             "iteration over unordered container '" + name +
                 "' — visit order depends on the host hash seed and leaks into simulated state",
             "use std::map/std::set (or collect keys and sort) when order can reach simulated "
             "state; keep unordered containers for pure membership tests",
             out);
      }
    }
  }
}

}  // namespace

void CheckDeterminism(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out) {
  std::set<std::string> unordered_names;
  if (RuleEnabled(config, "DET-ITER-012")) {
    for (const auto& [path, sf] : tree.files) {
      if (InScope(path)) {
        for (const std::string& name : UnorderedNames(sf)) {
          unordered_names.insert(name);
        }
      }
    }
  }
  for (const auto& [path, sf] : tree.files) {
    if (!InScope(path)) {
      continue;
    }
    CheckBannedIdents(config, sf, out);
    if (RuleEnabled(config, "DET-ITER-012")) {
      CheckUnorderedIteration(sf, unordered_names, out);
    }
  }
}

}  // namespace mmulint
