// The four interprocedural analyses over the src/ call graph.
//
//   FLUSH-CONTRACT-029  every HTAB/PTE/segment mutation reaches a flush primitive on the
//                       call graph (or is annotated deferred-flush with a reason) — the
//                       static form of the invariant the coherence auditor checks at
//                       runtime: a stale translation must be invalidated (tlbie/tlbia,
//                       IPI shootdown) or made architecturally unreachable (VSID retire,
//                       segment generation bump).
//   HOT-CLOSURE-030     the hot-path purity bans hold on everything reachable from the
//                       registered hot roots, not just the roots — a helper grown under
//                       Mmu::Access cannot quietly allocate.
//   SMP-CONFINE-031     per-CPU state is touched only inside the spotlight/shootdown
//                       gateway functions; everything else sees exactly one CPU.
//   ATTR-COVER-032      every AddCycles/AddCyclesOn site in src/kernel sits under a
//                       CycleScope on every call path from the kernel entry points, so
//                       the profiler's "100% attributed" claim holds by construction.
//
// All four lean on the same conservative graph (tools/mmu-lint/callgraph.cc): edges exist
// only where the resolver is confident, and the flush/attr walks treat "no edge" as "no
// flush / no scope" — missing knowledge fails toward reporting, never toward silence.

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/mmu-lint/callgraph.h"
#include "tools/mmu-lint/rules.h"

namespace mmulint {
namespace {

const FlushMutator* FindMutator(const std::string& id) {
  for (const FlushMutator& m : FlushMutators()) {
    if (m.id == id) {
      return &m;
    }
  }
  return nullptr;
}

bool IsFlushPrimitive(const std::string& id) {
  const auto& prims = FlushPrimitives();
  return std::find(prims.begin(), prims.end(), id) != prims.end();
}

// True when `node` (or anything it transitively calls) invokes a flush primitive or
// carries a deferred-flush annotation. Only descends into nodes defined in the tree.
bool ReachesFlush(const Tree& tree, const CallGraph& graph, const CallNode& node) {
  std::set<std::string> visited = {node.id};
  std::deque<const CallNode*> queue = {&node};
  while (!queue.empty()) {
    const CallNode* cur = queue.front();
    queue.pop_front();
    for (const FuncDef& def : cur->defs) {
      const SourceFile& sf = tree.files.at(def.file);
      const SourceFile::Annotation* ann = SourceFile::AnnotationIn(
          sf.deferred_flush, def.name_pos, def.body_end, "FLUSH-CONTRACT-029");
      if (ann != nullptr && !ann->reason.empty()) {
        return true;
      }
    }
    for (const CallSite& call : cur->calls) {
      if (IsFlushPrimitive(call.callee)) {
        return true;
      }
      auto it = graph.nodes.find(call.callee);
      if (it != graph.nodes.end() && visited.insert(call.callee).second) {
        queue.push_back(&it->second);
      }
    }
  }
  return false;
}

void CheckFlushContract(const LintConfig& config, const Tree& tree, const CallGraph& graph,
                        std::vector<Diagnostic>* out) {
  if (!RuleEnabled(config, "FLUSH-CONTRACT-029")) {
    return;
  }
  // Self-flushing mutators must actually self-flush: their own body bumps generation_.
  for (const FlushMutator& mutator : FlushMutators()) {
    if (!mutator.self_flushing) {
      continue;
    }
    auto it = graph.nodes.find(mutator.id);
    if (it == graph.nodes.end()) {
      continue;  // partial fixture tree
    }
    bool bumps = false;
    for (const FuncDef& def : it->second.defs) {
      const std::string body = tree.files.at(def.file).code.substr(
          def.body_begin, def.body_end - def.body_begin);
      if (!FindIdentifier(body, "generation_").empty()) {
        bumps = true;
        break;
      }
    }
    if (!bumps) {
      const FuncDef& def = it->second.defs.front();
      Emit(tree.files.at(def.file), def.line, "FLUSH-CONTRACT-029",
           mutator.id + " is registered self-flushing (writes " + mutator.structure +
               "), but no overload bumps generation_ — stale translations stay reachable",
           "bump the generation counter in the mutator body, or drop self_flushing in "
           "FlushMutators() so callers owe an explicit flush",
           out);
    }
  }

  for (const auto& [id, node] : graph.nodes) {
    if (IsFlushPrimitive(id)) {
      continue;  // a primitive's own writes are the flush mechanism
    }
    bool checked_reach = false;
    bool reaches = false;
    for (const CallSite& call : node.calls) {
      // Only the confident resolution tiers accuse: a unique-name fallback edge onto a
      // mutator would risk indicting the wrong function.
      if (call.kind != CallSite::Kind::kQualified && call.kind != CallSite::Kind::kMember) {
        continue;
      }
      const FlushMutator* mutator = FindMutator(call.callee);
      if (mutator == nullptr || mutator->self_flushing) {
        continue;
      }
      if (!checked_reach) {
        checked_reach = true;
        reaches = ReachesFlush(tree, graph, node);
      }
      if (reaches) {
        continue;
      }
      const SourceFile& sf = tree.files.at(call.file);
      Emit(sf, call.line, "FLUSH-CONTRACT-029",
           call.callee + " in " + id + " mutates " + mutator->structure +
               " with no flush primitive reachable on any call path and no "
               "mmu-lint-deferred-flush annotation — a stale TLB entry survives the write",
           mutator->flush_hint, out);
    }
    // Annotations must carry a reason; a bare marker is itself a finding.
    for (const FuncDef& def : node.defs) {
      const SourceFile& sf = tree.files.at(def.file);
      const SourceFile::Annotation* ann = SourceFile::AnnotationIn(
          sf.deferred_flush, def.name_pos, def.body_end, "FLUSH-CONTRACT-029");
      if (ann != nullptr && ann->reason.empty()) {
        Emit(sf, ann->line, "FLUSH-CONTRACT-029",
             "mmu-lint-deferred-flush annotation on " + id +
                 " has no reason — the deferred-flush contract requires one",
             "append `: <why the flush is deferred and where it happens>`", out);
      }
    }
  }
}

void CheckHotClosure(const LintConfig& config, const Tree& tree, const CallGraph& graph,
                     std::vector<Diagnostic>* out) {
  if (!RuleEnabled(config, "HOT-CLOSURE-030")) {
    return;
  }
  std::set<std::string> boundary;
  for (const ClosureBoundary& b : HotClosureBoundaries()) {
    boundary.insert(b.id);
  }
  std::set<std::string> roots;
  for (const HotFunction& fn : HotFunctions()) {
    roots.insert(fn.qualifier + "::" + fn.name);
  }
  // BFS from the hot roots; parent links reconstruct the witness path for the message.
  std::map<std::string, std::string> parent;
  std::set<std::string> visited = roots;
  std::deque<std::string> queue(roots.begin(), roots.end());
  std::vector<std::string> closure;  // discovery order, non-root only
  while (!queue.empty()) {
    const std::string id = queue.front();
    queue.pop_front();
    auto it = graph.nodes.find(id);
    if (it == graph.nodes.end()) {
      continue;  // missing root: HOT-MISSING-025 already reports table rot
    }
    for (const CallSite& call : it->second.calls) {
      if (boundary.count(call.callee) != 0 || graph.nodes.count(call.callee) == 0) {
        continue;
      }
      if (visited.insert(call.callee).second) {
        parent[call.callee] = id;
        closure.push_back(call.callee);
        queue.push_back(call.callee);
      }
    }
  }
  for (const std::string& id : closure) {
    std::string path = id;
    for (auto it = parent.find(id); it != parent.end(); it = parent.find(it->second)) {
      path = it->second + " -> " + path;
    }
    const CallNode& node = graph.nodes.at(id);
    for (const FuncDef& def : node.defs) {
      const SourceFile& sf = tree.files.at(def.file);
      const std::string body = sf.code.substr(def.body_begin, def.body_end - def.body_begin);
      for (const BannedIdent& ban : HotPathBans()) {
        for (size_t pos : FindIdentifier(body, ban.ident)) {
          Emit(sf, LineOf(sf.code, def.body_begin + pos), "HOT-CLOSURE-030",
               ban.ident + " in " + id + ", reachable from a hot root (" + path +
                   "): " + ban.why,
               ban.fix + " — or register an audited boundary in HotClosureBoundaries()",
               out);
        }
      }
    }
  }
}

void CheckSmpConfine(const LintConfig& config, const Tree& tree, const CallGraph& graph,
                     LintResult* result) {
  if (!RuleEnabled(config, "SMP-CONFINE-031")) {
    return;
  }
  const auto& gateways = SmpGateways();
  // The gateway table names real functions; if the kernel is in the tree (i.e. this is
  // not a partial fixture), each must still exist or the table has rotted.
  if (tree.files.count("src/kernel/kernel.cc") != 0) {
    for (const std::string& gw : gateways) {
      if (graph.nodes.count(gw) == 0) {
        result->errors.push_back("SMP-CONFINE-031 gateway " + gw +
                                 " is not defined anywhere in src/: update SmpGateways() "
                                 "in tools/mmu-lint/rules.cc");
      }
    }
  }
  for (const auto& [path, sf] : tree.files) {
    if (path.compare(0, 4, "src/") != 0 || path.compare(0, 11, "src/verify/") == 0) {
      continue;
    }
    const auto& exempt = SmpConfineExemptFiles();
    if (std::find(exempt.begin(), exempt.end(), path) != exempt.end()) {
      continue;
    }
    for (const SmpConfinedToken& token : SmpConfinedTokens()) {
      for (size_t pos : FindIdentifier(sf.code, token.token)) {
        if (token.accessor) {
          // Only the per-CPU form `name(cpu)` is confined; `name()` is the spotlight view.
          const size_t open = sf.code.find_first_not_of(" \t\n", pos + token.token.size());
          if (open == std::string::npos || sf.code[open] != '(') {
            continue;
          }
          const size_t arg = sf.code.find_first_not_of(" \t\n", open + 1);
          if (arg == std::string::npos || sf.code[arg] == ')') {
            continue;
          }
        }
        const CallNode* fn = EnclosingFunction(graph, path, pos, nullptr);
        if (fn != nullptr &&
            std::find(gateways.begin(), gateways.end(), fn->id) != gateways.end()) {
          continue;
        }
        Emit(sf, LineOf(sf.code, pos), "SMP-CONFINE-031",
             token.token + (token.accessor ? "(cpu)" : "") + " in " +
                 (fn != nullptr ? fn->id : path) +
                 " touches per-CPU state outside the spotlight/shootdown gateways — "
                 "remote banks change only via SwitchCpu or the IPI protocol",
             "route the access through Kernel::SwitchCpu / FlushEngine::ShootdownRound, "
             "or register the function in SmpGateways() (tools/mmu-lint/rules.cc) with "
             "an audit note",
             &result->diagnostics);
      }
    }
  }
}

void CheckAttrCover(const LintConfig& config, const Tree& tree, const CallGraph& graph,
                    LintResult* result) {
  if (!RuleEnabled(config, "ATTR-COVER-032")) {
    return;
  }
  if (tree.files.count("src/kernel/kernel.cc") != 0) {
    for (const std::string& root : KernelEntryPoints()) {
      if (graph.nodes.count(root) == 0) {
        result->errors.push_back("ATTR-COVER-032 entry point " + root +
                                 " is not defined anywhere in src/: update "
                                 "KernelEntryPoints() in tools/mmu-lint/rules.cc");
      }
    }
  }

  // Kernel-scope nodes, their CycleScope token positions, and their charge sites.
  struct NodeInfo {
    const CallNode* node = nullptr;
    // Per def: sorted CycleScope token offsets inside the body.
    std::vector<std::vector<size_t>> scopes;
  };
  std::map<std::string, NodeInfo> info;
  for (const auto& [id, node] : graph.nodes) {
    if (node.defs.front().file.compare(0, 11, "src/kernel/") != 0) {
      continue;
    }
    NodeInfo ni;
    ni.node = &node;
    for (const FuncDef& def : node.defs) {
      const std::string& code = tree.files.at(def.file).code;
      std::vector<size_t> scopes;
      for (size_t pos : FindIdentifier(code, "CycleScope")) {
        if (pos > def.body_begin && pos < def.body_end) {
          scopes.push_back(pos);
        }
      }
      ni.scopes.push_back(scopes);
    }
    info.emplace(id, std::move(ni));
  }
  const auto scoped_before = [&](const NodeInfo& ni, size_t def_index, size_t pos) {
    for (size_t s : ni.scopes[def_index]) {
      if (s < pos) {
        return true;
      }
    }
    return false;
  };

  // Worklist: which kernel-scope nodes can be entered with no CycleScope open, and from
  // which entry point (for the diagnostic).
  std::map<std::string, std::string> unscoped_from;
  std::deque<std::string> queue;
  for (const std::string& root : KernelEntryPoints()) {
    if (info.count(root) != 0 && unscoped_from.emplace(root, root).second) {
      queue.push_back(root);
    }
  }
  while (!queue.empty()) {
    const std::string id = queue.front();
    queue.pop_front();
    const NodeInfo& ni = info.at(id);
    const std::string& root = unscoped_from.at(id);
    for (const CallSite& call : ni.node->calls) {
      if (info.count(call.callee) == 0) {
        continue;  // charges outside src/kernel are the hardware model's, not the kernel's
      }
      if (scoped_before(ni, call.def_index, call.pos)) {
        continue;  // every path through this call site is already attributed
      }
      if (unscoped_from.emplace(call.callee, root).second) {
        queue.push_back(call.callee);
      }
    }
  }

  for (const auto& [id, root] : unscoped_from) {
    const NodeInfo& ni = info.at(id);
    for (size_t di = 0; di < ni.node->defs.size(); ++di) {
      const FuncDef& def = ni.node->defs[di];
      const SourceFile& sf = tree.files.at(def.file);
      const SourceFile::Annotation* ann = SourceFile::AnnotationIn(
          sf.ambient, def.name_pos, def.body_end, "ATTR-COVER-032");
      if (ann != nullptr && ann->reason.empty()) {
        Emit(sf, ann->line, "ATTR-COVER-032",
             "mmu-lint-ambient annotation on " + id + " has no reason — deliberate "
                 "ambient charges must say why they are user time",
             "append `: <why this charge is deliberately unattributed>`", &result->diagnostics);
        continue;
      }
      if (ann != nullptr) {
        continue;  // audited ambient charge (e.g. user-mode instruction time)
      }
      for (const char* charge : {"AddCycles", "AddCyclesOn"}) {
        for (size_t pos : FindIdentifier(sf.code, charge)) {
          if (pos <= def.body_begin || pos >= def.body_end) {
            continue;
          }
          const size_t open = sf.code.find_first_not_of(" \t\n", pos + std::string(charge).size());
          if (open == std::string::npos || sf.code[open] != '(') {
            continue;
          }
          if (scoped_before(ni, di, pos)) {
            continue;
          }
          Emit(sf, LineOf(sf.code, pos), "ATTR-COVER-032",
               std::string(charge) + " in " + id + " can run with no CycleScope open " +
                   "(unattributed path from " + root + ") — the cycles silently land in "
                   "the ambient/user bucket and the profiler's 100%-attributed claim breaks",
               "open a CycleScope(machine_, AttrCause::...) covering the charge, or mark "
               "the function `// mmu-lint-ambient(ATTR-COVER-032): <reason>` if this is "
               "deliberately user time",
               &result->diagnostics);
        }
      }
    }
  }
}

}  // namespace

void CheckGraphRules(const LintConfig& config, const Tree& tree, const CallGraph& graph,
                     LintResult* result) {
  CheckFlushContract(config, tree, graph, &result->diagnostics);
  CheckHotClosure(config, tree, graph, &result->diagnostics);
  CheckSmpConfine(config, tree, graph, result);
  CheckAttrCover(config, tree, graph, result);
}

}  // namespace mmulint
