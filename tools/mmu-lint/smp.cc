// SMP-IPI-028: cross-CPU TLB invalidation goes through the IPI shootdown protocol only.
//
// The Mmu's ShootdownInvalidatePage / ShootdownInvalidateAll primitives reach into another
// CPU's TLBs by index. That is exactly what real hardware cannot do — a remote TLB changes
// only when its own CPU executes a tlbie/tlbia — so the simulator confines those calls to
// FlushEngine's IPI path, which charges the send/receive cycles, advances the remote CPU's
// local clock, and keeps the shootdown counters truthful. A stray caller anywhere else in
// src/ would invalidate remote entries for free and quietly break the cycle model the
// shootdown benchmarks and the §7 lazy-flush comparison rest on.
//
// The scan is whole-file (like HOT-ATTR-026): even naming the primitives in a helper or a
// stored callback outside the allowlist is a design error, not just calling them.

#include <string>
#include <vector>

#include "tools/mmu-lint/rules.h"

namespace mmulint {
namespace {

bool InScope(const std::string& path) {
  if (path.compare(0, 4, "src/") != 0) {
    return false;  // tests/bench may exercise the primitives directly against a fixture
  }
  for (const std::string& exempt : SmpIpiAllowlist()) {
    if (path == exempt) {
      return false;
    }
  }
  return true;
}

}  // namespace

void CheckSmp(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out) {
  for (const auto& [path, sf] : tree.files) {
    if (!InScope(path)) {
      continue;
    }
    for (const BannedIdent& ban : SmpIpiBans()) {
      if (!RuleEnabled(config, ban.id)) {
        continue;
      }
      for (size_t pos : FindIdentifier(sf.code, ban.ident)) {
        Emit(sf, LineOf(sf.code, pos), ban.id, ban.ident + " in " + path + ": " + ban.why,
             ban.fix, out);
      }
    }
  }
}

}  // namespace mmulint
