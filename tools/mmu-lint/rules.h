// Declarative rule tables + per-family check entry points (internal to mmu-lint).
//
// Everything the checks enforce lives in the tables defined in rules.cc; the check
// functions in layering.cc / determinism.cc / hotpath.cc / counters.cc are generic
// interpreters over them. Adding a hot function, banning a new identifier, or renaming a
// layer is a one-line table edit.

#ifndef PPCMM_TOOLS_MMU_LINT_RULES_H_
#define PPCMM_TOOLS_MMU_LINT_RULES_H_

#include <map>
#include <string>
#include <vector>

#include "tools/mmu-lint/lint.h"
#include "tools/mmu-lint/source.h"

namespace mmulint {

// ---- Layering (LAYER-*) --------------------------------------------------------------

struct Layer {
  std::string prefix;  // path prefix, e.g. "src/mmu/"
  int rank;            // a file may include same-directory peers or strictly lower ranks
};

// `src/sim` is the foundation; `mmu` and `pagetable` are rank-equal peers that must not
// include each other; `core` is the composition root (facade) that may see everything
// below it; `obs` reads core but never the reverse; `verify` sits on top so the oracle
// and auditors can see the whole stack while nothing depends on them.
const std::vector<Layer>& Layers();

struct ClosureRule {
  std::string id;
  std::vector<std::string> roots;      // files whose include closure is checked
  std::vector<std::string> forbidden;  // path prefixes that must not appear in the closure
  std::string why;                     // appended to the diagnostic
};

// LAYER-ORACLE-002 (fuzz oracle independence) and LAYER-HOT-OBS-003 (hot headers vs obs).
const std::vector<ClosureRule>& ClosureRules();

// ---- Determinism (DET-*) -------------------------------------------------------------

struct BannedIdent {
  std::string id;     // rule that fires
  std::string ident;  // identifier to flag
  std::string why;
  std::string fix;
};

const std::vector<BannedIdent>& DeterminismBans();

// Files under these prefixes feed simulated state and are in scope for DET-* rules.
const std::vector<std::string>& DeterminismScope();
// Exact paths exempt from DET-* (the one sanctioned randomness source).
const std::vector<std::string>& DeterminismAllowlist();

// ---- Hot-path purity (HOT-*) ---------------------------------------------------------

struct HotFunction {
  std::string file;       // root-relative path holding the definition
  std::string qualifier;  // class name for the message, e.g. "Tlb"
  std::string name;       // unqualified function name to locate, e.g. "LookupPtr"
  // Extra identifiers banned in THIS body beyond the global hot-path bans — the
  // PTE-tree virtual entry points, banned only where the function is in the
  // pure-translation tier (reload tiers legitimately walk the tree).
  std::vector<std::string> banned_virtual;
};

const std::vector<HotFunction>& HotFunctions();

// Globally banned inside every hot function body, with the rule that fires.
const std::vector<BannedIdent>& HotPathBans();

// SPAN-GEN-027: translation-span validity may key only off generation counters. The
// registered span-validity bodies (Mmu::AccessRun's replay gate and the FastGen combiner
// it compares against) must not consult wall-clock time or launder pointer identity into
// validity state — a recycled TlbEntry at the same address must still invalidate the
// span. Missing registered bodies fall under HOT-MISSING-025 like the hot functions.
const std::vector<HotFunction>& SpanValidityFunctions();
const std::vector<BannedIdent>& SpanValidityBans();

// HOT-ATTR-026: hot-path headers (the LAYER-HOT-OBS-003 root set minus machine.h, which
// owns the ledger and defines CycleScope) must not reach observability state directly —
// no MetricsRegistry/BenchReport construction, no CycleLedger reference, no attr()
// access. Attribution flows only through the CycleScope hook. Scanned whole-file, not
// per-body: a header holding a ledger reference is a violation even outside a function.
const std::vector<std::string>& AttrCleanHeaders();
const std::vector<BannedIdent>& AttrBans();

// ---- SMP IPI discipline (SMP-*) --------------------------------------------------------

// SMP-IPI-028: cross-CPU TLB invalidation must flow through the IPI shootdown protocol in
// src/kernel/flush.cc. Mmu::ShootdownInvalidatePage / ShootdownInvalidateAll exist solely
// as the remote IPI handler's landing pads; any other caller mutates another CPU's TLB
// without sending an IPI, so no cycles are charged, no shootdown counter moves, and the
// idle-skip/deferred-flush bookkeeping silently rots. Scanned whole-file over src/.
const std::vector<BannedIdent>& SmpIpiBans();
// Exact paths allowed to name the shootdown entry points: the Mmu that defines them and
// the flush engine that implements the IPI protocol.
const std::vector<std::string>& SmpIpiAllowlist();

// ---- Counter consistency (CNT-*) -----------------------------------------------------

struct CounterPaths {
  std::string hw_counters_h = "src/sim/hw_counters.h";
  std::string metrics_cc = "src/obs/metrics.cc";
  std::string probes_cc = "src/sim/probes.cc";
};

// Dotted sys.* gauge names MetricsRegistry publishes, kept here so docs/tests referencing
// them are checkable. Must match the Set() calls in metrics.cc (CNT-SYS-034 verifies).
const std::vector<std::string>& SysGaugeNames();

// lat.* suffixes beyond the per-probe {count,p50,p95,max,mean} family.
const std::vector<std::string>& LatSpecialNames();

// ---- Check entry points (each appends to *out) ---------------------------------------

// Shared scan state handed to every family.
struct Tree {
  std::string root;
  std::map<std::string, SourceFile> files;     // rel path -> parsed file (sources only)
  std::map<std::string, SourceFile> markdown;  // scanned .md files (counter rules only)
};

void CheckLayering(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out);
void CheckDeterminism(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out);
void CheckHotPaths(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out);
void CheckSmp(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out);
void CheckCounters(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out);

// Helper shared by checks: appends a diagnostic unless suppressed in `sf`.
void Emit(const SourceFile& sf, uint32_t line, const std::string& rule, const std::string& message,
          const std::string& fix, std::vector<Diagnostic>* out);

}  // namespace mmulint

#endif  // PPCMM_TOOLS_MMU_LINT_RULES_H_
