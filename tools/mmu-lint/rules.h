// Declarative rule tables + per-family check entry points (internal to mmu-lint).
//
// Everything the checks enforce lives in the tables defined in rules.cc; the check
// functions in layering.cc / determinism.cc / hotpath.cc / counters.cc are generic
// interpreters over them. Adding a hot function, banning a new identifier, or renaming a
// layer is a one-line table edit.

#ifndef PPCMM_TOOLS_MMU_LINT_RULES_H_
#define PPCMM_TOOLS_MMU_LINT_RULES_H_

#include <map>
#include <string>
#include <vector>

#include "tools/mmu-lint/lint.h"
#include "tools/mmu-lint/source.h"

namespace mmulint {

// ---- Layering (LAYER-*) --------------------------------------------------------------

struct Layer {
  std::string prefix;  // path prefix, e.g. "src/mmu/"
  int rank;            // a file may include same-directory peers or strictly lower ranks
};

// `src/sim` is the foundation; `mmu` and `pagetable` are rank-equal peers that must not
// include each other; `core` is the composition root (facade) that may see everything
// below it; `obs` reads core but never the reverse; `verify` sits on top so the oracle
// and auditors can see the whole stack while nothing depends on them.
const std::vector<Layer>& Layers();

struct ClosureRule {
  std::string id;
  std::vector<std::string> roots;      // files whose include closure is checked
  std::vector<std::string> forbidden;  // path prefixes that must not appear in the closure
  std::string why;                     // appended to the diagnostic
};

// LAYER-ORACLE-002 (fuzz oracle independence) and LAYER-HOT-OBS-003 (hot headers vs obs).
const std::vector<ClosureRule>& ClosureRules();

// ---- Determinism (DET-*) -------------------------------------------------------------

struct BannedIdent {
  std::string id;     // rule that fires
  std::string ident;  // identifier to flag
  std::string why;
  std::string fix;
};

const std::vector<BannedIdent>& DeterminismBans();

// Files under these prefixes feed simulated state and are in scope for DET-* rules.
const std::vector<std::string>& DeterminismScope();
// Exact paths exempt from DET-* (the one sanctioned randomness source).
const std::vector<std::string>& DeterminismAllowlist();

// ---- Hot-path purity (HOT-*) ---------------------------------------------------------

struct HotFunction {
  std::string file;       // root-relative path holding the definition
  std::string qualifier;  // class name for the message, e.g. "Tlb"
  std::string name;       // unqualified function name to locate, e.g. "LookupPtr"
  // Extra identifiers banned in THIS body beyond the global hot-path bans — the
  // PTE-tree virtual entry points, banned only where the function is in the
  // pure-translation tier (reload tiers legitimately walk the tree).
  std::vector<std::string> banned_virtual;
};

const std::vector<HotFunction>& HotFunctions();

// Globally banned inside every hot function body, with the rule that fires.
const std::vector<BannedIdent>& HotPathBans();

// SPAN-GEN-027: translation-span validity may key only off generation counters. The
// registered span-validity bodies (Mmu::AccessRun's replay gate and the FastGen combiner
// it compares against) must not consult wall-clock time or launder pointer identity into
// validity state — a recycled TlbEntry at the same address must still invalidate the
// span. Missing registered bodies fall under HOT-MISSING-025 like the hot functions.
const std::vector<HotFunction>& SpanValidityFunctions();
const std::vector<BannedIdent>& SpanValidityBans();

// HOT-ATTR-026: hot-path headers (the LAYER-HOT-OBS-003 root set minus machine.h, which
// owns the ledger and defines CycleScope) must not reach observability state directly —
// no MetricsRegistry/BenchReport construction, no CycleLedger reference, no attr()
// access. Attribution flows only through the CycleScope hook. Scanned whole-file, not
// per-body: a header holding a ledger reference is a violation even outside a function.
const std::vector<std::string>& AttrCleanHeaders();
const std::vector<BannedIdent>& AttrBans();

// ---- SMP IPI discipline (SMP-*) --------------------------------------------------------

// SMP-IPI-028: cross-CPU TLB invalidation must flow through the IPI shootdown protocol in
// src/kernel/flush.cc. Mmu::ShootdownInvalidatePage / ShootdownInvalidateAll exist solely
// as the remote IPI handler's landing pads; any other caller mutates another CPU's TLB
// without sending an IPI, so no cycles are charged, no shootdown counter moves, and the
// idle-skip/deferred-flush bookkeeping silently rots. Scanned whole-file over src/.
const std::vector<BannedIdent>& SmpIpiBans();
// Exact paths allowed to name the shootdown entry points: the Mmu that defines them and
// the flush engine that implements the IPI protocol.
const std::vector<std::string>& SmpIpiAllowlist();

// ---- Interprocedural rules (call-graph based) ----------------------------------------

// Receiver-token resolution for the call-graph builder: member/variable names whose class
// is fixed by convention across the tree (`htab_.Insert(...)` -> HashTable::Insert).
struct ReceiverType {
  std::string token;  // receiver identifier as written, e.g. "htab_"
  std::string cls;    // class it holds, e.g. "HashTable"
};
const std::vector<ReceiverType>& ReceiverTypes();
// Accessor-method resolution for chained calls: `mmu_->htab().Insert(...)` resolves the
// receiver through the method in front of the parens (htab -> HashTable).
const std::vector<ReceiverType>& MethodReturnTypes();

// FLUSH-CONTRACT-029: every call to one of these mutators must reach a flush primitive.
struct FlushMutator {
  std::string id;         // call-graph node id, e.g. "PageTable::Update"
  std::string structure;  // what it writes, for the diagnostic
  // Self-flushing mutators carry their own invalidation (a generation bump in their body);
  // callers owe nothing, but the body is verified to actually contain `generation_`.
  bool self_flushing = false;
  std::string flush_hint;  // fix text naming the nearest flush primitive
};
const std::vector<FlushMutator>& FlushMutators();
// Call-graph node ids that count as TLB-coherence flush primitives (tlbie/tlbia wrappers,
// the IPI shootdown path, and the lazy VSID retirement that makes stale entries
// architecturally unreachable).
const std::vector<std::string>& FlushPrimitives();

// HOT-CLOSURE-030: transitive closure from the HotFunctions() roots, minus these audited
// boundary functions (each with the reason it may stop the descent).
struct ClosureBoundary {
  std::string id;
  std::string why;
};
const std::vector<ClosureBoundary>& HotClosureBoundaries();

// SMP-CONFINE-031: identifiers that touch per-CPU state. `always` tokens are confined
// wherever they appear; accessor tokens only in their per-CPU form `name(cpu)` — the
// argless current-bank form `name()` is the sanctioned spotlight view.
struct SmpConfinedToken {
  std::string token;
  bool accessor = false;  // true: only the with-args call form is confined
};
const std::vector<SmpConfinedToken>& SmpConfinedTokens();
// Functions allowed to touch per-CPU state directly (the spotlight switch and the
// shootdown/deferred-flush path), as call-graph node ids.
const std::vector<std::string>& SmpGateways();
// Exact file paths exempt from SMP-CONFINE-031: the definitions of the per-CPU state and
// spotlight machinery themselves. src/verify/ is exempt wholesale (auditors and torture
// reports legitimately inspect every CPU's bank).
const std::vector<std::string>& SmpConfineExemptFiles();

// ATTR-COVER-032: kernel entry points — the roots unattributed (ambient) cycles flow in
// from. Every AddCycles/AddCyclesOn site reachable from here without an intervening
// CycleScope is a hole in the "100% cycles attributed" guarantee.
const std::vector<std::string>& KernelEntryPoints();

// ---- Counter consistency (CNT-*) -----------------------------------------------------

struct CounterPaths {
  std::string hw_counters_h = "src/sim/hw_counters.h";
  std::string metrics_cc = "src/obs/metrics.cc";
  std::string probes_cc = "src/sim/probes.cc";
};

// Dotted sys.* gauge names MetricsRegistry publishes, kept here so docs/tests referencing
// them are checkable. Must match the Set() calls in metrics.cc (CNT-SYS-034 verifies).
const std::vector<std::string>& SysGaugeNames();

// lat.* suffixes beyond the per-probe {count,p50,p95,max,mean} family.
const std::vector<std::string>& LatSpecialNames();

// ---- Check entry points (each appends to *out) ---------------------------------------

// Shared scan state handed to every family.
struct Tree {
  std::string root;
  std::map<std::string, SourceFile> files;     // rel path -> parsed file (sources only)
  std::map<std::string, SourceFile> markdown;  // scanned .md files (counter rules only)
};

void CheckLayering(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out);
void CheckDeterminism(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out);
void CheckHotPaths(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out);
void CheckSmp(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out);
void CheckCounters(const LintConfig& config, const Tree& tree, std::vector<Diagnostic>* out);

// The four interprocedural analyses (FLUSH-CONTRACT-029, HOT-CLOSURE-030, SMP-CONFINE-031,
// ATTR-COVER-032), in graph_rules.cc. Takes the whole LintResult so rule-table staleness
// (a gateway or entry point no longer defined) surfaces as an error, not a silent pass.
struct CallGraph;
void CheckGraphRules(const LintConfig& config, const Tree& tree, const CallGraph& graph,
                     LintResult* result);

// Helper shared by checks: appends a diagnostic unless suppressed in `sf`.
void Emit(const SourceFile& sf, uint32_t line, const std::string& rule, const std::string& message,
          const std::string& fix, std::vector<Diagnostic>* out);

}  // namespace mmulint

#endif  // PPCMM_TOOLS_MMU_LINT_RULES_H_
