// Call-graph builder corpus: overload merging, receiver inference through a reference
// parameter, recursion, and a two-function cycle. Asserted via --callgraph-dump json in
// lint_test — there are no staged rule violations here.

class Widget {
 public:
  void Spin();
  void Spin(uint32_t turns);
  uint32_t Unwind(uint32_t depth);
};

// Overloads merge into one node (defs: 2); the zero-arg form calls its sibling.
void Widget::Spin() {
  Spin(1);
}

void Widget::Spin(uint32_t turns) {
  for (uint32_t i = 0; i < turns; ++i) {
    Step();
  }
}

void Widget::Step() {
  ticks_ += 1;
}

// Direct recursion: a self-edge.
uint32_t Widget::Unwind(uint32_t depth) {
  if (depth == 0) {
    return 0;
  }
  return Unwind(depth - 1);
}

// Free function; the receiver type comes from the declared parameter, not a member table.
void Drive(Widget& widget) {
  widget.Spin(3);
}

// A cycle between two free functions, resolved by unique global name.
void PingStage(uint32_t depth) {
  if (depth != 0) {
    PongStage(depth - 1);
  }
}

void PongStage(uint32_t depth) {
  if (depth != 0) {
    PingStage(depth - 1);
  }
}
