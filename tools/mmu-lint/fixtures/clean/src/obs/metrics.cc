// Clean fixture: publishes hw counters through the X-macro visitor and exactly the
// gauges the rule table knows.
#include <string>
#include <utility>
#include <vector>
template <typename Counters>
std::vector<std::pair<std::string, double>> CleanSnapshot(const Counters& hw) {
  std::vector<std::pair<std::string, double>> out;
  hw.ForEachField([&](const char* name, unsigned long value, bool) {
    out.emplace_back(std::string("hw.") + name, static_cast<double>(value));
  });
  for (const char* gauge :
       {"sys.htab_utilization", "sys.htab_valid", "sys.htab_live", "sys.htab_zombies",
        "sys.htab_hit_rate", "sys.evict_to_reload_ratio", "sys.dtlb_miss_rate",
        "sys.itlb_miss_rate", "sys.tlb_kernel_share"}) {
    out.emplace_back(gauge, 0.0);
  }
  return out;
}
