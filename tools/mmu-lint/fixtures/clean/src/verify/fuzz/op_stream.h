// Clean fixture: an oracle root that sees only sim.
#include "src/sim/types.h"
struct Clean_opstream {};
