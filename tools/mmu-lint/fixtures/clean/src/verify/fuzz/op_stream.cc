// Clean fixture.
#include "src/verify/fuzz/op_stream.h"
