// Clean fixture.
#include "src/verify/fuzz/reference_mmu.h"
