// Clean fixture: probe names.
const char* CleanProbeName(int probe) {
  return probe == 0 ? "page_fault" : "cow_fault";
}
