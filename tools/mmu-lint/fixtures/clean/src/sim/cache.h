// Clean fixture: hot cache bodies index preallocated storage.
#include "src/sim/types.h"
struct CleanCache {
  unsigned AccessLine(unsigned line) const { return lines_[line & 7u]; }
  unsigned AccessUncached(unsigned line) const { return line; }
  unsigned AccessLineRun(unsigned line, unsigned n) const { return lines_[(line + n) & 7u]; }
  unsigned AccessUncachedRun(unsigned line, unsigned n) const { return line * n; }
  unsigned lines_[8] = {};
};
