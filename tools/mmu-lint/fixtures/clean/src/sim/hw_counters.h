// Clean fixture: a well-formed X-macro field list.
#define PPCMM_HW_COUNTER_FIELDS(X) \
  X(cycles, "simulated cycles")    \
  X(page_faults, "faults")

#define PPCMM_HW_GAUGE_FIELDS(X) \
  X(kernel_tlb_highwater, "max TLB entries holding kernel PTEs")
