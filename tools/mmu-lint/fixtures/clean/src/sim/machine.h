// Clean fixture: hot bodies with nothing to flag.
#include "src/sim/cache.h"
struct CleanMachine {
  unsigned TouchData(unsigned ea) const { return ea + 1; }
  unsigned TouchDataRun(unsigned ea, unsigned n) const { return ea + n; }
  unsigned TouchInstruction(unsigned ea) const { return ea + 2; }
  unsigned TouchInstructionRun(unsigned ea, unsigned n) const { return ea + 2 * n; }
};
