// Clean fixture: hot bodies with nothing to flag.
#include "src/sim/cache.h"
struct CleanMachine {
  unsigned TouchData(unsigned ea) const { return ea + 1; }
  unsigned TouchInstruction(unsigned ea) const { return ea + 2; }
};
