// Clean fixture: bottom of the DAG.
struct CleanTypes {};
