// Clean fixture stub.
#include "src/sim/types.h"
struct CleanMmuH {};
