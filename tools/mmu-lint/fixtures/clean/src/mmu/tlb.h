// Clean fixture: the full pure-translation tier, virtual-free.
#include "src/sim/types.h"
struct CleanTlb {
  const unsigned* LookupPtr(unsigned vp) const { return &entries_[vp & 63u]; }
  void TouchLru(unsigned vp) { lru_ = vp; }
  void TouchLruRun(unsigned vp, unsigned n) { lru_ = vp + n; }
  unsigned entries_[64] = {};
  unsigned lru_ = 0;
};
