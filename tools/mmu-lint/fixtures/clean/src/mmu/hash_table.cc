// Clean fixture: Search probes a fixed-size table.
#include "src/mmu/hash_table.h"
struct CleanHashTable {
  unsigned Search(unsigned hash) const { return hash & 1023u; }
};
