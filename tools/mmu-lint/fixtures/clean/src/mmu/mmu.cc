// Clean fixture: the reload tier walks nothing it should not.
#include "src/mmu/tlb.h"
struct CleanMmu {
  unsigned Access(unsigned ea) { return ea == 0 ? Reload(ea) : ea; }
  unsigned Reload(unsigned ea) { return SoftwareRefill(ea); }
  unsigned SoftwareRefill(unsigned ea) {
    InstallTlbEntry(ea);
    return ea;
  }
  void InstallTlbEntry(unsigned ea) { last_ = ea; }
  unsigned last_ = 0;
};
