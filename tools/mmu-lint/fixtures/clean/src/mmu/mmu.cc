// Clean fixture: the reload tier walks nothing it should not.
#include "src/mmu/tlb.h"
struct CleanMmu {
  unsigned Access(unsigned ea) { return ea == 0 ? Reload(ea) : ea; }
  unsigned Reload(unsigned ea) { return SoftwareRefill(ea); }
  unsigned SoftwareRefill(unsigned ea) {
    InstallTlbEntry(ea);
    return ea;
  }
  void InstallTlbEntry(unsigned ea) { last_ = ea; }
  unsigned AccessRun(unsigned ea, unsigned n) {
    // Span replay: valid only while the generation combiner matches the memo.
    for (unsigned i = 0; i < n && gen_ == memo_gen_; ++i) {
      last_ = ea + i;
    }
    return last_;
  }
  unsigned last_ = 0;
  unsigned gen_ = 0;
  unsigned memo_gen_ = 0;
};
