// Clean fixture stub.
struct CleanBat {};
