// Clean fixture stub.
struct CleanSegmentRegs {};
