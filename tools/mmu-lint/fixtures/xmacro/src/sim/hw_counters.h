// Fixture: the X-macro lists exist but hold no fields — CNT-XMACRO-033 must refuse to
// treat an empty list as a valid source of truth.
#define PPCMM_HW_COUNTER_FIELDS(X)
#define PPCMM_HW_GAUGE_FIELDS(X)
