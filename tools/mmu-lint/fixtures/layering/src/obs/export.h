// Fixture stub.
struct FixtureExport {};
