// Fixture: kernel reaching up into observability.
#include "src/obs/export.h"
struct FixtureSched {};
