// Fixture: the same upward include, suppressed.
// mmu-lint-allow(LAYER-DAG-001): fixture proves suppressions silence a diagnostic
#include "src/obs/export.h"
struct FixtureSched2 {};
