// Fixture stub.
struct FixturePte {};
