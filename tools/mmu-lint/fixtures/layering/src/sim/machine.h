// Fixture: a hot-path header whose closure reaches src/obs/ through one hop.
#include "src/sim/trace2.h"
struct FixtureMachine {};
