// Fixture: sim reaching up into observability — an upward DAG edge, and the edge that
// poisons the machine.h hot-path closure.
#include "src/obs/export.h"
struct FixtureTrace2 {};
