// Fixture stub: the bottom of the DAG includes nothing.
struct FixtureTypes {};
