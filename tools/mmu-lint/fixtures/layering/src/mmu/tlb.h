// Fixture: a hot-obs closure root that also commits a peer-layer include.
#include "src/pagetable/pte.h"
struct FixtureTlb {};
