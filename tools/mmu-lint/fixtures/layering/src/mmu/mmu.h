// Fixture stub: a closure-rule root with only legal includes.
#include "src/sim/types.h"
struct StubMMU {};
