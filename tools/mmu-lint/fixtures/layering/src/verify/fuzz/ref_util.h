// Fixture: a helper the oracle pulls in. The include below is DOWNWARD in the layer DAG
// (verify may see kernel), so LAYER-DAG-001 stays quiet — but it drags src/kernel/ into
// the oracle's closure, which LAYER-ORACLE-002 must catch.
#include "src/kernel/sched.h"
struct FixtureRefUtil {};
