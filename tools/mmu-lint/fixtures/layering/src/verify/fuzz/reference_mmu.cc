// Fixture stub.
#include "src/verify/fuzz/reference_mmu.h"
