// Fixture: an oracle root one hop away from the contamination.
#include "src/verify/fuzz/ref_util.h"
struct FixtureReferenceTlb {};
