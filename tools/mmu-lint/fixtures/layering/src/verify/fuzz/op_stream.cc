// Fixture stub.
#include "src/verify/fuzz/op_stream.h"
