// ATTR-COVER-032 corpus. Kernel::NullSyscall / Mmap / Yield / UserExecute / Exit are all
// registered entry points (KernelEntryPoints() in rules.cc); the helpers are plain methods
// whose attribution state is inherited along the call graph. No src/kernel/kernel.cc here,
// so the entry-point staleness check does not apply to this partial tree.

// Violation: an entry point that charges with no scope anywhere on the path.
void Kernel::NullSyscall() {
  machine_.AddCycles(Cycles(11));
}

// Quiet: the scope opens before both the charge and the helper call.
void Kernel::Mmap(uint32_t pages) {
  CycleScope syscall_scope(machine_, AttrCause::kSyscall);
  machine_.AddCycles(Cycles(5));
  ChargeBody(pages);
}

// Quiet: only ever entered with a scope already open (from Mmap).
void Kernel::ChargeBody(uint32_t pages) {
  machine_.AddCycles(Cycles(7));
}

// Yield never opens a scope, so the helper below inherits the unattributed path.
void Kernel::Yield() {
  ChargeSwitch();
}

// Violation: transitively unscoped — the diagnostic names Kernel::Yield as the root.
void Kernel::ChargeSwitch() {
  machine_.AddCycles(Cycles(3));
}

// Quiet: audited ambient charge with a reason.
void Kernel::UserExecute(uint32_t instructions) {
  // mmu-lint-ambient(ATTR-COVER-032): user instruction time is the ambient bucket by design
  machine_.AddCycles(Cycles(instructions));
}

// Violation: a bare ambient marker has no reason — the marker line itself is the finding.
void Kernel::Exit(TaskId id) {
  // mmu-lint-ambient(ATTR-COVER-032):
  machine_.AddCycles(Cycles(300));
}
