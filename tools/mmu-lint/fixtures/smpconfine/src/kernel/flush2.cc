// SMP-CONFINE-031 corpus: per-CPU state touched outside the spotlight/shootdown gateways.
// There is deliberately no src/kernel/kernel.cc here, so the gateway-staleness check stays
// out of the way and only the token confinement is under test.

// Violation: charging a remote CPU's ledger outside any gateway.
void Balancer::Rebalance(uint32_t cpu) {
  machine_.AddCyclesOn(cpu, Cycles(10));
}

// Violation: the per-CPU accessor form reads a remote TLB bank outside any gateway.
void Balancer::PeekRemote(uint32_t cpu) {
  const Tlb& remote = machine_.mmu().itlb(cpu);
  Count(remote);
}

// Quiet: the argless accessor is the spotlight CPU's own view.
void Balancer::PeekLocal() {
  const Tlb& local = machine_.mmu().itlb();
  Count(local);
}

// Quiet: ShootdownRound is a registered gateway — the IPI protocol is exactly where
// remote banks are allowed to change.
void FlushEngine::ShootdownRound(VirtPage vp) {
  for (uint32_t cpu = 0; cpu < smp_.cpus; ++cpu) {
    machine_.AddCyclesOn(cpu, Cycles(32));
    machine_.mmu().dtlb(cpu).Invalidate(vp);
  }
}
