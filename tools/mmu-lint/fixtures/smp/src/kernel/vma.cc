// Fixture: stages SMP-IPI-028 twice — a kernel component reaching into a remote CPU's
// TLB directly instead of going through the flush engine's IPI protocol. Line 6 stages
// the per-page primitive, line 8 the invalidate-all.
#include "src/mmu/mmu.h"
void FixtureUnmapEverywhere(FixtureMmu& mmu, unsigned cpu, unsigned ea) {
  mmu.ShootdownInvalidatePage(cpu, ea);
  if (ea == 0) {
    mmu.ShootdownInvalidateAll(cpu);
  }
}
