// Fixture: the same direct call under a suppression, so its absence from the expected
// diagnostics is itself an assertion that mmu-lint-allow silences SMP-IPI-028.
#include "src/mmu/mmu.h"
void FixtureSuppressedUnmap(FixtureMmu& mmu, unsigned cpu, unsigned ea) {
  // mmu-lint-allow(SMP-IPI-028): fixture proves suppressions silence the rule
  mmu.ShootdownInvalidatePage(cpu, ea);
}
