// Fixture: the sanctioned caller. flush.cc IS the IPI shootdown path, so its calls to the
// shootdown primitives must stay quiet.
#include "src/mmu/mmu.h"
void FixtureShootdownRound(FixtureMmu& mmu, unsigned cpu, unsigned ea) {
  mmu.ShootdownInvalidatePage(cpu, ea);
  mmu.ShootdownInvalidateAll(cpu);
}
