// Fixture: the allowlisted definition site. Naming the shootdown primitives where they
// are defined must stay quiet.
struct FixtureMmu {
  void ShootdownInvalidatePage(unsigned cpu, unsigned ea) { (void)cpu; (void)ea; }
  void ShootdownInvalidateAll(unsigned cpu) { (void)cpu; }
};
