// Fixture: tests/ is out of scope for SMP-IPI-028 — a test may drive the shootdown
// primitives directly against a fixture Mmu to probe them. Must stay quiet.
#include "src/mmu/mmu.h"
void FixtureProbe(FixtureMmu& mmu) {
  mmu.ShootdownInvalidateAll(0);
}
