// A deliberately unflushed HTAB write. The checked-in baseline under this fixture's
// tools/mmu-lint/baseline.txt accepts it, so the fixture lints clean through the auto-load
// path; pointing --baseline at stale.txt instead exercises the stale/malformed errors.
void LegacyWriter::Stash(VirtPage vp) {
  htab_.Insert(pte, oracle, charger);
}
