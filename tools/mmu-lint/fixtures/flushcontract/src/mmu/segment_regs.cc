// SegmentRegs::Set is registered self-flushing in FlushMutators(); this copy forgets the
// generation bump, so the registration itself is the violation — at the definition line.
void SegmentRegs::Set(uint32_t index, SegmentRegister value) {
  sr_[index] = value;
}
