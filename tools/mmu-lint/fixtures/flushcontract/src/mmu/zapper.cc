// FLUSH-CONTRACT-029 corpus. Nothing here compiles as real code; mmu-lint is token-level
// and only needs the shapes: htab_ resolves to HashTable via the receiver table, mmu_ to
// Mmu, so each body below either reaches a flush primitive or does not.

// Violation: a bare HTAB insert — nothing downstream ever runs tlbie.
void VmaZap::ZapOne(VirtPage vp) {
  htab_.Insert(pte, oracle, charger);
}

// Clean: the insert is paired with the invalidate in the same body.
void VmaZap::ZapFlushed(VirtPage vp) {
  htab_.Insert(pte, oracle, charger);
  mmu_.TlbInvalidatePage(ea);
}

// Clean: the flush is one call-graph hop down, not in the mutating body itself.
void VmaZap::ZapVia(VirtPage vp) {
  htab_.Insert(pte, oracle, charger);
  FlushTail();
}

void VmaZap::FlushTail() {
  mmu_.TlbInvalidatePage(ea);
}

// Clean: the flush is deferred, and the annotation says where it happens.
void VmaZap::ZapDeferred(VirtPage vp) {
  // mmu-lint-deferred-flush(FLUSH-CONTRACT-029): the batch epilogue in the caller runs tlbia
  htab_.Insert(pte, oracle, charger);
}

// Two violations: a bare marker carries no reason, so it fails the annotation check AND
// leaves the mutation uncovered.
void VmaZap::ZapBare(VirtPage vp) {
  // mmu-lint-deferred-flush(FLUSH-CONTRACT-029):
  htab_.Insert(pte, oracle, charger);
}
