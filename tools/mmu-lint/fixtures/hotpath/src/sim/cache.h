// Fixture: a hot body that grows a vector.
#include <vector>
struct FixtureCache {
  unsigned AccessLine(unsigned line) {
    history_.push_back(line);  // line 5: HOT-ALLOC-020
    return line;
  }
  unsigned AccessUncached(unsigned line) const { return line + history_.size(); }
  unsigned AccessLineRun(unsigned line, unsigned n) const { return line + n; }
  unsigned AccessUncachedRun(unsigned line, unsigned n) const { return line * n; }
  std::vector<unsigned> history_;
};
