// Fixture: clean hot-path bodies — TouchData/TouchInstruction must produce nothing.
struct FixtureMachine {
  unsigned TouchData(unsigned ea) const { return ea + 1; }
  unsigned TouchInstruction(unsigned ea) const { return ea + 2; }
};
