// Fixture: a clean Search body, plus a decoy — banned tokens OUTSIDE a registered hot
// function must not fire.
struct FixtureHashTable {
  unsigned Search(unsigned hash) const { return hash & 1023u; }
  unsigned* Grow() { return new unsigned[64]; }  // not a hot function: no diagnostic
};
