// Fixture: one banned token per hot body in the Mmu tier.
#include <cstdio>
#include <mutex>
struct FixtureMmu {
  unsigned Access(unsigned ea) {
    if (ea == 0) {
      throw ea;  // line 7: HOT-THROW-021
    }
    return ea;
  }
  unsigned Reload(unsigned ea) {
    std::mutex m;  // line 12: HOT-LOCK-022
    m.lock();
    m.unlock();
    return ea;
  }
  unsigned SoftwareRefill(unsigned ea) {
    printf("refill %u\n", ea);  // line 18: HOT-IO-023
    return ea;
  }
  void InstallTlbEntry(unsigned ea) { spare_ = new unsigned(ea); }  // line 21: HOT-ALLOC-020
  unsigned* spare_ = nullptr;
};
