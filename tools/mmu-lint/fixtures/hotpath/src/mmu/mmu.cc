// Fixture: one banned token per hot body in the Mmu tier.
#include <cstdio>
#include <mutex>
struct FixtureMmu {
  unsigned Access(unsigned ea) {
    if (ea == 0) {
      throw ea;  // line 7: HOT-THROW-021
    }
    return ea;
  }
  unsigned Reload(unsigned ea) {
    std::mutex m;  // line 12: HOT-LOCK-022
    m.lock();
    m.unlock();
    return ea;
  }
  unsigned SoftwareRefill(unsigned ea) {
    printf("refill %u\n", ea);  // line 18: HOT-IO-023
    return ea;
  }
  void InstallTlbEntry(unsigned ea) { spare_ = new unsigned(ea); }  // line 21: HOT-ALLOC-020
  unsigned AccessRun(unsigned ea, unsigned gen) {
    const unsigned key = unsigned(reinterpret_cast<unsigned long>(&gen));  // line 23: SPAN-GEN-027
    long now = 0;
    clock_gettime(0, &now);  // line 25: SPAN-GEN-027
    return ea + key + gen + unsigned(now);
  }
  unsigned* spare_ = nullptr;
};
