// Fixture: a clean span-validity generation combiner — sums counters, nothing else.
struct FixtureMmuH {
  unsigned FastGen() const { return seg_gen_ + ibat_gen_ + dbat_gen_; }
  unsigned seg_gen_ = 0;
  unsigned ibat_gen_ = 0;
  unsigned dbat_gen_ = 0;
};
