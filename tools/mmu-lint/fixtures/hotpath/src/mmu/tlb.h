// Fixture: the pure-translation tier dispatching into the PTE tree; TouchLru is
// deliberately missing so HOT-MISSING-025 proves the rule table cannot rot silently.
struct FixtureTlb {
  const unsigned* LookupPtr(unsigned vp) {
    last_ = backing_->WalkPte(vp);  // line 5: HOT-VIRT-024
    return &last_;
  }
  struct Backing {
    virtual unsigned WalkPte(unsigned vp) = 0;
  };
  void TouchLruRun(unsigned vp, unsigned n) { lru_ = vp + n; }
  Backing* backing_ = nullptr;
  unsigned last_ = 0;
  unsigned lru_ = 0;
};
