// Fixture: the pure-translation tier dispatching into the PTE tree; TouchLru is
// deliberately missing so HOT-MISSING-025 proves the rule table cannot rot silently.
struct FixtureTlb {
  const unsigned* LookupPtr(unsigned vp) {
    last_ = backing_->WalkPte(vp);  // line 5: HOT-VIRT-024
    return &last_;
  }
  struct Backing {
    virtual unsigned WalkPte(unsigned vp) = 0;
  };
  Backing* backing_ = nullptr;
  unsigned last_ = 0;
};
