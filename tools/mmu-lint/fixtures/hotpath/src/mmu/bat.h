// Stages HOT-ATTR-026: a hot header reaching for attribution/observability state
// directly instead of leaving it to machine.h's CycleScope hook.
struct Bat {
  template <typename M>
  void Observe(M& machine) { machine.attr().Charge(1); }
  int lookups = 0;
  void Export() { MetricsRegistry(lookups).Snapshot(); }
};
