// HOT-CLOSURE-030 corpus. Tlb::LookupPtr is a registered hot root (HotFunctions() in
// rules.cc); Grow is only reachable THROUGH it, so the allocation inside Grow violates the
// closure rule even though Grow itself is registered nowhere. DebugDump allocates too but
// is unreachable from any hot root and must stay quiet.

inline TlbEntry* Tlb::LookupPtr(VirtPage vp) {
  if (full_) {
    Grow();
  }
  return Probe(vp);
}

inline void Tlb::Grow() {
  entries_ = new TlbEntry[64];
}

inline void Tlb::DebugDump() {
  char* scratch = new char[256];
  Render(scratch);
}
