// Fixture: tests/ is outside the DET scope, so host randomness here is fine.
#include <cstdlib>
int FixtureShuffleSeed() { return rand(); }
