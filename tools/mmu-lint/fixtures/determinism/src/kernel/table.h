// Fixture: the container is declared here but iterated in table.cc — the rule must see
// across files.
#include <cstdint>
#include <unordered_map>
struct FixtureTable {
  void Drop();
  uint64_t Sum() const;
  std::unordered_map<uint32_t, uint32_t> live_;
};
