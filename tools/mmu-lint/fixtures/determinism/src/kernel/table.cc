// Fixture: hash-order iteration over state declared in the header.
#include "src/kernel/table.h"
void FixtureTable::Drop() {
  for (auto& [k, v] : live_) {  // line 4: DET-ITER-012
    v = 0;
  }
}
uint64_t FixtureTable::Sum() const {
  uint64_t total = 0;
  for (auto it = live_.begin(); it != live_.end(); ++it) {  // line 10: DET-ITER-012
    total += it->second;
  }
  const auto hit = live_.find(0);  // membership lookups stay legal
  return total + (hit != live_.end() ? 1 : 0);
}
