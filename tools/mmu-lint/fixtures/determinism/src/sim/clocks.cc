// Fixture: host time and libc randomness leaking into simulated state.
#include <chrono>
#include <cstdlib>
unsigned FixtureNow() {
  auto t = std::chrono::steady_clock::now();  // line 5: DET-TIME-011
  return static_cast<unsigned>(t.time_since_epoch().count()) + rand();  // line 6: DET-RAND-010
}
void FixtureSeed() {
  srand(42);  // mmu-lint-allow(DET-RAND-010): fixture proves suppression works
}
