// Fixture twin of the real src/sim/rng.h: the allowlisted file may name host PRNGs.
#include <random>
struct FixtureRng {
  std::mt19937 engine;  // exempt: this IS the sanctioned randomness source
};
