// Fixture: a registry that abandoned the X-macro visitor for a hand list (CNT-FOREACH-031)
// and publishes a gauge the rule table does not know (CNT-SYS-034).
#include <string>
#include <utility>
#include <vector>
std::vector<std::pair<std::string, double>> FixtureSnapshot() {
  return {
      {"sys.htab_utilization", 0.0}, {"sys.htab_valid", 0.0},
      {"sys.htab_live", 0.0},        {"sys.htab_zombies", 0.0},
      {"sys.htab_hit_rate", 0.0},    {"sys.evict_to_reload_ratio", 0.0},
      {"sys.dtlb_miss_rate", 0.0},   {"sys.itlb_miss_rate", 0.0},
      {"sys.tlb_kernel_share", 0.0}, {"sys.extra_gauge", 0.0},
  };
}
