// Fixture: the probe-name source of truth.
const char* FixtureProbeName(int probe) {
  switch (probe) {
    case 0:
      return "page_fault";
    case 1:
      return "cow_fault";
  }
  return "?";
}
