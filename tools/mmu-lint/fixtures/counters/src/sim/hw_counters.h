// Fixture twin of the real X-macro header, with a deliberately tiny field list: the
// reference checks must treat THIS list as the source of truth, so real counter names
// that are absent here (e.g. htab_hits) must be flagged.
#define PPCMM_HW_COUNTER_FIELDS(X) \
  X(cycles, "simulated cycles")    \
  X(page_faults, "faults")

#define PPCMM_HW_GAUGE_FIELDS(X) \
  X(kernel_tlb_highwater, "max TLB entries holding kernel PTEs")
