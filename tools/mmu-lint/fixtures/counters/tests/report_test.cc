// Fixture: dotted references in test string literals, valid and not.
#include <string>
std::string FixtureGood1() { return "hw.cycles"; }
std::string FixtureBad1() { return "hw.htab_hits"; }  // line 4: CNT-REF-030 (not in the mini list)
std::string FixtureGood2() { return "lat.page_fault.p50"; }
std::string FixtureBad2() { return "lat.cow_fault.p42"; }  // line 6: CNT-LAT-032
std::string FixtureGood3() { return "sys.htab_valid"; }
std::string FixtureBad3() { return "sys.wat"; }  // line 8: CNT-SYS-034
