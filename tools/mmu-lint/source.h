// Token/preprocessor-level view of one source file.
//
// mmu-lint never parses C++ properly; every check works on (a) the #include list, (b) the
// identifier stream with comments and literals blanked out, and (c) string literals with
// comments blanked out. The stripper keeps newlines, so byte offsets map to the original
// line numbers and diagnostics stay clickable.

#ifndef PPCMM_TOOLS_MMU_LINT_SOURCE_H_
#define PPCMM_TOOLS_MMU_LINT_SOURCE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mmulint {

struct Include {
  std::string target;  // include path as written, e.g. "src/mmu/tlb.h"
  uint32_t line = 0;
};

struct SourceFile {
  std::string path;  // root-relative with forward slashes, e.g. "src/mmu/tlb.h"
  std::string raw;   // file contents as read

  // `code`: comments AND string/char literal contents blanked with spaces (quotes kept).
  // `code_with_strings`: only comments blanked — the counter checks read literals here.
  std::string code;
  std::string code_with_strings;

  std::vector<Include> includes;  // quoted includes only; <system> headers are ignored

  // Lines carrying a `mmu-lint-allow(RULE-ID[, RULE-ID...])` comment. A suppression on
  // line N silences matching diagnostics on lines N and N+1 ("*" silences every rule).
  std::map<uint32_t, std::set<std::string>> allow;

  // Function-level contract annotations, parsed from the raw text (they live in comments):
  //   // mmu-lint-deferred-flush(FLUSH-CONTRACT-029): <reason>
  //   // mmu-lint-ambient(ATTR-COVER-032): <reason>
  // An annotation applies to the function definition whose [name, body-end] byte range
  // contains it — put it on the signature line or inside the body. The reason is required;
  // an empty one is reported as a violation of the annotated rule, not silently honoured.
  struct Annotation {
    uint32_t line = 0;
    size_t pos = 0;  // byte offset of the marker (raw and stripped views share offsets)
    std::string rule;
    std::string reason;
  };
  std::vector<Annotation> deferred_flush;  // mmu-lint-deferred-flush markers
  std::vector<Annotation> ambient;         // mmu-lint-ambient markers

  bool Suppressed(uint32_t line, const std::string& rule) const;

  // First annotation in `list` whose marker lies in [begin, end) and names `rule`.
  static const Annotation* AnnotationIn(const std::vector<Annotation>& list, size_t begin,
                                        size_t end, const std::string& rule);
};

// Loads and strips one file. Returns false (and fills *error) if unreadable.
bool LoadSource(const std::string& fs_path, const std::string& rel_path, SourceFile* out,
                std::string* error);

// 1-based line number of byte offset `pos` in `text`.
uint32_t LineOf(const std::string& text, size_t pos);

// Every occurrence of `ident` in `text` as a whole identifier (not a substring of a longer
// identifier); returns byte offsets.
std::vector<size_t> FindIdentifier(const std::string& text, const std::string& ident);

// Byte offset just past the identifier's matching close-token starting at `open_pos`
// (which must hold `open`), honouring nesting. Returns std::string::npos when unbalanced.
size_t MatchForward(const std::string& text, size_t open_pos, char open, char close);

}  // namespace mmulint

#endif  // PPCMM_TOOLS_MMU_LINT_SOURCE_H_
