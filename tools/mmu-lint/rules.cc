#include "tools/mmu-lint/rules.h"

namespace mmulint {

const std::vector<Layer>& Layers() {
  static const std::vector<Layer> kLayers = {
      {"src/sim/", 1},       // machine substrate: clocks, caches, counters, RNG
      {"src/mmu/", 2},       // PowerPC translation hardware model
      {"src/pagetable/", 2},  // Linux PTE tree (peer of mmu — neither may see the other)
      {"src/kernel/", 3},    // software: tasks, VM, flush policy, page cache
      {"src/core/", 4},      // composition root / facade (System wires everything below)
      {"src/obs/", 5},       // observability: exporters may read core, never the reverse
      {"src/workloads/", 6},  // benchmark drivers on top of the facade
      {"src/verify/", 7},    // oracles and auditors see the whole stack; nothing sees them
  };
  return kLayers;
}

const std::vector<ClosureRule>& ClosureRules() {
  static const std::vector<ClosureRule> kRules = {
      {"LAYER-ORACLE-002",
       {"src/verify/fuzz/reference_mmu.h", "src/verify/fuzz/reference_mmu.cc",
        "src/verify/fuzz/reference_tlb.h", "src/verify/fuzz/reference_cache.h",
        "src/verify/fuzz/reference_vma.h", "src/verify/fuzz/op_stream.h",
        "src/verify/fuzz/op_stream.cc"},
       {"src/mmu/", "src/kernel/", "src/pagetable/"},
       "the differential-fuzz oracle must stay independent of the implementation it checks"},
      {"LAYER-HOT-OBS-003",
       {"src/sim/machine.h", "src/sim/cache.h", "src/sim/memory.h", "src/mmu/tlb.h",
        "src/mmu/mmu.h", "src/mmu/hash_table.h", "src/mmu/bat.h", "src/mmu/segment_regs.h"},
       {"src/obs/"},
       "hot-path headers must not pull observability code into every translation unit"},
  };
  return kRules;
}

const std::vector<BannedIdent>& DeterminismBans() {
  static const std::vector<BannedIdent> kBans = {
      {"DET-RAND-010", "rand", "libc rand() is seeded per-process",
       "draw from the owning component's ppcmm::Rng instead"},
      {"DET-RAND-010", "srand", "libc PRNG seeding bypasses the simulator's seed plumbing",
       "seed a ppcmm::Rng explicitly instead"},
      {"DET-RAND-010", "random_device", "std::random_device is nondeterministic by design",
       "derive a seed from the run's configured seed instead"},
      {"DET-RAND-010", "mt19937", "host-library PRNGs are not part of simulated state",
       "use ppcmm::Rng (src/sim/rng.h)"},
      {"DET-RAND-010", "mt19937_64", "host-library PRNGs are not part of simulated state",
       "use ppcmm::Rng (src/sim/rng.h)"},
      {"DET-RAND-010", "default_random_engine", "engine choice varies across standard libraries",
       "use ppcmm::Rng (src/sim/rng.h)"},
      {"DET-RAND-010", "drand48", "libc PRNG state is process-global",
       "use ppcmm::Rng (src/sim/rng.h)"},
      {"DET-TIME-011", "system_clock", "wall-clock reads make runs unrepeatable",
       "use the simulated cycle counter (Machine::counters().cycles)"},
      {"DET-TIME-011", "steady_clock", "host time must not leak into simulated state",
       "use the simulated cycle counter (Machine::counters().cycles)"},
      {"DET-TIME-011", "high_resolution_clock", "host time must not leak into simulated state",
       "use the simulated cycle counter (Machine::counters().cycles)"},
      {"DET-TIME-011", "gettimeofday", "host time must not leak into simulated state",
       "use the simulated cycle counter (Machine::counters().cycles)"},
      {"DET-TIME-011", "clock_gettime", "host time must not leak into simulated state",
       "use the simulated cycle counter (Machine::counters().cycles)"},
      {"DET-TIME-011", "timespec_get", "host time must not leak into simulated state",
       "use the simulated cycle counter (Machine::counters().cycles)"},
  };
  return kBans;
}

const std::vector<std::string>& DeterminismScope() {
  static const std::vector<std::string> kScope = {"src/"};
  return kScope;
}

const std::vector<std::string>& DeterminismAllowlist() {
  static const std::vector<std::string> kAllow = {
      "src/sim/rng.h",  // the one sanctioned randomness source (seeded, splittable)
  };
  return kAllow;
}

const std::vector<HotFunction>& HotFunctions() {
  // banned_virtual lists the PteBackingSource entry points that may NOT be reached from the
  // body. The pure-translation tier (TLB/cache lookups) must never touch the PTE tree; the
  // reload tier (Mmu::Reload / SoftwareRefill) exists to walk it, and Mmu::Access's deferred
  // C-bit path legitimately calls MarkPteDirty, so only WalkPte is banned there.
  static const std::vector<HotFunction> kHot = {
      {"src/sim/machine.h", "Machine", "TouchData", {"WalkPte", "MarkPteDirty"}},
      {"src/sim/machine.h", "Machine", "TouchDataRun", {"WalkPte", "MarkPteDirty"}},
      {"src/sim/machine.h", "Machine", "TouchInstruction", {"WalkPte", "MarkPteDirty"}},
      {"src/sim/machine.h", "Machine", "TouchInstructionRun", {"WalkPte", "MarkPteDirty"}},
      {"src/sim/cache.h", "Cache", "AccessLine", {"WalkPte", "MarkPteDirty"}},
      {"src/sim/cache.h", "Cache", "AccessLineRun", {"WalkPte", "MarkPteDirty"}},
      {"src/sim/cache.h", "Cache", "AccessUncached", {"WalkPte", "MarkPteDirty"}},
      {"src/sim/cache.h", "Cache", "AccessUncachedRun", {"WalkPte", "MarkPteDirty"}},
      {"src/mmu/tlb.h", "Tlb", "LookupPtr", {"WalkPte", "MarkPteDirty"}},
      {"src/mmu/tlb.h", "Tlb", "TouchLru", {"WalkPte", "MarkPteDirty"}},
      {"src/mmu/tlb.h", "Tlb", "TouchLruRun", {"WalkPte", "MarkPteDirty"}},
      {"src/mmu/hash_table.cc", "HashTable", "Search", {"WalkPte", "MarkPteDirty"}},
      {"src/mmu/mmu.cc", "Mmu", "Access", {"WalkPte"}},
      {"src/mmu/mmu.cc", "Mmu", "AccessRun", {"WalkPte"}},
      {"src/mmu/mmu.cc", "Mmu", "Reload", {}},
      {"src/mmu/mmu.cc", "Mmu", "SoftwareRefill", {}},
      {"src/mmu/mmu.cc", "Mmu", "InstallTlbEntry", {"WalkPte", "MarkPteDirty"}},
  };
  return kHot;
}

const std::vector<HotFunction>& SpanValidityFunctions() {
  // The two places a translation span is judged valid: the replay gate in AccessRun and
  // the generation combiner every memo comparison keys off. banned_virtual is unused here
  // (AccessRun's PTE-tree ban lives in its HotFunctions() entry).
  static const std::vector<HotFunction> kSpan = {
      {"src/mmu/mmu.cc", "Mmu", "AccessRun", {}},
      {"src/mmu/mmu.h", "Mmu", "FastGen", {}},
  };
  return kSpan;
}

const std::vector<BannedIdent>& SpanValidityBans() {
  static const std::vector<BannedIdent> kBans = {
      {"SPAN-GEN-027", "reinterpret_cast", "pointer identity laundered into span validity",
       "key validity off segment/BAT/TLB generation counters, never off addresses"},
      {"SPAN-GEN-027", "uintptr_t", "pointer identity laundered into span validity",
       "key validity off segment/BAT/TLB generation counters, never off addresses"},
      {"SPAN-GEN-027", "intptr_t", "pointer identity laundered into span validity",
       "key validity off segment/BAT/TLB generation counters, never off addresses"},
      {"SPAN-GEN-027", "system_clock", "wall-clock time in span validity",
       "spans invalidate via generation counters, not time"},
      {"SPAN-GEN-027", "steady_clock", "wall-clock time in span validity",
       "spans invalidate via generation counters, not time"},
      {"SPAN-GEN-027", "high_resolution_clock", "wall-clock time in span validity",
       "spans invalidate via generation counters, not time"},
      {"SPAN-GEN-027", "clock_gettime", "wall-clock time in span validity",
       "spans invalidate via generation counters, not time"},
      {"SPAN-GEN-027", "gettimeofday", "wall-clock time in span validity",
       "spans invalidate via generation counters, not time"},
      {"SPAN-GEN-027", "timespec_get", "wall-clock time in span validity",
       "spans invalidate via generation counters, not time"},
  };
  return kBans;
}

const std::vector<BannedIdent>& HotPathBans() {
  static const std::vector<BannedIdent> kBans = {
      {"HOT-ALLOC-020", "new", "allocation on the translation fast path",
       "preallocate in the owning component's constructor"},
      {"HOT-ALLOC-020", "malloc", "allocation on the translation fast path",
       "preallocate in the owning component's constructor"},
      {"HOT-ALLOC-020", "calloc", "allocation on the translation fast path",
       "preallocate in the owning component's constructor"},
      {"HOT-ALLOC-020", "realloc", "allocation on the translation fast path",
       "preallocate in the owning component's constructor"},
      {"HOT-ALLOC-020", "make_unique", "allocation on the translation fast path",
       "preallocate in the owning component's constructor"},
      {"HOT-ALLOC-020", "make_shared", "allocation on the translation fast path",
       "preallocate in the owning component's constructor"},
      {"HOT-ALLOC-020", "push_back", "possible reallocation on the translation fast path",
       "size the container up front and index into it"},
      {"HOT-ALLOC-020", "emplace_back", "possible reallocation on the translation fast path",
       "size the container up front and index into it"},
      {"HOT-THROW-021", "throw", "exceptions on the fast path defeat the three-load budget",
       "report failure through the return value (std::optional / AccessResult)"},
      {"HOT-LOCK-022", "mutex", "the simulator is single-threaded per Machine; locks here are a design error",
       "keep Machine state thread-confined (SweepRunner gives each task its own System)"},
      {"HOT-LOCK-022", "lock_guard", "the simulator is single-threaded per Machine; locks here are a design error",
       "keep Machine state thread-confined"},
      {"HOT-LOCK-022", "unique_lock", "the simulator is single-threaded per Machine; locks here are a design error",
       "keep Machine state thread-confined"},
      {"HOT-LOCK-022", "scoped_lock", "the simulator is single-threaded per Machine; locks here are a design error",
       "keep Machine state thread-confined"},
      {"HOT-IO-023", "cout", "stream I/O on the fast path",
       "record into HwCounters/LatencyProbes and export after the run"},
      {"HOT-IO-023", "cerr", "stream I/O on the fast path",
       "record into HwCounters/LatencyProbes and export after the run"},
      {"HOT-IO-023", "printf", "stream I/O on the fast path",
       "record into HwCounters/LatencyProbes and export after the run"},
      {"HOT-IO-023", "fprintf", "stream I/O on the fast path",
       "record into HwCounters/LatencyProbes and export after the run"},
      {"HOT-IO-023", "ostringstream", "string formatting on the fast path",
       "record into HwCounters/LatencyProbes and export after the run"},
      {"HOT-IO-023", "stringstream", "string formatting on the fast path",
       "record into HwCounters/LatencyProbes and export after the run"},
  };
  return kBans;
}

const std::vector<std::string>& AttrCleanHeaders() {
  // The LAYER-HOT-OBS-003 root set minus src/sim/machine.h: machine.h is the sanctioned
  // owner of the CycleLedger and the CycleScope hook, every other hot header must stay
  // attribution-free so that disabling the ledger provably compiles to nothing there.
  static const std::vector<std::string> kHeaders = {
      "src/sim/cache.h", "src/sim/memory.h",     "src/mmu/tlb.h",          "src/mmu/mmu.h",
      "src/mmu/bat.h",   "src/mmu/hash_table.h", "src/mmu/segment_regs.h",
  };
  return kHeaders;
}

const std::vector<BannedIdent>& AttrBans() {
  static const std::vector<BannedIdent> kBans = {
      {"HOT-ATTR-026", "attr", "direct cycle-ledger access in a hot header",
       "open a CycleScope (src/sim/machine.h) at the call site instead"},
      {"HOT-ATTR-026", "CycleLedger", "a hot header must not hold ledger state",
       "the one ledger lives in Machine; charge through CycleScope"},
      {"HOT-ATTR-026", "MetricsRegistry", "metrics aggregation from a hot header",
       "MetricsRegistry reads whole-System state after the run (src/obs/metrics.h)"},
      {"HOT-ATTR-026", "BenchReport", "bench reporting from a hot header",
       "feed BenchReport from the bench driver, not from simulation code"},
  };
  return kBans;
}

const std::vector<BannedIdent>& SmpIpiBans() {
  static const std::vector<BannedIdent> kBans = {
      {"SMP-IPI-028", "ShootdownInvalidatePage",
       "direct cross-CPU TLB mutation outside the IPI shootdown path — no IPI is sent, no "
       "cycles are charged, and the shootdown counters stay silent",
       "route the invalidation through FlushEngine (src/kernel/flush.cc), which pays the "
       "IPI cost and handles idle CPUs via the deferred-flush protocol"},
      {"SMP-IPI-028", "ShootdownInvalidateAll",
       "direct cross-CPU TLB mutation outside the IPI shootdown path — no IPI is sent, no "
       "cycles are charged, and the shootdown counters stay silent",
       "route the invalidation through FlushEngine (src/kernel/flush.cc), which pays the "
       "IPI cost and handles idle CPUs via the deferred-flush protocol"},
  };
  return kBans;
}

const std::vector<std::string>& SmpIpiAllowlist() {
  static const std::vector<std::string> kAllow = {
      "src/mmu/mmu.h",        // defines the shootdown landing pads
      "src/mmu/mmu.cc",       // may hold their out-of-line bodies
      "src/kernel/flush.cc",  // the IPI protocol: the only sanctioned caller
  };
  return kAllow;
}

const std::vector<ReceiverType>& ReceiverTypes() {
  // Member/variable names whose class is fixed by convention across the tree. The builder
  // falls back to `Class&`/`Class*` parameter and local-declaration inference for names
  // not listed here; an unknown receiver produces no edge at all.
  static const std::vector<ReceiverType> kReceivers = {
      {"machine_", "Machine"},
      {"machine", "Machine"},
      {"mmu_", "Mmu"},
      {"htab_", "HashTable"},
      {"htab", "HashTable"},
      {"itlb", "Tlb"},
      {"dtlb", "Tlb"},
      {"tlb", "Tlb"},
      {"ibats_", "BatArray"},
      {"dbats_", "BatArray"},
      {"bats", "BatArray"},
      {"segments", "SegmentRegs"},
      {"backing_", "PteBackingSource"},
      {"page_table", "PageTable"},
      {"kernel_page_table_", "PageTable"},
      {"table", "PageTable"},
      {"mem_", "MemManager"},
      {"page_cache_", "PageCache"},
      {"flusher_", "FlushEngine"},
      {"vsids_", "VsidSpace"},
      {"allocator_", "PageAllocator"},
      {"scheduler_", "Scheduler"},
  };
  return kReceivers;
}

const std::vector<ReceiverType>& MethodReturnTypes() {
  // Accessor methods whose return type anchors a chained call: `mmu_->htab().Insert(...)`.
  static const std::vector<ReceiverType> kMethods = {
      {"machine", "Machine"},   {"mmu", "Mmu"},
      {"htab", "HashTable"},    {"segments", "SegmentRegs"},
      {"itlb", "Tlb"},          {"dtlb", "Tlb"},
      {"counters", "HwCounters"}, {"memory", "PhysicalMemory"},
      {"allocator", "PageAllocator"}, {"task", "Task"},
      {"mem", "MemManager"},    {"page_cache", "PageCache"},
      {"flusher", "FlushEngine"}, {"vsids", "VsidSpace"},
  };
  return kMethods;
}

const std::vector<FlushMutator>& FlushMutators() {
  // PageTable::Map is deliberately absent: mapping a previously-invalid page cannot leave
  // a stale positive translation in any TLB (the paper's invariant concerns entries that
  // were visible). HashTable::MarkChanged only sets the C bit, which is a strengthening
  // write the TLBs already agree with.
  static const std::vector<FlushMutator> kMutators = {
      {"PageTable::Update", "the PTE tree", false,
       "pair the PTE write with FlushEngine::FlushPage/FlushRange (src/kernel/flush.cc), "
       "which runs tlbie plus the IPI shootdown round"},
      {"PageTable::Unmap", "the PTE tree", false,
       "pair the PTE write with FlushEngine::FlushPage/FlushRange (src/kernel/flush.cc), "
       "which runs tlbie plus the IPI shootdown round"},
      {"HashTable::Insert", "the HTAB", false,
       "invalidate the displaced translation via Mmu::TlbInvalidatePage (tlbie) or route "
       "the update through FlushEngine (src/kernel/flush.cc)"},
      {"SegmentRegs::Set", "the segment registers", true, ""},
      {"SegmentRegs::LoadAll", "the segment registers", true, ""},
      {"SegmentRegs::LoadUserSegments", "the segment registers", true, ""},
  };
  return kMutators;
}

const std::vector<std::string>& FlushPrimitives() {
  // HashTable::InvalidatePage / InvalidatePteg are intentionally NOT primitives: evicting
  // the PTE from the HTAB leaves the TLB copy live — only a tlbie (TlbInvalidate*), the
  // IPI shootdown path, or VSID retirement (stale entries become architecturally
  // unreachable) actually restores coherence.
  static const std::vector<std::string> kPrimitives = {
      "Mmu::TlbInvalidatePage",       "Mmu::TlbInvalidateAll",
      "Mmu::TlbInvalidateVsid",       "Mmu::ShootdownInvalidatePage",
      "Mmu::ShootdownInvalidateAll",  "FlushEngine::FlushPage",
      "FlushEngine::FlushRange",      "FlushEngine::FlushContext",
      "FlushEngine::ShootdownRound",  "FlushEngine::RunDeferredFlush",
      "FlushEngine::RolloverInvalidateAll", "VsidSpace::Retire",
  };
  return kPrimitives;
}

const std::vector<ClosureBoundary>& HotClosureBoundaries() {
  static const std::vector<ClosureBoundary> kBoundaries = {
      // No entries yet: the whole reachable closure currently passes the purity bans.
      // Add an entry only with an audit note explaining why the descent may stop there.
  };
  return kBoundaries;
}

const std::vector<SmpConfinedToken>& SmpConfinedTokens() {
  static const std::vector<SmpConfinedToken> kTokens = {
      {"AddCyclesOn", false},   // charges another CPU's local clock
      {"SetCurrentCpu", false}, // moves the serialized spotlight
      {"banks_", false},        // the raw per-CPU bank vector
      {"itlb", true},           // itlb(cpu): another CPU's TLB; itlb() is the spotlight view
      {"dtlb", true},
      {"segments", true},
  };
  return kTokens;
}

const std::vector<std::string>& SmpGateways() {
  static const std::vector<std::string> kGateways = {
      "Kernel::SwitchCpu",              // the spotlight switch itself
      "Kernel::HandleVsidRollover",     // rollover reloads every CPU's segment bank
      "Kernel::SetupKernelTranslation", // boot: kernel segments installed on every CPU
      "Kernel::ForEachLiveTranslation", // whole-machine sweep reads every bank (read-only)
      "FlushEngine::ShootdownRound",    // the IPI protocol: charges remote clocks
      "FlushEngine::RunDeferredFlush",  // deferred tlbia when an idle-skipped CPU wakes
      "FlushEngine::RolloverInvalidateAll",  // rollover's cross-CPU invalidate + charge
  };
  return kGateways;
}

const std::vector<std::string>& SmpConfineExemptFiles() {
  static const std::vector<std::string> kExempt = {
      "src/sim/machine.h",  // defines AddCyclesOn/SetCurrentCpu and the per-CPU clocks
      "src/sim/attr.h",     // the ledger's own per-CPU spotlight hook
      "src/mmu/mmu.h",      // defines banks_ and the per-CPU accessors
      "src/mmu/mmu.cc",     // out-of-line bodies of the same
  };
  return kExempt;
}

const std::vector<std::string>& KernelEntryPoints() {
  // The kernel's public surface: everything a workload, bench, or test can call. Ambient
  // (unattributed = user) time flows in from here; ATTR-COVER-032 walks the graph from
  // these roots and every AddCycles site reached without crossing a CycleScope fires.
  static const std::vector<std::string> kRoots = {
      "Kernel::CreateTask",    "Kernel::SwitchTo",       "Kernel::SwitchCpu",
      "Kernel::Fork",          "Kernel::Exec",           "Kernel::Exit",
      "Kernel::NullSyscall",   "Kernel::Mmap",           "Kernel::Munmap",
      "Kernel::MapFramebuffer", "Kernel::SetFramebufferBat",
      "Kernel::FileRead",      "Kernel::FileWrite",      "Kernel::ShmCreate",
      "Kernel::ShmAttach",     "Kernel::ShmDetach",      "Kernel::ShmDestroy",
      "Kernel::CreatePipe",    "Kernel::PipeWrite",      "Kernel::PipeRead",
      "Kernel::PipeWriteBlocking", "Kernel::PipeReadBlocking",
      "Kernel::Yield",         "Kernel::WakeOne",        "Kernel::WakeAll",
      "Kernel::UserTouch",     "Kernel::UserTouchRun",   "Kernel::UserTouchRange",
      "Kernel::UserExecute",   "Kernel::RunIdle",        "Kernel::HandlePageFault",
      "Kernel::HandleCowFault", "Kernel::HandleVsidRollover", "Kernel::InjectZombieFlood",
  };
  return kRoots;
}

const std::vector<std::string>& SysGaugeNames() {
  static const std::vector<std::string> kNames = {
      "htab_utilization", "htab_valid",           "htab_live",
      "htab_zombies",     "htab_hit_rate",        "evict_to_reload_ratio",
      "dtlb_miss_rate",   "itlb_miss_rate",       "tlb_kernel_share",
  };
  return kNames;
}

const std::vector<std::string>& LatSpecialNames() {
  static const std::vector<std::string> kNames = {
      "lat.htab_hash_miss.total",
      "lat.htab_hash_miss.max_per_pteg",
      "lat.htab_hash_miss.ptegs_touched",
  };
  return kNames;
}

std::vector<std::pair<std::string, std::string>> ListRules() {
  return {
      {"LAYER-DAG-001", "includes must point down the layer DAG (sim < mmu|pagetable < kernel "
                        "< core < obs < workloads < verify; peers never include peers)"},
      {"LAYER-ORACLE-002", "fuzz-oracle include closure must not reach src/mmu/, src/kernel/, "
                           "or src/pagetable/"},
      {"LAYER-HOT-OBS-003", "hot-path header include closure must not reach src/obs/"},
      {"DET-RAND-010", "no host PRNG in simulated state (use src/sim/rng.h)"},
      {"DET-TIME-011", "no wall-clock reads in simulated state (use the cycle counter)"},
      {"DET-ITER-012", "no iteration over unordered containers in simulated state"},
      {"HOT-ALLOC-020", "no allocation in hot-path function bodies"},
      {"HOT-THROW-021", "no throw in hot-path function bodies"},
      {"HOT-LOCK-022", "no locks in hot-path function bodies"},
      {"HOT-IO-023", "no stream I/O or string formatting in hot-path function bodies"},
      {"HOT-VIRT-024", "no PTE-tree virtual dispatch from pure-translation-tier bodies"},
      {"HOT-MISSING-025", "every registered hot function must still exist where the rule "
                          "table says it does"},
      {"HOT-ATTR-026", "no direct MetricsRegistry/BenchReport/cycle-ledger access in hot "
                       "headers; attribution goes through CycleScope only"},
      {"SPAN-GEN-027", "translation-span validity may key only off generation counters — "
                       "no wall-clock reads or pointer-identity laundering in the "
                       "registered span-validity bodies"},
      {"SMP-IPI-028", "no direct cross-CPU TLB mutation (Mmu::ShootdownInvalidate*) outside "
                      "the IPI shootdown path in src/kernel/flush.cc"},
      {"FLUSH-CONTRACT-029", "every HTAB/PTE/segment mutation must reach a flush primitive "
                             "(tlbie/tlbia, the IPI shootdown path, or VSID retirement) on "
                             "the call graph, or carry a mmu-lint-deferred-flush annotation"},
      {"HOT-CLOSURE-030", "purity bans (no alloc/throw/lock/stream-IO) hold on the whole "
                          "call-graph closure reachable from the registered hot roots, not "
                          "just the roots themselves"},
      {"SMP-CONFINE-031", "per-CPU state (banks_, itlb(cpu)/dtlb(cpu)/segments(cpu), "
                          "AddCyclesOn, SetCurrentCpu) only inside the spotlight-switch and "
                          "shootdown gateway functions"},
      {"ATTR-COVER-032", "every Machine::AddCycles/AddCyclesOn site in src/kernel must be "
                         "dominated by a CycleScope on every call-graph path from the "
                         "kernel entry points (or carry a mmu-lint-ambient annotation)"},
      {"CNT-REF-030", "every hw.<name> reference must name a real HwCounters X-macro field"},
      {"CNT-FOREACH-031", "MetricsRegistry must publish hw counters via ForEachField, not a "
                          "hand-maintained list"},
      {"CNT-LAT-032", "every lat.<probe>.<stat> reference must name a real probe and stat"},
      {"CNT-XMACRO-033", "the HwCounters X-macro lists must parse and be non-empty"},
      {"CNT-SYS-034", "sys.<name> gauges in metrics.cc and the rule table must agree, and "
                      "references must name one of them"},
  };
}

bool RuleEnabled(const LintConfig& config, const std::string& rule_id) {
  if (config.rule_prefixes.empty()) {
    return true;
  }
  for (const std::string& p : config.rule_prefixes) {
    if (rule_id.compare(0, p.size(), p) == 0) {
      return true;
    }
  }
  return false;
}

void Emit(const SourceFile& sf, uint32_t line, const std::string& rule, const std::string& message,
          const std::string& fix, std::vector<Diagnostic>* out) {
  if (sf.Suppressed(line, rule)) {
    return;
  }
  out->push_back({sf.path, line, rule, message, fix});
}

}  // namespace mmulint
