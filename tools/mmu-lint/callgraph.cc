#include "tools/mmu-lint/callgraph.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace mmulint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Tokens that look like `name (` but never name a function we want a node or an edge for:
// control flow, operators, casts, and the builtin types that appear as functional casts.
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "if",           "else",          "for",        "while",     "do",       "switch",
      "case",         "default",       "return",     "sizeof",    "alignof",  "alignas",
      "catch",        "throw",         "new",        "delete",    "this",     "operator",
      "static_cast",  "dynamic_cast",  "const_cast", "reinterpret_cast",      "typeid",
      "decltype",     "static_assert", "assert",     "noexcept",  "constexpr",
      "template",     "typename",      "using",      "namespace", "requires", "concept",
      "co_await",     "co_return",     "co_yield",   "not",       "and",      "or",
      "void",         "bool",          "char",       "int",       "unsigned", "signed",
      "long",         "short",         "float",      "double",    "auto",     "size_t",
      "int8_t",       "int16_t",       "int32_t",    "int64_t",   "uint8_t",  "uint16_t",
      "uint32_t",     "uint64_t",      "uintptr_t",  "intptr_t",  "ptrdiff_t",
  };
  return kKeywords;
}

struct ClassRange {
  std::string name;
  size_t begin = 0;  // opening `{`
  size_t end = 0;    // one past the matching `}`
};

struct Token {
  size_t pos = 0;
  std::string text;
};

std::vector<Token> Tokenize(const std::string& code) {
  std::vector<Token> tokens;
  for (size_t i = 0; i < code.size();) {
    if (IsIdentStart(code[i]) && (i == 0 || !IsIdentChar(code[i - 1]))) {
      size_t j = i;
      while (j < code.size() && IsIdentChar(code[j])) {
        ++j;
      }
      tokens.push_back({i, code.substr(i, j - i)});
      i = j;
    } else {
      ++i;
    }
  }
  return tokens;
}

size_t SkipWs(const std::string& code, size_t pos) {
  return code.find_first_not_of(" \t\n", pos);
}

// Last non-whitespace byte strictly before `pos`, or npos.
size_t PrevNonWs(const std::string& code, size_t pos) {
  while (pos > 0) {
    --pos;
    if (code[pos] != ' ' && code[pos] != '\t' && code[pos] != '\n') {
      return pos;
    }
  }
  return std::string::npos;
}

// Identifier ending at byte `end` (exclusive), or empty.
std::string IdentEndingAt(const std::string& code, size_t end) {
  size_t b = end;
  while (b > 0 && IsIdentChar(code[b - 1])) {
    --b;
  }
  if (b == end || !IsIdentStart(code[b])) {
    return std::string();
  }
  return code.substr(b, end - b);
}

// Offset of the `(` matching the `)` at close_pos, or npos.
size_t MatchBackward(const std::string& code, size_t close_pos) {
  int depth = 0;
  for (size_t i = close_pos + 1; i > 0;) {
    --i;
    if (code[i] == ')') {
      ++depth;
    } else if (code[i] == '(') {
      --depth;
      if (depth == 0) {
        return i;
      }
    }
  }
  return std::string::npos;
}

// Collects class/struct definitions (brace ranges) and names. Forward declarations still
// contribute the name so `Class&` parameter inference works across files.
void ScanClasses(const SourceFile& sf, std::vector<ClassRange>* ranges,
                 std::set<std::string>* classes) {
  const std::string& code = sf.code;
  for (const char* kw : {"class", "struct"}) {
    for (size_t pos : FindIdentifier(code, kw)) {
      const size_t before = PrevNonWs(code, pos);
      if (before != std::string::npos && IsIdentChar(code[before])) {
        const std::string prev = IdentEndingAt(code, before + 1);
        if (prev == "enum") {
          continue;  // enum class: no member functions to index
        }
      }
      size_t p = SkipWs(code, pos + std::string(kw).size());
      if (p == std::string::npos || !IsIdentStart(code[p])) {
        continue;  // `template <class T>` and friends
      }
      size_t q = p;
      while (q < code.size() && IsIdentChar(code[q])) {
        ++q;
      }
      const std::string name = code.substr(p, q - p);
      size_t r = SkipWs(code, q);
      if (r != std::string::npos && code.compare(r, 5, "final") == 0) {
        r = SkipWs(code, r + 5);
      }
      if (r == std::string::npos) {
        continue;
      }
      if (code[r] == ';') {
        classes->insert(name);  // forward declaration
        continue;
      }
      if (code[r] != '{' && code[r] != ':') {
        continue;  // `struct Foo var;`, template parameter, etc.
      }
      const size_t brace = code[r] == '{' ? r : code.find('{', r);
      if (brace == std::string::npos) {
        continue;
      }
      const size_t end = MatchForward(code, brace, '{', '}');
      if (end == std::string::npos) {
        continue;
      }
      classes->insert(name);
      ranges->push_back({name, brace, end});
    }
  }
}

// Advances past a constructor initializer list starting at the `:` at pos. Returns the
// offset of the body `{` or npos if this is not an initializer list followed by a body.
size_t SkipCtorInitList(const std::string& code, size_t pos) {
  size_t p = pos + 1;  // past ':'
  for (;;) {
    p = SkipWs(code, p);
    if (p == std::string::npos || !IsIdentStart(code[p])) {
      return std::string::npos;
    }
    while (p < code.size() && IsIdentChar(code[p])) {
      ++p;
    }
    p = SkipWs(code, p);
    if (p != std::string::npos && code[p] == '<') {  // templated base: Base<T>(...)
      p = MatchForward(code, p, '<', '>');
      if (p == std::string::npos) {
        return std::string::npos;
      }
      p = SkipWs(code, p);
    }
    if (p == std::string::npos || (code[p] != '(' && code[p] != '{')) {
      return std::string::npos;
    }
    p = MatchForward(code, p, code[p], code[p] == '(' ? ')' : '}');
    if (p == std::string::npos) {
      return std::string::npos;
    }
    p = SkipWs(code, p);
    if (p == std::string::npos) {
      return std::string::npos;
    }
    if (code[p] == ',') {
      ++p;
      continue;
    }
    return code[p] == '{' ? p : std::string::npos;
  }
}

// If the token at `tok` opens a function definition, fills *def (file left empty) and the
// owning class (from a `Class::` prefix or the innermost enclosing class brace range) and
// returns true.
bool MatchDefinition(const SourceFile& sf, const std::vector<ClassRange>& ranges,
                     const Token& tok, FuncDef* def, std::string* cls) {
  const std::string& code = sf.code;
  const size_t before = PrevNonWs(code, tok.pos);
  if (before != std::string::npos && code[before] == '~') {
    return false;  // destructors: nothing the graph rules care about
  }
  size_t p = SkipWs(code, tok.pos + tok.text.size());
  if (p == std::string::npos || code[p] != '(') {
    return false;
  }
  p = MatchForward(code, p, '(', ')');
  if (p == std::string::npos) {
    return false;
  }
  // Trailing qualifiers, `noexcept(...)`, and `-> Type` between params and body.
  for (;;) {
    p = SkipWs(code, p);
    if (p == std::string::npos) {
      return false;
    }
    bool skipped = false;
    for (const char* qual : {"const", "noexcept", "override", "final"}) {
      const std::string q(qual);
      if (code.compare(p, q.size(), q) == 0 && !IsIdentChar(code[p + q.size()])) {
        p += q.size();
        const size_t after = SkipWs(code, p);
        if (q == "noexcept" && after != std::string::npos && code[after] == '(') {
          p = MatchForward(code, after, '(', ')');
          if (p == std::string::npos) {
            return false;
          }
        }
        skipped = true;
        break;
      }
    }
    if (!skipped) {
      break;
    }
  }
  if (code.compare(p, 2, "->") == 0) {  // trailing return type
    const size_t brace = code.find('{', p);
    const size_t semi = code.find(';', p);
    if (brace == std::string::npos || (semi != std::string::npos && semi < brace)) {
      return false;
    }
    p = brace;
  }
  if (code[p] == ':' && p + 1 < code.size() && code[p + 1] != ':') {
    p = SkipCtorInitList(code, p);
    if (p == std::string::npos) {
      return false;
    }
  }
  if (code[p] != '{') {
    return false;
  }
  const size_t end = MatchForward(code, p, '{', '}');
  if (end == std::string::npos) {
    return false;
  }
  def->name_pos = tok.pos;
  def->body_begin = p;
  def->body_end = end;
  def->line = LineOf(code, tok.pos);

  cls->clear();
  if (before != std::string::npos && before >= 1 && code[before] == ':' &&
      code[before - 1] == ':') {
    *cls = IdentEndingAt(code, before - 1);
    if (!cls->empty()) {
      return true;
    }
  }
  // In-class definition: innermost class brace range containing the name.
  size_t best_span = std::string::npos;
  for (const ClassRange& range : ranges) {
    if (tok.pos > range.begin && tok.pos < range.end && range.end - range.begin < best_span) {
      best_span = range.end - range.begin;
      *cls = range.name;
    }
  }
  return true;
}

// Declared type of `ident` in code[begin, limit): an identifier naming a known class,
// separated from `ident` only by whitespace / `&` / `*` / `const`. Covers parameters
// (`Tlb& tlb`) and local declarations (`Helper h;`).
std::string InferDeclaredType(const std::string& code, size_t begin, size_t limit,
                              const std::string& ident, const std::set<std::string>& classes) {
  for (size_t pos : FindIdentifier(code, ident)) {
    if (pos < begin || pos >= limit) {
      continue;
    }
    size_t b = pos;
    for (;;) {
      const size_t prev = PrevNonWs(code, b);
      if (prev == std::string::npos) {
        break;
      }
      if (code[prev] == '&' || code[prev] == '*') {
        b = prev;
        continue;
      }
      if (IsIdentChar(code[prev])) {
        const std::string t = IdentEndingAt(code, prev + 1);
        if (t == "const") {
          b = prev + 1 - t.size();
          continue;
        }
        if (classes.count(t) != 0) {
          return t;
        }
      }
      break;
    }
  }
  return std::string();
}

std::string LookupReceiverTable(const std::vector<ReceiverType>& table,
                                const std::string& token) {
  for (const ReceiverType& rt : table) {
    if (rt.token == token) {
      return rt.cls;
    }
  }
  return std::string();
}

}  // namespace

CallGraph BuildCallGraph(const Tree& tree) {
  CallGraph graph;
  struct FileIndex {
    const SourceFile* sf = nullptr;
    std::vector<ClassRange> ranges;
    std::vector<Token> tokens;
  };
  std::map<std::string, FileIndex> files;

  // Pass 1: classes and function definitions across every src/ file, so call resolution
  // in pass 2 sees the whole tree's symbols regardless of file order.
  for (const auto& [path, sf] : tree.files) {
    if (path.compare(0, 4, "src/") != 0) {
      continue;
    }
    FileIndex& fi = files[path];
    fi.sf = &sf;
    ScanClasses(sf, &fi.ranges, &graph.classes);
    fi.tokens = Tokenize(sf.code);
  }
  for (auto& [path, fi] : files) {
    for (const Token& tok : fi.tokens) {
      if (Keywords().count(tok.text) != 0) {
        continue;
      }
      FuncDef def;
      std::string cls;
      if (!MatchDefinition(*fi.sf, fi.ranges, tok, &def, &cls)) {
        continue;
      }
      def.file = path;
      const std::string id = cls.empty() ? tok.text : cls + "::" + tok.text;
      CallNode& node = graph.nodes[id];
      if (node.defs.empty()) {
        node.id = id;
        node.cls = cls;
        node.name = tok.text;
        graph.by_name[tok.text].push_back(id);
      }
      node.defs.push_back(def);
    }
  }

  // Pass 2: call edges inside each definition body (excluding bodies of definitions
  // nested inside it, e.g. methods of a function-local class — those get their own node).
  for (auto& [id, node] : graph.nodes) {
    for (size_t di = 0; di < node.defs.size(); ++di) {
      const FuncDef& def = node.defs[di];
      const FileIndex& fi = files.at(def.file);
      const std::string& code = fi.sf->code;

      std::vector<std::pair<size_t, size_t>> nested;
      for (const auto& [other_id, other] : graph.nodes) {
        for (const FuncDef& od : other.defs) {
          if (od.file == def.file && od.body_begin > def.body_begin &&
              od.body_end < def.body_end) {
            nested.push_back({od.body_begin, od.body_end});
          }
        }
      }

      for (const Token& tok : fi.tokens) {
        if (tok.pos <= def.body_begin || tok.pos >= def.body_end) {
          continue;
        }
        bool in_nested = false;
        for (const auto& [b, e] : nested) {
          if (tok.pos > b && tok.pos < e) {
            in_nested = true;
            break;
          }
        }
        if (in_nested || Keywords().count(tok.text) != 0) {
          continue;
        }
        const size_t after = SkipWs(code, tok.pos + tok.text.size());
        if (after == std::string::npos || code[after] != '(') {
          continue;
        }

        CallSite site;
        site.file = def.file;
        site.line = LineOf(code, tok.pos);
        site.pos = tok.pos;
        site.def_index = di;

        const size_t before = PrevNonWs(code, tok.pos);
        if (before != std::string::npos && before >= 1 && code[before] == ':' &&
            code[before - 1] == ':') {
          const std::string qual = IdentEndingAt(code, before - 1);
          if (qual.empty() || qual == "std") {
            continue;
          }
          site.callee = qual + "::" + tok.text;
          site.kind = CallSite::Kind::kQualified;
          node.calls.push_back(site);
          continue;
        }

        bool has_receiver = false;
        size_t recv_end = std::string::npos;  // one past the receiver expression
        if (before != std::string::npos && code[before] == '.') {
          has_receiver = true;
          recv_end = before;
        } else if (before != std::string::npos && before >= 1 && code[before] == '>' &&
                   code[before - 1] == '-') {
          has_receiver = true;
          recv_end = before - 1;
        }

        if (has_receiver) {
          const size_t rp = PrevNonWs(code, recv_end);
          if (rp == std::string::npos) {
            continue;
          }
          std::string recv_type;
          if (code[rp] == ')') {
            // Chained accessor: `mmu_->htab().Insert(...)` — resolve through the method
            // name in front of the matched `(`.
            const size_t open = MatchBackward(code, rp);
            if (open != std::string::npos) {
              const size_t mp = PrevNonWs(code, open);
              if (mp != std::string::npos && IsIdentChar(code[mp])) {
                recv_type = LookupReceiverTable(MethodReturnTypes(),
                                                IdentEndingAt(code, mp + 1));
              }
            }
          } else if (IsIdentChar(code[rp])) {
            const std::string recv = IdentEndingAt(code, rp + 1);
            if (recv == "this") {
              if (!node.cls.empty()) {
                site.callee = node.cls + "::" + tok.text;
                site.kind = CallSite::Kind::kSameClass;
                node.calls.push_back(site);
              }
              continue;
            }
            recv_type = LookupReceiverTable(ReceiverTypes(), recv);
            if (recv_type.empty()) {
              recv_type = InferDeclaredType(code, def.name_pos, tok.pos, recv, graph.classes);
            }
          }
          if (recv_type.empty()) {
            continue;  // unknown receiver: no edge rather than a wrong edge
          }
          site.callee = recv_type + "::" + tok.text;
          site.kind = CallSite::Kind::kMember;
          node.calls.push_back(site);
          continue;
        }

        // Bare call: same-class method, then unique global name.
        if (!node.cls.empty() &&
            graph.nodes.count(node.cls + "::" + tok.text) != 0) {
          site.callee = node.cls + "::" + tok.text;
          site.kind = CallSite::Kind::kSameClass;
          node.calls.push_back(site);
          continue;
        }
        const auto it = graph.by_name.find(tok.text);
        if (it != graph.by_name.end() && it->second.size() == 1) {
          site.callee = it->second[0];
          site.kind = CallSite::Kind::kUnique;
          node.calls.push_back(site);
        }
      }
    }
  }
  return graph;
}

const CallNode* EnclosingFunction(const CallGraph& graph, const std::string& file, size_t pos,
                                  size_t* def_index) {
  const CallNode* best = nullptr;
  size_t best_span = std::string::npos;
  for (const auto& [id, node] : graph.nodes) {
    for (size_t di = 0; di < node.defs.size(); ++di) {
      const FuncDef& def = node.defs[di];
      if (def.file == file && pos >= def.name_pos && pos < def.body_end &&
          def.body_end - def.name_pos < best_span) {
        best_span = def.body_end - def.name_pos;
        best = &node;
        if (def_index != nullptr) {
          *def_index = di;
        }
      }
    }
  }
  return best;
}

const char* CallKindName(CallSite::Kind kind) {
  switch (kind) {
    case CallSite::Kind::kQualified:
      return "qualified";
    case CallSite::Kind::kMember:
      return "member";
    case CallSite::Kind::kSameClass:
      return "same-class";
    case CallSite::Kind::kUnique:
      return "unique";
  }
  return "unknown";
}

std::string CallGraphToJson(const CallGraph& graph) {
  std::ostringstream out;
  out << "{\n  \"nodes\": [\n";
  bool first_node = true;
  for (const auto& [id, node] : graph.nodes) {
    if (!first_node) {
      out << ",\n";
    }
    first_node = false;
    out << "    {\n";
    out << "      \"id\": \"" << id << "\",\n";
    out << "      \"class\": \"" << node.cls << "\",\n";
    out << "      \"name\": \"" << node.name << "\",\n";
    out << "      \"defs\": " << node.defs.size() << ",\n";
    out << "      \"file\": \"" << node.defs.front().file << "\",\n";
    out << "      \"line\": " << node.defs.front().line << ",\n";
    out << "      \"calls\": [";
    bool first_call = true;
    for (const CallSite& call : node.calls) {
      if (!first_call) {
        out << ",";
      }
      first_call = false;
      out << "\n        {\"callee\": \"" << call.callee << "\", \"line\": " << call.line
          << ", \"kind\": \"" << CallKindName(call.kind) << "\"}";
    }
    out << (first_call ? "]" : "\n      ]") << "\n    }";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::string CallGraphToDot(const CallGraph& graph) {
  std::ostringstream out;
  out << "digraph mmu_lint_callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for (const auto& [id, node] : graph.nodes) {
    out << "  \"" << id << "\" [tooltip=\"" << node.defs.front().file << ":"
        << node.defs.front().line << "\"];\n";
  }
  std::set<std::string> emitted;
  for (const auto& [id, node] : graph.nodes) {
    for (const CallSite& call : node.calls) {
      if (graph.nodes.count(call.callee) == 0) {
        continue;  // keep the rendering to resolved edges; dangling ones add only noise
      }
      std::ostringstream edge;
      edge << "  \"" << id << "\" -> \"" << call.callee << "\" [label=\""
           << CallKindName(call.kind) << "\"];\n";
      if (emitted.insert(edge.str()).second) {
        out << edge.str();
      }
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace mmulint
