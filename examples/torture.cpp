// Torture-harness driver: run the seed-replayable MMU fuzzer from the command line.
//
//   torture [--seed N] [--ops N] [--ncpus N] [--strategy hw|sw|direct] [--audit-period N]
//           [--ram-mb N] [--faults] [--break-flush] [--fixed-config]
//           [--trace-out FILE] [--metrics-out FILE]
//
// Exit status 0 on a clean run, 1 on an auditor violation (the report printed to stderr
// contains everything needed to replay the failure: seed, strategy, config, op trace).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/verify/torture.h"

namespace {

uint64_t ParseNum(const char* flag, const std::string& value) {
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(value.c_str(), &end, 0);
  if (end == value.c_str() || *end != '\0') {
    std::fprintf(stderr, "bad value for %s: %s\n", flag, value.c_str());
    std::exit(2);
  }
  return parsed;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << content << "\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  ppcmm::TortureOptions options;
  options.ops = 20000;
  options.audit_period = 64;
  std::string trace_out;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // --flag=value and --flag value both work.
    std::string inline_value;
    bool has_inline_value = false;
    if (const size_t eq = arg.find('='); eq != std::string::npos && arg.rfind("--", 0) == 0) {
      inline_value = arg.substr(eq + 1);
      has_inline_value = true;
      arg.resize(eq);
    }
    const auto next = [&]() -> std::string {
      if (has_inline_value) {
        return inline_value;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--seed") {
      options.seed = ParseNum("--seed", next());
    } else if (arg == "--ops") {
      options.ops = static_cast<uint32_t>(ParseNum("--ops", next()));
    } else if (arg == "--audit-period") {
      options.audit_period = static_cast<uint32_t>(ParseNum("--audit-period", next()));
    } else if (arg == "--ncpus") {
      options.ncpus = static_cast<uint32_t>(ParseNum("--ncpus", next()));
      if (options.ncpus == 0) {
        std::fprintf(stderr, "--ncpus wants at least 1 CPU\n");
        return 2;
      }
    } else if (arg == "--ram-mb") {
      options.ram_bytes = ParseNum("--ram-mb", next()) * 1024 * 1024;
    } else if (arg == "--strategy") {
      const std::string strategy = next();
      if (strategy == "hw") {
        options.strategy = ppcmm::ReloadStrategy::kHardwareHtabWalk;
      } else if (strategy == "sw") {
        options.strategy = ppcmm::ReloadStrategy::kSoftwareHtab;
      } else if (strategy == "direct") {
        options.strategy = ppcmm::ReloadStrategy::kSoftwareDirect;
      } else {
        std::fprintf(stderr, "unknown strategy %s (hw|sw|direct)\n", strategy.c_str());
        return 2;
      }
    } else if (arg == "--faults") {
      options.page_alloc_exhaustion_one_in = 400;
      options.htab_eviction_storm_one_in = 150;
      options.spurious_tlb_flush_one_in = 300;
      options.vsid_wrap_one_in = 50;
      options.zombie_flood_one_in = 60;
    } else if (arg == "--break-flush") {
      options.break_tlb_invalidate = true;
      options.audit_period = 1;
    } else if (arg == "--fixed-config") {
      options.randomize_config = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf("torture: seed=%llu ops=%u ncpus=%u strategy=%s audit-period=%u\n",
              static_cast<unsigned long long>(options.seed), options.ops,
              options.ncpus == 0 ? 1 : options.ncpus,
              ppcmm::ReloadStrategyName(options.strategy), options.audit_period);
  const ppcmm::TortureResult result = ppcmm::RunTorture(options);
  std::printf("config: %s\n", result.config_desc.c_str());
  std::printf("ops=%u oom-recoveries=%u fault-fires=%llu\n", result.ops_executed,
              result.oom_events, static_cast<unsigned long long>(result.fault_fires));
  std::printf(
      "audits=%llu tlb-checked=%llu htab-checked=%llu zombies(tlb=%llu htab=%llu)\n",
      static_cast<unsigned long long>(result.audit_stats.audits),
      static_cast<unsigned long long>(result.audit_stats.tlb_entries_checked),
      static_cast<unsigned long long>(result.audit_stats.htab_entries_checked),
      static_cast<unsigned long long>(result.audit_stats.tlb_zombies_seen),
      static_cast<unsigned long long>(result.audit_stats.htab_zombies_seen));
  if (!trace_out.empty()) {
    if (WriteFile(trace_out, result.trace_json)) {
      std::printf("trace written to %s (open at https://ui.perfetto.dev)\n",
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
    }
  }
  if (!metrics_out.empty()) {
    if (WriteFile(metrics_out, result.metrics_json)) {
      std::printf("metrics written to %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", metrics_out.c_str());
    }
  }
  if (result.failed) {
    std::fprintf(stderr, "%s\n", result.failure_report.c_str());
    return 1;
  }
  std::printf("clean\n");
  return 0;
}
