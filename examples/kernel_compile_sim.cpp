// Kernel-compile simulation: the paper's favourite macro-benchmark, runnable standalone.
//
//   $ ./kernel_compile_sim [baseline|all|bat|scatter|handlers|lazy|reclaim|uncached_pt|zero]
//                          [cpu=603|604] [mhz=<n>] [units=<n>]
//
// Runs the scaled kernel build under the chosen optimization configuration and prints the
// full hardware-monitor picture: wall-clock, TLB/HTAB behaviour, cache statistics, and the
// derived rates the paper reports.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/stats.h"
#include "src/core/system.h"
#include "src/workloads/kernel_compile.h"

namespace {

ppcmm::OptimizationConfig ConfigByName(const std::string& name) {
  using ppcmm::IdleZeroPolicy;
  using ppcmm::OptimizationConfig;
  if (name == "baseline") return OptimizationConfig::Baseline();
  if (name == "all") return OptimizationConfig::AllOptimizations();
  if (name == "bat") return OptimizationConfig::OnlyBatMapping();
  if (name == "scatter") return OptimizationConfig::OnlyTunedScatter();
  if (name == "handlers") return OptimizationConfig::OnlyFastHandlers();
  if (name == "lazy") return OptimizationConfig::OnlyLazyFlush();
  if (name == "reclaim") return OptimizationConfig::OnlyIdleReclaim();
  if (name == "uncached_pt") return OptimizationConfig::OnlyUncachedPageTables();
  if (name == "zero") return OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kUncachedWithList);
  std::fprintf(stderr, "unknown config '%s', using 'all'\n", name.c_str());
  return OptimizationConfig::AllOptimizations();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppcmm;

  std::string config_name = "all";
  std::string cpu = "604";
  uint32_t mhz = 133;
  uint32_t units = 24;
  bool trace = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("cpu=", 0) == 0) {
      cpu = arg.substr(4);
    } else if (arg.rfind("mhz=", 0) == 0) {
      mhz = static_cast<uint32_t>(std::stoul(arg.substr(4)));
    } else if (arg.rfind("units=", 0) == 0) {
      units = static_cast<uint32_t>(std::stoul(arg.substr(6)));
    } else if (arg == "--trace") {
      trace = true;
    } else {
      config_name = arg;
    }
  }

  const MachineConfig machine =
      cpu == "603" ? MachineConfig::Ppc603(mhz) : MachineConfig::Ppc604(mhz);
  const OptimizationConfig opt = ConfigByName(config_name);

  System system(machine, opt);
  if (trace) {
    system.machine().trace().Enable();
  }
  std::printf("machine: %s\n", machine.name.c_str());
  std::printf("config:  %s (%s)\n", config_name.c_str(), opt.Describe().c_str());
  std::printf("building %u compilation units...\n\n", units);

  KernelCompileConfig cc;
  cc.compilation_units = units;
  const KernelCompileResult result = RunKernelCompile(system, cc);

  std::printf("simulated build time: %.3f s (%.1f Mcycles)\n", result.seconds,
              static_cast<double>(result.counters.cycles) / 1e6);
  std::printf("\n--- hardware monitor ---\n%s", result.counters.ToString().c_str());
  std::printf("\n--- derived ---\n");
  std::printf("htab hit rate on TLB miss: %.1f%%\n", result.counters.HtabHitRate() * 100);
  std::printf("evict/reload ratio:        %.1f%%\n",
              result.counters.EvictToReloadRatio() * 100);
  std::printf("kernel TLB share (avg):    %.1f%%\n", result.avg_kernel_tlb_share * 100);
  std::printf("\n--- end-state occupancy ---\n%s", result.end_stats.ToString().c_str());

  const CacheStats& icache = system.machine().icache().stats();
  const CacheStats& dcache = system.machine().dcache().stats();
  std::printf("\n--- caches ---\n");
  std::printf("icache: %.1f%% hit (%llu accesses)\n", icache.HitRate() * 100,
              static_cast<unsigned long long>(icache.accesses));
  std::printf("dcache: %.1f%% hit (%llu accesses, %llu uncached)\n", dcache.HitRate() * 100,
              static_cast<unsigned long long>(dcache.accesses),
              static_cast<unsigned long long>(dcache.uncached_accesses));

  if (trace) {
    TraceBuffer& tb = system.machine().trace();
    std::printf("\n--- last 32 trace events (of %llu recorded) ---\n%s",
                static_cast<unsigned long long>(tb.TotalRecorded()), tb.Dump(32).c_str());
  }
  return 0;
}
