// mmap()/flush tuning explorer: the §7 tradeoff surface.
//
//   $ ./mmap_tuning
//
// Two sweeps on a 604/185:
//   1. map size x flush strategy — where the eager per-page flush cost explodes and the
//      lazy whole-context flush stays flat;
//   2. cutoff x map size — the tunable itself: for each cutoff, which map sizes go lazy,
//      and what the residual cost of over-flushing (invalidating translations that were
//      still live) looks like on the following faults.

#include <cstdio>
#include <vector>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/workloads/report.h"

namespace {

// One map/unmap cycle at a fixed address; returns (munmap+mmap time, refault time).
struct CycleCost {
  double flush_us = 0;    // the munmap + mmap pair
  double refault_us = 0;  // re-touching half the pages afterwards
};

CycleCost RunCycle(ppcmm::System& system, uint32_t pages, uint32_t iters) {
  using namespace ppcmm;
  Kernel& kernel = system.kernel();
  const TaskId t = kernel.CreateTask("mmap");
  kernel.Exec(t, ExecImage{.text_pages = 4, .data_pages = 16, .stack_pages = 2});
  kernel.SwitchTo(t);
  const FileId file = kernel.page_cache().CreateFile(pages);
  const uint32_t fixed = (kUserMmapBase >> kPageShift) + 0x100;

  CycleCost cost;
  kernel.Mmap(pages, MmapOptions{.fixed_page = fixed, .file = file, .writable = false});
  for (uint32_t p = 0; p < pages; p += 2) {
    kernel.UserTouch(EffAddr::FromPage(fixed + p), AccessKind::kLoad);
  }
  for (uint32_t i = 0; i < iters; ++i) {
    cost.flush_us += system.TimeMicros([&] {
      kernel.Munmap(fixed, pages);
      kernel.Mmap(pages, MmapOptions{.fixed_page = fixed, .file = file, .writable = false});
    });
    cost.refault_us += system.TimeMicros([&] {
      for (uint32_t p = 0; p < pages; p += 2) {
        kernel.UserTouch(EffAddr::FromPage(fixed + p), AccessKind::kLoad);
      }
    });
  }
  cost.flush_us /= iters;
  cost.refault_us /= iters;
  kernel.Exit(t);
  return cost;
}

}  // namespace

int main() {
  using namespace ppcmm;

  std::printf("Sweep 1: flush cost vs map size (604/185, translations half-populated)\n\n");
  TextTable size_table({"map pages", "eager flush", "lazy flush", "eager refault",
                        "lazy refault", "speedup"});
  for (const uint32_t pages : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    OptimizationConfig eager = OptimizationConfig::AllOptimizations();
    eager.lazy_context_flush = false;
    eager.range_flush_cutoff = 0;
    eager.idle_zombie_reclaim = false;
    System eager_sys(MachineConfig::Ppc604(185), eager);
    System lazy_sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
    const CycleCost e = RunCycle(eager_sys, pages, 6);
    const CycleCost l = RunCycle(lazy_sys, pages, 6);
    size_table.AddRow({std::to_string(pages), TextTable::Us(e.flush_us),
                       TextTable::Us(l.flush_us), TextTable::Us(e.refault_us),
                       TextTable::Us(l.refault_us),
                       TextTable::Num(e.flush_us / l.flush_us, 1) + "x"});
  }
  std::printf("%s\n", size_table.ToString().c_str());

  std::printf("Sweep 2: the cutoff knob at a 48-page map (the paper settled on 20)\n\n");
  TextTable cutoff_table({"cutoff", "flush path", "flush cost", "refault cost", "total"});
  for (const uint32_t cutoff : {0u, 8u, 16u, 20u, 32u, 47u, 64u}) {
    OptimizationConfig config = OptimizationConfig::AllOptimizations();
    config.range_flush_cutoff = cutoff;
    System system(MachineConfig::Ppc604(185), config);
    const HwCounters before = system.counters();
    const CycleCost c = RunCycle(system, 48, 6);
    const HwCounters delta = system.counters().Diff(before);
    const bool lazy_path = delta.tlb_context_flushes > 0;
    cutoff_table.AddRow({cutoff == 0 ? "off" : std::to_string(cutoff),
                         lazy_path ? "whole-context" : "per-page", TextTable::Us(c.flush_us),
                         TextTable::Us(c.refault_us),
                         TextTable::Us(c.flush_us + c.refault_us)});
  }
  std::printf("%s\n", cutoff_table.ToString().c_str());
  std::printf("The refault column is the price of over-flushing: the whole-context path\n"
              "also killed translations outside the unmapped range, which fault back in on\n"
              "the next touch. The paper found the trade overwhelmingly worth it (\"no cost\n"
              "for losing them\" — those entries were rarely being used anyway).\n");
  return 0;
}
