// Pipeline: a shell-style `producer | filter | consumer` run with real blocking pipes and
// the cooperative scheduler — the CoopHarness lets each process body block in read()/write()
// exactly like a real program.
//
//   $ ./pipeline [chunks=<n>] [baseline]
//
// Prints per-stage progress, then the kernel's view of what the pipeline cost: context
// switches (every pipe stall is one), pipe wakeups, and where the simulated time went.

#include <cstdio>
#include <string>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/workloads/coop.h"

int main(int argc, char** argv) {
  using namespace ppcmm;

  uint32_t chunks = 64;
  bool baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("chunks=", 0) == 0) {
      chunks = static_cast<uint32_t>(std::stoul(arg.substr(7)));
    } else if (arg == "baseline") {
      baseline = true;
    }
  }

  System system(MachineConfig::Ppc604(133), baseline
                                                ? OptimizationConfig::Baseline()
                                                : OptimizationConfig::AllOptimizations());
  Kernel& kernel = system.kernel();
  std::printf("running `generate | transform | sink` with %u chunks of 4 KB (%s kernel)\n\n",
              chunks, baseline ? "baseline" : "optimized");

  auto spawn = [&](const char* name) {
    const TaskId id = kernel.CreateTask(name);
    kernel.Exec(id, ExecImage{.text_pages = 8, .data_pages = 32, .stack_pages = 4});
    return id;
  };
  const TaskId generate = spawn("generate");
  const TaskId transform = spawn("transform");
  const TaskId sink = spawn("sink");
  const uint32_t p1 = kernel.CreatePipe();
  const uint32_t p2 = kernel.CreatePipe();

  CoopHarness harness(kernel);
  harness.AddTask(generate, [&] {
    kernel.UserTouchRange(EffAddr(kUserDataBase), kPageSize, 32, AccessKind::kStore);
    for (uint32_t i = 0; i < chunks; ++i) {
      kernel.UserExecute(512);  // produce the chunk
      kernel.PipeWriteBlocking(p1, EffAddr(kUserDataBase), kPageSize);
    }
    std::printf("  generate: done (%u chunks)\n", chunks);
  });
  harness.AddTask(transform, [&] {
    for (uint32_t i = 0; i < chunks; ++i) {
      kernel.PipeReadBlocking(p1, EffAddr(kUserDataBase), kPageSize);
      kernel.UserExecute(1024);  // transform in place
      kernel.UserTouchRange(EffAddr(kUserDataBase), kPageSize, 64, AccessKind::kStore);
      kernel.PipeWriteBlocking(p2, EffAddr(kUserDataBase), kPageSize);
    }
    std::printf("  transform: done\n");
  });
  harness.AddTask(sink, [&] {
    uint64_t bytes = 0;
    for (uint32_t i = 0; i < chunks; ++i) {
      kernel.PipeReadBlocking(p2, EffAddr(kUserDataBase + 0x4000), kPageSize);
      kernel.UserExecute(256);  // consume
      bytes += kPageSize;
    }
    std::printf("  sink: received %llu bytes\n", static_cast<unsigned long long>(bytes));
  });

  harness.Run();

  const HwCounters& counters = system.counters();
  const double total_us = system.ElapsedMicros();
  const double mb = static_cast<double>(chunks) * kPageSize / (1024.0 * 1024.0);
  std::printf("\npipeline moved %.2f MB in %.0f us (%.1f MB/s end to end)\n", mb, total_us,
              mb * 1e6 / total_us / 1.048576 * 1.048576);
  std::printf("context switches: %llu (one per pipe stall)\n",
              static_cast<unsigned long long>(counters.context_switches));
  std::printf("syscalls: %llu, page faults: %llu, dTLB misses: %llu\n",
              static_cast<unsigned long long>(counters.syscalls),
              static_cast<unsigned long long>(counters.page_faults),
              static_cast<unsigned long long>(counters.dtlb_misses));
  std::printf("\ntry `%s baseline` to feel the unoptimized kernel.\n", argv[0]);
  return 0;
}
