// TLB explorer: sweep a user working set across the DTLB reach and watch each reload
// mechanism's cost curve — the experiment behind §5 and §6 of the paper.
//
//   $ ./tlb_explorer
//
// For working sets from well inside to well beyond the TLB, runs a steady strided read loop
// on three machines (604 hardware walk, 603 software HTAB search, 603 direct PTE-tree
// reload) and prints per-reference cost and miss rates. The crossover structure is the
// paper's argument: once the set exceeds the TLB, the reload mechanism *is* the memory
// system, and the cheapest software path wins.

#include <cstdio>
#include <vector>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/workloads/report.h"

namespace {

struct Probe {
  double ns_per_ref = 0;
  double dtlb_miss_rate = 0;
  double htab_hit_rate = 0;
};

Probe RunProbe(ppcmm::System& system, uint32_t pages) {
  using namespace ppcmm;
  Kernel& kernel = system.kernel();
  const TaskId t = kernel.CreateTask("explorer");
  kernel.Exec(t, ExecImage{.text_pages = 4, .data_pages = pages + 8, .stack_pages = 2});
  kernel.SwitchTo(t);

  // Fault everything in, then measure steady-state strided reads (one line per page).
  for (uint32_t p = 0; p < pages; ++p) {
    kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kStore);
  }
  constexpr uint32_t kPasses = 20;
  const HwCounters before = system.counters();
  const double micros = system.TimeMicros([&] {
    for (uint32_t pass = 0; pass < kPasses; ++pass) {
      for (uint32_t p = 0; p < pages; ++p) {
        kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize + (pass % 4) * 64),
                         AccessKind::kLoad);
      }
    }
  });
  const HwCounters delta = system.counters().Diff(before);

  Probe probe;
  probe.ns_per_ref = micros * 1000.0 / (kPasses * pages);
  probe.dtlb_miss_rate = delta.DtlbMissRate();
  probe.htab_hit_rate = delta.HtabHitRate();
  kernel.Exit(t);
  return probe;
}

}  // namespace

int main() {
  using namespace ppcmm;

  std::printf("Reload-mechanism cost curves: steady strided reads over N pages\n");
  std::printf("(604 DTLB reach: 128 pages; 603 DTLB reach: 64 pages)\n\n");

  const std::vector<uint32_t> sweep = {16, 32, 48, 64, 96, 128, 192, 256, 384};
  TextTable table({"pages", "604 hw-walk ns/ref", "603 htab ns/ref", "603 direct ns/ref",
                   "604 dTLB miss", "603 dTLB miss"});

  for (const uint32_t pages : sweep) {
    OptimizationConfig opt_604 = OptimizationConfig::AllOptimizations();
    System hw(MachineConfig::Ppc604(185), opt_604);

    OptimizationConfig opt_htab = OptimizationConfig::AllOptimizations();
    opt_htab.no_htab_direct_reload = false;
    System sw_htab(MachineConfig::Ppc603(180), opt_htab);

    System sw_direct(MachineConfig::Ppc603(180), OptimizationConfig::AllOptimizations());

    const Probe p_hw = RunProbe(hw, pages);
    const Probe p_htab = RunProbe(sw_htab, pages);
    const Probe p_direct = RunProbe(sw_direct, pages);

    table.AddRow({std::to_string(pages), TextTable::Num(p_hw.ns_per_ref, 1),
                  TextTable::Num(p_htab.ns_per_ref, 1), TextTable::Num(p_direct.ns_per_ref, 1),
                  TextTable::Pct(p_hw.dtlb_miss_rate), TextTable::Pct(p_htab.dtlb_miss_rate)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Reading the curve: below the TLB reach every mechanism costs the same (hits);\n"
              "past it, cost tracks the reload path — the paper's motivation for both the\n"
              "BAT footprint work (keep the kernel out of those misses) and the fast-reload\n"
              "work (make each miss cheap).\n");
  return 0;
}
