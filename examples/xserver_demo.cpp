// X-server demo: the §5.1 framebuffer experiment as a runnable program.
//
//   $ ./xserver_demo
//
// Runs the X-style workload (a display server sweeping the 2 MB framebuffer on behalf of
// client processes) twice — framebuffer mapped by PTEs, then by a dedicated user BAT — and
// shows what the BAT buys: the drawing loops stop competing with everyone else for TLB
// entries.

#include <cstdio>

#include "src/core/stats.h"
#include "src/core/system.h"
#include "src/workloads/report.h"
#include "src/workloads/xserver.h"

int main() {
  using namespace ppcmm;

  std::printf("X-style framebuffer workload on a 133 MHz 604 (3 clients, full redraws)\n\n");

  TextTable table({"FB mapping", "wall clock", "dTLB misses", "faults", "BAT xlations"});
  double pte_seconds = 0;
  double bat_seconds = 0;
  for (const bool use_bat : {false, true}) {
    OptimizationConfig config = OptimizationConfig::AllOptimizations();
    config.framebuffer_bat = use_bat;
    System system(MachineConfig::Ppc604(133), config);
    XServerConfig xc;
    xc.pages_per_draw = 64;
    const XServerResult result = RunXServerWorkload(system, xc);
    (use_bat ? bat_seconds : pte_seconds) = result.seconds;
    table.AddRow({use_bat ? "dedicated BAT" : "PTEs + TLB",
                  TextTable::Us(result.seconds * 1e6),
                  TextTable::Count(result.counters.dtlb_misses),
                  TextTable::Count(result.counters.page_faults),
                  TextTable::Count(result.counters.bat_translations)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("dedicating a BAT to the framebuffer: %.1f%% faster\n",
              (pte_seconds - bat_seconds) / pte_seconds * 100.0);
  std::printf("\n(the paper, §5.1: \"having the kernel dedicate a BAT mapping to the frame\n"
              "buffer itself so programs such as X do not compete constantly with other\n"
              "applications or the kernel for TLB space\")\n");
  return 0;
}
