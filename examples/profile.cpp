// profile: run a Table 1/2/3 workload with cycle attribution enabled and explain where
// every simulated cycle went — per-cause tables, folded-stack flamegraph export, and an
// attr-diff mode that compares two configurations (or two saved profile JSONs) and prints
// the per-cause cycle delta. This is the tool that turns an ablation ("lazy flushing is
// 80x faster") into an explanation ("range_flush_eager cycles went away").
//
//   profile --workload table2                 profile the optimized column
//   profile --workload table2 --diff          diff the table's headline pair of columns
//   profile --preset baseline --vs all        diff two named fuzz presets (603-180)
//   profile --diff-files A.json B.json        diff two saved profiles
//   profile --out DIR                         also write profile_*.folded / .json
//
// Attribution is total by construction: every cycle lands in a cause cell (the base cell
// is "instruction"), and this binary verifies bit-exact conservation on every run.

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/attr/attr_export.h"
#include "src/verify/fuzz/differential.h"
#include "src/workloads/lmbench.h"

namespace ppcmm {
namespace {

struct RunSpec {
  std::string label;
  MachineConfig machine = MachineConfig::Ppc604(185);
  OptimizationConfig opts;
  LmBenchParams params;
};

struct RunResult {
  std::string label;
  uint64_t total = 0;
  std::map<std::string, uint64_t> causes;
  JsonValue json;
  std::string folded;
};

// Runs one LmBench suite pass with attribution on; dies if conservation is violated.
RunResult RunProfiled(const RunSpec& spec) {
  System system(spec.machine, spec.opts);
  CycleLedger& ledger = system.machine().attr();
  ledger.SetEnabled(true);
  const uint64_t start_cycles = system.machine().counters().cycles;
  LmBench suite(system, spec.params);
  suite.RunAll();
  const uint64_t window = system.machine().counters().cycles - start_cycles;

  uint64_t cell_sum = 0;
  for (const CycleLedger::Cell& cell : ledger.Cells()) {
    cell_sum += cell.cycles;
  }
  if (cell_sum != window || ledger.TotalAttributed() != window) {
    std::fprintf(stderr,
                 "conservation violated: cells=%" PRIu64 " ledger=%" PRIu64
                 " machine=%" PRIu64 "\n",
                 cell_sum, ledger.TotalAttributed(), window);
    std::exit(1);
  }

  RunResult result;
  result.label = spec.label;
  result.total = ledger.TotalAttributed();
  result.causes = AttrCauseTotals(ledger);
  result.json = AttrToJson(ledger);
  result.folded = AttrToFolded(ledger);
  AddAttrToBenchReport(BenchReport::Global(), "attr." + spec.label, ledger);
  return result;
}

void PrintTopCauses(const RunResult& run, size_t top) {
  std::vector<std::pair<std::string, uint64_t>> rows(run.causes.begin(), run.causes.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::printf("%s: %" PRIu64 " cycles, 100.00%% attributed (bit-exact)\n", run.label.c_str(),
              run.total);
  std::printf("  %-44s %16s %8s\n", "cause", "cycles", "share");
  for (size_t i = 0; i < rows.size() && i < top; ++i) {
    std::printf("  %-44s %16" PRIu64 " %7.2f%%\n", rows[i].first.c_str(), rows[i].second,
                100.0 * static_cast<double>(rows[i].second) /
                    static_cast<double>(run.total));
  }
  std::printf("\n");
}

std::string SanitizeLabel(std::string label) {
  for (char& c : label) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return label;
}

void WriteExports(const RunResult& run, const std::string& dir) {
  const std::string base = dir + "/profile_" + SanitizeLabel(run.label);
  std::ofstream folded(base + ".folded");
  folded << run.folded;
  std::ofstream json(base + ".json");
  json << run.json.Serialize() << "\n";
  std::printf("wrote %s.folded and %s.json\n", base.c_str(), base.c_str());
}

// The headline pair of columns for each table: the comparison the paper's table makes.
std::vector<RunSpec> TableSpecs(const std::string& workload) {
  OptimizationConfig all = OptimizationConfig::AllOptimizations();
  if (workload == "table1") {
    // Table 1: software HTAB search vs direct PTE-tree reload on the 603-180.
    OptimizationConfig with_htab = all;
    with_htab.no_htab_direct_reload = false;
    return {{"table1_603_htab", MachineConfig::Ppc603(180), with_htab, LmBenchParams{}},
            {"table1_603_no_htab", MachineConfig::Ppc603(180), all, LmBenchParams{}}};
  }
  if (workload == "table2") {
    // Table 2: eager per-page range flushing vs lazy context flushing on the 604-185.
    OptimizationConfig eager = all;
    eager.lazy_context_flush = false;
    eager.range_flush_cutoff = 0;
    eager.idle_zombie_reclaim = false;
    LmBenchParams params;
    params.mmap_pages = 1024;  // lat_mmap far beyond the 20-page cutoff
    params.mmap_iters = 8;
    return {{"table2_604_eager", MachineConfig::Ppc604(185), eager, params},
            {"table2_604_lazy", MachineConfig::Ppc604(185), all, params}};
  }
  if (workload == "table3") {
    // Table 3: unoptimized vs optimized Linux/PPC on the 604-133.
    return {{"table3_604_baseline", MachineConfig::Ppc604(133),
             OptimizationConfig::Baseline(), LmBenchParams{}},
            {"table3_604_optimized", MachineConfig::Ppc604(133), all, LmBenchParams{}}};
  }
  std::fprintf(stderr, "unknown workload '%s' (want table1|table2|table3)\n",
               workload.c_str());
  std::exit(2);
}

int DiffFiles(const std::string& path_a, const std::string& path_b) {
  const auto load = [](const std::string& path) -> std::map<std::string, uint64_t> {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      std::exit(2);
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const std::optional<JsonValue> doc = JsonValue::Parse(buffer.str(), &error);
    if (!doc.has_value()) {
      std::fprintf(stderr, "cannot parse %s: %s\n", path.c_str(), error.c_str());
      std::exit(2);
    }
    return AttrCauseTotalsFromJson(*doc);
  };
  const std::map<std::string, uint64_t> a = load(path_a);
  const std::map<std::string, uint64_t> b = load(path_b);
  std::printf("%s", AttrDiffReport(path_a, a, path_b, b).c_str());
  return 0;
}

int Usage() {
  std::printf(
      "usage: profile [--workload table1|table2|table3] [--diff] [--top N] [--out DIR]\n"
      "       profile --preset <name> --vs <name> [--workload ...] [--out DIR]\n"
      "       profile --diff-files A.json B.json\n"
      "       profile --list-presets\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string workload = "table2";
  std::string out_dir;
  std::string preset_a, preset_b, file_a, file_b;
  bool diff = false;
  size_t top = 12;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::exit(Usage());
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload = next();
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--top") {
      top = static_cast<size_t>(std::stoul(next()));
    } else if (arg == "--preset") {
      preset_a = next();
    } else if (arg == "--vs") {
      preset_b = next();
    } else if (arg == "--diff-files") {
      file_a = next();
      file_b = next();
    } else if (arg == "--list-presets") {
      for (const FuzzPreset& preset : FuzzPresets()) {
        std::printf("%s\n", preset.name.c_str());
      }
      return 0;
    } else {
      return Usage();
    }
  }

  if (!file_a.empty()) {
    return DiffFiles(file_a, file_b);
  }

  std::vector<RunSpec> specs = TableSpecs(workload);
  if (!preset_a.empty() || !preset_b.empty()) {
    if (preset_a.empty() || preset_b.empty()) {
      return Usage();
    }
    // Preset mode: both presets on the 603-180 (software reload, so every strategy knob in
    // the preset is visible), with the chosen workload's iteration counts.
    const LmBenchParams params = specs[1].params;
    specs = {{preset_a, MachineConfig::Ppc603(180), FuzzPresetByName(preset_a).config,
              params},
             {preset_b, MachineConfig::Ppc603(180), FuzzPresetByName(preset_b).config,
              params}};
    diff = true;
  }

  const RunResult b = RunProfiled(specs[1]);
  BenchReport::Global().SetName("profile_" + workload);
  BenchReport::Global().SetMeta("workload", workload);
  BenchReport::Global().SetMeta("machine", specs[1].machine.name);
  BenchReport::Global().SetMeta("config", specs[1].label);

  if (diff) {
    const RunResult a = RunProfiled(specs[0]);
    PrintTopCauses(a, top);
    PrintTopCauses(b, top);
    std::printf("attr-diff (%s -> %s):\n%s", a.label.c_str(), b.label.c_str(),
                AttrDiffReport(a.label, a.causes, b.label, b.causes).c_str());
    if (!out_dir.empty()) {
      WriteExports(a, out_dir);
    }
  } else {
    PrintTopCauses(b, top);
  }
  if (!out_dir.empty()) {
    WriteExports(b, out_dir);
  }
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main(int argc, char** argv) { return ppcmm::Main(argc, argv); }
