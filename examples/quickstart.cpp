// Quickstart: build a simulated PowerPC 604 running the optimized Linux/PPC memory
// management, run a process, and look at what the MMU did.
//
//   $ ./quickstart
//
// Walks through the public API: System construction, process lifecycle, user memory traffic,
// the LmBench suite, and the counter/statistics surface.

#include <cstdio>

#include "src/core/stats.h"
#include "src/core/system.h"
#include "src/workloads/lmbench.h"
#include "src/workloads/report.h"

int main() {
  using namespace ppcmm;

  // A 185 MHz PowerPC 604 with every optimization from the paper enabled.
  System system(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = system.kernel();

  std::printf("machine: %s\n", system.machine_config().name.c_str());
  std::printf("config:  %s\n\n", system.opt_config().Describe().c_str());

  // Create and run a process.
  const TaskId task = kernel.CreateTask("demo");
  kernel.Exec(task, ExecImage{.text_pages = 16, .data_pages = 64, .stack_pages = 4});
  kernel.SwitchTo(task);

  // Touch a 128 KB working set: each first touch demand-faults a zeroed page in.
  const HwCounters faults_before = system.counters();
  kernel.UserTouchRange(EffAddr(kUserDataBase), 32 * kPageSize, 256, AccessKind::kStore);
  const HwCounters faulting = system.counters().Diff(faults_before);
  std::printf("first pass over 32 pages: %llu page faults, %llu dTLB misses, %.1f us\n",
              static_cast<unsigned long long>(faulting.page_faults),
              static_cast<unsigned long long>(faulting.dtlb_misses),
              CyclesToMicros(Cycles(faulting.cycles), system.machine_config().clock_mhz));

  // Second pass: everything is mapped and cached.
  const double warm_us = system.TimeMicros([&] {
    kernel.UserTouchRange(EffAddr(kUserDataBase), 32 * kPageSize, 256, AccessKind::kLoad);
  });
  std::printf("second pass (warm):       %.1f us\n\n", warm_us);

  // Run the LmBench microbenchmarks.
  LmBenchParams params;
  params.syscall_iters = 200;
  params.ctxsw_passes = 30;
  LmBench suite(system, params);
  std::printf("null syscall:   %.1f us\n", suite.NullSyscallUs());
  std::printf("ctxsw (2p):     %.1f us\n", suite.ContextSwitchUs(2));
  std::printf("pipe latency:   %.1f us\n", suite.PipeLatencyUs());
  std::printf("pipe bandwidth: %.1f MB/s\n", suite.PipeBandwidthMbs());
  std::printf("mmap latency:   %.1f us\n", suite.MmapLatencyUs());

  // Inspect the machine state the way the paper's hardware monitor did.
  const SystemStats stats = ComputeStats(system, system.counters());
  std::printf("\n%s\n", stats.ToString().c_str());

  kernel.Exit(task);
  return 0;
}
