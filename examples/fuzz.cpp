// Differential MMU fuzzer driver: random kernel-op streams executed in lockstep against
// the architectural reference oracle, across every optimization preset, reload strategy
// and fast-path setting.
//
//   fuzz [--seed N] [--ops N] [--ncpus N] [--preset NAME] [--check-period N]
//        [--max-seconds S] [--minimize] [--out FILE] [--replay FILE] [--break-flush]
//
// Default: one stream (--seed, --ops) through the full matrix (14 presets x 3 reload
// strategies x fast path on/off). With --max-seconds the seed keeps incrementing until the
// wall-clock budget is spent. On divergence the failure report is printed, the stream is
// shrunk to a 1-minimal repro (--minimize), written to --out, and the exit status is 1.
// --replay runs an existing replay file instead of generating a stream. --break-flush
// plants the test-only "skip tlbie on eager page flush" bug to demonstrate detection and
// minimization end to end.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/verify/fuzz/differential.h"
#include "src/verify/fuzz/minimize.h"
#include "src/verify/torture.h"

namespace {

uint64_t ParseNum(const char* flag, const std::string& value) {
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(value.c_str(), &end, 0);
  if (end == value.c_str() || *end != '\0') {
    std::fprintf(stderr, "bad value for %s: %s\n", flag, value.c_str());
    std::exit(2);
  }
  return parsed;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << content;
  return out.good();
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  uint32_t ops = 20000;
  uint32_t ncpus = 1;
  uint32_t check_period = 2000;
  uint64_t max_seconds = 0;
  bool minimize = false;
  bool break_flush = false;
  std::string preset_name;
  std::string out_path;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline_value = false;
    if (const size_t eq = arg.find('='); eq != std::string::npos && arg.rfind("--", 0) == 0) {
      inline_value = arg.substr(eq + 1);
      has_inline_value = true;
      arg.resize(eq);
    }
    const auto next = [&]() -> std::string {
      if (has_inline_value) {
        return inline_value;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = ParseNum("--seed", next());
    } else if (arg == "--ops") {
      ops = static_cast<uint32_t>(ParseNum("--ops", next()));
    } else if (arg == "--ncpus") {
      ncpus = static_cast<uint32_t>(ParseNum("--ncpus", next()));
      if (ncpus == 0) {
        std::fprintf(stderr, "--ncpus wants at least 1 CPU\n");
        return 2;
      }
    } else if (arg == "--check-period") {
      check_period = static_cast<uint32_t>(ParseNum("--check-period", next()));
    } else if (arg == "--max-seconds") {
      max_seconds = ParseNum("--max-seconds", next());
    } else if (arg == "--preset") {
      preset_name = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--minimize") {
      minimize = true;
    } else if (arg == "--break-flush") {
      break_flush = true;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz [--seed N] [--ops N] [--ncpus N] [--preset NAME]\n"
                   "            [--check-period N] [--max-seconds S] [--minimize]\n"
                   "            [--out FILE] [--replay FILE] [--break-flush]\n");
      return 2;
    }
  }

  std::vector<ppcmm::FuzzPreset> presets;
  if (preset_name.empty()) {
    presets = ppcmm::FuzzPresets();
  } else {
    bool found = false;
    for (const ppcmm::FuzzPreset& p : ppcmm::FuzzPresets()) {
      if (p.name == preset_name) {
        presets.push_back(p);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown preset '%s'; known presets:\n", preset_name.c_str());
      for (const ppcmm::FuzzPreset& p : ppcmm::FuzzPresets()) {
        std::fprintf(stderr, "  %s\n", p.name.c_str());
      }
      return 2;
    }
  }

  const auto start_time = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (max_seconds == 0) {
      return false;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start_time;
    return std::chrono::duration_cast<std::chrono::seconds>(elapsed).count() >=
           static_cast<int64_t>(max_seconds);
  };

  ppcmm::OpCoverage coverage;
  uint64_t streams_run = 0;
  uint64_t matrix_runs = 0;

  // One stream through the preset matrix; on divergence, report + minimize + exit 1.
  const auto run_stream = [&](const ppcmm::FuzzStream& stream) -> int {
    for (const ppcmm::FuzzPreset& preset : presets) {
      const ppcmm::MatrixResult matrix =
          ppcmm::RunMatrix(stream, preset.config, preset.name, check_period, break_flush,
                           ncpus);
      matrix_runs += matrix.runs;
      coverage.Merge(matrix.coverage);
      if (!matrix.diverged) {
        continue;
      }
      std::fprintf(stderr, "%s\n", matrix.first_failure.report.c_str());
      ppcmm::FuzzStream repro = stream;
      if (minimize) {
        ppcmm::MinimizeOptions min_options;
        min_options.run = matrix.failing_options;
        const ppcmm::MinimizeResult shrunk = ppcmm::MinimizeStream(stream, min_options);
        repro = shrunk.minimized;
        std::fprintf(stderr, "minimized to %zu ops in %u probe runs:\n%s\n",
                     shrunk.minimized.ops.size(), shrunk.probe_runs,
                     ppcmm::SerializeStream(shrunk.minimized).c_str());
        std::fprintf(stderr, "%s\n", shrunk.failure.report.c_str());
      }
      std::ostringstream replay;
      replay << "# " << (minimize ? "minimized " : "") << "fuzz divergence: preset "
             << matrix.failing_options.config_name << ", strategy "
             << ppcmm::ReloadStrategyName(matrix.failing_options.strategy) << ", fast path "
             << (matrix.failing_options.fast_path ? "on" : "off") << "\n"
             << ppcmm::SerializeStream(repro);
      if (!out_path.empty()) {
        if (!WriteFile(out_path, replay.str())) {
          std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        } else {
          std::fprintf(stderr, "replay written to %s\n", out_path.c_str());
        }
      } else {
        std::fprintf(stderr, "%s", replay.str().c_str());
      }
      return 1;
    }
    ++streams_run;
    return 0;
  };

  if (!replay_path.empty()) {
    ppcmm::FuzzStream stream;
    std::string error;
    if (!ppcmm::ParseStream(ReadFileOrDie(replay_path), &stream, &error)) {
      std::fprintf(stderr, "%s: %s\n", replay_path.c_str(), error.c_str());
      return 2;
    }
    std::printf("replaying %s (%zu ops) across %zu preset(s)\n", replay_path.c_str(),
                stream.ops.size(), presets.size());
    if (const int status = run_stream(stream); status != 0) {
      return status;
    }
  } else {
    do {
      std::printf("seed %llu: %u ops across %zu preset(s) x 6 combos\n",
                  static_cast<unsigned long long>(seed), ops, presets.size());
      std::fflush(stdout);
      // At ncpus > 1 the SMP generator mixes in cpu-switch ops so tasks actually migrate;
      // at ncpus=1 the standard generator keeps every historical (seed, ops) stream intact.
      const ppcmm::FuzzStream stream = ncpus > 1 ? ppcmm::GenerateSmpStream(seed, ops)
                                                 : ppcmm::GenerateStream(seed, ops);
      if (const int status = run_stream(stream); status != 0) {
        return status;
      }
      ++seed;
    } while (!out_of_time() && max_seconds != 0);
  }

  std::printf("clean: %llu stream(s), %llu differential runs, 0 divergences\n",
              static_cast<unsigned long long>(streams_run),
              static_cast<unsigned long long>(matrix_runs));
  std::printf("%s", coverage.Report().c_str());
  return 0;
}
