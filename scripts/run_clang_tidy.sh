#!/bin/sh
# Runs clang-tidy (config: .clang-tidy) over src/ and tools/ using a build directory's
# compile_commands.json.
#
#   scripts/run_clang_tidy.sh [build-dir]      default: build-lint, then build
#
# Exits 0 when clean OR when clang-tidy is not installed (the default dev container ships
# only g++; CI installs the tool and gets the real check), 1 on findings, 2 when no
# compilation database exists.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (CI runs the real check)"
  exit 0
fi

build_dir=${1:-}
if [ -z "$build_dir" ]; then
  for candidate in "$repo_root/build-lint" "$repo_root/build"; do
    if [ -f "$candidate/compile_commands.json" ]; then
      build_dir=$candidate
      break
    fi
  done
fi
if [ -z "$build_dir" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json; configure with the lint preset first:" >&2
  echo "  cmake --preset lint" >&2
  exit 2
fi

# Fixture files are never compiled, so they have no compile_commands.json entries.
files=$(git ls-files 'src/*.cc' 'src/*.cpp' 'tools/*.cc' | grep -v '^tools/mmu-lint/fixtures/' || true)
# shellcheck disable=SC2086
clang-tidy -p "$build_dir" --quiet $files
echo "run_clang_tidy: clean"
