#!/bin/sh
# Checks (or with --fix, applies) .clang-format over every tracked C++ file.
#
#   scripts/format_check.sh [--fix]
#
# Exits 0 when the tree is clean OR when clang-format is not installed (the default dev
# container ships only g++; CI installs the tool and gets the real check), 1 when files
# need reformatting, 2 on usage errors.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

fix=0
if [ "${1:-}" = "--fix" ]; then
  fix=1
  shift
fi
if [ $# -ne 0 ]; then
  echo "usage: scripts/format_check.sh [--fix]" >&2
  exit 2
fi

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check: clang-format not installed; skipping (CI runs the real check)"
  exit 0
fi

# The lint fixtures stage violations at exact line numbers asserted by tests/lint_test.cc;
# reformatting them would move the staged lines, so they are exempt.
files=$(git ls-files '*.h' '*.cc' '*.cpp' | grep -v '^tools/mmu-lint/fixtures/' || true)
if [ -z "$files" ]; then
  echo "format_check: no tracked C++ files found" >&2
  exit 2
fi

if [ "$fix" = 1 ]; then
  # shellcheck disable=SC2086
  clang-format -i $files
  echo "format_check: reformatted $(echo "$files" | wc -l) file(s)"
  exit 0
fi

# shellcheck disable=SC2086
if clang-format --dry-run -Werror $files; then
  echo "format_check: clean"
else
  echo "format_check: run scripts/format_check.sh --fix" >&2
  exit 1
fi
