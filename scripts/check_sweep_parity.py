#!/usr/bin/env python3
"""check_sweep_parity: prove sharded sweeps change nothing but wall-clock time.

Usage: scripts/check_sweep_parity.py SERIAL_DIR SHARDED_DIR

Both directories hold BENCH_*.json reports from bench/run_all.sh — one produced with
PPCMM_SWEEP_SHARDS=1, the other with >1 shard. The merged sharded report must carry
exactly the same bench set and, per bench, exactly the same metric keys as the serial
run. For the simulated benches (everything except the host-timing reports) the metric
VALUES must also be bit-identical: shard processes replay the same deterministic
simulations, so any value drift means the shard->config assignment or the result merge
is broken. Host-timing reports (wall-clock metrics) only need key-set equality.
"""

import json
import os
import re
import sys

# Benches whose metrics are wall-clock measurements; values legitimately differ between
# runs. Keep in sync with HOST_BENCHES in tools/bench-trend.
HOST_BENCHES = {"host_throughput"}


def flatten(doc):
    """Same key scheme as tools/bench-trend flatten_report: name, or section.row:name
    when a name repeats within the report."""
    rows = []
    for si, section in enumerate(doc.get("sections", [])):
        for mi, metric in enumerate(section.get("metrics", [])):
            rows.append((si, mi, metric))
    counts = {}
    for _, _, metric in rows:
        counts[metric["name"]] = counts.get(metric["name"], 0) + 1
    flat = {}
    for si, mi, metric in rows:
        name = metric["name"]
        key = name if counts[name] == 1 else f"{si}.{mi}:{name}"
        flat[key] = metric["value"]
    return flat


def load(bench_out):
    benches = {}
    for fname in sorted(os.listdir(bench_out)):
        m = re.fullmatch(r"BENCH_(.+)\.json", fname)
        if not m:
            continue
        with open(os.path.join(bench_out, fname), encoding="utf-8") as f:
            benches[m.group(1)] = flatten(json.load(f))
    if not benches:
        raise SystemExit(f"error: no BENCH_*.json reports in {bench_out}")
    return benches


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__.strip())
    serial, sharded = load(sys.argv[1]), load(sys.argv[2])
    failures = []
    if set(serial) != set(sharded):
        failures.append(f"bench sets differ: serial={sorted(serial)} sharded={sorted(sharded)}")
    for bench in sorted(set(serial) & set(sharded)):
        s_keys, p_keys = set(serial[bench]), set(sharded[bench])
        for key in sorted(s_keys - p_keys):
            failures.append(f"{bench}: metric '{key}' missing from sharded report")
        for key in sorted(p_keys - s_keys):
            failures.append(f"{bench}: metric '{key}' only in sharded report")
        if bench in HOST_BENCHES:
            continue
        for key in sorted(s_keys & p_keys):
            if serial[bench][key] != sharded[bench][key]:
                failures.append(f"{bench}: '{key}' diverged: serial={serial[bench][key]} "
                                f"sharded={sharded[bench][key]}")
    if failures:
        for f in failures:
            print(f"PARITY FAIL: {f}", file=sys.stderr)
        return 1
    n = sum(len(m) for m in serial.values())
    print(f"sharded sweep parity OK: {len(serial)} benches / {n} metrics "
          f"(values bit-identical outside {sorted(HOST_BENCHES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
