// Table 1 — "LmBench summary for direct (bypassing hash table) TLB reloads".
//
// Four machine columns:
//   603 180MHz (htab)     software TLB reload emulating the 604's HTAB search
//   603 180MHz (no htab)  software reload straight from the Linux PTE tree (§6.2)
//   604 185MHz            hardware HTAB walk
//   604 200MHz            hardware walk on the faster board
//
// Paper rows: pstart, ctxsw, pipe latency, pipe bandwidth, file reread. The claim to
// reproduce: eliminating the HTAB on the 603 lets a 180 MHz 603 keep pace with a
// 185–200 MHz 604.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/lmbench.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

struct Column {
  std::string name;
  MachineConfig machine;
  OptimizationConfig opts;
  // Paper values: pstart(s-scale ignored), ctxsw us, pipe lat us, pipe bw MB/s, reread MB/s.
  double paper_ctxsw, paper_pipe_lat, paper_pipe_bw, paper_reread;
};

int Main() {
  // Everything optimized except the variable under test: the reload path.
  OptimizationConfig with_htab = OptimizationConfig::AllOptimizations();
  with_htab.no_htab_direct_reload = false;
  const OptimizationConfig no_htab = OptimizationConfig::AllOptimizations();

  std::vector<Column> columns = {
      {"603 180MHz (htab)", MachineConfig::Ppc603(180), with_htab, 4, 17, 69, 33},
      {"603 180MHz (no htab)", MachineConfig::Ppc603(180), no_htab, 3, 19, 73, 36},
      {"604 185MHz", MachineConfig::Ppc604(185), no_htab, 4, 21, 88, 39},
      {"604 200MHz", MachineConfig::Ppc604FastBoard(200), no_htab, 4, 20, 92, 41},
  };

  Headline("Table 1: LmBench summary for direct (bypassing hash table) TLB reloads");
  BenchReport::Global().SetMeta("table", "1");
  BenchReport::Global().SetMeta("machines", "603-180 htab, 603-180 no-htab, 604-185, 604-200");
  TextTable table({"metric", "603-180 htab", "603-180 no-htab", "604-185", "604-200"});

  std::vector<LmBenchResult> results;
  for (const Column& column : columns) {
    System system(column.machine, column.opts);
    LmBench suite(system);
    results.push_back(suite.RunAll());
  }

  auto row = [&](const char* name, auto extract, auto format) {
    std::vector<std::string> cells = {name};
    for (const LmBenchResult& r : results) {
      cells.push_back(format(extract(r)));
    }
    table.AddRow(cells);
  };
  row("process start", [](const LmBenchResult& r) { return r.process_start_us; },
      TextTable::Us);
  row("ctxsw (2p)", [](const LmBenchResult& r) { return r.ctxsw_2p_us; }, TextTable::Us);
  row("pipe latency", [](const LmBenchResult& r) { return r.pipe_latency_us; },
      TextTable::Us);
  row("pipe bandwidth", [](const LmBenchResult& r) { return r.pipe_bandwidth_mbs; },
      TextTable::Mbs);
  row("file reread", [](const LmBenchResult& r) { return r.file_reread_mbs; },
      TextTable::Mbs);
  std::printf("%s\n", table.ToString().c_str());

  Headline("Paper vs measured (per column: ctxsw us / pipe lat us / pipe bw / reread)");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s\n", columns[i].name.c_str());
    PaperVsMeasured("ctxsw", columns[i].paper_ctxsw, results[i].ctxsw_2p_us, "us");
    PaperVsMeasured("pipe latency", columns[i].paper_pipe_lat, results[i].pipe_latency_us,
                    "us");
    PaperVsMeasured("pipe bandwidth", columns[i].paper_pipe_bw, results[i].pipe_bandwidth_mbs,
                    "MB/s");
    PaperVsMeasured("file reread", columns[i].paper_reread, results[i].file_reread_mbs,
                    "MB/s");
  }

  // The headline claims. Process start exercises the path the HTAB taxes most — building
  // and tearing down translations — while steady-state points move only a little, exactly
  // as in the paper's Table 1 (pipe bw 69 -> 73 MB/s, reread 33 -> 36 MB/s).
  std::printf("\nClaims:\n");
  std::printf("  603 no-htab beats 603 htab on process start: %s (%.1f vs %.1f us)\n",
              results[1].process_start_us < results[0].process_start_us ? "HOLDS" : "FAILS",
              results[1].process_start_us, results[0].process_start_us);
  std::printf("  603 no-htab is not slower anywhere: %s\n",
              (results[1].process_start_us <= results[0].process_start_us * 1.02 &&
               results[1].ctxsw_2p_us <= results[0].ctxsw_2p_us * 1.02 &&
               results[1].pipe_bandwidth_mbs >= results[0].pipe_bandwidth_mbs * 0.98)
                  ? "HOLDS"
                  : "FAILS");
  std::printf("  180MHz 603 (no htab) within 25%% of the 185MHz 604 on process start: %s "
              "(%.1f vs %.1f us)\n",
              results[1].process_start_us < results[2].process_start_us * 1.25 ? "HOLDS"
                                                                               : "FAILS",
              results[1].process_start_us, results[2].process_start_us);
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
