// Google-benchmark microbenchmarks over the primitive operations the paper's cost model is
// built from: TLB reloads by strategy, HTAB search/insert, per-page and lazy flushes,
// syscalls and context switches. These measure *simulated* cycles per operation (reported
// as the "sim_cycles" counter) as well as host throughput of the simulator itself.

#include <benchmark/benchmark.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"

namespace ppcmm {
namespace {

std::unique_ptr<System> NewSystem(ReloadStrategy strategy, bool optimized) {
  OptimizationConfig config = OptimizationConfig::AllOptimizations();
  config.optimized_handlers = optimized;
  config.no_htab_direct_reload = strategy == ReloadStrategy::kSoftwareDirect;
  const MachineConfig machine = strategy == ReloadStrategy::kHardwareHtabWalk
                                    ? MachineConfig::Ppc604(185)
                                    : MachineConfig::Ppc603(180);
  return std::make_unique<System>(machine, config);
}

TaskId Spawn(Kernel& kernel) {
  const TaskId id = kernel.CreateTask("bench");
  kernel.Exec(id, ExecImage{.text_pages = 8, .data_pages = 256, .stack_pages = 4});
  kernel.SwitchTo(id);
  return id;
}

// One TLB miss + reload per iteration: a strided walk wider than the DTLB.
void BM_TlbReload(benchmark::State& state) {
  const auto strategy = static_cast<ReloadStrategy>(state.range(0));
  auto system = NewSystem(strategy, /*optimized=*/true);
  Kernel& kernel = system->kernel();
  Spawn(kernel);
  for (uint32_t p = 0; p < 200; ++p) {
    kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kStore);
  }
  const uint64_t cycles0 = system->counters().cycles;
  const uint64_t misses0 = system->counters().dtlb_misses;
  uint32_t page = 0;
  for (auto _ : state) {
    kernel.UserTouch(EffAddr(kUserDataBase + page * kPageSize), AccessKind::kLoad);
    page = (page + 1) % 200;
  }
  const uint64_t misses = system->counters().dtlb_misses - misses0;
  state.counters["sim_cycles_per_op"] = benchmark::Counter(
      static_cast<double>(system->counters().cycles - cycles0) /
      static_cast<double>(state.iterations()));
  state.counters["miss_rate"] =
      benchmark::Counter(static_cast<double>(misses) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_TlbReload)
    ->Arg(static_cast<int>(ReloadStrategy::kHardwareHtabWalk))
    ->Arg(static_cast<int>(ReloadStrategy::kSoftwareHtab))
    ->Arg(static_cast<int>(ReloadStrategy::kSoftwareDirect));

void BM_NullSyscall(benchmark::State& state) {
  auto system = NewSystem(ReloadStrategy::kHardwareHtabWalk, state.range(0) != 0);
  Kernel& kernel = system->kernel();
  Spawn(kernel);
  kernel.NullSyscall();
  const uint64_t cycles0 = system->counters().cycles;
  for (auto _ : state) {
    kernel.NullSyscall();
  }
  state.counters["sim_cycles_per_op"] = benchmark::Counter(
      static_cast<double>(system->counters().cycles - cycles0) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_NullSyscall)->Arg(0)->Arg(1);  // 0 = C handlers, 1 = optimized

void BM_ContextSwitch(benchmark::State& state) {
  auto system = NewSystem(ReloadStrategy::kHardwareHtabWalk, /*optimized=*/true);
  Kernel& kernel = system->kernel();
  const TaskId a = Spawn(kernel);
  const TaskId b = Spawn(kernel);
  const uint64_t cycles0 = system->counters().cycles;
  bool flip = false;
  for (auto _ : state) {
    kernel.SwitchTo(flip ? a : b);
    flip = !flip;
  }
  state.counters["sim_cycles_per_op"] = benchmark::Counter(
      static_cast<double>(system->counters().cycles - cycles0) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ContextSwitch);

void BM_EagerPageFlush(benchmark::State& state) {
  auto system = NewSystem(ReloadStrategy::kHardwareHtabWalk, /*optimized=*/true);
  Kernel& kernel = system->kernel();
  const TaskId t = Spawn(kernel);
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  Task& task = kernel.task(t);
  const uint64_t cycles0 = system->counters().cycles;
  for (auto _ : state) {
    kernel.flusher().FlushPage(*task.mm, EffAddr(kUserDataBase));
  }
  state.counters["sim_cycles_per_op"] = benchmark::Counter(
      static_cast<double>(system->counters().cycles - cycles0) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_EagerPageFlush);

void BM_LazyContextFlush(benchmark::State& state) {
  auto system = NewSystem(ReloadStrategy::kHardwareHtabWalk, /*optimized=*/true);
  Kernel& kernel = system->kernel();
  const TaskId t = Spawn(kernel);
  Task& task = kernel.task(t);
  const uint64_t cycles0 = system->counters().cycles;
  for (auto _ : state) {
    kernel.flusher().FlushContext(*task.mm, /*mm_is_current=*/true);
  }
  state.counters["sim_cycles_per_op"] = benchmark::Counter(
      static_cast<double>(system->counters().cycles - cycles0) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_LazyContextFlush);

void BM_HtabSearchHit(benchmark::State& state) {
  Machine machine(MachineConfig::Ppc604(185));
  HashTable htab(2048, PhysAddr(kHtabPhysBase));
  AllLiveVsidOracle oracle;
  NullMemCharger charger;
  const HashedPte pte{.valid = true, .vsid = Vsid(0x42), .page_index = 0x7, .rpn = 0x100,
                      .cache_inhibited = false, .writable = true, .referenced = false,
                      .changed = false};
  htab.Insert(pte, oracle, charger);
  for (auto _ : state) {
    benchmark::DoNotOptimize(htab.Search(pte.virt_page(), charger));
  }
}
BENCHMARK(BM_HtabSearchHit);

void BM_HtabSearchMiss(benchmark::State& state) {
  HashTable htab(2048, PhysAddr(kHtabPhysBase));
  NullMemCharger charger;
  const VirtPage vp{.vsid = Vsid(0x9999), .page_index = 0x33};
  for (auto _ : state) {
    benchmark::DoNotOptimize(htab.Search(vp, charger));
  }
}
BENCHMARK(BM_HtabSearchMiss);

void BM_PageFault(benchmark::State& state) {
  auto system = NewSystem(ReloadStrategy::kHardwareHtabWalk, /*optimized=*/true);
  Kernel& kernel = system->kernel();
  Spawn(kernel);
  const uint32_t start = kernel.Mmap(4096);
  uint32_t page = 0;
  const uint64_t cycles0 = system->counters().cycles;
  for (auto _ : state) {
    kernel.UserTouch(EffAddr::FromPage(start + page), AccessKind::kStore);
    ++page;
    if (page == 4000) {  // recycle the address space before RAM runs out
      state.PauseTiming();
      kernel.Munmap(start, 4096);
      kernel.Mmap(4096, MmapOptions{.fixed_page = start});
      page = 0;
      state.ResumeTiming();
    }
  }
  state.counters["sim_cycles_per_op"] = benchmark::Counter(
      static_cast<double>(system->counters().cycles - cycles0) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_PageFault);

void BM_DirtyBitTrap(benchmark::State& state) {
  // Deferred C-bit maintenance: one first-store trap per iteration.
  OptimizationConfig config = OptimizationConfig::Baseline();
  config.optimized_handlers = true;
  auto system = std::make_unique<System>(MachineConfig::Ppc604(185), config);
  Kernel& kernel = system->kernel();
  Spawn(kernel);
  // A pool of pages faulted in via loads (clean), re-armed by re-faulting after each sweep.
  const uint32_t start = kernel.Mmap(256, MmapOptions{.writable = true});
  for (uint32_t p = 0; p < 256; ++p) {
    kernel.UserTouch(EffAddr::FromPage(start + p), AccessKind::kLoad);
  }
  uint32_t page = 0;
  uint64_t trap_cycles = 0;  // only the stores themselves; re-arm work is excluded
  for (auto _ : state) {
    const uint64_t before = system->counters().cycles;
    kernel.UserTouch(EffAddr::FromPage(start + page), AccessKind::kStore);
    trap_cycles += system->counters().cycles - before;
    if (++page == 256) {
      state.PauseTiming();
      kernel.Munmap(start, 256);
      kernel.Mmap(256, MmapOptions{.fixed_page = start});
      for (uint32_t p = 0; p < 256; ++p) {
        kernel.UserTouch(EffAddr::FromPage(start + p), AccessKind::kLoad);
      }
      page = 0;
      state.ResumeTiming();
    }
  }
  state.counters["sim_cycles_per_op"] = benchmark::Counter(
      static_cast<double>(trap_cycles) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DirtyBitTrap);

void BM_Prefetch(benchmark::State& state) {
  Machine machine(MachineConfig::Ppc604(185));
  uint32_t addr = 0;
  for (auto _ : state) {
    machine.PrefetchData(PhysAddr(addr));
    addr = (addr + 32) & 0xFFFFF;
  }
}
BENCHMARK(BM_Prefetch);

void BM_PipeRoundTrip(benchmark::State& state) {
  auto system = NewSystem(ReloadStrategy::kHardwareHtabWalk, /*optimized=*/true);
  Kernel& kernel = system->kernel();
  const TaskId a = Spawn(kernel);
  const TaskId b = Spawn(kernel);
  const uint32_t pipe = kernel.CreatePipe();
  kernel.SwitchTo(a);
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  const uint64_t cycles0 = system->counters().cycles;
  for (auto _ : state) {
    kernel.PipeWrite(pipe, EffAddr(kUserDataBase), 1);
    kernel.SwitchTo(b);
    kernel.PipeRead(pipe, EffAddr(kUserDataBase), 1);
    kernel.SwitchTo(a);
  }
  state.counters["sim_cycles_per_op"] = benchmark::Counter(
      static_cast<double>(system->counters().cycles - cycles0) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_PipeRoundTrip);

void BM_ForkExit(benchmark::State& state) {
  auto system = NewSystem(ReloadStrategy::kHardwareHtabWalk, /*optimized=*/true);
  Kernel& kernel = system->kernel();
  const TaskId parent = Spawn(kernel);
  // A modest resident set so fork has PTEs to copy-protect.
  for (uint32_t p = 0; p < 24; ++p) {
    kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kStore);
  }
  const uint64_t cycles0 = system->counters().cycles;
  for (auto _ : state) {
    const TaskId child = kernel.Fork(parent);
    kernel.Exit(child);
  }
  state.counters["sim_cycles_per_op"] = benchmark::Counter(
      static_cast<double>(system->counters().cycles - cycles0) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ForkExit);

void BM_ShmAttachDetach(benchmark::State& state) {
  auto system = NewSystem(ReloadStrategy::kHardwareHtabWalk, /*optimized=*/true);
  Kernel& kernel = system->kernel();
  Spawn(kernel);
  const uint32_t shm = kernel.ShmCreate(16);
  const uint64_t cycles0 = system->counters().cycles;
  for (auto _ : state) {
    const uint32_t start = kernel.ShmAttach(shm);
    kernel.UserTouch(EffAddr::FromPage(start), AccessKind::kStore);
    kernel.ShmDetach(start, 16);
  }
  state.counters["sim_cycles_per_op"] = benchmark::Counter(
      static_cast<double>(system->counters().cycles - cycles0) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ShmAttachDetach);

}  // namespace
}  // namespace ppcmm

BENCHMARK_MAIN();
