// §6.1 — "Fast reload code": hand-optimized miss/exception handlers.
//
// Paper: rewriting the handlers in scheduled assembly using only the swapped interrupt
// registers produced a 33% reduction in context-switch time, 15% lower communication
// latencies, and ~15% better user wall-clock in general.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/kernel_compile.h"
#include "src/workloads/lmbench.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

int Main() {
  Headline("Section 6.1: C handlers vs hand-optimized assembly handlers (603/133)");

  System slow(MachineConfig::Ppc603(133), OptimizationConfig::Baseline());
  System fast(MachineConfig::Ppc603(133), OptimizationConfig::OnlyFastHandlers());
  LmBench slow_suite(slow);
  LmBench fast_suite(fast);
  const LmBenchResult rs = slow_suite.RunAll();
  const LmBenchResult rf = fast_suite.RunAll();

  TextTable table({"metric", "C handlers", "optimized", "reduction"});
  auto reduction = [](double a, double b) {
    return TextTable::Num((a - b) / a * 100.0, 1) + "%";
  };
  table.AddRow({"ctxsw (2p)", TextTable::Us(rs.ctxsw_2p_us), TextTable::Us(rf.ctxsw_2p_us),
                reduction(rs.ctxsw_2p_us, rf.ctxsw_2p_us)});
  table.AddRow({"ctxsw (8p)", TextTable::Us(rs.ctxsw_8p_us), TextTable::Us(rf.ctxsw_8p_us),
                reduction(rs.ctxsw_8p_us, rf.ctxsw_8p_us)});
  table.AddRow({"pipe latency", TextTable::Us(rs.pipe_latency_us),
                TextTable::Us(rf.pipe_latency_us),
                reduction(rs.pipe_latency_us, rf.pipe_latency_us)});
  table.AddRow({"null syscall", TextTable::Us(rs.null_syscall_us),
                TextTable::Us(rf.null_syscall_us),
                reduction(rs.null_syscall_us, rf.null_syscall_us)});
  std::printf("%s\n", table.ToString().c_str());

  Headline("Paper vs measured");
  PaperVsMeasured("ctxsw reduction", 33.0,
                  (rs.ctxsw_2p_us - rf.ctxsw_2p_us) / rs.ctxsw_2p_us * 100.0, "%");
  PaperVsMeasured("pipe latency reduction", 15.0,
                  (rs.pipe_latency_us - rf.pipe_latency_us) / rs.pipe_latency_us * 100.0,
                  "%");

  // "User code showed an improvement of 15% in general when measured by wall-clock time":
  // the kernel-compile as the user-wall-clock proxy.
  KernelCompileConfig cc;
  cc.compilation_units = 12;
  System slow2(MachineConfig::Ppc603(133), OptimizationConfig::Baseline());
  System fast2(MachineConfig::Ppc603(133), OptimizationConfig::OnlyFastHandlers());
  const KernelCompileResult ks = RunKernelCompile(slow2, cc);
  const KernelCompileResult kf = RunKernelCompile(fast2, cc);
  PaperVsMeasured("user wall-clock improvement", 15.0,
                  (ks.seconds - kf.seconds) / ks.seconds * 100.0, "%");

  // §10.2 extension (future work in the paper): dcbt preloads in the context-switch path.
  Headline("Section 10.2 extension: cache preloads in the switch path (604/133)");
  OptimizationConfig hinted = OptimizationConfig::AllOptimizations();
  hinted.cache_preload_hints = true;
  System plain_sys(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
  System hinted_sys(MachineConfig::Ppc604(133), hinted);
  LmBenchParams p8;
  p8.ctxsw_working_set_kb = 32;  // big per-switch working sets keep the task structs cold
  LmBench plain_suite(plain_sys, p8);
  LmBench hinted_suite(hinted_sys, p8);
  const double plain_8p = plain_suite.ContextSwitchUs(8);
  const double hinted_8p = hinted_suite.ContextSwitchUs(8);
  std::printf("  8-process ctxsw: %.1f us plain, %.1f us with preload hints (%.1f%%)\n",
              plain_8p, hinted_8p, (plain_8p - hinted_8p) / plain_8p * 100.0);
  std::printf("  Claim (preloads help the switch path): %s\n",
              hinted_8p <= plain_8p ? "HOLDS" : "FAILS");
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
