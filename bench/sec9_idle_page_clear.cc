// §9 — "Idle Task Page Clearing": the three-variant experiment.
//
//   kCached           clear through the cache, feed get_free_page(): the paper's failed
//                     first attempt — "the kernel compile took nearly twice as long"
//   kUncachedNoList   clear with the cache inhibited, discard the pages: "no performance
//                     loss or gain" (the control)
//   kUncachedWithList clear uncached, feed get_free_page(): "the system became much faster"
//
// Run on the kernel compile, whose fork/exec/mmap activity consumes fresh zeroed pages and
// whose disk waits give the idle task its run time.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/kernel_compile.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

struct Case {
  const char* name;
  IdleZeroPolicy policy;
};

int Main() {
  Headline("Section 9: idle-task page clearing on the kernel compile (604/133)");

  const Case cases[] = {
      {"off (baseline)", IdleZeroPolicy::kOff},
      {"cached + list (failed attempt)", IdleZeroPolicy::kCached},
      {"uncached, no list (control)", IdleZeroPolicy::kUncachedNoList},
      {"uncached + list (the winner)", IdleZeroPolicy::kUncachedWithList},
  };

  KernelCompileConfig cc;
  cc.compilation_units = 20;

  TextTable table({"policy", "compile (sim s)", "vs baseline", "idle-zeroed", "prezero hits",
                   "demand-zeroed", "dcache miss rate"});
  double baseline_seconds = 0;
  double seconds_by_policy[4] = {};
  int index = 0;
  for (const Case& c : cases) {
    OptimizationConfig config = OptimizationConfig::OnlyIdleZero(c.policy);
    System system(MachineConfig::Ppc604(133), config);
    const uint64_t d_accesses0 = system.machine().dcache().stats().accesses;
    const KernelCompileResult r = RunKernelCompile(system, cc);
    const CacheStats& dstats = system.machine().dcache().stats();
    const double miss_rate =
        static_cast<double>(dstats.misses) / static_cast<double>(dstats.accesses - d_accesses0);
    if (c.policy == IdleZeroPolicy::kOff) {
      baseline_seconds = r.seconds;
    }
    seconds_by_policy[index++] = r.seconds;
    table.AddRow({c.name, TextTable::Num(r.seconds, 3),
                  baseline_seconds > 0
                      ? TextTable::Num(r.seconds / baseline_seconds, 2) + "x"
                      : "1.00x",
                  TextTable::Count(r.counters.pages_zeroed_in_idle),
                  TextTable::Count(r.counters.prezeroed_page_hits),
                  TextTable::Count(r.counters.pages_zeroed_on_demand),
                  TextTable::Pct(miss_rate)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // The pollution probe: the paper's cached variant lost because zeroing through the cache
  // "was verified with hardware counters to be due to more cache misses" in the resumed
  // task. Warm a working set that fits the L1, let the idle task zero pages, re-walk it.
  Headline("Cache pollution probe: re-walk a warm working set after an idle window");
  struct Probe {
    const char* name;
    IdleZeroPolicy policy;
    double rewalk_us;
  };
  Probe probes[] = {
      {"idle off", IdleZeroPolicy::kOff, 0},
      {"cached clearing", IdleZeroPolicy::kCached, 0},
      {"uncached clearing", IdleZeroPolicy::kUncachedWithList, 0},
  };
  for (Probe& probe : probes) {
    System system(MachineConfig::Ppc604(133), OptimizationConfig::OnlyIdleZero(probe.policy));
    Kernel& kernel = system.kernel();
    const TaskId t = kernel.CreateTask("probe");
    kernel.Exec(t, ExecImage{.text_pages = 4, .data_pages = 16, .stack_pages = 2});
    kernel.SwitchTo(t);
    // 3 pages x 128 lines = 384 lines spread evenly over the 128 sets of the 512-line data
    // cache: resident at 3 ways per set.
    auto walk = [&] {
      for (uint32_t page = 0; page < 3; ++page) {
        for (uint32_t line = 0; line < 128; ++line) {
          kernel.UserTouch(EffAddr(kUserDataBase + page * kPageSize + line * 32),
                           AccessKind::kLoad);
        }
      }
    };
    walk();  // fault in
    walk();  // warm
    kernel.RunIdle(Cycles(300'000));  // the idle window: zeroing happens here (or not)
    probe.rewalk_us = system.TimeMicros(walk);
    kernel.Exit(t);
  }
  std::printf("  re-walk after idle: off %.1f us, cached clearing %.1f us, uncached "
              "clearing %.1f us\n",
              probes[0].rewalk_us, probes[1].rewalk_us, probes[2].rewalk_us);

  Headline("Paper vs measured");
  PaperVsMeasured("pollution slowdown on warm code (paper saw ~2x on the full compile)", 2.0,
                  probes[1].rewalk_us / probes[0].rewalk_us, "x");
  PaperVsMeasured("uncached-no-list compile (should be ~1.0)", 1.0,
                  seconds_by_policy[2] / baseline_seconds, "x");
  std::printf("\nClaims:\n");
  std::printf("  cached clearing evicts the warm working set:  %s (%.1f vs %.1f us)\n",
              probes[1].rewalk_us > probes[0].rewalk_us * 1.5 ? "HOLDS" : "FAILS",
              probes[1].rewalk_us, probes[0].rewalk_us);
  std::printf("  uncached clearing leaves the cache alone:     %s (%.1f vs %.1f us)\n",
              probes[2].rewalk_us < probes[0].rewalk_us * 1.2 ? "HOLDS" : "FAILS",
              probes[2].rewalk_us, probes[0].rewalk_us);
  std::printf("  uncached clearing without the list is ~flat:  %s (%.2fx)\n",
              seconds_by_policy[2] < baseline_seconds * 1.05 &&
                      seconds_by_policy[2] > baseline_seconds * 0.95
                  ? "HOLDS"
                  : "FAILS",
              seconds_by_policy[2] / baseline_seconds);
  std::printf("  uncached + pre-zeroed list is a win:          %s (%.2fx)\n",
              seconds_by_policy[3] < baseline_seconds ? "HOLDS" : "FAILS",
              seconds_by_policy[3] / baseline_seconds);
  std::printf("  cached clearing pays more dcache misses than uncached on the compile\n"
              "  (miss-rate column above); at full workload scale that cost dominated and\n"
              "  made the cached variant ~2x slower — at 1/8 scale the pre-zeroed-list\n"
              "  savings outweigh it, so the compile-time column shows a net win instead.\n");

  // §10.1 extension: lock the idle task out of the caches entirely.
  Headline("Section 10.1 extension: fully uncached idle task");
  OptimizationConfig locked = OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kUncachedWithList);
  locked.uncached_idle_task = true;
  System system(MachineConfig::Ppc604(133), locked);
  const KernelCompileResult r = RunKernelCompile(system, cc);
  std::printf("  uncached idle task: %.3f s (uncached+list was %.3f s, baseline %.3f s)\n",
              r.seconds, seconds_by_policy[3], baseline_seconds);
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
