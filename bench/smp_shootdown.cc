// Shootdown storm — eager per-page shootdown vs the §7 lazy VSID bump, at 1/2/4 CPUs.
//
// The paper pitches lazy whole-context flushing as a uniprocessor mmap-latency win; this
// bench measures the claim's SMP corollary. Every CPU runs a resident task and the storm
// round-robins mmap/touch/munmap work onto the least-advanced CPU (by Machine::CpuCycles,
// so the interleave is fair and fully deterministic). Under eager flushing each munmap
// must interrupt every other CPU — (ncpus-1) IPIs per unmap, each charging send and
// receive cycles on top of the remote invalidate. Under the lazy VSID bump the retired
// VSIDs are unreachable on every CPU, remote zombie entries are harmless, and the same
// storm completes with zero shootdown rounds: the optimization scales with CPU count
// instead of being eroded by it.
//
// PPCMM_QUICK=1 shrinks the storm for smoke runs (bench/run_all.sh --quick and CI).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/rng.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

bool QuickMode() {
  const char* env = std::getenv("PPCMM_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Both policies start from the paper's final kernel so the flush strategy is the only
// variable; idle reclaim stays off so the idle loop cannot nibble at the HTAB mid-storm.
OptimizationConfig EagerShootdown() {
  OptimizationConfig config = OptimizationConfig::AllOptimizations();
  config.lazy_context_flush = false;
  config.range_flush_cutoff = 0;
  config.idle_zombie_reclaim = false;
  return config;
}

OptimizationConfig LazyVsidBump() {
  // AllOptimizations keeps the paper's tuned 20-page cutoff; the storm's regions sit above
  // it, so every munmap becomes a VSID bump. (Below the cutoff lazy flushing loses — the
  // whole-context bump forces the task's resident pages to re-translate — which is the
  // whole reason §7 made the cutoff tunable.)
  OptimizationConfig config = OptimizationConfig::AllOptimizations();
  config.idle_zombie_reclaim = false;
  return config;
}

struct StormResult {
  uint64_t rounds = 0;
  HwCounters delta;            // counters over the storm only (setup excluded)
  uint64_t unmap_cycles = 0;   // cycles spent inside Munmap alone — the lat_mmap headline
  uint64_t cpu_skew = 0;       // max - min per-CPU local clock after the storm
};

StormResult RunStorm(uint32_t ncpus, const OptimizationConfig& opts, uint64_t rounds) {
  MachineConfig machine = MachineConfig::Ppc604(185);
  machine.ncpus = ncpus;
  System sys(machine, opts);
  Kernel& kernel = sys.kernel();
  for (uint32_t cpu = 0; cpu < ncpus; ++cpu) {
    kernel.SwitchCpu(cpu);
    const TaskId id = kernel.CreateTask("storm");
    kernel.Exec(id, ExecImage{.text_pages = 8, .data_pages = 32, .stack_pages = 4});
    kernel.SwitchTo(id);
  }

  Rng rng(0x51107 + ncpus);
  StormResult result;
  const HwCounters before = sys.counters();
  for (uint64_t round = 0; round < rounds; ++round) {
    // Fair interleave: the spotlight always moves to the CPU with the least simulated
    // progress, so no CPU starves and the schedule is a pure function of the cycle model.
    uint32_t next = 0;
    for (uint32_t cpu = 1; cpu < ncpus; ++cpu) {
      if (sys.machine().CpuCycles(cpu) < sys.machine().CpuCycles(next)) {
        next = cpu;
      }
    }
    kernel.SwitchCpu(next);
    // lat_mmap-style regions, all past the 20-page cutoff so both policies flush a range
    // big enough to matter: eager pays per-page HTAB searches plus the shootdown round,
    // lazy pays one VSID bump regardless of size.
    const uint32_t pages = 24 + static_cast<uint32_t>(rng.NextBelow(8));
    const uint32_t start = kernel.Mmap(pages);
    for (uint32_t p = 0; p < pages; ++p) {
      kernel.UserTouch(EffAddr::FromPage(start + p), AccessKind::kStore);
    }
    // The unmap is where the policies diverge: per-page HTAB searches plus an IPI round
    // versus one VSID bump. The global cycle counter also books the remote IPI handlers,
    // so the shootdown's cross-CPU cost lands in this window too.
    const uint64_t unmap_start = sys.counters().cycles;
    kernel.Munmap(start, pages);
    result.unmap_cycles += sys.counters().cycles - unmap_start;
  }

  result.rounds = rounds;
  result.delta = sys.counters().Diff(before);
  uint64_t lo = sys.machine().CpuCycles(0), hi = lo;
  for (uint32_t cpu = 1; cpu < ncpus; ++cpu) {
    const uint64_t c = sys.machine().CpuCycles(cpu);
    lo = c < lo ? c : lo;
    hi = c > hi ? c : hi;
  }
  result.cpu_skew = hi - lo;
  return result;
}

int Main() {
  const bool quick = QuickMode();
  const uint64_t rounds = quick ? 200 : 2000;

  Headline("SMP shootdown storm: eager per-page shootdown vs lazy VSID bump");
  BenchReport::Global().SetMeta("machine", "604-185");
  BenchReport::Global().SetMeta("workload",
                                "mmap/touch/munmap storm, least-advanced-CPU interleave, " +
                                    std::to_string(rounds) + " rounds");

  struct Policy {
    const char* name;
    const char* key;
    OptimizationConfig opts;
  };
  const std::vector<Policy> policies = {
      {"eager shootdown", "eager", EagerShootdown()},
      {"lazy VSID bump", "lazy", LazyVsidBump()},
  };

  TextTable table({"policy", "ncpus", "unmap cyc/round", "cycles/round", "shootdown reqs",
                   "IPIs", "ctx flushes", "cpu skew"});
  std::vector<double> eager_unmap, lazy_unmap;  // indexed by width
  for (const Policy& policy : policies) {
    for (const uint32_t ncpus : {1u, 2u, 4u}) {
      const StormResult r = RunStorm(ncpus, policy.opts, rounds);
      const double unmap = static_cast<double>(r.unmap_cycles) / static_cast<double>(r.rounds);
      (policy.key[0] == 'e' ? eager_unmap : lazy_unmap).push_back(unmap);
      table.AddRow({policy.name, std::to_string(ncpus),
                    TextTable::Count(r.unmap_cycles / r.rounds),
                    TextTable::Count(r.delta.cycles / r.rounds),
                    TextTable::Count(r.delta.tlb_shootdown_requests),
                    TextTable::Count(r.delta.tlb_shootdown_ipis),
                    TextTable::Count(r.delta.tlb_context_flushes),
                    TextTable::Count(r.cpu_skew)});
      const std::string prefix = std::string(policy.key) + "_" + std::to_string(ncpus) + "cpu";
      BenchReport::Global().Add(prefix + ".unmap_cycles_per_round", unmap, "cycles");
      BenchReport::Global().Add(
          prefix + ".cycles_per_round",
          static_cast<double>(r.delta.cycles) / static_cast<double>(r.rounds), "cycles");
      BenchReport::Global().Add(prefix + ".cpu_clock_skew", static_cast<double>(r.cpu_skew),
                                "cycles");
      BenchReport::Global().AddCounters(prefix, r.delta);
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  Headline("Unmap latency: the shootdown tax and what the lazy bump buys back");
  for (size_t i = 0; i < 3; ++i) {
    const uint32_t ncpus = 1u << i;
    const double tax = eager_unmap[i] / eager_unmap[0];
    const double win = eager_unmap[i] / lazy_unmap[i];
    std::printf("  %u CPU(s): eager %.0f unmap cyc/round (%.2fx of 1-CPU), lazy %.0f — "
                "%.1fx faster\n",
                ncpus, eager_unmap[i], tax, lazy_unmap[i], win);
    const std::string prefix = std::to_string(ncpus) + "cpu";
    BenchReport::Global().Add(prefix + ".eager_unmap_scaling_tax", tax, "x");
    BenchReport::Global().Add(prefix + ".lazy_unmap_speedup", win, "x");
  }
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
