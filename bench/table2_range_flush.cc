// Table 2 — "LmBench summary for tunable TLB range flushing".
//
// Columns: 603-133 eager, 603-133 lazy, 604-185 eager, 604-185 tuned (lazy + 20-page
// cutoff). Rows: mmap latency, ctxsw, pipe latency, pipe bandwidth, file reread. The 80x
// mmap() improvement of §7 is the headline; a cutoff sweep (the tunable) follows.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/lmbench.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

int Main() {
  // The flushing strategy is the variable; handlers/BATs/scatter stay optimized so the
  // flush cost is isolated, per the paper's one-at-a-time methodology.
  OptimizationConfig eager = OptimizationConfig::AllOptimizations();
  eager.lazy_context_flush = false;
  eager.range_flush_cutoff = 0;
  eager.idle_zombie_reclaim = false;
  OptimizationConfig lazy = OptimizationConfig::AllOptimizations();
  // "Table 2 shows the 603 doing software searches of the hash table" (§7): the 603 columns
  // keep the HTAB, so the flush strategies act on it exactly as on the 604.
  eager.no_htab_direct_reload = false;
  lazy.no_htab_direct_reload = false;

  struct Column {
    std::string name;
    MachineConfig machine;
    OptimizationConfig opts;
    double paper_mmap, paper_ctxsw, paper_pipe_lat, paper_pipe_bw, paper_reread;
  };
  std::vector<Column> columns = {
      {"603 133MHz", MachineConfig::Ppc603(133), eager, 3240, 6, 34, 52, 26},
      {"603 133MHz (lazy)", MachineConfig::Ppc603(133), lazy, 41, 6, 28, 57, 32},
      {"604 185MHz", MachineConfig::Ppc604(185), eager, 2733, 4, 22, 90, 38},
      {"604 185MHz (tune)", MachineConfig::Ppc604(185), lazy, 33, 4, 21, 94, 41},
  };

  // lat_mmap over a multi-megabyte file: flushed ranges far beyond the 20-page cutoff.
  LmBenchParams params;
  params.mmap_pages = 1024;  // 4 MB map, lat_mmap style
  params.mmap_iters = 8;

  Headline("Table 2: LmBench summary for tunable TLB range flushing");
  BenchReport::Global().SetMeta("table", "2");
  BenchReport::Global().SetMeta("machines", "603-133, 603-133 lazy, 604-185, 604-185 tune");
  BenchReport::Global().SetMeta("workload", "lat_mmap 1024 pages x 8 iters");
  TextTable table({"metric", "603-133", "603-133 lazy", "604-185", "604-185 tune"});
  std::vector<LmBenchResult> results;
  for (const Column& column : columns) {
    System system(column.machine, column.opts);
    LmBench suite(system, params);
    results.push_back(suite.RunAll());
  }
  auto row = [&](const char* name, auto extract, auto format) {
    std::vector<std::string> cells = {name};
    for (const LmBenchResult& r : results) {
      cells.push_back(format(extract(r)));
    }
    table.AddRow(cells);
  };
  row("mmap latency", [](const LmBenchResult& r) { return r.mmap_latency_us; },
      TextTable::Us);
  row("ctxsw (2p)", [](const LmBenchResult& r) { return r.ctxsw_2p_us; }, TextTable::Us);
  row("ctxsw (8p)", [](const LmBenchResult& r) { return r.ctxsw_8p_us; }, TextTable::Us);
  row("pipe latency", [](const LmBenchResult& r) { return r.pipe_latency_us; },
      TextTable::Us);
  row("pipe bandwidth", [](const LmBenchResult& r) { return r.pipe_bandwidth_mbs; },
      TextTable::Mbs);
  row("file reread", [](const LmBenchResult& r) { return r.file_reread_mbs; },
      TextTable::Mbs);
  std::printf("%s\n", table.ToString().c_str());

  Headline("Paper vs measured");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s\n", columns[i].name.c_str());
    PaperVsMeasured("mmap latency", columns[i].paper_mmap, results[i].mmap_latency_us, "us");
    PaperVsMeasured("pipe latency", columns[i].paper_pipe_lat, results[i].pipe_latency_us,
                    "us");
    PaperVsMeasured("pipe bandwidth", columns[i].paper_pipe_bw, results[i].pipe_bandwidth_mbs,
                    "MB/s");
  }
  const double improvement_603 = results[0].mmap_latency_us / results[1].mmap_latency_us;
  const double improvement_604 = results[2].mmap_latency_us / results[3].mmap_latency_us;
  std::printf("\nmmap() improvement from lazy flushing: 603 %.0fx, 604 %.0fx (paper: ~80x)\n",
              improvement_603, improvement_604);
  BenchReport::Global().AddComparison("mmap improvement 603 (lazy/eager)", 80.0,
                                      improvement_603, "x");
  BenchReport::Global().AddComparison("mmap improvement 604 (lazy/eager)", 80.0,
                                      improvement_604, "x");

  // §7's tunable: sweep the range-flush cutoff. Below the map size the whole-context flush
  // kicks in and latency collapses; with the cutoff disabled (0) flushing is per-page.
  Headline("Cutoff sweep (604 185MHz, 64-page maps): the tunable of section 7");
  TextTable sweep({"cutoff (pages)", "mmap latency", "context flushes", "page flushes"});
  for (const uint32_t cutoff : {0u, 10u, 20u, 40u, 63u, 128u}) {
    OptimizationConfig config = OptimizationConfig::AllOptimizations();
    config.range_flush_cutoff = cutoff;
    config.lazy_context_flush = true;
    System system(MachineConfig::Ppc604(185), config);
    LmBenchParams p;
    p.mmap_pages = 64;
    p.mmap_iters = 10;
    LmBench suite(system, p);
    const HwCounters before = system.counters();
    const double mmap_us = suite.MmapLatencyUs();
    const HwCounters delta = system.counters().Diff(before);
    sweep.AddRow({cutoff == 0 ? "off (per-page)" : std::to_string(cutoff),
                  TextTable::Us(mmap_us), TextTable::Count(delta.tlb_context_flushes),
                  TextTable::Count(delta.tlb_page_flushes)});
    const std::string prefix = "cutoff_" + std::to_string(cutoff);
    BenchReport::Global().Add(prefix + ".mmap_latency", mmap_us, "us");
    BenchReport::Global().AddCounters(prefix, delta);
  }
  std::printf("%s\n", sweep.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
