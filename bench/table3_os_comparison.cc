// Table 3 — "LmBench summary for Linux/PPC and other Operating Systems".
//
// All five OS personalities on a 133 MHz 604 (the paper used a PowerMac 9500 for all but
// AIX). The other OSes are structural models — see src/workloads/os_models.h for exactly
// what each one charges and why.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/os_models.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

struct PaperRow {
  const char* os;
  double null_us, ctxsw_us, pipe_lat_us, pipe_bw_mbs;
};

int Main() {
  Headline("Table 3: LmBench summary for Linux/PPC and other Operating Systems (133MHz 604)");
  BenchReport::Global().SetMeta("table", "3");
  BenchReport::Global().SetMeta("machine", "604-133");

  const std::vector<Table3Row> rows = RunTable3(MachineConfig::Ppc604(133));
  TextTable table({"OS", "null syscall", "ctx switch", "pipe lat.", "pipe bw"});
  for (const Table3Row& row : rows) {
    table.AddRow({row.os, TextTable::Us(row.null_syscall_us), TextTable::Us(row.ctxsw_us),
                  TextTable::Us(row.pipe_latency_us), TextTable::Mbs(row.pipe_bandwidth_mbs)});
  }
  std::printf("%s\n", table.ToString().c_str());

  const PaperRow paper[] = {
      {"Linux/PPC", 2, 6, 28, 52},
      {"Unoptimized Linux/PPC", 18, 28, 78, 36},
      {"Rhapsody 5.0", 15, 64, 161, 9},
      {"MkLinux", 19, 64, 235, 15},
      {"AIX", 11, 24, 89, 21},
  };
  Headline("Paper vs measured");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%s\n", rows[i].os.c_str());
    PaperVsMeasured("null syscall", paper[i].null_us, rows[i].null_syscall_us, "us");
    PaperVsMeasured("ctx switch", paper[i].ctxsw_us, rows[i].ctxsw_us, "us");
    PaperVsMeasured("pipe latency", paper[i].pipe_lat_us, rows[i].pipe_latency_us, "us");
    PaperVsMeasured("pipe bandwidth", paper[i].pipe_bw_mbs, rows[i].pipe_bandwidth_mbs,
                    "MB/s");
  }

  std::printf("\nShape checks:\n");
  const auto& opt = rows[0];
  const auto& unopt = rows[1];
  const auto& mk = rows[3];
  std::printf("  optimized beats unoptimized on every point: %s\n",
              (opt.null_syscall_us < unopt.null_syscall_us && opt.ctxsw_us < unopt.ctxsw_us &&
               opt.pipe_latency_us < unopt.pipe_latency_us &&
               opt.pipe_bandwidth_mbs > unopt.pipe_bandwidth_mbs)
                  ? "HOLDS"
                  : "FAILS");
  std::printf("  monolithic (even unoptimized) beats the Mach systems on latency: %s\n",
              (unopt.pipe_latency_us < mk.pipe_latency_us && unopt.ctxsw_us < mk.ctxsw_us)
                  ? "HOLDS"
                  : "FAILS");
  std::printf("  optimized-vs-MkLinux null syscall gap (paper ~10x): %.1fx\n",
              mk.null_syscall_us / opt.null_syscall_us);

  // Extension: §11 says "monolithic designs need not remain a stationary target"; the
  // related-work L4 row shows how far a *fast* microkernel closes the gap.
  Headline("Extension: an L4-style fast microkernel (Liedtke [3])");
  const Table3Row l4 = RunTable3Row(OsPersonality::kL4Style, MachineConfig::Ppc604(133));
  std::printf("  %-22s null=%5.1fus ctxsw=%5.1fus pipelat=%6.1fus pipebw=%5.1fMB/s\n",
              l4.os.c_str(), l4.null_syscall_us, l4.ctxsw_us, l4.pipe_latency_us,
              l4.pipe_bandwidth_mbs);
  std::printf("  L4-style lands between optimized Linux and AIX: %s\n",
              (l4.null_syscall_us > opt.null_syscall_us &&
               l4.pipe_latency_us < mk.pipe_latency_us / 2)
                  ? "HOLDS"
                  : "FAILS");
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
