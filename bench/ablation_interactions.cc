// Ablation — optimization interactions.
//
// §4: "many optimizations did not interact as we expected them to and the end effect was
// not the sum of all the optimizations. Some optimizations even cancelled the effect of
// previous ones." This bench measures the kernel compile across the toggle lattice: each
// optimization alone, each one removed from the full set, and the cumulative build-up in
// the paper's order.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/sweep_runner.h"
#include "src/workloads/kernel_compile.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

double CompileSeconds(const OptimizationConfig& config) {
  System system(MachineConfig::Ppc604(133), config);
  KernelCompileConfig cc;
  cc.compilation_units = 12;
  return RunKernelCompile(system, cc).seconds;
}

// Every configuration the bench measures is known up front, so build the whole lattice
// first and sweep it across host threads — or across forked shard processes when
// PPCMM_SWEEP_SHARDS asks for it; each CompileSeconds call owns its System either way.
std::vector<double> CompileAll(const std::vector<OptimizationConfig>& configs) {
  SweepRunner runner;
  const auto run = [&](size_t i) { return CompileSeconds(configs[i]); };
  const unsigned shards = SweepRunner::DefaultShards();
  if (shards > 1) {
    return runner.MapSharded(configs.size(), shards, run);
  }
  return runner.Map(configs.size(), run);
}

int Main() {
  Headline("Ablation: optimization interactions on the kernel compile (604/133, 12 units)");

  struct Toggle {
    std::string name;
    OptimizationConfig alone;               // baseline + this one
    void (*remove)(OptimizationConfig&);    // full set - this one
  };
  const std::vector<Toggle> toggles = {
      {"BAT mapping", OptimizationConfig::OnlyBatMapping(),
       [](OptimizationConfig& c) { c.kernel_bat_mapping = false; }},
      {"VSID scatter", OptimizationConfig::OnlyTunedScatter(),
       [](OptimizationConfig& c) { c.vsid_scatter = kNaiveVsidScatter; }},
      {"fast handlers", OptimizationConfig::OnlyFastHandlers(),
       [](OptimizationConfig& c) { c.optimized_handlers = false; }},
      {"lazy flush + cutoff", OptimizationConfig::OnlyLazyFlush(20),
       [](OptimizationConfig& c) {
         c.lazy_context_flush = false;
         c.range_flush_cutoff = 0;
         c.idle_zombie_reclaim = false;
       }},
      {"idle reclaim", OptimizationConfig::OnlyIdleReclaim(),
       [](OptimizationConfig& c) { c.idle_zombie_reclaim = false; }},
      {"idle page zeroing", OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kUncachedWithList),
       [](OptimizationConfig& c) { c.idle_zero = IdleZeroPolicy::kOff; }},
  };

  // Cumulative build-up configs in roughly the paper's chronology (config construction is
  // cheap and sequential; only the compiles fan out).
  struct Step {
    const char* name;
    void (*mutate)(OptimizationConfig&);
  };
  const std::vector<Step> steps = {
      {"+ BAT mapping", [](OptimizationConfig& c) { c.kernel_bat_mapping = true; }},
      {"+ VSID scatter", [](OptimizationConfig& c) { c.vsid_scatter = kDefaultVsidScatter; }},
      {"+ fast handlers", [](OptimizationConfig& c) { c.optimized_handlers = true; }},
      {"+ lazy flush (cutoff 20)",
       [](OptimizationConfig& c) {
         c.lazy_context_flush = true;
         c.range_flush_cutoff = 20;
       }},
      {"+ idle reclaim", [](OptimizationConfig& c) { c.idle_zombie_reclaim = true; }},
      {"+ idle page zeroing",
       [](OptimizationConfig& c) { c.idle_zero = IdleZeroPolicy::kUncachedWithList; }},
  };

  // The full measurement lattice, one flat sweep: baseline, full set, each toggle alone,
  // each toggle removed, the cumulative build-up, and the §8 extension.
  std::vector<OptimizationConfig> configs;
  configs.push_back(OptimizationConfig::Baseline());
  configs.push_back(OptimizationConfig::AllOptimizations());
  for (const Toggle& toggle : toggles) {
    configs.push_back(toggle.alone);
  }
  for (const Toggle& toggle : toggles) {
    OptimizationConfig without = OptimizationConfig::AllOptimizations();
    toggle.remove(without);
    configs.push_back(without);
  }
  OptimizationConfig cumulative = OptimizationConfig::Baseline();
  for (const Step& step : steps) {
    step.mutate(cumulative);
    configs.push_back(cumulative);
  }
  configs.push_back(OptimizationConfig::AllPlusUncachedPageTables());

  const std::vector<double> seconds = CompileAll(configs);
  size_t at = 0;
  const double baseline = seconds[at++];
  const double full = seconds[at++];
  std::printf("baseline %.3f s, all optimizations %.3f s (%.1f%% faster)\n\n", baseline, full,
              (baseline - full) / baseline * 100.0);

  TextTable table({"optimization", "alone: gain vs baseline", "removed: loss vs full set"});
  double sum_of_alone_gains = 0;
  for (size_t i = 0; i < toggles.size(); ++i) {
    const double alone = seconds[at + i];
    const double removed = seconds[at + toggles.size() + i];
    const double alone_gain = (baseline - alone) / baseline * 100.0;
    const double removed_loss = (removed - full) / full * 100.0;
    sum_of_alone_gains += alone_gain;
    table.AddRow({toggles[i].name, TextTable::Num(alone_gain, 1) + "%",
                  TextTable::Num(removed_loss, 1) + "%"});
  }
  at += 2 * toggles.size();
  std::printf("%s\n", table.ToString().c_str());

  const double combined_gain = (baseline - full) / baseline * 100.0;
  std::printf("sum of individual gains: %.1f%%; combined gain: %.1f%%\n", sum_of_alone_gains,
              combined_gain);
  std::printf("Claim (\"the end effect was not the sum of all the optimizations\"): %s\n\n",
              std::abs(sum_of_alone_gains - combined_gain) > 1.0 ? "HOLDS" : "FAILS");

  Headline("Cumulative build-up (paper order)");
  TextTable build({"after adding", "compile (sim s)", "vs baseline"});
  build.AddRow({"(baseline)", TextTable::Num(baseline, 3), "0.0%"});
  for (const Step& step : steps) {
    const double s = seconds[at++];
    build.AddRow({step.name, TextTable::Num(s, 3),
                  TextTable::Num((baseline - s) / baseline * 100.0, 1) + "%"});
  }
  std::printf("%s\n", build.ToString().c_str());

  // §8 extension (never shipped in the paper's kernel): uncached page tables on top.
  Headline("Section 8 extension: uncached page tables on top of the full set");
  const double with_uncached_pt = seconds[at++];
  std::printf("  full set %.3f s, + uncached page tables %.3f s (%+.1f%%)\n", full,
              with_uncached_pt, (full - with_uncached_pt) / full * 100.0);
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
