// §7 — idle-task reclaim of zombie HTAB entries.
//
// Paper measurements to reproduce in shape, under a steady flush-heavy load with idle time:
//   * evict/reload ratio: >90% without reclaim -> ~30% with it,
//   * in-use (live) HTAB entries: 600–700 (5%) -> 1400–2200 (15%),
//   * HTAB hit rate on a TLB miss: 85% -> up to 98%.
//
// The workload cycles processes through map/touch/unmap churn (every munmap above the
// cutoff retires a context and strands zombies) with idle slices between rounds, as disk
// waits provide in a real compile load.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/stats.h"
#include "src/kernel/layout.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

struct ChurnResult {
  double evict_ratio = 0;
  double hit_rate = 0;
  uint32_t live_entries = 0;
  uint32_t valid_entries = 0;
  uint64_t zombies_reclaimed = 0;
  double micros = 0;
};

ChurnResult RunChurn(bool reclaim, uint32_t htab_ptegs) {
  OptimizationConfig config =
      reclaim ? OptimizationConfig::OnlyIdleReclaim() : OptimizationConfig::OnlyLazyFlush(20);
  config.optimized_handlers = true;
  MachineConfig machine = MachineConfig::Ppc604(185);
  machine.htab_ptegs = htab_ptegs;
  System system(machine, config);
  Kernel& kernel = system.kernel();

  const TaskId worker = kernel.CreateTask("worker");
  kernel.Exec(worker, ExecImage{.text_pages = 8, .data_pages = 192, .stack_pages = 4});
  kernel.SwitchTo(worker);

  // Warm-up churn to reach steady state, then a measured phase.
  auto churn_round = [&](uint32_t salt) {
    const uint32_t start = kernel.Mmap(48);
    for (uint32_t i = 0; i < 48; ++i) {
      kernel.UserTouch(EffAddr::FromPage(start + i, (salt % 16) * 64), AccessKind::kStore);
    }
    // Between-map work: several passes over a working set wider than the DTLB. Passes after
    // the first are pure TLB capacity misses, whose reloads hit the HTAB — *if* the entries
    // survived; in a zombie-clogged table the arbitrary replacement keeps killing them.
    for (uint32_t pass = 0; pass < 5; ++pass) {
      for (uint32_t i = 0; i < 160; ++i) {
        kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kLoad);
      }
    }
    kernel.Munmap(start, 48);
    kernel.RunIdle(Cycles(30'000));  // the disk-wait window the idle task gets
  };
  for (uint32_t round = 0; round < 40; ++round) {
    churn_round(round);
  }
  const HwCounters before = system.counters();
  const Cycles t0 = system.machine().Now();
  for (uint32_t round = 0; round < 80; ++round) {
    churn_round(40 + round);
  }
  const HwCounters delta = system.counters().Diff(before);

  ChurnResult result;
  result.evict_ratio = delta.EvictToReloadRatio();
  result.hit_rate = delta.HtabHitRate();
  result.live_entries = system.mmu().htab().LiveCount(kernel.vsids());
  result.valid_entries = system.mmu().htab().ValidCount();
  result.zombies_reclaimed = delta.zombies_reclaimed;
  result.micros =
      CyclesToMicros(system.machine().Now() - t0, system.machine_config().clock_mhz);
  kernel.Exit(worker);
  return result;
}

int Main() {
  Headline("Section 7: idle-task zombie reclaim (steady flush churn, 604/185)");
  std::printf("The paper's full-size HTAB (2048 PTEGs) and a scaled-down one (128 PTEGs),\n"
              "where zombie pressure corresponds to the paper's workload scale.\n\n");

  TextTable table({"htab", "reclaim", "evict/reload", "htab hit rate", "live PTEs",
                   "valid PTEs", "reclaimed"});
  ChurnResult small_off;
  ChurnResult small_on;
  for (const uint32_t ptegs : {128u, 2048u}) {
    const ChurnResult off = RunChurn(false, ptegs);
    const ChurnResult on = RunChurn(true, ptegs);
    if (ptegs == 128) {
      small_off = off;
      small_on = on;
    }
    table.AddRow({std::to_string(ptegs) + " PTEGs", "off", TextTable::Pct(off.evict_ratio),
                  TextTable::Pct(off.hit_rate), TextTable::Count(off.live_entries),
                  TextTable::Count(off.valid_entries), TextTable::Count(off.zombies_reclaimed)});
    table.AddRow({std::to_string(ptegs) + " PTEGs", "on", TextTable::Pct(on.evict_ratio),
                  TextTable::Pct(on.hit_rate), TextTable::Count(on.live_entries),
                  TextTable::Count(on.valid_entries), TextTable::Count(on.zombies_reclaimed)});
  }
  std::printf("%s\n", table.ToString().c_str());

  Headline("Paper vs measured (scaled HTAB)");
  PaperVsMeasured("evict/reload without reclaim", 90.0, small_off.evict_ratio * 100.0, "%");
  PaperVsMeasured("evict/reload with reclaim", 30.0, small_on.evict_ratio * 100.0, "%");
  PaperVsMeasured("live-entry growth with reclaim", 1400.0 / 650.0,
                  small_off.live_entries == 0
                      ? 0.0
                      : static_cast<double>(small_on.live_entries) / small_off.live_entries,
                  "x");
  std::printf("\nClaims:\n");
  std::printf("  reclaim lowers the evict/reload ratio: %s (%.0f%% -> %.0f%%)\n",
              small_on.evict_ratio < small_off.evict_ratio ? "HOLDS" : "FAILS",
              small_off.evict_ratio * 100.0, small_on.evict_ratio * 100.0);
  std::printf("  reclaim raises the HTAB hit rate:      %s (%.1f%% -> %.1f%%)\n",
              small_on.hit_rate > small_off.hit_rate ? "HOLDS" : "FAILS",
              small_off.hit_rate * 100.0, small_on.hit_rate * 100.0);
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
