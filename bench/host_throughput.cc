// Host throughput — how fast the simulator itself runs.
//
// Unlike every other bench, the numbers here are about the *host*: simulated accesses and
// simulated cycles retired per host second, for each reload strategy, with the MMU's host
// fast path off and on, and with the configuration sweep run serially versus on the
// SweepRunner thread pool. The fast path must be simulation-invisible, so each off/on pair
// also cross-checks that total simulated cycles are bit-identical (fast_path_test proves
// the full counter set; this is the cheap always-on guard).
//
// PPCMM_QUICK=1 shrinks the workload for smoke runs (bench/run_all.sh --quick and the
// ctest-registered host_throughput_test).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernel/kernel.h"
#include "src/kernel/layout.h"
#include "src/mmu/mmu.h"
#include "src/sim/sweep_runner.h"
#include "src/workloads/kernel_compile.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

struct Strategy {
  const char* name;
  MachineConfig machine;
  OptimizationConfig opts;
};

struct RunStats {
  double host_seconds = 0;
  uint64_t sim_accesses = 0;
  uint64_t sim_cycles = 0;
  double fast_hit_rate = 0;
};

bool QuickMode() {
  const char* env = std::getenv("PPCMM_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// One full simulation of the kernel compile under `strategy`, timed on the host clock.
RunStats RunOnce(const Strategy& strategy, uint32_t units) {
  const auto start = std::chrono::steady_clock::now();
  System system(strategy.machine, strategy.opts);
  KernelCompileConfig cc;
  cc.compilation_units = units;
  RunKernelCompile(system, cc);
  RunStats stats;
  stats.host_seconds = Seconds(std::chrono::steady_clock::now() - start);
  const HwCounters& c = system.counters();
  stats.sim_accesses = c.itlb_accesses + c.dtlb_accesses + c.bat_translations;
  stats.sim_cycles = c.cycles;
  const uint64_t probes = system.mmu().fast_path_hits() + system.mmu().fast_path_misses();
  stats.fast_hit_rate =
      probes == 0 ? 0.0
                  : static_cast<double>(system.mmu().fast_path_hits()) /
                        static_cast<double>(probes);
  return stats;
}

// Best host times for one strategy with the fast path off and on. The off/on runs are
// interleaved round by round (off, on, off, on, ...): on a shared host, machine-speed
// drift then lands on both sides of the ratio instead of biasing whichever phase happened
// to run later. The simulation itself is deterministic; only host noise varies.
struct OffOnStats {
  RunStats off;
  RunStats on;
};

OffOnStats RunInterleavedBest(const Strategy& strategy, uint32_t units, int reps) {
  OffOnStats best;
  for (int r = 0; r < reps; ++r) {
    Mmu::SetFastPathDefault(false);
    const RunStats off = RunOnce(strategy, units);
    Mmu::SetFastPathDefault(true);
    const RunStats on = RunOnce(strategy, units);
    if (r == 0 || off.host_seconds < best.off.host_seconds) {
      best.off = off;
    }
    if (r == 0 || on.host_seconds < best.on.host_seconds) {
      best.on = on;
    }
  }
  Mmu::SetFastPathDefault(std::nullopt);
  return best;
}

// ---- batched translation spans ----
//
// Streams page-grained runs through a resident working set — the workload shape the
// UserTouchRun/Mmu::AccessRun batching API exists for. `batched` off replays the exact
// same access stream one UserTouch at a time, so the off/on pair both times the span
// replay against the per-access fast path and cross-checks that the batching is
// simulation-invisible (identical simulated accesses and cycles).
struct StreamStats {
  double host_seconds = 0;
  uint64_t sim_accesses = 0;
  uint64_t sim_cycles = 0;
  uint64_t span_runs = 0;
  uint64_t span_accesses = 0;
};

StreamStats RunStream(const Strategy& strategy, uint32_t ws_pages, uint32_t stride,
                      int passes, bool batched) {
  System system(strategy.machine, strategy.opts);
  Kernel& kernel = system.kernel();
  const TaskId task = kernel.CreateTask("stream");
  kernel.Exec(task, ExecImage{.text_pages = 4, .data_pages = ws_pages + 4, .stack_pages = 4});
  kernel.SwitchTo(task);
  const EffAddr heap(kUserDataBase);
  const uint32_t count = ws_pages * kPageSize / stride;
  // Fault the set in with stores (installs writable+changed PTEs) so the timed passes
  // measure steady-state translation, not demand paging.
  kernel.UserTouchRun(heap, stride, count, AccessKind::kStore);
  const HwCounters before = system.counters();
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    if (batched) {
      kernel.UserTouchRun(heap, stride, count, AccessKind::kLoad);
    } else {
      for (uint32_t i = 0; i < count; ++i) {
        kernel.UserTouch(heap + i * stride, AccessKind::kLoad);
      }
    }
  }
  StreamStats stats;
  stats.host_seconds = Seconds(std::chrono::steady_clock::now() - start);
  const HwCounters d = system.counters().Diff(before);
  stats.sim_accesses = d.itlb_accesses + d.dtlb_accesses + d.bat_translations;
  stats.sim_cycles = d.cycles;
  stats.span_runs = system.mmu().span_runs();
  stats.span_accesses = system.mmu().span_accesses();
  return stats;
}

int Main() {
  const bool quick = QuickMode();
  // Full-mode runs are sized so one simulation takes a few hundred host milliseconds —
  // short windows drown in scheduler noise on a shared host.
  const uint32_t units = quick ? 2 : 48;
  const int reps = quick ? 1 : 5;
  BenchReport::Global().SetName("host_throughput");
  BenchReport::Global().SetMeta("workload", "kernel compile");
  BenchReport::Global().SetMeta("strategies", "604 hw-walk, 603 sw-htab, 603 direct");

  Headline("Host throughput: simulator speed per reload strategy (kernel compile)");
  std::printf("workload: kernel compile, %u units, best of %d host-timed runs%s\n\n", units,
              reps, quick ? " (quick mode)" : "");

  const std::vector<Strategy> strategies = {
      {"604 hw-walk baseline", MachineConfig::Ppc604(133), OptimizationConfig::Baseline()},
      {"604 hw-walk optimized", MachineConfig::Ppc604(133),
       OptimizationConfig::AllOptimizations()},
      {"603 sw-htab baseline", MachineConfig::Ppc603(133), OptimizationConfig::Baseline()},
      {"603 direct reload", MachineConfig::Ppc603(133), OptimizationConfig::OnlyDirectReload()},
  };

  TextTable table({"strategy", "Maccess/s off", "Maccess/s on", "Mcycles/s on", "fast speedup",
                   "hit rate"});
  double fast_speedup_sum = 0;
  bool cycles_identical = true;
  // One untimed warmup so first-run costs (allocator growth, cold host caches) are not
  // charged to the first timed configuration.
  RunOnce(strategies.front(), quick ? 1 : 2);
  for (const Strategy& strategy : strategies) {
    const auto [off, on] = RunInterleavedBest(strategy, units, reps);
    cycles_identical = cycles_identical && off.sim_cycles == on.sim_cycles &&
                       off.sim_accesses == on.sim_accesses;
    const double speedup = off.host_seconds / on.host_seconds;
    fast_speedup_sum += speedup;
    const double maccess_off =
        static_cast<double>(off.sim_accesses) / off.host_seconds / 1e6;
    const double maccess_on = static_cast<double>(on.sim_accesses) / on.host_seconds / 1e6;
    const double mcycles_on = static_cast<double>(on.sim_cycles) / on.host_seconds / 1e6;
    table.AddRow({strategy.name, TextTable::Num(maccess_off, 2), TextTable::Num(maccess_on, 2),
                  TextTable::Num(mcycles_on, 1), TextTable::Num(speedup, 2) + "x",
                  TextTable::Num(on.fast_hit_rate * 100.0, 1) + "%"});
    BenchReport::Global().Add(std::string(strategy.name) + ".sim_accesses_per_sec_fast_on",
                              maccess_on * 1e6, "1/s");
    BenchReport::Global().Add(std::string(strategy.name) + ".sim_cycles_per_sec_fast_on",
                              mcycles_on * 1e6, "1/s");
    BenchReport::Global().Add(std::string(strategy.name) + ".fast_path_speedup", speedup, "x");
    BenchReport::Global().Add(std::string(strategy.name) + ".fast_path_hit_rate",
                              on.fast_hit_rate, "");
  }
  std::printf("%s\n", table.ToString().c_str());
  const double fast_speedup = fast_speedup_sum / static_cast<double>(strategies.size());
  std::printf("fast path simulation-invisible (cycles+accesses identical off/on): %s\n",
              cycles_identical ? "HOLDS" : "FAILS");
  std::printf("mean fast-path speedup: %.2fx\n", fast_speedup);

  Headline("Batched translation spans: page-grained runs vs per-access touches");
  Mmu::SetFastPathDefault(true);
  const uint32_t ws_pages = quick ? 256 : 1024;  // 1 MB / 4 MB resident working set
  TextTable span_table(
      {"strategy", "stride", "Maccess/s per-access", "Maccess/s batched", "span speedup",
       "accesses/span"});
  bool spans_identical = true;
  double best_batched_maccess = 0;
  for (const Strategy& strategy :
       {strategies[1] /* 604 optimized */, strategies[3] /* 603 direct */}) {
    for (const uint32_t stride : {4u, 32u}) {
      // Size passes so the batched side runs a few hundred host ms in full mode.
      const uint32_t per_pass = ws_pages * kPageSize / stride;
      const int passes = quick ? 2 : static_cast<int>(stride == 4 ? 24 : 96);
      StreamStats single;
      StreamStats span;
      for (int r = 0; r < reps; ++r) {
        const StreamStats s = RunStream(strategy, ws_pages, stride, passes, false);
        const StreamStats b = RunStream(strategy, ws_pages, stride, passes, true);
        if (r == 0 || s.host_seconds < single.host_seconds) single = s;
        if (r == 0 || b.host_seconds < span.host_seconds) span = b;
      }
      spans_identical = spans_identical && single.sim_accesses == span.sim_accesses &&
                        single.sim_cycles == span.sim_cycles;
      const double m_single =
          static_cast<double>(single.sim_accesses) / single.host_seconds / 1e6;
      const double m_span = static_cast<double>(span.sim_accesses) / span.host_seconds / 1e6;
      if (m_span > best_batched_maccess) best_batched_maccess = m_span;
      const double per_span =
          span.span_runs == 0 ? 0.0
                              : static_cast<double>(span.span_accesses) /
                                    static_cast<double>(span.span_runs);
      span_table.AddRow({strategy.name, std::to_string(stride), TextTable::Num(m_single, 2),
                         TextTable::Num(m_span, 2),
                         TextTable::Num(m_span / m_single, 2) + "x",
                         TextTable::Num(per_span, 1)});
      const std::string key =
          std::string(strategy.name) + ".stride" + std::to_string(stride);
      BenchReport::Global().Add(key + ".batched_accesses_per_sec", m_span * 1e6, "1/s");
      BenchReport::Global().Add(key + ".span_speedup", m_span / m_single, "x");
      (void)per_pass;
    }
  }
  Mmu::SetFastPathDefault(std::nullopt);
  std::printf("%s\n", span_table.ToString().c_str());
  std::printf("batched runs simulation-invisible (cycles+accesses identical): %s\n",
              spans_identical ? "HOLDS" : "FAILS");
  std::printf("best batched throughput: %.1f Maccess/s\n", best_batched_maccess);
  BenchReport::Global().Add("batched_best_accesses_per_sec", best_batched_maccess * 1e6,
                            "1/s");

  Headline("Parallel sweep: all strategies, serial vs SweepRunner");
  Mmu::SetFastPathDefault(true);
  const auto serial_start = std::chrono::steady_clock::now();
  for (const Strategy& strategy : strategies) {
    RunOnce(strategy, units);
  }
  const double serial_s = Seconds(std::chrono::steady_clock::now() - serial_start);

  SweepRunner runner;
  const auto par_start = std::chrono::steady_clock::now();
  runner.Map(strategies.size(), [&](size_t i) { return RunOnce(strategies[i], units); });
  const double parallel_s = Seconds(std::chrono::steady_clock::now() - par_start);

  // Combined: the shipped configuration (fast path on, parallel sweep) against the
  // all-slow baseline (fast path off, serial sweep).
  Mmu::SetFastPathDefault(false);
  const auto base_start = std::chrono::steady_clock::now();
  for (const Strategy& strategy : strategies) {
    RunOnce(strategy, units);
  }
  const double baseline_s = Seconds(std::chrono::steady_clock::now() - base_start);
  Mmu::SetFastPathDefault(std::nullopt);

  const double parallel_speedup = serial_s / parallel_s;
  const double combined_speedup = baseline_s / parallel_s;
  std::printf("  sweep threads: %u (host cores: %u)\n", runner.threads(),
              std::thread::hardware_concurrency());
  std::printf("  serial %.2fs, parallel %.2fs -> %.2fx; combined vs fast-off serial %.2fx\n",
              serial_s, parallel_s, parallel_speedup, combined_speedup);
  BenchReport::Global().Add("sweep_threads", runner.threads(), "");
  BenchReport::Global().Add("parallel_speedup", parallel_speedup, "x");
  BenchReport::Global().Add("fast_path_mean_speedup", fast_speedup, "x");
  BenchReport::Global().Add("combined_speedup_vs_serial_fast_off", combined_speedup, "x");

  Headline("Sharded sweep: fork-per-shard processes vs serial");
  // PPCMM_SWEEP_SHARDS (bench/run_all.sh --shards) picks the shard count; without it the
  // bench still exercises the forked path on a couple of shards. All SweepRunner threads
  // above are joined by now, so the process is single-threaded and safe to fork.
  const unsigned env_shards = SweepRunner::DefaultShards();
  const unsigned hw_cores = std::thread::hardware_concurrency();
  const unsigned shards =
      env_shards > 1 ? env_shards : std::min(2u, hw_cores != 0 ? hw_cores : 1u);
  Mmu::SetFastPathDefault(true);
  const auto shard_serial_start = std::chrono::steady_clock::now();
  std::vector<RunStats> shard_serial;
  shard_serial.reserve(strategies.size());
  for (const Strategy& strategy : strategies) {
    shard_serial.push_back(RunOnce(strategy, units));
  }
  const double shard_serial_s = Seconds(std::chrono::steady_clock::now() - shard_serial_start);

  const auto shard_start = std::chrono::steady_clock::now();
  const std::vector<RunStats> sharded = runner.MapSharded(
      strategies.size(), shards, [&](size_t i) { return RunOnce(strategies[i], units); });
  const double sharded_s = Seconds(std::chrono::steady_clock::now() - shard_start);
  Mmu::SetFastPathDefault(std::nullopt);

  // The shards run the identical deterministic simulations, so the merged results must be
  // bit-identical to the serial pass — this is the same contract the CI sharded-smoke job
  // checks at the BENCH-json level.
  bool sharded_identical = sharded.size() == shard_serial.size();
  for (size_t i = 0; sharded_identical && i < sharded.size(); ++i) {
    sharded_identical = sharded[i].sim_accesses == shard_serial[i].sim_accesses &&
                        sharded[i].sim_cycles == shard_serial[i].sim_cycles;
  }
  const double sharded_speedup = shard_serial_s / sharded_s;
  std::printf("  shards: %u (host cores: %u)\n", shards, hw_cores);
  std::printf("  serial %.2fs, sharded %.2fs -> %.2fx; results bit-identical: %s\n",
              shard_serial_s, sharded_s, sharded_speedup,
              sharded_identical ? "HOLDS" : "FAILS");
  BenchReport::Global().Add("sweep_shards", shards, "");
  BenchReport::Global().Add("sharded_speedup", sharded_speedup, "x");

  return cycles_identical && spans_identical && sharded_identical ? 0 : 1;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
