// Host throughput — how fast the simulator itself runs.
//
// Unlike every other bench, the numbers here are about the *host*: simulated accesses and
// simulated cycles retired per host second, for each reload strategy, with the MMU's host
// fast path off and on, and with the configuration sweep run serially versus on the
// SweepRunner thread pool. The fast path must be simulation-invisible, so each off/on pair
// also cross-checks that total simulated cycles are bit-identical (fast_path_test proves
// the full counter set; this is the cheap always-on guard).
//
// PPCMM_QUICK=1 shrinks the workload for smoke runs (bench/run_all.sh --quick and the
// ctest-registered host_throughput_test).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "src/mmu/mmu.h"
#include "src/sim/sweep_runner.h"
#include "src/workloads/kernel_compile.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

struct Strategy {
  const char* name;
  MachineConfig machine;
  OptimizationConfig opts;
};

struct RunStats {
  double host_seconds = 0;
  uint64_t sim_accesses = 0;
  uint64_t sim_cycles = 0;
  double fast_hit_rate = 0;
};

bool QuickMode() {
  const char* env = std::getenv("PPCMM_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// One full simulation of the kernel compile under `strategy`, timed on the host clock.
RunStats RunOnce(const Strategy& strategy, uint32_t units) {
  const auto start = std::chrono::steady_clock::now();
  System system(strategy.machine, strategy.opts);
  KernelCompileConfig cc;
  cc.compilation_units = units;
  RunKernelCompile(system, cc);
  RunStats stats;
  stats.host_seconds = Seconds(std::chrono::steady_clock::now() - start);
  const HwCounters& c = system.counters();
  stats.sim_accesses = c.itlb_accesses + c.dtlb_accesses + c.bat_translations;
  stats.sim_cycles = c.cycles;
  const uint64_t probes = system.mmu().fast_path_hits() + system.mmu().fast_path_misses();
  stats.fast_hit_rate =
      probes == 0 ? 0.0
                  : static_cast<double>(system.mmu().fast_path_hits()) /
                        static_cast<double>(probes);
  return stats;
}

// Best host times for one strategy with the fast path off and on. The off/on runs are
// interleaved round by round (off, on, off, on, ...): on a shared host, machine-speed
// drift then lands on both sides of the ratio instead of biasing whichever phase happened
// to run later. The simulation itself is deterministic; only host noise varies.
struct OffOnStats {
  RunStats off;
  RunStats on;
};

OffOnStats RunInterleavedBest(const Strategy& strategy, uint32_t units, int reps) {
  OffOnStats best;
  for (int r = 0; r < reps; ++r) {
    Mmu::SetFastPathDefault(false);
    const RunStats off = RunOnce(strategy, units);
    Mmu::SetFastPathDefault(true);
    const RunStats on = RunOnce(strategy, units);
    if (r == 0 || off.host_seconds < best.off.host_seconds) {
      best.off = off;
    }
    if (r == 0 || on.host_seconds < best.on.host_seconds) {
      best.on = on;
    }
  }
  Mmu::SetFastPathDefault(std::nullopt);
  return best;
}

int Main() {
  const bool quick = QuickMode();
  // Full-mode runs are sized so one simulation takes a few hundred host milliseconds —
  // short windows drown in scheduler noise on a shared host.
  const uint32_t units = quick ? 2 : 48;
  const int reps = quick ? 1 : 5;
  BenchReport::Global().SetName("host_throughput");
  BenchReport::Global().SetMeta("workload", "kernel compile");
  BenchReport::Global().SetMeta("strategies", "604 hw-walk, 603 sw-htab, 603 direct");

  Headline("Host throughput: simulator speed per reload strategy (kernel compile)");
  std::printf("workload: kernel compile, %u units, best of %d host-timed runs%s\n\n", units,
              reps, quick ? " (quick mode)" : "");

  const std::vector<Strategy> strategies = {
      {"604 hw-walk baseline", MachineConfig::Ppc604(133), OptimizationConfig::Baseline()},
      {"604 hw-walk optimized", MachineConfig::Ppc604(133),
       OptimizationConfig::AllOptimizations()},
      {"603 sw-htab baseline", MachineConfig::Ppc603(133), OptimizationConfig::Baseline()},
      {"603 direct reload", MachineConfig::Ppc603(133), OptimizationConfig::OnlyDirectReload()},
  };

  TextTable table({"strategy", "Maccess/s off", "Maccess/s on", "Mcycles/s on", "fast speedup",
                   "hit rate"});
  double fast_speedup_sum = 0;
  bool cycles_identical = true;
  // One untimed warmup so first-run costs (allocator growth, cold host caches) are not
  // charged to the first timed configuration.
  RunOnce(strategies.front(), quick ? 1 : 2);
  for (const Strategy& strategy : strategies) {
    const auto [off, on] = RunInterleavedBest(strategy, units, reps);
    cycles_identical = cycles_identical && off.sim_cycles == on.sim_cycles &&
                       off.sim_accesses == on.sim_accesses;
    const double speedup = off.host_seconds / on.host_seconds;
    fast_speedup_sum += speedup;
    const double maccess_off =
        static_cast<double>(off.sim_accesses) / off.host_seconds / 1e6;
    const double maccess_on = static_cast<double>(on.sim_accesses) / on.host_seconds / 1e6;
    const double mcycles_on = static_cast<double>(on.sim_cycles) / on.host_seconds / 1e6;
    table.AddRow({strategy.name, TextTable::Num(maccess_off, 2), TextTable::Num(maccess_on, 2),
                  TextTable::Num(mcycles_on, 1), TextTable::Num(speedup, 2) + "x",
                  TextTable::Num(on.fast_hit_rate * 100.0, 1) + "%"});
    BenchReport::Global().Add(std::string(strategy.name) + ".sim_accesses_per_sec_fast_on",
                              maccess_on * 1e6, "1/s");
    BenchReport::Global().Add(std::string(strategy.name) + ".sim_cycles_per_sec_fast_on",
                              mcycles_on * 1e6, "1/s");
    BenchReport::Global().Add(std::string(strategy.name) + ".fast_path_speedup", speedup, "x");
    BenchReport::Global().Add(std::string(strategy.name) + ".fast_path_hit_rate",
                              on.fast_hit_rate, "");
  }
  std::printf("%s\n", table.ToString().c_str());
  const double fast_speedup = fast_speedup_sum / static_cast<double>(strategies.size());
  std::printf("fast path simulation-invisible (cycles+accesses identical off/on): %s\n",
              cycles_identical ? "HOLDS" : "FAILS");
  std::printf("mean fast-path speedup: %.2fx\n", fast_speedup);

  Headline("Parallel sweep: all strategies, serial vs SweepRunner");
  Mmu::SetFastPathDefault(true);
  const auto serial_start = std::chrono::steady_clock::now();
  for (const Strategy& strategy : strategies) {
    RunOnce(strategy, units);
  }
  const double serial_s = Seconds(std::chrono::steady_clock::now() - serial_start);

  SweepRunner runner;
  const auto par_start = std::chrono::steady_clock::now();
  runner.Map(strategies.size(), [&](size_t i) { return RunOnce(strategies[i], units); });
  const double parallel_s = Seconds(std::chrono::steady_clock::now() - par_start);

  // Combined: the shipped configuration (fast path on, parallel sweep) against the
  // all-slow baseline (fast path off, serial sweep).
  Mmu::SetFastPathDefault(false);
  const auto base_start = std::chrono::steady_clock::now();
  for (const Strategy& strategy : strategies) {
    RunOnce(strategy, units);
  }
  const double baseline_s = Seconds(std::chrono::steady_clock::now() - base_start);
  Mmu::SetFastPathDefault(std::nullopt);

  const double parallel_speedup = serial_s / parallel_s;
  const double combined_speedup = baseline_s / parallel_s;
  std::printf("  sweep threads: %u (host cores: %u)\n", runner.threads(),
              std::thread::hardware_concurrency());
  std::printf("  serial %.2fs, parallel %.2fs -> %.2fx; combined vs fast-off serial %.2fx\n",
              serial_s, parallel_s, parallel_speedup, combined_speedup);
  BenchReport::Global().Add("sweep_threads", runner.threads(), "");
  BenchReport::Global().Add("parallel_speedup", parallel_speedup, "x");
  BenchReport::Global().Add("fast_path_mean_speedup", fast_speedup, "x");
  BenchReport::Global().Add("combined_speedup_vs_serial_fast_off", combined_speedup, "x");

  return cycles_identical ? 0 : 1;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
