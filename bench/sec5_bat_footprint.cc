// §5.1 — "Reducing the OS TLB footprint" with BAT mapping of kernel text/data.
//
// Paper measurements to reproduce in shape, on the kernel-compile workload:
//   * 10% fewer TLB misses (219M -> 197M at full scale),
//   * 20% fewer hash-table misses (1M -> 813K),
//   * kernel share of TLB slots drops from ~33% to near zero (high-water 4 entries),
//   * kernel compile wall-clock down 20% (10 min -> 8 min),
// and the §5.1 coda: once reloads are fast (§6.1), most of the BAT gain evaporates.
//
// Scale note: the paper fixed the RAM : HTAB-entries : TLB-entries ratio across machines
// (§4). Our compile is roughly 1/8 of the real one's memory footprint, so the primary runs
// use an HTAB scaled by the same factor (256 PTEGs = 2048 entries) to preserve the paper's
// occupancy ratios; a full-size HTAB run is reported alongside for reference.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/stats.h"
#include "src/workloads/kernel_compile.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

struct RunResult {
  KernelCompileResult compile;
};

RunResult RunOnce(const OptimizationConfig& config, uint32_t htab_ptegs) {
  MachineConfig machine = MachineConfig::Ppc604(133);
  machine.htab_ptegs = htab_ptegs;
  System system(machine, config);
  RunResult r;
  r.compile = RunKernelCompile(system, KernelCompileConfig{});
  return r;
}

void Compare(const char* title, uint32_t htab_ptegs, bool primary) {
  Headline(title);
  const RunResult no_bat = RunOnce(OptimizationConfig::Baseline(), htab_ptegs);
  const RunResult bat = RunOnce(OptimizationConfig::OnlyBatMapping(), htab_ptegs);

  const double tlb_no = static_cast<double>(no_bat.compile.counters.itlb_misses +
                                            no_bat.compile.counters.dtlb_misses);
  const double tlb_bat = static_cast<double>(bat.compile.counters.itlb_misses +
                                             bat.compile.counters.dtlb_misses);
  const double htabmiss_no = static_cast<double>(no_bat.compile.counters.htab_misses);
  const double htabmiss_bat = static_cast<double>(bat.compile.counters.htab_misses);

  TextTable table({"metric", "no BAT", "BAT", "change"});
  auto pct = [](double a, double b) { return TextTable::Num((b - a) / a * 100.0, 1) + "%"; };
  table.AddRow({"TLB misses", TextTable::Count(static_cast<uint64_t>(tlb_no)),
                TextTable::Count(static_cast<uint64_t>(tlb_bat)), pct(tlb_no, tlb_bat)});
  table.AddRow({"hash table misses", TextTable::Count(no_bat.compile.counters.htab_misses),
                TextTable::Count(bat.compile.counters.htab_misses),
                pct(htabmiss_no, htabmiss_bat)});
  table.AddRow({"htab evicts", TextTable::Count(no_bat.compile.counters.htab_evicts),
                TextTable::Count(bat.compile.counters.htab_evicts), ""});
  table.AddRow({"compile time (sim s)", TextTable::Num(no_bat.compile.seconds, 3),
                TextTable::Num(bat.compile.seconds, 3),
                pct(no_bat.compile.seconds, bat.compile.seconds)});
  table.AddRow({"kernel TLB share (mid-run avg)",
                TextTable::Pct(no_bat.compile.avg_kernel_tlb_share),
                TextTable::Pct(bat.compile.avg_kernel_tlb_share), ""});
  table.AddRow({"kernel TLB high-water",
                TextTable::Count(no_bat.compile.counters.kernel_tlb_highwater),
                TextTable::Count(bat.compile.counters.kernel_tlb_highwater), ""});
  std::printf("%s\n", table.ToString().c_str());

  if (primary) {
    Headline("Paper vs measured (scaled HTAB)");
    PaperVsMeasured("TLB miss reduction", 10.0, (tlb_no - tlb_bat) / tlb_no * 100.0, "%");
    PaperVsMeasured("htab miss reduction", 20.0,
                    (htabmiss_no - htabmiss_bat) / htabmiss_no * 100.0, "%");
    PaperVsMeasured("compile time reduction", 20.0,
                    (no_bat.compile.seconds - bat.compile.seconds) / no_bat.compile.seconds *
                        100.0,
                    "%");
    PaperVsMeasured("kernel TLB share (no BAT)", 33.0,
                    no_bat.compile.avg_kernel_tlb_share * 100.0, "%");
    PaperVsMeasured("kernel TLB high-water (BAT)", 4.0,
                    static_cast<double>(bat.compile.counters.kernel_tlb_highwater), "slots");
    std::printf("\nClaims:\n");
    std::printf("  BAT mapping reduces TLB misses:        %s\n",
                tlb_bat < tlb_no ? "HOLDS" : "FAILS");
    std::printf("  BAT mapping reduces hash-table misses: %s\n",
                htabmiss_bat < htabmiss_no ? "HOLDS" : "FAILS");
    std::printf("  kernel TLB slots drop to near zero:    %s (high-water %llu)\n",
                bat.compile.counters.kernel_tlb_highwater <= 4 ? "HOLDS" : "FAILS",
                static_cast<unsigned long long>(bat.compile.counters.kernel_tlb_highwater));
  }
}

int Main() {
  Compare("Section 5.1 (primary, scaled HTAB: 256 PTEGs preserving the paper's occupancy "
          "ratio)",
          256, /*primary=*/true);
  Compare("Section 5.1 (reference, full-size HTAB: 2048 PTEGs)", 2048, /*primary=*/false);

  // The evaporation effect: the same +/- BAT comparison on top of fast handlers.
  Headline("Section 5.1 coda: BAT gain with fast reload handlers (the gain evaporates)");
  OptimizationConfig fast = OptimizationConfig::OnlyFastHandlers();
  OptimizationConfig fast_bat = fast;
  fast_bat.kernel_bat_mapping = true;
  const RunResult slow_no = RunOnce(OptimizationConfig::Baseline(), 256);
  const RunResult slow_yes = RunOnce(OptimizationConfig::OnlyBatMapping(), 256);
  const RunResult fast_no = RunOnce(fast, 256);
  const RunResult fast_yes = RunOnce(fast_bat, 256);
  const double slow_gain = (slow_no.compile.seconds - slow_yes.compile.seconds) /
                           slow_no.compile.seconds * 100.0;
  const double fast_gain = (fast_no.compile.seconds - fast_yes.compile.seconds) /
                           fast_no.compile.seconds * 100.0;
  std::printf("  BAT wall-clock gain with slow handlers: %5.2f%%\n", slow_gain);
  std::printf("  BAT wall-clock gain with fast handlers: %5.2f%%\n", fast_gain);
  std::printf("  Claim (gain shrinks once reloads are cheap): %s\n",
              fast_gain < slow_gain ? "HOLDS" : "FAILS");
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
