// §5.2 — "Increasing the efficiency of hashed page tables": VSID scatter tuning.
//
// The paper tuned the VSID-generation constant against a hash-miss histogram, taking HTAB
// utilization from 37% (naive PID-derived VSIDs) to 57% (scatter) and 75% (scatter + kernel
// PTEs removed via BATs). The mechanism: "the logical address spaces of processes tend to be
// similar so the hash functions rely on the VSIDs to provide variation". With dense VSIDs
// the hash depends almost entirely on the page index, so every process's identical layout
// lands on the same PTEGs — few rows, heavily loaded. A non-power-of-two multiplier spreads
// each process across its own region of the table.
//
// At reproduction scale the honest observables are therefore distribution metrics:
//   * PTEG coverage   — fraction of PTEGs holding at least one entry (the paper's
//                       "utilization" is this, measured when the table is load-saturated)
//   * concentration   — mean entries per used PTEG, and the count of hot PTEGs (>= 5)
//   * overflow damage — evicts when the same population is forced through a scaled table
// plus the eviction sweep on a proportionally scaled HTAB where overflow actually bites.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/stats.h"
#include "src/kernel/layout.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

struct SweepResult {
  double utilization = 0;
  double coverage = 0;          // fraction of PTEGs with >= 1 valid entry
  double mean_used_occupancy = 0;  // valid entries per used PTEG
  uint32_t hot_ptegs = 0;       // PTEGs holding >= 5 entries
  uint64_t evicts = 0;
  double hit_rate = 0;
};

// Spawns identical processes and touches the same layout in each (text, heap, stack),
// filling the HTAB, then takes distribution statistics.
SweepResult RunSweep(uint32_t scatter, bool kernel_in_htab, uint32_t htab_ptegs,
                     uint32_t processes) {
  OptimizationConfig config = OptimizationConfig::Baseline();
  config.vsid_scatter = scatter;
  config.kernel_bat_mapping = !kernel_in_htab;
  config.optimized_handlers = true;  // keep runtime down; irrelevant to occupancy
  MachineConfig machine = MachineConfig::Ppc604(185);
  machine.htab_ptegs = htab_ptegs;
  System system(machine, config);
  Kernel& kernel = system.kernel();

  constexpr uint32_t kDataPages = 24;
  std::vector<TaskId> tasks;
  const HwCounters before = system.counters();
  for (uint32_t p = 0; p < processes; ++p) {
    const TaskId id = kernel.CreateTask("p");
    kernel.Exec(id, ExecImage{.text_pages = 8, .data_pages = 64, .stack_pages = 4});
    kernel.SwitchTo(id);
    // Identical layout in every process: code, heap, stack.
    for (uint32_t i = 0; i < 8; ++i) {
      kernel.UserTouch(EffAddr(kUserTextBase + i * kPageSize), AccessKind::kInstructionFetch);
    }
    for (uint32_t i = 0; i < kDataPages; ++i) {
      kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
    }
    for (uint32_t i = 0; i < 4; ++i) {
      kernel.UserTouch(EffAddr(kUserStackTop - (i + 1) * kPageSize), AccessKind::kStore);
    }
    tasks.push_back(id);
  }
  // A second pass refreshes translations displaced by replacement.
  for (const TaskId id : tasks) {
    kernel.SwitchTo(id);
    for (uint32_t i = 0; i < kDataPages; ++i) {
      kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kLoad);
    }
  }

  const HwCounters delta = system.counters().Diff(before);
  const auto histogram = system.mmu().htab().OccupancyHistogram();
  SweepResult result;
  uint32_t used = 0;
  uint32_t entries = 0;
  for (uint32_t occupancy = 1; occupancy <= kPtesPerPteg; ++occupancy) {
    used += histogram[occupancy];
    entries += histogram[occupancy] * occupancy;
    if (occupancy >= 5) {
      result.hot_ptegs += histogram[occupancy];
    }
  }
  result.utilization = system.mmu().htab().Utilization();
  result.coverage = static_cast<double>(used) / htab_ptegs;
  result.mean_used_occupancy = used == 0 ? 0 : static_cast<double>(entries) / used;
  result.evicts = delta.htab_evicts;
  result.hit_rate = delta.HtabHitRate();
  for (const TaskId id : tasks) {
    kernel.Exit(id);
  }
  return result;
}

int Main() {
  Headline("Section 5.2: VSID scatter tuning — distribution over the full-size HTAB");
  std::printf("30 identical processes, 36 pages each, 2048 PTEGs. Dense (PID-like) VSIDs\n"
              "let the page index dominate the hash: same rows in every process.\n\n");

  struct Case {
    uint32_t scatter;
    bool kernel_in_htab;
    const char* label;
  };
  const std::vector<Case> cases = {
      {16, true, "naive (PID << 4)"},    {48, true, "x48"},
      {128, true, "x128 (power of two)"}, {111, true, "x111"},
      {897, true, "x897 (tuned)"},       {897, false, "x897 + kernel via BAT"},
  };

  TextTable table({"scatter", "coverage", "mean/used PTEG", "hot PTEGs (>=5)", "evicts",
                   "htab hit rate"});
  SweepResult naive{};
  SweepResult tuned{};
  SweepResult pow2{};
  for (const Case& c : cases) {
    const SweepResult r = RunSweep(c.scatter, c.kernel_in_htab, 2048, 30);
    if (c.scatter == 16) {
      naive = r;
    }
    if (c.scatter == 128) {
      pow2 = r;
    }
    if (c.scatter == 897 && c.kernel_in_htab) {
      tuned = r;
    }
    table.AddRow({c.label, TextTable::Pct(r.coverage),
                  TextTable::Num(r.mean_used_occupancy, 2), TextTable::Count(r.hot_ptegs),
                  TextTable::Count(r.evicts), TextTable::Pct(r.hit_rate)});
    const std::string prefix = std::string("scatter_") + std::to_string(c.scatter) +
                               (c.kernel_in_htab ? "" : "_bat");
    BenchReport::Global().Add(prefix + ".coverage", r.coverage * 100.0, "%");
    BenchReport::Global().Add(prefix + ".mean_used_occupancy", r.mean_used_occupancy);
    BenchReport::Global().Add(prefix + ".hot_ptegs", static_cast<double>(r.hot_ptegs));
    BenchReport::Global().Add(prefix + ".htab_hit_rate", r.hit_rate * 100.0, "%");
  }
  std::printf("%s\n", table.ToString().c_str());

  // The paper's tuning instrument: "making Linux keep a hash table miss histogram and
  // adjusting the constant until hot-spots disappeared". Print it for naive vs tuned.
  Headline("The tuning histogram (PTEGs by occupancy, full-size table)");
  auto histogram_for = [&](uint32_t scatter) {
    OptimizationConfig config = OptimizationConfig::Baseline();
    config.vsid_scatter = scatter;
    config.optimized_handlers = true;
    System system(MachineConfig::Ppc604(185), config);
    Kernel& kernel = system.kernel();
    std::vector<TaskId> tasks;
    for (uint32_t p = 0; p < 30; ++p) {
      const TaskId id = kernel.CreateTask("p");
      kernel.Exec(id, ExecImage{.text_pages = 8, .data_pages = 64, .stack_pages = 4});
      kernel.SwitchTo(id);
      for (uint32_t i = 0; i < 24; ++i) {
        kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
      }
      for (uint32_t i = 0; i < 8; ++i) {
        kernel.UserTouch(EffAddr(kUserTextBase + i * kPageSize),
                         AccessKind::kInstructionFetch);
      }
      tasks.push_back(id);
    }
    const auto histogram = system.mmu().htab().OccupancyHistogram();
    for (const TaskId id : tasks) {
      kernel.Exit(id);
    }
    return histogram;
  };
  const auto naive_hist = histogram_for(kNaiveVsidScatter);
  const auto tuned_hist = histogram_for(kDefaultVsidScatter);
  std::printf("  occupancy:      0      1      2      3      4      5+\n");
  auto print_hist = [](const char* name, const std::array<uint32_t, kPtesPerPteg + 1>& h) {
    uint32_t five_plus = 0;
    for (uint32_t occ = 5; occ <= kPtesPerPteg; ++occ) {
      five_plus += h[occ];
    }
    std::printf("  %-10s %6u %6u %6u %6u %6u %6u\n", name, h[0], h[1], h[2], h[3], h[4],
                five_plus);
  };
  print_hist("naive", naive_hist);
  print_hist("tuned", tuned_hist);

  Headline("Paper vs measured");
  std::printf("  paper utilization 37%% -> 57%% is a 1.54x spread improvement; our coverage\n"
              "  ratio is the same quantity at reproduction scale:\n");
  PaperVsMeasured("spread improvement (tuned/naive)", 57.0 / 37.0,
                  tuned.coverage / naive.coverage, "x");
  std::printf("\nClaims:\n");
  std::printf("  tuned scatter covers more PTEGs:         %s (%.0f%% vs %.0f%%)\n",
              tuned.coverage > naive.coverage ? "HOLDS" : "FAILS", tuned.coverage * 100,
              naive.coverage * 100);
  std::printf("  naive concentrates (mean/used higher):   %s (%.2f vs %.2f)\n",
              naive.mean_used_occupancy > tuned.mean_used_occupancy ? "HOLDS" : "FAILS",
              naive.mean_used_occupancy, tuned.mean_used_occupancy);
  std::printf("  power-of-two scatter is catastrophic:    %s\n",
              pow2.coverage < naive.coverage && pow2.mean_used_occupancy >
                  naive.mean_used_occupancy ? "HOLDS" : "FAILS");
  std::printf("  (eviction-level damage needs full-scale occupancy; at 1/8 scale the\n"
              "   distribution metrics above are the faithful observables)\n");
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
