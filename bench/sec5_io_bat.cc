// §5.1 (I/O half) — BAT mapping for I/O space and the framebuffer.
//
// The paper reports two findings:
//   1. "Using the BAT registers to map the I/O space did not improve these measures
//      significantly. The applications we examined rarely accessed a large number of I/O
//      addresses in a short time."
//   2. But "having the kernel dedicate a BAT mapping to the frame buffer itself so programs
//      such as X do not compete constantly with other applications or the kernel for TLB
//      space" should pay off for display-heavy loads.
//
// Both regimes run here: a light-I/O mix (finding 1: no significant change) and an X-style
// drawing-heavy mix (finding 2: the BAT removes hundreds of TLB misses per frame).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/report.h"
#include "src/workloads/xserver.h"

namespace ppcmm {
namespace {

XServerResult RunOnce(bool framebuffer_bat, uint32_t draw_percent, uint32_t pages_per_draw) {
  OptimizationConfig config = OptimizationConfig::AllOptimizations();
  config.framebuffer_bat = framebuffer_bat;
  System system(MachineConfig::Ppc604(133), config);
  XServerConfig xc;
  xc.draw_percent = draw_percent;
  xc.pages_per_draw = pages_per_draw;
  return RunXServerWorkload(system, xc);
}

void Compare(const char* title, uint32_t draw_percent, uint32_t pages_per_draw,
             double* out_gain) {
  Headline(title);
  const XServerResult pte = RunOnce(false, draw_percent, pages_per_draw);
  const XServerResult bat = RunOnce(true, draw_percent, pages_per_draw);

  TextTable table({"metric", "PTE-mapped FB", "BAT-mapped FB"});
  table.AddRow({"wall clock", TextTable::Us(pte.seconds * 1e6),
                TextTable::Us(bat.seconds * 1e6)});
  table.AddRow({"dTLB misses", TextTable::Count(pte.counters.dtlb_misses),
                TextTable::Count(bat.counters.dtlb_misses)});
  table.AddRow({"page faults", TextTable::Count(pte.counters.page_faults),
                TextTable::Count(bat.counters.page_faults)});
  table.AddRow({"BAT translations", TextTable::Count(pte.counters.bat_translations),
                TextTable::Count(bat.counters.bat_translations)});
  table.AddRow({"draws", TextTable::Count(pte.draws), TextTable::Count(bat.draws)});
  std::printf("%s\n", table.ToString().c_str());
  *out_gain = (pte.seconds - bat.seconds) / pte.seconds * 100.0;
  std::printf("wall-clock gain from the framebuffer BAT: %.1f%%\n", *out_gain);
}

int Main() {
  double light_gain = 0;
  double heavy_gain = 0;
  Compare("Light I/O mix (5% of requests draw, small blits) — the paper's finding 1", 5, 4,
          &light_gain);
  Compare("X-style heavy drawing (every request sweeps 48 FB pages) — finding 2", 100, 48,
          &heavy_gain);

  Headline("Claims");
  std::printf("  light I/O: BAT makes no significant difference: %s (%.1f%%)\n",
              light_gain < 5.0 ? "HOLDS" : "FAILS", light_gain);
  std::printf("  heavy drawing: BAT is a clear win:              %s (%.1f%%)\n",
              heavy_gain > light_gain && heavy_gain > 3.0 ? "HOLDS" : "FAILS", heavy_gain);
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
