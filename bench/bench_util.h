// Shared helpers for the reproduction benches: config builders matching the paper's machine
// columns and a paper-vs-measured row printer feeding EXPERIMENTS.md.

#ifndef PPCMM_BENCH_BENCH_UTIL_H_
#define PPCMM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/core/system.h"
#include "src/obs/bench_report.h"
#include "src/workloads/report.h"

namespace ppcmm {

// Prints one paper-vs-measured line: the absolute numbers will differ (our substrate is a
// simulator, not the authors' PowerMacs), the ratios and orderings are what must hold.
// The same row lands in BenchReport::Global(), so a run with PPCMM_BENCH_OUT set also
// yields a machine-readable BENCH_<name>.json.
inline void PaperVsMeasured(const char* metric, double paper, double measured,
                            const char* unit) {
  std::printf("  %-34s paper %10.1f %-6s  measured %10.1f %-6s  ratio %.2fx\n", metric, paper,
              unit, measured, unit, paper > 0 ? measured / paper : 0.0);
  BenchReport::Global().AddComparison(metric, paper, measured, unit);
}

inline void Headline(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  BenchReport::Global().BeginSection(title);
}

}  // namespace ppcmm

#endif  // PPCMM_BENCH_BENCH_UTIL_H_
