// §8 — "Cache misuse on page-tables".
//
// The paper's analysis: one HTAB refill can take 16 (search+miss) + 2 (tree walk) + 16
// (find a slot) = 34 memory accesses and create up to 18 new data-cache lines that will not
// be referenced again soon — pure pollution. The paper did not get to quantify the runtime
// effect ("we have not yet performed experiments..."); this bench both verifies the access
// arithmetic and runs the experiment the authors proposed: cached vs cache-inhibited page
// tables under TLB-miss-heavy load.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/kernel/layout.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

// Verifies the 34-accesses arithmetic on the simulated structures directly.
void VerifyAccessArithmetic() {
  Headline("Section 8 arithmetic: memory accesses for one worst-case HTAB refill");
  System system(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = system.kernel();
  const TaskId t = kernel.CreateTask("t");
  kernel.Exec(t, ExecImage{.text_pages = 4, .data_pages = 64, .stack_pages = 2});
  kernel.SwitchTo(t);
  // Fault the page in (so the tree has it), then evict its translations from TLB only:
  // the next touch is a TLB miss whose refill walks htab (miss) + tree + insert.
  const EffAddr ea(kUserDataBase);
  kernel.UserTouch(ea, AccessKind::kStore);
  system.mmu().TlbInvalidateAll();
  // Also clear the HTAB so the search misses and the walk + insert happen.
  system.mmu().htab().Clear();

  const HwCounters before = system.counters();
  const uint64_t dcache_accesses_before = system.machine().dcache().stats().accesses;
  kernel.UserTouch(ea, AccessKind::kLoad);
  const HwCounters delta = system.counters().Diff(before);
  const uint64_t pt_accesses =
      system.machine().dcache().stats().accesses - dcache_accesses_before - 1;  // - payload
  std::printf("  one refill: %llu data accesses for page-table traffic (paper: up to 34)\n",
              static_cast<unsigned long long>(pt_accesses));
  std::printf("  htab searches=%llu misses=%llu reloads=%llu tree walks=%llu\n",
              static_cast<unsigned long long>(delta.htab_searches),
              static_cast<unsigned long long>(delta.htab_misses),
              static_cast<unsigned long long>(delta.htab_reloads),
              static_cast<unsigned long long>(delta.pte_tree_walks));
  kernel.Exit(t);
}

struct PollutionResult {
  uint64_t dcache_misses = 0;
  uint64_t cycles = 0;
  uint32_t dcache_lines_for_user = 0;
};

// A TLB-miss-heavy loop: a working set larger than the TLB's reach but within the cache,
// so the only variable is where the page-table traffic lands.
PollutionResult RunPollution(bool uncached_page_tables) {
  OptimizationConfig config = OptimizationConfig::Baseline();
  config.optimized_handlers = true;
  config.uncached_page_tables = uncached_page_tables;
  System system(MachineConfig::Ppc604(185), config);
  Kernel& kernel = system.kernel();
  const TaskId t = kernel.CreateTask("t");
  kernel.Exec(t, ExecImage{.text_pages = 4, .data_pages = 512, .stack_pages = 2});
  kernel.SwitchTo(t);

  // 400 pages stride-walked: DTLB reach is 128 pages, so misses are constant; each page is
  // touched at one line, so the user working set is 400 lines out of 512.
  auto pass = [&] {
    for (uint32_t p = 0; p < 400; ++p) {
      kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kLoad);
    }
  };
  pass();  // fault everything in
  const HwCounters before = system.counters();
  const uint64_t misses_before = system.machine().dcache().stats().misses;
  for (int i = 0; i < 10; ++i) {
    pass();
  }
  PollutionResult result;
  result.dcache_misses = system.machine().dcache().stats().misses - misses_before;
  result.cycles = system.counters().Diff(before).cycles;
  kernel.Exit(t);
  return result;
}

int Main() {
  VerifyAccessArithmetic();

  Headline("Section 8 experiment: cached vs cache-inhibited page tables (604/185)");
  const PollutionResult cached = RunPollution(false);
  const PollutionResult uncached = RunPollution(true);
  TextTable table({"page tables", "dcache misses", "cycles"});
  table.AddRow({"cached", TextTable::Count(cached.dcache_misses),
                TextTable::Count(cached.cycles)});
  table.AddRow({"cache-inhibited", TextTable::Count(uncached.dcache_misses),
                TextTable::Count(uncached.cycles)});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Claims:\n");
  std::printf("  uncached page tables cause fewer data-cache misses: %s (%llu vs %llu)\n",
              uncached.dcache_misses < cached.dcache_misses ? "HOLDS" : "FAILS",
              static_cast<unsigned long long>(uncached.dcache_misses),
              static_cast<unsigned long long>(cached.dcache_misses));
  std::printf("  (the paper predicted \"a dramatic impact\" but had not yet quantified it;\n"
              "   whether cycles also improve depends on the single-beat cost of uncached\n"
              "   PTE reads vs the pollution saved — both numbers above are the experiment)\n");
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
