// Multiuser scaling — the load the paper says its optimizations target.
//
// §5.1: "this optimizes for the situation of several processes running in separate memory
// contexts (not threads) which is the typical load on a multiuser system", and §5.1's
// Talluri caveat: workloads that really stress TLB capacity "would possibly show an even
// greater performance gain". This bench scales the user count and measures the aggregate
// throughput gap between the unoptimized and optimized kernels — the gap should widen as
// contexts multiply.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/sweep_runner.h"
#include "src/workloads/multiuser.h"
#include "src/workloads/report.h"

namespace ppcmm {
namespace {

int Main() {
  Headline("Multiuser scaling: aggregate throughput, baseline vs optimized (604/133)");

  // One independent simulation per (user count, kernel) cell; sweep all eight across host
  // threads (or forked shards under PPCMM_SWEEP_SHARDS) and render the table from the
  // index-ordered results.
  const std::vector<uint32_t> user_counts = {1u, 2u, 4u, 8u};
  SweepRunner runner;
  const auto run_cell = [&](size_t i) {
    MultiuserConfig config;
    config.users = user_counts[i / 2];
    System system(MachineConfig::Ppc604(133), i % 2 == 0
                                                  ? OptimizationConfig::Baseline()
                                                  : OptimizationConfig::AllOptimizations());
    return RunMultiuserWorkload(system, config);
  };
  const unsigned shards = SweepRunner::DefaultShards();
  const std::vector<MultiuserResult> results =
      shards > 1 ? runner.MapSharded(user_counts.size() * 2, shards, run_cell)
                 : runner.Map(user_counts.size() * 2, run_cell);

  TextTable table({"users", "baseline ops/s", "optimized ops/s", "speedup",
                   "baseline TLB miss/op", "optimized TLB miss/op"});
  double speedup_small = 0;
  double speedup_large = 0;
  for (size_t row = 0; row < user_counts.size(); ++row) {
    const uint32_t users = user_counts[row];
    const MultiuserResult& rb = results[row * 2];
    const MultiuserResult& ro = results[row * 2 + 1];
    const double speedup = ro.ops_per_second / rb.ops_per_second;
    if (users == 1) {
      speedup_small = speedup;
    }
    if (users == 8) {
      speedup_large = speedup;
    }
    auto misses_per_op = [](const MultiuserResult& r) {
      return static_cast<double>(r.counters.itlb_misses + r.counters.dtlb_misses) /
             static_cast<double>(r.operations);
    };
    table.AddRow({std::to_string(users), TextTable::Num(rb.ops_per_second, 0),
                  TextTable::Num(ro.ops_per_second, 0), TextTable::Num(speedup, 2) + "x",
                  TextTable::Num(misses_per_op(rb), 0), TextTable::Num(misses_per_op(ro), 0)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Claims:\n");
  std::printf("  optimizations speed the multiuser load:        %s (%.2fx at 8 users)\n",
              speedup_large > 1.05 ? "HOLDS" : "FAILS", speedup_large);
  std::printf("  the gain does not shrink as contexts multiply: %s (%.2fx -> %.2fx)\n",
              speedup_large >= speedup_small * 0.9 ? "HOLDS" : "FAILS", speedup_small,
              speedup_large);
  return 0;
}

}  // namespace
}  // namespace ppcmm

int main() { return ppcmm::Main(); }
