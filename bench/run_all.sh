#!/bin/sh
# Runs every reproduction bench and collects machine-readable BENCH_<name>.json reports
# into bench-out/ (gitignored). Human-readable tables still go to stdout.
#
#   bench/run_all.sh [--quick] [--lint] [--shards N] [build-dir]     default build dir: build
#
# --quick: smoke mode — shrunken workloads (PPCMM_QUICK=1), only the benches that finish in
# seconds, plus a ThreadSanitizer pass over the sweep-runner tests when build-tsan exists
# and a 30-second seeded differential-fuzz pass under ASan when build-fuzz (or build-asan)
# exists. A fuzz divergence fails loudly and leaves the minimized repro in bench-out/.
# Quick mode always runs the sweeps sharded (2 shards unless --shards says otherwise) so
# the fork/merge path is exercised by every smoke run.
#
# --shards N: run parameter sweeps across N forked shards (exports PPCMM_SWEEP_SHARDS).
# N may be `auto` to use the machine's core count. Results are bit-identical to a serial
# run — shards only change wall-clock time and the sweep_shards metric, which
# tools/bench-trend treats as an environment fact.
#
# --lint: before any benches, run mmu-lint over the tree (using the build dir's binary)
# and the format check. Bad numbers from a tree that violates its own architectural
# contracts are not worth collecting.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

quick=0
lint=0
shards=""
while :; do
  case "${1:-}" in
    --quick) quick=1; shift ;;
    --lint) lint=1; shift ;;
    --shards) shards=${2:?--shards needs a count or 'auto'}; shift 2 ;;
    --shards=*) shards=${1#--shards=}; shift ;;
    *) break ;;
  esac
done
build_dir=${1:-"$repo_root/build"}
out_dir="$repo_root/bench-out"

if [ "$quick" = 1 ] && [ -z "$shards" ]; then
  shards=2
fi
if [ -n "$shards" ]; then
  if [ "$shards" = auto ] || [ "$shards" = 0 ]; then
    shards=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 2)
  fi
  case "$shards" in
    *[!0-9]*|'') echo "error: --shards wants a positive integer or 'auto', got '$shards'" >&2
                 exit 1 ;;
  esac
  export PPCMM_SWEEP_SHARDS="$shards"
  echo "sweeps sharded across $shards processes (PPCMM_SWEEP_SHARDS=$shards)"
fi

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found; configure and build first:" >&2
  echo "  cmake --preset default && cmake --build --preset default" >&2
  exit 1
fi

mkdir -p "$out_dir"
export PPCMM_BENCH_OUT="$out_dir"
# Stamp every report with the commit it came from (BenchReport meta.git_sha), so
# tools/bench-trend can tie trajectory entries back to history.
if [ -z "${PPCMM_GIT_SHA:-}" ]; then
  PPCMM_GIT_SHA=$(git -C "$repo_root" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
  export PPCMM_GIT_SHA
fi

if [ "$lint" = 1 ]; then
  lint_bin="$build_dir/tools/mmu-lint/mmu-lint"
  if [ ! -x "$lint_bin" ]; then
    echo "error: $lint_bin not built; build the mmu-lint target first" >&2
    exit 1
  fi
  echo "==> mmu-lint"
  "$lint_bin" --root "$repo_root"
  "$repo_root/scripts/format_check.sh"
fi

if [ "$quick" = 1 ]; then
  export PPCMM_QUICK=1
  benches="table1_direct_reload smp_shootdown host_throughput"
else
  benches="table1_direct_reload table2_range_flush table3_os_comparison \
    sec5_bat_footprint sec5_hash_utilization sec5_io_bat sec6_fast_reload \
    sec7_idle_reclaim sec8_pagetable_cache sec9_idle_page_clear \
    ablation_interactions multiuser_scaling smp_shootdown host_throughput"
fi

failed=0
for bench in $benches; do
  binary="$build_dir/bench/$bench"
  if [ ! -x "$binary" ]; then
    echo "skip: $bench (not built)" >&2
    continue
  fi
  echo "==> $bench"
  if ! "$binary" > "$out_dir/$bench.txt" 2>&1; then
    echo "FAILED: $bench (log: $out_dir/$bench.txt)" >&2
    failed=1
  fi
done

if [ "$quick" = 1 ]; then
  tsan_test="$repo_root/build-tsan/tests/sweep_runner_test"
  if [ -x "$tsan_test" ]; then
    echo "==> sweep_runner_test (tsan)"
    if ! "$tsan_test" > "$out_dir/sweep_runner_tsan.txt" 2>&1; then
      echo "FAILED: sweep_runner_test under tsan (log: $out_dir/sweep_runner_tsan.txt)" >&2
      failed=1
    fi
  else
    echo "note: build-tsan/tests/sweep_runner_test not built; for the TSan pass run:" >&2
    echo "  cmake --preset tsan && cmake --build --preset tsan --target sweep_runner_test" >&2
  fi

  # ncpus=4 TSan pass: the pooled SMP shootdown-storm sweep runs 4-CPU Systems on a thread
  # pool; TSan proves the per-System confinement holds for the multi-CPU machine state
  # (per-CPU TLBs, local clocks, IPI bookkeeping) exactly as it does for uniprocessors.
  smp_tsan="$repo_root/build-tsan/tests/machine_sweep_test"
  if [ -x "$smp_tsan" ]; then
    echo "==> machine_sweep_test SMP storm (tsan, ncpus=4)"
    if ! "$smp_tsan" --gtest_filter='*SmpShootdownStorm*' > "$out_dir/smp_storm_tsan.txt" 2>&1; then
      echo "FAILED: SMP shootdown storm under tsan (log: $out_dir/smp_storm_tsan.txt)" >&2
      failed=1
    fi
  else
    echo "note: build-tsan/tests/machine_sweep_test not built; for the ncpus=4 TSan pass run:" >&2
    echo "  cmake --preset tsan && cmake --build --preset tsan --target machine_sweep_test" >&2
  fi

  # Differential fuzz pass: fixed base seed, wall-clock bounded, every preset x strategy x
  # fast-path combo. Prefers the dedicated fuzz preset build, falls back to build-asan.
  fuzz_bin=""
  for candidate in "$repo_root/build-fuzz/examples/fuzz" "$repo_root/build-asan/examples/fuzz"; do
    if [ -x "$candidate" ]; then
      fuzz_bin="$candidate"
      break
    fi
  done
  if [ -n "$fuzz_bin" ]; then
    echo "==> differential fuzz (asan, 30s)"
    if ! "$fuzz_bin" --max-seconds=30 --seed=20260807 --ops=4000 --minimize \
        --out="$out_dir/fuzz_minimized.replay" > "$out_dir/fuzz_quick.txt" 2>&1; then
      echo "FAILED: differential fuzz found a divergence" >&2
      echo "  log:    $out_dir/fuzz_quick.txt" >&2
      echo "  replay: $out_dir/fuzz_minimized.replay" >&2
      echo "  rerun:  $fuzz_bin --replay=$out_dir/fuzz_minimized.replay" >&2
      failed=1
    fi
  else
    echo "note: examples/fuzz not built under ASan; for the fuzz pass run:" >&2
    echo "  cmake --preset fuzz && cmake --build --preset fuzz --target fuzz" >&2
  fi
fi

echo
echo "reports in $out_dir:"
ls "$out_dir"
exit $failed
