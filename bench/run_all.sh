#!/bin/sh
# Runs every reproduction bench and collects machine-readable BENCH_<name>.json reports
# into bench-out/ (gitignored). Human-readable tables still go to stdout.
#
#   bench/run_all.sh [build-dir]     default build dir: build
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out_dir="$repo_root/bench-out"

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found; configure and build first:" >&2
  echo "  cmake --preset default && cmake --build --preset default" >&2
  exit 1
fi

mkdir -p "$out_dir"
export PPCMM_BENCH_OUT="$out_dir"

benches="table1_direct_reload table2_range_flush table3_os_comparison \
  sec5_bat_footprint sec5_hash_utilization sec5_io_bat sec6_fast_reload \
  sec7_idle_reclaim sec8_pagetable_cache sec9_idle_page_clear \
  ablation_interactions multiuser_scaling"

failed=0
for bench in $benches; do
  binary="$build_dir/bench/$bench"
  if [ ! -x "$binary" ]; then
    echo "skip: $bench (not built)" >&2
    continue
  fi
  echo "==> $bench"
  if ! "$binary" > "$out_dir/$bench.txt" 2>&1; then
    echo "FAILED: $bench (log: $out_dir/$bench.txt)" >&2
    failed=1
  fi
done

echo
echo "reports in $out_dir:"
ls "$out_dir"
exit $failed
