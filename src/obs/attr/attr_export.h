// Exporters for the cycle-attribution ledger (src/sim/attr.h): folded-stack flamegraph
// text, a per-cause/per-task JSON table, cross-run diffing, the failure flight-recorder
// dump, and BenchReport wiring. The ledger itself lives in the sim layer so hot headers
// stay obs-free; everything that formats or serializes it lives here.

#ifndef PPCMM_SRC_OBS_ATTR_ATTR_EXPORT_H_
#define PPCMM_SRC_OBS_ATTR_ATTR_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/obs/bench_report.h"
#include "src/obs/json.h"
#include "src/sim/attr.h"

namespace ppcmm {

// Folded-stack flamegraph lines, one per (cause path, task) cell with nonzero cycles:
//   task3;dtlb_reload_hw;hash_primary 1234
// Feed straight into flamegraph.pl / speedscope / inferno. Lines are emitted in the
// ledger's deterministic cell order. Base cells fold as "task<id>;instruction".
std::string AttrToFolded(const CycleLedger& ledger);

// The attribution table as JSON:
//   {"schema_version":1, "total_cycles":N,
//    "causes":{"<path>":cycles, ...},           // summed over tasks, path joined with ';'
//    "tasks":{"<task>":cycles, ...},            // summed over causes
//    "stacks":[{"stack":"<path>","task":T,"cycles":N}, ...]}  // the raw cells
JsonValue AttrToJson(const CycleLedger& ledger);

// Cycles per cause path (tasks summed), the unit of cross-run comparison. The second
// overload rebuilds the same map from an AttrToJson document (e.g. a file from another
// run), so attr-diff works both in-process and across saved profiles.
std::map<std::string, uint64_t> AttrCauseTotals(const CycleLedger& ledger);
std::map<std::string, uint64_t> AttrCauseTotalsFromJson(const JsonValue& doc);

// Human-readable per-cause cycle delta between two runs, sorted by |delta| descending.
std::string AttrDiffReport(const std::string& label_a,
                           const std::map<std::string, uint64_t>& a,
                           const std::string& label_b,
                           const std::map<std::string, uint64_t>& b);

// The flight-recorder dump appended to failure reports: `context` (seed, preset, replay
// pointer — whatever the harness knows) followed by the most recent attributed events,
// newest last. Empty ledger -> a one-line "no attributed events" note.
std::string FlightRecorderDump(const CycleLedger& ledger, const std::string& context,
                               size_t max_events = 64);

// Adds the attribution table to a BenchReport section "cycle attribution": one
// "<prefix>.<path>" row per cause (tasks summed) plus "<prefix>.total".
void AddAttrToBenchReport(BenchReport& report, const std::string& prefix,
                          const CycleLedger& ledger);

}  // namespace ppcmm

#endif  // PPCMM_SRC_OBS_ATTR_ATTR_EXPORT_H_
