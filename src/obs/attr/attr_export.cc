#include "src/obs/attr/attr_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

namespace ppcmm {

namespace {

std::string PathString(const std::vector<AttrCause>& path) {
  if (path.empty()) {
    return AttrCauseName(AttrCause::kInstruction);
  }
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) {
      out += ';';
    }
    out += AttrCauseName(path[i]);
  }
  return out;
}

}  // namespace

std::string AttrToFolded(const CycleLedger& ledger) {
  std::string out;
  char line[256];
  for (const CycleLedger::Cell& cell : ledger.Cells()) {
    if (cell.cycles == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "task%u;%s %" PRIu64 "\n", cell.task,
                  PathString(cell.path).c_str(), cell.cycles);
    out += line;
  }
  return out;
}

std::map<std::string, uint64_t> AttrCauseTotals(const CycleLedger& ledger) {
  std::map<std::string, uint64_t> totals;
  for (const CycleLedger::Cell& cell : ledger.Cells()) {
    if (cell.cycles > 0) {
      totals[PathString(cell.path)] += cell.cycles;
    }
  }
  return totals;
}

std::map<std::string, uint64_t> AttrCauseTotalsFromJson(const JsonValue& doc) {
  std::map<std::string, uint64_t> totals;
  const JsonValue* causes = doc.Find("causes");
  if (causes == nullptr || !causes->IsObject()) {
    return totals;
  }
  for (const auto& [path, value] : causes->Members()) {
    if (value.IsNumber()) {
      totals[path] = static_cast<uint64_t>(value.AsNumber());
    }
  }
  return totals;
}

JsonValue AttrToJson(const CycleLedger& ledger) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", 1);
  doc.Set("total_cycles", ledger.TotalAttributed());

  JsonValue causes = JsonValue::Object();
  for (const auto& [path, cycles] : AttrCauseTotals(ledger)) {
    causes.Set(path, cycles);
  }
  doc.Set("causes", std::move(causes));

  std::map<uint32_t, uint64_t> by_task;
  for (const CycleLedger::Cell& cell : ledger.Cells()) {
    if (cell.cycles > 0) {
      by_task[cell.task] += cell.cycles;
    }
  }
  JsonValue tasks = JsonValue::Object();
  for (const auto& [task, cycles] : by_task) {
    tasks.Set(std::to_string(task), cycles);
  }
  doc.Set("tasks", std::move(tasks));

  JsonValue stacks = JsonValue::Array();
  for (const CycleLedger::Cell& cell : ledger.Cells()) {
    if (cell.cycles == 0) {
      continue;
    }
    JsonValue row = JsonValue::Object();
    row.Set("stack", PathString(cell.path));
    row.Set("task", cell.task);
    row.Set("cycles", cell.cycles);
    stacks.Append(std::move(row));
  }
  doc.Set("stacks", std::move(stacks));
  return doc;
}

std::string AttrDiffReport(const std::string& label_a,
                           const std::map<std::string, uint64_t>& a,
                           const std::string& label_b,
                           const std::map<std::string, uint64_t>& b) {
  struct Row {
    std::string path;
    uint64_t a = 0;
    uint64_t b = 0;
  };
  std::map<std::string, Row> merged;
  for (const auto& [path, cycles] : a) {
    merged[path].path = path;
    merged[path].a = cycles;
  }
  for (const auto& [path, cycles] : b) {
    merged[path].path = path;
    merged[path].b = cycles;
  }
  std::vector<Row> rows;
  rows.reserve(merged.size());
  for (auto& [path, row] : merged) {
    rows.push_back(row);
  }
  const auto abs_delta = [](const Row& r) {
    return r.b > r.a ? r.b - r.a : r.a - r.b;
  };
  std::sort(rows.begin(), rows.end(), [&](const Row& x, const Row& y) {
    const uint64_t dx = abs_delta(x), dy = abs_delta(y);
    if (dx != dy) return dx > dy;
    return x.path < y.path;  // deterministic tie-break
  });

  uint64_t total_a = 0, total_b = 0;
  for (const Row& r : rows) {
    total_a += r.a;
    total_b += r.b;
  }

  std::string out;
  char line[320];
  std::snprintf(line, sizeof(line), "%-44s %16s %16s %16s %9s\n", "cause",
                label_a.c_str(), label_b.c_str(), "delta", "delta%");
  out += line;
  const auto emit = [&](const char* name, uint64_t va, uint64_t vb) {
    const int64_t delta = static_cast<int64_t>(vb) - static_cast<int64_t>(va);
    if (va > 0) {
      std::snprintf(line, sizeof(line), "%-44s %16" PRIu64 " %16" PRIu64 " %+16" PRId64
                    " %+8.1f%%\n",
                    name, va, vb, delta,
                    100.0 * static_cast<double>(delta) / static_cast<double>(va));
    } else {
      std::snprintf(line, sizeof(line), "%-44s %16" PRIu64 " %16" PRIu64 " %+16" PRId64
                    " %9s\n",
                    name, va, vb, delta, "new");
    }
    out += line;
  };
  for (const Row& r : rows) {
    emit(r.path.c_str(), r.a, r.b);
  }
  emit("TOTAL", total_a, total_b);
  return out;
}

std::string FlightRecorderDump(const CycleLedger& ledger, const std::string& context,
                               size_t max_events) {
  std::string out = "flight recorder: " + context + "\n";
  const std::vector<AttrEvent> events = ledger.RecentEvents();
  if (events.empty()) {
    out += "  (no attributed events recorded; attribution was off or no scopes closed)\n";
    return out;
  }
  const size_t start = events.size() > max_events ? events.size() - max_events : 0;
  char line[192];
  std::snprintf(line, sizeof(line),
                "  last %zu of %" PRIu64 " attributed events (newest last):\n",
                events.size() - start, ledger.events_recorded());
  out += line;
  for (size_t i = start; i < events.size(); ++i) {
    const AttrEvent& e = events[i];
    std::snprintf(line, sizeof(line),
                  "  @%-12" PRIu64 " cpu=%u task=%-4u depth=%u %-22s %8" PRIu64 " cycles\n",
                  e.end_cycle, e.cpu, e.task, e.depth, AttrCauseName(e.cause), e.cycles);
    out += line;
  }
  return out;
}

void AddAttrToBenchReport(BenchReport& report, const std::string& prefix,
                          const CycleLedger& ledger) {
  report.BeginSection("cycle attribution");
  report.Add(prefix + ".total", static_cast<double>(ledger.TotalAttributed()), "cycles");
  for (const auto& [path, cycles] : AttrCauseTotals(ledger)) {
    report.Add(prefix + "." + path, static_cast<double>(cycles), "cycles");
  }
}

}  // namespace ppcmm
