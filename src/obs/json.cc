#include "src/obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/sim/histogram.h"

namespace ppcmm {

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  members_.emplace_back(key, std::move(value));
  return members_.back().second;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "0";  // JSON has no Inf/NaN; clamp rather than emit an invalid document
  }
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, r.ptr);
}

void JsonValue::SerializeTo(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += JsonNumber(number_);
      return;
    case Type::kString:
      out += JsonQuote(string_);
      return;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : items_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        item.SerializeTo(out);
      }
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        out += JsonQuote(key);
        out.push_back(':');
        value.SerializeTo(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(out);
  return out;
}

namespace {

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Run(std::string* error) {
    std::optional<JsonValue> value = ParseValue();
    if (!value.has_value()) {
      if (error != nullptr) {
        *error = error_;
      }
      return std::nullopt;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return Fail("bad literal");
  }

  std::optional<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        std::optional<std::string> s = ParseString();
        if (!s.has_value()) {
          return std::nullopt;
        }
        return JsonValue(std::move(*s));
      }
      case 't':
        if (!ConsumeLiteral("true")) {
          return std::nullopt;
        }
        return JsonValue(true);
      case 'f':
        if (!ConsumeLiteral("false")) {
          return std::nullopt;
        }
        return JsonValue(false);
      case 'n':
        if (!ConsumeLiteral("null")) {
          return std::nullopt;
        }
        return JsonValue();
      default:
        return ParseNumber();
    }
  }

  std::optional<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const std::from_chars_result r =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (r.ec != std::errc{} || r.ptr != text_.data() + pos_ || pos_ == start) {
      Fail("bad number");
      return std::nullopt;
    }
    return JsonValue(value);
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) {
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
        return std::nullopt;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("short \\u escape");
            return std::nullopt;
          }
          uint32_t code = 0;
          const std::from_chars_result r =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (r.ec != std::errc{} || r.ptr != text_.data() + pos_ + 4) {
            Fail("bad \\u escape");
            return std::nullopt;
          }
          pos_ += 4;
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else {
            // Multi-byte code points pass through as UTF-8 (enough for our own output,
            // which never emits non-ASCII escapes).
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("unknown escape");
          return std::nullopt;
      }
    }
    if (!Consume('"')) {
      return std::nullopt;
    }
    return out;
  }

  std::optional<JsonValue> ParseArray() {
    if (!Consume('[')) {
      return std::nullopt;
    }
    JsonValue array = JsonValue::Array();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      std::optional<JsonValue> item = ParseValue();
      if (!item.has_value()) {
        return std::nullopt;
      }
      array.Append(std::move(*item));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume(']')) {
        return std::nullopt;
      }
      return array;
    }
  }

  std::optional<JsonValue> ParseObject() {
    if (!Consume('{')) {
      return std::nullopt;
    }
    JsonValue object = JsonValue::Object();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      SkipWs();
      std::optional<std::string> key = ParseString();
      if (!key.has_value()) {
        return std::nullopt;
      }
      SkipWs();
      if (!Consume(':')) {
        return std::nullopt;
      }
      std::optional<JsonValue> value = ParseValue();
      if (!value.has_value()) {
        return std::nullopt;
      }
      object.Set(*key, std::move(*value));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume('}')) {
        return std::nullopt;
      }
      return object;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> JsonValue::Parse(std::string_view text, std::string* error) {
  return Parser(text).Run(error);
}

JsonValue HistogramToJson(const LatencyHistogram& h) {
  JsonValue out = JsonValue::Object();
  out.Set("count", h.TotalCount());
  out.Set("sum", h.Sum());
  out.Set("min", h.Min());
  out.Set("max", h.Max());
  out.Set("mean", h.Mean());
  out.Set("p50", h.Percentile(0.50));
  out.Set("p95", h.Percentile(0.95));
  out.Set("p99", h.Percentile(0.99));
  JsonValue buckets = JsonValue::Array();
  for (uint32_t bucket = 0; bucket < LatencyHistogram::kBuckets; ++bucket) {
    if (h.CountInBucket(bucket) == 0) {
      continue;
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("le", LatencyHistogram::BucketUpperEdge(bucket));
    entry.Set("count", h.CountInBucket(bucket));
    buckets.Append(std::move(entry));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

}  // namespace ppcmm
