// MetricsRegistry: one named, snapshot/diff-able view over everything the simulator counts.
//
// Unifies three sources under stable dotted names:
//   hw.*        every HwCounters field (X-macro generated, so never stale)
//   sys.*       derived SystemStats gauges: HTAB utilization, zombie count, evict/reload
//               ratio, TLB kernel share — the numbers the paper reports in prose
//   lat.*       latency-histogram percentiles per probe (lat.page_fault.p99, ...)
//   task.<id>.* per-task attribution: faults, COW breaks, switches
//
// Snapshots subtract (counters) or keep-the-later (gauges), and serialize to JSON and CSV
// with insertion-ordered keys, so two runs' outputs diff cleanly line by line.

#ifndef PPCMM_SRC_OBS_METRICS_H_
#define PPCMM_SRC_OBS_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace ppcmm {

class System;

// One point-in-time metrics capture. Counter metrics are monotonic event counts (diffable);
// gauge metrics are instantaneous values (ratios, percentiles, occupancy).
struct MetricsSnapshot {
  uint64_t cycle = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;

  // nullptr when the metric is absent.
  const uint64_t* FindCounter(const std::string& name) const;
  const double* FindGauge(const std::string& name) const;

  // Interval since `earlier`: counters subtract (a counter absent earlier keeps its full
  // value — e.g. a task born inside the interval); gauges keep this snapshot's value.
  MetricsSnapshot Diff(const MetricsSnapshot& earlier) const;

  // {"cycle":N,"counters":{name:value,...},"gauges":{name:value,...}}
  JsonValue ToJson() const;

  // "metric,value" lines, one per metric, counters first, prefixed by a "cycle,N" row.
  std::string ToCsv() const;
};

// Builds MetricsSnapshots from a live System.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(System& system) : system_(system) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Captures everything: hw.* and task.* counters, sys.* and lat.* gauges. The capture
  // reads simulator state but never advances the simulated clock.
  MetricsSnapshot Snapshot() const;

 private:
  System& system_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_OBS_METRICS_H_
