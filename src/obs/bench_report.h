// BenchReport: the machine-readable twin of the benches' printf output.
//
// Every bench already narrates paper-vs-measured numbers through bench_util.h; those same
// calls now also land here, grouped into sections, so each bench binary can emit a
// BENCH_<name>.json without touching its measurement code. The global report writes itself
// at process exit when PPCMM_BENCH_OUT names a directory — bench/run_all.sh sets it, plain
// interactive runs pay nothing.

#ifndef PPCMM_SRC_OBS_BENCH_REPORT_H_
#define PPCMM_SRC_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"
#include "src/sim/hw_counters.h"

namespace ppcmm {

// One bench run's metrics, grouped into titled sections.
class BenchReport {
 public:
  // Bumped whenever the JSON shape changes; tools/bench-trend keys on it.
  static constexpr int kSchemaVersion = 2;

  // The report (and output file) name; defaults to the executable's basename.
  void SetName(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  // Self-describing run metadata ("machine", "strategy", "preset", ...). Serialized into
  // the "meta" object; later sets of the same key overwrite. git_sha and mode (quick/full)
  // are filled from $PPCMM_GIT_SHA / $PPCMM_QUICK automatically unless set explicitly.
  void SetMeta(const std::string& key, const std::string& value);

  // Starts a new section; subsequent Add* calls land in it. Called by Headline().
  void BeginSection(const std::string& title);

  // One metric row. Rows before any BeginSection go into an unnamed leading section.
  void Add(const std::string& metric, double value, const std::string& unit = "");
  // The PaperVsMeasured shape: both columns, same row.
  void AddComparison(const std::string& metric, double paper, double measured,
                     const std::string& unit);
  // Every HwCounters field as a "<prefix>.<field>" row (X-macro driven).
  void AddCounters(const std::string& prefix, const HwCounters& counters);

  bool Empty() const { return sections_.empty(); }

  // {"schema_version":2,"bench":name,"meta":{"git_sha":...,"mode":...,...},
  //  "sections":[{"title":...,"metrics":[{"name","value","unit",("paper")}]}]}
  JsonValue ToJson() const;

  // Serializes to `<dir>/BENCH_<name>.json`. Returns false (and stays quiet) on I/O error.
  bool WriteTo(const std::string& dir) const;

  // The process-wide report that bench_util.h feeds. First use arms an atexit hook that
  // writes the report to $PPCMM_BENCH_OUT (when set and the report is non-empty).
  static BenchReport& Global();

 private:
  struct Metric {
    std::string name;
    double value = 0.0;
    std::string unit;
    bool has_paper = false;
    double paper = 0.0;
  };
  struct Section {
    std::string title;
    std::vector<Metric> metrics;
  };

  Section& CurrentSection();

  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;  // insertion-ordered
  std::vector<Section> sections_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_OBS_BENCH_REPORT_H_
