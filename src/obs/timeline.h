// TimelineSampler: a periodic time series of system health, driven by the scheduler tick.
//
// Where MetricsRegistry answers "what happened over the whole run", the timeline answers
// "when": HTAB utilization climbing toward the §7 zombie plateau, the evict/reload ratio
// spiking during a fork storm, the kernel's TLB share drifting up when BATs are off. The
// kernel has no timer interrupt, so the sampler piggybacks on scheduler activations
// (context switches and idle entries) and samples whenever at least one period of simulated
// cycles has elapsed since the last sample.

#ifndef PPCMM_SRC_OBS_TIMELINE_H_
#define PPCMM_SRC_OBS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/sim/cycle_types.h"
#include "src/sim/hw_counters.h"

namespace ppcmm {

class System;

// One row of the time series.
struct TimelineSample {
  uint64_t cycle = 0;
  double htab_utilization = 0.0;
  uint32_t htab_valid = 0;
  uint32_t htab_zombies = 0;  // valid entries whose VSID matches no live context
  double evict_to_reload_ratio = 0.0;  // over the interval since the previous sample
  double tlb_kernel_share = 0.0;
  uint64_t context_switches = 0;  // cumulative, for aligning with other tools
  uint64_t page_faults = 0;       // cumulative
};

// Collects TimelineSamples from a System at a fixed cycle period.
class TimelineSampler {
 public:
  // Samples at most once per `period` simulated cycles. Does not install itself; call
  // Install() (or invoke Tick()/SampleNow() by hand from a harness loop).
  TimelineSampler(System& system, Cycles period);
  ~TimelineSampler();

  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  // Hooks the kernel's scheduler tick so sampling is automatic. Displaces any previously
  // installed tick hook; Uninstall() (also run by the destructor) clears it.
  void Install();
  void Uninstall();

  // Takes a sample if at least one period elapsed since the last one.
  void Tick();
  // Takes a sample unconditionally.
  void SampleNow();

  const std::vector<TimelineSample>& samples() const { return samples_; }

  // {"period_cycles":N,"samples":[{...}, ...]}
  JsonValue ToJson() const;
  // Header row + one CSV row per sample.
  std::string ToCsv() const;

 private:
  System& system_;
  Cycles period_;
  uint64_t next_sample_cycle_ = 0;
  bool installed_ = false;
  HwCounters last_counters_;  // interval basis for rate gauges
  std::vector<TimelineSample> samples_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_OBS_TIMELINE_H_
