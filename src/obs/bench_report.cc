#include "src/obs/bench_report.h"

#include <cstdlib>
#include <fstream>

#include <errno.h>

namespace ppcmm {

void BenchReport::BeginSection(const std::string& title) {
  sections_.push_back(Section{.title = title, .metrics = {}});
}

BenchReport::Section& BenchReport::CurrentSection() {
  if (sections_.empty()) {
    sections_.push_back(Section{.title = "", .metrics = {}});
  }
  return sections_.back();
}

void BenchReport::Add(const std::string& metric, double value, const std::string& unit) {
  CurrentSection().metrics.push_back(Metric{.name = metric, .value = value, .unit = unit});
}

void BenchReport::AddComparison(const std::string& metric, double paper, double measured,
                                const std::string& unit) {
  CurrentSection().metrics.push_back(Metric{
      .name = metric, .value = measured, .unit = unit, .has_paper = true, .paper = paper});
}

void BenchReport::SetMeta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

void BenchReport::AddCounters(const std::string& prefix, const HwCounters& counters) {
  counters.ForEachField([&](const char* name, uint64_t value, bool /*is_gauge*/) {
    Add(prefix + "." + name, static_cast<double>(value));
  });
}

JsonValue BenchReport::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", kSchemaVersion);
  doc.Set("bench", name_);
  // Environment-derived defaults first, then explicit SetMeta entries (which overwrite):
  // every report self-describes the commit and run mode it came from, so cross-run trend
  // comparison never has to guess from file paths.
  JsonValue meta = JsonValue::Object();
  const char* sha = std::getenv("PPCMM_GIT_SHA");
  meta.Set("git_sha", sha != nullptr ? sha : "unknown");
  const char* quick = std::getenv("PPCMM_QUICK");
  meta.Set("mode", (quick != nullptr && quick[0] == '1') ? "quick" : "full");
  for (const auto& [key, value] : meta_) {
    meta.Set(key, value);
  }
  doc.Set("meta", std::move(meta));
  JsonValue sections = JsonValue::Array();
  for (const Section& section : sections_) {
    JsonValue s = JsonValue::Object();
    s.Set("title", section.title);
    JsonValue metrics = JsonValue::Array();
    for (const Metric& m : section.metrics) {
      JsonValue row = JsonValue::Object();
      row.Set("name", m.name);
      row.Set("value", m.value);
      if (!m.unit.empty()) {
        row.Set("unit", m.unit);
      }
      if (m.has_paper) {
        row.Set("paper", m.paper);
      }
      metrics.Append(std::move(row));
    }
    s.Set("metrics", std::move(metrics));
    sections.Append(std::move(s));
  }
  doc.Set("sections", std::move(sections));
  return doc;
}

bool BenchReport::WriteTo(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + (name_.empty() ? "unnamed" : name_) + ".json";
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson().Serialize() << "\n";
  return out.good();
}

BenchReport& BenchReport::Global() {
  static BenchReport* report = [] {
    auto* r = new BenchReport();
#ifdef __GLIBC__
    if (program_invocation_short_name != nullptr) {
      r->SetName(program_invocation_short_name);
    }
#endif
    std::atexit([] {
      const char* dir = std::getenv("PPCMM_BENCH_OUT");
      BenchReport& g = Global();
      if (dir != nullptr && dir[0] != '\0' && !g.Empty()) {
        g.WriteTo(dir);
      }
    });
    return r;
  }();
  return *report;
}

}  // namespace ppcmm
