// Chrome/Perfetto trace-event exporter for the TraceBuffer.
//
// Emits the JSON object format ({"traceEvents":[...]}) that https://ui.perfetto.dev and
// chrome://tracing open directly. Each TraceRecord becomes a thread-scoped instant event on
// the track of the task it was attributed to; context switches additionally emit a
// flow-event pair ("s" on the outgoing task's track, "f" on the incoming one) so the
// hand-off renders as an arrow. Timestamps are simulated microseconds (cycles / clock MHz).

#ifndef PPCMM_SRC_OBS_PERFETTO_H_
#define PPCMM_SRC_OBS_PERFETTO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"
#include "src/sim/trace.h"

namespace ppcmm {

struct PerfettoExportOptions {
  // Converts cycles to trace microseconds. Must be > 0.
  double clock_mhz = 100.0;
  // Optional task-id → display-name mapping, rendered as thread_name metadata. Task 0
  // (kernel bring-up / no task) is always named.
  std::vector<std::pair<uint32_t, std::string>> task_names;
  // The pid every event is filed under (one simulated machine = one process).
  uint32_t pid = 1;
};

// Builds the trace-event document from raw records (oldest first).
JsonValue PerfettoTraceJson(const std::vector<TraceRecord>& records,
                            const PerfettoExportOptions& options = PerfettoExportOptions{});

// Convenience: export a TraceBuffer's retained records and serialize.
std::string PerfettoTraceString(const TraceBuffer& trace,
                                const PerfettoExportOptions& options = PerfettoExportOptions{});

}  // namespace ppcmm

#endif  // PPCMM_SRC_OBS_PERFETTO_H_
