#include "src/obs/perfetto.h"

#include <algorithm>
#include <set>

namespace ppcmm {

namespace {

double TsMicros(uint64_t cycle, double clock_mhz) {
  return static_cast<double>(cycle) / (clock_mhz > 0 ? clock_mhz : 1.0);
}

JsonValue MetadataEvent(const char* name, uint32_t pid, uint32_t tid,
                        const std::string& value) {
  JsonValue event = JsonValue::Object();
  event.Set("ph", "M");
  event.Set("name", name);
  event.Set("pid", pid);
  event.Set("tid", tid);
  JsonValue args = JsonValue::Object();
  args.Set("name", value);
  event.Set("args", std::move(args));
  return event;
}

}  // namespace

JsonValue PerfettoTraceJson(const std::vector<TraceRecord>& records,
                            const PerfettoExportOptions& options) {
  JsonValue events = JsonValue::Array();
  events.Append(MetadataEvent("process_name", options.pid, 0, "ppcmm"));

  // Name every track that will appear: explicit names first, then defaults for the rest.
  std::set<uint32_t> tids{0};
  for (const TraceRecord& r : records) {
    tids.insert(r.task);
    if (r.event == TraceEvent::kContextSwitch) {
      tids.insert(r.a);
      tids.insert(r.b);
    }
  }
  std::set<uint32_t> named;
  for (const auto& [tid, name] : options.task_names) {
    events.Append(MetadataEvent("thread_name", options.pid, tid, name));
    named.insert(tid);
  }
  for (const uint32_t tid : tids) {
    if (!named.contains(tid)) {
      events.Append(MetadataEvent("thread_name", options.pid, tid,
                                  tid == 0 ? "kernel" : "task " + std::to_string(tid)));
    }
  }

  uint64_t flow_id = 0;
  for (const TraceRecord& r : records) {
    const double ts = TsMicros(r.cycle, options.clock_mhz);

    JsonValue event = JsonValue::Object();
    event.Set("name", TraceEventName(r.event));
    event.Set("cat", "mmu");
    event.Set("ph", "i");
    event.Set("s", "t");  // thread-scoped instant
    event.Set("ts", ts);
    event.Set("pid", options.pid);
    event.Set("tid", r.task);
    JsonValue args = JsonValue::Object();
    args.Set("a", r.a);
    args.Set("b", r.b);
    args.Set("cycle", r.cycle);
    event.Set("args", std::move(args));
    events.Append(std::move(event));

    if (r.event == TraceEvent::kContextSwitch) {
      // Flow arrow from the outgoing task's track to the incoming one's.
      ++flow_id;
      JsonValue start = JsonValue::Object();
      start.Set("name", "ctxsw");
      start.Set("cat", "sched");
      start.Set("ph", "s");
      start.Set("id", flow_id);
      start.Set("ts", ts);
      start.Set("pid", options.pid);
      start.Set("tid", r.a);
      events.Append(std::move(start));

      JsonValue finish = JsonValue::Object();
      finish.Set("name", "ctxsw");
      finish.Set("cat", "sched");
      finish.Set("ph", "f");
      finish.Set("bp", "e");  // bind to the enclosing slice/instant
      finish.Set("id", flow_id);
      finish.Set("ts", ts);
      finish.Set("pid", options.pid);
      finish.Set("tid", r.b);
      events.Append(std::move(finish));
    }
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

std::string PerfettoTraceString(const TraceBuffer& trace,
                                const PerfettoExportOptions& options) {
  return PerfettoTraceJson(trace.Records(), options).Serialize();
}

}  // namespace ppcmm
