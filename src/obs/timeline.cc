#include "src/obs/timeline.h"

#include <sstream>

#include "src/core/stats.h"
#include "src/core/system.h"

namespace ppcmm {

TimelineSampler::TimelineSampler(System& system, Cycles period)
    : system_(system), period_(period) {}

TimelineSampler::~TimelineSampler() { Uninstall(); }

void TimelineSampler::Install() {
  system_.kernel().SetTickHook([this] { Tick(); });
  installed_ = true;
}

void TimelineSampler::Uninstall() {
  if (installed_) {
    system_.kernel().SetTickHook(nullptr);
    installed_ = false;
  }
}

void TimelineSampler::Tick() {
  if (system_.machine().counters().cycles >= next_sample_cycle_) {
    SampleNow();
  }
}

void TimelineSampler::SampleNow() {
  const HwCounters& now = system_.machine().counters();
  const HwCounters interval = now.Diff(last_counters_);
  const SystemStats stats = ComputeStats(system_, interval);

  TimelineSample sample;
  sample.cycle = now.cycles;
  sample.htab_utilization = stats.htab_utilization;
  sample.htab_valid = stats.htab_valid;
  sample.htab_zombies = stats.htab_valid - stats.htab_live;
  sample.evict_to_reload_ratio = stats.evict_to_reload_ratio;
  sample.tlb_kernel_share = stats.tlb_kernel_share;
  sample.context_switches = now.context_switches;
  sample.page_faults = now.page_faults;
  samples_.push_back(sample);

  last_counters_ = now;
  next_sample_cycle_ = now.cycles + period_.value;
}

JsonValue TimelineSampler::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("period_cycles", period_.value);
  JsonValue rows = JsonValue::Array();
  for (const TimelineSample& s : samples_) {
    JsonValue row = JsonValue::Object();
    row.Set("cycle", s.cycle);
    row.Set("htab_utilization", s.htab_utilization);
    row.Set("htab_valid", s.htab_valid);
    row.Set("htab_zombies", s.htab_zombies);
    row.Set("evict_to_reload_ratio", s.evict_to_reload_ratio);
    row.Set("tlb_kernel_share", s.tlb_kernel_share);
    row.Set("context_switches", s.context_switches);
    row.Set("page_faults", s.page_faults);
    rows.Append(std::move(row));
  }
  out.Set("samples", std::move(rows));
  return out;
}

std::string TimelineSampler::ToCsv() const {
  std::ostringstream oss;
  oss << "cycle,htab_utilization,htab_valid,htab_zombies,evict_to_reload_ratio,"
         "tlb_kernel_share,context_switches,page_faults\n";
  for (const TimelineSample& s : samples_) {
    oss << s.cycle << "," << JsonNumber(s.htab_utilization) << "," << s.htab_valid << ","
        << s.htab_zombies << "," << JsonNumber(s.evict_to_reload_ratio) << ","
        << JsonNumber(s.tlb_kernel_share) << "," << s.context_switches << ","
        << s.page_faults << "\n";
  }
  return oss.str();
}

}  // namespace ppcmm
