#include "src/obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/core/stats.h"
#include "src/core/system.h"
#include "src/sim/probes.h"

namespace ppcmm {

const uint64_t* MetricsSnapshot::FindCounter(const std::string& name) const {
  for (const auto& [k, v] : counters) {
    if (k == name) {
      return &v;
    }
  }
  return nullptr;
}

const double* MetricsSnapshot::FindGauge(const std::string& name) const {
  for (const auto& [k, v] : gauges) {
    if (k == name) {
      return &v;
    }
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot d;
  d.cycle = cycle - earlier.cycle;
  d.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    const uint64_t* base = earlier.FindCounter(name);
    d.counters.emplace_back(name, base != nullptr ? value - *base : value);
  }
  d.gauges = gauges;
  return d;
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("cycle", cycle);
  JsonValue counter_obj = JsonValue::Object();
  for (const auto& [name, value] : counters) {
    counter_obj.Set(name, value);
  }
  out.Set("counters", std::move(counter_obj));
  JsonValue gauge_obj = JsonValue::Object();
  for (const auto& [name, value] : gauges) {
    gauge_obj.Set(name, value);
  }
  out.Set("gauges", std::move(gauge_obj));
  return out;
}

std::string MetricsSnapshot::ToCsv() const {
  std::ostringstream oss;
  oss << "metric,value\n";
  oss << "cycle," << cycle << "\n";
  for (const auto& [name, value] : counters) {
    oss << name << "," << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    oss << name << "," << JsonNumber(value) << "\n";
  }
  return oss.str();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  Machine& machine = system_.machine();
  const HwCounters& hw = machine.counters();
  snap.cycle = hw.cycles;

  hw.ForEachField([&](const char* name, uint64_t value, bool is_gauge) {
    const std::string key = std::string("hw.") + name;
    if (is_gauge) {
      snap.gauges.emplace_back(key, static_cast<double>(value));
    } else {
      snap.counters.emplace_back(key, value);
    }
  });

  system_.kernel().ForEachTask([&](Task& task) {
    const std::string prefix = "task." + std::to_string(task.id.value) + ".";
    snap.counters.emplace_back(prefix + "page_faults", task.obs.page_faults);
    snap.counters.emplace_back(prefix + "cow_faults", task.obs.cow_faults);
    snap.counters.emplace_back(prefix + "switches_in", task.obs.switches_in);
  });

  // Derived system gauges, computed over the whole run so far.
  const SystemStats stats = ComputeStats(system_, hw);
  snap.gauges.emplace_back("sys.htab_utilization", stats.htab_utilization);
  snap.gauges.emplace_back("sys.htab_valid", stats.htab_valid);
  snap.gauges.emplace_back("sys.htab_live", stats.htab_live);
  snap.gauges.emplace_back("sys.htab_zombies",
                           static_cast<double>(stats.htab_valid - stats.htab_live));
  snap.gauges.emplace_back("sys.htab_hit_rate", stats.htab_hit_rate);
  snap.gauges.emplace_back("sys.evict_to_reload_ratio", stats.evict_to_reload_ratio);
  snap.gauges.emplace_back("sys.dtlb_miss_rate", stats.dtlb_miss_rate);
  snap.gauges.emplace_back("sys.itlb_miss_rate", stats.itlb_miss_rate);
  snap.gauges.emplace_back("sys.tlb_kernel_share", stats.tlb_kernel_share);

  // Latency distributions (all zero while probes are disabled).
  const LatencyProbes& probes = machine.probes();
  for (uint32_t i = 0; i < kNumLatencyProbes; ++i) {
    const LatencyProbe probe = static_cast<LatencyProbe>(i);
    const LatencyHistogram& h = probes.histogram(probe);
    const std::string prefix = std::string("lat.") + LatencyProbeName(probe) + ".";
    snap.counters.emplace_back(prefix + "count", h.TotalCount());
    snap.gauges.emplace_back(prefix + "p50", static_cast<double>(h.Percentile(0.50)));
    snap.gauges.emplace_back(prefix + "p95", static_cast<double>(h.Percentile(0.95)));
    snap.gauges.emplace_back(prefix + "p99", static_cast<double>(h.Percentile(0.99)));
    snap.gauges.emplace_back(prefix + "max", static_cast<double>(h.Max()));
    snap.gauges.emplace_back(prefix + "mean", h.Mean());
  }

  // The §5.2 hash-miss spread: how unevenly misses land across PTEGs.
  const std::vector<uint64_t>& miss = probes.hash_miss_per_pteg();
  uint64_t miss_total = 0, miss_max = 0, ptegs_hit = 0;
  for (const uint64_t m : miss) {
    miss_total += m;
    miss_max = std::max(miss_max, m);
    ptegs_hit += m > 0 ? 1 : 0;
  }
  snap.counters.emplace_back("lat.htab_hash_miss.total", miss_total);
  snap.gauges.emplace_back("lat.htab_hash_miss.max_per_pteg", static_cast<double>(miss_max));
  snap.gauges.emplace_back("lat.htab_hash_miss.ptegs_touched", static_cast<double>(ptegs_hit));
  return snap;
}

}  // namespace ppcmm
