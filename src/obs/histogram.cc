#include "src/obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/json.h"

namespace ppcmm {

uint64_t LatencyHistogram::Percentile(double p) const {
  if (total_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p * static_cast<double>(total_))));
  uint64_t cumulative = 0;
  for (uint32_t bucket = 0; bucket < kBuckets; ++bucket) {
    cumulative += counts_[bucket];
    if (cumulative >= rank) {
      return std::min(BucketUpperEdge(bucket), max_);
    }
  }
  return max_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.total_ == 0) {
    return;
  }
  for (uint32_t bucket = 0; bucket < kBuckets; ++bucket) {
    counts_[bucket] += other.counts_[bucket];
  }
  if (total_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Clear() { *this = LatencyHistogram(); }

JsonValue LatencyHistogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("count", total_);
  out.Set("sum", sum_);
  out.Set("min", Min());
  out.Set("max", max_);
  out.Set("mean", Mean());
  out.Set("p50", Percentile(0.50));
  out.Set("p95", Percentile(0.95));
  out.Set("p99", Percentile(0.99));
  JsonValue buckets = JsonValue::Array();
  for (uint32_t bucket = 0; bucket < kBuckets; ++bucket) {
    if (counts_[bucket] == 0) {
      continue;
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("le", BucketUpperEdge(bucket));
    entry.Set("count", counts_[bucket]);
    buckets.Append(std::move(entry));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(total_), Mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.95)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace ppcmm
