// A minimal JSON document model: build, serialize, parse.
//
// The observability exporters (Perfetto traces, metrics snapshots, BENCH_*.json) must emit
// machine-readable output without adding a third-party dependency, and the tests must prove
// the output round-trips through a real parser. This is that parser/serializer pair: the
// full JSON grammar (RFC 8259) minus \u escapes beyond Basic Latin, with insertion-ordered
// objects so serialized documents are stable and diffable across runs.

#ifndef PPCMM_SRC_OBS_JSON_H_
#define PPCMM_SRC_OBS_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ppcmm {

// One JSON value of any type. Objects preserve insertion order.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}                   // NOLINT(runtime/explicit)
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}             // NOLINT(runtime/explicit)
  JsonValue(int n) : JsonValue(static_cast<double>(n)) {}               // NOLINT(runtime/explicit)
  JsonValue(uint32_t n) : JsonValue(static_cast<double>(n)) {}          // NOLINT(runtime/explicit)
  JsonValue(uint64_t n) : JsonValue(static_cast<double>(n)) {}          // NOLINT(runtime/explicit)
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : JsonValue(std::string(s)) {}               // NOLINT(runtime/explicit)

  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsObject() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  // Array access.
  JsonValue& Append(JsonValue item) {
    items_.push_back(std::move(item));
    return items_.back();
  }
  const std::vector<JsonValue>& Items() const { return items_; }
  size_t Size() const { return type_ == Type::kObject ? members_.size() : items_.size(); }

  // Object access. Set overwrites an existing key in place.
  JsonValue& Set(const std::string& key, JsonValue value);
  // nullptr when absent.
  const JsonValue* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& Members() const { return members_; }

  // Compact serialization (no whitespace). Numbers use the shortest representation that
  // round-trips; integral values print without a decimal point.
  std::string Serialize() const;

  // Parses one JSON document (trailing whitespace allowed, trailing garbage is an error).
  // Returns nullopt on malformed input, with a human-readable reason in *error if given.
  static std::optional<JsonValue> Parse(std::string_view text, std::string* error = nullptr);

 private:
  void SerializeTo(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject, insertion-ordered
};

// Serializes a string with JSON escaping (quotes included).
std::string JsonQuote(std::string_view s);

// Formats a double the way Serialize does (shortest round-trip; integral without a point).
std::string JsonNumber(double value);

class LatencyHistogram;

// {"count":N,"sum":S,"min":m,"max":M,"mean":x,"p50":...,"p95":...,"p99":...,
//  "buckets":[{"le":upper,"count":n}, ...nonempty only]}
// Lives here rather than on LatencyHistogram so the sim layer never depends on obs.
JsonValue HistogramToJson(const LatencyHistogram& h);

}  // namespace ppcmm

#endif  // PPCMM_SRC_OBS_JSON_H_
