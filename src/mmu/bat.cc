#include "src/mmu/bat.h"

#include "src/sim/check.h"

namespace ppcmm {

namespace {

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

void BatArray::Set(uint32_t index, const BatEntry& entry) {
  PPCMM_CHECK(index < kNumBats);
  if (entry.valid) {
    PPCMM_CHECK_MSG(IsPowerOfTwo(entry.block_bytes) && entry.block_bytes >= kMinBatBlock,
                    "BAT block size must be a power of two >= 128K, got " << entry.block_bytes);
    PPCMM_CHECK_MSG((entry.eff_base & (entry.block_bytes - 1)) == 0,
                    "BAT effective base not aligned to block size");
    PPCMM_CHECK_MSG((entry.phys_base & (entry.block_bytes - 1)) == 0,
                    "BAT physical base not aligned to block size");
  }
  entries_[index] = entry;
}

void BatArray::Clear(uint32_t index) {
  PPCMM_CHECK(index < kNumBats);
  entries_[index] = BatEntry{};
}

const BatEntry& BatArray::Get(uint32_t index) const {
  PPCMM_CHECK(index < kNumBats);
  return entries_[index];
}

std::optional<BatHit> BatArray::Translate(EffAddr ea, bool supervisor) const {
  for (const BatEntry& entry : entries_) {
    if (!entry.valid) {
      continue;
    }
    if (entry.supervisor_only && !supervisor) {
      continue;
    }
    const uint32_t mask = ~(entry.block_bytes - 1);
    if ((ea.value & mask) == entry.eff_base) {
      const uint32_t offset = ea.value & (entry.block_bytes - 1);
      return BatHit{.pa = PhysAddr(entry.phys_base + offset),
                    .cache_inhibited = entry.cache_inhibited};
    }
  }
  return std::nullopt;
}

uint32_t BatArray::ValidCount() const {
  uint32_t count = 0;
  for (const BatEntry& entry : entries_) {
    if (entry.valid) {
      ++count;
    }
  }
  return count;
}

}  // namespace ppcmm
