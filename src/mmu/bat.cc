#include "src/mmu/bat.h"

#include "src/sim/check.h"

namespace ppcmm {

namespace {

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

void BatArray::Set(uint32_t index, const BatEntry& entry) {
  PPCMM_CHECK(index < kNumBats);
  if (entry.valid) {
    PPCMM_CHECK_MSG(IsPowerOfTwo(entry.block_bytes) && entry.block_bytes >= kMinBatBlock,
                    "BAT block size must be a power of two >= 128K, got " << entry.block_bytes);
    PPCMM_CHECK_MSG((entry.eff_base & (entry.block_bytes - 1)) == 0,
                    "BAT effective base not aligned to block size");
    PPCMM_CHECK_MSG((entry.phys_base & (entry.block_bytes - 1)) == 0,
                    "BAT physical base not aligned to block size");
  }
  entries_[index] = entry;
  ++generation_;
}

void BatArray::Clear(uint32_t index) {
  PPCMM_CHECK(index < kNumBats);
  entries_[index] = BatEntry{};
  ++generation_;
}

const BatEntry& BatArray::Get(uint32_t index) const {
  PPCMM_CHECK(index < kNumBats);
  return entries_[index];
}

uint32_t BatArray::ValidCount() const {
  uint32_t count = 0;
  for (const BatEntry& entry : entries_) {
    if (entry.valid) {
      ++count;
    }
  }
  return count;
}

}  // namespace ppcmm
