#include "src/mmu/hash_table.h"

#include <algorithm>

#include "src/sim/check.h"

namespace ppcmm {

namespace {

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

// The 19 low-order VSID bits participate in the architected primary hash.
constexpr uint32_t kHashVsidMask = 0x7FFFF;

}  // namespace

HashTable::HashTable(uint32_t num_ptegs, PhysAddr base)
    : ptegs_(num_ptegs), base_(base), hash_mask_(num_ptegs - 1) {
  PPCMM_CHECK_MSG(IsPowerOfTwo(num_ptegs), "HTAB PTEG count must be a power of two");
}

uint32_t HashTable::PrimaryPteg(VirtPage vp) const {
  return ((vp.vsid.value & kHashVsidMask) ^ vp.page_index) & hash_mask_;
}

uint32_t HashTable::SecondaryPteg(VirtPage vp) const {
  return (~((vp.vsid.value & kHashVsidMask) ^ vp.page_index)) & hash_mask_;
}

PhysAddr HashTable::SlotAddr(uint32_t pteg, uint32_t slot) const {
  PPCMM_CHECK(pteg < num_ptegs() && slot < kPtesPerPteg);
  return base_ + (pteg * kPtesPerPteg + slot) * kPteBytes;
}

HtabSearchResult HashTable::Search(VirtPage vp, MemCharger& charger) const {
  HtabSearchResult result;
  const uint32_t groups[2] = {PrimaryPteg(vp), SecondaryPteg(vp)};
  for (uint32_t g : groups) {
    for (uint32_t s = 0; s < kPtesPerPteg; ++s) {
      charger.Charge(SlotAddr(g, s), /*is_write=*/false);
      ++result.memory_refs;
      if (ptegs_[g][s].Matches(vp)) {
        result.found = true;
        result.pte = ptegs_[g][s];
        return result;
      }
    }
  }
  return result;
}

HtabInsertOutcome HashTable::Insert(const HashedPte& pte, const VsidOracle& oracle,
                                    MemCharger& charger) {
  PPCMM_CHECK_MSG(pte.valid, "inserting an invalid PTE makes no sense");
  const uint32_t groups[2] = {PrimaryPteg(pte.virt_page()), SecondaryPteg(pte.virt_page())};

  // Pass 1: look for a free slot, charging a read per probe (the reload code examines each
  // candidate slot's valid bit).
  for (uint32_t g : groups) {
    for (uint32_t s = 0; s < kPtesPerPteg; ++s) {
      charger.Charge(SlotAddr(g, s), /*is_write=*/false);
      if (!ptegs_[g][s].valid) {
        ptegs_[g][s] = pte;
        charger.Charge(SlotAddr(g, s), /*is_write=*/true);
        return HtabInsertOutcome::kFreeSlot;
      }
    }
  }

  // Both PTEGs full: replace an arbitrary candidate (round-robin over the 16 slots), exactly
  // the paper's non-optimal replacement that does not distinguish live PTEs from zombies.
  const uint32_t pick = replace_cursor_++ % (2 * kPtesPerPteg);
  const uint32_t g = groups[pick / kPtesPerPteg];
  const uint32_t s = pick % kPtesPerPteg;
  const bool victim_live = oracle.IsLive(ptegs_[g][s].vsid);
  ptegs_[g][s] = pte;
  charger.Charge(SlotAddr(g, s), /*is_write=*/true);
  return victim_live ? HtabInsertOutcome::kReplacedLive : HtabInsertOutcome::kReplacedZombie;
}

std::optional<HashedPte> HashTable::InvalidatePage(VirtPage vp, MemCharger& charger) {
  const uint32_t groups[2] = {PrimaryPteg(vp), SecondaryPteg(vp)};
  for (uint32_t g : groups) {
    for (uint32_t s = 0; s < kPtesPerPteg; ++s) {
      charger.Charge(SlotAddr(g, s), /*is_write=*/false);
      if (ptegs_[g][s].Matches(vp)) {
        const HashedPte old = ptegs_[g][s];
        ptegs_[g][s].valid = false;
        charger.Charge(SlotAddr(g, s), /*is_write=*/true);
        return old;
      }
    }
  }
  return std::nullopt;
}

bool HashTable::MarkChanged(VirtPage vp, MemCharger& charger) {
  const uint32_t groups[2] = {PrimaryPteg(vp), SecondaryPteg(vp)};
  for (uint32_t g : groups) {
    for (uint32_t s = 0; s < kPtesPerPteg; ++s) {
      charger.Charge(SlotAddr(g, s), /*is_write=*/false);
      if (ptegs_[g][s].Matches(vp)) {
        ptegs_[g][s].changed = true;
        charger.Charge(SlotAddr(g, s), /*is_write=*/true);
        return true;
      }
    }
  }
  return false;
}

uint32_t HashTable::InvalidateMatching(const std::function<bool(const HashedPte&)>& pred,
                                       MemCharger* charger) {
  uint32_t cleared = 0;
  for (uint32_t g = 0; g < num_ptegs(); ++g) {
    for (uint32_t s = 0; s < kPtesPerPteg; ++s) {
      if (charger != nullptr) {
        charger->Charge(SlotAddr(g, s), /*is_write=*/false);
      }
      HashedPte& pte = ptegs_[g][s];
      if (pte.valid && pred(pte)) {
        pte.valid = false;
        ++cleared;
        if (charger != nullptr) {
          charger->Charge(SlotAddr(g, s), /*is_write=*/true);
        }
      }
    }
  }
  return cleared;
}

uint32_t HashTable::InvalidatePteg(uint32_t pteg, MemCharger* charger) {
  PPCMM_CHECK(pteg < num_ptegs());
  uint32_t cleared = 0;
  for (uint32_t s = 0; s < kPtesPerPteg; ++s) {
    HashedPte& pte = ptegs_[pteg][s];
    if (pte.valid) {
      pte.valid = false;
      ++cleared;
      if (charger != nullptr) {
        charger->Charge(SlotAddr(pteg, s), /*is_write=*/true);
      }
    }
  }
  return cleared;
}

uint32_t HashTable::ReclaimZombies(uint32_t max_ptegs, const VsidOracle& oracle,
                                   MemCharger& charger) {
  uint32_t reclaimed = 0;
  const uint32_t limit = std::min(max_ptegs, num_ptegs());
  for (uint32_t i = 0; i < limit; ++i) {
    const uint32_t g = reclaim_cursor_;
    reclaim_cursor_ = (reclaim_cursor_ + 1) & hash_mask_;
    for (uint32_t s = 0; s < kPtesPerPteg; ++s) {
      charger.Charge(SlotAddr(g, s), /*is_write=*/false);
      HashedPte& pte = ptegs_[g][s];
      if (pte.valid && !oracle.IsLive(pte.vsid)) {
        pte.valid = false;
        ++reclaimed;
        charger.Charge(SlotAddr(g, s), /*is_write=*/true);
      }
    }
  }
  return reclaimed;
}

uint32_t HashTable::ValidCount() const {
  uint32_t count = 0;
  for (const Pteg& pteg : ptegs_) {
    for (const HashedPte& pte : pteg) {
      if (pte.valid) {
        ++count;
      }
    }
  }
  return count;
}

uint32_t HashTable::LiveCount(const VsidOracle& oracle) const {
  uint32_t count = 0;
  for (const Pteg& pteg : ptegs_) {
    for (const HashedPte& pte : pteg) {
      if (pte.valid && oracle.IsLive(pte.vsid)) {
        ++count;
      }
    }
  }
  return count;
}

std::array<uint32_t, kPtesPerPteg + 1> HashTable::OccupancyHistogram() const {
  std::array<uint32_t, kPtesPerPteg + 1> histogram{};
  for (const Pteg& pteg : ptegs_) {
    uint32_t occupied = 0;
    for (const HashedPte& pte : pteg) {
      if (pte.valid) {
        ++occupied;
      }
    }
    ++histogram[occupied];
  }
  return histogram;
}

double HashTable::Utilization() const {
  return static_cast<double>(ValidCount()) / static_cast<double>(capacity());
}

const HashedPte& HashTable::At(uint32_t pteg, uint32_t slot) const {
  PPCMM_CHECK(pteg < num_ptegs() && slot < kPtesPerPteg);
  return ptegs_[pteg][slot];
}

void HashTable::Clear() {
  for (Pteg& pteg : ptegs_) {
    pteg.fill(HashedPte{});
  }
  replace_cursor_ = 0;
  reclaim_cursor_ = 0;
}

}  // namespace ppcmm
