// Liveness oracle for VSIDs.
//
// With lazy TLB flushing (§7 of the paper) a flushed context's PTEs stay in the hashed page
// table with their valid bits set — "zombies". They can never translate anything (their VSID
// is no longer loaded in any segment register), but they occupy slots. The kernel knows which
// VSIDs are live; the MMU layer consults this oracle to classify replacements (evict of a
// live PTE vs. harmless overwrite of a zombie) and to drive the idle-task reclaim scan.

#ifndef PPCMM_SRC_MMU_VSID_ORACLE_H_
#define PPCMM_SRC_MMU_VSID_ORACLE_H_

#include "src/sim/addr.h"

namespace ppcmm {

// Answers "does any live context currently own this VSID?".
class VsidOracle {
 public:
  virtual ~VsidOracle() = default;
  virtual bool IsLive(Vsid vsid) const = 0;
};

// Oracle that treats every VSID as live — the behaviour of a kernel without lazy flushing,
// where no zombies can exist.
class AllLiveVsidOracle : public VsidOracle {
 public:
  bool IsLive(Vsid) const override { return true; }
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_MMU_VSID_ORACLE_H_
