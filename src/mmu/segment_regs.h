// The 16 segment registers.
//
// Each register holds the 24-bit VSID substituted for the top 4 bits of every effective
// address. The kernel reloads the user segment registers (0..11) on context switch; kernel
// segments (12..15) hold fixed VSIDs for the kernel's dynamically mapped areas (§7).

#ifndef PPCMM_SRC_MMU_SEGMENT_REGS_H_
#define PPCMM_SRC_MMU_SEGMENT_REGS_H_

#include <array>

#include "src/sim/addr.h"
#include "src/sim/check.h"

namespace ppcmm {

// The per-CPU segment register file.
class SegmentRegs {
 public:
  SegmentRegs() = default;

  Vsid Get(uint32_t index) const {
    PPCMM_CHECK(index < kNumSegments);
    return regs_[index];
  }

  void Set(uint32_t index, Vsid vsid) {
    PPCMM_CHECK(index < kNumSegments);
    regs_[index] = vsid;
    ++generation_;
  }

  // Resolves an effective address to its virtual page through the selected register.
  VirtPage Resolve(EffAddr ea) const {
    return VirtPage{.vsid = Get(ea.SegmentIndex()), .page_index = ea.PageIndex()};
  }

  // Loads the user half of the register file (segments 0..11), as a context switch does.
  void LoadUserSegments(const std::array<Vsid, kNumSegments>& vsids) {
    for (uint32_t i = 0; i < kFirstKernelSegment; ++i) {
      regs_[i] = vsids[i];
    }
    ++generation_;
  }

  // Loads all 16 registers.
  void LoadAll(const std::array<Vsid, kNumSegments>& vsids) {
    regs_ = vsids;
    ++generation_;
  }

  // Monotonic count of register-file writes. The MMU's host fast path snapshots it so any
  // segment mutation (context switch, lazy-flush reload, direct Set) invalidates memoized
  // translations that resolved through the old VSIDs.
  uint64_t generation() const { return generation_; }

 private:
  std::array<Vsid, kNumSegments> regs_{};
  uint64_t generation_ = 0;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_MMU_SEGMENT_REGS_H_
