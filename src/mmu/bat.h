// Block Address Translation (BAT) registers.
//
// The PPC's alternative translation path: eight BAT registers (four instruction, four data)
// associate virtual blocks of 128 KB or more with contiguous physical memory. When a BAT
// matches, the page-table translation is abandoned — the access consumes no TLB entry and no
// hashed-page-table entry, which is exactly why the paper maps kernel text/data through them
// (§5.1): the kernel's TLB footprint drops to (near) zero.

#ifndef PPCMM_SRC_MMU_BAT_H_
#define PPCMM_SRC_MMU_BAT_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/sim/addr.h"
#include "src/sim/phys_addr.h"

namespace ppcmm {

inline constexpr uint32_t kNumBats = 4;            // per side (4 IBAT + 4 DBAT)
inline constexpr uint32_t kMinBatBlock = 128 * 1024;  // minimum block size, 128 KB

// One BAT register pair (upper/lower collapsed into one logical entry).
struct BatEntry {
  bool valid = false;
  uint32_t eff_base = 0;       // effective base address, block aligned
  uint32_t block_bytes = 0;    // power of two, >= 128 KB
  uint32_t phys_base = 0;      // physical base address, block aligned
  bool cache_inhibited = false;  // WIMG I bit for the whole block
  bool supervisor_only = true;   // kernel mappings are not user visible
};

// The result of a successful BAT translation.
struct BatHit {
  PhysAddr pa;
  bool cache_inhibited = false;
};

// One side's array of four BAT registers.
class BatArray {
 public:
  BatArray() = default;

  // Programs entry `index`. Base addresses must be aligned to the (power-of-two) block size.
  void Set(uint32_t index, const BatEntry& entry);
  void Clear(uint32_t index);
  const BatEntry& Get(uint32_t index) const;

  // Attempts to translate `ea`. `supervisor` selects privileged matching — user accesses
  // never match supervisor-only entries. Inline: the BAT scan runs ahead of the page-table
  // path on every single MMU access.
  std::optional<BatHit> Translate(EffAddr ea, bool supervisor) const {
    for (const BatEntry& entry : entries_) {
      if (!entry.valid) {
        continue;
      }
      if (entry.supervisor_only && !supervisor) {
        continue;
      }
      const uint32_t mask = ~(entry.block_bytes - 1);
      if ((ea.value & mask) == entry.eff_base) {
        const uint32_t offset = ea.value & (entry.block_bytes - 1);
        return BatHit{.pa = PhysAddr(entry.phys_base + offset),
                      .cache_inhibited = entry.cache_inhibited};
      }
    }
    return std::nullopt;
  }

  // True if any valid entry covers `ea` for the given privilege.
  bool Covers(EffAddr ea, bool supervisor) const { return Translate(ea, supervisor).has_value(); }

  uint32_t ValidCount() const;

  // Monotonic count of register writes (Set/Clear). The MMU's host fast path snapshots it:
  // a memoized BAT-miss (or BAT-hit) outcome is only replayed while no BAT has been
  // reprogrammed since it was recorded.
  uint64_t generation() const { return generation_; }

 private:
  std::array<BatEntry, kNumBats> entries_{};
  uint64_t generation_ = 0;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_MMU_BAT_H_
