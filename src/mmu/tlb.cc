#include "src/mmu/tlb.h"

#include <utility>

namespace ppcmm {

namespace {

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Tlb::Tlb(std::string name, uint32_t entries, uint32_t associativity)
    : name_(std::move(name)), associativity_(associativity) {
  PPCMM_CHECK(associativity > 0);
  PPCMM_CHECK_MSG(entries % associativity == 0, "TLB entries must divide evenly into ways");
  num_sets_ = entries / associativity;
  PPCMM_CHECK_MSG(IsPowerOfTwo(num_sets_), "TLB set count must be a power of two");
  ways_.resize(entries);
}

std::optional<TlbEntry> Tlb::Lookup(VirtPage vp) {
  TlbEntry* entry = LookupPtr(vp);
  if (entry == nullptr) {
    return std::nullopt;
  }
  return *entry;
}

void Tlb::Insert(const TlbEntry& entry) {
  ++tick_;
  TlbEntry* ways = SetBase(SetIndex(entry.page_index));
  TlbEntry* victim = &ways[0];
  for (uint32_t w = 0; w < associativity_; ++w) {
    TlbEntry& candidate = ways[w];
    // Reuse the way already holding this virtual page, else prefer an invalid way.
    if (candidate.valid && candidate.vsid == entry.vsid &&
        candidate.page_index == entry.page_index) {
      victim = &candidate;
      break;
    }
    if (!candidate.valid) {
      victim = &candidate;
      break;
    }
    if (candidate.last_used < victim->last_used) {
      victim = &candidate;
    }
  }
  if (victim->valid && victim->is_kernel) {
    --kernel_entries_;
  }
  *victim = entry;
  victim->valid = true;
  victim->last_used = tick_;
  if (victim->is_kernel) {
    ++kernel_entries_;
  }
}

uint32_t Tlb::InvalidatePage(uint32_t page_index) {
  uint32_t cleared = 0;
  TlbEntry* ways = SetBase(SetIndex(page_index));
  for (uint32_t w = 0; w < associativity_; ++w) {
    TlbEntry& entry = ways[w];
    if (entry.valid && entry.page_index == page_index) {
      if (entry.is_kernel) {
        --kernel_entries_;
      }
      entry.valid = false;
      ++cleared;
    }
  }
  return cleared;
}

void Tlb::MarkChanged(VirtPage vp) {
  TlbEntry* ways = SetBase(SetIndex(vp.page_index));
  for (uint32_t w = 0; w < associativity_; ++w) {
    TlbEntry& entry = ways[w];
    if (entry.valid && entry.vsid == vp.vsid && entry.page_index == vp.page_index) {
      entry.changed = true;
      return;
    }
  }
}

void Tlb::InvalidateAll() {
  for (TlbEntry& entry : ways_) {
    entry.valid = false;
  }
  kernel_entries_ = 0;
}

uint32_t Tlb::InvalidateMatching(const std::function<bool(const TlbEntry&)>& pred) {
  uint32_t cleared = 0;
  for (TlbEntry& entry : ways_) {
    if (entry.valid && pred(entry)) {
      if (entry.is_kernel) {
        --kernel_entries_;
      }
      entry.valid = false;
      ++cleared;
    }
  }
  return cleared;
}

uint32_t Tlb::ValidCount() const {
  uint32_t count = 0;
  for (const TlbEntry& entry : ways_) {
    if (entry.valid) {
      ++count;
    }
  }
  return count;
}

uint32_t Tlb::KernelEntryCount() const { return kernel_entries_; }

}  // namespace ppcmm
