// The PowerPC hashed page table (HTAB).
//
// Geometry per the paper (§7): 2048 PTEGs ("buckets") of 8 PTEs each — 16384 entries.
// A virtual page hashes to a primary PTEG; if neither a match nor a free slot is found
// there, the one's-complement secondary hash selects an overflow PTEG. A full search
// therefore touches at most 16 memory locations — the constant behind the expensive eager
// flushes of §7.
//
// Every probe is charged through a MemCharger at the slot's architected physical address, so
// HTAB traffic shows up in the data cache exactly as it did on the real 604 (§8).

#ifndef PPCMM_SRC_MMU_HASH_TABLE_H_
#define PPCMM_SRC_MMU_HASH_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/sim/addr.h"
#include "src/mmu/hashed_pte.h"
#include "src/sim/mem_charge.h"
#include "src/mmu/vsid_oracle.h"
#include "src/sim/phys_addr.h"

namespace ppcmm {

// Outcome of inserting a PTE.
enum class HtabInsertOutcome {
  kFreeSlot,        // an invalid slot was available
  kReplacedZombie,  // displaced a valid PTE whose VSID is dead (harmless)
  kReplacedLive,    // displaced a valid PTE of a live context (a real evict)
};

// Result of a search.
struct HtabSearchResult {
  bool found = false;
  HashedPte pte;          // valid only when found
  uint32_t memory_refs = 0;  // slots probed (each charged to the MemCharger)
};

// The hashed page table.
class HashTable {
 public:
  // `base` is the table's physical address; slot i of PTEG g lives at
  // base + (g * 8 + i) * 8 bytes. `num_ptegs` must be a power of two.
  HashTable(uint32_t num_ptegs, PhysAddr base);

  uint32_t num_ptegs() const { return static_cast<uint32_t>(ptegs_.size()); }
  uint32_t capacity() const { return num_ptegs() * kPtesPerPteg; }
  PhysAddr base() const { return base_; }
  uint32_t SizeBytes() const { return capacity() * kPteBytes; }

  // The architected hash functions.
  uint32_t PrimaryPteg(VirtPage vp) const;
  uint32_t SecondaryPteg(VirtPage vp) const;
  // Physical address of one slot (for cache-charging and for the BAT-mapping experiments).
  PhysAddr SlotAddr(uint32_t pteg, uint32_t slot) const;

  // Searches primary then secondary PTEG for `vp`, charging one read per probed slot. The
  // table itself is never modified — probing with a NullMemCharger (as Mmu::Probe does) is
  // side-effect free, which is why this is const.
  HtabSearchResult Search(VirtPage vp, MemCharger& charger) const;

  // Inserts `pte`, preferring a free slot in the primary then secondary PTEG; when both are
  // full, replaces a slot chosen round-robin among the 16 candidates — the paper's
  // "arbitrary PTE" replacement. The oracle classifies what was displaced.
  HtabInsertOutcome Insert(const HashedPte& pte, const VsidOracle& oracle, MemCharger& charger);

  // Searches both PTEGs for `vp` and clears its valid bit. Returns the entry that was
  // invalidated (so the caller can propagate its R/C bits back to the Linux PTE), or
  // nullopt. This is the expensive per-page flush: up to 16 charged references.
  std::optional<HashedPte> InvalidatePage(VirtPage vp, MemCharger& charger);

  // Sets the C (changed) bit on the entry for `vp` (the hardware's deferred store-update).
  // Returns true if the entry was found. Charges the search plus one store.
  bool MarkChanged(VirtPage vp, MemCharger& charger);

  // Scans the whole table invalidating entries selected by `pred`; charges one read per slot
  // (plus one write per invalidation) when `charger` is non-null. Returns entries cleared.
  uint32_t InvalidateMatching(const std::function<bool(const HashedPte&)>& pred,
                              MemCharger* charger);

  // Invalidates every valid entry of one PTEG (fault injection: a forced eviction storm).
  // Charges one write per cleared slot when `charger` is non-null. Returns entries cleared.
  // Safe with deferred C-bit marking because the C bit is written through to the Linux PTE
  // at the first store, so dropping HTAB entries can never lose dirty information.
  uint32_t InvalidatePteg(uint32_t pteg, MemCharger* charger);

  // Idle-task zombie reclaim (§7): scans up to `max_ptegs` PTEGs from an internal cursor,
  // physically invalidating valid PTEs whose VSID is dead. Returns zombies cleared.
  uint32_t ReclaimZombies(uint32_t max_ptegs, const VsidOracle& oracle, MemCharger& charger);

  // Occupancy probes (uncharged; these model the paper's instrumentation, not the hardware).
  uint32_t ValidCount() const;
  uint32_t LiveCount(const VsidOracle& oracle) const;
  // Histogram over PTEGs of valid-entry counts: index 0..8 → number of PTEGs with that many
  // valid entries. This is the paper's §5.2 "hash table miss histogram" tool.
  std::array<uint32_t, kPtesPerPteg + 1> OccupancyHistogram() const;
  double Utilization() const;

  // Direct slot access for tests and the reclaim experiments.
  const HashedPte& At(uint32_t pteg, uint32_t slot) const;

  void Clear();

 private:
  using Pteg = std::array<HashedPte, kPtesPerPteg>;

  std::vector<Pteg> ptegs_;
  PhysAddr base_;
  uint32_t hash_mask_;
  uint32_t replace_cursor_ = 0;
  uint32_t reclaim_cursor_ = 0;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_MMU_HASH_TABLE_H_
