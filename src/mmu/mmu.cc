#include "src/mmu/mmu.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "src/sim/check.h"

namespace ppcmm {

namespace {

// Process-wide override for the fast-path default: -1 = follow the environment,
// 0/1 = forced by SetFastPathDefault (the torture differential flips this around
// workloads that build their own System internally).
std::atomic<int>& FastPathForced() {
  static std::atomic<int> forced{-1};
  return forced;
}

bool FastPathEnvDefault() {
  const char* env = std::getenv("PPCMM_FAST_PATH");
  if (env == nullptr) {
    return true;
  }
  const std::string_view value(env);
  return !(value == "0" || value == "off");
}

// The attribution cause for a TLB reload: which TLB missed × which strategy serves it.
AttrCause ReloadCause(ReloadStrategy strategy, bool is_ifetch) {
  switch (strategy) {
    case ReloadStrategy::kHardwareHtabWalk:
      return is_ifetch ? AttrCause::kItlbReloadHw : AttrCause::kDtlbReloadHw;
    case ReloadStrategy::kSoftwareHtab:
      return is_ifetch ? AttrCause::kItlbReloadSwHtab : AttrCause::kDtlbReloadSwHtab;
    case ReloadStrategy::kSoftwareDirect:
      return is_ifetch ? AttrCause::kItlbReloadSwDirect : AttrCause::kDtlbReloadSwDirect;
  }
  return AttrCause::kInstruction;
}

}  // namespace

bool Mmu::FastPathDefault() {
  const int forced = FastPathForced().load(std::memory_order_relaxed);
  if (forced >= 0) {
    return forced != 0;
  }
  return FastPathEnvDefault();
}

void Mmu::SetFastPathDefault(std::optional<bool> forced) {
  FastPathForced().store(forced.has_value() ? (*forced ? 1 : 0) : -1,
                         std::memory_order_relaxed);
}

void Mmu::SetFastPathEnabled(bool enabled) {
  fast_path_enabled_ = enabled;
  FastPathInvalidate();
}

void Mmu::FastPathInvalidate() {
  for (auto& bank : banks_) {
    for (auto& side : bank->fast_slots) {
      side.fill(FastSlot{});
    }
  }
}

Mmu::Mmu(Machine& machine, const MmuPolicy& policy, PhysAddr htab_base)
    : machine_(machine),
      policy_(policy),
      htab_(machine.config().htab_ptegs, htab_base),
      fast_path_enabled_(FastPathDefault()) {
  const uint32_t ncpus = std::max(1u, machine.config().ncpus);
  banks_.reserve(ncpus);
  for (uint32_t cpu = 0; cpu < ncpus; ++cpu) {
    banks_.push_back(std::make_unique<CpuBank>(machine.config()));
  }
  bank_ = banks_[0].get();
}

AccessOutcome Mmu::Access(EffAddr ea, AccessKind kind) {
  const bool supervisor = ea.IsKernel();
  HwCounters& counters = machine_.counters();

  if (injector_ != nullptr && injector_->ShouldFire(FaultClass::kSpuriousTlbFlush)) {
    // An unrelated agent broadcast a TLB invalidation: alternate between a targeted tlbie
    // for this access's page and a full tlbia. Translation below proceeds from cold state.
    if (injector_->Fires(FaultClass::kSpuriousTlbFlush) % 2 == 0) {
      TlbInvalidateAll();
    } else {
      TlbInvalidatePage(ea);
    }
  }

  const bool is_ifetch = IsInstruction(kind);
  const bool is_write = IsWrite(kind);
  const uint32_t epn = ea.EffPageNumber();
  FastSlot& slot = bank_->fast_slots[is_ifetch ? 1 : 0][epn & (kFastPathSlots - 1)];

  // Host fast path: replay the memoized outcome for this page when nothing it depends on
  // has changed. Everything up to the commit point is a pure read — a rejected memo must
  // leave no trace in the simulation.
  if (fast_path_enabled_ && slot.eff_page == epn && slot.gen == FastGen()) {
    if (slot.entry == nullptr) {
      // Memoized BAT hit. BAT state is unchanged (generation match) and BAT blocks are
      // page-aligned linear maps, so the same effective page still hits the same block and
      // lands in the same frame.
      ++fast_hits_;
      ++counters.bat_translations;
      const PhysAddr pa = PhysAddr::FromFrame(slot.bat_frame, ea.PageOffset());
      if (is_ifetch) {
        machine_.TouchInstruction(pa, !slot.bat_cache_inhibited);
      } else {
        machine_.TouchData(pa, is_write, !slot.bat_cache_inhibited);
      }
      return AccessOutcome::kOk;
    }
    TlbEntry* entry = slot.entry;
    if (entry->valid && entry->vsid.value == slot.vsid &&
        entry->page_index == (epn & kPageIndexMask) &&
        (!is_write || (entry->writable && entry->changed))) {
      // The segment registers are unchanged (generation match), so resolving `ea` would
      // yield slot.vsid again; the way still holds exactly that tag, so the associative
      // lookup would hit it; the write gate guarantees no protection fault and no pending
      // C-bit work. Replay the lookup's side effects and charge the payload access.
      ++fast_hits_;
      Tlb& tlb = is_ifetch ? bank_->itlb : bank_->dtlb;
      if (is_ifetch) {
        ++counters.itlb_accesses;
      } else {
        ++counters.dtlb_accesses;
      }
      tlb.TouchLru(entry);
      const PhysAddr pa = PhysAddr::FromFrame(entry->frame, ea.PageOffset());
      if (is_ifetch) {
        machine_.TouchInstruction(pa, !entry->cache_inhibited);
      } else {
        machine_.TouchData(pa, is_write, !entry->cache_inhibited);
      }
      return AccessOutcome::kOk;
    }
  }
  if (fast_path_enabled_) {
    ++fast_misses_;
  }

  // BAT translation runs in parallel with the segment lookup; a BAT hit abandons the
  // page-table path entirely (§3).
  const BatArray& bats = is_ifetch ? ibats_ : dbats_;
  if (const std::optional<BatHit> hit = bats.Translate(ea, supervisor); hit.has_value()) {
    ++counters.bat_translations;
    if (fast_path_enabled_) {
      slot = FastSlot{.eff_page = epn,
                      .vsid = 0,
                      .gen = FastGen(),
                      .entry = nullptr,
                      .bat_frame = hit->pa.PageFrame(),
                      .bat_cache_inhibited = hit->cache_inhibited};
    }
    if (is_ifetch) {
      machine_.TouchInstruction(hit->pa, !hit->cache_inhibited);
    } else {
      machine_.TouchData(hit->pa, is_write, !hit->cache_inhibited);
    }
    return AccessOutcome::kOk;
  }

  const VirtPage vp = bank_->segments.Resolve(ea);
  Tlb& tlb = is_ifetch ? bank_->itlb : bank_->dtlb;
  if (is_ifetch) {
    ++counters.itlb_accesses;
  } else {
    ++counters.dtlb_accesses;
  }

  TlbEntry* entry = tlb.LookupPtr(vp);
  if (entry == nullptr) {
    if (is_ifetch) {
      ++counters.itlb_misses;
    } else {
      ++counters.dtlb_misses;
    }
    machine_.Trace(TraceEvent::kTlbMiss, ea.EffPageNumber(), is_ifetch ? 1 : 0);
    const std::optional<PteWalkInfo> info = Reload(ea, vp, kind);
    if (!info.has_value()) {
      return AccessOutcome::kPageFault;
    }
    entry = tlb.LookupPtr(vp);
    PPCMM_CHECK_MSG(entry != nullptr, "reload must leave the translation in the TLB");
  }

  if (is_write && !entry->writable) {
    return AccessOutcome::kProtectionFault;
  }

  // Deferred C-bit maintenance: the first store through a clean translation must record the
  // change in the HTAB entry and the Linux PTE before the store can proceed (§7's reason to
  // mark dirty at reload instead).
  if (is_write && !entry->changed && !policy_.eager_dirty_marking) {
    CycleScope dirty_scope(machine_, AttrCause::kDirtyBitUpdate);
    ++counters.dirty_bit_updates;
    machine_.Trace(TraceEvent::kDirtyBitUpdate, ea.EffPageNumber());
    DataMemCharger pt_charger(machine_, policy_.cache_page_tables);
    machine_.AddCycles(Cycles(machine_.config().tlb_miss_interrupt_cycles / 2));
    if (policy_.UsesHtab()) {
      htab_.MarkChanged(vp, pt_charger);
    }
    if (backing_ != nullptr) {
      backing_->MarkPteDirty(ea, pt_charger);
    }
    bank_->dtlb.MarkChanged(vp);  // sets entry->changed: stores only come through the DTLB
  }

  if (fast_path_enabled_) {
    slot = FastSlot{.eff_page = epn,
                    .vsid = vp.vsid.value,
                    .gen = FastGen(),
                    .entry = entry,
                    .bat_frame = 0,
                    .bat_cache_inhibited = false};
  }

  const PhysAddr pa = PhysAddr::FromFrame(entry->frame, ea.PageOffset());
  if (is_ifetch) {
    machine_.TouchInstruction(pa, !entry->cache_inhibited);
  } else {
    machine_.TouchData(pa, is_write, !entry->cache_inhibited);
  }
  return AccessOutcome::kOk;
}

uint32_t Mmu::AccessRun(EffAddr ea, uint32_t stride, uint32_t count, AccessKind kind,
                        AccessOutcome* outcome) {
  *outcome = AccessOutcome::kOk;
  const bool is_ifetch = IsInstruction(kind);
  const bool is_write = IsWrite(kind);
  uint32_t done = 0;
  while (done < count) {
    const EffAddr cur = ea + done * stride;
    // Span replay is legal only when the memo fast path is trusted for this page and no
    // fault injector demands per-access polling. The validity test is byte-for-byte the
    // one Access() applies; a span that validates proves every remaining in-page access
    // would take the identical memo hit, because nothing the replay does (cache state,
    // counters, LRU ticks) feeds back into the generation counters or the entry tag.
    if (fast_path_enabled_ && injector_ == nullptr) {
      const uint32_t epn = cur.EffPageNumber();
      FastSlot& slot = bank_->fast_slots[is_ifetch ? 1 : 0][epn & (kFastPathSlots - 1)];
      if (slot.eff_page == epn && slot.gen == FastGen()) {
        const uint32_t offset = cur.PageOffset();
        const uint32_t in_page = (kPageSize - 1 - offset) / stride + 1;
        const uint32_t n = std::min(count - done, in_page);
        HwCounters& counters = machine_.counters();
        if (slot.entry == nullptr) {
          // Memoized BAT hit: the block is a page-aligned linear map, so the whole
          // in-page run lands in the memoized frame.
          ++span_runs_;
          span_accesses_ += n;
          fast_hits_ += n;
          counters.bat_translations += n;
          const PhysAddr pa = PhysAddr::FromFrame(slot.bat_frame, offset);
          if (is_ifetch) {
            machine_.TouchInstructionRun(pa, stride, n, !slot.bat_cache_inhibited);
          } else {
            machine_.TouchDataRun(pa, stride, n, is_write, !slot.bat_cache_inhibited);
          }
          done += n;
          continue;
        }
        TlbEntry* entry = slot.entry;
        if (entry->valid && entry->vsid.value == slot.vsid &&
            entry->page_index == (epn & kPageIndexMask) &&
            (!is_write || (entry->writable && entry->changed))) {
          ++span_runs_;
          span_accesses_ += n;
          fast_hits_ += n;
          Tlb& tlb = is_ifetch ? bank_->itlb : bank_->dtlb;
          if (is_ifetch) {
            counters.itlb_accesses += n;
          } else {
            counters.dtlb_accesses += n;
          }
          tlb.TouchLruRun(entry, n);
          const PhysAddr pa = PhysAddr::FromFrame(entry->frame, offset);
          if (is_ifetch) {
            machine_.TouchInstructionRun(pa, stride, n, !entry->cache_inhibited);
          } else {
            machine_.TouchDataRun(pa, stride, n, is_write, !entry->cache_inhibited);
          }
          done += n;
          continue;
        }
      }
    }
    const AccessOutcome result = Access(cur, kind);
    if (result != AccessOutcome::kOk) {
      *outcome = result;
      return done;
    }
    ++done;
  }
  return done;
}

std::optional<PhysAddr> Mmu::Probe(EffAddr ea, AccessKind kind) const {
  const bool supervisor = ea.IsKernel();
  const BatArray& bats = IsInstruction(kind) ? ibats_ : dbats_;
  if (const std::optional<BatHit> hit = bats.Translate(ea, supervisor); hit.has_value()) {
    return hit->pa;
  }
  const VirtPage vp = bank_->segments.Resolve(ea);
  // Probe the TLB without touching LRU state by scanning the HTAB and backing instead: the
  // TLB is a pure cache of those, so consult the HTAB copy first, then the backing source.
  NullMemCharger null_charger;
  if (policy_.UsesHtab()) {
    const HtabSearchResult found = htab_.Search(vp, null_charger);
    if (found.found) {
      return PhysAddr::FromFrame(found.pte.rpn, ea.PageOffset());
    }
  }
  if (backing_ != nullptr) {
    const std::optional<PteWalkInfo> info = backing_->WalkPte(ea, null_charger);
    if (info.has_value()) {
      return PhysAddr::FromFrame(info->frame, ea.PageOffset());
    }
  }
  return std::nullopt;
}

std::optional<PteWalkInfo> Mmu::Reload(EffAddr ea, VirtPage vp, AccessKind kind) {
  HwCounters& counters = machine_.counters();
  const MachineConfig& config = machine_.config();
  DataMemCharger pt_charger(machine_, policy_.cache_page_tables);
  const Cycles reload_start = machine_.Now();
  CycleScope reload_scope(machine_, ReloadCause(policy_.strategy, IsInstruction(kind)));
  // An HTAB search under the reload scope, reclassified on return into the depth bucket the
  // probe actually reached: primary-PTEG-only, spilled into the secondary, or a full miss.
  const auto attributed_search = [&](VirtPage page) {
    CycleScope search_scope(machine_, AttrCause::kHashSearchPrimary);
    const HtabSearchResult found = htab_.Search(page, pt_charger);
    if (!found.found) {
      search_scope.Rebind(AttrCause::kHashSearchMiss);
    } else if (found.memory_refs > kPtesPerPteg) {
      search_scope.Rebind(AttrCause::kHashSearchSecondary);
    }
    return found;
  };

  switch (policy_.strategy) {
    case ReloadStrategy::kHardwareHtabWalk: {
      // The 604 walks the HTAB in hardware: fixed walk overhead plus the charged probes.
      machine_.AddCycles(Cycles(config.hw_walk_base_cycles));
      ++counters.htab_searches;
      const HtabSearchResult found = attributed_search(vp);
      if (found.found) {
        ++counters.htab_hits;
        const PteWalkInfo info{.frame = found.pte.rpn,
                               .writable = found.pte.writable,
                               .cache_inhibited = found.pte.cache_inhibited};
        InstallTlbEntry(ea, vp, info, kind);
        machine_.RecordLatency(LatencyProbe::kTlbReloadHardware, reload_start);
        return info;
      }
      ++counters.htab_misses;
      machine_.probes().RecordHashMiss(htab_.PrimaryPteg(vp));
      machine_.Trace(TraceEvent::kHtabMiss, ea.EffPageNumber());
      // Hash-table miss interrupt into the software handler (§5: at least 91 cycles).
      machine_.AddCycles(Cycles(config.hash_miss_interrupt_cycles));
      machine_.AddCycles(Cycles(policy_.HandlerBodyCycles()));
      std::optional<PteWalkInfo> info = SoftwareRefill(ea, vp, /*insert_into_htab=*/true);
      if (info.has_value()) {
        // The faulting access retries and the hardware walk now hits the fresh HTAB entry.
        machine_.AddCycles(Cycles(config.hw_walk_base_cycles));
        ++counters.htab_searches;
        ++counters.htab_hits;
        const HtabSearchResult refound = attributed_search(vp);
        PPCMM_CHECK_MSG(refound.found, "freshly inserted HTAB entry must be found on retry");
        InstallTlbEntry(ea, vp, *info, kind);
        machine_.RecordLatency(LatencyProbe::kTlbReloadHardware, reload_start);
      }
      return info;
    }

    case ReloadStrategy::kSoftwareHtab: {
      // 603 emulating the 604: software miss handler searches the HTAB.
      machine_.AddCycles(Cycles(config.tlb_miss_interrupt_cycles));
      machine_.AddCycles(Cycles(policy_.HandlerBodyCycles()));
      ++counters.htab_searches;
      const HtabSearchResult found = attributed_search(vp);
      if (found.found) {
        ++counters.htab_hits;
        const PteWalkInfo info{.frame = found.pte.rpn,
                               .writable = found.pte.writable,
                               .cache_inhibited = found.pte.cache_inhibited};
        InstallTlbEntry(ea, vp, info, kind);
        machine_.RecordLatency(LatencyProbe::kTlbReloadSoftwareHtab, reload_start);
        return info;
      }
      ++counters.htab_misses;
      machine_.probes().RecordHashMiss(htab_.PrimaryPteg(vp));
      machine_.Trace(TraceEvent::kHtabMiss, ea.EffPageNumber());
      std::optional<PteWalkInfo> info = SoftwareRefill(ea, vp, /*insert_into_htab=*/true);
      if (info.has_value()) {
        InstallTlbEntry(ea, vp, *info, kind);
        machine_.RecordLatency(LatencyProbe::kTlbReloadSoftwareHtab, reload_start);
      }
      return info;
    }

    case ReloadStrategy::kSoftwareDirect: {
      // §6.2: no HTAB at all — the miss handler goes straight to the Linux PTE tree,
      // three loads in the worst case.
      machine_.AddCycles(Cycles(config.tlb_miss_interrupt_cycles));
      machine_.AddCycles(Cycles(policy_.HandlerBodyCycles()));
      std::optional<PteWalkInfo> info = SoftwareRefill(ea, vp, /*insert_into_htab=*/false);
      if (info.has_value()) {
        InstallTlbEntry(ea, vp, *info, kind);
        machine_.RecordLatency(LatencyProbe::kTlbReloadSoftwareDirect, reload_start);
      }
      return info;
    }
  }
  PPCMM_CHECK_MSG(false, "unreachable reload strategy");
  return std::nullopt;
}

std::optional<PteWalkInfo> Mmu::SoftwareRefill(EffAddr ea, VirtPage vp, bool insert_into_htab) {
  // mmu-lint-deferred-flush(FLUSH-CONTRACT-029): the insert is born coherent — it loads the
  // translation this CPU just missed on; a displaced live entry simply re-faults through
  // this same refill path, and flush correctness never depends on HTAB residency
  HwCounters& counters = machine_.counters();
  PPCMM_CHECK_MSG(backing_ != nullptr, "MMU has no PTE backing source installed");
  DataMemCharger pt_charger(machine_, policy_.cache_page_tables);

  ++counters.pte_tree_walks;
  const std::optional<PteWalkInfo> info = backing_->WalkPte(ea, pt_charger);
  if (!info.has_value()) {
    return std::nullopt;  // genuine page fault; the kernel repairs and retries
  }

  if (insert_into_htab) {
    if (injector_ != nullptr && injector_->ShouldFire(FaultClass::kHtabEvictionStorm)) {
      // Forced eviction storm: wipe both candidate PTEGs — up to 16 live entries — before
      // the insert. Harmless for dirty state (the C bit is written through to the Linux PTE)
      // but maximally hostile to HTAB hit rates and zombie bookkeeping.
      htab_.InvalidatePteg(htab_.PrimaryPteg(vp), &pt_charger);
      htab_.InvalidatePteg(htab_.SecondaryPteg(vp), &pt_charger);
    }
    const HashedPte pte{.valid = true,
                        .vsid = vp.vsid,
                        .page_index = vp.page_index,
                        .rpn = info->frame,
                        .cache_inhibited = info->cache_inhibited,
                        .writable = info->writable,
                        .referenced = true,
                        // §7: the optimized kernel marks writable PTEs changed at load time,
                        // making every later flush a pure invalidate.
                        .changed = policy_.eager_dirty_marking && info->writable};
    const VsidOracle& oracle = oracle_ != nullptr ? *oracle_ : all_live_;
    const HtabInsertOutcome outcome = htab_.Insert(pte, oracle, pt_charger);
    ++counters.htab_reloads;
    switch (outcome) {
      case HtabInsertOutcome::kFreeSlot:
        break;
      case HtabInsertOutcome::kReplacedZombie:
        ++counters.htab_zombie_overwrites;
        break;
      case HtabInsertOutcome::kReplacedLive:
        ++counters.htab_evicts;
        break;
    }
  }
  return info;
}

void Mmu::InstallTlbEntry(EffAddr ea, VirtPage vp, const PteWalkInfo& info, AccessKind kind) {
  const TlbEntry entry{.valid = true,
                       .vsid = vp.vsid,
                       .page_index = vp.page_index,
                       .frame = info.frame,
                       .cache_inhibited = info.cache_inhibited,
                       .writable = info.writable,
                       .changed = policy_.eager_dirty_marking && info.writable,
                       .is_kernel = ea.IsKernel(),
                       .last_used = 0};
  // Instruction fetches reload the ITLB, loads/stores the DTLB.
  if (IsInstruction(kind)) {
    bank_->itlb.Insert(entry);
  } else {
    bank_->dtlb.Insert(entry);
  }
  UpdateKernelHighwater();
}

void Mmu::UpdateKernelHighwater() {
  HwCounters& counters = machine_.counters();
  const uint64_t now = static_cast<uint64_t>(bank_->itlb.KernelEntryCount()) +
                       bank_->dtlb.KernelEntryCount();
  counters.kernel_tlb_highwater = std::max(counters.kernel_tlb_highwater, now);
}

void Mmu::TlbInvalidatePage(EffAddr ea) {
  ++machine_.counters().tlb_page_flushes;
  // tlbie plus the serializing tlbsync/sync pair — a fixed pipeline cost on 603/604.
  machine_.AddCycles(Cycles(32));
  bank_->itlb.InvalidatePage(ea.PageIndex());
  bank_->dtlb.InvalidatePage(ea.PageIndex());
}

void Mmu::TlbInvalidateAll() {
  ++machine_.counters().tlb_all_flushes;
  // tlbia plus the serializing tlbsync/sync pair, same fixed pipeline cost as tlbie.
  machine_.AddCycles(Cycles(32));
  bank_->itlb.InvalidateAll();
  bank_->dtlb.InvalidateAll();
}

uint32_t Mmu::TlbInvalidateVsid(Vsid vsid) {
  const auto pred = [vsid](const TlbEntry& e) { return e.vsid == vsid; };
  return bank_->itlb.InvalidateMatching(pred) + bank_->dtlb.InvalidateMatching(pred);
}

}  // namespace ppcmm
