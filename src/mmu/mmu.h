// The MMU translation engine.
//
// Models the full 32-bit PowerPC reference path of Figure 1 and the reload mechanisms of
// §3/§5/§6:
//
//   effective address ──BAT match?──▶ physical (no TLB, no HTAB)
//        │ no
//   segment registers ──▶ (VSID, page index) ──TLB hit?──▶ physical
//        │ miss
//   reload, by strategy:
//     kHardwareHtabWalk  (604)  hardware searches the HTAB (~120 cycles, ≤16 refs); a HTAB
//                               miss raises a ≥91-cycle interrupt into the software path
//     kSoftwareHtab      (603)  32-cycle TLB-miss interrupt; software searches the HTAB,
//                               emulating the 604 (the early Linux/PPC approach, §6.2)
//     kSoftwareDirect    (603)  32-cycle interrupt; software walks the Linux PTE tree
//                               directly, no HTAB at all ("improving hash tables away")
//
// All HTAB and PTE-tree references are charged through the data cache — or around it when
// the policy says page tables are cache-inhibited (§8).

#ifndef PPCMM_SRC_MMU_MMU_H_
#define PPCMM_SRC_MMU_MMU_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/sim/addr.h"
#include "src/mmu/bat.h"
#include "src/mmu/hash_table.h"
#include "src/sim/mem_charge.h"
#include "src/mmu/segment_regs.h"
#include "src/mmu/tlb.h"
#include "src/mmu/vsid_oracle.h"
#include "src/sim/machine.h"
#include "src/sim/fault_injector.h"

namespace ppcmm {

// How TLB misses are refilled (see file comment).
enum class ReloadStrategy {
  kHardwareHtabWalk,
  kSoftwareHtab,
  kSoftwareDirect,
};

// MMU-level policy knobs, derived from the paper's optimizations.
struct MmuPolicy {
  ReloadStrategy strategy = ReloadStrategy::kHardwareHtabWalk;
  // §6.1: hand-optimized assembly miss handlers vs. the original save-state-and-call-C path.
  bool optimized_handlers = false;
  // §8: whether page-table (HTAB + PTE tree) references go through the data cache.
  bool cache_page_tables = true;
  // §7: mark the PTE changed (dirty) when it is loaded, so a later flush is a pure
  // invalidate. When false, the classic deferred scheme runs: the first store through a
  // clean translation traps to update the C bit in the HTAB and the Linux PTE.
  bool eager_dirty_marking = false;
  // Handler body costs in cycles, beyond the architectural interrupt overhead.
  uint32_t unoptimized_handler_cycles = 150;
  uint32_t optimized_handler_cycles = 10;

  uint32_t HandlerBodyCycles() const {
    return optimized_handlers ? optimized_handler_cycles : unoptimized_handler_cycles;
  }

  bool UsesHtab() const { return strategy != ReloadStrategy::kSoftwareDirect; }
};

// What a PTE-tree walk found.
struct PteWalkInfo {
  uint32_t frame = 0;
  bool writable = false;
  bool cache_inhibited = false;
};

// The kernel-side source of translations: walks the current context's Linux two-level PTE
// tree, charging its loads through the given charger.
class PteBackingSource {
 public:
  virtual ~PteBackingSource() = default;
  virtual std::optional<PteWalkInfo> WalkPte(EffAddr ea, MemCharger& charger) = 0;
  // Propagates a changed (dirty) bit into the Linux PTE for `ea` (deferred C-bit update and
  // flush-time write-back both land here).
  virtual void MarkPteDirty(EffAddr ea, MemCharger& charger) = 0;
};

// Outcome of one memory reference.
enum class AccessOutcome {
  kOk,
  kPageFault,        // no translation exists in the PTE tree
  kProtectionFault,  // store to a read-only mapping (e.g. copy-on-write)
};

// A MemCharger that routes references through (or around) the machine's data cache.
class DataMemCharger : public MemCharger {
 public:
  DataMemCharger(Machine& machine, bool cached) : machine_(machine), cached_(cached) {}
  void Charge(PhysAddr pa, bool is_write) override { machine_.TouchData(pa, is_write, cached_); }

 private:
  Machine& machine_;
  bool cached_;
};

// The MMU proper.
class Mmu {
 public:
  // The HTAB is placed at `htab_base` in physical memory with the configured PTEG count.
  Mmu(Machine& machine, const MmuPolicy& policy, PhysAddr htab_base);

  Mmu(const Mmu&) = delete;
  Mmu& operator=(const Mmu&) = delete;

  // Wiring: the kernel installs its PTE-tree walker and VSID liveness oracle.
  void SetBacking(PteBackingSource* backing) { backing_ = backing; }
  void SetVsidOracle(const VsidOracle* oracle) { oracle_ = oracle; }

  // Optional fault injection (kSpuriousTlbFlush on every access, kHtabEvictionStorm on every
  // HTAB insert); null = never fires.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  // Performs one full memory reference: translation (charging all reload costs) followed by
  // the cache access to the translated address. On a fault nothing is installed; the caller
  // (kernel fault path) repairs the PTE tree and retries.
  AccessOutcome Access(EffAddr ea, AccessKind kind);

  // Batched Access: up to `count` references starting at `ea`, each `stride` bytes after
  // the previous, bit-identical to `count` sequential Access() calls. Returns how many
  // accesses completed; on a fault `*outcome` names it and the caller resumes at
  // ea + done*stride after repairing the PTE tree (the kernel fault loop).
  //
  // The speed comes from *translation spans*: when the memo slot for the current page
  // validates (generation counters match, the TLB entry still carries the memoized tag,
  // and the write gate shows no pending protection/C-bit work), every remaining access
  // inside that page is proven to replay the identical memo hit, so the whole in-page run
  // is charged at once — one counter add, one LRU tick advance, one batched payload charge.
  // Span validity keys off generation counters and entry tags only; anything else (a fault
  // injector being armed, fast path off, memo miss) degrades to the per-access path.
  uint32_t AccessRun(EffAddr ea, uint32_t stride, uint32_t count, AccessKind kind,
                     AccessOutcome* outcome);

  // Translation without the final payload cache access (probe used by tests/instrumentation;
  // charges nothing and changes nothing).
  std::optional<PhysAddr> Probe(EffAddr ea, AccessKind kind) const;

  // TLB maintenance used by the kernel's flush strategies. These act on the *current*
  // CPU's TLBs; cross-CPU invalidation goes through the shootdown primitives below.
  void TlbInvalidatePage(EffAddr ea);            // tlbie: by page index in both TLBs
  void TlbInvalidateAll();                       // tlbia
  uint32_t TlbInvalidateVsid(Vsid vsid);         // simulation convenience (eager full flush)

  // ---- SMP ----
  //
  // Each simulated CPU owns a bank of private MMU state: split I/D TLBs, segment
  // registers, and the host-side memo slots. The BATs, the HTAB, and the backing PTE
  // tree are shared, exactly like physical memory. SetCurrentCpu moves the translation
  // spotlight; everything above (Access, reloads, local flushes) then reads and writes
  // that CPU's bank.
  uint32_t NumCpus() const { return static_cast<uint32_t>(banks_.size()); }
  void SetCurrentCpu(uint32_t cpu) { bank_ = banks_[cpu].get(); }

  // Shootdown primitives: invalidate translations in CPU `cpu`'s TLBs on behalf of a
  // remote requester. Pure state mutation — the caller (the flush engine's IPI round)
  // owns all cycle charging and counter accounting, so these charge and count nothing.
  // mmu-lint rule SMP-IPI-028 confines callers to the shootdown/IPI path in flush.cc:
  // any other cross-CPU TLB mutation would be a coherence hole the auditor cannot see.
  void ShootdownInvalidatePage(uint32_t cpu, EffAddr ea) {
    banks_[cpu]->itlb.InvalidatePage(ea.PageIndex());
    banks_[cpu]->dtlb.InvalidatePage(ea.PageIndex());
  }
  void ShootdownInvalidateAll(uint32_t cpu) {
    banks_[cpu]->itlb.InvalidateAll();
    banks_[cpu]->dtlb.InvalidateAll();
  }

  // Component access (the current CPU's bank for per-CPU components).
  SegmentRegs& segments() { return bank_->segments; }
  BatArray& ibats() { return ibats_; }
  BatArray& dbats() { return dbats_; }
  HashTable& htab() { return htab_; }
  const HashTable& htab() const { return htab_; }
  Tlb& itlb() { return bank_->itlb; }
  Tlb& dtlb() { return bank_->dtlb; }
  // Per-CPU views (verification: the auditor checks every CPU's TLBs and segments).
  SegmentRegs& segments(uint32_t cpu) { return banks_[cpu]->segments; }
  Tlb& itlb(uint32_t cpu) { return banks_[cpu]->itlb; }
  Tlb& dtlb(uint32_t cpu) { return banks_[cpu]->dtlb; }
  const MmuPolicy& policy() const { return policy_; }
  Machine& machine() { return machine_; }

  // Builds a charger that follows the page-table caching policy (used by the kernel when it
  // searches/updates the HTAB outside the reload path, e.g. flushes and idle reclaim).
  DataMemCharger PageTableCharger() {
    return DataMemCharger(machine_, policy_.cache_page_tables);
  }

  // ---- host fast path ----
  //
  // A simulation-invisible memoization cache over Access(): a direct-mapped table keyed by
  // effective page number and access side remembers where the last full walk for that page
  // landed (the TLB entry it hit, or the BAT frame that matched), so a repeated reference
  // replays the identical counter increments, LRU tick, and payload cache charge without
  // re-scanning the BATs, re-resolving the segment, or re-searching the TLB's ways. The
  // memo is only trusted when (a) the segment-register and BAT generation counters still
  // match the snapshot taken at install time, and (b) the TLB entry it names is still
  // valid, still tagged with the same (VSID, page index), and has no pending protection or
  // C-bit work; anything else falls back to the full path. See DESIGN.md for the complete
  // invalidation contract. Counters and cycles are bit-identical either way (fast_path_test
  // proves it differentially).

  // Process-wide default for new Mmu instances: on unless PPCMM_FAST_PATH=0/off in the
  // environment, or a test forced it with SetFastPathDefault.
  static bool FastPathDefault();
  static void SetFastPathDefault(std::optional<bool> forced);  // nullopt = back to the env

  void SetFastPathEnabled(bool enabled);
  bool fast_path_enabled() const { return fast_path_enabled_; }
  // Drops every memoized translation. Host-side only: charges nothing, counts nothing.
  void FastPathInvalidate();
  // Host-side statistics (not HwCounters: they must not exist inside the simulation).
  uint64_t fast_path_hits() const { return fast_hits_; }
  uint64_t fast_path_misses() const { return fast_misses_; }
  // Translation-span replays served by AccessRun and the accesses they covered (every
  // span access is also counted in fast_path_hits).
  uint64_t span_runs() const { return span_runs_; }
  uint64_t span_accesses() const { return span_accesses_; }

 private:
  // One memoized outcome. `entry == nullptr` marks a memoized BAT hit (bat_frame/WIMG-I
  // valid); otherwise `entry` points at the TLB way the last full walk hit, re-validated
  // against `vsid` and the slot's page tag on every use.
  struct FastSlot {
    uint32_t eff_page = kNoFastTag;  // 20-bit effective page number, kNoFastTag = empty
    uint32_t vsid = 0;
    uint64_t gen = 0;                // segment+BAT generation snapshot at install
    TlbEntry* entry = nullptr;
    uint32_t bat_frame = 0;
    bool bat_cache_inhibited = false;
  };
  static constexpr uint32_t kFastPathSlots = 256;  // per side, direct-mapped
  static constexpr uint32_t kNoFastTag = 0xFFFFFFFFu;

  // Per-CPU MMU state (see the SMP section above). unique_ptr keeps bank addresses
  // stable: FastSlot::entry aliases into a bank's TLB ways.
  struct CpuBank {
    explicit CpuBank(const MachineConfig& config)
        : itlb("itlb", config.itlb_entries, config.tlb_associativity),
          dtlb("dtlb", config.dtlb_entries, config.tlb_associativity) {}
    SegmentRegs segments;
    Tlb itlb;
    Tlb dtlb;
    std::array<std::array<FastSlot, kFastPathSlots>, 2> fast_slots{};
  };

  // The combined mutation clock the fast path snapshots. Each component only ever
  // increments, so the sum strictly increases on any segment or BAT write and a stale
  // snapshot can never compare equal again. Segment registers are per-CPU, so the clock
  // is read against the current bank — memo slots live in the same bank, keeping every
  // snapshot and its later comparison on one CPU.
  uint64_t FastGen() const {
    return bank_->segments.generation() + ibats_.generation() + dbats_.generation();
  }
  // Refills the TLB after a miss. Returns the walk result or nullopt on page fault.
  std::optional<PteWalkInfo> Reload(EffAddr ea, VirtPage vp, AccessKind kind);
  // Software path shared by every strategy once the HTAB (if any) has missed.
  std::optional<PteWalkInfo> SoftwareRefill(EffAddr ea, VirtPage vp, bool insert_into_htab);
  void InstallTlbEntry(EffAddr ea, VirtPage vp, const PteWalkInfo& info, AccessKind kind);
  void UpdateKernelHighwater();

  Machine& machine_;
  MmuPolicy policy_;
  BatArray ibats_;
  BatArray dbats_;
  HashTable htab_;
  std::vector<std::unique_ptr<CpuBank>> banks_;  // one per CPU, fixed at construction
  CpuBank* bank_;                                // the current CPU's bank
  PteBackingSource* backing_ = nullptr;
  const VsidOracle* oracle_ = nullptr;
  AllLiveVsidOracle all_live_;
  FaultInjector* injector_ = nullptr;

  bool fast_path_enabled_;
  uint64_t fast_hits_ = 0;
  uint64_t fast_misses_ = 0;
  uint64_t span_runs_ = 0;
  uint64_t span_accesses_ = 0;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_MMU_MMU_H_
