// The translation look-aside buffer.
//
// Modelled after the 603/604 split TLBs: 2-way set associative, indexed by the low bits of
// the effective page index, with entries tagged by the full (VSID, page index) virtual page.
// Tagging by VSID is what makes the paper's lazy flush sound: after a context's VSIDs are
// retired, its stale TLB entries can never match a live translation.
//
// Each entry also records whether it maps a kernel page, so the simulator can reproduce the
// paper's "percentage of TLB slots occupied by the kernel" measurement (§5.1).

#ifndef PPCMM_SRC_MMU_TLB_H_
#define PPCMM_SRC_MMU_TLB_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/addr.h"
#include "src/sim/check.h"

namespace ppcmm {

// One cached translation.
struct TlbEntry {
  bool valid = false;
  Vsid vsid;
  uint32_t page_index = 0;  // 16-bit page index within the segment
  uint32_t frame = 0;       // 20-bit physical page number
  bool cache_inhibited = false;
  bool writable = false;
  bool changed = false;     // the C bit: a store has been performed through this entry
  bool is_kernel = false;   // maps a kernel-segment page (footprint instrumentation)
  uint64_t last_used = 0;
};

// One TLB (instruction or data side).
class Tlb {
 public:
  // `entries` must be a multiple of `associativity`; sets = entries / associativity must be
  // a power of two.
  Tlb(std::string name, uint32_t entries, uint32_t associativity);

  // Looks up a translation; refreshes LRU state on hit.
  std::optional<TlbEntry> Lookup(VirtPage vp);

  // Lookup variant returning a pointer into the TLB's backing store (nullptr on miss), with
  // byte-identical LRU/tick behaviour. The pointer stays valid for the TLB's lifetime (the
  // way array never reallocates) but the *entry* it names may be replaced or invalidated by
  // any later Insert/Invalidate*; callers that cache it (the MMU host fast path) must
  // re-validate the entry's valid bit and (vsid, page_index) tag before trusting it.
  // Inline: this sits on the translation path of every non-BAT memory reference.
  TlbEntry* LookupPtr(VirtPage vp) {
    ++tick_;
    TlbEntry* ways = SetBase(SetIndex(vp.page_index));
    for (uint32_t w = 0; w < associativity_; ++w) {
      TlbEntry& entry = ways[w];
      if (entry.valid && entry.vsid == vp.vsid && entry.page_index == vp.page_index) {
        entry.last_used = tick_;
        return &entry;
      }
    }
    return nullptr;
  }

  // Refreshes LRU state on an entry known to be resident — exactly the side effect a
  // Lookup hit would have had. Host-fast-path use only.
  void TouchLru(TlbEntry* entry) { entry->last_used = ++tick_; }

  // `n` back-to-back hits on the same resident entry, collapsed: bit-identical to calling
  // TouchLru `n` times (the tick advances by n and the entry ends up most recent).
  // Host-fast-path use only (translation-span replay).
  void TouchLruRun(TlbEntry* entry, uint32_t n) {
    tick_ += n;
    entry->last_used = tick_;
  }

  // Installs a translation, replacing an invalid way or the LRU way of the set.
  void Insert(const TlbEntry& entry);

  // tlbie-style invalidation: clears every entry in the set indexed by `page_index` whose
  // page index matches, regardless of VSID (the hardware cannot compare VSIDs on tlbie).
  uint32_t InvalidatePage(uint32_t page_index);

  // Invalidates every entry (tlbia / full flush).
  void InvalidateAll();

  // Sets the C (changed) bit on the entry for `vp`, if present.
  void MarkChanged(VirtPage vp);

  // Invalidates entries selected by `pred`; returns the count (simulation convenience).
  uint32_t InvalidateMatching(const std::function<bool(const TlbEntry&)>& pred);

  // Read-only visit of every valid entry (auditing convenience; no LRU side effects).
  void ForEachValid(const std::function<void(const TlbEntry&)>& fn) const {
    for (const TlbEntry& entry : ways_) {
      if (entry.valid) {
        fn(entry);
      }
    }
  }

  uint32_t ValidCount() const;
  uint32_t KernelEntryCount() const;
  uint32_t entries() const { return static_cast<uint32_t>(ways_.size()); }
  uint32_t num_sets() const { return num_sets_; }
  const std::string& name() const { return name_; }

 private:
  uint32_t SetIndex(uint32_t page_index) const { return page_index & (num_sets_ - 1); }
  TlbEntry* SetBase(uint32_t set) { return &ways_[static_cast<size_t>(set) * associativity_]; }
  const TlbEntry* SetBase(uint32_t set) const {
    return &ways_[static_cast<size_t>(set) * associativity_];
  }

  std::string name_;
  uint32_t associativity_;
  uint32_t num_sets_;
  std::vector<TlbEntry> ways_;  // sets * ways, row-major by set
  uint64_t tick_ = 0;
  uint32_t kernel_entries_ = 0;  // incremental count of valid kernel entries
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_MMU_TLB_H_
