// The PowerPC hashed page table entry.
//
// A real PTE is two 32-bit words: { V, VSID, H, API } and { RPN, R, C, WIMG, PP }. We keep a
// decoded struct (the full 16-bit page index rather than the 6-bit abbreviated page index,
// so the model never suffers false API matches) and account each slot as one 8-byte memory
// reference at its architected physical address.

#ifndef PPCMM_SRC_MMU_HASHED_PTE_H_
#define PPCMM_SRC_MMU_HASHED_PTE_H_

#include <cstdint>

#include "src/sim/addr.h"

namespace ppcmm {

// One entry of the hashed page table.
struct HashedPte {
  bool valid = false;
  Vsid vsid;
  uint32_t page_index = 0;      // 16-bit page index within the segment
  uint32_t rpn = 0;             // 20-bit physical page number
  bool cache_inhibited = false;  // WIMG I bit
  bool writable = false;         // PP encoding collapsed to one bit
  bool referenced = false;       // R
  bool changed = false;          // C

  VirtPage virt_page() const { return VirtPage{.vsid = vsid, .page_index = page_index}; }

  bool Matches(VirtPage vp) const {
    return valid && vsid == vp.vsid && page_index == vp.page_index;
  }
};

inline constexpr uint32_t kPtesPerPteg = 8;   // bucket size (§3)
inline constexpr uint32_t kPteBytes = 8;      // two 32-bit words per entry

}  // namespace ppcmm

#endif  // PPCMM_SRC_MMU_HASHED_PTE_H_
