#include "src/verify/torture.h"

#include <sstream>
#include <utility>
#include <vector>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/obs/attr/attr_export.h"
#include "src/obs/metrics.h"
#include "src/obs/perfetto.h"
#include "src/sim/rng.h"
#include "src/sim/fault_injector.h"

namespace ppcmm {

const char* ReloadStrategyName(ReloadStrategy strategy) {
  switch (strategy) {
    case ReloadStrategy::kHardwareHtabWalk:
      return "hardware-htab-walk";
    case ReloadStrategy::kSoftwareHtab:
      return "software-htab";
    case ReloadStrategy::kSoftwareDirect:
      return "software-direct";
  }
  return "?";
}

namespace {

// What the harness believes one task has mapped (so it never touches outside a VMA, which
// the kernel treats as a fatal segfault rather than a recoverable condition).
struct TaskModel {
  TaskId id;
  // Recorded anonymous writable mmap() ranges: {start_page, page_count}.
  std::vector<std::pair<uint32_t, uint32_t>> maps;
};

// A touchable region of the current task.
struct Region {
  uint32_t start_page = 0;
  uint32_t pages = 0;
  bool writable = false;
};

constexpr uint32_t kTextPages = 16;
constexpr uint32_t kDataPages = 8;
constexpr uint32_t kStackPages = 4;

OptimizationConfig DrawConfig(Rng& rng, const TortureOptions& options) {
  OptimizationConfig config;
  if (options.randomize_config) {
    config.lazy_context_flush = rng.Chance(1, 2);
    const uint32_t cutoffs[] = {0, 8, 20};
    config.range_flush_cutoff =
        config.lazy_context_flush ? cutoffs[rng.NextBelow(3)] : 0;
    config.eager_dirty_marking = rng.Chance(1, 2);
    config.optimized_handlers = rng.Chance(1, 2);
    config.idle_zombie_reclaim = rng.Chance(1, 2);
    const IdleZeroPolicy policies[] = {IdleZeroPolicy::kOff, IdleZeroPolicy::kCached,
                                       IdleZeroPolicy::kUncachedNoList,
                                       IdleZeroPolicy::kUncachedWithList};
    config.idle_zero = policies[rng.NextBelow(4)];
    config.vsid_scatter = rng.Chance(1, 2) ? kDefaultVsidScatter : kNaiveVsidScatter;
    config.kernel_bat_mapping = rng.Chance(1, 2);
    config.uncached_page_tables = rng.Chance(1, 4);
  } else {
    config = OptimizationConfig::AllOptimizations();
  }
  config.no_htab_direct_reload = (options.strategy == ReloadStrategy::kSoftwareDirect);
  if (options.break_tlb_invalidate) {
    // The sabotage lives in the eager per-page flush path; force the kernel onto it.
    config.lazy_context_flush = false;
    config.range_flush_cutoff = 0;
    config.eager_dirty_marking = false;
  }
  return config;
}

MachineConfig DrawMachine(const TortureOptions& options) {
  MachineConfig machine = options.strategy == ReloadStrategy::kHardwareHtabWalk
                              ? MachineConfig::Ppc604(185)
                              : MachineConfig::Ppc603(80);
  if (options.ram_bytes != 0) {
    machine.ram_bytes = options.ram_bytes;
  }
  machine.ncpus = options.ncpus == 0 ? 1 : options.ncpus;
  return machine;
}

}  // namespace

TortureResult RunTorture(const TortureOptions& options) {
  TortureResult result;
  Rng rng(options.seed);

  const OptimizationConfig config = DrawConfig(rng, options);
  System sys(DrawMachine(options), config);
  Kernel& kernel = sys.kernel();
  result.config_desc = config.Describe();

  if (options.capture_trace) {
    sys.machine().trace().Enable();
    sys.machine().probes().SetEnabled(true);
  }
  // The attribution ledger doubles as the failure flight recorder: always on here, so any
  // assertion leaves the last attributed events behind (and every torture run re-proves
  // that enabling attribution does not perturb the simulation).
  sys.machine().attr().SetEnabled(true);
  MetricsRegistry registry(sys);
  // Exports the retained trace ring and a final metrics snapshot; run on every exit path so
  // even a failed run leaves machine-readable evidence.
  const auto export_obs = [&] {
    if (!options.capture_trace) {
      return;
    }
    PerfettoExportOptions popts;
    popts.clock_mhz = sys.machine_config().clock_mhz;
    kernel.ForEachTask(
        [&](Task& t) { popts.task_names.emplace_back(t.id.value, t.name); });
    result.trace_json = PerfettoTraceString(sys.machine().trace(), popts);
    result.metrics_json = registry.Snapshot().ToJson().Serialize();
  };

  FaultInjector injector(options.seed ^ 0xF417151EC7ULL);
  const std::pair<FaultClass, uint32_t> rates[] = {
      {FaultClass::kPageAllocExhaustion, options.page_alloc_exhaustion_one_in},
      {FaultClass::kHtabEvictionStorm, options.htab_eviction_storm_one_in},
      {FaultClass::kSpuriousTlbFlush, options.spurious_tlb_flush_one_in},
      {FaultClass::kVsidWrap, options.vsid_wrap_one_in},
      {FaultClass::kZombieFlood, options.zombie_flood_one_in},
  };
  for (const auto& [cls, one_in] : rates) {
    if (one_in != 0) {
      injector.Enable(cls, one_in);
    }
  }
  kernel.SetFaultInjector(&injector);
  if (options.break_tlb_invalidate) {
    kernel.flusher().TestOnlyBreakTlbInvalidate(true);
  }

  CoherenceAuditor auditor(kernel);
  auditor.SetPeriod(options.audit_period);

  std::vector<TaskModel> models;
  std::vector<std::string> trace;
  trace.reserve(options.ops);

  // Regions of the current task the harness may legally touch.
  const auto regions_of = [&](const TaskModel& model) {
    std::vector<Region> regions;
    regions.push_back({kUserTextBase >> kPageShift, kTextPages, false});
    regions.push_back({kUserDataBase >> kPageShift, kDataPages, true});
    regions.push_back({(kUserStackTop >> kPageShift) - kStackPages, kStackPages, true});
    for (const auto& [start, pages] : model.maps) {
      regions.push_back({start, pages, true});
    }
    return regions;
  };

  const auto pick_page = [&](const TaskModel& model, bool must_be_writable) {
    std::vector<Region> regions = regions_of(model);
    if (must_be_writable) {
      std::erase_if(regions, [](const Region& r) { return !r.writable; });
    }
    const Region& region = regions[rng.NextBelow(regions.size())];
    const uint32_t page = region.start_page + static_cast<uint32_t>(rng.NextBelow(region.pages));
    return EffAddr::FromPage(page, static_cast<uint32_t>(rng.NextBelow(kPageSize)));
  };

  const auto model_index_of = [&](TaskId id) {
    for (size_t i = 0; i < models.size(); ++i) {
      if (models[i].id == id) {
        return i;
      }
    }
    PPCMM_CHECK_MSG(false, "torture model lost track of task " << id.value);
    return size_t{0};
  };

  const auto running_elsewhere = [&](TaskId id) {
    for (uint32_t cpu = 0; cpu < kernel.ncpus(); ++cpu) {
      if (cpu != kernel.current_cpu() && kernel.CurrentOn(cpu) == id) {
        return true;
      }
    }
    return false;
  };

  // Per-CPU TLB snapshot for the failure report: which CPU held what when the check fired.
  // Entry dumps are capped — staleness bugs show in the first few entries plus the counts.
  const auto tlb_snapshot = [&] {
    std::ostringstream os;
    os << "per-CPU TLB snapshot:\n";
    for (uint32_t cpu = 0; cpu < kernel.ncpus(); ++cpu) {
      os << "  cpu " << cpu << (cpu == kernel.current_cpu() ? " (faulting)" : "")
         << ": task=" << kernel.CurrentOn(cpu).value
         << " flush_pending=" << (kernel.FlushPendingOn(cpu) ? 1 : 0)
         << " cycles=" << sys.machine().CpuCycles(cpu) << "\n";
      const auto dump_tlb = [&](const Tlb& tlb) {
        os << "    " << tlb.name() << ": " << tlb.ValidCount() << " valid ("
           << tlb.KernelEntryCount() << " kernel)\n";
        uint32_t shown = 0;
        tlb.ForEachValid([&](const TlbEntry& entry) {
          if (shown++ >= 8) {
            return;
          }
          os << "      vsid=0x" << std::hex << entry.vsid.value << " page=0x"
             << entry.page_index << " frame=0x" << entry.frame << std::dec
             << " w=" << entry.writable << " c=" << entry.changed
             << " k=" << entry.is_kernel << "\n";
        });
        if (shown > 8) {
          os << "      ... +" << (shown - 8) << " more\n";
        }
      };
      dump_tlb(kernel.mmu().itlb(cpu));
      dump_tlb(kernel.mmu().dtlb(cpu));
    }
    return os.str();
  };

  const auto fail = [&](uint32_t op_index, const std::string& what) {
    result.failed = true;
    std::ostringstream os;
    os << "torture failure: seed=" << options.seed << " strategy="
       << ReloadStrategyName(options.strategy) << " op=" << op_index << "/" << options.ops
       << " cpu=" << kernel.current_cpu() << "/" << kernel.ncpus()
       << "\nconfig: " << result.config_desc << "\n" << what << "\n"
       << tlb_snapshot() << "op trace (tail):\n";
    const size_t first = trace.size() > 40 ? trace.size() - 40 : 0;
    for (size_t i = first; i < trace.size(); ++i) {
      os << "  " << trace[i] << "\n";
    }
    if (options.capture_trace) {
      os << "machine trace ring (tail):\n" << sys.machine().trace().Dump(40);
      os << "metrics snapshot:\n" << registry.Snapshot().ToJson().Serialize() << "\n";
    }
    std::ostringstream replay;
    replay << "torture seed=" << options.seed << "; replay: examples/torture --seed "
           << options.seed << " --ops " << options.ops << " --strategy "
           << (options.strategy == ReloadStrategy::kHardwareHtabWalk ? "hw"
               : options.strategy == ReloadStrategy::kSoftwareHtab   ? "sw"
                                                                     : "direct");
    if (options.ncpus > 1) {
      replay << " --ncpus " << options.ncpus;
    }
    os << FlightRecorderDump(sys.machine().attr(), replay.str());
    result.failure_report = os.str();
  };

  try {
    ExecImage image;
    image.text_pages = kTextPages;
    image.data_pages = kDataPages;
    image.stack_pages = kStackPages;
    const TaskId init = kernel.CreateTask("torture-init");
    kernel.Exec(init, image);
    kernel.SwitchTo(init);
    models.push_back(TaskModel{init, {}});
  } catch (const CheckFailure& failure) {
    fail(0, failure.what());
    export_obs();
    return result;
  }

  for (uint32_t op = 0; op < options.ops && !result.failed; ++op) {
    // SMP: occasionally hop the execution spotlight to another CPU. These draws happen only
    // when ncpus > 1, so a uniprocessor run consumes the identical rng stream as before.
    if (options.ncpus > 1 && rng.Chance(1, 6)) {
      try {
        const uint32_t prev = kernel.current_cpu();
        const uint32_t target = static_cast<uint32_t>(rng.NextBelow(options.ncpus));
        trace.push_back("hop to cpu " + std::to_string(target));
        kernel.SwitchCpu(target);
        if (kernel.current().value == 0) {
          // The CPU is idle: put some task on it (one not running elsewhere), or hop back.
          bool scheduled = false;
          for (const TaskModel& model : models) {
            if (!running_elsewhere(model.id)) {
              kernel.SwitchTo(model.id);
              scheduled = true;
              break;
            }
          }
          if (!scheduled) {
            kernel.SwitchCpu(prev);
          }
        }
      } catch (const CheckFailure& failure) {
        fail(op, failure.what());
        break;
      }
    }
    TaskModel& cur = models[model_index_of(kernel.current())];
    const uint64_t dice = rng.NextBelow(100);
    std::ostringstream op_desc;
    op_desc << "op " << op << " [task " << cur.id.value << "]: ";
    try {
      if (dice < 35) {
        const EffAddr ea = pick_page(cur, /*must_be_writable=*/false);
        op_desc << "load 0x" << std::hex << ea.value;
        trace.push_back(op_desc.str());
        kernel.UserTouch(ea, AccessKind::kLoad);
      } else if (dice < 60) {
        const EffAddr ea = pick_page(cur, /*must_be_writable=*/true);
        op_desc << "store 0x" << std::hex << ea.value;
        trace.push_back(op_desc.str());
        kernel.UserTouch(ea, AccessKind::kStore);
      } else if (dice < 70) {
        const uint32_t pages = static_cast<uint32_t>(rng.NextInRange(1, 32));
        op_desc << "mmap " << pages << " pages";
        trace.push_back(op_desc.str());
        const uint32_t start = kernel.Mmap(pages);
        cur.maps.emplace_back(start, pages);
      } else if (dice < 77 && !cur.maps.empty()) {
        const size_t which = rng.NextBelow(cur.maps.size());
        const auto [start, pages] = cur.maps[which];
        op_desc << "munmap 0x" << std::hex << start << std::dec << "+" << pages;
        trace.push_back(op_desc.str());
        kernel.Munmap(start, pages);
        cur.maps.erase(cur.maps.begin() + static_cast<ptrdiff_t>(which));
      } else if (dice < 82 && models.size() < options.max_tasks) {
        op_desc << "fork";
        trace.push_back(op_desc.str());
        const TaskId child = kernel.Fork(cur.id);
        models.push_back(TaskModel{child, cur.maps});
      } else if (dice < 85) {
        op_desc << "exec";
        trace.push_back(op_desc.str());
        ExecImage image;
        image.text_pages = kTextPages;
        image.data_pages = kDataPages;
        image.stack_pages = kStackPages;
        kernel.Exec(cur.id, image);
        cur.maps.clear();
      } else if (dice < 88 && models.size() > 1) {
        size_t victim = rng.NextBelow(models.size());
        if (models[victim].id == kernel.current()) {
          victim = (victim + 1) % models.size();
        }
        op_desc << "exit task " << models[victim].id.value;
        trace.push_back(op_desc.str());
        kernel.Exit(models[victim].id);
        models.erase(models.begin() + static_cast<ptrdiff_t>(victim));
      } else if (dice < 94) {
        const TaskModel& next = models[rng.NextBelow(models.size())];
        if (running_elsewhere(next.id)) {
          // SMP: the task is current on another CPU; switching it in here would double-run
          // it. Never taken at ncpus=1.
          op_desc << "switch to task " << next.id.value << " skipped (busy on another cpu)";
          trace.push_back(op_desc.str());
        } else {
          op_desc << "switch to task " << next.id.value;
          trace.push_back(op_desc.str());
          kernel.SwitchTo(next.id);
        }
      } else {
        const uint32_t budget = static_cast<uint32_t>(rng.NextInRange(500, 5000));
        op_desc << "idle " << budget << " cycles";
        trace.push_back(op_desc.str());
        kernel.RunIdle(Cycles(budget));
      }
      ++result.ops_executed;
      auditor.NoteEvent();
    } catch (const OutOfMemoryError&) {
      // Expected under exhaustion (injected or genuine): recover by giving memory back —
      // drop one of the current task's mappings, else kill another task — and keep going.
      ++result.oom_events;
      trace.push_back("  -> out of memory; recovering");
      try {
        TaskModel& again = models[model_index_of(kernel.current())];
        if (!again.maps.empty()) {
          const auto [start, pages] = again.maps.back();
          kernel.Munmap(start, pages);
          again.maps.pop_back();
        } else if (models.size() > 1) {
          size_t victim = models[0].id == kernel.current() ? 1 : 0;
          kernel.Exit(models[victim].id);
          models.erase(models.begin() + static_cast<ptrdiff_t>(victim));
        }
      } catch (const OutOfMemoryError&) {
        // Even the recovery path hit the wall; the next iteration will try again.
      } catch (const CheckFailure& failure) {
        fail(op, failure.what());
      }
    } catch (const CheckFailure& failure) {
      fail(op, failure.what());
    }
  }

  if (!result.failed) {
    try {
      auditor.Audit();
    } catch (const CheckFailure& failure) {
      fail(options.ops, failure.what());
    }
  }

  kernel.SetFaultInjector(nullptr);
  result.fault_fires = injector.TotalFires();
  result.audit_stats = auditor.stats();
  export_obs();
  return result;
}

}  // namespace ppcmm
