// Cross-checks the three translation tiers the paper's optimizations play against each
// other: the TLBs, the hashed page table, and the per-task Linux PTE trees.
//
// The lazy-flush machinery (§7) is correct only under invariants no single tier can state
// alone: a retired VSID must be unreachable everywhere, a live translation must agree with
// the owning task's PTE tree, and a changed (C) bit must never exist without the matching
// Linux dirty bit. The auditor walks all tiers and throws CheckFailure with a structured
// report (tier, VSID, page, expected vs. found) on the first violation.
//
// Invariants checked, per Audit():
//   1. Every valid TLB entry with a live VSID has an owner (kernel or a task) whose PTE tree
//      maps the page to the same frame with the same writable/cache-inhibited bits.
//   2. A TLB entry's C (changed) bit implies the Linux PTE's dirty bit (dirty never lost).
//   3. Every valid TLB/HTAB entry with a dead VSID is a zombie: unreachable because no live
//      context or kernel segment resolves to that VSID (counted, never an error).
//   4. Same as 1–2 for every valid HTAB PTE, plus hash placement: the entry sits in its
//      primary or secondary PTEG.
//   5. Every CPU's segment registers hold exactly that CPU's current task's VSID image
//      (kernel VSIDs fixed on all CPUs).
//   6. Every task's context is live, and no two live contexts share a VSID.
//   7. Every frame mapped by a user PTE is allocator-owned with refcount >= the number of
//      user mappings observed (I/O aperture frames excepted).
//
// SMP: invariants 1-3 run against every CPU's I/D TLBs. The cross-CPU staleness rule is
// that no CPU may hold a translation invalidated by a COMPLETED shootdown; a CPU still
// marked flush-pending (its shootdown was deferred because it was idle) is exempt — its
// whole TLB is logically invalid and will be wiped at switch-in, so its entries are
// tolerated and counted rather than checked.

#ifndef PPCMM_SRC_VERIFY_COHERENCE_AUDITOR_H_
#define PPCMM_SRC_VERIFY_COHERENCE_AUDITOR_H_

#include <cstdint>

#include "src/kernel/kernel.h"

namespace ppcmm {

// Running totals across audits (instrumentation, not invariants).
struct AuditStats {
  uint64_t audits = 0;
  uint64_t tlb_entries_checked = 0;
  uint64_t htab_entries_checked = 0;
  uint64_t tlb_zombies_seen = 0;
  // Valid entries skipped on flush-pending CPUs: logically invalid, wiped before next use.
  uint64_t tlb_stale_tolerated = 0;
  uint64_t htab_zombies_seen = 0;
  uint64_t pte_mappings_checked = 0;
};

// The auditor. Holds no state about the kernel beyond a reference; every Audit() rebuilds
// its view from scratch, so it can run at any quiescent point (between kernel operations).
class CoherenceAuditor {
 public:
  explicit CoherenceAuditor(Kernel& kernel) : kernel_(kernel) {}

  // Full cross-tier audit; throws CheckFailure with a structured report on any violation.
  void Audit();

  // Every-N-events mode: NoteEvent() runs Audit() on every `period`-th call (0 = manual).
  void SetPeriod(uint64_t period) { period_ = period; }
  void NoteEvent() {
    if (period_ != 0 && ++events_ % period_ == 0) {
      Audit();
    }
  }

  const AuditStats& stats() const { return stats_; }

 private:
  Kernel& kernel_;
  AuditStats stats_;
  uint64_t period_ = 0;
  uint64_t events_ = 0;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_VERIFY_COHERENCE_AUDITOR_H_
