// Fuzz op streams: the weighted random kernel-operation sequences the differential fuzzer
// feeds to the real System and the ReferenceMmu oracle in lockstep.
//
// Encoding is minimizer-first: an op is a kind plus three raw 32-bit operands that are
// interpreted *modulo the oracle's current state* when the op executes (pick the a%n-th
// region, the b%pages-th page, ...). An op that has nothing valid to act on is skipped, not
// an error — so every subsequence of a valid stream is itself valid, which is exactly the
// property greedy delta-debugging needs.

#ifndef PPCMM_SRC_VERIFY_FUZZ_OP_STREAM_H_
#define PPCMM_SRC_VERIFY_FUZZ_OP_STREAM_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ppcmm {

// One kernel-level operation. The operands' meaning per kind is documented in
// ReferenceMmu::Plan, the single place that interprets them.
enum class FuzzOpKind : uint8_t {
  kTouch = 0,     // user load/store/ifetch somewhere in the current task's address space
  kMmap,          // anonymous mmap, length biased to straddle the 20-page flush cutoff
  kMmapFixed,     // MAP_FIXED over an existing mmap region (the §7 remap storm)
  kMunmap,        // unmap part of an mmap region (range flush)
  kFork,          // COW fork of the current task
  kExit,          // exit a non-current task
  kExec,          // fresh image into some task (whole-context flush)
  kSwitch,        // context switch
  kTlbie,         // tlbie one currently-mapped page
  kTlbia,         // tlbia (architecturally invisible; the cached state changes radically)
  kFbMap,         // MapFramebuffer() into the current task
  kFbTouch,       // load/store in the framebuffer aperture (BAT path when active)
  kFbBatToggle,   // program/clear the framebuffer DBAT mid-stream (BAT rewrite)
  kIdle,          // idle ticks: zombie reclaim + page zeroing
  kTouchRun,      // batched multi-page access run (UserTouchRun), crossing fault boundaries
  kCpuSwitch,     // SMP: hop the execution spotlight to another CPU (weight 0 in the
                  // standard table — GenerateStream output is unchanged; GenerateSmpStream
                  // mixes it in)
};
inline constexpr uint32_t kNumFuzzOpKinds = 16;

const char* FuzzOpName(FuzzOpKind kind);
// Returns kNumFuzzOpKinds for an unknown name.
FuzzOpKind FuzzOpKindFromName(const std::string& name, bool* ok);

struct FuzzOp {
  FuzzOpKind kind = FuzzOpKind::kTouch;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
};

// A complete stream: the seed is carried along so failure reports and replay files are
// self-describing.
struct FuzzStream {
  uint64_t seed = 0;
  std::vector<FuzzOp> ops;
};

// Generates `op_count` ops with the standard kind weights, operands fully random.
FuzzStream GenerateStream(uint64_t seed, uint32_t op_count);

// SMP variant: the standard weights plus `cpu_switch_weight` of kCpuSwitch (the target CPU
// is op.a modulo ncpus, decoded at apply time). A distinct generator — not a knob on
// GenerateStream — so every existing (seed, op_count) stream stays byte-identical.
FuzzStream GenerateSmpStream(uint64_t seed, uint32_t op_count,
                             uint32_t cpu_switch_weight = 8);

// The mmap length decode shared by generator documentation and the oracle: biased to the
// 19/20/21-page cutoff boundary one time in four, otherwise 1..37 pages.
inline uint32_t DecodeMmapPageCount(uint32_t a, uint32_t b) {
  return (a % 4 == 0) ? 19 + (b % 3) : 1 + (a % 37);
}

// ---- replay files ----
//
// Text format, one op per line:
//   ppcmm-fuzz-replay v1
//   seed 12345
//   touch 17 4 2
//   fork 0 0 0
// Blank lines and lines starting with '#' are ignored.

std::string SerializeStream(const FuzzStream& stream);
// Returns false (and fills *error) on any malformed line.
bool ParseStream(const std::string& text, FuzzStream* out, std::string* error);

// ---- coverage accounting ----

// Per-kind executed/skipped tallies. "Skipped" means the op's operands had nothing valid to
// act on in the oracle state at that point (e.g. munmap with no mmap regions) — tracked so
// a stream that silently degenerates to touches is visible.
struct OpCoverage {
  std::array<uint64_t, kNumFuzzOpKinds> executed{};
  std::array<uint64_t, kNumFuzzOpKinds> skipped{};

  void Note(FuzzOpKind kind, bool was_skipped) {
    (was_skipped ? skipped : executed)[static_cast<uint32_t>(kind)]++;
  }
  void Merge(const OpCoverage& other) {
    for (uint32_t i = 0; i < kNumFuzzOpKinds; ++i) {
      executed[i] += other.executed[i];
      skipped[i] += other.skipped[i];
    }
  }
  // Human-readable table: one line per kind with executed/skipped counts.
  std::string Report() const;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_VERIFY_FUZZ_OP_STREAM_H_
