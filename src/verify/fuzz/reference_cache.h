// Trivially-correct reference model of one set-associative cache.
//
// Part of the shared oracle layer under src/verify/fuzz/: deliberately slow, obviously
// correct, and sharing zero code with the real models in src/sim/. The LRU discipline is a
// std::list per set with the most-recently-used line at the back — exactly the textbook
// description, with none of the real Cache's indexing or stamp tricks. Promoted out of
// tests/reference_model_test.cc so the model-based unit tests and the differential fuzzer
// check the same reference.

#ifndef PPCMM_SRC_VERIFY_FUZZ_REFERENCE_CACHE_H_
#define PPCMM_SRC_VERIFY_FUZZ_REFERENCE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>

#include "src/sim/machine_config.h"
#include "src/sim/phys_addr.h"

namespace ppcmm {

// Reference cache: a map of (set -> LRU list of resident lines).
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheGeometry& geometry) : geometry_(geometry) {}

  // Returns true on hit; mirrors LRU with invalid-way preference via eviction on overflow.
  bool Access(PhysAddr pa) {
    const uint64_t line = pa.value / geometry_.line_bytes;
    const uint32_t set = static_cast<uint32_t>(line & (geometry_.NumSets() - 1));
    std::list<uint64_t>& lru = sets_[set];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == line) {
        lru.erase(it);
        lru.push_back(line);  // most recent at the back
        return true;
      }
    }
    lru.push_back(line);
    if (lru.size() > geometry_.associativity) {
      lru.pop_front();
    }
    return false;
  }

  bool Contains(PhysAddr pa) const {
    const uint64_t line = pa.value / geometry_.line_bytes;
    const uint32_t set = static_cast<uint32_t>(line & (geometry_.NumSets() - 1));
    auto it = sets_.find(set);
    if (it == sets_.end()) {
      return false;
    }
    for (const uint64_t resident : it->second) {
      if (resident == line) {
        return true;
      }
    }
    return false;
  }

 private:
  CacheGeometry geometry_;
  std::map<uint32_t, std::list<uint64_t>> sets_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_VERIFY_FUZZ_REFERENCE_CACHE_H_
