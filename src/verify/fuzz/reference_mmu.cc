#include "src/verify/fuzz/reference_mmu.h"

#include <algorithm>

#include "src/sim/check.h"

namespace ppcmm {

namespace {

// The user address-space ABI, in effective page numbers. These mirror src/kernel/layout.h
// by value on purpose: the oracle states the contract independently instead of including
// the kernel's header, so a layout regression shows up as a divergence.
constexpr uint32_t kRefTextStartPage = 0x1000;   // kUserTextBase >> 12
constexpr uint32_t kRefDataStartPage = 0x10000;  // kUserDataBase >> 12
constexpr uint32_t kRefStackEndPage = 0x7FFFF;   // kUserStackTop >> 12 (stack grows down)
constexpr uint32_t kRefMmapHintPage = 0x40000;   // kUserMmapBase >> 12

bool IsKind(const RefVmaAttr& attr, RefRegionKind kind) {
  return attr.kind == static_cast<uint8_t>(kind);
}

RefVmaAttr MakeAttr(bool writable, RefRegionKind kind) {
  return RefVmaAttr{.writable = writable, .kind = static_cast<uint8_t>(kind)};
}

}  // namespace

ReferenceMmu::ReferenceMmu(const RefArchConfig& config)
    : config_(config),
      cpu_current_(std::max(1u, config.ncpus), 0),
      fb_first_frame_(config.num_frames - kFbPages),
      fb_content_(kFbPages, 0) {}

uint32_t ReferenceMmu::NonFbVmaPages(const RefTask& t) {
  return t.vmas.TotalPages() - (t.fb_mapped ? kFbPages : 0);
}

uint32_t ReferenceMmu::TotalUserPages() const {
  uint32_t total = 0;
  for (const auto& [id, t] : tasks_) {
    total += NonFbVmaPages(t);
  }
  return total;
}

void ReferenceMmu::InstallImage(RefTask& t, uint32_t text, uint32_t data, uint32_t stack) {
  t.vmas.Insert(kRefTextStartPage, text, MakeAttr(false, RefRegionKind::kText));
  t.vmas.Insert(kRefDataStartPage, data, MakeAttr(true, RefRegionKind::kData));
  t.vmas.Insert(kRefStackEndPage - stack, stack, MakeAttr(true, RefRegionKind::kStack));
}

void ReferenceMmu::Boot(uint32_t task_id, uint32_t text_pages, uint32_t data_pages,
                        uint32_t stack_pages) {
  PPCMM_CHECK_MSG(tasks_.empty(), "oracle Boot() called twice");
  RefTask t;
  t.id = task_id;
  InstallImage(t, text_pages, data_pages, stack_pages);
  tasks_.emplace(task_id, std::move(t));
  current_ = task_id;
  cpu_current_[current_cpu_] = task_id;
  next_task_id_ = task_id + 1;
}

ExpectedStep ReferenceMmu::Plan(const FuzzOp& op, uint32_t op_index) {
  PPCMM_CHECK_MSG(!tasks_.empty(), "oracle Plan() before Boot()");
  ExpectedStep step;
  step.kind = op.kind;
  switch (op.kind) {
    case FuzzOpKind::kTouch:
      PlanTouch(op, op_index, step);
      break;
    case FuzzOpKind::kTouchRun:
      PlanTouchRun(op, op_index, step);
      break;
    case FuzzOpKind::kMmap:
      PlanMmap(op, step);
      break;
    case FuzzOpKind::kMmapFixed:
      PlanMmapFixed(op, step);
      break;
    case FuzzOpKind::kMunmap:
      PlanMunmap(op, step);
      break;
    case FuzzOpKind::kFork:
      PlanFork(step);
      break;
    case FuzzOpKind::kExit:
      PlanExit(op, step);
      break;
    case FuzzOpKind::kExec:
      PlanExec(op, step);
      break;
    case FuzzOpKind::kSwitch:
      PlanSwitch(op, step);
      break;
    case FuzzOpKind::kCpuSwitch:
      PlanCpuSwitch(op, step);
      break;
    case FuzzOpKind::kTlbie:
      PlanTlbie(op, step);
      break;
    case FuzzOpKind::kTlbia:
      break;  // architecturally invisible; nothing to predict
    case FuzzOpKind::kFbMap:
      PlanFbMap(step);
      break;
    case FuzzOpKind::kFbTouch:
      PlanFbTouch(op, op_index, step);
      break;
    case FuzzOpKind::kFbBatToggle:
      fb_bat_on_ = !fb_bat_on_;
      step.fb_bat_after = fb_bat_on_;
      break;
    case FuzzOpKind::kIdle:
      step.idle_cycles = 500 + op.a % 4000;
      break;
  }
  return step;
}

void ReferenceMmu::PlanTouch(const FuzzOp& op, uint32_t op_index, ExpectedStep& step) {
  RefTask& cur = Current();
  // Candidate regions: everything except the framebuffer aperture (kFbTouch owns that —
  // its fault accounting depends on the BAT, which this planner deliberately ignores).
  std::vector<ReferenceVmaModel::Region> regions;
  for (const ReferenceVmaModel::Region& r : cur.vmas.Regions()) {
    if (!IsKind(r.attr, RefRegionKind::kFb)) {
      regions.push_back(r);
    }
  }
  if (regions.empty()) {
    step.skip = true;
    step.skip_reason = "no touchable regions";
    return;
  }
  const ReferenceVmaModel::Region& r = regions[op.a % regions.size()];
  step.page = r.start + op.b % r.pages;
  switch (op.c % 3) {
    case 0:
      step.access = AccessKind::kLoad;
      break;
    case 1:
      step.access = AccessKind::kStore;
      break;
    default:
      step.access = AccessKind::kInstructionFetch;
      break;
  }
  if (step.access == AccessKind::kStore && !r.attr.writable) {
    // A store to a genuinely read-only mapping is a kernel CheckFailure by design (there
    // is no signal delivery in this kernel); downgrade rather than model it.
    step.access = AccessKind::kLoad;
  }
  step.offset = ((op.c >> 4) % 64) * 64;  // word-aligned, < kPageSize

  const bool is_store = step.access == AccessKind::kStore;
  auto it = cur.pages.find(step.page);
  if (it == cur.pages.end()) {
    // Demand fault: the kernel installs the page with the VMA's protection and a zeroed
    // frame, charging exactly one page fault to the task.
    step.expect_page_faults = 1;
    RefPage p;
    p.writable = r.attr.writable;
    p.stored = is_store;
    it = cur.pages.emplace(step.page, p).first;
  } else if (is_store && !it->second.writable) {
    // Present but write-protected in a writable region: must be COW. One COW fault
    // breaks the share; the task ends up with a private writable copy.
    PPCMM_CHECK_MSG(it->second.cow, "oracle invariant: non-writable page must be cow");
    step.expect_cow_faults = 1;
    it->second.writable = true;
    it->second.cow = false;
    it->second.stored = true;
  } else if (is_store) {
    it->second.stored = true;
  }
  if (step.access == AccessKind::kInstructionFetch) {
    return;  // an ifetch neither reads nor writes the token word
  }
  if (is_store) {
    step.write_token = true;
    step.token = TokenFor(op_index, cur.id, step.page);
    it->second.token = step.token;
  } else {
    step.check_token = true;
    step.token = it->second.token;
  }
}

void ReferenceMmu::PlanTouchRun(const FuzzOp& op, uint32_t op_index, ExpectedStep& step) {
  RefTask& cur = Current();
  // Same candidate set as PlanTouch: every region except the framebuffer aperture.
  std::vector<ReferenceVmaModel::Region> regions;
  for (const ReferenceVmaModel::Region& r : cur.vmas.Regions()) {
    if (!IsKind(r.attr, RefRegionKind::kFb)) {
      regions.push_back(r);
    }
  }
  if (regions.empty()) {
    step.skip = true;
    step.skip_reason = "no touchable regions";
    return;
  }
  const ReferenceVmaModel::Region& r = regions[op.a % regions.size()];
  const uint32_t first = r.start + op.b % r.pages;
  const uint32_t max_pages = r.start + r.pages - first;
  const uint32_t pages = 1 + op.c % std::min(max_pages, 8u);
  step.page = first;
  step.page_count = pages;
  // Loads or stores only: a run's accesses all share one kind, and ifetch runs add no
  // coverage the per-page kTouch ifetch doesn't already have.
  step.access = (op.c >> 8) % 2 == 0 ? AccessKind::kLoad : AccessKind::kStore;
  if (step.access == AccessKind::kStore && !r.attr.writable) {
    step.access = AccessKind::kLoad;  // same downgrade as PlanTouch (no signals here)
  }
  step.offset = ((op.c >> 4) % 16) * 64;
  step.run_stride = 1u << (2 + (op.b >> 16) % 9);  // 4..1024 bytes; always enters each page
  const uint32_t total_bytes = pages * kPageSize - step.offset;
  step.run_count = (total_bytes - 1) / step.run_stride + 1;

  // Page-granular architectural effects, applied in run order: absent pages demand-fault
  // as the run first enters them; COW pages break mid-run on store runs. This is exactly
  // the "crossing flush/COW boundaries mid-run" shape the batched path must survive.
  const bool is_store = step.access == AccessKind::kStore;
  for (uint32_t p = first; p < first + pages; ++p) {
    auto it = cur.pages.find(p);
    if (it == cur.pages.end()) {
      ++step.expect_page_faults;
      RefPage pg;
      pg.writable = r.attr.writable;
      pg.stored = is_store;
      it = cur.pages.emplace(p, pg).first;
    } else if (is_store && !it->second.writable) {
      PPCMM_CHECK_MSG(it->second.cow, "oracle invariant: non-writable page must be cow");
      ++step.expect_cow_faults;
      it->second.writable = true;
      it->second.cow = false;
      it->second.stored = true;
    } else if (is_store) {
      it->second.stored = true;
    }
    if (is_store) {
      it->second.token = TokenFor(op_index, cur.id, p);
    }
    step.run_tokens.push_back(it->second.token);
  }
  step.write_token = is_store;
  step.check_token = !is_store;
}

void ReferenceMmu::PlanMmap(const FuzzOp& op, ExpectedStep& step) {
  RefTask& cur = Current();
  const uint32_t pages = DecodeMmapPageCount(op.a, op.b);
  if (TotalUserPages() + pages > kVmaPageBudget) {
    step.skip = true;
    step.skip_reason = "vma page budget";
    return;
  }
  step.kind = FuzzOpKind::kMmap;  // kMmapFixed falls back here when it has no region
  step.fixed = false;
  step.page_count = pages;
  step.start_page = cur.vmas.FindFreeRange(kRefMmapHintPage, pages);
  cur.vmas.Insert(step.start_page, pages, MakeAttr(true, RefRegionKind::kMmap));
}

void ReferenceMmu::PlanMmapFixed(const FuzzOp& op, ExpectedStep& step) {
  RefTask& cur = Current();
  std::vector<ReferenceVmaModel::Region> mmaps;
  for (const ReferenceVmaModel::Region& r : cur.vmas.Regions()) {
    if (IsKind(r.attr, RefRegionKind::kMmap)) {
      mmaps.push_back(r);
    }
  }
  if (mmaps.empty()) {
    PlanMmap(op, step);  // nothing to remap over yet; behave as a plain mmap
    return;
  }
  const ReferenceVmaModel::Region& r = mmaps[op.a % mmaps.size()];
  const uint32_t start = r.start + op.b % r.pages;
  const uint32_t pages = 1 + op.c % 24;
  if (TotalUserPages() + pages > kVmaPageBudget) {
    step.skip = true;
    step.skip_reason = "vma page budget";
    return;
  }
  step.fixed = true;
  step.start_page = start;
  step.page_count = pages;
  // MAP_FIXED semantics: whatever overlaps [start, start+pages) is unmapped first, its
  // pages gone for good; then a fresh anonymous writable region appears.
  cur.vmas.Remove(start, pages);
  cur.pages.erase(cur.pages.lower_bound(start), cur.pages.lower_bound(start + pages));
  cur.vmas.Insert(start, pages, MakeAttr(true, RefRegionKind::kMmap));
}

void ReferenceMmu::PlanMunmap(const FuzzOp& op, ExpectedStep& step) {
  RefTask& cur = Current();
  std::vector<ReferenceVmaModel::Region> mmaps;
  for (const ReferenceVmaModel::Region& r : cur.vmas.Regions()) {
    if (IsKind(r.attr, RefRegionKind::kMmap)) {
      mmaps.push_back(r);
    }
  }
  if (mmaps.empty()) {
    step.skip = true;
    step.skip_reason = "no mmap regions";
    return;
  }
  const ReferenceVmaModel::Region& r = mmaps[op.a % mmaps.size()];
  step.start_page = r.start + op.b % r.pages;
  step.page_count = 1 + op.c % (r.start + r.pages - step.start_page);
  cur.vmas.Remove(step.start_page, step.page_count);
  cur.pages.erase(cur.pages.lower_bound(step.start_page),
                  cur.pages.lower_bound(step.start_page + step.page_count));
}

void ReferenceMmu::PlanFork(ExpectedStep& step) {
  RefTask& parent = Current();
  if (tasks_.size() >= kMaxLiveTasks) {
    step.skip = true;
    step.skip_reason = "task cap";
    return;
  }
  if (TotalUserPages() + NonFbVmaPages(parent) > kVmaPageBudget) {
    step.skip = true;
    step.skip_reason = "vma page budget";
    return;
  }
  step.target_task = next_task_id_++;
  RefTask child = parent;  // deep copy: vmas, pages, fb_mapped
  child.id = step.target_task;
  // Every writable present page becomes COW on both sides. Framebuffer pages are I/O
  // frames: physically shared outright, never COW'd, both sides keep write access.
  for (auto& [page, p] : parent.pages) {
    if (IsFbPage(page) || !p.writable) {
      continue;  // read-only and already-COW pages just gain a sharer
    }
    p.writable = false;
    p.cow = true;
    RefPage& cp = child.pages.at(page);
    cp.writable = false;
    cp.cow = true;
  }
  tasks_.emplace(child.id, std::move(child));
}

void ReferenceMmu::PlanExit(const FuzzOp& op, ExpectedStep& step) {
  std::vector<uint32_t> candidates;
  for (const auto& [id, t] : tasks_) {
    if (id != current_) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) {
    step.skip = true;
    step.skip_reason = "no non-current task";
    return;
  }
  step.target_task = candidates[op.a % candidates.size()];
  tasks_.erase(step.target_task);
  // Exiting a task current on another CPU leaves that CPU idle (the kernel does the same).
  for (uint32_t& on_cpu : cpu_current_) {
    if (on_cpu == step.target_task) {
      on_cpu = 0;
    }
  }
}

void ReferenceMmu::PlanExec(const FuzzOp& op, ExpectedStep& step) {
  // A task current on another CPU cannot exec: exec reloads the executing CPU's segment
  // registers, and a cross-CPU exec would leave the remote CPU resolving through stale
  // segments. Real kernels have the same shape — execve runs on the task's own CPU.
  // Always every task at ncpus=1.
  std::vector<uint32_t> ids;
  for (const auto& [id, t] : tasks_) {
    if (!RunningElsewhere(id)) {
      ids.push_back(id);
    }
  }
  RefTask& t = tasks_.at(ids[op.a % ids.size()]);
  step.target_task = t.id;
  step.exec_text = 1 + op.b % 12;
  step.exec_data = 1 + op.c % 12;
  step.exec_stack = 1 + (op.a >> 8) % 4;
  const uint32_t new_pages = step.exec_text + step.exec_data + step.exec_stack;
  if (TotalUserPages() - NonFbVmaPages(t) + new_pages > kVmaPageBudget) {
    step.skip = true;
    step.skip_reason = "vma page budget";
    return;
  }
  // Exec wipes the whole address space, framebuffer mapping included. The DBAT is a
  // global register, not address-space state: it survives (fb_bat_on_ untouched).
  t.pages.clear();
  t.vmas.Clear();
  t.fb_mapped = false;
  InstallImage(t, step.exec_text, step.exec_data, step.exec_stack);
}

void ReferenceMmu::PlanSwitch(const FuzzOp& op, ExpectedStep& step) {
  // Tasks current on another CPU are excluded: a task runs on at most one CPU at a time.
  // At ncpus=1 the candidate list is every task, exactly as before.
  std::vector<uint32_t> ids;
  for (const auto& [id, t] : tasks_) {
    if (!RunningElsewhere(id)) {
      ids.push_back(id);
    }
  }
  step.target_task = ids[op.a % ids.size()];  // switching to the current task is legal
  current_ = step.target_task;
  cpu_current_[current_cpu_] = current_;
}

void ReferenceMmu::PlanCpuSwitch(const FuzzOp& op, ExpectedStep& step) {
  const uint32_t ncpus = static_cast<uint32_t>(cpu_current_.size());
  if (ncpus <= 1) {
    step.skip = true;
    step.skip_reason = "uniprocessor";
    return;
  }
  const uint32_t target = op.a % ncpus;
  if (target == current_cpu_) {
    step.skip = true;
    step.skip_reason = "already on that cpu";
    return;
  }
  step.target_cpu = target;
  if (cpu_current_[target] == 0) {
    // The target CPU is idle. The runner must put a task on it (ops always run against a
    // current task), so plan a switch-in too — any task not current on some other CPU.
    std::vector<uint32_t> candidates;
    for (const auto& [id, t] : tasks_) {
      bool busy_elsewhere = false;
      for (uint32_t cpu = 0; cpu < ncpus; ++cpu) {
        if (cpu != target && cpu_current_[cpu] == id) {
          busy_elsewhere = true;
          break;
        }
      }
      if (!busy_elsewhere) {
        candidates.push_back(id);
      }
    }
    if (candidates.empty()) {
      step.skip = true;
      step.skip_reason = "no schedulable task for the idle cpu";
      return;
    }
    step.target_task = candidates[op.b % candidates.size()];
    cpu_current_[target] = step.target_task;
  }
  current_cpu_ = target;
  current_ = cpu_current_[target];
}

void ReferenceMmu::PlanTlbie(const FuzzOp& op, ExpectedStep& step) {
  RefTask& cur = Current();
  if (cur.pages.empty()) {
    step.skip = true;
    step.skip_reason = "no present pages";
    return;
  }
  auto it = cur.pages.begin();
  std::advance(it, op.a % cur.pages.size());
  step.start_page = it->first;  // architecturally invisible: the reload path restores it
}

void ReferenceMmu::PlanFbMap(ExpectedStep& step) {
  RefTask& cur = Current();
  if (cur.fb_mapped) {
    step.skip = true;
    step.skip_reason = "framebuffer already mapped";
    return;
  }
  cur.fb_mapped = true;
  cur.vmas.Insert(kFbStartPage, kFbPages, MakeAttr(true, RefRegionKind::kFb));
  fb_bat_on_ = fb_bat_on_ || config_.framebuffer_bat;
  step.start_page = kFbStartPage;
  step.fb_bat_after = fb_bat_on_;
}

void ReferenceMmu::PlanFbTouch(const FuzzOp& op, uint32_t op_index, ExpectedStep& step) {
  RefTask& cur = Current();
  if (!fb_bat_on_ && !cur.fb_mapped) {
    step.skip = true;
    step.skip_reason = "framebuffer unreachable";
    return;
  }
  const uint32_t idx = op.a % kFbPages;
  step.page = kFbStartPage + idx;
  step.access = (op.b % 2 == 0) ? AccessKind::kLoad : AccessKind::kStore;
  step.offset = ((op.b >> 4) % 64) * 64;
  step.via_bat = fb_bat_on_;  // the DBAT wins over any PTE for the aperture
  step.expect_exact_frame = true;
  step.expect_frame = fb_first_frame_ + idx;
  if (!step.via_bat) {
    // PTE path: demand faults apply exactly as for anonymous memory, except the frame is
    // the fixed aperture frame and its content is shared globally.
    auto it = cur.pages.find(step.page);
    if (it == cur.pages.end()) {
      step.expect_page_faults = 1;
      RefPage p;
      p.writable = true;
      p.stored = step.access == AccessKind::kStore;
      cur.pages.emplace(step.page, p);
    } else if (step.access == AccessKind::kStore) {
      it->second.stored = true;
    }
  }
  if (step.access == AccessKind::kStore) {
    step.write_token = true;
    step.token = TokenFor(op_index, cur.id, step.page);
    fb_content_[idx] = step.token;
  } else {
    step.check_token = true;
    step.token = fb_content_[idx];
  }
}

}  // namespace ppcmm
