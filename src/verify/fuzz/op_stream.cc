#include "src/verify/fuzz/op_stream.h"

#include <sstream>

#include "src/sim/rng.h"

namespace ppcmm {

namespace {

struct KindInfo {
  FuzzOpKind kind;
  const char* name;
  uint32_t weight;
};

// Touches dominate (they are where divergences *surface*); the structural ops are frequent
// enough that a 10k-op stream exercises each one hundreds of times.
constexpr KindInfo kKinds[kNumFuzzOpKinds] = {
    {FuzzOpKind::kTouch, "touch", 50},
    {FuzzOpKind::kMmap, "mmap", 8},
    {FuzzOpKind::kMmapFixed, "mmap_fixed", 3},
    {FuzzOpKind::kMunmap, "munmap", 6},
    {FuzzOpKind::kFork, "fork", 3},
    {FuzzOpKind::kExit, "exit", 2},
    {FuzzOpKind::kExec, "exec", 2},
    {FuzzOpKind::kSwitch, "switch", 8},
    {FuzzOpKind::kTlbie, "tlbie", 3},
    {FuzzOpKind::kTlbia, "tlbia", 2},
    {FuzzOpKind::kFbMap, "fb_map", 2},
    {FuzzOpKind::kFbTouch, "fb_touch", 6},
    {FuzzOpKind::kFbBatToggle, "fb_bat_toggle", 2},
    {FuzzOpKind::kIdle, "idle", 3},
    {FuzzOpKind::kTouchRun, "touch_run", 8},
    // Weight 0: never drawn by GenerateStream, so pre-SMP (seed, op_count) pairs produce
    // byte-identical streams. GenerateSmpStream adds its weight separately.
    {FuzzOpKind::kCpuSwitch, "cpu_switch", 0},
};

uint32_t TotalWeight() {
  uint32_t total = 0;
  for (const KindInfo& info : kKinds) {
    total += info.weight;
  }
  return total;
}

}  // namespace

const char* FuzzOpName(FuzzOpKind kind) {
  for (const KindInfo& info : kKinds) {
    if (info.kind == kind) {
      return info.name;
    }
  }
  return "?";
}

FuzzOpKind FuzzOpKindFromName(const std::string& name, bool* ok) {
  for (const KindInfo& info : kKinds) {
    if (name == info.name) {
      *ok = true;
      return info.kind;
    }
  }
  *ok = false;
  return FuzzOpKind::kTouch;
}

namespace {

FuzzStream GenerateWithExtraCpuSwitchWeight(uint64_t seed, uint32_t op_count,
                                            uint32_t cpu_switch_weight) {
  FuzzStream stream;
  stream.seed = seed;
  stream.ops.reserve(op_count);
  Rng rng(seed);
  const uint32_t total_weight = TotalWeight() + cpu_switch_weight;
  for (uint32_t i = 0; i < op_count; ++i) {
    uint32_t pick = static_cast<uint32_t>(rng.NextBelow(total_weight));
    FuzzOpKind kind = FuzzOpKind::kCpuSwitch;  // the trailing extra-weight band
    for (const KindInfo& info : kKinds) {
      if (pick < info.weight) {
        kind = info.kind;
        break;
      }
      pick -= info.weight;
    }
    stream.ops.push_back(FuzzOp{.kind = kind,
                                .a = static_cast<uint32_t>(rng.Next()),
                                .b = static_cast<uint32_t>(rng.Next()),
                                .c = static_cast<uint32_t>(rng.Next())});
  }
  return stream;
}

}  // namespace

FuzzStream GenerateStream(uint64_t seed, uint32_t op_count) {
  return GenerateWithExtraCpuSwitchWeight(seed, op_count, 0);
}

FuzzStream GenerateSmpStream(uint64_t seed, uint32_t op_count, uint32_t cpu_switch_weight) {
  return GenerateWithExtraCpuSwitchWeight(seed, op_count, cpu_switch_weight);
}

std::string SerializeStream(const FuzzStream& stream) {
  std::ostringstream oss;
  oss << "ppcmm-fuzz-replay v1\n";
  oss << "seed " << stream.seed << "\n";
  for (const FuzzOp& op : stream.ops) {
    oss << FuzzOpName(op.kind) << " " << op.a << " " << op.b << " " << op.c << "\n";
  }
  return oss.str();
}

bool ParseStream(const std::string& text, FuzzStream* out, std::string* error) {
  std::istringstream iss(text);
  std::string line;
  FuzzStream stream;
  bool saw_header = false;
  uint32_t line_no = 0;
  while (std::getline(iss, line)) {
    ++line_no;
    // Trim trailing CR (files may arrive with DOS endings).
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (!saw_header) {
      if (line != "ppcmm-fuzz-replay v1") {
        *error = "line 1: expected header 'ppcmm-fuzz-replay v1'";
        return false;
      }
      saw_header = true;
      continue;
    }
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word == "seed") {
      if (!(ls >> stream.seed)) {
        *error = "line " + std::to_string(line_no) + ": malformed seed";
        return false;
      }
      continue;
    }
    bool ok = false;
    FuzzOp op;
    op.kind = FuzzOpKindFromName(word, &ok);
    if (!ok) {
      *error = "line " + std::to_string(line_no) + ": unknown op '" + word + "'";
      return false;
    }
    if (!(ls >> op.a >> op.b >> op.c)) {
      *error = "line " + std::to_string(line_no) + ": expected three operands after '" +
               word + "'";
      return false;
    }
    stream.ops.push_back(op);
  }
  if (!saw_header) {
    *error = "empty input (no header)";
    return false;
  }
  *out = std::move(stream);
  return true;
}

std::string OpCoverage::Report() const {
  std::ostringstream oss;
  oss << "op coverage (executed / skipped):\n";
  for (const KindInfo& info : kKinds) {
    const uint32_t i = static_cast<uint32_t>(info.kind);
    oss << "  " << info.name;
    for (size_t pad = std::string(info.name).size(); pad < 14; ++pad) {
      oss << ' ';
    }
    oss << executed[i] << " / " << skipped[i] << "\n";
  }
  return oss.str();
}

}  // namespace ppcmm
