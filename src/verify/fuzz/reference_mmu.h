// The architectural reference oracle of the differential fuzzer.
//
// A deliberately slow, obviously-correct model of what the paper's MMU tricks must
// preserve: which pages each task can reach, with what permissions, backed by what content,
// and how many faults each access architecturally takes. It shares zero code with src/mmu/
// and src/kernel/ — address spaces are per-page maps (ReferenceVmaModel), page content is a
// 32-bit token per page, and there is no TLB, no HTAB, no VSID, no flush strategy at all.
// That absence is the point: §7's zombie PTEs, deferred C bits, BAT rewrites and reload
// strategies are exactly the state the oracle says must be *invisible*.
//
// The oracle consumes the same FuzzOp stream as the real System. Plan() interprets an op
// against the current oracle state (operands are taken modulo whatever exists — see
// op_stream.h), applies it to the oracle, and returns an ExpectedStep telling the
// differential runner what to execute against the real kernel and what to assert:
// fault counts, returned start pages, translated frames, and memory tokens.
//
// See DESIGN.md §11 for the full semantics contract ("architecturally equal").

#ifndef PPCMM_SRC_VERIFY_FUZZ_REFERENCE_MMU_H_
#define PPCMM_SRC_VERIFY_FUZZ_REFERENCE_MMU_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/sim/addr.h"
#include "src/verify/fuzz/op_stream.h"
#include "src/verify/fuzz/reference_vma.h"

namespace ppcmm {

// The only configuration the oracle is allowed to know about. Everything else in
// OptimizationConfig must be architecturally invisible.
struct RefArchConfig {
  // §5.1 extension: MapFramebuffer() also programs the user-visible DBAT.
  bool framebuffer_bat = false;
  // Effective eager C-bit marking (eager_dirty_marking || lazy_context_flush): decides
  // whether a Linux dirty bit may exist without an architectural store (over-reporting,
  // the §7 trade) or must imply one.
  bool eager_dirty_marking = false;
  uint32_t num_frames = 8192;  // 32 MB
  // Simulated CPUs. The oracle has no TLBs, so all it models is per-CPU current tasks:
  // which task the spotlight finds on each CPU, and that a task never runs on two at once.
  // Everything the per-CPU TLBs cache must remain architecturally invisible.
  uint32_t ncpus = 1;
};

// Region tags stored in RefVmaAttr::kind.
enum class RefRegionKind : uint8_t { kText = 1, kData, kStack, kMmap, kFb };

// One architecturally-present page of a task.
struct RefPage {
  bool writable = false;
  bool cow = false;     // write-protected only because the frame is shared post-fork
  bool stored = false;  // an architectural store has hit this page since it was installed
  uint32_t token = 0;   // expected content of the page's first word (0 = demand-zero)
};

// One task, as the oracle sees it.
struct RefTask {
  uint32_t id = 0;
  ReferenceVmaModel vmas;
  std::map<uint32_t, RefPage> pages;  // page number -> state; == the present PTEs
  bool fb_mapped = false;             // MapFramebuffer() done (and not wiped by exec)
};

// What the differential runner must do for one op, and what it must assert afterwards.
struct ExpectedStep {
  bool skip = false;
  const char* skip_reason = "";
  FuzzOpKind kind = FuzzOpKind::kTouch;

  // kTouch / kFbTouch
  uint32_t page = 0;    // effective page number touched
  uint32_t offset = 0;  // byte offset of the touch within the page
  AccessKind access = AccessKind::kLoad;
  uint32_t expect_page_faults = 0;  // delta of the current task's obs.page_faults
  uint32_t expect_cow_faults = 0;   // delta of the current task's obs.cow_faults
  bool write_token = false;         // store: write `token` to the page's first word
  bool check_token = false;         // load: the page's first word must equal `token`
  uint32_t token = 0;
  bool expect_exact_frame = false;  // framebuffer pages translate to a fixed frame
  uint32_t expect_frame = 0;
  bool via_bat = false;  // the access resolves through the framebuffer DBAT (no PTE)

  // kMmap / kMmapFixed / kMunmap / kFbMap / kTlbie (start_page = page to invalidate)
  uint32_t start_page = 0;  // mmap/fb_map: the value the kernel call must return
  uint32_t page_count = 0;
  bool fixed = false;

  // kFork (expected child id) / kExit / kExec / kSwitch
  uint32_t target_task = 0;
  uint32_t exec_text = 0, exec_data = 0, exec_stack = 0;

  // kCpuSwitch: hop to target_cpu; when target_task != 0 the CPU was idle and the runner
  // must also switch that task in there.
  uint32_t target_cpu = 0;

  // kFbBatToggle
  bool fb_bat_after = false;

  // kIdle
  uint32_t idle_cycles = 0;

  // kTouchRun (also uses page/offset/access and the fault deltas; page_count pages)
  uint32_t run_stride = 0;           // bytes between accesses
  uint32_t run_count = 0;            // accesses in the run
  std::vector<uint32_t> run_tokens;  // per page: expected (load) / to-write (store)
};

// The oracle proper.
class ReferenceMmu {
 public:
  // Framebuffer aperture, in effective page numbers.
  static constexpr uint32_t kFbStartPage = 0x80000;
  static constexpr uint32_t kFbPages = 512;
  // Structural caps that make resource exhaustion unreachable (the fuzzer checks
  // architecture, not OOM recovery — the torture harness owns that).
  static constexpr uint32_t kMaxLiveTasks = 5;
  static constexpr uint32_t kVmaPageBudget = 2500;  // non-framebuffer VMA pages, all tasks

  explicit ReferenceMmu(const RefArchConfig& config);

  // Installs the boot task: `task_id` must be the TaskId the kernel's CreateTask returned
  // (the oracle mirrors the kernel's monotonic id counter from here on).
  void Boot(uint32_t task_id, uint32_t text_pages, uint32_t data_pages, uint32_t stack_pages);

  // Interprets `op` against the current state, applies it, and returns what the runner must
  // execute and assert. `op_index` feeds the store-token derivation.
  ExpectedStep Plan(const FuzzOp& op, uint32_t op_index);

  // ---- inspection (the runner's full cross-check) ----

  const std::map<uint32_t, RefTask>& tasks() const { return tasks_; }
  uint32_t current() const { return current_; }
  uint32_t current_cpu() const { return current_cpu_; }
  // Task id running on `cpu` (0 = idle). Mirrors Kernel::CurrentOn.
  uint32_t current_on(uint32_t cpu) const { return cpu_current_[cpu]; }
  uint32_t ncpus() const { return static_cast<uint32_t>(cpu_current_.size()); }
  bool fb_bat_on() const { return fb_bat_on_; }
  uint32_t fb_first_frame() const { return fb_first_frame_; }
  // Expected content of the first word of framebuffer page `idx` (global: the aperture's
  // frames are physically shared by every mapping and survive exec/exit).
  uint32_t fb_token(uint32_t idx) const { return fb_content_[idx]; }
  static bool IsFbPage(uint32_t page) {
    return page >= kFbStartPage && page < kFbStartPage + kFbPages;
  }
  const RefArchConfig& config() const { return config_; }

 private:
  static uint32_t TokenFor(uint32_t op_index, uint32_t task_id, uint32_t page) {
    return (op_index * 2654435761u) ^ (task_id * 97u) ^ page ^ 0x5EEDu;
  }
  RefTask& Current() { return tasks_.at(current_); }
  // True when `task_id` is current on a CPU other than current_cpu_: such a task cannot be
  // switched in, exec'd, or scheduled elsewhere. Always false at ncpus=1.
  bool RunningElsewhere(uint32_t task_id) const {
    for (uint32_t cpu = 0; cpu < cpu_current_.size(); ++cpu) {
      if (cpu != current_cpu_ && cpu_current_[cpu] == task_id) {
        return true;
      }
    }
    return false;
  }
  // Non-framebuffer VMA pages of one task / of every task (the budget metric).
  static uint32_t NonFbVmaPages(const RefTask& t);
  uint32_t TotalUserPages() const;
  void InstallImage(RefTask& t, uint32_t text, uint32_t data, uint32_t stack);

  // Per-kind planners (each both fills `step` and applies the op to the oracle).
  void PlanTouch(const FuzzOp& op, uint32_t op_index, ExpectedStep& step);
  void PlanTouchRun(const FuzzOp& op, uint32_t op_index, ExpectedStep& step);
  void PlanMmap(const FuzzOp& op, ExpectedStep& step);
  void PlanMmapFixed(const FuzzOp& op, ExpectedStep& step);
  void PlanMunmap(const FuzzOp& op, ExpectedStep& step);
  void PlanFork(ExpectedStep& step);
  void PlanExit(const FuzzOp& op, ExpectedStep& step);
  void PlanExec(const FuzzOp& op, ExpectedStep& step);
  void PlanSwitch(const FuzzOp& op, ExpectedStep& step);
  void PlanCpuSwitch(const FuzzOp& op, ExpectedStep& step);
  void PlanTlbie(const FuzzOp& op, ExpectedStep& step);
  void PlanFbMap(ExpectedStep& step);
  void PlanFbTouch(const FuzzOp& op, uint32_t op_index, ExpectedStep& step);

  RefArchConfig config_;
  std::map<uint32_t, RefTask> tasks_;
  uint32_t current_ = 0;
  uint32_t current_cpu_ = 0;
  std::vector<uint32_t> cpu_current_;  // task id per CPU (0 = idle); [current_cpu_]==current_
  uint32_t next_task_id_ = 1;  // mirrors the kernel's monotonic CreateTask counter
  bool fb_bat_on_ = false;
  uint32_t fb_first_frame_ = 0;
  std::vector<uint32_t> fb_content_;  // expected first word of each aperture page
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_VERIFY_FUZZ_REFERENCE_MMU_H_
