#include "src/verify/fuzz/differential.h"

#include <deque>
#include <sstream>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/obs/attr/attr_export.h"
#include "src/sim/check.h"
#include "src/verify/coherence_auditor.h"
#include "src/verify/fuzz/reference_mmu.h"
#include "src/verify/torture.h"

namespace ppcmm {

namespace {

constexpr uint32_t kKernelBasePage = kKernelVirtualBase >> kPageShift;

// One line of the failure report's trailing op trace.
std::string OpLine(uint32_t index, const FuzzOp& op) {
  std::ostringstream oss;
  oss << index << ": " << FuzzOpName(op.kind) << " " << op.a << " " << op.b << " " << op.c;
  return oss.str();
}

// Executes one planned step against the real kernel and asserts the oracle's expectations.
void ApplyAndCheck(System& sys, const ExpectedStep& step) {
  Kernel& kernel = sys.kernel();
  switch (step.kind) {
    case FuzzOpKind::kTouch:
    case FuzzOpKind::kFbTouch: {
      Task& cur = kernel.task(kernel.current());
      const uint64_t pf0 = cur.obs.page_faults;
      const uint64_t cf0 = cur.obs.cow_faults;
      kernel.UserTouch(EffAddr::FromPage(step.page, step.offset), step.access);
      PPCMM_CHECK_MSG(cur.obs.page_faults - pf0 == step.expect_page_faults,
                      "page-fault count diverged on page 0x"
                          << std::hex << step.page << std::dec << ": kernel took "
                          << (cur.obs.page_faults - pf0) << ", oracle expected "
                          << step.expect_page_faults);
      PPCMM_CHECK_MSG(cur.obs.cow_faults - cf0 == step.expect_cow_faults,
                      "COW-fault count diverged on page 0x"
                          << std::hex << step.page << std::dec << ": kernel took "
                          << (cur.obs.cow_faults - cf0) << ", oracle expected "
                          << step.expect_cow_faults);
      const EffAddr token_ea = EffAddr::FromPage(step.page);
      const auto pa = sys.mmu().Probe(token_ea, step.access);
      PPCMM_CHECK_MSG(pa.has_value(), "page 0x" << std::hex << step.page
                                                << " untranslatable right after a touch");
      if (!step.via_bat) {
        const auto pte = cur.mm->page_table->LookupQuiet(token_ea);
        PPCMM_CHECK_MSG(pte.has_value() && pte->present,
                        "touched page 0x" << std::hex << step.page << " has no present PTE");
        PPCMM_CHECK_MSG(pte->frame == pa->PageFrame(),
                        "translation disagrees with the PTE tree on page 0x"
                            << std::hex << step.page << ": probe frame " << pa->PageFrame()
                            << ", PTE frame " << pte->frame);
      }
      if (step.expect_exact_frame) {
        PPCMM_CHECK_MSG(pa->PageFrame() == step.expect_frame,
                        "framebuffer page 0x" << std::hex << step.page << " maps frame 0x"
                                              << pa->PageFrame() << ", expected 0x"
                                              << step.expect_frame);
      }
      if (step.write_token) {
        sys.machine().memory().Write32(*pa, step.token);
      }
      if (step.check_token) {
        const uint32_t got = sys.machine().memory().Read32(*pa);
        PPCMM_CHECK_MSG(got == step.token, "page 0x" << std::hex << step.page
                                                     << " content diverged: read 0x" << got
                                                     << ", oracle expected 0x" << step.token);
      }
      break;
    }
    case FuzzOpKind::kTouchRun: {
      Task& cur = kernel.task(kernel.current());
      const uint64_t pf0 = cur.obs.page_faults;
      const uint64_t cf0 = cur.obs.cow_faults;
      kernel.UserTouchRun(EffAddr::FromPage(step.page, step.offset), step.run_stride,
                          step.run_count, step.access);
      PPCMM_CHECK_MSG(cur.obs.page_faults - pf0 == step.expect_page_faults,
                      "page-fault count diverged on run at page 0x"
                          << std::hex << step.page << std::dec << " (" << step.page_count
                          << " pages): kernel took " << (cur.obs.page_faults - pf0)
                          << ", oracle expected " << step.expect_page_faults);
      PPCMM_CHECK_MSG(cur.obs.cow_faults - cf0 == step.expect_cow_faults,
                      "COW-fault count diverged on run at page 0x"
                          << std::hex << step.page << std::dec << " (" << step.page_count
                          << " pages): kernel took " << (cur.obs.cow_faults - cf0)
                          << ", oracle expected " << step.expect_cow_faults);
      for (uint32_t i = 0; i < step.page_count; ++i) {
        const EffAddr token_ea = EffAddr::FromPage(step.page + i);
        const auto pa = sys.mmu().Probe(token_ea, step.access);
        PPCMM_CHECK_MSG(pa.has_value(), "page 0x" << std::hex << (step.page + i)
                                                  << " untranslatable right after a run");
        const auto pte = cur.mm->page_table->LookupQuiet(token_ea);
        PPCMM_CHECK_MSG(pte.has_value() && pte->present,
                        "run page 0x" << std::hex << (step.page + i) << " has no present PTE");
        PPCMM_CHECK_MSG(pte->frame == pa->PageFrame(),
                        "translation disagrees with the PTE tree on run page 0x"
                            << std::hex << (step.page + i) << ": probe frame "
                            << pa->PageFrame() << ", PTE frame " << pte->frame);
        if (step.write_token) {
          sys.machine().memory().Write32(*pa, step.run_tokens[i]);
        } else if (step.check_token) {
          const uint32_t got = sys.machine().memory().Read32(*pa);
          PPCMM_CHECK_MSG(got == step.run_tokens[i],
                          "run page 0x" << std::hex << (step.page + i)
                                        << " content diverged: read 0x" << got
                                        << ", oracle expected 0x" << step.run_tokens[i]);
        }
      }
      break;
    }
    case FuzzOpKind::kMmap:
    case FuzzOpKind::kMmapFixed: {
      MmapOptions options;
      if (step.fixed) {
        options.fixed_page = step.start_page;
      }
      const uint32_t got = kernel.Mmap(step.page_count, options);
      PPCMM_CHECK_MSG(got == step.start_page, "mmap returned page 0x"
                                                  << std::hex << got << ", oracle expected 0x"
                                                  << step.start_page);
      break;
    }
    case FuzzOpKind::kMunmap:
      kernel.Munmap(step.start_page, step.page_count);
      break;
    case FuzzOpKind::kFork: {
      const TaskId child = kernel.Fork(kernel.current());
      PPCMM_CHECK_MSG(child.value == step.target_task,
                      "fork returned task " << child.value << ", oracle expected "
                                            << step.target_task);
      break;
    }
    case FuzzOpKind::kExit:
      kernel.Exit(TaskId{step.target_task});
      break;
    case FuzzOpKind::kExec:
      kernel.Exec(TaskId{step.target_task}, ExecImage{.text_pages = step.exec_text,
                                                      .data_pages = step.exec_data,
                                                      .stack_pages = step.exec_stack});
      break;
    case FuzzOpKind::kSwitch:
      kernel.SwitchTo(TaskId{step.target_task});
      break;
    case FuzzOpKind::kCpuSwitch:
      kernel.SwitchCpu(step.target_cpu);
      if (step.target_task != 0) {
        // The oracle planned a switch-in because the CPU was idle; the kernel must agree.
        PPCMM_CHECK_MSG(kernel.current().value == 0,
                        "cpu " << step.target_cpu << " diverged: kernel has task "
                               << kernel.current().value << " current, oracle expected idle");
        kernel.SwitchTo(TaskId{step.target_task});
      }
      break;
    case FuzzOpKind::kTlbie:
      sys.mmu().TlbInvalidatePage(EffAddr::FromPage(step.start_page));
      break;
    case FuzzOpKind::kTlbia:
      sys.mmu().TlbInvalidateAll();
      break;
    case FuzzOpKind::kFbMap: {
      const uint32_t got = kernel.MapFramebuffer();
      PPCMM_CHECK_MSG(got == step.start_page, "MapFramebuffer returned page 0x"
                                                  << std::hex << got << ", expected 0x"
                                                  << step.start_page);
      PPCMM_CHECK_MSG(kernel.FramebufferBatActive() == step.fb_bat_after,
                      "framebuffer BAT " << (kernel.FramebufferBatActive() ? "active" : "off")
                                         << " after MapFramebuffer, oracle expected "
                                         << (step.fb_bat_after ? "active" : "off"));
      break;
    }
    case FuzzOpKind::kFbBatToggle:
      kernel.SetFramebufferBat(step.fb_bat_after);
      PPCMM_CHECK_MSG(kernel.FramebufferBatActive() == step.fb_bat_after,
                      "framebuffer BAT did not follow SetFramebufferBat("
                          << step.fb_bat_after << ")");
      break;
    case FuzzOpKind::kIdle:
      kernel.RunIdle(Cycles(step.idle_cycles));
      break;
  }
}

// The whole-machine sweep: every oracle-known page must be reachable with the right frame,
// permissions, content and dirty state; everything else must be unreachable; every live
// cached translation must be explainable by the oracle.
void FullCrossCheck(System& sys, const ReferenceMmu& ref, CoherenceAuditor& auditor) {
  auditor.Audit();  // the kernel's own invariants first (TLB/HTAB vs PTE tree, refcounts)

  Kernel& kernel = sys.kernel();
  const bool eager = ref.config().eager_dirty_marking;
  PPCMM_CHECK_MSG(kernel.current().value == ref.current(),
                  "current task diverged: kernel on " << kernel.current().value
                                                      << ", oracle on " << ref.current());
  PPCMM_CHECK_MSG(kernel.current_cpu() == ref.current_cpu(),
                  "current cpu diverged: kernel on " << kernel.current_cpu() << ", oracle on "
                                                     << ref.current_cpu());
  for (uint32_t cpu = 0; cpu < kernel.ncpus(); ++cpu) {
    PPCMM_CHECK_MSG(kernel.CurrentOn(cpu).value == ref.current_on(cpu),
                    "cpu " << cpu << " current task diverged: kernel has "
                           << kernel.CurrentOn(cpu).value << ", oracle has "
                           << ref.current_on(cpu));
  }
  PPCMM_CHECK_MSG(kernel.TaskCount() == ref.tasks().size(),
                  "task count diverged: kernel has " << kernel.TaskCount() << ", oracle has "
                                                     << ref.tasks().size());
  const uint32_t saved_cpu = kernel.current_cpu();
  const TaskId saved = kernel.current();

  for (const auto& [id, rt] : ref.tasks()) {
    PPCMM_CHECK_MSG(kernel.TaskExists(TaskId{id}), "oracle task " << id << " missing");
    // A task current on some CPU is inspected by hopping there (SwitchTo would double-run
    // it); everything else is switched in on the saved CPU. At ncpus=1 this is exactly the
    // old SwitchTo(id) walk.
    uint32_t on_cpu = kernel.ncpus();
    for (uint32_t cpu = 0; cpu < kernel.ncpus(); ++cpu) {
      if (kernel.CurrentOn(cpu).value == id) {
        on_cpu = cpu;
        break;
      }
    }
    kernel.SwitchCpu(on_cpu != kernel.ncpus() ? on_cpu : saved_cpu);
    kernel.SwitchTo(TaskId{id});
    Task& t = kernel.task(TaskId{id});

    PPCMM_CHECK_MSG(t.mm->page_table->PresentCount() == rt.pages.size(),
                    "task " << id << " present-page count diverged: PTE tree has "
                            << t.mm->page_table->PresentCount() << ", oracle has "
                            << rt.pages.size());
    PPCMM_CHECK_MSG(t.mm->vmas.TotalPages() == rt.vmas.TotalPages(),
                    "task " << id << " VMA page total diverged: kernel "
                            << t.mm->vmas.TotalPages() << ", oracle " << rt.vmas.TotalPages());

    for (const auto& [page, rp] : rt.pages) {
      const EffAddr ea = EffAddr::FromPage(page);
      const auto pte = t.mm->page_table->LookupQuiet(ea);
      PPCMM_CHECK_MSG(pte.has_value() && pte->present,
                      "task " << id << ": oracle page 0x" << std::hex << page
                              << " has no present PTE");
      const auto pa = sys.mmu().Probe(ea, AccessKind::kLoad);
      PPCMM_CHECK_MSG(pa.has_value(), "task " << id << ": oracle page 0x" << std::hex << page
                                              << " untranslatable");
      PPCMM_CHECK_MSG(pa->PageFrame() == pte->frame,
                      "task " << id << ": page 0x" << std::hex << page << " probes to frame 0x"
                              << pa->PageFrame() << " but the PTE says 0x" << pte->frame);
      if (ReferenceMmu::IsFbPage(page)) {
        const uint32_t idx = page - ReferenceMmu::kFbStartPage;
        PPCMM_CHECK_MSG(pte->frame == ref.fb_first_frame() + idx,
                        "framebuffer page 0x" << std::hex << page
                                              << " mapped to the wrong frame 0x" << pte->frame);
        PPCMM_CHECK_MSG(sys.machine().memory().Read32(*pa) == ref.fb_token(idx),
                        "framebuffer page 0x" << std::hex << page << " content diverged");
      } else {
        const uint32_t got = sys.machine().memory().Read32(*pa);
        PPCMM_CHECK_MSG(got == rp.token, "task " << id << ": page 0x" << std::hex << page
                                                 << " content diverged: read 0x" << got
                                                 << ", oracle expected 0x" << rp.token);
        PPCMM_CHECK_MSG(pte->writable == rp.writable && pte->cow == rp.cow,
                        "task " << id << ": page 0x" << std::hex << page
                                << " protection diverged: PTE writable=" << pte->writable
                                << " cow=" << pte->cow << ", oracle writable=" << rp.writable
                                << " cow=" << rp.cow);
        // The C-bit contract (§7): an architectural store must always surface as a dirty
        // PTE by the next quiescent point; without eager marking the converse holds too —
        // a dirty bit proves a store happened.
        PPCMM_CHECK_MSG(!rp.stored || pte->dirty,
                        "task " << id << ": page 0x" << std::hex << page
                                << " was stored to but its PTE is clean (lost C bit)");
        if (!eager) {
          PPCMM_CHECK_MSG(!pte->dirty || rp.stored,
                          "task " << id << ": page 0x" << std::hex << page
                                  << " is dirty but was never stored to");
        }
      }
    }

    // §7 zombie unreachability: pages the oracle says are unmapped must not translate, no
    // matter what stale TLB/HTAB state the flush optimizations left behind. Probe the
    // pages hugging every region boundary.
    for (const ReferenceVmaModel::Region& r : rt.vmas.Regions()) {
      const uint32_t probes[2] = {r.start - 1, r.start + r.pages};
      for (const uint32_t gp : probes) {
        if (gp == 0 || gp >= kKernelBasePage) {
          continue;
        }
        if (rt.vmas.Find(gp).has_value()) {
          continue;  // touching region, not a gap
        }
        if (ref.fb_bat_on() && ReferenceMmu::IsFbPage(gp)) {
          continue;  // the BAT translates the whole aperture regardless of VMAs
        }
        PPCMM_CHECK_MSG(!sys.mmu().Probe(EffAddr::FromPage(gp), AccessKind::kLoad).has_value(),
                        "task " << id << ": unmapped page 0x" << std::hex << gp
                                << " still translates (zombie mapping reachable)");
      }
    }
  }

  // Every live cached translation (TLB or HTAB entry whose VSID still resolves) must map a
  // page the oracle knows, to the frame the PTE tree records, with consistent permissions.
  kernel.ForEachLiveTranslation([&](const LiveTranslation& lt) {
    if (lt.is_kernel) {
      return;
    }
    const auto it = ref.tasks().find(lt.owner.value);
    PPCMM_CHECK_MSG(it != ref.tasks().end(),
                    "live translation owned by dead task " << lt.owner.value);
    PPCMM_CHECK_MSG(it->second.pages.count(lt.ea_page) != 0,
                    "task " << lt.owner.value << ": live translation for page 0x" << std::hex
                            << lt.ea_page << " the oracle says is not mapped");
    const auto pte =
        kernel.task(lt.owner).mm->page_table->LookupQuiet(EffAddr::FromPage(lt.ea_page));
    PPCMM_CHECK_MSG(pte.has_value() && pte->present && pte->frame == lt.frame &&
                        pte->writable == lt.writable,
                    "task " << lt.owner.value << ": live translation for page 0x" << std::hex
                            << lt.ea_page << " disagrees with its PTE");
    PPCMM_CHECK_MSG(!lt.changed || pte->dirty, "task " << lt.owner.value
                                                       << ": changed translation for page 0x"
                                                       << std::hex << lt.ea_page
                                                       << " but the PTE is clean");
  });

  kernel.SwitchCpu(saved_cpu);
  kernel.SwitchTo(saved);
}

}  // namespace

std::vector<FuzzPreset> FuzzPresets() {
  std::vector<FuzzPreset> presets = {
      {"baseline", OptimizationConfig::Baseline()},
      {"bat", OptimizationConfig::OnlyBatMapping()},
      {"scatter", OptimizationConfig::OnlyTunedScatter()},
      {"fast_handlers", OptimizationConfig::OnlyFastHandlers()},
      {"direct_reload", OptimizationConfig::OnlyDirectReload()},
      {"lazy_flush", OptimizationConfig::OnlyLazyFlush(20)},
      {"idle_reclaim", OptimizationConfig::OnlyIdleReclaim()},
      {"uncached_pt", OptimizationConfig::OnlyUncachedPageTables()},
      {"idle_zero", OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kUncachedWithList)},
      {"all", OptimizationConfig::AllOptimizations()},
      {"all_uncached_pt", OptimizationConfig::AllPlusUncachedPageTables()},
  };
  OptimizationConfig all_preloads = OptimizationConfig::AllOptimizations();
  all_preloads.cache_preload_hints = true;
  presets.push_back({"all_preloads", all_preloads});
  OptimizationConfig all_fb_bat = OptimizationConfig::AllOptimizations();
  all_fb_bat.framebuffer_bat = true;
  presets.push_back({"all_fb_bat", all_fb_bat});
  OptimizationConfig eager_dirty = OptimizationConfig::Baseline();
  eager_dirty.eager_dirty_marking = true;
  presets.push_back({"eager_dirty_only", eager_dirty});
  return presets;
}

FuzzPreset FuzzPresetByName(const std::string& name) {
  for (FuzzPreset& preset : FuzzPresets()) {
    if (preset.name == name) {
      return preset;
    }
  }
  PPCMM_CHECK_MSG(false, "unknown fuzz preset '" << name << "'");
  return {};
}

DifferentialResult RunDifferential(const FuzzStream& stream,
                                   const DifferentialOptions& options) {
  DifferentialResult result;

  // The reload strategy is an axis of the sweep, not of the preset: pin the config bit that
  // selects it. Hardware walk needs a 604; the software strategies need a 603.
  OptimizationConfig config = options.config;
  config.no_htab_direct_reload = options.strategy == ReloadStrategy::kSoftwareDirect;
  if (options.break_tlb_invalidate || options.break_shootdown) {
    // Both sabotages live in the eager per-page flush path (lazy VSID-bump retirement needs
    // neither a tlbie nor a shootdown); force every flush down that path so the planted bug
    // cannot hide behind lazy whole-context retirement.
    config.lazy_context_flush = false;
    config.range_flush_cutoff = 0;
    config.eager_dirty_marking = false;
  }
  MachineConfig machine = options.strategy == ReloadStrategy::kHardwareHtabWalk
                              ? MachineConfig::Ppc604(185)
                              : MachineConfig::Ppc603(80);
  machine.ncpus = options.ncpus == 0 ? 1 : options.ncpus;

  System sys(machine, config);
  // Flight recorder: on divergence the report carries the last attributed events, and every
  // lockstep run doubles as proof that attribution does not perturb the simulation.
  sys.machine().attr().SetEnabled(true);
  sys.mmu().SetFastPathEnabled(options.fast_path);
  if (options.break_tlb_invalidate) {
    sys.kernel().flusher().TestOnlyBreakTlbInvalidate(true);
  }
  if (options.break_shootdown) {
    sys.kernel().flusher().TestOnlyBreakShootdown(true);
  }

  ReferenceMmu ref(RefArchConfig{
      .framebuffer_bat = config.framebuffer_bat,
      .eager_dirty_marking = config.eager_dirty_marking || config.lazy_context_flush,
      .num_frames = static_cast<uint32_t>(sys.machine().memory().num_frames()),
      .ncpus = machine.ncpus});
  CoherenceAuditor auditor(sys.kernel());

  std::deque<std::string> trace;  // the last few executed ops, for the report
  constexpr size_t kTraceTail = 16;
  uint32_t op_index = 0;
  const FuzzOp* current_op = nullptr;

  try {
    const TaskId boot = sys.kernel().CreateTask("fuzz0");
    sys.kernel().Exec(boot, ExecImage{.text_pages = 8, .data_pages = 8, .stack_pages = 4});
    sys.kernel().SwitchTo(boot);
    ref.Boot(boot.value, 8, 8, 4);

    for (; op_index < stream.ops.size(); ++op_index) {
      const FuzzOp& op = stream.ops[op_index];
      current_op = &op;
      const ExpectedStep step = ref.Plan(op, op_index);
      result.coverage.Note(op.kind, step.skip);
      if (step.skip) {
        continue;
      }
      if (trace.size() == kTraceTail) {
        trace.pop_front();
      }
      trace.push_back(OpLine(op_index, op));
      ApplyAndCheck(sys, step);
      ++result.ops_executed;
      if (options.check_period != 0 && result.ops_executed % options.check_period == 0) {
        FullCrossCheck(sys, ref, auditor);
      }
    }
    current_op = nullptr;
    op_index = stream.ops.empty() ? 0 : static_cast<uint32_t>(stream.ops.size()) - 1;
    FullCrossCheck(sys, ref, auditor);  // the final sweep always runs
  } catch (const CheckFailure& failure) {
    result.diverged = true;
    result.failed_op_index = op_index;
    std::ostringstream oss;
    oss << "=== fuzz divergence ===\n"
        << "seed:      " << stream.seed << "\n"
        << "preset:    " << options.config_name << "\n"
        << "strategy:  " << ReloadStrategyName(options.strategy) << "\n"
        << "fast path: " << (options.fast_path ? "on" : "off") << "\n";
    if (machine.ncpus > 1) {
      oss << "ncpus:     " << machine.ncpus << "\n";
    }
    if (options.break_tlb_invalidate) {
      oss << "sabotage:  break_tlb_invalidate\n";
    }
    if (options.break_shootdown) {
      oss << "sabotage:  break_shootdown\n";
    }
    oss << "op index:  " << op_index;
    if (current_op != nullptr) {
      oss << " (" << FuzzOpName(current_op->kind) << " " << current_op->a << " "
          << current_op->b << " " << current_op->c << ")";
    } else {
      oss << " (final cross-check)";
    }
    oss << "\n"
        << "error:     " << failure.what() << "\n"
        << "recent ops:\n";
    for (const std::string& line : trace) {
      oss << "  " << line << "\n";
    }
    std::ostringstream replay;
    replay << "fuzz seed=" << stream.seed << "; replay: examples/fuzz --seed "
           << stream.seed << " --preset " << options.config_name;
    oss << FlightRecorderDump(sys.machine().attr(), replay.str());
    result.report = oss.str();
  }
  return result;
}

MatrixResult RunMatrix(const FuzzStream& stream, const OptimizationConfig& config,
                       const std::string& config_name, uint32_t check_period,
                       bool break_tlb_invalidate, uint32_t ncpus) {
  MatrixResult result;
  const ReloadStrategy strategies[] = {ReloadStrategy::kSoftwareDirect,
                                       ReloadStrategy::kSoftwareHtab,
                                       ReloadStrategy::kHardwareHtabWalk};
  for (const ReloadStrategy strategy : strategies) {
    for (const bool fast_path : {true, false}) {
      DifferentialOptions options;
      options.config = config;
      options.config_name = config_name;
      options.strategy = strategy;
      options.fast_path = fast_path;
      options.check_period = check_period;
      options.break_tlb_invalidate = break_tlb_invalidate;
      options.ncpus = ncpus;
      DifferentialResult run = RunDifferential(stream, options);
      ++result.runs;
      result.coverage.Merge(run.coverage);
      if (run.diverged) {
        result.diverged = true;
        result.first_failure = std::move(run);
        result.failing_options = options;
        return result;
      }
    }
  }
  return result;
}

}  // namespace ppcmm
