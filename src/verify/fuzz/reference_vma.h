// Trivially-correct reference model of a task's VMA space.
//
// One map entry per mapped page — no interval lists, no split/trim logic. Slow and obvious
// on purpose: VmaList's insert/remove edge cases (splitting a region in the middle,
// trimming an end, coalesced totals) all reduce here to per-page map operations that
// cannot be wrong in an interesting way. Used by tests/reference_model_test.cc against
// VmaList and by the differential fuzzer's ReferenceMmu as the oracle's address-space map.

#ifndef PPCMM_SRC_VERIFY_FUZZ_REFERENCE_VMA_H_
#define PPCMM_SRC_VERIFY_FUZZ_REFERENCE_VMA_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/sim/check.h"

namespace ppcmm {

// Per-page attributes the oracle cares about. `kind` is an opaque tag (the fuzzer stores a
// RefRegionKind in it); the model only compares it for equality when coalescing regions.
struct RefVmaAttr {
  bool writable = false;
  uint8_t kind = 0;
  bool operator==(const RefVmaAttr&) const = default;
};

// Reference VMA model: a map of page -> attributes.
class ReferenceVmaModel {
 public:
  bool RangeIsFree(uint32_t start, uint32_t count) const {
    for (uint32_t p = start; p < start + count; ++p) {
      if (pages_.contains(p)) {
        return false;
      }
    }
    return true;
  }

  void Insert(uint32_t start, uint32_t count, RefVmaAttr attr) {
    PPCMM_CHECK_MSG(RangeIsFree(start, count), "reference VMA insert over mapped pages");
    for (uint32_t p = start; p < start + count; ++p) {
      pages_.emplace(p, attr);
    }
  }

  // Returns the number of previously-mapped pages removed (VmaList::Remove contract).
  uint32_t Remove(uint32_t start, uint32_t count) {
    uint32_t removed = 0;
    for (uint32_t p = start; p < start + count; ++p) {
      removed += static_cast<uint32_t>(pages_.erase(p));
    }
    return removed;
  }

  std::optional<RefVmaAttr> Find(uint32_t page) const {
    auto it = pages_.find(page);
    if (it == pages_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  uint32_t TotalPages() const { return static_cast<uint32_t>(pages_.size()); }

  // Lowest free run of `count` pages starting at or after `hint` (VmaList::FindFreeRange
  // semantics, by linear scan).
  uint32_t FindFreeRange(uint32_t hint, uint32_t count) const {
    uint32_t cand = hint;
    while (true) {
      bool free = true;
      for (uint32_t i = 0; i < count; ++i) {
        if (pages_.contains(cand + i)) {
          cand = cand + i + 1;
          free = false;
          break;
        }
      }
      if (free) {
        return cand;
      }
    }
  }

  struct Region {
    uint32_t start = 0;
    uint32_t pages = 0;
    RefVmaAttr attr;
  };

  // Contiguous runs of pages with identical attributes, in address order.
  std::vector<Region> Regions() const {
    std::vector<Region> out;
    for (const auto& [page, attr] : pages_) {
      if (!out.empty() && out.back().start + out.back().pages == page &&
          out.back().attr == attr) {
        ++out.back().pages;
      } else {
        out.push_back(Region{.start = page, .pages = 1, .attr = attr});
      }
    }
    return out;
  }

  void Clear() { pages_.clear(); }

 private:
  std::map<uint32_t, RefVmaAttr> pages_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_VERIFY_FUZZ_REFERENCE_VMA_H_
