#include "src/verify/fuzz/minimize.h"

#include <algorithm>

#include "src/sim/check.h"

namespace ppcmm {

namespace {

// Divergences are state corruptions: once the kernel and the oracle disagree, the final
// cross-check sees it. Dense per-op sweeps are only worth their cost on small candidates.
uint32_t ProbeCheckPeriod(size_t op_count) { return op_count <= 256 ? 1 : 64; }

}  // namespace

MinimizeResult MinimizeStream(const FuzzStream& stream, const MinimizeOptions& options) {
  MinimizeResult result;
  result.minimized.seed = stream.seed;

  auto diverges = [&](const std::vector<FuzzOp>& ops) {
    FuzzStream candidate{stream.seed, ops};
    DifferentialOptions run = options.run;
    run.check_period = ProbeCheckPeriod(ops.size());
    ++result.probe_runs;
    return RunDifferential(candidate, run).diverged;
  };

  // Confirm the failure and cut everything after the op it surfaced on. (A divergence
  // found at op N never needs ops > N: the machine state that disagreed was fully
  // determined by the prefix.)
  DifferentialResult base = RunDifferential(stream, options.run);
  ++result.probe_runs;
  PPCMM_CHECK_MSG(base.diverged, "MinimizeStream called with a non-diverging stream");
  std::vector<FuzzOp> ops(stream.ops.begin(),
                          stream.ops.begin() + std::min<size_t>(stream.ops.size(),
                                                                base.failed_op_index + 1));
  PPCMM_CHECK_MSG(diverges(ops), "divergence vanished after truncating to the failing op");

  // Delta debugging to a fixpoint: try deleting chunks of shrinking size; any deletion
  // that keeps the divergence is kept. Restart after a successful round in case earlier
  // chunks became deletable.
  bool shrunk = true;
  while (shrunk && result.probe_runs < options.max_probe_runs) {
    shrunk = false;
    for (size_t chunk = std::max<size_t>(ops.size() / 2, 1); chunk >= 1; chunk /= 2) {
      for (size_t start = 0; start + chunk <= ops.size() &&
                             result.probe_runs < options.max_probe_runs;) {
        if (chunk == ops.size()) {
          break;  // never try the empty stream
        }
        std::vector<FuzzOp> candidate;
        candidate.reserve(ops.size() - chunk);
        candidate.insert(candidate.end(), ops.begin(),
                         ops.begin() + static_cast<long>(start));
        candidate.insert(candidate.end(), ops.begin() + static_cast<long>(start + chunk),
                         ops.end());
        if (diverges(candidate)) {
          ops = std::move(candidate);
          shrunk = true;
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) {
        break;
      }
    }
  }

  result.minimized.ops = std::move(ops);
  // The definitive rerun: per-op cross-checks, so the stored failure report points at the
  // earliest op the divergence can surface on.
  DifferentialOptions final_run = options.run;
  final_run.check_period = 1;
  result.failure = RunDifferential(result.minimized, final_run);
  PPCMM_CHECK_MSG(result.failure.diverged, "minimized stream no longer diverges");
  return result;
}

}  // namespace ppcmm
