// The shrinking minimizer: turns a diverging fuzz stream into a minimal replay.
//
// Because skipped ops are free (see op_stream.h — every subsequence of a valid stream is
// valid), minimization is pure deletion: truncate to the failing op, then delta-debug —
// delete halves, then quarters, ... then single ops, re-running the one failing
// (preset, strategy, fast-path) combination after each candidate deletion and keeping any
// deletion that still diverges. Loops to a fixpoint, so the result is 1-minimal: removing
// any single remaining op makes the divergence disappear.

#ifndef PPCMM_SRC_VERIFY_FUZZ_MINIMIZE_H_
#define PPCMM_SRC_VERIFY_FUZZ_MINIMIZE_H_

#include <cstdint>

#include "src/verify/fuzz/differential.h"

namespace ppcmm {

struct MinimizeOptions {
  // The failing combination, typically MatrixResult::failing_options. check_period is
  // overridden per probe run (tight checks on small candidates, sparse on large ones).
  DifferentialOptions run;
  // Safety valve on probe executions; minimization stops shrinking when exhausted.
  uint32_t max_probe_runs = 4000;
};

struct MinimizeResult {
  FuzzStream minimized;       // 1-minimal diverging stream (original seed preserved)
  uint32_t probe_runs = 0;    // differential runs spent shrinking
  DifferentialResult failure;  // the minimized stream's divergence, at check_period=1
};

// `stream` must diverge under `options.run`; PPCMM_CHECKs if it does not.
MinimizeResult MinimizeStream(const FuzzStream& stream, const MinimizeOptions& options);

}  // namespace ppcmm

#endif  // PPCMM_SRC_VERIFY_FUZZ_MINIMIZE_H_
