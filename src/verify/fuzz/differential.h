// The lockstep differential runner: executes a FuzzStream against a real System and the
// ReferenceMmu oracle simultaneously, asserting after every op that the optimized kernel is
// architecturally indistinguishable from the obviously-correct model — same faults, same
// returned addresses, same translated frames, same memory content — and periodically
// sweeping the whole machine (every PTE, every cached translation, §7 zombie
// unreachability, the C-bit contract) against the oracle.
//
// A stream is run across the full configuration matrix: every optimization preset × every
// reload strategy × MMU fast path on/off. Divergences throw inside and come back as a
// DifferentialResult with a self-contained report (seed, combo, op index, serialized op,
// trailing op trace) ready for the minimizer.

#ifndef PPCMM_SRC_VERIFY_FUZZ_DIFFERENTIAL_H_
#define PPCMM_SRC_VERIFY_FUZZ_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kernel/opt_config.h"
#include "src/mmu/mmu.h"
#include "src/verify/fuzz/op_stream.h"

namespace ppcmm {

// The named optimization presets the fuzzer sweeps — the same fourteen the property tests
// use, so a preset name in a fuzz report means the same thing everywhere.
struct FuzzPreset {
  std::string name;
  OptimizationConfig config;
};
std::vector<FuzzPreset> FuzzPresets();
// Returns the preset with that name (crashes on an unknown one — CLI input is validated
// against FuzzPresets() first).
FuzzPreset FuzzPresetByName(const std::string& name);

// One run = one (config, strategy, fast-path) combination.
struct DifferentialOptions {
  OptimizationConfig config;
  std::string config_name;  // for reports only
  ReloadStrategy strategy = ReloadStrategy::kHardwareHtabWalk;
  bool fast_path = true;
  // Simulated CPUs for both the real System and the oracle. kCpuSwitch ops in the stream
  // are skipped at ncpus=1, so any stream runs at any width.
  uint32_t ncpus = 1;
  // Run the full machine sweep every N executed ops (0 = only after the last op). Per-op
  // assertions (faults, frames, tokens) always run regardless.
  uint32_t check_period = 1024;
  // Test-only sabotage: make EagerFlushPage skip its tlbie, leaving zombie TLB entries the
  // cross-check must catch. Used to prove the fuzzer + minimizer actually detect bugs.
  bool break_tlb_invalidate = false;
  // Test-only sabotage: shootdown IPIs land but invalidate nothing, leaving stale entries
  // only in *remote* TLBs. Only reachable at ncpus > 1 after a task migrates CPUs, so a
  // minimized repro must keep its cpu_switch ops — the SMP analog of break_tlb_invalidate.
  bool break_shootdown = false;
};

struct DifferentialResult {
  bool diverged = false;
  uint32_t ops_executed = 0;   // non-skipped ops completed before the divergence (or all)
  uint32_t failed_op_index = 0;  // index into stream.ops of the op being run at divergence
  std::string report;          // human-readable failure description (empty when clean)
  OpCoverage coverage;
};

DifferentialResult RunDifferential(const FuzzStream& stream,
                                   const DifferentialOptions& options);

// The full matrix for one preset: {software-direct, software-htab, hardware-walk} × fast
// path {on, off} = 6 runs. Stops at the first divergence.
struct MatrixResult {
  bool diverged = false;
  uint32_t runs = 0;  // runs completed or attempted
  DifferentialResult first_failure;
  DifferentialOptions failing_options;  // the combo to hand to the minimizer
  OpCoverage coverage;                  // merged over all runs
};

MatrixResult RunMatrix(const FuzzStream& stream, const OptimizationConfig& config,
                       const std::string& config_name, uint32_t check_period,
                       bool break_tlb_invalidate = false, uint32_t ncpus = 1);

}  // namespace ppcmm

#endif  // PPCMM_SRC_VERIFY_FUZZ_DIFFERENTIAL_H_
