// Trivially-correct reference model of one split-TLB side.
//
// Keyed by the full (VSID, page index) virtual page with the same set selection and LRU
// discipline as the hardware model, but built on a map of std::lists — no way arrays, no
// tick stamps, nothing to get subtly wrong. Promoted out of tests/reference_model_test.cc
// so the model-based unit tests and the differential fuzzer check the same reference.

#ifndef PPCMM_SRC_VERIFY_FUZZ_REFERENCE_TLB_H_
#define PPCMM_SRC_VERIFY_FUZZ_REFERENCE_TLB_H_

#include <cstdint>
#include <list>
#include <map>

namespace ppcmm {

// Reference TLB: a map of (set -> LRU list of (vsid, page index) keys).
struct ReferenceTlb {
  explicit ReferenceTlb(uint32_t entries, uint32_t ways)
      : num_sets(entries / ways), associativity(ways) {}

  struct Key {
    uint32_t vsid;
    uint32_t page_index;
    bool operator==(const Key& o) const {
      return vsid == o.vsid && page_index == o.page_index;
    }
  };

  bool Lookup(uint32_t vsid, uint32_t page_index) {
    std::list<Key>& lru = sets[page_index & (num_sets - 1)];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == Key{vsid, page_index}) {
        Key k = *it;
        lru.erase(it);
        lru.push_back(k);
        return true;
      }
    }
    return false;
  }

  void Insert(uint32_t vsid, uint32_t page_index) {
    std::list<Key>& lru = sets[page_index & (num_sets - 1)];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == Key{vsid, page_index}) {
        lru.erase(it);
        break;
      }
    }
    lru.push_back(Key{vsid, page_index});
    if (lru.size() > associativity) {
      lru.pop_front();
    }
  }

  // tlbie semantics: clears the page from its set regardless of VSID.
  void InvalidatePage(uint32_t page_index) {
    std::list<Key>& lru = sets[page_index & (num_sets - 1)];
    lru.remove_if([page_index](const Key& k) { return k.page_index == page_index; });
  }

  uint32_t num_sets;
  uint32_t associativity;
  std::map<uint32_t, std::list<Key>> sets;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_VERIFY_FUZZ_REFERENCE_TLB_H_
