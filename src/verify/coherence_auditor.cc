#include "src/verify/coherence_auditor.h"

#include <sstream>
#include <string>
#include <map>

#include "src/sim/check.h"

namespace ppcmm {
namespace {

// Who a live VSID belongs to: the authoritative PTE tree plus enough identity to report.
struct Owner {
  PageTable* table = nullptr;
  uint32_t segment = 0;  // segment register index this VSID is loaded into (0..15)
  uint32_t task_id = 0;  // 0 for the kernel
  bool is_kernel = false;
};

[[noreturn]] void Violation(const std::string& tier, Vsid vsid, uint32_t page_index,
                            const std::string& expected, const std::string& found,
                            const std::string& context) {
  std::ostringstream os;
  os << "CoherenceAuditor violation: tier=" << tier << " vsid=0x" << std::hex << vsid.value
     << " page_index=0x" << page_index << std::dec << " expected=" << expected
     << " found=" << found;
  if (!context.empty()) {
    os << " (" << context << ")";
  }
  throw CheckFailure(os.str());
}

std::string OwnerDesc(const Owner& owner) {
  std::ostringstream os;
  if (owner.is_kernel) {
    os << "kernel, segment " << owner.segment;
  } else {
    os << "task " << owner.task_id << ", segment " << owner.segment;
  }
  return os.str();
}

}  // namespace

void CoherenceAuditor::Audit() {
  ++stats_.audits;
  VsidSpace& vsids = kernel_.vsids();

  // ---- build the reverse map: live VSID -> owning PTE tree ----
  std::map<uint32_t, Owner> owners;
  for (uint32_t seg = kFirstKernelSegment; seg < kNumSegments; ++seg) {
    owners[VsidSpace::KernelVsid(seg).value] =
        Owner{&kernel_.kernel_page_table(), seg, 0, /*is_kernel=*/true};
  }
  kernel_.ForEachTask([&](Task& task) {
    if (task.mm == nullptr) {
      return;
    }
    const ContextId ctx = task.mm->context;
    if (!vsids.ContextLive(ctx)) {
      Violation("TASK", vsids.UserVsid(ctx, 0), 0, "a live context",
                "retired context " + std::to_string(ctx.value),
                "task " + std::to_string(task.id.value));
    }
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      const Vsid vsid = vsids.UserVsid(ctx, seg);
      const auto [it, fresh] = owners.emplace(
          vsid.value, Owner{task.mm->page_table.get(), seg, task.id.value, false});
      if (!fresh) {
        Violation("VSID", vsid, 0, "one owner per VSID",
                  "shared by " + OwnerDesc(it->second) + " and task " +
                      std::to_string(task.id.value),
                  "VSID collision between live owners");
      }
    }
  });

  // Checks one cached translation (TLB or HTAB flavor) against the owner's Linux PTE tree.
  // Returns false when the VSID is dead (a zombie: unreachable by construction, never an
  // error); throws on any disagreement with the authoritative tree.
  const auto check_against_owner = [&](const std::string& tier, Vsid vsid, uint32_t page_index,
                                       uint32_t frame, bool writable, bool cache_inhibited,
                                       bool changed) {
    const auto it = owners.find(vsid.value);
    if (it == owners.end()) {
      if (vsids.IsLive(vsid)) {
        Violation(tier, vsid, page_index, "every live VSID to have an owning context",
                  "live VSID owned by no task and no kernel segment", "");
      }
      return false;  // zombie
    }
    const Owner& owner = it->second;
    const EffAddr ea = EffAddr::FromPage((owner.segment << kPageIndexBits) | page_index);
    const std::optional<LinuxPte> pte = owner.table->LookupQuiet(ea);
    if (!pte.has_value() || !pte->present) {
      Violation(tier, vsid, page_index, "a present Linux PTE backing the cached translation",
                "no present PTE (stale translation survived a flush)", OwnerDesc(owner));
    }
    if (pte->frame != frame) {
      Violation(tier, vsid, page_index, "frame 0x" + std::to_string(pte->frame),
                "frame 0x" + std::to_string(frame), OwnerDesc(owner));
    }
    if (pte->writable != writable) {
      Violation(tier, vsid, page_index,
                std::string("writable=") + (pte->writable ? "1" : "0"),
                std::string("writable=") + (writable ? "1" : "0"), OwnerDesc(owner));
    }
    if (pte->cache_inhibited != cache_inhibited) {
      Violation(tier, vsid, page_index,
                std::string("cache_inhibited=") + (pte->cache_inhibited ? "1" : "0"),
                std::string("cache_inhibited=") + (cache_inhibited ? "1" : "0"),
                OwnerDesc(owner));
    }
    // Dirty information must never be lost: a C bit in a cached user translation without the
    // Linux dirty bit would vanish at the next eviction. (Kernel linear-map PTEs do not
    // track dirtiness — nothing consumes it — so the invariant is user-only.)
    if (!owner.is_kernel && changed && !pte->dirty) {
      Violation(tier, vsid, page_index, "Linux dirty bit set wherever the C bit is set",
                "changed=1 with dirty=0 (dirty bit would be lost)", OwnerDesc(owner));
    }
    return true;
  };

  // ---- TLBs: every CPU's, under the cross-CPU staleness rule ----
  // A completed shootdown must have left no stale entry anywhere, so every CPU's TLB is
  // held to the same invariants as the local one. The one exemption is a CPU still owing a
  // deferred flush (it was idle when the shootdown ran): its whole TLB is logically invalid
  // and is wiped before anything runs there, so its entries are counted, not checked.
  const auto check_tlb = [&](Tlb& tlb, const std::string& tier, bool flush_pending) {
    tlb.ForEachValid([&](const TlbEntry& entry) {
      if (flush_pending) {
        ++stats_.tlb_stale_tolerated;
        return;
      }
      ++stats_.tlb_entries_checked;
      const auto it = owners.find(entry.vsid.value);
      if (it != owners.end() && it->second.is_kernel != entry.is_kernel) {
        Violation(tier, entry.vsid, entry.page_index,
                  std::string("is_kernel=") + (it->second.is_kernel ? "1" : "0"),
                  std::string("is_kernel=") + (entry.is_kernel ? "1" : "0"),
                  OwnerDesc(it->second));
      }
      if (!check_against_owner(tier, entry.vsid, entry.page_index, entry.frame, entry.writable,
                               entry.cache_inhibited, entry.changed)) {
        ++stats_.tlb_zombies_seen;
      }
    });
  };
  for (uint32_t cpu = 0; cpu < kernel_.ncpus(); ++cpu) {
    const bool flush_pending = kernel_.FlushPendingOn(cpu);
    const std::string at = cpu == 0 ? "" : ",cpu" + std::to_string(cpu);
    check_tlb(kernel_.mmu().itlb(cpu), "TLB(itlb" + at + ")", flush_pending);
    check_tlb(kernel_.mmu().dtlb(cpu), "TLB(dtlb" + at + ")", flush_pending);
  }

  // ---- HTAB ----
  if (kernel_.mmu().policy().UsesHtab()) {
    const HashTable& htab = kernel_.mmu().htab();
    for (uint32_t pteg = 0; pteg < htab.num_ptegs(); ++pteg) {
      for (uint32_t slot = 0; slot < kPtesPerPteg; ++slot) {
        const HashedPte& pte = htab.At(pteg, slot);
        if (!pte.valid) {
          continue;
        }
        ++stats_.htab_entries_checked;
        const VirtPage vp = pte.virt_page();
        if (pteg != htab.PrimaryPteg(vp) && pteg != htab.SecondaryPteg(vp)) {
          Violation("HTAB", pte.vsid, pte.page_index,
                    "entry in its primary or secondary PTEG",
                    "entry in unrelated PTEG " + std::to_string(pteg),
                    "hash placement invariant");
        }
        if (!check_against_owner("HTAB", pte.vsid, pte.page_index, pte.rpn, pte.writable,
                                 pte.cache_inhibited, pte.changed)) {
          ++stats_.htab_zombies_seen;
        }
      }
    }
  }

  // ---- segment registers: every CPU's, against that CPU's current task ----
  for (uint32_t cpu = 0; cpu < kernel_.ncpus(); ++cpu) {
    SegmentRegs& regs = kernel_.mmu().segments(cpu);
    for (uint32_t seg = kFirstKernelSegment; seg < kNumSegments; ++seg) {
      if (regs.Get(seg) != VsidSpace::KernelVsid(seg)) {
        Violation("SEGREG", regs.Get(seg), seg, "fixed kernel VSID in segment register",
                  "non-kernel VSID loaded",
                  "cpu " + std::to_string(cpu) + ", segment " + std::to_string(seg));
      }
    }
    const TaskId on_cpu = kernel_.CurrentOn(cpu);
    if (on_cpu.value != 0) {
      Task& current = kernel_.task(on_cpu);
      if (current.mm != nullptr) {
        const auto image = vsids.SegmentImage(current.mm->context);
        for (uint32_t seg = 0; seg < kNumSegments; ++seg) {
          if (regs.Get(seg) != image[seg]) {
            Violation("SEGREG", regs.Get(seg), seg,
                      "current task's VSID image (vsid 0x" +
                          std::to_string(image[seg].value) + ")",
                      "a different VSID loaded",
                      "cpu " + std::to_string(cpu) + ", task " +
                          std::to_string(current.id.value) + ", segment " +
                          std::to_string(seg));
          }
        }
      }
    }
  }

  // ---- frames: every user mapping sits on an allocated frame with enough references ----
  PageAllocator& allocator = kernel_.allocator();
  const uint32_t arena_begin = allocator.first_frame();
  const uint32_t arena_end = arena_begin + allocator.TotalCount();
  // Ordered: violation messages are emitted in iteration order and must be
  // reproducible run to run.
  std::map<uint32_t, uint32_t> mappings_per_frame;
  kernel_.ForEachTask([&](Task& task) {
    if (task.mm == nullptr) {
      return;
    }
    task.mm->page_table->ForEachPresent([&](EffAddr ea, const LinuxPte& pte) {
      ++stats_.pte_mappings_checked;
      if (kernel_.IsIoFrame(pte.frame)) {
        return;  // aperture frames are not allocator-owned
      }
      if (pte.frame < arena_begin || pte.frame >= arena_end) {
        Violation("FRAME", Vsid(0), ea.EffPageNumber(), "user frame inside the allocator arena",
                  "frame 0x" + std::to_string(pte.frame) + " outside it",
                  "task " + std::to_string(task.id.value));
      }
      if (!allocator.IsAllocated(pte.frame)) {
        Violation("FRAME", Vsid(0), ea.EffPageNumber(), "mapped frame to be allocated",
                  "frame 0x" + std::to_string(pte.frame) + " is on the free list",
                  "task " + std::to_string(task.id.value));
      }
      ++mappings_per_frame[pte.frame];
    });
  });
  for (const auto& [frame, count] : mappings_per_frame) {
    if (allocator.RefCount(frame) < count) {
      Violation("FRAME", Vsid(0), frame, std::to_string(count) + "+ references",
                "refcount " + std::to_string(allocator.RefCount(frame)) + " below " +
                    std::to_string(count) + " user mappings",
                "per-frame reference audit");
    }
  }
}

}  // namespace ppcmm
