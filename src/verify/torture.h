// Deterministic MMU torture harness.
//
// Drives a full System through a seed-replayable stream of random kernel operations (fork,
// exec, mmap, munmap, touches, stores, context switches, idle ticks) with the coherence
// auditor running continuously and optional fault injection underneath. Every decision comes
// from one SplitMix64 stream, so a failing (seed, options) pair replays the identical run —
// the failure report carries everything needed to reproduce it.

#ifndef PPCMM_SRC_VERIFY_TORTURE_H_
#define PPCMM_SRC_VERIFY_TORTURE_H_

#include <cstdint>
#include <string>

#include "src/mmu/mmu.h"
#include "src/verify/coherence_auditor.h"

namespace ppcmm {

const char* ReloadStrategyName(ReloadStrategy strategy);

// Knobs of one torture run. Everything is deterministic in (seed, the rest of this struct).
struct TortureOptions {
  uint64_t seed = 1;
  uint32_t ops = 10000;
  uint32_t audit_period = 64;  // full audit every N ops (plus once at the end); 0 = end only
  uint32_t max_tasks = 6;
  // Simulated CPUs. >1 mixes CPU hops into the op stream (from the same rng stream, drawn
  // only when ncpus > 1, so ncpus=1 runs replay the exact uniprocessor op sequence) and the
  // failure report gains the faulting CPU and a per-CPU TLB snapshot.
  uint32_t ncpus = 1;
  ReloadStrategy strategy = ReloadStrategy::kHardwareHtabWalk;
  // Draw the OptimizationConfig from the seed (each run exercises a different corner of the
  // policy space); when false, AllOptimizations() is used.
  bool randomize_config = true;
  // Fault-injection rates, 1-in-N per poll site (0 = class disabled).
  uint32_t page_alloc_exhaustion_one_in = 0;
  uint32_t htab_eviction_storm_one_in = 0;
  uint32_t spurious_tlb_flush_one_in = 0;
  uint32_t vsid_wrap_one_in = 0;
  uint32_t zombie_flood_one_in = 0;
  // Test-only sabotage: skip the tlbie in eager per-page flushes (forces the eager flush
  // path by disabling lazy flushing) so the auditor must catch the stale TLB entries.
  bool break_tlb_invalidate = false;
  // Simulated RAM; 0 = the machine profile's default (32 MB). Small values (e.g. 8 MB)
  // drive genuine allocator exhaustion without fault injection.
  uint64_t ram_bytes = 0;
  // Record the machine's trace ring during the run. On failure the trailing ring and a
  // metrics snapshot are appended to failure_report; on any exit the exported documents
  // land in trace_json / metrics_json (for --trace-out and post-mortem tooling).
  bool capture_trace = true;
};

// What a run did. `failed` is set on any CheckFailure (auditor violation or internal check);
// genuine+injected out-of-memory conditions are recovered from and counted, never failures.
struct TortureResult {
  bool failed = false;
  uint32_t ops_executed = 0;
  uint32_t oom_events = 0;
  uint64_t fault_fires = 0;
  AuditStats audit_stats;
  std::string config_desc;
  std::string failure_report;  // empty unless failed: seed, config, op index, op-trace tail
  // Perfetto trace-event JSON of the retained trace ring and a metrics-snapshot JSON,
  // both empty when capture_trace is off.
  std::string trace_json;
  std::string metrics_json;
};

// Runs one torture run to completion (or first failure). Never throws.
TortureResult RunTorture(const TortureOptions& options);

}  // namespace ppcmm

#endif  // PPCMM_SRC_VERIFY_TORTURE_H_
