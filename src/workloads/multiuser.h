// Multiuser workload: "several processes running in separate memory contexts (not threads)
// which is the typical load on a multiuser system" (§5.1) — the regime the paper says its
// optimizations target. Each simulated user cycles through a mix that echoes §9's "users
// compiling, editing, reading mail": editor keystrokes over a resident buffer, a compile
// (fork + exec + working-set churn), shell commands (process start), and mail (pipe round
// trips), with disk waits handing time to the idle task.

#ifndef PPCMM_SRC_WORKLOADS_MULTIUSER_H_
#define PPCMM_SRC_WORKLOADS_MULTIUSER_H_

#include <cstdint>

#include "src/core/system.h"

namespace ppcmm {

struct MultiuserConfig {
  uint32_t users = 4;
  uint32_t rounds = 6;            // activity cycles per user
  uint32_t editor_buffer_pages = 24;
  uint32_t compile_ws_pages = 64;
  uint32_t mail_messages = 4;
  uint64_t seed = 0xBEEF;
};

struct MultiuserResult {
  double seconds = 0;
  HwCounters counters;
  // Throughput: completed user operations (keystrokes batches + compiles + mails) per
  // simulated second.
  double ops_per_second = 0;
  uint64_t operations = 0;
};

MultiuserResult RunMultiuserWorkload(System& system, const MultiuserConfig& config);

}  // namespace ppcmm

#endif  // PPCMM_SRC_WORKLOADS_MULTIUSER_H_
