// The kernel-compile workload: "the informal Linux benchmark of compiling the kernel ... a
// good guess at a typical user load in a system used for program development" (§4).
//
// A `make` process repeatedly forks and execs compiler processes. Each compile maps shared
// libraries (the fixed-address remaps whose flushes §7 attacks), reads a source file (page
// cache misses with idle time during the disk waits — where the §7 zombie reclaim and §9
// page zeroing run), chews on an anonymous working set, writes an object file and exits.
// Scaled down from the paper's full kernel build but preserving the operation mix.

#ifndef PPCMM_SRC_WORKLOADS_KERNEL_COMPILE_H_
#define PPCMM_SRC_WORKLOADS_KERNEL_COMPILE_H_

#include <cstdint>

#include "src/core/stats.h"
#include "src/core/system.h"

namespace ppcmm {

// Workload scale knobs.
struct KernelCompileConfig {
  uint32_t compilation_units = 24;
  uint32_t cc1_text_pages = 48;        // the compiler binary (shared via the page cache)
  uint32_t source_file_pages = 6;      // per-unit source read
  uint32_t object_file_pages = 2;      // per-unit output
  uint32_t working_set_pages = 176;    // compiler heap churn: wider than the DTLB reach
  uint32_t shared_lib_pages = 48;      // per-exec fixed-address library map (in the paper's
                                       // 40–110 page flush range)
  uint32_t compute_loops = 6;          // working-set passes per unit
  uint64_t seed = 0x5eed;
};

// What a run produced.
struct KernelCompileResult {
  double seconds = 0;                 // simulated wall-clock
  HwCounters counters;                // interval counters for the whole build
  SystemStats end_stats;              // HTAB/TLB occupancy at the end
  uint64_t units = 0;
  // Kernel share of valid TLB entries, sampled mid-compile once per unit (the paper's "33%
  // of the TLB entries under Linux/PPC were for kernel text, data and I/O pages").
  double avg_kernel_tlb_share = 0;
};

// Runs the build inside `system` and reports.
KernelCompileResult RunKernelCompile(System& system, const KernelCompileConfig& config);

}  // namespace ppcmm

#endif  // PPCMM_SRC_WORKLOADS_KERNEL_COMPILE_H_
