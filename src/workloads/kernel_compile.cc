#include "src/workloads/kernel_compile.h"

#include "src/kernel/layout.h"
#include "src/sim/rng.h"

namespace ppcmm {

KernelCompileResult RunKernelCompile(System& system, const KernelCompileConfig& config) {
  Kernel& kernel = system.kernel();
  Rng rng(config.seed);

  // The build tree: one compiler image, the shared C library, one source file and one
  // object file per unit.
  const FileId cc1_image = kernel.page_cache().CreateFile(config.cc1_text_pages);
  const FileId libc_image = kernel.page_cache().CreateFile(config.shared_lib_pages);
  const FileId make_image = kernel.page_cache().CreateFile(8);

  const TaskId make = kernel.CreateTask("make");
  kernel.Exec(make, ExecImage{.text_pages = 8,
                              .data_pages = 32,
                              .stack_pages = 4,
                              .text_file = make_image});
  kernel.SwitchTo(make);
  kernel.UserExecute(512);

  const HwCounters before = system.counters();
  const Cycles start = system.machine().Now();
  double kernel_share_sum = 0;
  uint32_t kernel_share_samples = 0;

  for (uint32_t unit = 0; unit < config.compilation_units; ++unit) {
    // make: parse a rule, stat files.
    kernel.UserExecute(1024);
    kernel.NullSyscall();

    // fork + exec cc1.
    const TaskId cc1 = kernel.Fork(make);
    kernel.SwitchTo(cc1);
    kernel.Exec(cc1, ExecImage{.text_pages = config.cc1_text_pages,
                               .data_pages = config.working_set_pages + 16,
                               .stack_pages = 8,
                               .text_file = cc1_image});

    // Dynamic linking: map shared libraries at a fixed address, remapping what a previous
    // stage put there — the §7 flush-heavy path.
    const uint32_t lib_base = (kUserMmapBase >> kPageShift) + 0x400;
    kernel.Mmap(config.shared_lib_pages, MmapOptions{.fixed_page = lib_base,
                                                     .file = libc_image,
                                                     .file_page_offset = 0,
                                                     .writable = false});
    // The linker touches a scattered quarter of the library pages.
    for (uint32_t i = 0; i < config.shared_lib_pages / 4; ++i) {
      const uint32_t page = lib_base + static_cast<uint32_t>(
                                           rng.NextBelow(config.shared_lib_pages));
      kernel.UserTouch(EffAddr::FromPage(page), AccessKind::kLoad);
    }
    // Relink/remap once more (ld.so fixups), unmapping the previous mapping in place.
    kernel.Mmap(config.shared_lib_pages, MmapOptions{.fixed_page = lib_base,
                                                     .file = libc_image,
                                                     .file_page_offset = 0,
                                                     .writable = false});

    // Read the source file; cold pages mean disk waits spent in the idle task.
    const FileId source = kernel.page_cache().CreateFile(config.source_file_pages);
    kernel.FileRead(source, 0, config.source_file_pages * kPageSize,
                    EffAddr(kUserDataBase + 16 * kPageSize));

    // Compile: passes over the anonymous working set interleaved with execution, each
    // pass emitted as page-grained runs — a full load sweep at a per-pass line offset
    // plus a store sweep over a third of the pages (the dirty ratio the per-page random
    // walk used to produce).
    const EffAddr heap(kUserDataBase);
    for (uint32_t loop = 0; loop < config.compute_loops; ++loop) {
      kernel.UserExecute(4096);
      const uint32_t offset = static_cast<uint32_t>(rng.NextBelow(kPageSize / 64)) * 64;
      kernel.UserTouchRun(heap + offset, kPageSize, config.working_set_pages,
                          AccessKind::kLoad);
      kernel.UserTouchRun(heap + offset, 3 * kPageSize, (config.working_set_pages + 2) / 3,
                          AccessKind::kStore);
    }

    // Sample the TLB occupancy mid-compile, as the paper's hardware monitor did.
    {
      Tlb& itlb = system.mmu().itlb();
      Tlb& dtlb = system.mmu().dtlb();
      const uint32_t valid = itlb.ValidCount() + dtlb.ValidCount();
      const uint32_t kernel_entries = itlb.KernelEntryCount() + dtlb.KernelEntryCount();
      if (valid > 0) {
        kernel_share_sum += static_cast<double>(kernel_entries) / valid;
        ++kernel_share_samples;
      }
    }

    // Emit the object file, then wait for it to hit "disk" in the idle task.
    const FileId object = kernel.page_cache().CreateFile(config.object_file_pages);
    kernel.FileWrite(object, 0, config.object_file_pages * kPageSize, heap);
    kernel.SimulateIoWait(Cycles(kernel.costs().disk_latency_cycles));

    kernel.Exit(cc1);
    kernel.SwitchTo(make);
    kernel.page_cache().DeleteFile(source);
    kernel.page_cache().DeleteFile(object);
  }

  KernelCompileResult result;
  result.units = config.compilation_units;
  result.counters = system.counters().Diff(before);
  result.seconds = CyclesToSeconds(system.machine().Now() - start,
                                   system.machine_config().clock_mhz);
  result.end_stats = ComputeStats(system, result.counters);
  result.avg_kernel_tlb_share =
      kernel_share_samples > 0 ? kernel_share_sum / kernel_share_samples : 0.0;
  kernel.Exit(make);
  return result;
}

}  // namespace ppcmm
