#include "src/workloads/lmbench.h"

#include <algorithm>
#include <vector>

#include "src/kernel/layout.h"
#include "src/sim/check.h"

namespace ppcmm {

namespace {

constexpr uint32_t kHeapBase = kUserDataBase;

}  // namespace

LmBench::LmBench(System& system, LmBenchParams params)
    : system_(system), kernel_(system.kernel()), params_(params) {
  shared_text_ = kernel_.page_cache().CreateFile(64);
}

TaskId LmBench::Spawn(const std::string& name) {
  const TaskId id = kernel_.CreateTask(name);
  kernel_.Exec(id, ExecImage{.text_pages = 16,
                             .data_pages = 64,
                             .stack_pages = 4,
                             .text_file = shared_text_});
  kernel_.SwitchTo(id);
  // Warm the entry points: code page, a stack slot, one heap line.
  kernel_.UserExecute(64);
  kernel_.UserTouch(EffAddr::FromPage(kernel_.task(id).stack_page, 128), AccessKind::kStore);
  kernel_.UserTouch(EffAddr(kHeapBase), AccessKind::kStore);
  return id;
}

void LmBench::TouchWorkingSet(uint32_t kb, uint32_t salt) {
  if (kb == 0) {
    return;
  }
  // Stride by cache line through `kb` KB of the heap, offset by a salt so different
  // processes' sets do not map to identical lines.
  const uint32_t line = 32;
  kernel_.UserTouchRange(EffAddr(kHeapBase + (salt % 4) * 1024), kb * 1024, line,
                         AccessKind::kLoad);
}

// One slice of "application work" between kernel operations: advance through the task's
// resident footprint one page per call and execute a few instructions.
void LmBench::AppWork(uint32_t iter, uint32_t pages) {
  // The walk is contiguous modulo the footprint, so it is at most two page-grained runs.
  uint32_t page = (iter * pages) % params_.app_footprint_pages;
  uint32_t left = pages;
  while (left > 0) {
    const uint32_t chunk = std::min(left, params_.app_footprint_pages - page);
    kernel_.UserTouchRun(EffAddr(kHeapBase + page * kPageSize + 256), kPageSize, chunk,
                         AccessKind::kLoad);
    page = (page + chunk) % params_.app_footprint_pages;
    left -= chunk;
  }
  kernel_.UserExecute(16);
}

double LmBench::NullSyscallUs() {
  const TaskId t = Spawn("nullsys");
  kernel_.SwitchTo(t);
  kernel_.NullSyscall();  // warm the syscall path
  const double total = system_.TimeMicros([&] {
    for (uint32_t i = 0; i < params_.syscall_iters; ++i) {
      kernel_.NullSyscall();
    }
  });
  kernel_.Exit(t);
  return total / params_.syscall_iters;
}

double LmBench::ContextSwitchUs(uint32_t nproc) {
  PPCMM_CHECK(nproc >= 2);
  std::vector<TaskId> ring;
  std::vector<uint32_t> pipes;
  for (uint32_t i = 0; i < nproc; ++i) {
    ring.push_back(Spawn("ctx" + std::to_string(i)));
    pipes.push_back(kernel_.CreatePipe());
  }

  const EffAddr token(kHeapBase + 512);
  // Warm one lap.
  for (uint32_t i = 0; i < nproc; ++i) {
    kernel_.SwitchTo(ring[i]);
    TouchWorkingSet(params_.ctxsw_working_set_kb, i);
    kernel_.PipeWrite(pipes[i], token, 1);
    kernel_.PipeRead(pipes[i], token, 1);
  }

  // Timed laps: each hop is write(token) -> switch -> read(token) -> touch working set.
  const double total = system_.TimeMicros([&] {
    for (uint32_t pass = 0; pass < params_.ctxsw_passes; ++pass) {
      for (uint32_t i = 0; i < nproc; ++i) {
        kernel_.PipeWrite(pipes[i], token, 1);
        kernel_.SwitchTo(ring[(i + 1) % nproc]);
        kernel_.PipeRead(pipes[i], token, 1);
        TouchWorkingSet(params_.ctxsw_working_set_kb, (i + 1) % nproc);
      }
    }
  });
  const double per_hop = total / (params_.ctxsw_passes * nproc);

  // Subtract the non-switch overhead (pipe write+read + working-set touch in one process),
  // the way lat_ctx calibrates.
  kernel_.SwitchTo(ring[0]);
  const double overhead = system_.TimeMicros([&] {
                            for (uint32_t pass = 0; pass < params_.ctxsw_passes; ++pass) {
                              kernel_.PipeWrite(pipes[0], token, 1);
                              kernel_.PipeRead(pipes[0], token, 1);
                              TouchWorkingSet(params_.ctxsw_working_set_kb, 0);
                            }
                          }) /
                          params_.ctxsw_passes;

  for (const TaskId id : ring) {
    kernel_.Exit(id);
  }
  return per_hop > overhead ? per_hop - overhead : 0.0;
}

double LmBench::PipeLatencyUs() {
  const TaskId a = Spawn("pipeA");
  const TaskId b = Spawn("pipeB");
  const uint32_t ab = kernel_.CreatePipe();
  const uint32_t ba = kernel_.CreatePipe();
  const EffAddr token(kHeapBase + 256);

  // Warm.
  kernel_.SwitchTo(a);
  kernel_.PipeWrite(ab, token, 1);
  kernel_.SwitchTo(b);
  kernel_.PipeRead(ab, token, 1);
  kernel_.PipeWrite(ba, token, 1);
  kernel_.SwitchTo(a);
  kernel_.PipeRead(ba, token, 1);

  const double total = system_.TimeMicros([&] {
    for (uint32_t i = 0; i < params_.pipe_latency_iters; ++i) {
      kernel_.PipeWrite(ab, token, 1);
      kernel_.SwitchTo(b);
      kernel_.PipeRead(ab, token, 1);
      AppWork(i, 4);
      kernel_.PipeWrite(ba, token, 1);
      kernel_.SwitchTo(a);
      kernel_.PipeRead(ba, token, 1);
      AppWork(i, 4);
    }
  });
  kernel_.Exit(a);
  kernel_.Exit(b);
  // One round trip is two one-way messages; lat_pipe reports the one-way latency.
  return total / params_.pipe_latency_iters / 2.0;
}

double LmBench::PipeBandwidthMbs() {
  const TaskId a = Spawn("bwA");
  const TaskId b = Spawn("bwB");
  const uint32_t pipe = kernel_.CreatePipe();
  const EffAddr src(kHeapBase);
  const EffAddr dst(kHeapBase);

  // Warm the 4 KB buffers on both sides.
  kernel_.SwitchTo(a);
  kernel_.UserTouchRange(src, kPageSize, 32, AccessKind::kStore);
  kernel_.SwitchTo(b);
  kernel_.UserTouchRange(dst, kPageSize, 32, AccessKind::kStore);
  kernel_.SwitchTo(a);

  const uint32_t chunk = kPageSize;
  const uint32_t chunks = params_.pipe_bandwidth_bytes / chunk;
  const double total_us = system_.TimeMicros([&] {
    for (uint32_t i = 0; i < chunks; ++i) {
      const uint32_t wrote = kernel_.PipeWrite(pipe, src, chunk);
      PPCMM_CHECK(wrote == chunk);
      kernel_.SwitchTo(b);
      const uint32_t read = kernel_.PipeRead(pipe, dst, chunk);
      PPCMM_CHECK(read == chunk);
      AppWork(i, 1);
      kernel_.SwitchTo(a);
    }
  });
  kernel_.Exit(a);
  kernel_.Exit(b);
  const double bytes = static_cast<double>(chunks) * chunk;
  return bytes / total_us;  // bytes/us == MB/s
}

double LmBench::FileRereadMbs() {
  const TaskId t = Spawn("reread");
  kernel_.SwitchTo(t);
  const FileId file = kernel_.page_cache().CreateFile(params_.file_pages);
  const EffAddr buf(kHeapBase);
  const uint32_t chunk = 16 * kPageSize;  // 64 KB read() calls, like bw_file_rd

  // First pass populates the page cache (and the user buffer's pages).
  for (uint32_t off = 0; off < params_.file_pages * kPageSize; off += chunk) {
    kernel_.FileRead(file, off, chunk, buf);
  }

  const double total_us = system_.TimeMicros([&] {
    for (uint32_t pass = 0; pass < params_.file_reread_iters; ++pass) {
      for (uint32_t off = 0; off < params_.file_pages * kPageSize; off += chunk) {
        kernel_.FileRead(file, off, chunk, buf);
      }
    }
  });
  kernel_.Exit(t);
  const double bytes =
      static_cast<double>(params_.file_pages) * kPageSize * params_.file_reread_iters;
  return bytes / total_us;
}

double LmBench::MmapLatencyUs() {
  // lat_mmap maps a file region and unmaps it without touching the pages. The munmap must
  // still clear the range from the TLB and hash table — the unoptimized kernel searches the
  // HTAB for every page of the range whether or not anything is cached (§7), which is the
  // whole cost this test exposes.
  const TaskId t = Spawn("mmap");
  kernel_.SwitchTo(t);
  const FileId file = kernel_.page_cache().CreateFile(params_.mmap_pages);
  const uint32_t fixed = (kUserMmapBase >> kPageShift) + 0x100;

  // Warm one un-timed round.
  kernel_.Mmap(params_.mmap_pages,
               MmapOptions{.fixed_page = fixed, .file = file, .writable = false});
  kernel_.Munmap(fixed, params_.mmap_pages);

  const double timed_us = system_.TimeMicros([&] {
    for (uint32_t i = 0; i < params_.mmap_iters; ++i) {
      kernel_.Mmap(params_.mmap_pages,
                   MmapOptions{.fixed_page = fixed, .file = file, .writable = false});
      kernel_.Munmap(fixed, params_.mmap_pages);
    }
  });
  kernel_.Exit(t);
  return timed_us / params_.mmap_iters;
}

double LmBench::ProcessStartUs() {
  const TaskId parent = Spawn("shell");
  kernel_.SwitchTo(parent);

  const double total = system_.TimeMicros([&] {
    for (uint32_t i = 0; i < params_.proc_start_iters; ++i) {
      const TaskId child = kernel_.Fork(parent);
      kernel_.SwitchTo(child);
      kernel_.Exec(child, ExecImage{.text_pages = 16,
                                    .data_pages = 16,
                                    .stack_pages = 4,
                                    .text_file = shared_text_});
      // The child runs briefly: entry code, a little stack and heap traffic.
      kernel_.UserExecute(256);
      kernel_.UserTouch(EffAddr::FromPage(kernel_.task(child).stack_page, 64),
                        AccessKind::kStore);
      kernel_.UserTouch(EffAddr(kHeapBase), AccessKind::kStore);
      kernel_.NullSyscall();
      kernel_.Exit(child);
      kernel_.SwitchTo(parent);
    }
  });
  kernel_.Exit(parent);
  return total / params_.proc_start_iters;
}

LmBenchResult LmBench::RunAll() {
  LmBenchResult result;
  result.null_syscall_us = NullSyscallUs();
  result.ctxsw_2p_us = ContextSwitchUs(2);
  result.ctxsw_8p_us = ContextSwitchUs(8);
  result.pipe_latency_us = PipeLatencyUs();
  result.pipe_bandwidth_mbs = PipeBandwidthMbs();
  result.file_reread_mbs = FileRereadMbs();
  result.mmap_latency_us = MmapLatencyUs();
  result.process_start_us = ProcessStartUs();
  return result;
}

}  // namespace ppcmm
