// Comparative operating-system models for Table 3.
//
// The paper compares optimized Linux/PPC against the unoptimized kernel, Apple's Mach-based
// Rhapsody and MkLinux, and IBM's AIX on the same 133 MHz 604 hardware. Those systems are
// closed source; per the reproduction's substitution rule we model them *structurally*:
//
//   Linux/PPC            our kernel, AllOptimizations()
//   Unoptimized Linux    our kernel, Baseline()
//   AIX                  monolithic: competent handlers and a tuned hash table, but a much
//                        fatter syscall/switch path (a heavyweight commercial kernel)
//   MkLinux              Mach 3 single-server: every POSIX call traps into Mach, is turned
//                        into IPC to the Linux server, and returns the same way — two extra
//                        protection crossings with message copies on the syscall path
//   Rhapsody             Mach-based like MkLinux with a somewhat better-integrated server
//                        (in-kernel colocation), so slightly cheaper crossings
//
// The microkernel tax is charged through the KernelCostModel: the flat bodies of syscalls,
// context switches and faults grow by the cost of the extra crossings. The MMU-level
// behaviour (TLB/HTAB traffic) is simulated, not faked, for all five.

#ifndef PPCMM_SRC_WORKLOADS_OS_MODELS_H_
#define PPCMM_SRC_WORKLOADS_OS_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/workloads/lmbench.h"

namespace ppcmm {

enum class OsPersonality {
  kLinuxOptimized,
  kLinuxUnoptimized,
  kRhapsody,
  kMkLinux,
  kAix,
  // Extension beyond Table 3: an L4-style microkernel (Liedtke [3], the paper's related
  // work) — the same two protection crossings per syscall as Mach, but each crossing is a
  // hand-tuned fast path an order of magnitude cheaper. Quantifies §11's "micro-kernel
  // designs can be made to perform" debate.
  kL4Style,
};

std::string OsName(OsPersonality os);

// The configuration bundle for one modelled OS.
struct OsModelSpec {
  OsPersonality personality;
  OptimizationConfig opts;
  KernelCostModel costs;
};

// Builds the spec for one personality.
OsModelSpec MakeOsModel(OsPersonality os);

// Runs the Table 3 subset of LmBench (null syscall, 2-process context switch, pipe latency,
// pipe bandwidth) for one OS on the given machine.
struct Table3Row {
  std::string os;
  double null_syscall_us = 0;
  double ctxsw_us = 0;
  double pipe_latency_us = 0;
  double pipe_bandwidth_mbs = 0;
};

Table3Row RunTable3Row(OsPersonality os, const MachineConfig& machine);

// All five rows, in the paper's order.
std::vector<Table3Row> RunTable3(const MachineConfig& machine);
// The five rows plus the L4-style extension row.
std::vector<Table3Row> RunTable3WithExtensions(const MachineConfig& machine);

}  // namespace ppcmm

#endif  // PPCMM_SRC_WORKLOADS_OS_MODELS_H_
