// CoopHarness: run multiple task "programs" against one Kernel with real blocking semantics.
//
// The simulator is single-threaded in spirit: exactly one task runs at a time and every
// cycle is charged deterministically. But C++ call stacks cannot be suspended, so a task
// body that calls a blocking operation (PipeReadBlocking and friends) needs somewhere to
// sleep while another task's body runs. The harness gives each registered task its own
// host thread and serializes them strictly: a thread runs only while its task is the
// kernel's current task; Kernel::SwitchTo parks the switching thread and wakes the target's.
// Simulated time, counters, and scheduling decisions remain fully deterministic — host
// threads are pure continuation storage, never a source of parallelism.
//
// Usage:
//   CoopHarness harness(kernel);
//   harness.AddTask(producer, [&] { kernel.PipeWriteBlocking(pipe, src, kBig); });
//   harness.AddTask(consumer, [&] { kernel.PipeReadBlocking(pipe, dst, kBig); });
//   harness.Run();  // returns when every body has finished

#ifndef PPCMM_SRC_WORKLOADS_COOP_H_
#define PPCMM_SRC_WORKLOADS_COOP_H_

#include <condition_variable>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "src/kernel/kernel.h"

namespace ppcmm {

// Runs registered task bodies to completion under the kernel's scheduler.
class CoopHarness {
 public:
  explicit CoopHarness(Kernel& kernel);
  ~CoopHarness();

  CoopHarness(const CoopHarness&) = delete;
  CoopHarness& operator=(const CoopHarness&) = delete;

  // Registers a body for `task` (which must already exist and be runnable). Bodies run when
  // the scheduler selects their task; they may call blocking kernel operations freely.
  void AddTask(TaskId task, std::function<void()> body);

  // Runs until every registered body returns. Exceptions thrown by bodies (including
  // deadlock checks) are rethrown here. Tasks are NOT exited automatically; bodies that
  // want to die call Exit themselves, otherwise the task survives for inspection.
  void Run();

 private:
  struct Fiber {
    std::function<void()> body;
    std::thread thread;
    std::condition_variable cv;
    bool may_run = false;   // this fiber holds the simulation baton
    bool started = false;
    bool done = false;
  };

  // The kernel's switch hook: parks the calling fiber, wakes the target's.
  void OnSwitch(TaskId previous, TaskId next);
  // Blocks the calling thread until its fiber is handed the baton.
  void WaitForBaton(Fiber& fiber);
  void HandBatonTo(TaskId task);
  // Called at the end of a body: hands the baton to the next runnable fiber or back to Run.
  void FinishFiber(TaskId task);
  Fiber* FindFiber(TaskId task);

  Kernel& kernel_;
  std::mutex mutex_;
  std::map<uint32_t, std::unique_ptr<Fiber>> fibers_;
  std::condition_variable main_cv_;
  bool main_may_run_ = true;
  bool shutting_down_ = false;
  uint32_t live_fibers_ = 0;
  std::exception_ptr failure_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_WORKLOADS_COOP_H_
