#include "src/workloads/os_models.h"

#include <iterator>

#include "src/sim/check.h"
#include "src/sim/sweep_runner.h"

namespace ppcmm {

std::string OsName(OsPersonality os) {
  switch (os) {
    case OsPersonality::kLinuxOptimized:
      return "Linux/PPC";
    case OsPersonality::kLinuxUnoptimized:
      return "Unoptimized Linux/PPC";
    case OsPersonality::kRhapsody:
      return "Rhapsody 5.0";
    case OsPersonality::kMkLinux:
      return "MkLinux";
    case OsPersonality::kAix:
      return "AIX";
    case OsPersonality::kL4Style:
      return "L4-style (extension)";
  }
  PPCMM_CHECK_MSG(false, "unknown OS personality");
  return {};
}

OsModelSpec MakeOsModel(OsPersonality os) {
  OsModelSpec spec;
  spec.personality = os;
  KernelCostModel base;

  switch (os) {
    case OsPersonality::kLinuxOptimized:
      spec.opts = OptimizationConfig::AllOptimizations();
      spec.costs = base;
      break;

    case OsPersonality::kLinuxUnoptimized:
      spec.opts = OptimizationConfig::Baseline();
      spec.costs = base;
      break;

    case OsPersonality::kAix: {
      // Monolithic and competent at the MMU level (AIX invented the PPC hash table), but a
      // heavyweight commercial syscall/dispatch path: roughly 5× the optimized Linux flat
      // costs, with working hash-table management (tuned scatter, lazy-ish flushing).
      spec.opts = OptimizationConfig::Baseline();
      spec.opts.vsid_scatter = kDefaultVsidScatter;
      spec.opts.optimized_handlers = true;
      spec.opts.lazy_context_flush = true;
      spec.opts.range_flush_cutoff = 32;
      spec.costs = base;
      spec.costs.syscall_body_opt = base.syscall_body_opt * 5 + 400;
      spec.costs.ctxsw_body_opt = base.ctxsw_body_opt * 5 + 800;
      spec.costs.fault_body_opt = base.fault_body_opt * 3;
      spec.costs.copy_cycles_per_line = base.copy_cycles_per_line + 8;
      break;
    }

    case OsPersonality::kMkLinux: {
      // Mach 3 + Linux single server: each POSIX syscall is a Mach trap, an IPC into the
      // server's address space and an IPC back — two extra protection crossings, each about
      // the size of an unoptimized context switch plus a message build/copy. Context switch
      // goes through the Mach scheduler and two address spaces.
      spec.opts = OptimizationConfig::Baseline();
      spec.costs = base;
      const uint32_t crossing = base.ctxsw_body_unopt + 600;  // trap + msg + schedule
      spec.costs.syscall_body_unopt = base.syscall_body_unopt + 2 * crossing;
      spec.costs.ctxsw_body_unopt = base.ctxsw_body_unopt * 2 + 2 * crossing;
      spec.costs.fault_body_unopt = base.fault_body_unopt + 2 * crossing;  // external pager
      spec.costs.copy_cycles_per_line = base.copy_cycles_per_line * 2;     // double copies
      break;
    }

    case OsPersonality::kL4Style: {
      // Liedtke-style fast IPC: crossings cost ~10% of a Mach crossing, handlers are tuned
      // assembly, and the MMU management is competent (tuned hash use, lazy-ish flushing).
      spec.opts = OptimizationConfig::Baseline();
      spec.opts.optimized_handlers = true;
      spec.opts.vsid_scatter = kDefaultVsidScatter;
      spec.costs = base;
      const uint32_t crossing = 230;  // trap + register-only IPC + direct switch
      spec.costs.syscall_body_opt = base.syscall_body_opt + 2 * crossing;
      spec.costs.ctxsw_body_opt = base.ctxsw_body_opt + crossing;
      spec.costs.fault_body_opt = base.fault_body_opt + 2 * crossing;  // user pager
      break;
    }

    case OsPersonality::kRhapsody: {
      // Mach-based like MkLinux but with the BSD server colocated in the kernel: one
      // crossing each way is cheaper, bulk copy less penalized.
      spec.opts = OptimizationConfig::Baseline();
      spec.costs = base;
      const uint32_t crossing = base.ctxsw_body_unopt + 200;
      spec.costs.syscall_body_unopt = base.syscall_body_unopt + crossing;
      spec.costs.ctxsw_body_unopt = base.ctxsw_body_unopt * 2 + crossing;
      spec.costs.fault_body_unopt = base.fault_body_unopt + crossing;
      spec.costs.copy_cycles_per_line = base.copy_cycles_per_line * 3 / 2;
      break;
    }
  }
  return spec;
}

Table3Row RunTable3Row(OsPersonality os, const MachineConfig& machine) {
  const OsModelSpec spec = MakeOsModel(os);
  System system(machine, spec.opts, spec.costs);
  LmBench suite(system);

  Table3Row row;
  row.os = OsName(os);
  row.null_syscall_us = suite.NullSyscallUs();
  row.ctxsw_us = suite.ContextSwitchUs(2);
  row.pipe_latency_us = suite.PipeLatencyUs();
  row.pipe_bandwidth_mbs = suite.PipeBandwidthMbs();
  return row;
}

std::vector<Table3Row> RunTable3(const MachineConfig& machine) {
  // Each personality is an independent System; sweep them across host threads. Map returns
  // rows in index order, so the table reads identically to the old serial loop.
  const OsPersonality personalities[] = {
      OsPersonality::kLinuxOptimized, OsPersonality::kLinuxUnoptimized,
      OsPersonality::kRhapsody,       OsPersonality::kMkLinux,
      OsPersonality::kAix,
  };
  SweepRunner runner;
  return runner.Map(std::size(personalities),
                    [&](size_t i) { return RunTable3Row(personalities[i], machine); });
}

std::vector<Table3Row> RunTable3WithExtensions(const MachineConfig& machine) {
  std::vector<Table3Row> rows = RunTable3(machine);
  rows.push_back(RunTable3Row(OsPersonality::kL4Style, machine));
  return rows;
}

}  // namespace ppcmm
