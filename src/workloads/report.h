// Fixed-width table formatting for the benchmark harnesses, plus paper-vs-measured rows for
// EXPERIMENTS.md.

#ifndef PPCMM_SRC_WORKLOADS_REPORT_H_
#define PPCMM_SRC_WORKLOADS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ppcmm {

// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  std::string ToString() const;

  // Cell formatting helpers.
  static std::string Us(double micros);      // "41.3 us"
  static std::string Mbs(double mbs);        // "52.1 MB/s"
  static std::string Pct(double fraction);   // "75%"
  static std::string Num(double value, int precision = 1);
  static std::string Count(uint64_t value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_WORKLOADS_REPORT_H_
