// The X-server-shaped workload for §5.1's frame-buffer discussion.
//
// An "X server" task services drawing requests from client tasks over pipes and renders
// into the framebuffer aperture. Rendering sweeps scanlines across hundreds of framebuffer
// pages — far beyond the DTLB reach — so without a dedicated BAT every burst of drawing
// evicts the clients' and the kernel's translations ("programs such as X ... compete
// constantly with other applications or the kernel for TLB space").
//
// The paper also reports the negative result: for applications that rarely touch I/O space
// the BAT made no significant difference. RunXServerWorkload's `draw_fraction` knob covers
// both regimes.

#ifndef PPCMM_SRC_WORKLOADS_XSERVER_H_
#define PPCMM_SRC_WORKLOADS_XSERVER_H_

#include <cstdint>

#include "src/core/system.h"

namespace ppcmm {

struct XServerConfig {
  uint32_t clients = 3;
  uint32_t requests_per_client = 40;
  // Framebuffer pages touched per drawing request (the "heavy" regime sweeps many).
  uint32_t pages_per_draw = 48;
  // Fraction (percent) of requests that actually draw; the rest are round trips only —
  // the paper's "rarely accessed a large number of I/O addresses" regime at low values.
  uint32_t draw_percent = 100;
  // Client-side compute working set between requests.
  uint32_t client_pages = 24;
};

struct XServerResult {
  double seconds = 0;
  HwCounters counters;
  uint64_t draws = 0;
};

// Runs the X workload in `system` (whose OptimizationConfig decides whether the framebuffer
// is BAT-mapped) and reports interval counters.
XServerResult RunXServerWorkload(System& system, const XServerConfig& config);

}  // namespace ppcmm

#endif  // PPCMM_SRC_WORKLOADS_XSERVER_H_
