#include "src/workloads/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/sim/check.h"

namespace ppcmm {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  PPCMM_CHECK_MSG(cells.size() == header_.size(), "row width " << cells.size()
                                                               << " != header width "
                                                               << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      oss << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    oss << "\n";
  };
  emit_row(header_);
  std::string rule;
  for (size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  oss << rule << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return oss.str();
}

std::string TextTable::Us(double micros) {
  std::ostringstream oss;
  if (micros >= 100) {
    oss << std::fixed << std::setprecision(0);
  } else {
    oss << std::fixed << std::setprecision(1);
  }
  oss << micros << " us";
  return oss.str();
}

std::string TextTable::Mbs(double mbs) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(1) << mbs << " MB/s";
  return oss.str();
}

std::string TextTable::Pct(double fraction) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(0) << fraction * 100.0 << "%";
  return oss.str();
}

std::string TextTable::Num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string TextTable::Count(uint64_t value) {
  std::ostringstream oss;
  oss << value;
  return oss.str();
}

}  // namespace ppcmm
