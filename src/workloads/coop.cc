#include "src/workloads/coop.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "src/sim/check.h"

namespace ppcmm {

namespace {

// Thrown into parked fibers at teardown to unwind them out of kernel code.
struct ShutdownSignal {};

}  // namespace

// Caller identification: which fiber (if any) owns the current host thread.
namespace {
thread_local void* current_fiber_key = nullptr;
}  // namespace

CoopHarness::CoopHarness(Kernel& kernel) : kernel_(kernel) {
  kernel_.SetSwitchHook([this](TaskId previous, TaskId next) { OnSwitch(previous, next); });
}

CoopHarness::~CoopHarness() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
    for (auto& [id, fiber] : fibers_) {
      fiber->cv.notify_all();
    }
  }
  for (auto& [id, fiber] : fibers_) {
    if (fiber->thread.joinable()) {
      fiber->thread.join();
    }
  }
  kernel_.SetSwitchHook(nullptr);
}

void CoopHarness::AddTask(TaskId task, std::function<void()> body) {
  PPCMM_CHECK_MSG(kernel_.TaskExists(task), "AddTask for unknown task " << task.value);
  std::unique_lock<std::mutex> lock(mutex_);
  PPCMM_CHECK_MSG(!fibers_.contains(task.value), "task " << task.value << " already has a body");
  auto fiber = std::make_unique<Fiber>();
  fiber->body = std::move(body);
  Fiber* raw = fiber.get();
  ++live_fibers_;
  fiber->thread = std::thread([this, task, raw] {
    current_fiber_key = raw;
    try {
      WaitForBaton(*raw);
      raw->body();
    } catch (const ShutdownSignal&) {
      std::unique_lock<std::mutex> lock2(mutex_);
      raw->done = true;
      --live_fibers_;
      return;  // teardown: no baton handoff
    } catch (...) {
      std::unique_lock<std::mutex> lock2(mutex_);
      if (!failure_) {
        failure_ = std::current_exception();
      }
    }
    FinishFiber(task);
  });
  fibers_.emplace(task.value, std::move(fiber));
}

void CoopHarness::Run() {
  TaskId first{0};
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (fibers_.empty()) {
      return;
    }
    main_may_run_ = true;
  }
  // Pick the first registered runnable task, re-queueing any unregistered ones we skip.
  std::vector<TaskId> skipped;
  while (true) {
    const std::optional<TaskId> pick = kernel_.scheduler().PickNext();
    PPCMM_CHECK_MSG(pick.has_value(), "CoopHarness::Run: no registered task is runnable");
    if (FindFiber(*pick) != nullptr) {
      first = *pick;
      break;
    }
    skipped.push_back(*pick);
  }
  for (const TaskId task : skipped) {
    kernel_.scheduler().MakeRunnable(task);
  }

  kernel_.SwitchTo(first);  // the hook parks this (main) thread until the fibers finish

  std::unique_lock<std::mutex> lock(mutex_);
  main_cv_.wait(lock, [&] { return main_may_run_; });
  if (failure_) {
    const std::exception_ptr failure = failure_;
    failure_ = nullptr;
    std::rethrow_exception(failure);
  }
}

void CoopHarness::OnSwitch(TaskId /*previous*/, TaskId next) {
  std::unique_lock<std::mutex> lock(mutex_);
  Fiber* target = FindFiber(next);
  if (target == nullptr || target->done) {
    // Switching to a task without a live registered body: the caller keeps driving it
    // inline (the pre-harness style). Nothing to park or wake.
    return;
  }
  target->may_run = true;
  target->cv.notify_all();

  Fiber* caller = static_cast<Fiber*>(current_fiber_key);
  if (caller == nullptr) {
    // The main thread: park until the run completes.
    main_may_run_ = false;
    main_cv_.wait(lock, [&] { return main_may_run_; });
    return;
  }
  if (caller->done) {
    return;  // a finishing fiber handing the baton off; its thread exits next
  }
  caller->may_run = false;
  caller->cv.wait(lock, [&] { return caller->may_run || shutting_down_; });
  if (!caller->may_run && shutting_down_) {
    throw ShutdownSignal{};
  }
}

void CoopHarness::WaitForBaton(Fiber& fiber) {
  std::unique_lock<std::mutex> lock(mutex_);
  fiber.started = true;
  fiber.cv.wait(lock, [&] { return fiber.may_run || shutting_down_; });
  if (!fiber.may_run && shutting_down_) {
    throw ShutdownSignal{};
  }
}

void CoopHarness::FinishFiber(TaskId task) {
  TaskId next{0};
  // A finished body's task must leave the scheduler: its continuation no longer exists, so
  // the task parks as blocked (a later manual SwitchTo may still revive it for inspection).
  if (kernel_.TaskExists(task)) {
    Task& finished = kernel_.task(task);
    if (finished.state != TaskState::kZombie) {
      finished.state = TaskState::kBlocked;
    }
    kernel_.scheduler().Remove(task);
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    Fiber* fiber = FindFiber(task);
    fiber->done = true;
    --live_fibers_;
    if (shutting_down_) {
      return;
    }
    if (failure_ || live_fibers_ == 0) {
      main_may_run_ = true;
      main_cv_.notify_all();
      return;
    }
    // Hand the baton to the next registered runnable fiber.
    std::vector<TaskId> skipped;
    std::optional<TaskId> pick;
    while ((pick = kernel_.scheduler().PickNext()).has_value()) {
      Fiber* candidate = FindFiber(*pick);
      if (candidate != nullptr && !candidate->done) {
        next = *pick;
        break;
      }
      skipped.push_back(*pick);
    }
    for (const TaskId skipped_task : skipped) {
      kernel_.scheduler().MakeRunnable(skipped_task);
    }
    if (next.value == 0) {
      // Live fibers remain but none is runnable: they are blocked forever.
      failure_ = std::make_exception_ptr(
          std::runtime_error("CoopHarness: all remaining task bodies are blocked"));
      main_may_run_ = true;
      main_cv_.notify_all();
      return;
    }
  }
  kernel_.SwitchTo(next);  // hook wakes the target; this (done) fiber returns immediately
}

CoopHarness::Fiber* CoopHarness::FindFiber(TaskId task) {
  auto it = fibers_.find(task.value);
  return it == fibers_.end() ? nullptr : it->second.get();
}

}  // namespace ppcmm
