#include "src/workloads/xserver.h"

#include <algorithm>
#include <vector>

#include "src/kernel/layout.h"
#include "src/sim/rng.h"

namespace ppcmm {

XServerResult RunXServerWorkload(System& system, const XServerConfig& config) {
  Kernel& kernel = system.kernel();
  Rng rng(0xE5);

  // The server: maps the framebuffer, waits for requests.
  const TaskId xserver = kernel.CreateTask("X");
  kernel.Exec(xserver, ExecImage{.text_pages = 24, .data_pages = 48, .stack_pages = 4});
  kernel.SwitchTo(xserver);
  const uint32_t fb_start = kernel.MapFramebuffer();
  kernel.UserTouchRange(EffAddr(kUserDataBase), 16 * kPageSize, kPageSize,
                        AccessKind::kStore);

  std::vector<TaskId> clients;
  std::vector<uint32_t> request_pipes;
  std::vector<uint32_t> reply_pipes;
  for (uint32_t c = 0; c < config.clients; ++c) {
    const TaskId client = kernel.CreateTask("client" + std::to_string(c));
    kernel.Exec(client, ExecImage{.text_pages = 8,
                                  .data_pages = config.client_pages + 8,
                                  .stack_pages = 2});
    kernel.SwitchTo(client);
    kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
    clients.push_back(client);
    request_pipes.push_back(kernel.CreatePipe());
    reply_pipes.push_back(kernel.CreatePipe());
  }

  const HwCounters before = system.counters();
  const Cycles start = system.machine().Now();
  XServerResult result;

  uint32_t scanline_cursor = 0;
  for (uint32_t round = 0; round < config.requests_per_client; ++round) {
    for (uint32_t c = 0; c < config.clients; ++c) {
      // Client: compute, then send a request.
      kernel.SwitchTo(clients[c]);
      kernel.UserExecute(256);
      // One load every third page of the client's heap, as a single page-grained run.
      kernel.UserTouchRun(EffAddr(kUserDataBase + (round % 8) * 64), 3 * kPageSize,
                          (config.client_pages + 2) / 3, AccessKind::kLoad);
      kernel.PipeWrite(request_pipes[c], EffAddr(kUserDataBase), 64);

      // Server: receive, maybe draw, reply.
      kernel.SwitchTo(xserver);
      kernel.PipeRead(request_pipes[c], EffAddr(kUserDataBase + 0x4000), 64);
      kernel.UserExecute(128);
      if (rng.Chance(config.draw_percent, 100)) {
        ++result.draws;
        // Sweep scanlines: one store per 1 KB line across pages_per_draw framebuffer
        // pages, emitted as contiguous runs (split only where the aperture wraps).
        const uint32_t fb_pages = kFramebufferBytes / kPageSize;
        uint32_t page = scanline_cursor;
        uint32_t left = config.pages_per_draw;
        while (left > 0) {
          const uint32_t chunk = std::min(left, fb_pages - page);
          kernel.UserTouchRun(EffAddr::FromPage(fb_start + page), 1024, chunk * 4,
                              AccessKind::kStore);
          page = (page + chunk) % fb_pages;
          left -= chunk;
        }
        scanline_cursor = (scanline_cursor + config.pages_per_draw) %
                          (kFramebufferBytes / kPageSize);
      }
      kernel.PipeWrite(reply_pipes[c], EffAddr(kUserDataBase + 0x4000), 16);
      kernel.SwitchTo(clients[c]);
      kernel.PipeRead(reply_pipes[c], EffAddr(kUserDataBase + 0x2000), 16);
    }
  }

  result.counters = system.counters().Diff(before);
  result.seconds = CyclesToSeconds(system.machine().Now() - start,
                                   system.machine_config().clock_mhz);
  for (const TaskId client : clients) {
    kernel.Exit(client);
  }
  kernel.Exit(xserver);
  return result;
}

}  // namespace ppcmm
