// LmBench-shaped microbenchmark drivers (§4 of the paper: "Tests were made using LmBench").
//
// Each driver issues the same kernel-operation sequence as the corresponding LmBench test
// against the simulated kernel, and reports simulated time. The tests:
//
//   NullSyscall       lat_syscall null — getpid() in a loop
//   ContextSwitch     lat_ctx — a ring of N processes passing a token through pipes,
//                     reported per switch with the pipe overhead subtracted
//   PipeLatency       lat_pipe — two processes ping-ponging one byte (one-way latency)
//   PipeBandwidth     bw_pipe — bulk 4 KB transfers through a pipe
//   FileReread        bw_file_rd — rereading a page-cache-resident file
//   MmapLatency       lat_mmap — repeatedly mapping and unmapping a file region; the test
//                     the lazy-flush work improves 80× (§7)
//   ProcessStart      lat_proc — fork + exec + exit

#ifndef PPCMM_SRC_WORKLOADS_LMBENCH_H_
#define PPCMM_SRC_WORKLOADS_LMBENCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/system.h"

namespace ppcmm {

// Results of a full suite run, in the units the paper's tables use.
struct LmBenchResult {
  double null_syscall_us = 0;
  double ctxsw_2p_us = 0;
  double ctxsw_8p_us = 0;
  double pipe_latency_us = 0;
  double pipe_bandwidth_mbs = 0;
  double file_reread_mbs = 0;
  double mmap_latency_us = 0;
  double process_start_us = 0;
};

// Iteration counts; defaults keep a full suite under a second of host time.
struct LmBenchParams {
  uint32_t syscall_iters = 400;
  uint32_t ctxsw_passes = 60;
  uint32_t pipe_latency_iters = 150;
  uint32_t pipe_bandwidth_bytes = 1 << 20;  // 1 MB
  uint32_t file_pages = 256;                // 1 MB file, larger than L1
  uint32_t file_reread_iters = 3;
  uint32_t mmap_pages = 64;  // within the paper's 40–110 page flush ranges
  uint32_t mmap_iters = 20;
  uint32_t proc_start_iters = 10;
  uint32_t ctxsw_working_set_kb = 4;  // touched by each process per switch
  // Per-process resident footprint cycled during the pipe tests (code + libc + data pages a
  // real lmbench process keeps live). This is what makes the reload strategy visible: with
  // two processes plus the kernel the 603's 64-entry DTLB stays under steady pressure.
  uint32_t app_footprint_pages = 40;
};

// The suite driver. Creates its own processes inside the given system.
class LmBench {
 public:
  explicit LmBench(System& system, LmBenchParams params = LmBenchParams{});

  double NullSyscallUs();
  // Per-switch latency for an N-process ring, pipe overhead subtracted.
  double ContextSwitchUs(uint32_t nproc);
  double PipeLatencyUs();
  double PipeBandwidthMbs();
  double FileRereadMbs();
  double MmapLatencyUs();
  double ProcessStartUs();

  LmBenchResult RunAll();

 private:
  // Spawns a standard exec'd process and warms its minimal working set.
  TaskId Spawn(const std::string& name);
  // Touches `kb` of the current task's heap (the per-switch working set in lat_ctx).
  void TouchWorkingSet(uint32_t kb, uint32_t salt);
  // One slice of between-syscall application work for the current task: `pages` pages of
  // the resident footprint plus a few instructions.
  void AppWork(uint32_t iter, uint32_t pages);

  System& system_;
  Kernel& kernel_;
  LmBenchParams params_;
  FileId shared_text_;  // the "binary" images of spawned processes
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_WORKLOADS_LMBENCH_H_
