#include "src/workloads/multiuser.h"

#include <vector>

#include "src/kernel/layout.h"
#include "src/sim/rng.h"

namespace ppcmm {

namespace {

struct User {
  TaskId shell;
  uint32_t mail_pipe = 0;
};

}  // namespace

MultiuserResult RunMultiuserWorkload(System& system, const MultiuserConfig& config) {
  Kernel& kernel = system.kernel();
  Rng rng(config.seed);

  const FileId shell_image = kernel.page_cache().CreateFile(8);
  const FileId cc_image = kernel.page_cache().CreateFile(32);
  const FileId editor_image = kernel.page_cache().CreateFile(16);

  std::vector<User> users;
  for (uint32_t u = 0; u < config.users; ++u) {
    User user;
    user.shell = kernel.CreateTask("sh" + std::to_string(u));
    kernel.Exec(user.shell, ExecImage{.text_pages = 8,
                                      .data_pages = config.editor_buffer_pages + 16,
                                      .stack_pages = 4,
                                      .text_file = shell_image});
    kernel.SwitchTo(user.shell);
    kernel.UserExecute(128);
    user.mail_pipe = kernel.CreatePipe();
    users.push_back(user);
  }

  const HwCounters before = system.counters();
  const Cycles start = system.machine().Now();
  MultiuserResult result;

  for (uint32_t round = 0; round < config.rounds; ++round) {
    for (uint32_t u = 0; u < config.users; ++u) {
      User& user = users[u];
      kernel.SwitchTo(user.shell);

      switch ((round + u) % 4) {
        case 0: {
          // Editing: bursts of keystrokes over a resident buffer, periodic autosave.
          const FileId autosave = kernel.page_cache().CreateFile(4);
          for (uint32_t burst = 0; burst < 6; ++burst) {
            kernel.UserExecute(256);
            // Keystroke burst over the resident buffer, emitted as page-grained runs: a
            // load sweep of every other page, with every fourth touched page also stored
            // (the dirty ratio the per-page random walk used to produce).
            const EffAddr line(kUserDataBase + (burst % 16) * 64);
            kernel.UserTouchRun(line, 2 * kPageSize, (config.editor_buffer_pages + 1) / 2,
                                AccessKind::kLoad);
            kernel.UserTouchRun(line, 8 * kPageSize, (config.editor_buffer_pages + 7) / 8,
                                AccessKind::kStore);
          }
          kernel.FileWrite(autosave, 0, 2 * kPageSize, EffAddr(kUserDataBase));
          kernel.SimulateIoWait(Cycles(kernel.costs().disk_latency_cycles / 2));
          kernel.page_cache().DeleteFile(autosave);
          ++result.operations;
          break;
        }
        case 1: {
          // Compiling: fork + exec + working-set churn + object write, then reap.
          const TaskId cc = kernel.Fork(user.shell);
          kernel.SwitchTo(cc);
          kernel.Exec(cc, ExecImage{.text_pages = 32,
                                    .data_pages = config.compile_ws_pages + 8,
                                    .stack_pages = 4,
                                    .text_file = cc_image});
          for (uint32_t pass = 0; pass < 3; ++pass) {
            kernel.UserExecute(1024);
            // Working-set churn as runs: a full load sweep at a per-pass line offset,
            // then a store sweep over a third of the pages (the old per-page 1-in-3).
            const uint32_t offset = static_cast<uint32_t>(rng.NextBelow(64)) * 64;
            kernel.UserTouchRun(EffAddr(kUserDataBase + offset), kPageSize,
                                config.compile_ws_pages, AccessKind::kLoad);
            kernel.UserTouchRun(EffAddr(kUserDataBase + offset), 3 * kPageSize,
                                (config.compile_ws_pages + 2) / 3, AccessKind::kStore);
          }
          const FileId object = kernel.page_cache().CreateFile(2);
          kernel.FileWrite(object, 0, 2 * kPageSize, EffAddr(kUserDataBase));
          kernel.SimulateIoWait(Cycles(kernel.costs().disk_latency_cycles));
          kernel.Exit(cc);
          kernel.SwitchTo(user.shell);
          kernel.page_cache().DeleteFile(object);
          ++result.operations;
          break;
        }
        case 2: {
          // Shell: a couple of quick child commands (ls-ish process starts).
          for (uint32_t cmd = 0; cmd < 2; ++cmd) {
            const TaskId child = kernel.Fork(user.shell);
            kernel.SwitchTo(child);
            kernel.Exec(child, ExecImage{.text_pages = 8,
                                         .data_pages = 8,
                                         .stack_pages = 2,
                                         .text_file = shell_image});
            kernel.UserExecute(512);
            kernel.NullSyscall();
            kernel.Exit(child);
            kernel.SwitchTo(user.shell);
          }
          ++result.operations;
          break;
        }
        case 3: {
          // Mail: messages round-trip through the user's pipe (an MTA in miniature),
          // reading the spool from the editor image as a stand-in.
          for (uint32_t m = 0; m < config.mail_messages; ++m) {
            kernel.UserTouch(EffAddr(kUserDataBase + 0x2000), AccessKind::kStore);
            kernel.PipeWrite(user.mail_pipe, EffAddr(kUserDataBase + 0x2000), 512);
            kernel.PipeRead(user.mail_pipe, EffAddr(kUserDataBase + 0x3000), 512);
          }
          kernel.FileRead(editor_image, 0, 4 * kPageSize, EffAddr(kUserDataBase + 0x4000));
          ++result.operations;
          break;
        }
      }
    }
    // Between rounds the machine is briefly idle (everyone is thinking/typing).
    kernel.RunIdle(Cycles(20'000));
  }

  result.counters = system.counters().Diff(before);
  result.seconds = CyclesToSeconds(system.machine().Now() - start,
                                   system.machine_config().clock_mhz);
  result.ops_per_second =
      result.seconds > 0 ? static_cast<double>(result.operations) / result.seconds : 0;
  for (const User& user : users) {
    kernel.Exit(user.shell);
  }
  return result;
}

}  // namespace ppcmm
