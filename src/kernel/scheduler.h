// Cooperative scheduler: a round-robin run queue plus wait queues, so workloads can use
// blocking pipe I/O instead of hand-orchestrated context switches.
//
// The paper's benchmarks run on the real Linux scheduler; this is the minimal faithful
// equivalent: FIFO run queue, sleep_on/wake_up-style wait queues, and the idle task as the
// fallback when nothing is runnable. Deadlock (everything blocked, nothing to wake anyone)
// is a programming error and trips a check.

#ifndef PPCMM_SRC_KERNEL_SCHEDULER_H_
#define PPCMM_SRC_KERNEL_SCHEDULER_H_

#include <deque>
#include <map>
#include <optional>
#include <unordered_set>

#include "src/kernel/task.h"

namespace ppcmm {

// One wait queue (a pipe's readers, a pipe's writers, ...).
class WaitQueue {
 public:
  void Add(TaskId task) { waiters_.push_back(task); }

  // Pops the longest-waiting task, if any.
  std::optional<TaskId> PopOne() {
    if (waiters_.empty()) {
      return std::nullopt;
    }
    const TaskId task = waiters_.front();
    waiters_.pop_front();
    return task;
  }

  // Removes a task wherever it sits (task exit while queued).
  void Remove(TaskId task) {
    std::erase_if(waiters_, [task](TaskId t) { return t == task; });
  }

  bool Empty() const { return waiters_.empty(); }
  uint32_t Size() const { return static_cast<uint32_t>(waiters_.size()); }

 private:
  std::deque<TaskId> waiters_;
};

// The FIFO run queue.
class Scheduler {
 public:
  // Appends `task` if it is not already queued.
  void MakeRunnable(TaskId task) {
    if (queued_.insert(task.value).second) {
      queue_.push_back(task);
    }
  }

  // Removes `task` entirely (blocked or exited).
  void Remove(TaskId task) {
    if (queued_.erase(task.value) > 0) {
      std::erase_if(queue_, [task](TaskId t) { return t == task; });
    }
  }

  // Pops the head of the queue, or nullopt when nothing is runnable.
  std::optional<TaskId> PickNext() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    const TaskId task = queue_.front();
    queue_.pop_front();
    queued_.erase(task.value);
    return task;
  }

  // SMP variant: pops the longest-queued task allowed to run on `cpu`. A task with no
  // affinity runs anywhere; with no affinities set at all this is exactly PickNext(), so
  // the uniprocessor scheduling order is untouched.
  std::optional<TaskId> PickNextFor(uint32_t cpu) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      const auto aff = affinity_.find(it->value);
      if (aff != affinity_.end() && aff->second != cpu) {
        continue;
      }
      const TaskId task = *it;
      queue_.erase(it);
      queued_.erase(task.value);
      return task;
    }
    return std::nullopt;
  }

  // Pins `task` to `cpu`: PickNextFor on any other CPU skips it. Affinity survives
  // blocking and waking; ClearAffinity (or task exit) lifts the pin.
  void SetAffinity(TaskId task, uint32_t cpu) { affinity_[task.value] = cpu; }
  void ClearAffinity(TaskId task) { affinity_.erase(task.value); }
  std::optional<uint32_t> AffinityOf(TaskId task) const {
    const auto it = affinity_.find(task.value);
    return it == affinity_.end() ? std::nullopt : std::optional<uint32_t>(it->second);
  }

  bool IsQueued(TaskId task) const { return queued_.contains(task.value); }
  uint32_t RunnableCount() const { return static_cast<uint32_t>(queue_.size()); }

 private:
  std::deque<TaskId> queue_;
  std::unordered_set<uint32_t> queued_;
  // task id -> pinned CPU. std::map keeps any future iteration deterministic.
  std::map<uint32_t, uint32_t> affinity_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_SCHEDULER_H_
