// The mini-kernel: a Linux/PPC-shaped process and memory-management core over the simulated
// machine and MMU.
//
// It implements exactly the mechanisms the paper optimizes — demand paging through the
// two-level PTE tree, copy-on-write fork, exec, mmap/munmap with range flushing, pipes,
// a page-cache file layer, context switching, and an idle task that can reclaim zombie HTAB
// entries (§7) and pre-zero pages (§9). Every kernel operation charges realistic instruction
// and data traffic against the machine, through the MMU, so kernel code competes with user
// code for TLB slots and cache lines (the §5.1 footprint effect).

#ifndef PPCMM_SRC_KERNEL_KERNEL_H_
#define PPCMM_SRC_KERNEL_KERNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>
#include <memory>
#include <optional>
#include <string>

#include "src/kernel/flush.h"
#include "src/kernel/layout.h"
#include "src/kernel/mem_manager.h"
#include "src/kernel/mm.h"
#include "src/kernel/opt_config.h"
#include "src/kernel/page_cache.h"
#include "src/kernel/scheduler.h"
#include "src/kernel/task.h"
#include "src/kernel/vsid_space.h"
#include "src/mmu/mmu.h"
#include "src/pagetable/page_allocator.h"
#include "src/sim/machine.h"
#include "src/sim/fault_injector.h"

namespace ppcmm {

// Tunable flat costs of kernel code paths, in cycles, beyond the charged memory traffic.
// The optimized values model the paper's hand-scheduled assembly paths (§6.1); the
// unoptimized values the original save-state-and-call-C paths.
struct KernelCostModel {
  uint32_t syscall_body_unopt = 1500;
  uint32_t syscall_body_opt = 140;
  uint32_t ctxsw_body_unopt = 1800;
  uint32_t ctxsw_body_opt = 260;
  uint32_t fault_body_unopt = 500;
  uint32_t fault_body_opt = 180;
  uint32_t fork_body = 1200;
  uint32_t exec_body = 2500;
  uint32_t copy_cycles_per_line = 24;  // word loop per 32-byte line, beyond cache accesses
  // sleep_on()/wake_up() pair charged on every pipe operation: blocking handoff through the
  // wait queue and run queue, the reason lat_pipe far exceeds 2*syscall + ctxsw.
  uint32_t pipe_wakeup_unopt = 1300;
  uint32_t pipe_wakeup_opt = 600;
  uint32_t disk_latency_cycles = 60000;  // rotational+transfer wait per page-cache miss
};

// Options for Mmap().
struct MmapOptions {
  std::optional<uint32_t> fixed_page;  // map at exactly this page (unmapping what's there)
  std::optional<FileId> file;          // file backing (nullopt = anonymous)
  uint32_t file_page_offset = 0;
  bool writable = true;
};

// One live (reachable) cached translation, as enumerated by ForEachLiveTranslation: a valid
// TLB or HTAB entry whose VSID still resolves through a live context or a kernel segment.
// Zombie entries (retired VSIDs, §7) are skipped — they are architecturally unreachable.
struct LiveTranslation {
  enum class Tier { kItlb, kDtlb, kHtab };
  Tier tier = Tier::kItlb;
  bool is_kernel = false;
  TaskId owner;         // the task whose context the VSID belongs to; {0} for kernel entries
  uint32_t ea_page = 0;  // 20-bit effective page number in the owner's address space
  uint32_t frame = 0;
  bool writable = false;
  bool changed = false;  // the C bit
};

// The image installed by Exec().
struct ExecImage {
  uint32_t text_pages = 16;
  uint32_t data_pages = 8;
  uint32_t stack_pages = 4;
  std::optional<FileId> text_file;  // shared text via the page cache when set
};

// One pipe: a single kernel buffer page with circular head/tail, plus the wait queues the
// blocking variants sleep on.
struct PipeState {
  uint32_t buffer_frame = 0;
  uint32_t used = 0;
  uint32_t read_pos = 0;
  WaitQueue readers;  // blocked until data arrives
  WaitQueue writers;  // blocked until space frees
  static constexpr uint32_t kCapacity = kPageSize;
};

// The kernel.
class Kernel : public PteBackingSource {
 public:
  Kernel(Machine& machine, const OptimizationConfig& config,
         const KernelCostModel& costs = KernelCostModel{});
  ~Kernel() override;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- process management ----

  // Creates a runnable task with an empty address space and switches nothing.
  TaskId CreateTask(std::string name);
  // Installs a fresh image into `task` (flushing its old context) and makes its initial
  // VMAs: text, data (heap) and stack.
  void Exec(TaskId task, const ExecImage& image);
  // Copy-on-write fork of `parent`. Returns the child.
  TaskId Fork(TaskId parent);
  // Tears the task down, freeing its pages and flushing its context.
  void Exit(TaskId task);
  // Context switch to `task` (which must exist and not be a zombie).
  void SwitchTo(TaskId task);

  // ---- SMP ----

  // Moves the execution spotlight to `cpu`: subsequent kernel calls, user touches, and
  // flushes run as that CPU, against its TLBs, caches, and segment registers. Each CPU
  // remembers its own current task. Charges nothing except any deferred whole-TLB flush
  // the CPU owes from shootdowns it skipped while idle (run here, on its own clock).
  void SwitchCpu(uint32_t cpu);
  uint32_t current_cpu() const { return smp_.current_cpu; }
  uint32_t ncpus() const { return smp_.ncpus; }
  // The task running on `cpu` ({0} = none: the CPU sits in its idle loop).
  TaskId CurrentOn(uint32_t cpu) const { return cpu_current_[cpu]; }
  // True while `cpu` owes a deferred whole-TLB flush: its TLB content is logically
  // invalidated, the tlbia runs at its next switch-in. The auditor tolerates (and counts)
  // stale entries only on such CPUs.
  bool FlushPendingOn(uint32_t cpu) const { return smp_.flush_pending[cpu] != 0; }

  TaskId current() const { return current_; }
  Task& task(TaskId id);
  bool TaskExists(TaskId id) const { return tasks_.contains(id.value); }
  uint32_t TaskCount() const { return static_cast<uint32_t>(tasks_.size()); }

  // ---- syscalls ----

  // getpid()-shaped syscall: entry/exit and nothing else.
  void NullSyscall();

  // mmap(): returns the start page of the new mapping. With `fixed_page`, anything already
  // mapped there is unmapped first — this is the path whose flush cost the paper measured
  // at 3+ milliseconds before the lazy scheme (§7).
  uint32_t Mmap(uint32_t page_count, const MmapOptions& options = MmapOptions{});
  void Munmap(uint32_t start_page, uint32_t page_count);

  // Maps the framebuffer aperture into the current task at kUserFramebufferBase (always
  // cache inhibited). With the framebuffer_bat extension a user-visible data BAT covers the
  // aperture instead of PTEs, so the mapping consumes no TLB or HTAB entries (§5.1).
  // Returns the start page.
  uint32_t MapFramebuffer();
  // First physical frame of the framebuffer aperture.
  uint32_t FramebufferFirstFrame() const { return framebuffer_first_frame_; }
  bool IsIoFrame(uint32_t frame) const { return frame >= framebuffer_first_frame_; }

  // Programs (on) or clears (off) the user-visible framebuffer DBAT — the §5.1 extension's
  // register write, exposed so workloads can model an X server remapping its aperture
  // mid-run. Independent of any VMA state; BatArray's generation counter keeps the MMU fast
  // path coherent across the rewrite.
  void SetFramebufferBat(bool on);
  // True while the framebuffer DBAT is programmed.
  bool FramebufferBatActive() { return mmu_->dbats().Get(1).valid; }

  // read()/write() through the page cache into/out of the current task's buffer.
  void FileRead(FileId file, uint32_t offset_bytes, uint32_t length, EffAddr user_dst);
  void FileWrite(FileId file, uint32_t offset_bytes, uint32_t length, EffAddr user_src);

  // ---- shared memory (SysV shm in miniature) ----

  // Creates a shared segment of zeroed pages; returns its id.
  uint32_t ShmCreate(uint32_t pages);
  // Maps segment `shm_id` into the current task (writable, shared — never COW).
  // Returns the start page.
  uint32_t ShmAttach(uint32_t shm_id);
  // Unmaps [start_page, +pages) like munmap (the segment itself survives).
  void ShmDetach(uint32_t start_page, uint32_t pages);
  // Destroys the segment, releasing its frames. Mappings must be detached first.
  void ShmDestroy(uint32_t shm_id);

  // pipes — non-blocking core (returns bytes moved; callers orchestrate switches)...
  uint32_t CreatePipe();
  uint32_t PipeWrite(uint32_t pipe, EffAddr user_src, uint32_t length);
  uint32_t PipeRead(uint32_t pipe, EffAddr user_dst, uint32_t length);
  // ...and blocking variants that sleep on the pipe's wait queues and let the scheduler run
  // whoever is ready, like real read(2)/write(2).
  void PipeWriteBlocking(uint32_t pipe, EffAddr user_src, uint32_t length);
  void PipeReadBlocking(uint32_t pipe, EffAddr user_dst, uint32_t length);

  // ---- cooperative scheduling ----

  // Installs a hook invoked at the end of every context switch with (previous, next).
  // The CoopHarness uses it to park and wake task-body threads; pass nullptr to clear.
  void SetSwitchHook(std::function<void(TaskId, TaskId)> hook) {
    switch_hook_ = std::move(hook);
  }

  // Installs a hook invoked on every scheduler activation (each context switch and each
  // RunIdle entry) — the closest thing this cooperative kernel has to a periodic timer
  // tick. The TimelineSampler uses it to take time-series snapshots; pass nullptr to clear.
  void SetTickHook(std::function<void()> hook) { tick_hook_ = std::move(hook); }

  // Moves the CPU to the longest-runnable task (round-robin); stays put if none.
  void Yield();
  // Blocks the current task on `queue` and schedules whoever is ready; trips a check on
  // deadlock (nothing runnable and nothing in flight to wake anyone).
  void BlockCurrentOn(WaitQueue& queue);
  // Wakes the longest waiter on `queue`, making it runnable. Returns true if one woke.
  bool WakeOne(WaitQueue& queue);
  void WakeAll(WaitQueue& queue);
  Scheduler& scheduler() { return scheduler_; }

  // ---- user-mode execution primitives ----

  // One user memory reference at `ea`, faulting pages in as needed.
  void UserTouch(EffAddr ea, AccessKind kind);
  // A page-grained access run: `count` references starting at `start`, each `stride`
  // bytes after the previous, faulting pages in mid-run as needed. Bit-identical to
  // calling UserTouch per access; the batched form lets the MMU replay whole translation
  // spans instead of re-validating every access (the workload-facing batching API).
  void UserTouchRun(EffAddr start, uint32_t stride, uint32_t count, AccessKind kind);
  // A strided run of user references (convenience for working-set loops).
  void UserTouchRange(EffAddr start, uint32_t bytes, uint32_t stride, AccessKind kind);
  // Models `instructions` of straight-line user execution: instruction fetches on the
  // current task's text page plus the base CPI.
  void UserExecute(uint32_t instructions);

  // ---- idle task ----

  // Runs the idle task for (at least) `budget` cycles: zombie reclaim and page zeroing per
  // policy, plain spinning otherwise (§7, §9, §10.1).
  void RunIdle(Cycles budget);
  // Models a disk wait: the CPU sits in the idle task for the duration.
  void SimulateIoWait(Cycles wait) { RunIdle(wait); }

  // ---- component access (instrumentation, tests, benches) ----

  Machine& machine() { return machine_; }
  Mmu& mmu() { return *mmu_; }
  VsidSpace& vsids() { return vsids_; }
  PageTable& kernel_page_table() { return *kernel_page_table_; }

  // Visits every task (auditing / instrumentation).
  template <typename Fn>
  void ForEachTask(Fn&& fn) {
    for (auto& [id, t] : tasks_) {
      fn(*t);
    }
  }

  // Visits every *live* cached translation — valid TLB entries and (when the strategy uses
  // the HTAB) valid HTAB entries whose VSID resolves through a live context or a kernel
  // segment. Zombies are skipped. Uncharged and side-effect free; the differential fuzzer
  // cross-checks each visit against its oracle and the owner's PTE tree.
  void ForEachLiveTranslation(const std::function<void(const LiveTranslation&)>& fn);

  // Threads a fault injector through every registered site (MMU access path, HTAB inserts,
  // get_free_page, VSID allocation, context switches). Pass nullptr to disarm.
  void SetFaultInjector(FaultInjector* injector);

  MemManager& mem() { return mem_; }
  PageCache& page_cache() { return page_cache_; }
  FlushEngine& flusher() { return flusher_; }
  PageAllocator& allocator() { return allocator_; }
  const OptimizationConfig& config() const { return config_; }
  const KernelCostModel& costs() const { return costs_; }
  HwCounters& counters() { return machine_.counters(); }

  // PteBackingSource: walks the kernel or current-user page table for the MMU.
  std::optional<PteWalkInfo> WalkPte(EffAddr ea, MemCharger& charger) override;
  // PteBackingSource: records a deferred C-bit update in the owning Linux PTE.
  void MarkPteDirty(EffAddr ea, MemCharger& charger) override;

 private:
  // Kernel code regions, used to charge per-operation instruction/data footprints.
  enum class KernelOp {
    kSyscallEntry,
    kContextSwitch,
    kPipe,
    kFileIo,
    kFault,
    kFork,
    kExec,
    kMmapCall,
    kIdleLoop,
  };

  // Charges the instruction fetches and kernel data references of one operation. With the
  // original (unoptimized) handlers the footprint doubles — the C paths are fatter.
  void ChargeKernelWork(KernelOp op);
  // One kernel memory reference at a kernel virtual address, through the MMU.
  void KernelTouch(EffAddr ea, AccessKind kind);

  void SetupKernelTranslation();
  // VSID epoch rollover: purges every user translation and reassigns all live contexts so
  // wrapped VSIDs can never alias pre-wrap ones (live or zombie).
  void HandleVsidRollover();
  // Fault injection: seed the HTAB with a burst of just-retired (zombie) PTEs.
  void InjectZombieFlood();
  void HandlePageFault(Task& task, EffAddr ea, AccessKind kind);
  void HandleCowFault(Task& task, EffAddr ea);
  // Copies between a user range and a kernel physical range, line by line.
  void CopyUserKernel(EffAddr user, PhysAddr kernel, uint32_t length, bool to_user);
  // Unmaps PTEs and releases frames in a page range (no flushing; callers flush first).
  void ReleaseRange(Mm& mm, uint32_t start_page, uint32_t page_count);
  // Drops one reference to a frame unless it belongs to an I/O aperture.
  void ReleaseFrame(uint32_t frame);
  Task& CurrentTask();

  Machine& machine_;
  OptimizationConfig config_;
  KernelCostModel costs_;
  VsidSpace vsids_;
  PageAllocator allocator_;
  MemManager mem_;
  std::unique_ptr<Mmu> mmu_;
  std::unique_ptr<PageTable> kernel_page_table_;
  FlushEngine flusher_;
  PageCache page_cache_;

  std::map<uint32_t, std::unique_ptr<Task>> tasks_;
  std::map<uint32_t, PipeState> pipes_;
  struct ShmSegment {
    std::vector<uint32_t> frames;
    uint32_t attach_count = 0;
  };
  std::map<uint32_t, ShmSegment> shm_segments_;
  uint32_t next_shm_ = 1;
  Scheduler scheduler_;
  std::function<void(TaskId, TaskId)> switch_hook_;
  std::function<void()> tick_hook_;
  uint32_t next_task_ = 1;
  uint32_t next_pipe_ = 1;
  uint32_t framebuffer_first_frame_ = 0;
  TaskId current_{0};
  // SMP bookkeeping: per-CPU idle/flush-pending flags (shared with the flush engine) and
  // per-CPU current tasks. Invariant: cpu_current_[smp_.current_cpu] == current_.
  SmpState smp_;
  std::vector<TaskId> cpu_current_;
  uint64_t idle_rr_cursor_ = 0;
  FaultInjector* injector_ = nullptr;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_KERNEL_H_
