// VSID allocation: memory-management contexts and their virtual segment identifiers.
//
// Implements both halves of the paper's §5.2/§7 story:
//   * VSIDs are derived from a context number multiplied by a small non-power-of-two
//     "scatter" constant, tuned to spread PTEs across the hash table and kill hot-spots.
//   * With lazy flushing, flushing a context means retiring its VSIDs (they become
//     "zombies" — still marked valid in HTAB/TLB entries but matching no live context)
//     and drawing fresh ones from a monotonically increasing context counter.
//
// The class is the system's VsidOracle: the HTAB uses it to tell live evictions apart from
// harmless zombie overwrites, and the idle task uses it to reclaim zombies.

#ifndef PPCMM_SRC_KERNEL_VSID_SPACE_H_
#define PPCMM_SRC_KERNEL_VSID_SPACE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_set>

#include "src/sim/addr.h"
#include "src/mmu/vsid_oracle.h"
#include "src/sim/fault_injector.h"

namespace ppcmm {

// A memory-management context number. Each live address space holds one; lazy flushing
// retires it and assigns a fresh one.
struct ContextId {
  uint32_t value = 0;
  constexpr auto operator<=>(const ContextId&) const = default;
};

// The default scatter constant. Non-power-of-two, co-prime with the PTEG count, found by the
// same histogram-guided tuning the paper describes (see bench/sec5_hash_utilization).
inline constexpr uint32_t kDefaultVsidScatter = 897;

// The per-segment VSID offset (Linux/PPC used 0x111): keeps the 12 user segments of one
// context distinct while letting the context term dominate the hash distribution. VSIDs
// remain unique provided scatter * delta_ctx never equals 0x111 * delta_seg — true for the
// dense default (16) at any context count and for 897 up to ~18k live+zombie contexts.
inline constexpr uint32_t kSegmentVsidStride = 0x111;

// The dense, PID-derived scheme the paper started from (effectively PID << 4): safe for
// isolation, catastrophic for hash spread.
inline constexpr uint32_t kNaiveVsidScatter = 16;

// Allocates contexts and maps (context, segment) pairs to VSIDs.
class VsidSpace : public VsidOracle {
 public:
  explicit VsidSpace(uint32_t scatter_constant = kDefaultVsidScatter);

  // Draws a fresh context and marks its user VSIDs live. The 24-bit VSID space is finite:
  // when the next context's VSID window would cross into a new "epoch" (wrap modulo 2^24 and
  // start re-issuing VSIDs that earlier contexts — live or zombie — may still own), the
  // rollover hook fires first so the kernel can retire every live context, purge all user
  // translations, and reassign. Recursive NewContext calls from inside the hook are safe.
  ContextId NewContext();

  // Installs the epoch-rollover hook. Called before the first allocation of each new epoch;
  // must leave no pre-rollover user VSID reachable (TLB, HTAB, segment registers).
  void SetRolloverHook(std::function<void()> hook) { rollover_hook_ = std::move(hook); }

  // Optional fault injection (kVsidWrap → ForceWrap on the next allocation); null = off.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  // Jumps the context counter to the end of the current epoch so the next NewContext
  // triggers a rollover. Deterministic; used by fault injection and the wraparound tests.
  void ForceWrap();

  // Retires a context: its VSIDs leave the live set and become zombies wherever they are
  // still cached. Safe to call once per context.
  void Retire(ContextId ctx);

  // The VSID for one user segment (0..11) of a context.
  Vsid UserVsid(ContextId ctx, uint32_t segment) const;

  // The fixed VSID for one kernel segment (12..15). Always live.
  static Vsid KernelVsid(uint32_t segment);
  static bool IsKernelVsid(Vsid vsid);

  // The full 16-register segment image for a context (user VSIDs + fixed kernel VSIDs).
  std::array<Vsid, kNumSegments> SegmentImage(ContextId ctx) const;

  // VsidOracle: kernel VSIDs and the VSIDs of unretired contexts are live.
  bool IsLive(Vsid vsid) const override;

  // True while `ctx` has been issued and not retired.
  bool ContextLive(ContextId ctx) const { return live_contexts_.contains(ctx.value); }

  uint32_t scatter() const { return scatter_; }
  uint32_t LiveContextCount() const { return static_cast<uint32_t>(live_contexts_.size()); }
  uint32_t ContextsIssued() const { return next_context_; }
  uint64_t CurrentEpoch() const { return epoch_; }
  uint64_t EpochRollovers() const { return rollovers_; }

 private:
  // The epoch a context's VSID window falls in: its highest user VSID, unmasked, divided by
  // 2^24. Using the top of the window means a context that would straddle the wrap boundary
  // is classified into the next epoch, so the rollover happens before any of its VSIDs can
  // alias a pre-wrap VSID.
  uint64_t EpochOf(uint32_t ctx) const;

  // True when any user VSID of `ctx` would land inside the fixed kernel VSID block.
  bool TouchesKernelVsids(uint32_t ctx) const;

  uint32_t scatter_;
  uint32_t next_context_ = 1;  // context 0 is never issued (reserved)
  uint64_t epoch_ = 0;
  uint64_t rollovers_ = 0;
  bool in_rollover_ = false;
  std::unordered_set<uint32_t> live_contexts_;
  std::unordered_set<uint32_t> live_vsids_;  // user VSIDs of live contexts
  std::function<void()> rollover_hook_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_VSID_SPACE_H_
