#include "src/kernel/page_cache.h"

#include "src/sim/check.h"

namespace ppcmm {

FileId PageCache::CreateFile(uint32_t size_pages) {
  const FileId id{next_file_++};
  files_[id.value] = File{.size_pages = size_pages, .pages = {}};
  return id;
}

void PageCache::DeleteFile(FileId file) {
  auto it = files_.find(file.value);
  PPCMM_CHECK_MSG(it != files_.end(), "DeleteFile on unknown file " << file.value);
  for (const auto& [page, frame] : it->second.pages) {
    mem_.FreePage(frame);
  }
  files_.erase(it);
}

uint32_t PageCache::SizePages(FileId file) const {
  auto it = files_.find(file.value);
  PPCMM_CHECK_MSG(it != files_.end(), "SizePages on unknown file " << file.value);
  return it->second.size_pages;
}

uint32_t PageCache::GetPage(FileId file, uint32_t page, bool* was_miss) {
  auto it = files_.find(file.value);
  PPCMM_CHECK_MSG(it != files_.end(), "GetPage on unknown file " << file.value);
  File& f = it->second;
  PPCMM_CHECK_MSG(page < f.size_pages,
                  "GetPage beyond EOF: page " << page << " of " << f.size_pages);

  // Page-cache lookup: a couple of kernel data references into the inode/radix structures,
  // charged at the file's bookkeeping address in the kernel misc area.
  const PhysAddr lookup_pa(0x1A8000 + (file.value % 512) * 64);
  machine_.TouchData(lookup_pa, /*is_write=*/false);
  machine_.AddCycles(Cycles(8));

  auto cached = f.pages.find(page);
  if (cached != f.pages.end()) {
    ++hits_;
    if (was_miss != nullptr) {
      *was_miss = false;
    }
    return cached->second;
  }

  ++misses_;
  if (was_miss != nullptr) {
    *was_miss = true;
  }
  const uint32_t frame = mem_.GetFreePage();
  // Synthesize deterministic contents so data-integrity tests can verify copies end to end.
  PhysicalMemory& memory = machine_.memory();
  for (uint32_t offset = 0; offset < kPageSize; offset += 4) {
    const uint32_t word = (file.value * 0x9E3779B9u) ^ (page << 16) ^ offset;
    memory.Write32(PhysAddr::FromFrame(frame, offset), word);
  }
  // I/O submission overhead (the DMA itself is free CPU-wise; the caller models the wait).
  machine_.AddCycles(Cycles(1200));
  f.pages.emplace(page, frame);
  return frame;
}

bool PageCache::IsCached(FileId file, uint32_t page) const {
  auto it = files_.find(file.value);
  if (it == files_.end()) {
    return false;
  }
  return it->second.pages.contains(page);
}

uint32_t PageCache::ReclaimPages(uint32_t target) {
  uint32_t freed = 0;
  for (auto& [file_id, file] : files_) {
    for (auto it = file.pages.begin(); it != file.pages.end() && freed < target;) {
      if (mem_.allocator().RefCount(it->second) == 1) {
        machine_.AddCycles(Cycles(60));  // shrink-list scan + unhash
        mem_.FreePage(it->second);
        it = file.pages.erase(it);
        ++freed;
      } else {
        ++it;  // mapped by somebody: not reclaimable
      }
    }
    if (freed >= target) {
      break;
    }
  }
  return freed;
}

uint32_t PageCache::CachedPageCount() const {
  uint32_t count = 0;
  for (const auto& [file_id, file] : files_) {
    count += static_cast<uint32_t>(file.pages.size());
  }
  return count;
}

void PageCache::EvictFile(FileId file) {
  auto it = files_.find(file.value);
  PPCMM_CHECK_MSG(it != files_.end(), "EvictFile on unknown file " << file.value);
  for (const auto& [page, frame] : it->second.pages) {
    mem_.FreePage(frame);
  }
  it->second.pages.clear();
}

}  // namespace ppcmm
