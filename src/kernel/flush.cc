#include "src/kernel/flush.h"

namespace ppcmm {

void FlushEngine::FlushPage(Mm& mm, EffAddr ea) {
  CycleScope flush_scope(mmu_.machine(), AttrCause::kRangeFlushEager);
  EagerFlushPage(mm, ea);
  ShootdownRound(ea);
}

void FlushEngine::FlushRange(Mm& mm, uint32_t start_page, uint32_t page_count,
                             bool mm_is_current) {
  Machine& machine = mmu_.machine();
  const Cycles flush_start = machine.Now();
  if (config_.lazy_context_flush && config_.range_flush_cutoff > 0 &&
      page_count > config_.range_flush_cutoff) {
    // §7: "invalidating the whole memory management context of any process needing to
    // invalidate more than a small set of pages" — the 80× mmap() win.
    CycleScope flush_scope(machine, AttrCause::kContextFlushLazy);
    LazyFlushContext(mm, mm_is_current);
    machine.RecordLatency(LatencyProbe::kContextFlushLazy, flush_start);
    return;
  }
  // Eager path: "the kernel was clearing the range of addresses by searching the hash table
  // for each PTE in turn" (§7) — every page in the range pays the two-PTEG search, whether
  // or not a translation is actually cached.
  CycleScope flush_scope(machine, AttrCause::kRangeFlushEager);
  for (uint32_t i = 0; i < page_count; ++i) {
    EagerFlushPage(mm, EffAddr::FromPage(start_page + i));
  }
  // One shootdown round covers the whole range: a single page is invalidated remotely by
  // page, anything larger costs the remote CPUs one full tlbia each (flush_tlb_range-style).
  if (page_count == 1) {
    ShootdownRound(EffAddr::FromPage(start_page));
  } else {
    ShootdownRound(std::nullopt);
  }
  machine.RecordLatency(LatencyProbe::kRangeFlushEager, flush_start);
}

void FlushEngine::FlushContext(Mm& mm, bool mm_is_current) {
  if (config_.lazy_context_flush) {
    CycleScope flush_scope(mmu_.machine(), AttrCause::kContextFlushLazy);
    LazyFlushContext(mm, mm_is_current);
    return;
  }
  // Eager: flush every present page individually — the cost the lazy scheme eliminates.
  CycleScope flush_scope(mmu_.machine(), AttrCause::kRangeFlushEager);
  mm.page_table->ForEachPresent([&](EffAddr ea, const LinuxPte&) { EagerFlushPage(mm, ea); });
  ShootdownRound(std::nullopt);
}

void FlushEngine::EagerFlushPage(Mm& mm, EffAddr ea) {
  HwCounters& counters = mmu_.machine().counters();
  mmu_.machine().Trace(TraceEvent::kFlushPage, ea.EffPageNumber());
  // The flush loop body around each page (address arithmetic, bounds checks).
  mmu_.machine().AddCycles(Cycles(8));
  if (mmu_.policy().UsesHtab()) {
    const VirtPage vp{.vsid = vsids_.UserVsid(mm.context, ea.SegmentIndex()),
                      .page_index = ea.PageIndex()};
    DataMemCharger charger = mmu_.PageTableCharger();
    // Count the references the search makes for the §7 statistics while charging them.
    class CountingCharger : public MemCharger {
     public:
      CountingCharger(MemCharger& inner, uint64_t& count) : inner_(inner), count_(count) {}
      void Charge(PhysAddr pa, bool is_write) override {
        ++count_;
        inner_.Charge(pa, is_write);
      }

     private:
      MemCharger& inner_;
      uint64_t& count_;
    } counting(charger, counters.htab_flush_memory_refs);
    const std::optional<HashedPte> invalidated = mmu_.htab().InvalidatePage(vp, counting);
    // Deferred dirty scheme: the C bit accumulated in the HTAB must survive in the Linux
    // PTE (with eager marking the PTE was already dirtied at fault/reload time).
    if (invalidated.has_value() && invalidated->changed) {
      const std::optional<LinuxPte> pte = mm.page_table->LookupQuiet(ea);
      if (pte.has_value() && pte->present && !pte->dirty) {
        mm.page_table->Update(ea, [](LinuxPte& p) { p.dirty = true; }, &charger);
      }
    }
  }
  if (!broken_tlb_invalidate_) {
    mmu_.TlbInvalidatePage(ea);
  }
}

void FlushEngine::LazyFlushContext(Mm& mm, bool mm_is_current) {
  HwCounters& counters = mmu_.machine().counters();
  const ContextId retired = mm.context;
  vsids_.Retire(mm.context);
  mm.context = vsids_.NewContext();
  mmu_.machine().Trace(TraceEvent::kFlushContext, retired.value, mm.context.value);
  ++counters.tlb_context_flushes;
  // A handful of cycles: bump the counter, store the new VSIDs into the task structure and,
  // if this is the running task, reload the segment registers.
  mmu_.machine().AddCycles(Cycles(12 + (mm_is_current ? kNumSegments * 2 : 0)));
  if (mm_is_current) {
    mmu_.segments().LoadAll(vsids_.SegmentImage(mm.context));
  }
}

void FlushEngine::ShootdownRound(const std::optional<EffAddr>& page) {
  if (smp_ == nullptr || smp_->ncpus <= 1) {
    return;
  }
  Machine& machine = mmu_.machine();
  const MachineConfig& config = machine.config();
  HwCounters& counters = machine.counters();
  CycleScope shootdown_scope(machine, AttrCause::kTlbShootdown);
  ++counters.tlb_shootdown_requests;
  for (uint32_t cpu = 0; cpu < smp_->ncpus; ++cpu) {
    if (cpu == smp_->current_cpu) {
      continue;  // the local TLB was already invalidated by the eager flush itself
    }
    if (smp_->idle[cpu] != 0) {
      // The cpu_idle_wait idiom: an idle CPU runs no user code, so instead of an IPI it is
      // marked flush-pending and runs one whole-TLB flush when it next schedules a task.
      smp_->flush_pending[cpu] = 1;
      ++counters.tlb_shootdown_idle_skips;
      continue;
    }
    ++counters.tlb_shootdown_ipis;
    // The requester raises the IPI and spins for the acknowledgement; the remote CPU takes
    // the interrupt and runs the invalidation (tlbie or tlbia plus sync, 32 cycles).
    machine.AddCycles(Cycles(config.ipi_send_cycles));
    machine.AddCyclesOn(cpu, Cycles(config.ipi_receive_cycles + 32));
    if (broken_shootdown_) {
      continue;  // test-only: the IPI lands but the handler forgets the invalidation
    }
    if (page.has_value()) {
      mmu_.ShootdownInvalidatePage(cpu, *page);
    } else {
      mmu_.ShootdownInvalidateAll(cpu);
    }
  }
}

void FlushEngine::RunDeferredFlush(uint32_t cpu) {
  if (smp_ == nullptr || smp_->flush_pending[cpu] == 0) {
    return;
  }
  smp_->flush_pending[cpu] = 0;
  Machine& machine = mmu_.machine();
  CycleScope shootdown_scope(machine, AttrCause::kTlbShootdown);
  ++machine.counters().tlb_shootdown_deferred_flushes;
  // The spotlight is already on `cpu`, so the tlbia cost lands on its local clock.
  machine.AddCycles(Cycles(32));
  mmu_.ShootdownInvalidateAll(cpu);
}

void FlushEngine::RolloverInvalidateAll() {
  mmu_.TlbInvalidateAll();
  if (smp_ == nullptr || smp_->ncpus <= 1) {
    return;
  }
  Machine& machine = mmu_.machine();
  for (uint32_t cpu = 0; cpu < smp_->ncpus; ++cpu) {
    smp_->flush_pending[cpu] = 0;  // every TLB is empty after this sweep; no debts remain
    if (cpu == smp_->current_cpu) {
      continue;
    }
    machine.AddCyclesOn(cpu, Cycles(32));
    mmu_.ShootdownInvalidateAll(cpu);
  }
}

}  // namespace ppcmm
