#include "src/kernel/flush.h"

namespace ppcmm {

void FlushEngine::FlushPage(Mm& mm, EffAddr ea) {
  CycleScope flush_scope(mmu_.machine(), AttrCause::kRangeFlushEager);
  EagerFlushPage(mm, ea);
}

void FlushEngine::FlushRange(Mm& mm, uint32_t start_page, uint32_t page_count,
                             bool mm_is_current) {
  Machine& machine = mmu_.machine();
  const Cycles flush_start = machine.Now();
  if (config_.lazy_context_flush && config_.range_flush_cutoff > 0 &&
      page_count > config_.range_flush_cutoff) {
    // §7: "invalidating the whole memory management context of any process needing to
    // invalidate more than a small set of pages" — the 80× mmap() win.
    CycleScope flush_scope(machine, AttrCause::kContextFlushLazy);
    LazyFlushContext(mm, mm_is_current);
    machine.RecordLatency(LatencyProbe::kContextFlushLazy, flush_start);
    return;
  }
  // Eager path: "the kernel was clearing the range of addresses by searching the hash table
  // for each PTE in turn" (§7) — every page in the range pays the two-PTEG search, whether
  // or not a translation is actually cached.
  CycleScope flush_scope(machine, AttrCause::kRangeFlushEager);
  for (uint32_t i = 0; i < page_count; ++i) {
    EagerFlushPage(mm, EffAddr::FromPage(start_page + i));
  }
  machine.RecordLatency(LatencyProbe::kRangeFlushEager, flush_start);
}

void FlushEngine::FlushContext(Mm& mm, bool mm_is_current) {
  if (config_.lazy_context_flush) {
    CycleScope flush_scope(mmu_.machine(), AttrCause::kContextFlushLazy);
    LazyFlushContext(mm, mm_is_current);
    return;
  }
  // Eager: flush every present page individually — the cost the lazy scheme eliminates.
  CycleScope flush_scope(mmu_.machine(), AttrCause::kRangeFlushEager);
  mm.page_table->ForEachPresent([&](EffAddr ea, const LinuxPte&) { EagerFlushPage(mm, ea); });
}

void FlushEngine::EagerFlushPage(Mm& mm, EffAddr ea) {
  HwCounters& counters = mmu_.machine().counters();
  mmu_.machine().Trace(TraceEvent::kFlushPage, ea.EffPageNumber());
  // The flush loop body around each page (address arithmetic, bounds checks).
  mmu_.machine().AddCycles(Cycles(8));
  if (mmu_.policy().UsesHtab()) {
    const VirtPage vp{.vsid = vsids_.UserVsid(mm.context, ea.SegmentIndex()),
                      .page_index = ea.PageIndex()};
    DataMemCharger charger = mmu_.PageTableCharger();
    // Count the references the search makes for the §7 statistics while charging them.
    class CountingCharger : public MemCharger {
     public:
      CountingCharger(MemCharger& inner, uint64_t& count) : inner_(inner), count_(count) {}
      void Charge(PhysAddr pa, bool is_write) override {
        ++count_;
        inner_.Charge(pa, is_write);
      }

     private:
      MemCharger& inner_;
      uint64_t& count_;
    } counting(charger, counters.htab_flush_memory_refs);
    const std::optional<HashedPte> invalidated = mmu_.htab().InvalidatePage(vp, counting);
    // Deferred dirty scheme: the C bit accumulated in the HTAB must survive in the Linux
    // PTE (with eager marking the PTE was already dirtied at fault/reload time).
    if (invalidated.has_value() && invalidated->changed) {
      const std::optional<LinuxPte> pte = mm.page_table->LookupQuiet(ea);
      if (pte.has_value() && pte->present && !pte->dirty) {
        mm.page_table->Update(ea, [](LinuxPte& p) { p.dirty = true; }, &charger);
      }
    }
  }
  if (!broken_tlb_invalidate_) {
    mmu_.TlbInvalidatePage(ea);
  }
}

void FlushEngine::LazyFlushContext(Mm& mm, bool mm_is_current) {
  HwCounters& counters = mmu_.machine().counters();
  const ContextId retired = mm.context;
  vsids_.Retire(mm.context);
  mm.context = vsids_.NewContext();
  mmu_.machine().Trace(TraceEvent::kFlushContext, retired.value, mm.context.value);
  ++counters.tlb_context_flushes;
  // A handful of cycles: bump the counter, store the new VSIDs into the task structure and,
  // if this is the running task, reload the segment registers.
  mmu_.machine().AddCycles(Cycles(12 + (mm_is_current ? kNumSegments * 2 : 0)));
  if (mm_is_current) {
    mmu_.segments().LoadAll(vsids_.SegmentImage(mm.context));
  }
}

}  // namespace ppcmm
