#include "src/kernel/opt_config.h"

#include <sstream>

#include "src/kernel/vsid_space.h"

namespace ppcmm {

OptimizationConfig OptimizationConfig::Baseline() { return OptimizationConfig{}; }

OptimizationConfig OptimizationConfig::AllOptimizations() {
  OptimizationConfig config;
  config.kernel_bat_mapping = true;
  config.vsid_scatter = kDefaultVsidScatter;
  config.optimized_handlers = true;
  config.no_htab_direct_reload = true;
  config.eager_dirty_marking = true;
  config.lazy_context_flush = true;
  config.range_flush_cutoff = 20;
  config.idle_zombie_reclaim = true;
  config.idle_zero = IdleZeroPolicy::kUncachedWithList;
  return config;
}

OptimizationConfig OptimizationConfig::AllPlusUncachedPageTables() {
  OptimizationConfig config = AllOptimizations();
  config.uncached_page_tables = true;
  return config;
}

OptimizationConfig OptimizationConfig::OnlyBatMapping() {
  OptimizationConfig config = Baseline();
  config.kernel_bat_mapping = true;
  return config;
}

OptimizationConfig OptimizationConfig::OnlyTunedScatter() {
  OptimizationConfig config = Baseline();
  config.vsid_scatter = kDefaultVsidScatter;
  return config;
}

OptimizationConfig OptimizationConfig::OnlyFastHandlers() {
  OptimizationConfig config = Baseline();
  config.optimized_handlers = true;
  return config;
}

OptimizationConfig OptimizationConfig::OnlyDirectReload() {
  OptimizationConfig config = Baseline();
  config.no_htab_direct_reload = true;
  return config;
}

OptimizationConfig OptimizationConfig::OnlyLazyFlush(uint32_t cutoff) {
  OptimizationConfig config = Baseline();
  config.lazy_context_flush = true;
  config.range_flush_cutoff = cutoff;
  // Lazy flushing abandons PTEs in place, so their C bits must already be correct.
  config.eager_dirty_marking = true;
  return config;
}

OptimizationConfig OptimizationConfig::OnlyIdleReclaim() {
  // Reclaim only makes sense once lazy flushing creates zombies.
  OptimizationConfig config = OnlyLazyFlush();
  config.idle_zombie_reclaim = true;
  return config;
}

OptimizationConfig OptimizationConfig::OnlyUncachedPageTables() {
  OptimizationConfig config = Baseline();
  config.uncached_page_tables = true;
  return config;
}

OptimizationConfig OptimizationConfig::OnlyIdleZero(IdleZeroPolicy policy) {
  OptimizationConfig config = Baseline();
  config.idle_zero = policy;
  return config;
}

std::string OptimizationConfig::Describe() const {
  std::ostringstream oss;
  oss << "bat=" << kernel_bat_mapping << " scatter=" << vsid_scatter
      << " eager_dirty=" << eager_dirty_marking
      << " fast_handlers=" << optimized_handlers << " no_htab=" << no_htab_direct_reload
      << " lazy_flush=" << lazy_context_flush << " cutoff=" << range_flush_cutoff
      << " idle_reclaim=" << idle_zombie_reclaim << " uncached_pt=" << uncached_page_tables
      << " idle_zero=" << static_cast<int>(idle_zero)
      << " uncached_idle=" << uncached_idle_task;
  return oss.str();
}

}  // namespace ppcmm
