// Virtual memory areas: the kernel's record of what each address space has mapped.
//
// A deliberately Linux-shaped structure: an ordered list of non-overlapping [start, end)
// page ranges with protection and backing information. mmap()/munmap()/exec()/fork() edit
// this list; demand faults consult it to decide whether an access is legal and what should
// back the page.

#ifndef PPCMM_SRC_KERNEL_VMA_H_
#define PPCMM_SRC_KERNEL_VMA_H_

#include <cstdint>
#include <map>
#include <optional>

#include "src/sim/addr.h"

namespace ppcmm {

// What backs a mapping.
enum class VmaBacking {
  kAnonymous,  // demand-zero pages
  kFile,       // pages come from the page cache
  kIo,         // fixed physical frames (framebuffer/device apertures), cache inhibited
  kShm,        // a shared-memory segment: frames shared across address spaces, no COW
};

// One mapped region. Page-granular: [start_page, end_page) in effective page numbers.
struct Vma {
  uint32_t start_page = 0;
  uint32_t end_page = 0;  // exclusive
  bool writable = false;
  VmaBacking backing = VmaBacking::kAnonymous;
  uint32_t file_id = 0;       // valid when backing == kFile; segment id when kShm
  uint32_t file_page_offset = 0;  // first file page this VMA maps
  uint32_t io_first_frame = 0;    // valid when backing == kIo: physical frame of start_page

  uint32_t PageCount() const { return end_page - start_page; }
  bool Contains(uint32_t page) const { return page >= start_page && page < end_page; }
};

// The per-address-space set of VMAs.
class VmaList {
 public:
  VmaList() = default;

  // Inserts a region; it must not overlap any existing one.
  void Insert(const Vma& vma);

  // Finds the VMA containing `page`, if any.
  std::optional<Vma> Find(uint32_t page) const;

  // Removes [start_page, start_page + page_count), splitting or trimming VMAs that straddle
  // the boundary. Returns the number of previously mapped pages removed.
  uint32_t Remove(uint32_t start_page, uint32_t page_count);

  // True if [start_page, start_page + page_count) overlaps nothing.
  bool RangeIsFree(uint32_t start_page, uint32_t page_count) const;

  // Finds the lowest free gap of `page_count` pages at or above `hint_page`.
  uint32_t FindFreeRange(uint32_t hint_page, uint32_t page_count) const;

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [start, vma] : vmas_) {
      fn(vma);
    }
  }

  uint32_t Count() const { return static_cast<uint32_t>(vmas_.size()); }
  uint32_t TotalPages() const;
  void Clear() { vmas_.clear(); }

 private:
  std::map<uint32_t, Vma> vmas_;  // keyed by start_page
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_VMA_H_
