// TLB and hash-table flushing strategies (§7 of the paper).
//
// The baseline kernel flushes eagerly: for every page it searches both hash buckets (up to
// 16 memory references) to clear the PTE, then issues a tlbie. Ranges of 40–110 pages were
// common, making mmap() latency milliseconds.
//
// The optimized kernel flushes lazily: retiring the context's VSIDs makes every cached
// translation unreachable in O(1), leaving "zombie" PTEs behind for the idle task to sweep.
// The tunable range cutoff (20 pages) picks between the two per call.

#ifndef PPCMM_SRC_KERNEL_FLUSH_H_
#define PPCMM_SRC_KERNEL_FLUSH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/kernel/mm.h"
#include "src/kernel/opt_config.h"
#include "src/kernel/vsid_space.h"
#include "src/mmu/mmu.h"

namespace ppcmm {

// SMP bookkeeping shared between the kernel (which owns it and keeps it current) and the
// flush engine (which reads it to run TLB shootdown). One entry per simulated CPU.
struct SmpState {
  uint32_t ncpus = 1;
  uint32_t current_cpu = 0;
  // 1 = the CPU runs no user context (nothing scheduled): shootdowns skip it, deferring
  // the invalidation to its next switch-in (the cpu_idle_wait idiom).
  std::vector<uint8_t> idle;
  // 1 = the CPU owes a deferred whole-TLB flush. Its TLB content is logically invalid —
  // the tlbia runs when the execution spotlight next moves there.
  std::vector<uint8_t> flush_pending;
};

// Executes flushes against the MMU on behalf of the kernel.
class FlushEngine {
 public:
  FlushEngine(Mmu& mmu, VsidSpace& vsids, const OptimizationConfig& config)
      : mmu_(mmu), vsids_(vsids), config_(config) {}

  // Wires up the kernel-owned SMP state. Unset (or ncpus == 1) disables every cross-CPU
  // path, leaving the uniprocessor behavior bit-identical.
  void SetSmp(SmpState* smp) { smp_ = smp; }

  // Flushes one user page of `mm`. Always eager (a single page never hits the cutoff).
  void FlushPage(Mm& mm, EffAddr ea);

  // Flushes [start_page, start_page + page_count) of `mm`. With lazy flushing and a cutoff,
  // large ranges are converted into a whole-context flush. `mm_is_current` tells the engine
  // whether the segment registers must be reloaded after a context reassignment.
  void FlushRange(Mm& mm, uint32_t start_page, uint32_t page_count, bool mm_is_current);

  // Flushes every translation of `mm` (exec, exit).
  void FlushContext(Mm& mm, bool mm_is_current);

  // Runs the deferred whole-TLB flush CPU `cpu` owes, if any. Called by the kernel right
  // after the execution spotlight moves to `cpu`, so the tlbia cost lands on that CPU.
  void RunDeferredFlush(uint32_t cpu);

  // VSID epoch rollover support: invalidates every CPU's TLBs (the local one through the
  // ordinary counted tlbia, remote ones directly — the rollover is a stop-the-world event,
  // not an IPI round) and clears all deferred-flush debts, since every TLB is now empty.
  void RolloverInvalidateAll();

  // Test-only sabotage: when set, EagerFlushPage skips the tlbie — the HTAB entry goes but
  // the TLB keeps the stale translation. Exists so the coherence auditor's detection of a
  // broken flush can itself be tested; never enable outside a test.
  void TestOnlyBreakTlbInvalidate(bool broken) { broken_tlb_invalidate_ = broken; }

  // Test-only sabotage: when set, ShootdownRound still sends every IPI (cycles and counters
  // unchanged) but the remote handler "forgets" its invalidation, leaving stale entries in
  // remote TLBs. Unlike a broken local tlbie this is only reachable when a task has built
  // TLB state on one CPU and then flushes from another — exactly the cross-CPU window the
  // fuzzer's SMP checks exist to cover. Never enable outside a test.
  void TestOnlyBreakShootdown(bool broken) { broken_shootdown_ = broken; }

 private:
  // The eager per-page path: HTAB search-and-invalidate plus tlbie.
  void EagerFlushPage(Mm& mm, EffAddr ea);
  // The lazy path: retire the VSIDs, draw a fresh context.
  void LazyFlushContext(Mm& mm, bool mm_is_current);
  // One cross-CPU TLB shootdown round (the smp_call_function idiom): every busy remote CPU
  // takes an IPI and invalidates — `page` alone when set, its whole TLB otherwise; every
  // idle remote CPU is skipped and marked flush-pending instead. The lazy VSID-bump path
  // never calls this: retired VSIDs are unreachable on every CPU, so remote zombie TLB
  // entries are harmless — the paper's trick eliminates shootdowns outright.
  void ShootdownRound(const std::optional<EffAddr>& page);

  Mmu& mmu_;
  VsidSpace& vsids_;
  const OptimizationConfig& config_;
  SmpState* smp_ = nullptr;
  bool broken_tlb_invalidate_ = false;
  bool broken_shootdown_ = false;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_FLUSH_H_
