// TLB and hash-table flushing strategies (§7 of the paper).
//
// The baseline kernel flushes eagerly: for every page it searches both hash buckets (up to
// 16 memory references) to clear the PTE, then issues a tlbie. Ranges of 40–110 pages were
// common, making mmap() latency milliseconds.
//
// The optimized kernel flushes lazily: retiring the context's VSIDs makes every cached
// translation unreachable in O(1), leaving "zombie" PTEs behind for the idle task to sweep.
// The tunable range cutoff (20 pages) picks between the two per call.

#ifndef PPCMM_SRC_KERNEL_FLUSH_H_
#define PPCMM_SRC_KERNEL_FLUSH_H_

#include "src/kernel/mm.h"
#include "src/kernel/opt_config.h"
#include "src/kernel/vsid_space.h"
#include "src/mmu/mmu.h"

namespace ppcmm {

// Executes flushes against the MMU on behalf of the kernel.
class FlushEngine {
 public:
  FlushEngine(Mmu& mmu, VsidSpace& vsids, const OptimizationConfig& config)
      : mmu_(mmu), vsids_(vsids), config_(config) {}

  // Flushes one user page of `mm`. Always eager (a single page never hits the cutoff).
  void FlushPage(Mm& mm, EffAddr ea);

  // Flushes [start_page, start_page + page_count) of `mm`. With lazy flushing and a cutoff,
  // large ranges are converted into a whole-context flush. `mm_is_current` tells the engine
  // whether the segment registers must be reloaded after a context reassignment.
  void FlushRange(Mm& mm, uint32_t start_page, uint32_t page_count, bool mm_is_current);

  // Flushes every translation of `mm` (exec, exit).
  void FlushContext(Mm& mm, bool mm_is_current);

  // Test-only sabotage: when set, EagerFlushPage skips the tlbie — the HTAB entry goes but
  // the TLB keeps the stale translation. Exists so the coherence auditor's detection of a
  // broken flush can itself be tested; never enable outside a test.
  void TestOnlyBreakTlbInvalidate(bool broken) { broken_tlb_invalidate_ = broken; }

 private:
  // The eager per-page path: HTAB search-and-invalidate plus tlbie.
  void EagerFlushPage(Mm& mm, EffAddr ea);
  // The lazy path: retire the VSIDs, draw a fresh context.
  void LazyFlushContext(Mm& mm, bool mm_is_current);

  Mmu& mmu_;
  VsidSpace& vsids_;
  const OptimizationConfig& config_;
  bool broken_tlb_invalidate_ = false;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_FLUSH_H_
