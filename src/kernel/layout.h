// Physical and virtual memory layout of the mini-kernel.
//
// Mirrors Linux/PPC circa the paper: the kernel occupies low physical memory and is linearly
// mapped at 0xC0000000 (§5.1), the hashed page table sits just above the kernel image, and
// everything above that is allocatable. With the BAT optimization on, one 2 MB BAT covers
// the kernel text/data *and* the HTAB — the paper's "mapping the hash table and page-tables
// is given to us for free".
//
//   phys 0x000000 ─ 0x0FFFFF   kernel text       (1 MB, 256 frames)
//   phys 0x100000 ─ 0x17FFFF   kernel static data (512 KB, 128 frames)
//   phys 0x180000 ─ 0x19FFFF   hashed page table (128 KB = 16384 PTEs)
//   phys 0x1A0000 ─ 0x1FFFFF   kernel stacks/misc (384 KB)
//   phys 0x200000 ─ end        page allocator pool (page tables, user pages, page cache)

#ifndef PPCMM_SRC_KERNEL_LAYOUT_H_
#define PPCMM_SRC_KERNEL_LAYOUT_H_

#include <cstdint>

#include "src/sim/addr.h"
#include "src/sim/phys_addr.h"

namespace ppcmm {

// Physical layout.
inline constexpr uint32_t kKernelTextPhysBase = 0x000000;
inline constexpr uint32_t kKernelTextBytes = 0x100000;  // 1 MB
inline constexpr uint32_t kKernelDataPhysBase = 0x100000;
inline constexpr uint32_t kKernelDataBytes = 0x080000;  // 512 KB
inline constexpr uint32_t kHtabPhysBase = 0x180000;
inline constexpr uint32_t kHtabBytes = 0x020000;  // 128 KB = 2048 PTEGs
inline constexpr uint32_t kKernelMiscPhysBase = 0x1A0000;
inline constexpr uint32_t kKernelMiscBytes = 0x060000;  // task structs, kernel stacks
inline constexpr uint32_t kFirstPoolByte = 0x200000;
inline constexpr uint32_t kFirstPoolFrame = kFirstPoolByte >> kPageShift;

// The BAT block that covers text + data + HTAB + misc when the §5.1 optimization is on.
inline constexpr uint32_t kKernelBatBytes = 0x200000;  // 2 MB

// Kernel virtual layout: linear map at 0xC0000000.
inline constexpr EffAddr KernelVirtFromPhys(PhysAddr pa) {
  return EffAddr(kKernelVirtualBase + pa.value);
}
inline constexpr PhysAddr KernelPhysFromVirt(EffAddr ea) {
  return PhysAddr(ea.value - kKernelVirtualBase);
}

// The simulated framebuffer: a 2 MB aperture carved out of the top of RAM (a video card's
// VRAM as the CPU sees it). Accesses must be cache inhibited. §5.1 discusses dedicating a
// BAT to it so programs like X stop competing for TLB entries.
inline constexpr uint32_t kFramebufferBytes = 0x200000;  // 2 MB
inline constexpr uint32_t kUserFramebufferBase = 0x80000000;  // segment 8

// User virtual layout conventions used by the workloads.
inline constexpr uint32_t kUserTextBase = 0x01000000;   // program text
inline constexpr uint32_t kUserDataBase = 0x10000000;   // heap / anonymous maps
inline constexpr uint32_t kUserMmapBase = 0x40000000;   // mmap() area
inline constexpr uint32_t kUserStackTop = 0x7FFFF000;   // stack grows down from here

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_LAYOUT_H_
