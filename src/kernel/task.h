// Task structure: the mini-kernel's process descriptor.

#ifndef PPCMM_SRC_KERNEL_TASK_H_
#define PPCMM_SRC_KERNEL_TASK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/kernel/mm.h"
#include "src/sim/phys_addr.h"

namespace ppcmm {

// Process identifier.
struct TaskId {
  uint32_t value = 0;
  constexpr auto operator<=>(const TaskId&) const = default;
};

enum class TaskState {
  kRunnable,
  kRunning,
  kBlocked,  // waiting on a pipe or simulated I/O
  kZombie,   // exited, not yet reaped
};

// Per-task observability counters: how much MMU work each address space caused. Maintained
// unconditionally (plain increments on already-taken paths); the MetricsRegistry exports
// them as task.<id>.* metrics.
struct TaskObsCounters {
  uint64_t page_faults = 0;  // demand + file-backed faults taken while this task ran
  uint64_t cow_faults = 0;   // copy-on-write breaks
  uint64_t switches_in = 0;  // times this task was switched to
};

// One process.
struct Task {
  TaskId id;
  std::string name;
  TaskState state = TaskState::kRunnable;
  std::unique_ptr<Mm> mm;
  TaskObsCounters obs;

  // Physical address of this task's task-struct in the kernel misc area; the first load of
  // every PTE-tree walk (the PGD pointer) is charged here, and context switches touch it.
  PhysAddr task_struct_pa;

  // Simple program-behaviour state used by the workloads: the current user program counter
  // page and stack page (so instruction fetches and stack touches are realistic).
  uint32_t text_page = 0;   // effective page number of the code being "executed"
  uint32_t stack_page = 0;  // effective page number of the top of stack

  uint64_t user_cycles = 0;  // accounting only
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_TASK_H_
