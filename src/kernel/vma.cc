#include "src/kernel/vma.h"

#include <algorithm>

#include "src/sim/check.h"

namespace ppcmm {

void VmaList::Insert(const Vma& vma) {
  PPCMM_CHECK_MSG(vma.start_page < vma.end_page, "empty or inverted VMA");
  PPCMM_CHECK_MSG(RangeIsFree(vma.start_page, vma.PageCount()),
                  "VMA [" << vma.start_page << ", " << vma.end_page << ") overlaps an existing one");
  vmas_.emplace(vma.start_page, vma);
}

std::optional<Vma> VmaList::Find(uint32_t page) const {
  auto it = vmas_.upper_bound(page);
  if (it == vmas_.begin()) {
    return std::nullopt;
  }
  --it;
  if (it->second.Contains(page)) {
    return it->second;
  }
  return std::nullopt;
}

uint32_t VmaList::Remove(uint32_t start_page, uint32_t page_count) {
  const uint32_t end_page = start_page + page_count;
  uint32_t removed = 0;

  // Find the first VMA that could overlap.
  auto it = vmas_.upper_bound(start_page);
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end_page > start_page) {
      it = prev;
    }
  }

  while (it != vmas_.end() && it->second.start_page < end_page) {
    Vma vma = it->second;
    it = vmas_.erase(it);

    const uint32_t cut_start = std::max(vma.start_page, start_page);
    const uint32_t cut_end = std::min(vma.end_page, end_page);
    removed += cut_end - cut_start;

    // Left remainder.
    if (vma.start_page < cut_start) {
      Vma left = vma;
      left.end_page = cut_start;
      vmas_.emplace(left.start_page, left);
    }
    // Right remainder.
    if (vma.end_page > cut_end) {
      Vma right = vma;
      right.start_page = cut_end;
      if (right.backing == VmaBacking::kFile) {
        right.file_page_offset += cut_end - vma.start_page;
      }
      vmas_.emplace(right.start_page, right);
    }
  }
  return removed;
}

bool VmaList::RangeIsFree(uint32_t start_page, uint32_t page_count) const {
  const uint32_t end_page = start_page + page_count;
  auto it = vmas_.upper_bound(start_page);
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end_page > start_page) {
      return false;
    }
  }
  return it == vmas_.end() || it->second.start_page >= end_page;
}

uint32_t VmaList::FindFreeRange(uint32_t hint_page, uint32_t page_count) const {
  uint32_t candidate = hint_page;
  auto it = vmas_.upper_bound(candidate);
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end_page > candidate) {
      candidate = prev->second.end_page;
    }
  }
  while (it != vmas_.end() && it->second.start_page < candidate + page_count) {
    candidate = it->second.end_page;
    ++it;
  }
  return candidate;
}

uint32_t VmaList::TotalPages() const {
  uint32_t total = 0;
  for (const auto& [start, vma] : vmas_) {
    total += vma.PageCount();
  }
  return total;
}

}  // namespace ppcmm
