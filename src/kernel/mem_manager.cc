#include "src/kernel/mem_manager.h"

#include "src/sim/check.h"

namespace ppcmm {

uint32_t MemManager::GetFreePage() {
  const std::optional<uint32_t> frame = TryGetFreePage();
  if (!frame.has_value()) {
    throw OutOfMemoryError(
        "out of physical memory in get_free_page(): allocator dry, reclaim freed nothing, "
        "prezeroed list empty");
  }
  return *frame;
}

std::optional<uint32_t> MemManager::TryGetFreePage() {
  HwCounters& counters = machine_.counters();
  if (injector_ != nullptr && injector_->ShouldFire(FaultClass::kPageAllocExhaustion)) {
    // Injected exhaustion: behave as if pool, reclaim, and prezeroed list all came up empty.
    return std::nullopt;
  }
  // The unconditional "is there a pre-cleared page?" check (§9: "the only overhead is a
  // check to see if there are any pre-cleared pages available").
  machine_.AddCycles(Cycles(2));
  const bool list_feeds_allocator = config_.idle_zero == IdleZeroPolicy::kCached ||
                                    config_.idle_zero == IdleZeroPolicy::kUncachedWithList;
  if (list_feeds_allocator && !prezeroed_.empty()) {
    const uint32_t frame = prezeroed_.back();
    prezeroed_.pop_back();
    ++counters.prezeroed_page_hits;
    machine_.AddCycles(Cycles(4));  // pop the lock-free list
    return frame;
  }

  std::optional<uint32_t> frame = allocator_.Alloc();
  if (!frame.has_value() && reclaim_) {
    // Memory pressure: shrink the page cache and retry (a kswapd in miniature).
    reclaim_(32);
    frame = allocator_.Alloc();
  }
  if (!frame.has_value() && !prezeroed_.empty()) {
    // Last resort: the idle task's hoard. These frames are zeroed already.
    const uint32_t hoarded = prezeroed_.back();
    prezeroed_.pop_back();
    ++counters.prezeroed_page_hits;
    return hoarded;
  }
  if (!frame.has_value()) {
    return std::nullopt;
  }
  ZeroFrameCharged(*frame, /*cached=*/true);
  ++counters.pages_zeroed_on_demand;
  return *frame;
}

void MemManager::FreePage(uint32_t frame) {
  machine_.AddCycles(Cycles(4));
  allocator_.DecRef(frame);
}

bool MemManager::IdleZeroOnePage() {
  if (config_.idle_zero == IdleZeroPolicy::kOff) {
    return false;
  }
  HwCounters& counters = machine_.counters();

  const bool keep_on_list = config_.idle_zero == IdleZeroPolicy::kCached ||
                            config_.idle_zero == IdleZeroPolicy::kUncachedWithList;
  if (keep_on_list && PrezeroedCount() >= config_.prezero_list_cap) {
    return false;
  }
  // Leave headroom: don't starve the allocator by hoarding pages on the zeroed list.
  if (allocator_.FreeCount() < 32) {
    return false;
  }

  const std::optional<uint32_t> frame = allocator_.Alloc();
  if (!frame.has_value()) {
    return false;
  }
  const bool cached = config_.idle_zero == IdleZeroPolicy::kCached;
  ZeroFrameCharged(*frame, cached);
  ++counters.pages_zeroed_in_idle;

  if (keep_on_list) {
    prezeroed_.push_back(*frame);
  } else {
    // kUncachedNoList: the paper's control experiment — do the work, discard the benefit.
    allocator_.DecRef(*frame);
  }
  return true;
}

void MemManager::ZeroFrameCharged(uint32_t frame, bool cached) {
  const uint32_t line = machine_.config().dcache.line_bytes;
  for (uint32_t offset = 0; offset < kPageSize; offset += line) {
    machine_.TouchData(PhysAddr::FromFrame(frame, offset), /*is_write=*/true, cached);
    // The store loop itself: ~2 cycles per 4-byte store beyond the cache access.
    machine_.AddCycles(Cycles(line / 4 * 2));
  }
  machine_.memory().ZeroFrame(frame);
}

}  // namespace ppcmm
