#include "src/kernel/kernel.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/sim/check.h"

namespace ppcmm {

namespace {

// Per-operation kernel code/data footprint: which pages of kernel text the operation's code
// lives in and how many distinct kernel data references it makes. When BATs are off every
// distinct page here costs a TLB entry — the source of the paper's "33% of TLB entries were
// kernel" measurement.
struct Footprint {
  uint32_t text_page = 0;   // first page of the handler's code within kernel text
  uint32_t text_pages = 1;  // pages of code executed
  uint32_t data_offset = 0;  // offset into kernel static data
  uint32_t data_refs = 1;    // distinct data references
};

constexpr uint32_t kIdleTextPage = 5;

}  // namespace

namespace {

MmuPolicy MakeMmuPolicy(const MachineConfig& machine_config, const OptimizationConfig& config) {
  MmuPolicy policy;
  if (machine_config.reload == TlbReloadMechanism::kSoftware) {
    policy.strategy = config.no_htab_direct_reload ? ReloadStrategy::kSoftwareDirect
                                                   : ReloadStrategy::kSoftwareHtab;
  } else {
    // The 604 cannot bypass the hardware-walked HTAB (§6.2).
    policy.strategy = ReloadStrategy::kHardwareHtabWalk;
  }
  policy.optimized_handlers = config.optimized_handlers;
  policy.cache_page_tables = !config.uncached_page_tables;
  // Zombie PTEs can never write their C bits back, so lazy flushing requires dirty bits to
  // be correct at load time.
  policy.eager_dirty_marking = config.eager_dirty_marking || config.lazy_context_flush;
  return policy;
}

}  // namespace

Kernel::Kernel(Machine& machine, const OptimizationConfig& config, const KernelCostModel& costs)
    : machine_(machine),
      config_(config),
      costs_(costs),
      vsids_(config.vsid_scatter),
      allocator_(kFirstPoolFrame,
                 static_cast<uint32_t>(machine.memory().num_frames()) - kFirstPoolFrame -
                     kFramebufferBytes / kPageSize),
      mem_(machine, allocator_, config_),
      mmu_(std::make_unique<Mmu>(machine, MakeMmuPolicy(machine.config(), config),
                                 PhysAddr(kHtabPhysBase))),
      kernel_page_table_(nullptr),
      flusher_(*mmu_, vsids_, config_),
      page_cache_(machine, mem_) {
  framebuffer_first_frame_ =
      static_cast<uint32_t>(machine.memory().num_frames()) - kFramebufferBytes / kPageSize;
  smp_.ncpus = machine.ncpus();
  smp_.idle.assign(smp_.ncpus, 1);  // nothing is scheduled anywhere at boot
  smp_.flush_pending.assign(smp_.ncpus, 0);
  cpu_current_.assign(smp_.ncpus, TaskId{0});
  flusher_.SetSmp(&smp_);
  mmu_->SetBacking(this);
  mmu_->SetVsidOracle(&vsids_);
  mem_.SetReclaimHook([this](uint32_t target) { return page_cache_.ReclaimPages(target); });
  vsids_.SetRolloverHook([this] { HandleVsidRollover(); });
  kernel_page_table_ = std::make_unique<PageTable>(allocator_, machine_.memory());
  SetupKernelTranslation();
}

void Kernel::SetFaultInjector(FaultInjector* injector) {
  if (injector_ != nullptr && injector_ != injector) {
    injector_->SetFireObserver(nullptr);
  }
  injector_ = injector;
  if (injector != nullptr) {
    // Every fire — wherever the site lives, even in components with no Machine reference
    // like VsidSpace — lands in the trace for post-mortem correlation.
    injector->SetFireObserver([this](FaultClass cls, uint64_t fires) {
      machine_.Trace(TraceEvent::kFaultInjected, static_cast<uint32_t>(cls),
                     static_cast<uint32_t>(fires));
    });
  }
  mmu_->SetFaultInjector(injector);
  mem_.SetFaultInjector(injector);
  vsids_.SetFaultInjector(injector);
}

void Kernel::HandleVsidRollover() {
  // The 24-bit VSID space wrapped: VSIDs about to be issued may still sit — live or zombie —
  // in the TLB, the HTAB, and the segment registers. Make the whole previous epoch
  // unreachable, then move every live context into the new epoch.
  CycleScope rollover_scope(machine_, AttrCause::kVsidRollover);
  ++machine_.counters().vsid_epoch_rollovers;
  machine_.Trace(TraceEvent::kVsidEpochRollover,
                 static_cast<uint32_t>(machine_.counters().vsid_epoch_rollovers));
  flusher_.RolloverInvalidateAll();
  if (mmu_->policy().UsesHtab()) {
    mmu_->htab().InvalidateMatching(
        [](const HashedPte& pte) { return !VsidSpace::IsKernelVsid(pte.vsid); }, nullptr);
  }
  // The sweep above plus the reassignment loop below: a genuinely global, rare event.
  machine_.AddCycles(Cycles(2000));
  for (auto& [id, t] : tasks_) {
    Mm& mm = *t->mm;
    if (!vsids_.ContextLive(mm.context)) {
      // Mid-lazy-flush: the caller already retired this context and will assign a fresh one
      // itself as soon as this hook returns.
      continue;
    }
    vsids_.Retire(mm.context);
    mm.context = vsids_.NewContext();
  }
  // Every CPU whose current task just moved to a new context must see the fresh VSIDs.
  for (uint32_t cpu = 0; cpu < smp_.ncpus; ++cpu) {
    const TaskId cur = cpu_current_[cpu];
    if (cur.value != 0 && tasks_.contains(cur.value)) {
      mmu_->segments(cpu).LoadUserSegments(vsids_.SegmentImage(task(cur).mm->context));
    }
  }
}

void Kernel::InjectZombieFlood() {
  if (!mmu_->policy().UsesHtab()) {
    return;  // zombies live in the HTAB; the TLB-only mode has nothing to flood
  }
  // Draw a throwaway context, stuff the HTAB with its PTEs, and retire it immediately: the
  // entries are zombies from birth, exactly what a lazy flush of a busy task leaves behind.
  const ContextId ctx = vsids_.NewContext();
  DataMemCharger charger = mmu_->PageTableCharger();
  for (uint32_t i = 0; i < 64; ++i) {
    const HashedPte pte{.valid = true,
                        .vsid = vsids_.UserVsid(ctx, i % kFirstKernelSegment),
                        .page_index = (i * 37u) & 0xFFFFu,
                        .rpn = 0,
                        .cache_inhibited = false,
                        .writable = false,
                        .referenced = true,
                        .changed = false};
    mmu_->htab().Insert(pte, vsids_, charger);
  }
  vsids_.Retire(ctx);
}

Kernel::~Kernel() {
  for (auto& [id, pipe] : pipes_) {
    allocator_.DecRef(pipe.buffer_frame);
  }
  for (auto& [id, segment] : shm_segments_) {
    for (const uint32_t frame : segment.frames) {
      allocator_.DecRef(frame);
    }
  }
}

void Kernel::SetupKernelTranslation() {
  // Linear map: kernel VA 0xC0000000 + x -> phys x, for all of RAM. This PTE-tree mapping is
  // the translation source when BATs are off; with BATs on it is still present but idle.
  const uint32_t frames = static_cast<uint32_t>(machine_.memory().num_frames());
  for (uint32_t frame = 0; frame < frames; ++frame) {
    const LinuxPte pte{.present = true,
                       .writable = true,
                       .user = false,
                       .accessed = false,
                       .dirty = false,
                       .cache_inhibited = false,
                       .cow = false,
                       .frame = frame};
    kernel_page_table_->Map(KernelVirtFromPhys(PhysAddr::FromFrame(frame)), pte, nullptr);
  }

  if (config_.kernel_bat_mapping) {
    // §5.1: one BAT pair covers the kernel's contiguous physical image — and with it the
    // HTAB and page tables, "given to us for free".
    uint32_t block = kMinBatBlock;
    while (block < machine_.memory().size_bytes()) {
      block <<= 1;
    }
    const BatEntry bat{.valid = true,
                       .eff_base = kKernelVirtualBase,
                       .block_bytes = block,
                       .phys_base = 0,
                       .cache_inhibited = false,
                       .supervisor_only = true};
    mmu_->ibats().Set(0, bat);
    mmu_->dbats().Set(0, bat);
  }

  // Kernel segments always hold the fixed kernel VSIDs; user segments start vacant. Every
  // CPU boots with the same image — on real hardware each CPU's startup code loads it.
  std::array<Vsid, kNumSegments> image{};
  for (uint32_t seg = kFirstKernelSegment; seg < kNumSegments; ++seg) {
    image[seg] = VsidSpace::KernelVsid(seg);
  }
  for (uint32_t cpu = 0; cpu < smp_.ncpus; ++cpu) {
    mmu_->segments(cpu).LoadAll(image);
  }
}

// ---- process management ----

TaskId Kernel::CreateTask(std::string name) {
  const TaskId id{next_task_++};
  auto task = std::make_unique<Task>();
  task->id = id;
  task->name = std::move(name);
  task->mm = std::make_unique<Mm>(vsids_, allocator_, machine_.memory());
  task->task_struct_pa = PhysAddr(kKernelMiscPhysBase + (id.value % 256) * 1024);
  task->text_page = kUserTextBase >> kPageShift;
  task->stack_page = (kUserStackTop >> kPageShift) - 1;
  tasks_.emplace(id.value, std::move(task));
  scheduler_.MakeRunnable(id);
  return id;
}

Task& Kernel::task(TaskId id) {
  auto it = tasks_.find(id.value);
  PPCMM_CHECK_MSG(it != tasks_.end(), "no such task " << id.value);
  return *it->second;
}

Task& Kernel::CurrentTask() {
  PPCMM_CHECK_MSG(current_.value != 0, "no current task");
  return task(current_);
}

void Kernel::SwitchTo(TaskId id) {
  Task& next = task(id);
  PPCMM_CHECK_MSG(next.state != TaskState::kZombie, "switching to a zombie task");
  for (uint32_t cpu = 0; cpu < smp_.ncpus; ++cpu) {
    PPCMM_CHECK_MSG(cpu == smp_.current_cpu || cpu_current_[cpu] != id,
                    "task " << id.value << " is already running on CPU " << cpu);
  }
  TaskId previous{};
  {
    // The attribution scope must close before switch_hook_ runs: a cooperative harness may
    // park this call stack there, and the ledger's scope stack is shared across fibers.
    CycleScope switch_scope(machine_, AttrCause::kContextSwitch);
    HwCounters& counters = machine_.counters();
    ++counters.context_switches;
    machine_.Trace(TraceEvent::kContextSwitch, current_.value, id.value);

    ChargeKernelWork(KernelOp::kContextSwitch);
    machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.ctxsw_body_opt
                                                         : costs_.ctxsw_body_unopt));

    if (injector_ != nullptr && injector_->ShouldFire(FaultClass::kZombieFlood)) {
      InjectZombieFlood();
    }

    // §10.2 extension: prefetch the incoming task's state so the restore loads below hit.
    if (config_.cache_preload_hints) {
      for (uint32_t line = 0; line < 8; ++line) {
        machine_.PrefetchData(next.task_struct_pa + line * 64);
      }
    }

    // Save the outgoing register state, restore the incoming — real stores/loads against the
    // task structures. The unoptimized path saves everything; the optimized path is lean.
    const uint32_t regs = config_.optimized_handlers ? 12 : 32;
    if (current_.value != 0 && tasks_.contains(current_.value)) {
      Task& prev = task(current_);
      for (uint32_t r = 0; r < regs; ++r) {
        KernelTouch(KernelVirtFromPhys(prev.task_struct_pa + (r % 8) * 64), AccessKind::kStore);
      }
      if (prev.state == TaskState::kRunning) {
        prev.state = TaskState::kRunnable;
        scheduler_.MakeRunnable(prev.id);
      }
    }
    for (uint32_t r = 0; r < regs; ++r) {
      KernelTouch(KernelVirtFromPhys(next.task_struct_pa + (r % 8) * 64), AccessKind::kLoad);
    }

    // Reload the user segment registers from the incoming task's VSIDs.
    machine_.AddCycles(Cycles(kFirstKernelSegment * 2));
    mmu_->segments().LoadUserSegments(vsids_.SegmentImage(next.mm->context));

    scheduler_.Remove(id);  // the running task is not queued
    next.state = TaskState::kRunning;
    ++next.obs.switches_in;
    previous = current_;
    current_ = id;
    cpu_current_[smp_.current_cpu] = id;
    smp_.idle[smp_.current_cpu] = 0;
    machine_.trace().SetCurrentTask(id.value);
    machine_.attr().SetCurrentTask(id.value);
  }
  if (tick_hook_) {
    tick_hook_();
  }
  if (switch_hook_) {
    // Must be the last action: a cooperative harness may park this call stack here.
    switch_hook_(previous, id);
  }
}

void Kernel::SwitchCpu(uint32_t cpu) {
  PPCMM_CHECK_MSG(cpu < smp_.ncpus, "SwitchCpu to CPU " << cpu << " of " << smp_.ncpus);
  if (cpu == smp_.current_cpu) {
    return;
  }
  // Pure spotlight move in the serialized interleaving model: redirect the machine's hot
  // paths, the MMU's bank, and the task bookkeeping at `cpu`. No simulated cycles — the
  // CPUs were always all "running"; the simulation just models one at a time.
  smp_.current_cpu = cpu;
  machine_.SetCurrentCpu(cpu);
  mmu_->SetCurrentCpu(cpu);
  current_ = cpu_current_[cpu];
  machine_.trace().SetCurrentTask(current_.value);
  machine_.attr().SetCurrentTask(current_.value);
  // Any whole-TLB flush this CPU skipped while idle runs now, before it touches anything.
  flusher_.RunDeferredFlush(cpu);
}

TaskId Kernel::Fork(TaskId parent_id) {
  Task& parent = task(parent_id);
  CycleScope fork_scope(machine_, AttrCause::kFork);
  ChargeKernelWork(KernelOp::kFork);
  machine_.AddCycles(Cycles(costs_.fork_body));

  const TaskId child_id = CreateTask(parent.name + "+");
  Task& child = task(child_id);
  child.mm->vmas = parent.mm->vmas;
  child.text_page = parent.text_page;
  child.stack_page = parent.stack_page;

  // Collect the parent's present pages, then share each frame copy-on-write.
  std::vector<std::pair<EffAddr, LinuxPte>> pages;
  parent.mm->page_table->ForEachPresent(
      [&](EffAddr ea, const LinuxPte& pte) { pages.emplace_back(ea, pte); });

  DataMemCharger charger = mmu_->PageTableCharger();
  uint32_t write_protected = 0;
  try {
  for (const auto& [ea, pte] : pages) {
    LinuxPte child_pte = pte;
    if (IsIoFrame(pte.frame)) {
      // Device apertures are shared outright: no refcount, no copy-on-write.
      child.mm->page_table->Map(ea, child_pte, &charger);
      machine_.AddCycles(Cycles(12));
      continue;
    }
    const std::optional<Vma> vma = child.mm->vmas.Find(ea.EffPageNumber());
    if (vma.has_value() && vma->backing == VmaBacking::kShm) {
      // MAP_SHARED semantics: the child writes the same frames, no write-protection.
      allocator_.AddRef(pte.frame);
      child.mm->page_table->Map(ea, child_pte, &charger);
      machine_.AddCycles(Cycles(12));
      continue;
    }
    if (pte.writable) {
      parent.mm->page_table->Update(
          ea,
          [](LinuxPte& p) {
            p.writable = false;
            p.cow = true;
          },
          &charger);
      child_pte.writable = false;
      child_pte.cow = true;
      ++write_protected;
    }
    allocator_.AddRef(pte.frame);
    child.mm->page_table->Map(ea, child_pte, &charger);
    machine_.AddCycles(Cycles(12));  // the per-page loop body
  }
  } catch (const OutOfMemoryError&) {
    // Mid-fork exhaustion: tear the half-built child down and drop the parent's stale
    // (now write-protected) translations before reporting. The parent keeps running — its
    // COW-marked pages simply take a sole-owner fault on the next write.
    machine_.Trace(TraceEvent::kOomRollback, static_cast<uint32_t>(KernelOp::kFork));
    flusher_.FlushContext(*parent.mm, current_ == parent_id);
    Exit(child_id);
    throw;
  }

  // The parent's cached translations for the write-protected pages are now stale.
  if (write_protected > 0) {
    if (config_.lazy_context_flush && config_.range_flush_cutoff > 0 &&
        write_protected > config_.range_flush_cutoff) {
      flusher_.FlushContext(*parent.mm, current_ == parent_id);
    } else {
      for (const auto& [ea, pte] : pages) {
        if (pte.writable) {
          flusher_.FlushPage(*parent.mm, ea);
        }
      }
    }
  }
  return child_id;
}

void Kernel::Exec(TaskId id, const ExecImage& image) {
  Task& target = task(id);
  CycleScope exec_scope(machine_, AttrCause::kExec);
  ChargeKernelWork(KernelOp::kExec);
  machine_.AddCycles(Cycles(costs_.exec_body));

  Mm& mm = *target.mm;
  // Drop every cached translation of the old image, then its pages and VMAs.
  flusher_.FlushContext(mm, current_ == id);
  std::vector<std::pair<EffAddr, LinuxPte>> pages;
  mm.page_table->ForEachPresent(
      [&](EffAddr ea, const LinuxPte& pte) { pages.emplace_back(ea, pte); });
  for (const auto& [ea, pte] : pages) {
    mm.page_table->Unmap(ea, nullptr);
    ReleaseFrame(pte.frame);
  }
  mm.vmas.Clear();

  // New image: text, heap, stack.
  const uint32_t text_start = kUserTextBase >> kPageShift;
  mm.vmas.Insert(Vma{.start_page = text_start,
                     .end_page = text_start + image.text_pages,
                     .writable = false,
                     .backing = image.text_file.has_value() ? VmaBacking::kFile
                                                            : VmaBacking::kAnonymous,
                     .file_id = image.text_file.value_or(FileId{}).value,
                     .file_page_offset = 0});
  const uint32_t data_start = kUserDataBase >> kPageShift;
  mm.vmas.Insert(Vma{.start_page = data_start,
                     .end_page = data_start + image.data_pages,
                     .writable = true,
                     .backing = VmaBacking::kAnonymous});
  const uint32_t stack_end = kUserStackTop >> kPageShift;
  mm.vmas.Insert(Vma{.start_page = stack_end - image.stack_pages,
                     .end_page = stack_end,
                     .writable = true,
                     .backing = VmaBacking::kAnonymous});

  target.text_page = text_start;
  target.stack_page = stack_end - 1;
}

void Kernel::Exit(TaskId id) {
  Task& target = task(id);
  Mm& mm = *target.mm;
  CycleScope exit_scope(machine_, AttrCause::kExit);

  machine_.AddCycles(Cycles(300));
  // Eager kernels must scrub the HTAB/TLB entry by entry; lazy kernels just retire the
  // context — its translations become zombies.
  if (!config_.lazy_context_flush) {
    flusher_.FlushContext(mm, current_ == id);
  } else {
    ++machine_.counters().tlb_context_flushes;
    machine_.AddCycles(Cycles(12));
  }
  vsids_.Retire(mm.context);

  std::vector<std::pair<EffAddr, LinuxPte>> pages;
  mm.page_table->ForEachPresent(
      [&](EffAddr ea, const LinuxPte& pte) { pages.emplace_back(ea, pte); });
  for (const auto& [ea, pte] : pages) {
    mm.page_table->Unmap(ea, nullptr);
    ReleaseFrame(pte.frame);
  }

  for (uint32_t cpu = 0; cpu < smp_.ncpus; ++cpu) {
    if (cpu_current_[cpu] == id) {
      cpu_current_[cpu] = TaskId{0};
      smp_.idle[cpu] = 1;
      if (cpu == smp_.current_cpu) {
        current_ = TaskId{0};
        machine_.trace().SetCurrentTask(0);
        machine_.attr().SetCurrentTask(0);
      }
    }
  }
  scheduler_.ClearAffinity(id);
  scheduler_.Remove(id);
  for (auto& [pipe_id, pipe] : pipes_) {
    pipe.readers.Remove(id);
    pipe.writers.Remove(id);
  }
  tasks_.erase(id.value);
}

// ---- syscalls ----

void Kernel::NullSyscall() {
  CycleScope syscall_scope(machine_, AttrCause::kSyscall);
  ++machine_.counters().syscalls;
  machine_.Trace(TraceEvent::kSyscall, 0);
  ChargeKernelWork(KernelOp::kSyscallEntry);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.syscall_body_opt
                                                       : costs_.syscall_body_unopt));
}

uint32_t Kernel::Mmap(uint32_t page_count, const MmapOptions& options) {
  PPCMM_CHECK(page_count > 0);
  Task& current = CurrentTask();
  Mm& mm = *current.mm;
  CycleScope syscall_scope(machine_, AttrCause::kSyscall);
  ++machine_.counters().syscalls;
  ChargeKernelWork(KernelOp::kMmapCall);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.syscall_body_opt
                                                       : costs_.syscall_body_unopt));

  uint32_t start;
  if (options.fixed_page.has_value()) {
    start = *options.fixed_page;
    if (!mm.vmas.RangeIsFree(start, page_count)) {
      // MAP_FIXED over an existing mapping: unmap — and therefore flush — what's there.
      // This is the operation whose latency §7 chases from 3240 µs down to 41 µs.
      flusher_.FlushRange(mm, start, page_count, current_ == current.id);
      ReleaseRange(mm, start, page_count);
      mm.vmas.Remove(start, page_count);
    }
  } else {
    start = mm.vmas.FindFreeRange(kUserMmapBase >> kPageShift, page_count);
  }

  mm.vmas.Insert(Vma{.start_page = start,
                     .end_page = start + page_count,
                     .writable = options.writable,
                     .backing = options.file.has_value() ? VmaBacking::kFile
                                                         : VmaBacking::kAnonymous,
                     .file_id = options.file.value_or(FileId{}).value,
                     .file_page_offset = options.file_page_offset});
  return start;
}

void Kernel::Munmap(uint32_t start_page, uint32_t page_count) {
  Task& current = CurrentTask();
  Mm& mm = *current.mm;
  CycleScope syscall_scope(machine_, AttrCause::kSyscall);
  ++machine_.counters().syscalls;
  ChargeKernelWork(KernelOp::kMmapCall);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.syscall_body_opt
                                                       : costs_.syscall_body_unopt));

  flusher_.FlushRange(mm, start_page, page_count, current_ == current.id);
  ReleaseRange(mm, start_page, page_count);
  mm.vmas.Remove(start_page, page_count);
}

uint32_t Kernel::MapFramebuffer() {
  Task& current = CurrentTask();
  Mm& mm = *current.mm;
  CycleScope syscall_scope(machine_, AttrCause::kSyscall);
  ++machine_.counters().syscalls;
  ChargeKernelWork(KernelOp::kMmapCall);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.syscall_body_opt
                                                       : costs_.syscall_body_unopt));

  const uint32_t start = kUserFramebufferBase >> kPageShift;
  const uint32_t pages = kFramebufferBytes / kPageSize;
  mm.vmas.Insert(Vma{.start_page = start,
                     .end_page = start + pages,
                     .writable = true,
                     .backing = VmaBacking::kIo,
                     .io_first_frame = framebuffer_first_frame_});

  if (config_.framebuffer_bat) {
    // The §5.1 idea: a user-visible, cache-inhibited data BAT over the aperture. Accesses
    // then bypass the TLB and HTAB entirely; the VMA above never faults.
    SetFramebufferBat(true);
  }
  return start;
}

void Kernel::SetFramebufferBat(bool on) {
  if (on) {
    const BatEntry bat{.valid = true,
                       .eff_base = kUserFramebufferBase,
                       .block_bytes = kFramebufferBytes,
                       .phys_base = framebuffer_first_frame_ << kPageShift,
                       .cache_inhibited = true,
                       .supervisor_only = false};
    mmu_->dbats().Set(1, bat);
  } else {
    mmu_->dbats().Clear(1);
  }
}

void Kernel::ForEachLiveTranslation(const std::function<void(const LiveTranslation&)>& fn) {
  // Reverse map: user VSID -> (owner, segment). Rebuilt per call; this is a verification
  // walk, not a simulated path, so nothing is charged.
  std::map<uint32_t, std::pair<TaskId, uint32_t>> user_vsids;
  for (auto& [id, t] : tasks_) {
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      user_vsids.emplace(vsids_.UserVsid(t->mm->context, seg).value,
                         std::make_pair(t->id, seg));
    }
  }
  const auto resolve = [&](Vsid vsid, uint32_t page_index) -> std::optional<LiveTranslation> {
    LiveTranslation lt;
    if (VsidSpace::IsKernelVsid(vsid)) {
      for (uint32_t seg = kFirstKernelSegment; seg < kNumSegments; ++seg) {
        if (VsidSpace::KernelVsid(seg) == vsid) {
          lt.is_kernel = true;
          lt.owner = TaskId{0};
          lt.ea_page = (seg << kPageIndexBits) | page_index;
          return lt;
        }
      }
      return std::nullopt;
    }
    const auto it = user_vsids.find(vsid.value);
    if (it == user_vsids.end()) {
      return std::nullopt;  // zombie: retired VSID, architecturally unreachable
    }
    lt.is_kernel = false;
    lt.owner = it->second.first;
    lt.ea_page = (it->second.second << kPageIndexBits) | page_index;
    return lt;
  };
  const auto visit_tlb = [&](const Tlb& tlb, LiveTranslation::Tier tier) {
    tlb.ForEachValid([&](const TlbEntry& entry) {
      std::optional<LiveTranslation> lt = resolve(entry.vsid, entry.page_index);
      if (!lt.has_value()) {
        return;
      }
      lt->tier = tier;
      lt->frame = entry.frame;
      lt->writable = entry.writable;
      lt->changed = entry.changed;
      fn(*lt);
    });
  };
  for (uint32_t cpu = 0; cpu < smp_.ncpus; ++cpu) {
    if (smp_.flush_pending[cpu] != 0) {
      // The CPU owes a deferred whole-TLB flush: its TLB content is logically invalid and
      // will be wiped before anything runs there, so nothing in it counts as live.
      continue;
    }
    visit_tlb(mmu_->itlb(cpu), LiveTranslation::Tier::kItlb);
    visit_tlb(mmu_->dtlb(cpu), LiveTranslation::Tier::kDtlb);
  }
  if (mmu_->policy().UsesHtab()) {
    const HashTable& htab = mmu_->htab();
    for (uint32_t pteg = 0; pteg < htab.num_ptegs(); ++pteg) {
      for (uint32_t slot = 0; slot < kPtesPerPteg; ++slot) {
        const HashedPte& pte = htab.At(pteg, slot);
        if (!pte.valid) {
          continue;
        }
        std::optional<LiveTranslation> lt = resolve(pte.vsid, pte.page_index);
        if (!lt.has_value()) {
          continue;
        }
        lt->tier = LiveTranslation::Tier::kHtab;
        lt->frame = pte.rpn;
        lt->writable = pte.writable;
        lt->changed = pte.changed;
        fn(*lt);
      }
    }
  }
}

void Kernel::ReleaseFrame(uint32_t frame) {
  if (IsIoFrame(frame)) {
    return;  // aperture frames are not allocator-owned
  }
  mem_.FreePage(frame);
}

void Kernel::ReleaseRange(Mm& mm, uint32_t start_page, uint32_t page_count) {
  // mmu-lint-deferred-flush(FLUSH-CONTRACT-029): every caller runs FlushRange/FlushContext
  // over the same range before zapping the PTEs (Munmap, Exit), so the TLBs are already clean
  for (uint32_t i = 0; i < page_count; ++i) {
    machine_.AddCycles(Cycles(2));  // the zap loop itself
    const EffAddr ea = EffAddr::FromPage(start_page + i);
    const std::optional<LinuxPte> pte = mm.page_table->LookupQuiet(ea);
    if (pte.has_value() && pte->present) {
      mm.page_table->Unmap(ea, nullptr);
      ReleaseFrame(pte->frame);
      machine_.AddCycles(Cycles(8));
    }
  }
}

void Kernel::FileRead(FileId file, uint32_t offset_bytes, uint32_t length, EffAddr user_dst) {
  CycleScope io_scope(machine_, AttrCause::kFileIo);
  ++machine_.counters().syscalls;
  ChargeKernelWork(KernelOp::kFileIo);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.syscall_body_opt
                                                       : costs_.syscall_body_unopt));
  uint32_t done = 0;
  while (done < length) {
    const uint32_t file_page = (offset_bytes + done) >> kPageShift;
    const uint32_t in_page = (offset_bytes + done) & kPageOffsetMask;
    const uint32_t chunk = std::min(length - done, kPageSize - in_page);
    bool miss = false;
    const uint32_t frame = page_cache_.GetPage(file, file_page, &miss);
    if (miss) {
      SimulateIoWait(Cycles(costs_.disk_latency_cycles));
    }
    CopyUserKernel(user_dst + done, PhysAddr::FromFrame(frame, in_page), chunk,
                   /*to_user=*/true);
    done += chunk;
  }
}

void Kernel::FileWrite(FileId file, uint32_t offset_bytes, uint32_t length, EffAddr user_src) {
  CycleScope io_scope(machine_, AttrCause::kFileIo);
  ++machine_.counters().syscalls;
  ChargeKernelWork(KernelOp::kFileIo);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.syscall_body_opt
                                                       : costs_.syscall_body_unopt));
  uint32_t done = 0;
  while (done < length) {
    const uint32_t file_page = (offset_bytes + done) >> kPageShift;
    const uint32_t in_page = (offset_bytes + done) & kPageOffsetMask;
    const uint32_t chunk = std::min(length - done, kPageSize - in_page);
    bool miss = false;
    const uint32_t frame = page_cache_.GetPage(file, file_page, &miss);
    if (miss) {
      SimulateIoWait(Cycles(costs_.disk_latency_cycles));
    }
    CopyUserKernel(user_src + done, PhysAddr::FromFrame(frame, in_page), chunk,
                   /*to_user=*/false);
    done += chunk;
  }
}

uint32_t Kernel::ShmCreate(uint32_t pages) {
  PPCMM_CHECK(pages > 0);
  CycleScope syscall_scope(machine_, AttrCause::kSyscall);
  ++machine_.counters().syscalls;
  ChargeKernelWork(KernelOp::kMmapCall);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.syscall_body_opt
                                                       : costs_.syscall_body_unopt));
  ShmSegment segment;
  segment.frames.reserve(pages);
  try {
    for (uint32_t i = 0; i < pages; ++i) {
      segment.frames.push_back(mem_.GetFreePage());
    }
  } catch (const OutOfMemoryError&) {
    // Partial allocation: give back what we got; the segment never existed.
    machine_.Trace(TraceEvent::kOomRollback, static_cast<uint32_t>(KernelOp::kMmapCall));
    for (const uint32_t frame : segment.frames) {
      mem_.FreePage(frame);
    }
    throw;
  }
  const uint32_t id = next_shm_++;
  shm_segments_.emplace(id, std::move(segment));
  return id;
}

uint32_t Kernel::ShmAttach(uint32_t shm_id) {
  auto it = shm_segments_.find(shm_id);
  PPCMM_CHECK_MSG(it != shm_segments_.end(), "attach to unknown shm segment " << shm_id);
  Task& current = CurrentTask();
  Mm& mm = *current.mm;
  CycleScope syscall_scope(machine_, AttrCause::kSyscall);
  ++machine_.counters().syscalls;
  ChargeKernelWork(KernelOp::kMmapCall);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.syscall_body_opt
                                                       : costs_.syscall_body_unopt));

  const uint32_t pages = static_cast<uint32_t>(it->second.frames.size());
  const uint32_t start = mm.vmas.FindFreeRange(kUserMmapBase >> kPageShift, pages);
  mm.vmas.Insert(Vma{.start_page = start,
                     .end_page = start + pages,
                     .writable = true,
                     .backing = VmaBacking::kShm,
                     .file_id = shm_id});
  ++it->second.attach_count;
  return start;
}

void Kernel::ShmDetach(uint32_t start_page, uint32_t pages) {
  Task& current = CurrentTask();
  const std::optional<Vma> vma = current.mm->vmas.Find(start_page);
  PPCMM_CHECK_MSG(vma.has_value() && vma->backing == VmaBacking::kShm,
                  "ShmDetach on a non-shm range");
  const uint32_t shm_id = vma->file_id;
  Munmap(start_page, pages);
  auto it = shm_segments_.find(shm_id);
  if (it != shm_segments_.end() && it->second.attach_count > 0) {
    --it->second.attach_count;
  }
}

void Kernel::ShmDestroy(uint32_t shm_id) {
  auto it = shm_segments_.find(shm_id);
  PPCMM_CHECK_MSG(it != shm_segments_.end(), "destroy of unknown shm segment " << shm_id);
  PPCMM_CHECK_MSG(it->second.attach_count == 0,
                  "shm segment " << shm_id << " still has attachments");
  CycleScope syscall_scope(machine_, AttrCause::kSyscall);
  for (const uint32_t frame : it->second.frames) {
    mem_.FreePage(frame);
  }
  shm_segments_.erase(it);
}

uint32_t Kernel::CreatePipe() {
  CycleScope pipe_scope(machine_, AttrCause::kPipe);
  const uint32_t id = next_pipe_++;
  pipes_[id] = PipeState{.buffer_frame = mem_.GetFreePage(), .used = 0, .read_pos = 0};
  return id;
}

uint32_t Kernel::PipeWrite(uint32_t pipe_id, EffAddr user_src, uint32_t length) {
  auto it = pipes_.find(pipe_id);
  PPCMM_CHECK_MSG(it != pipes_.end(), "write to unknown pipe " << pipe_id);
  PipeState& pipe = it->second;
  CycleScope pipe_scope(machine_, AttrCause::kPipe);
  ++machine_.counters().syscalls;
  ChargeKernelWork(KernelOp::kPipe);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.syscall_body_opt
                                                       : costs_.syscall_body_unopt));
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.pipe_wakeup_opt
                                                       : costs_.pipe_wakeup_unopt));

  const uint32_t n = std::min(length, PipeState::kCapacity - pipe.used);
  uint32_t done = 0;
  while (done < n) {
    const uint32_t write_pos = (pipe.read_pos + pipe.used + done) % PipeState::kCapacity;
    const uint32_t chunk = std::min(n - done, PipeState::kCapacity - write_pos);
    CopyUserKernel(user_src + done, PhysAddr::FromFrame(pipe.buffer_frame, write_pos), chunk,
                   /*to_user=*/false);
    done += chunk;
  }
  pipe.used += n;
  return n;
}

uint32_t Kernel::PipeRead(uint32_t pipe_id, EffAddr user_dst, uint32_t length) {
  auto it = pipes_.find(pipe_id);
  PPCMM_CHECK_MSG(it != pipes_.end(), "read from unknown pipe " << pipe_id);
  PipeState& pipe = it->second;
  CycleScope pipe_scope(machine_, AttrCause::kPipe);
  ++machine_.counters().syscalls;
  ChargeKernelWork(KernelOp::kPipe);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.syscall_body_opt
                                                       : costs_.syscall_body_unopt));
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.pipe_wakeup_opt
                                                       : costs_.pipe_wakeup_unopt));

  const uint32_t n = std::min(length, pipe.used);
  uint32_t done = 0;
  while (done < n) {
    const uint32_t chunk = std::min(n - done, PipeState::kCapacity - pipe.read_pos);
    CopyUserKernel(user_dst + done, PhysAddr::FromFrame(pipe.buffer_frame, pipe.read_pos),
                   chunk, /*to_user=*/true);
    pipe.read_pos = (pipe.read_pos + chunk) % PipeState::kCapacity;
    done += chunk;
  }
  pipe.used -= n;
  return n;
}

// ---- cooperative scheduling ----

void Kernel::Yield() {
  const std::optional<TaskId> next = scheduler_.PickNextFor(smp_.current_cpu);
  if (!next.has_value() || *next == current_) {
    return;
  }
  SwitchTo(*next);
}

void Kernel::BlockCurrentOn(WaitQueue& queue) {
  Task& current = CurrentTask();
  current.state = TaskState::kBlocked;
  scheduler_.Remove(current.id);
  queue.Add(current.id);
  const std::optional<TaskId> next = scheduler_.PickNextFor(smp_.current_cpu);
  PPCMM_CHECK_MSG(next.has_value(),
                  "deadlock: task " << current.id.value
                                    << " blocked with nothing runnable to wake it");
  SwitchTo(*next);
}

bool Kernel::WakeOne(WaitQueue& queue) {
  const std::optional<TaskId> woken = queue.PopOne();
  if (!woken.has_value()) {
    return false;
  }
  // wake_up() runs in whatever syscall woke the sleeper; the scheduler bookkeeping below is
  // kernel time and must not leak into the caller's ambient bucket.
  CycleScope wake_scope(machine_, AttrCause::kSyscall);
  // wake_up(): runqueue insertion plus a touch of the woken task's struct.
  machine_.AddCycles(Cycles(40));
  KernelTouch(KernelVirtFromPhys(task(*woken).task_struct_pa), AccessKind::kStore);
  task(*woken).state = TaskState::kRunnable;
  scheduler_.MakeRunnable(*woken);
  return true;
}

void Kernel::WakeAll(WaitQueue& queue) {
  while (WakeOne(queue)) {
  }
}

void Kernel::PipeWriteBlocking(uint32_t pipe_id, EffAddr user_src, uint32_t length) {
  uint32_t done = 0;
  while (done < length) {
    const uint32_t n = PipeWrite(pipe_id, user_src + done, length - done);
    done += n;
    PipeState& pipe = pipes_.at(pipe_id);
    if (!pipe.readers.Empty()) {
      WakeOne(pipe.readers);
    }
    if (done < length) {
      BlockCurrentOn(pipe.writers);
    }
  }
}

void Kernel::PipeReadBlocking(uint32_t pipe_id, EffAddr user_dst, uint32_t length) {
  uint32_t done = 0;
  while (done < length) {
    const uint32_t n = PipeRead(pipe_id, user_dst + done, length - done);
    done += n;
    PipeState& pipe = pipes_.at(pipe_id);
    if (!pipe.writers.Empty()) {
      WakeOne(pipe.writers);
    }
    if (done < length) {
      BlockCurrentOn(pipe.readers);
    }
  }
}

// ---- user-mode execution ----

void Kernel::UserTouch(EffAddr ea, AccessKind kind) {
  Task& current = CurrentTask();
  for (uint32_t attempt = 0; attempt < 8; ++attempt) {
    switch (mmu_->Access(ea, kind)) {
      case AccessOutcome::kOk:
        return;
      case AccessOutcome::kPageFault: {
        const Cycles fault_start = machine_.Now();
        HandlePageFault(current, ea, kind);
        machine_.RecordLatency(LatencyProbe::kPageFault, fault_start);
        break;
      }
      case AccessOutcome::kProtectionFault: {
        const std::optional<LinuxPte> pte = current.mm->page_table->LookupQuiet(ea);
        PPCMM_CHECK_MSG(pte.has_value() && pte->present && pte->cow,
                        "write to a genuinely read-only mapping at 0x" << std::hex << ea.value);
        const Cycles fault_start = machine_.Now();
        HandleCowFault(current, ea);
        machine_.RecordLatency(LatencyProbe::kCowFault, fault_start);
        break;
      }
    }
  }
  PPCMM_CHECK_MSG(false, "fault loop did not converge at 0x" << std::hex << ea.value);
}

void Kernel::UserTouchRun(EffAddr start, uint32_t stride, uint32_t count, AccessKind kind) {
  PPCMM_CHECK(stride > 0);
  Task& current = CurrentTask();
  uint32_t done = 0;
  uint32_t attempts = 0;  // faults taken at the current access without progress
  while (done < count) {
    AccessOutcome outcome = AccessOutcome::kOk;
    const uint32_t n =
        mmu_->AccessRun(start + done * stride, stride, count - done, kind, &outcome);
    done += n;
    if (done >= count) {
      return;
    }
    if (n > 0) {
      attempts = 0;  // progress: the convergence bound is per faulting access
    }
    // The run stopped on a fault at access `done`; repair exactly as UserTouch would and
    // resume the run from the faulting access.
    const EffAddr ea = start + done * stride;
    switch (outcome) {
      case AccessOutcome::kOk:
        PPCMM_CHECK_MSG(false, "AccessRun stopped short without a fault");
        break;
      case AccessOutcome::kPageFault: {
        const Cycles fault_start = machine_.Now();
        HandlePageFault(current, ea, kind);
        machine_.RecordLatency(LatencyProbe::kPageFault, fault_start);
        break;
      }
      case AccessOutcome::kProtectionFault: {
        const std::optional<LinuxPte> pte = current.mm->page_table->LookupQuiet(ea);
        PPCMM_CHECK_MSG(pte.has_value() && pte->present && pte->cow,
                        "write to a genuinely read-only mapping at 0x" << std::hex << ea.value);
        const Cycles fault_start = machine_.Now();
        HandleCowFault(current, ea);
        machine_.RecordLatency(LatencyProbe::kCowFault, fault_start);
        break;
      }
    }
    ++attempts;
    PPCMM_CHECK_MSG(attempts < 8, "fault loop did not converge at 0x" << std::hex << ea.value);
  }
}

void Kernel::UserTouchRange(EffAddr start, uint32_t bytes, uint32_t stride, AccessKind kind) {
  PPCMM_CHECK(stride > 0);
  if (bytes == 0) {
    return;
  }
  UserTouchRun(start, stride, (bytes - 1) / stride + 1, kind);
}

void Kernel::UserExecute(uint32_t instructions) {
  // mmu-lint-ambient(ATTR-COVER-032): user-mode instruction time IS the ambient bucket —
  // the profiler attributes kernel overhead, not the workload's own execution
  Task& current = CurrentTask();
  const uint32_t line = machine_.config().icache.line_bytes;
  const uint32_t lines_per_page = kPageSize / line;
  // One instruction fetch per 8 instructions (32-byte lines hold 8 four-byte instructions),
  // walking sequentially through the task's code page.
  for (uint32_t i = 0; i < instructions; i += 8) {
    const uint32_t line_index = static_cast<uint32_t>(idle_rr_cursor_++) % lines_per_page;
    UserTouch(EffAddr::FromPage(current.text_page, line_index * line),
              AccessKind::kInstructionFetch);
  }
  machine_.AddCycles(Cycles(instructions));
}

// ---- idle ----

void Kernel::RunIdle(Cycles budget) {
  CycleScope idle_scope(machine_, AttrCause::kIdleLoop);
  HwCounters& counters = machine_.counters();
  ++counters.idle_invocations;
  machine_.Trace(TraceEvent::kIdleSlice, static_cast<uint32_t>(budget.value));
  if (tick_hook_) {
    tick_hook_();
  }
  const Cycles deadline = machine_.Now() + budget;
  DataMemCharger pt_charger = mmu_->PageTableCharger();

  while (machine_.Now() < deadline) {
    // The idle loop's own instruction fetches — through the caches normally, around them
    // when the §10.1 extension is enabled.
    if (config_.uncached_idle_task) {
      machine_.TouchInstruction(PhysAddr::FromFrame(kIdleTextPage), /*cached=*/false);
    } else {
      KernelTouch(EffAddr(kKernelVirtualBase + kIdleTextPage * kPageSize),
                  AccessKind::kInstructionFetch);
    }
    machine_.AddCycles(Cycles(10));

    bool worked = false;
    if (config_.idle_zombie_reclaim && mmu_->policy().UsesHtab()) {
      CycleScope reclaim_scope(machine_, AttrCause::kIdleReclaim);
      const Cycles pass_start = machine_.Now();
      const uint32_t reclaimed =
          mmu_->htab().ReclaimZombies(config_.idle_reclaim_ptegs_per_pass, vsids_, pt_charger);
      machine_.RecordLatency(LatencyProbe::kIdleReclaimPass, pass_start);
      counters.zombies_reclaimed += reclaimed;
      if (reclaimed > 0) {
        machine_.Trace(TraceEvent::kZombieReclaim, reclaimed);
      }
      worked = true;  // the scan itself consumed cycles
    }
    if (config_.idle_zero != IdleZeroPolicy::kOff) {
      CycleScope zero_scope(machine_, AttrCause::kIdleZero);
      worked = mem_.IdleZeroOnePage() || worked;
    }
    if (!worked) {
      machine_.AddCycles(Cycles(20));
    }
  }
}

// ---- faults ----

void Kernel::HandlePageFault(Task& task, EffAddr ea, AccessKind kind) {
  Mm& mm = *task.mm;
  const uint32_t page = ea.EffPageNumber();
  // The VMA lookup is uncharged and side-effect free, so it can run early to classify the
  // fault for attribution; the handler's simulated costs all land inside the scope.
  const std::optional<Vma> vma = mm.vmas.Find(page);
  AttrCause fault_cause = AttrCause::kFaultAnon;
  if (vma.has_value()) {
    switch (vma->backing) {
      case VmaBacking::kAnonymous: fault_cause = AttrCause::kFaultAnon; break;
      case VmaBacking::kFile: fault_cause = AttrCause::kFaultFile; break;
      case VmaBacking::kShm: fault_cause = AttrCause::kFaultShm; break;
      case VmaBacking::kIo: fault_cause = AttrCause::kFaultIo; break;
    }
  }
  CycleScope fault_scope(machine_, fault_cause);

  HwCounters& counters = machine_.counters();
  ++counters.page_faults;
  ++task.obs.page_faults;
  machine_.Trace(TraceEvent::kPageFault, ea.EffPageNumber());
  ChargeKernelWork(KernelOp::kFault);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.fault_body_opt
                                                       : costs_.fault_body_unopt));

  PPCMM_CHECK_MSG(vma.has_value(), "page fault outside any VMA at 0x" << std::hex << ea.value
                                                                      << " (task " << std::dec
                                                                      << task.id.value << ")");
  PPCMM_CHECK_MSG(!IsWrite(kind) || vma->writable,
                  "write fault on read-only VMA at 0x" << std::hex << ea.value);

  DataMemCharger charger = mmu_->PageTableCharger();
  LinuxPte pte{.present = true,
               .writable = false,
               .user = true,
               .accessed = true,
               .dirty = IsWrite(kind),
               .cache_inhibited = false,
               .cow = false,
               .frame = 0};
  // With eager C-bit marking the MMU installs writable translations pre-marked changed, so
  // no store will ever trap to set the Linux dirty bit — it must be set here, at fault time,
  // even when the faulting access is a load. Otherwise the first store is invisible and the
  // dirty bit is lost (the §7 trade the paper accepts: eager marking over-reports dirtiness).
  const bool eager_marking = config_.eager_dirty_marking || config_.lazy_context_flush;
  const auto finalize_dirty = [eager_marking](LinuxPte& p) {
    p.dirty = p.dirty || (eager_marking && p.writable);
  };

  if (vma->backing == VmaBacking::kShm) {
    // Shared segment: everyone maps the same frame, writable, never COW.
    auto segment = shm_segments_.find(vma->file_id);
    PPCMM_CHECK_MSG(segment != shm_segments_.end(), "fault on a destroyed shm segment");
    const uint32_t frame = segment->second.frames[page - vma->start_page];
    allocator_.AddRef(frame);
    pte.frame = frame;
    pte.writable = vma->writable;
    finalize_dirty(pte);
    mm.page_table->Map(ea, pte, &charger);
    return;
  }
  if (vma->backing == VmaBacking::kIo) {
    // Device aperture: a fixed physical frame, always cache inhibited, never refcounted.
    pte.frame = vma->io_first_frame + (page - vma->start_page);
    pte.writable = vma->writable;
    pte.cache_inhibited = true;
    finalize_dirty(pte);
    mm.page_table->Map(ea, pte, &charger);
    return;
  }
  if (vma->backing == VmaBacking::kFile) {
    const uint32_t file_page = vma->file_page_offset + (page - vma->start_page);
    bool miss = false;
    const uint32_t cache_frame = page_cache_.GetPage(FileId{vma->file_id}, file_page, &miss);
    if (miss) {
      SimulateIoWait(Cycles(costs_.disk_latency_cycles));
    }
    if (vma->writable) {
      // Private writable file mapping: give the task its own copy.
      const uint32_t frame = mem_.GetFreePage();
      for (uint32_t offset = 0; offset < kPageSize; offset += machine_.config().dcache.line_bytes) {
        machine_.TouchData(PhysAddr::FromFrame(cache_frame, offset), /*is_write=*/false);
        machine_.TouchData(PhysAddr::FromFrame(frame, offset), /*is_write=*/true);
        machine_.AddCycles(Cycles(costs_.copy_cycles_per_line));
      }
      machine_.memory().Copy(PhysAddr::FromFrame(frame), PhysAddr::FromFrame(cache_frame),
                             kPageSize);
      pte.frame = frame;
      pte.writable = true;
    } else {
      // Shared read-only (program text): map the page-cache frame directly.
      allocator_.AddRef(cache_frame);
      pte.frame = cache_frame;
    }
  } else {
    pte.frame = mem_.GetFreePage();
    pte.writable = vma->writable;
  }

  finalize_dirty(pte);
  mm.page_table->Map(ea, pte, &charger);
}

void Kernel::HandleCowFault(Task& task, EffAddr ea) {
  CycleScope cow_scope(machine_, AttrCause::kCowFault);
  HwCounters& counters = machine_.counters();
  ++counters.page_faults;
  ++task.obs.cow_faults;
  machine_.Trace(TraceEvent::kCowFault, ea.EffPageNumber());
  ChargeKernelWork(KernelOp::kFault);
  machine_.AddCycles(Cycles(config_.optimized_handlers ? costs_.fault_body_opt
                                                       : costs_.fault_body_unopt));

  Mm& mm = *task.mm;
  const std::optional<LinuxPte> pte = mm.page_table->LookupQuiet(ea);
  PPCMM_CHECK_MSG(pte.has_value() && pte->present && pte->cow, "COW fault without a COW PTE");

  DataMemCharger charger = mmu_->PageTableCharger();
  if (allocator_.RefCount(pte->frame) == 1) {
    // Sole owner: just restore write permission.
    mm.page_table->Update(
        ea,
        [](LinuxPte& p) {
          p.writable = true;
          p.cow = false;
          p.dirty = true;  // a COW fault is a store; under eager marking no trap follows
        },
        &charger);
  } else {
    const uint32_t frame = mem_.GetFreePage();
    {
      CycleScope copy_scope(machine_, AttrCause::kCowCopy);
      for (uint32_t offset = 0; offset < kPageSize;
           offset += machine_.config().dcache.line_bytes) {
        machine_.TouchData(PhysAddr::FromFrame(pte->frame, offset), /*is_write=*/false);
        machine_.TouchData(PhysAddr::FromFrame(frame, offset), /*is_write=*/true);
        machine_.AddCycles(Cycles(costs_.copy_cycles_per_line));
      }
    }
    machine_.memory().Copy(PhysAddr::FromFrame(frame), PhysAddr::FromFrame(pte->frame),
                           kPageSize);
    allocator_.DecRef(pte->frame);
    mm.page_table->Update(
        ea,
        [frame](LinuxPte& p) {
          p.frame = frame;
          p.writable = true;
          p.cow = false;
          p.dirty = true;  // ditto: the faulting store lands in the fresh copy
        },
        &charger);
  }
  // The read-only translation may still be cached in the TLB/HTAB; scrub it.
  flusher_.FlushPage(mm, ea);
}

// ---- plumbing ----

void Kernel::CopyUserKernel(EffAddr user, PhysAddr kernel, uint32_t length, bool to_user) {
  const uint32_t line = machine_.config().dcache.line_bytes;
  uint32_t done = 0;
  while (done < length) {
    const EffAddr user_ea = user + done;
    const uint32_t page_remaining = kPageSize - user_ea.PageOffset();
    const uint32_t chunk = std::min({line - (user_ea.value % line), length - done,
                                     page_remaining});
    // The user side of the copy (faulting the page in if needed) and the kernel side.
    UserTouch(user_ea, to_user ? AccessKind::kStore : AccessKind::kLoad);
    machine_.TouchData(kernel + done, /*is_write=*/!to_user);
    machine_.AddCycles(Cycles(costs_.copy_cycles_per_line));

    // Functionally move the bytes so data-integrity tests hold end to end.
    const std::optional<PhysAddr> user_pa =
        mmu_->Probe(user_ea, to_user ? AccessKind::kStore : AccessKind::kLoad);
    PPCMM_CHECK_MSG(user_pa.has_value(), "user page vanished mid-copy");
    if (to_user) {
      machine_.memory().Copy(*user_pa, kernel + done, chunk);
    } else {
      machine_.memory().Copy(kernel + done, *user_pa, chunk);
    }
    done += chunk;
  }
}

void Kernel::KernelTouch(EffAddr ea, AccessKind kind) {
  PPCMM_CHECK_MSG(ea.IsKernel(), "KernelTouch on user address 0x" << std::hex << ea.value);
  const AccessOutcome outcome = mmu_->Access(ea, kind);
  PPCMM_CHECK_MSG(outcome == AccessOutcome::kOk, "kernel access faulted at 0x" << std::hex
                                                                               << ea.value);
}

void Kernel::ChargeKernelWork(KernelOp op) {
  Footprint fp;
  switch (op) {
    case KernelOp::kSyscallEntry:
      fp = Footprint{.text_page = 0, .text_pages = 2, .data_offset = 0x0000, .data_refs = 2};
      break;
    case KernelOp::kContextSwitch:
      fp = Footprint{.text_page = 20, .text_pages = 3, .data_offset = 0x0400, .data_refs = 6};
      break;
    case KernelOp::kPipe:
      fp = Footprint{.text_page = 40, .text_pages = 3, .data_offset = 0x0800, .data_refs = 4};
      break;
    case KernelOp::kFileIo:
      fp = Footprint{.text_page = 60, .text_pages = 5, .data_offset = 0x0C00, .data_refs = 6};
      break;
    case KernelOp::kFault:
      fp = Footprint{.text_page = 80, .text_pages = 4, .data_offset = 0x1000, .data_refs = 4};
      break;
    case KernelOp::kFork:
      fp = Footprint{.text_page = 100, .text_pages = 8, .data_offset = 0x1400, .data_refs = 10};
      break;
    case KernelOp::kExec:
      fp = Footprint{.text_page = 110, .text_pages = 10, .data_offset = 0x1800, .data_refs = 10};
      break;
    case KernelOp::kMmapCall:
      fp = Footprint{.text_page = 130, .text_pages = 4, .data_offset = 0x1C00, .data_refs = 6};
      break;
    case KernelOp::kIdleLoop:
      fp = Footprint{.text_page = kIdleTextPage, .text_pages = 1, .data_offset = 0x2000,
                     .data_refs = 1};
      break;
  }
  // The original C paths are roughly twice the code and touch twice the data (§6.1).
  const uint32_t scale = config_.optimized_handlers ? 1 : 2;

  for (uint32_t p = 0; p < fp.text_pages * scale; ++p) {
    const uint32_t page = fp.text_page + p;
    const EffAddr code(kKernelVirtualBase + page * kPageSize);
    // Two instruction-cache lines per page of handler code executed.
    KernelTouch(code, AccessKind::kInstructionFetch);
    KernelTouch(code + 128, AccessKind::kInstructionFetch);
  }
  for (uint32_t d = 0; d < fp.data_refs * scale; ++d) {
    const EffAddr data(kKernelVirtualBase + kKernelDataPhysBase + fp.data_offset + d * 64);
    KernelTouch(data, (d % 3 == 0) ? AccessKind::kStore : AccessKind::kLoad);
  }
}

void Kernel::MarkPteDirty(EffAddr ea, MemCharger& charger) {
  // mmu-lint-deferred-flush(FLUSH-CONTRACT-029): dirty-bit-only update — the translation
  // (frame, protection) is unchanged, so any cached TLB/HTAB copy remains correct
  PageTable* table = nullptr;
  if (ea.IsKernel()) {
    table = kernel_page_table_.get();
  } else if (current_.value != 0) {
    table = CurrentTask().mm->page_table.get();
  }
  if (table == nullptr) {
    return;
  }
  const std::optional<LinuxPte> pte = table->LookupQuiet(ea);
  if (pte.has_value() && pte->present) {
    table->Update(ea, [](LinuxPte& p) { p.dirty = true; }, &charger);
  }
}

std::optional<PteWalkInfo> Kernel::WalkPte(EffAddr ea, MemCharger& charger) {
  // Load 1 of the paper's three: the PGD pointer out of the task structure.
  if (ea.IsKernel()) {
    charger.Charge(PhysAddr(kKernelMiscPhysBase), /*is_write=*/false);
    const std::optional<LinuxPte> pte = kernel_page_table_->Lookup(ea, charger);
    if (!pte.has_value() || !pte->present) {
      return std::nullopt;
    }
    return PteWalkInfo{.frame = pte->frame,
                       .writable = pte->writable,
                       .cache_inhibited = pte->cache_inhibited};
  }
  if (current_.value == 0) {
    return std::nullopt;
  }
  Task& current = CurrentTask();
  charger.Charge(current.task_struct_pa, /*is_write=*/false);
  const std::optional<LinuxPte> pte = current.mm->page_table->Lookup(ea, charger);
  if (!pte.has_value() || !pte->present) {
    return std::nullopt;
  }
  return PteWalkInfo{.frame = pte->frame,
                     .writable = pte->writable,
                     .cache_inhibited = pte->cache_inhibited};
}

}  // namespace ppcmm
