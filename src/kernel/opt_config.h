// Every optimization the paper describes, as an independently toggleable policy.
//
// The paper evaluates each change against the original unoptimized kernel "alone without the
// others" (§4) and then in aggregate, noting that the optimizations interact (BAT gains
// largely evaporated once reloads were fast, §5.1). This struct is the experiment surface:
// Baseline() is the original kernel, AllOptimizations() the final one, and every bench sweeps
// individual fields.

#ifndef PPCMM_SRC_KERNEL_OPT_CONFIG_H_
#define PPCMM_SRC_KERNEL_OPT_CONFIG_H_

#include <cstdint>
#include <string>

namespace ppcmm {

// §9: what the idle task does with free pages.
enum class IdleZeroPolicy {
  kOff,               // no idle-task page clearing (the baseline)
  kCached,            // clear through the data cache and keep the pages for get_free_page()
                      //   — the paper's failed first attempt (kernel compile ~2× slower)
  kUncachedNoList,    // clear with the cache inhibited but throw the work away — neutral
  kUncachedWithList,  // clear uncached and feed get_free_page() — the winning variant
};

// The complete optimization surface.
struct OptimizationConfig {
  // §5.1 — map kernel text/data (and with them the HTAB) with a BAT register.
  bool kernel_bat_mapping = false;

  // §5.2 — the VSID scatter constant. The default (16 = kNaiveVsidScatter) models the naive
  // PID-derived VSIDs (PID << 4) the paper started from; kDefaultVsidScatter (897) is the
  // histogram-tuned value.
  uint32_t vsid_scatter = 16;

  // §6.1 — hand-optimized assembly exception/miss handlers instead of save-everything-and-
  // call-C. Shortens TLB reloads, syscall entry and context switch bodies.
  bool optimized_handlers = false;

  // §6.2 — on software-reload CPUs (603), skip the HTAB and reload the TLB straight from the
  // Linux PTE tree. Ignored on hardware-walk CPUs (604), which cannot bypass the HTAB.
  bool no_htab_direct_reload = false;

  // §7 — mark PTEs changed (dirty) when they are loaded into the HTAB, so "a TLB flush is
  // actually a TLB invalidate". Off = the classic deferred scheme: the first store through a
  // clean translation traps to set the C bit. Forced on by lazy_context_flush (zombie PTEs
  // can never write their C bits back).
  bool eager_dirty_marking = false;

  // §7 — lazy whole-context flushing: retire the context's VSIDs instead of searching the
  // HTAB per page.
  bool lazy_context_flush = false;

  // §7 — flush ranges bigger than this many pages by invalidating the whole context
  // (requires lazy_context_flush). 0 disables the cutoff; the paper settled on 20.
  uint32_t range_flush_cutoff = 0;

  // §7 — idle-task reclaim of zombie HTAB entries.
  bool idle_zombie_reclaim = false;
  // PTEGs scanned per idle pass (each is 8 charged probes).
  uint32_t idle_reclaim_ptegs_per_pass = 16;

  // §8 — treat page tables (HTAB + PTE tree) as cache inhibited so their traffic stops
  // polluting the data cache.
  bool uncached_page_tables = false;

  // §9 — idle-task page clearing policy.
  IdleZeroPolicy idle_zero = IdleZeroPolicy::kOff;
  // Cap on the pre-zeroed list (pages); beyond it the idle task stops zeroing.
  uint32_t prezero_list_cap = 64;

  // §10.1 (future work, built as an extension) — keep idle-task instruction/data accesses
  // out of the caches entirely.
  bool uncached_idle_task = false;

  // §10.2 (future work, built as an extension) — issue dcbt-style cache preloads for the
  // incoming task's state in the context-switch path, hiding the fill latency behind the
  // switch's other work.
  bool cache_preload_hints = false;

  // §5.1 (considered, built as an extension) — dedicate a user-visible data BAT to the
  // framebuffer "so programs such as X do not compete constantly with other applications or
  // the kernel for TLB space".
  bool framebuffer_bat = false;

  // ---- presets ----

  // The original unoptimized Linux/PPC kernel of the paper's comparisons.
  static OptimizationConfig Baseline();

  // Every optimization the paper's final kernel shipped, with the tuned parameters (scatter
  // 897, cutoff 20, uncached idle zeroing with the pre-zeroed list). Deliberately does NOT
  // include uncached page tables: §8 analyses that change but the paper had "not yet
  // performed experiments" with it.
  static OptimizationConfig AllOptimizations();

  // The §8 extension on top of the full set: page tables become cache inhibited.
  static OptimizationConfig AllPlusUncachedPageTables();

  // Named single-optimization presets (baseline + exactly one change), used by benches that
  // reproduce the paper's one-at-a-time methodology.
  static OptimizationConfig OnlyBatMapping();
  static OptimizationConfig OnlyTunedScatter();
  static OptimizationConfig OnlyFastHandlers();
  static OptimizationConfig OnlyDirectReload();
  static OptimizationConfig OnlyLazyFlush(uint32_t cutoff = 20);
  static OptimizationConfig OnlyIdleReclaim();
  static OptimizationConfig OnlyUncachedPageTables();
  static OptimizationConfig OnlyIdleZero(IdleZeroPolicy policy);

  std::string Describe() const;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_OPT_CONFIG_H_
