// A miniature page cache and file layer.
//
// Files are page-granular objects whose data lives in allocator-owned frames once read. The
// LmBench "file reread" test and the kernel-compile workload's source/object traffic run
// through this layer, so file reads produce real kernel data-cache and copy traffic.
// Disk transfers themselves are DMA and cost no CPU cycles here; callers model the wait by
// running the idle task for the duration (see Kernel::SimulateIoWait).

#ifndef PPCMM_SRC_KERNEL_PAGE_CACHE_H_
#define PPCMM_SRC_KERNEL_PAGE_CACHE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/kernel/mem_manager.h"
#include "src/sim/machine.h"

namespace ppcmm {

// File handle.
struct FileId {
  uint32_t value = 0;
  constexpr auto operator<=>(const FileId&) const = default;
};

// The system-wide page cache.
class PageCache {
 public:
  PageCache(Machine& machine, MemManager& mem) : machine_(machine), mem_(mem) {}

  // Creates a file of `size_pages` pages. Contents are synthesized deterministically from
  // (file id, page number) on first access.
  FileId CreateFile(uint32_t size_pages);

  // Deletes a file, dropping its cached pages.
  void DeleteFile(FileId file);

  uint32_t SizePages(FileId file) const;

  // Returns the frame caching page `page` of `file`, filling it on a miss. `was_miss` (if
  // non-null) reports whether disk had to be touched. Charges the lookup's kernel data
  // references (radix-tree-ish probes) and, on a miss, the fill's frame writes.
  uint32_t GetPage(FileId file, uint32_t page, bool* was_miss = nullptr);

  bool IsCached(FileId file, uint32_t page) const;

  // Drops every cached page of `file` (e.g. to measure cold rereads).
  void EvictFile(FileId file);

  // Memory pressure: evicts up to `target` cached pages that nothing else references
  // (refcount 1 — not currently mapped by any task). Returns the number freed.
  uint32_t ReclaimPages(uint32_t target);

  uint32_t CachedPageCount() const;

  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }

 private:
  struct File {
    uint32_t size_pages = 0;
    std::map<uint32_t, uint32_t> pages;  // file page -> frame
  };

  Machine& machine_;
  MemManager& mem_;
  // Ordered by file id: ReclaimPages frees frames in iteration order, so the container's
  // order is simulated-state-visible and must not depend on the host's hash seed.
  std::map<uint32_t, File> files_;
  uint32_t next_file_ = 1;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_PAGE_CACHE_H_
