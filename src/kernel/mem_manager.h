// get_free_page() and the idle task's pre-zeroed page list (§9 of the paper).
//
// Demand path: allocate a frame and zero it through the data cache — 128 line-allocating
// stores that both cost time and pollute the cache with lines the requester will overwrite
// anyway. Idle path (policy dependent): the idle task zeroes free frames ahead of time,
// through or around the cache, and optionally stashes them on a list that get_free_page()
// consumes. The paper measured all three variants; all three are here.

#ifndef PPCMM_SRC_KERNEL_MEM_MANAGER_H_
#define PPCMM_SRC_KERNEL_MEM_MANAGER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/kernel/opt_config.h"
#include "src/pagetable/page_allocator.h"
#include "src/sim/machine.h"
#include "src/sim/fault_injector.h"

namespace ppcmm {

// Kernel-level page supplier.
class MemManager {
 public:
  MemManager(Machine& machine, PageAllocator& allocator, const OptimizationConfig& config)
      : machine_(machine), allocator_(allocator), config_(config) {}

  // Installs the memory-pressure hook: called with a target frame count when the allocator
  // runs dry; returns how many frames it freed (the kernel wires this to page-cache
  // eviction).
  void SetReclaimHook(std::function<uint32_t(uint32_t)> hook) { reclaim_ = std::move(hook); }

  // Optional fault injection (kPageAllocExhaustion); null = never fires.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  // get_free_page(): returns a zeroed frame. Checks the pre-zeroed list first (a couple of
  // cycles — the paper argues this check is the only overhead the feature adds), zeroing on
  // demand otherwise. Reclaims from the page cache under memory pressure. Throws
  // OutOfMemoryError once every recovery avenue is exhausted.
  uint32_t GetFreePage();

  // GetFreePage minus the throw: nullopt means genuinely out of memory after degradation
  // (prezeroed list → allocator → reclaim → drain the prezeroed list).
  std::optional<uint32_t> TryGetFreePage();

  // Releases one reference to a frame.
  void FreePage(uint32_t frame);

  // One idle-task zeroing step: zero one free frame per the configured policy. Returns true
  // if a page was zeroed (false when the policy is off, the list is full, or RAM is tight).
  bool IdleZeroOnePage();

  uint32_t PrezeroedCount() const { return static_cast<uint32_t>(prezeroed_.size()); }
  PageAllocator& allocator() { return allocator_; }

 private:
  // Zeroes `frame` with per-line charged stores, through the cache or around it.
  void ZeroFrameCharged(uint32_t frame, bool cached);

  Machine& machine_;
  PageAllocator& allocator_;
  const OptimizationConfig& config_;
  std::vector<uint32_t> prezeroed_;
  std::function<uint32_t(uint32_t)> reclaim_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_MEM_MANAGER_H_
