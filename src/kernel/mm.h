// One address space: context id, VSIDs, the VMA list and the two-level page table.

#ifndef PPCMM_SRC_KERNEL_MM_H_
#define PPCMM_SRC_KERNEL_MM_H_

#include <memory>

#include "src/kernel/vma.h"
#include "src/kernel/vsid_space.h"
#include "src/pagetable/page_table.h"

namespace ppcmm {

// The memory-management half of a task. Owned by exactly one Task (no thread sharing in
// this model; the paper's workloads are process based).
struct Mm {
  // The PGD frame is allocated before the context is drawn: if memory is exhausted the
  // constructor throws without having marked any VSIDs live (no context leak on OOM).
  Mm(VsidSpace& vsids, PageAllocator& allocator, PhysicalMemory& memory)
      : page_table(std::make_unique<PageTable>(allocator, memory)),
        context(vsids.NewContext()) {}

  std::unique_ptr<PageTable> page_table;  // declared first: built before the context is drawn
  ContextId context;                      // reassigned by lazy whole-context flushes
  VmaList vmas;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_MM_H_
