// One address space: context id, VSIDs, the VMA list and the two-level page table.

#ifndef PPCMM_SRC_KERNEL_MM_H_
#define PPCMM_SRC_KERNEL_MM_H_

#include <memory>

#include "src/kernel/vma.h"
#include "src/kernel/vsid_space.h"
#include "src/pagetable/page_table.h"

namespace ppcmm {

// The memory-management half of a task. Owned by exactly one Task (no thread sharing in
// this model; the paper's workloads are process based).
struct Mm {
  Mm(VsidSpace& vsids, PageAllocator& allocator, PhysicalMemory& memory)
      : context(vsids.NewContext()),
        page_table(std::make_unique<PageTable>(allocator, memory)) {}

  ContextId context;  // reassigned by lazy whole-context flushes
  VmaList vmas;
  std::unique_ptr<PageTable> page_table;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_KERNEL_MM_H_
