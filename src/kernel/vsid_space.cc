#include "src/kernel/vsid_space.h"

#include "src/sim/check.h"

namespace ppcmm {

namespace {

// Kernel VSIDs live at the very top of the 24-bit space, far away from anything the scatter
// multiplication can produce for realistic context counts.
constexpr uint32_t kKernelVsidBase = 0xFFFFF0;

}  // namespace

VsidSpace::VsidSpace(uint32_t scatter_constant) : scatter_(scatter_constant) {
  PPCMM_CHECK_MSG(scatter_constant > 0, "scatter constant must be non-zero");
}

ContextId VsidSpace::NewContext() {
  const ContextId ctx{next_context_++};
  live_contexts_.insert(ctx.value);
  for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
    live_vsids_.insert(UserVsid(ctx, seg).value);
  }
  return ctx;
}

void VsidSpace::Retire(ContextId ctx) {
  if (live_contexts_.erase(ctx.value) == 0) {
    return;  // already retired
  }
  for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
    live_vsids_.erase(UserVsid(ctx, seg).value);
  }
}

Vsid VsidSpace::UserVsid(ContextId ctx, uint32_t segment) const {
  PPCMM_CHECK(segment < kFirstKernelSegment);
  // The Linux/PPC shape: a munged context plus a per-segment offset (0x111 spreads the 12
  // segments of one context over nearby hash rows). With a dense scatter (e.g. 16, i.e.
  // PID << 4) the hash's row selection degenerates to the page index — every process lands
  // on the same rows; a non-power-of-two multiplier like 897 gives each context its own
  // region of the table (§5.2).
  return Vsid((ctx.value * scatter_ + segment * kSegmentVsidStride) & kVsidMask);
}

Vsid VsidSpace::KernelVsid(uint32_t segment) {
  PPCMM_CHECK(segment >= kFirstKernelSegment && segment < kNumSegments);
  return Vsid(kKernelVsidBase + (segment - kFirstKernelSegment));
}

bool VsidSpace::IsKernelVsid(Vsid vsid) {
  return vsid.value >= kKernelVsidBase && vsid.value < kKernelVsidBase + kNumSegments;
}

std::array<Vsid, kNumSegments> VsidSpace::SegmentImage(ContextId ctx) const {
  std::array<Vsid, kNumSegments> image;
  for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
    image[seg] = UserVsid(ctx, seg);
  }
  for (uint32_t seg = kFirstKernelSegment; seg < kNumSegments; ++seg) {
    image[seg] = KernelVsid(seg);
  }
  return image;
}

bool VsidSpace::IsLive(Vsid vsid) const {
  if (IsKernelVsid(vsid)) {
    return true;
  }
  return live_vsids_.contains(vsid.value);
}

}  // namespace ppcmm
