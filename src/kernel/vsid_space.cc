#include "src/kernel/vsid_space.h"

#include "src/sim/check.h"

namespace ppcmm {

namespace {

// Kernel VSIDs live at the very top of the 24-bit space, far away from anything the scatter
// multiplication can produce for realistic context counts.
constexpr uint32_t kKernelVsidBase = 0xFFFFF0;

}  // namespace

VsidSpace::VsidSpace(uint32_t scatter_constant) : scatter_(scatter_constant) {
  PPCMM_CHECK_MSG(scatter_constant > 0, "scatter constant must be non-zero");
}

uint64_t VsidSpace::EpochOf(uint32_t ctx) const {
  const uint64_t top_vsid = static_cast<uint64_t>(ctx) * scatter_ +
                            static_cast<uint64_t>(kFirstKernelSegment - 1) * kSegmentVsidStride;
  return top_vsid >> 24;
}

bool VsidSpace::TouchesKernelVsids(uint32_t ctx) const {
  for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
    if (IsKernelVsid(UserVsid(ContextId{ctx}, seg))) {
      return true;
    }
  }
  return false;
}

ContextId VsidSpace::NewContext() {
  if (!in_rollover_ && injector_ != nullptr && injector_->ShouldFire(FaultClass::kVsidWrap)) {
    ForceWrap();
  }
  // The fixed kernel VSIDs sit at the top of every 2^24 window; skip any context whose user
  // VSIDs would alias them.
  while (TouchesKernelVsids(next_context_)) {
    ++next_context_;
  }
  if (!in_rollover_ && EpochOf(next_context_) != epoch_) {
    // Epoch rollover: VSIDs are about to wrap modulo 2^24 and re-issue values that earlier
    // contexts may still hold in TLB/HTAB entries (live or zombie). The hook must make all
    // pre-rollover user VSIDs unreachable before we hand any of them out again.
    epoch_ = EpochOf(next_context_);
    ++rollovers_;
    in_rollover_ = true;
    if (rollover_hook_) {
      rollover_hook_();
    }
    in_rollover_ = false;
    // The hook itself allocates (reassigning live tasks); re-skip the kernel window.
    while (TouchesKernelVsids(next_context_)) {
      ++next_context_;
    }
  }
  const ContextId ctx{next_context_++};
  live_contexts_.insert(ctx.value);
  for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
    const bool fresh = live_vsids_.insert(UserVsid(ctx, seg).value).second;
    PPCMM_CHECK_MSG(fresh, "VSID collision between live contexts: ctx=" << ctx.value
                                                                        << " seg=" << seg);
  }
  return ctx;
}

void VsidSpace::ForceWrap() {
  // Jump to the smallest context whose VSID window lies in the next epoch; the normal
  // NewContext path then performs the rollover.
  const uint64_t next_epoch_base = (epoch_ + 1) << 24;
  const uint64_t top_offset =
      static_cast<uint64_t>(kFirstKernelSegment - 1) * kSegmentVsidStride;
  const uint64_t needed = next_epoch_base - top_offset;
  const uint64_t candidate = (needed + scatter_ - 1) / scatter_;
  if (candidate > next_context_) {
    next_context_ = static_cast<uint32_t>(candidate);
  }
}

void VsidSpace::Retire(ContextId ctx) {
  if (live_contexts_.erase(ctx.value) == 0) {
    return;  // already retired
  }
  for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
    live_vsids_.erase(UserVsid(ctx, seg).value);
  }
}

Vsid VsidSpace::UserVsid(ContextId ctx, uint32_t segment) const {
  PPCMM_CHECK(segment < kFirstKernelSegment);
  // The Linux/PPC shape: a munged context plus a per-segment offset (0x111 spreads the 12
  // segments of one context over nearby hash rows). With a dense scatter (e.g. 16, i.e.
  // PID << 4) the hash's row selection degenerates to the page index — every process lands
  // on the same rows; a non-power-of-two multiplier like 897 gives each context its own
  // region of the table (§5.2).
  return Vsid((ctx.value * scatter_ + segment * kSegmentVsidStride) & kVsidMask);
}

Vsid VsidSpace::KernelVsid(uint32_t segment) {
  PPCMM_CHECK(segment >= kFirstKernelSegment && segment < kNumSegments);
  return Vsid(kKernelVsidBase + (segment - kFirstKernelSegment));
}

bool VsidSpace::IsKernelVsid(Vsid vsid) {
  return vsid.value >= kKernelVsidBase && vsid.value < kKernelVsidBase + kNumSegments;
}

std::array<Vsid, kNumSegments> VsidSpace::SegmentImage(ContextId ctx) const {
  std::array<Vsid, kNumSegments> image;
  for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
    image[seg] = UserVsid(ctx, seg);
  }
  for (uint32_t seg = kFirstKernelSegment; seg < kNumSegments; ++seg) {
    image[seg] = KernelVsid(seg);
  }
  return image;
}

bool VsidSpace::IsLive(Vsid vsid) const {
  if (IsKernelVsid(vsid)) {
    return true;
  }
  return live_vsids_.contains(vsid.value);
}

}  // namespace ppcmm
