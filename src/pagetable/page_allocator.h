// Physical page-frame allocator.
//
// Manages the frames above the kernel's static footprint with a LIFO free list and per-frame
// reference counts (needed for copy-on-write sharing after fork). Zero-filling policy — the
// subject of §9 of the paper — deliberately does NOT live here: get_free_page() semantics,
// including the idle task's pre-zeroed list, are kernel policy (src/kernel/mem_manager).

#ifndef PPCMM_SRC_PAGETABLE_PAGE_ALLOCATOR_H_
#define PPCMM_SRC_PAGETABLE_PAGE_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace ppcmm {

// Allocates physical page frames in [first_frame, first_frame + num_frames).
class PageAllocator {
 public:
  PageAllocator(uint32_t first_frame, uint32_t num_frames);

  // Allocates one frame with refcount 1, or nullopt when memory is exhausted.
  std::optional<uint32_t> Alloc();

  // Adds a reference to an allocated frame (copy-on-write sharing).
  void AddRef(uint32_t frame);

  // Drops one reference; frees the frame when the count reaches zero. Returns true if the
  // frame was freed by this call.
  bool DecRef(uint32_t frame);

  uint32_t RefCount(uint32_t frame) const;
  bool IsAllocated(uint32_t frame) const { return RefCount(frame) > 0; }

  uint32_t FreeCount() const { return static_cast<uint32_t>(free_list_.size()); }
  uint32_t TotalCount() const { return num_frames_; }
  uint32_t AllocatedCount() const { return num_frames_ - FreeCount(); }
  uint32_t first_frame() const { return first_frame_; }

 private:
  bool InRange(uint32_t frame) const {
    return frame >= first_frame_ && frame < first_frame_ + num_frames_;
  }

  uint32_t first_frame_;
  uint32_t num_frames_;
  std::vector<uint32_t> free_list_;  // LIFO: reuse hot frames first
  std::vector<uint32_t> refcount_;   // indexed by frame - first_frame
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_PAGETABLE_PAGE_ALLOCATOR_H_
