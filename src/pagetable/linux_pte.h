// The Linux-side PTE: the entries of the machine-independent two-level page table tree.
//
// The paper is explicit that Linux's x86-shaped PGD/PTE tree remains the authoritative
// source of translations on PPC — the hashed page table is merely "a cache for the two
// level page table tree" (§8). Entries are encoded into 32-bit words stored in simulated
// physical memory so that every walk is a real, cache-charged load.

#ifndef PPCMM_SRC_PAGETABLE_LINUX_PTE_H_
#define PPCMM_SRC_PAGETABLE_LINUX_PTE_H_

#include <cstdint>

namespace ppcmm {

// Decoded leaf entry of the two-level tree.
struct LinuxPte {
  bool present = false;
  bool writable = false;
  bool user = false;
  bool accessed = false;
  bool dirty = false;
  bool cache_inhibited = false;
  bool cow = false;  // write-protected only because the frame is shared post-fork
  uint32_t frame = 0;  // 20-bit physical page number

  static constexpr uint32_t kPresentBit = 1u << 0;
  static constexpr uint32_t kWritableBit = 1u << 1;
  static constexpr uint32_t kUserBit = 1u << 2;
  static constexpr uint32_t kAccessedBit = 1u << 3;
  static constexpr uint32_t kDirtyBit = 1u << 4;
  static constexpr uint32_t kCacheInhibitedBit = 1u << 5;
  static constexpr uint32_t kCowBit = 1u << 6;

  uint32_t Encode() const {
    uint32_t word = frame << 12;
    if (present) word |= kPresentBit;
    if (writable) word |= kWritableBit;
    if (user) word |= kUserBit;
    if (accessed) word |= kAccessedBit;
    if (dirty) word |= kDirtyBit;
    if (cache_inhibited) word |= kCacheInhibitedBit;
    if (cow) word |= kCowBit;
    return word;
  }

  static LinuxPte Decode(uint32_t word) {
    LinuxPte pte;
    pte.present = (word & kPresentBit) != 0;
    pte.writable = (word & kWritableBit) != 0;
    pte.user = (word & kUserBit) != 0;
    pte.accessed = (word & kAccessedBit) != 0;
    pte.dirty = (word & kDirtyBit) != 0;
    pte.cache_inhibited = (word & kCacheInhibitedBit) != 0;
    pte.cow = (word & kCowBit) != 0;
    pte.frame = word >> 12;
    return pte;
  }

  friend bool operator==(const LinuxPte& a, const LinuxPte& b) {
    return a.Encode() == b.Encode();
  }
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_PAGETABLE_LINUX_PTE_H_
