// The Linux two-level page table (PGD → PTE page → frame).
//
// Layout mirrors the classic 32-bit scheme: the PGD is one 4 KB frame of 1024 word-sized
// entries, each pointing at a PTE page that maps 4 MB (1024 × 4 KB). A lookup is therefore
// at most two loads here plus one load of the PGD pointer in the task structure — the
// "three loads in the worst case" of §6.1. Directory frames live in simulated physical
// memory, so walks hit the data cache exactly like the real handler's loads did.

#ifndef PPCMM_SRC_PAGETABLE_PAGE_TABLE_H_
#define PPCMM_SRC_PAGETABLE_PAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "src/sim/addr.h"
#include "src/sim/mem_charge.h"
#include "src/pagetable/linux_pte.h"
#include "src/pagetable/page_allocator.h"
#include "src/sim/memory.h"

namespace ppcmm {

inline constexpr uint32_t kPgdEntries = 1024;
inline constexpr uint32_t kPteEntriesPerPage = 1024;
inline constexpr uint32_t kPgdShift = 22;

// One address space's two-level tree.
class PageTable {
 public:
  // Allocates the PGD frame from `allocator`; directory storage lives in `memory`.
  PageTable(PageAllocator& allocator, PhysicalMemory& memory);
  // Releases the PGD and all PTE pages (leaf frames are the owner's responsibility).
  ~PageTable();

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Walks the tree for `ea`, charging one load per level touched. Returns the decoded leaf
  // entry (present or not) or nullopt when no PTE page exists for the region.
  std::optional<LinuxPte> Lookup(EffAddr ea, MemCharger& charger) const;

  // Uncharged lookup for kernel bookkeeping and tests.
  std::optional<LinuxPte> LookupQuiet(EffAddr ea) const;

  // Installs (or replaces) the leaf entry for `ea`, allocating the PTE page on demand.
  // Charges the directory stores through `charger` when provided.
  void Map(EffAddr ea, const LinuxPte& pte, MemCharger* charger = nullptr);

  // Clears the leaf entry; returns the previous entry if it was present.
  std::optional<LinuxPte> Unmap(EffAddr ea, MemCharger* charger = nullptr);

  // Rewrites the leaf entry for `ea` through `update`; the entry must exist and be present.
  void Update(EffAddr ea, const std::function<void(LinuxPte&)>& update,
              MemCharger* charger = nullptr);

  // Invokes `fn` for every present leaf entry (functional iteration; nothing is charged).
  void ForEachPresent(const std::function<void(EffAddr, const LinuxPte&)>& fn) const;

  // Number of present leaf entries.
  uint32_t PresentCount() const;

  uint32_t pgd_frame() const { return pgd_frame_; }

 private:
  static uint32_t PgdIndex(EffAddr ea) { return ea.value >> kPgdShift; }
  static uint32_t PteIndex(EffAddr ea) { return (ea.value >> kPageShift) & (kPteEntriesPerPage - 1); }
  PhysAddr PgdEntryAddr(uint32_t index) const {
    return PhysAddr::FromFrame(pgd_frame_, index * 4);
  }
  static PhysAddr PteEntryAddr(uint32_t pte_frame, uint32_t index) {
    return PhysAddr::FromFrame(pte_frame, index * 4);
  }
  // Reads the PGD entry; returns the PTE-page frame or nullopt if absent.
  std::optional<uint32_t> PtePageFrame(uint32_t pgd_index) const;

  PageAllocator& allocator_;
  PhysicalMemory& memory_;
  uint32_t pgd_frame_ = 0;
  uint32_t present_count_ = 0;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_PAGETABLE_PAGE_TABLE_H_
