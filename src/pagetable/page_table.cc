#include "src/pagetable/page_table.h"

#include "src/sim/check.h"

namespace ppcmm {

namespace {

// PGD entries: PTE-page frame in the high 20 bits, present in bit 0.
constexpr uint32_t kPgdPresentBit = 1u << 0;

}  // namespace

PageTable::PageTable(PageAllocator& allocator, PhysicalMemory& memory)
    : allocator_(allocator), memory_(memory) {
  const std::optional<uint32_t> frame = allocator_.Alloc();
  if (!frame.has_value()) {
    throw OutOfMemoryError("out of memory allocating a PGD frame");
  }
  pgd_frame_ = *frame;
  memory_.ZeroFrame(pgd_frame_);
}

PageTable::~PageTable() {
  for (uint32_t i = 0; i < kPgdEntries; ++i) {
    const std::optional<uint32_t> pte_frame = PtePageFrame(i);
    if (pte_frame.has_value()) {
      allocator_.DecRef(*pte_frame);
    }
  }
  allocator_.DecRef(pgd_frame_);
}

std::optional<uint32_t> PageTable::PtePageFrame(uint32_t pgd_index) const {
  const uint32_t word = memory_.Read32(PgdEntryAddr(pgd_index));
  if ((word & kPgdPresentBit) == 0) {
    return std::nullopt;
  }
  return word >> 12;
}

std::optional<LinuxPte> PageTable::Lookup(EffAddr ea, MemCharger& charger) const {
  charger.Charge(PgdEntryAddr(PgdIndex(ea)), /*is_write=*/false);
  const std::optional<uint32_t> pte_frame = PtePageFrame(PgdIndex(ea));
  if (!pte_frame.has_value()) {
    return std::nullopt;
  }
  const PhysAddr slot = PteEntryAddr(*pte_frame, PteIndex(ea));
  charger.Charge(slot, /*is_write=*/false);
  return LinuxPte::Decode(memory_.Read32(slot));
}

std::optional<LinuxPte> PageTable::LookupQuiet(EffAddr ea) const {
  NullMemCharger null_charger;
  return Lookup(ea, null_charger);
}

void PageTable::Map(EffAddr ea, const LinuxPte& pte, MemCharger* charger) {
  PPCMM_CHECK_MSG(pte.present, "Map requires a present PTE; use Unmap to clear");
  std::optional<uint32_t> pte_frame = PtePageFrame(PgdIndex(ea));
  if (!pte_frame.has_value()) {
    const std::optional<uint32_t> fresh = allocator_.Alloc();
    if (!fresh.has_value()) {
      throw OutOfMemoryError("out of memory allocating a PTE page");
    }
    memory_.ZeroFrame(*fresh);
    memory_.Write32(PgdEntryAddr(PgdIndex(ea)), (*fresh << 12) | kPgdPresentBit);
    if (charger != nullptr) {
      charger->Charge(PgdEntryAddr(PgdIndex(ea)), /*is_write=*/true);
    }
    pte_frame = fresh;
  }
  const PhysAddr slot = PteEntryAddr(*pte_frame, PteIndex(ea));
  const LinuxPte old = LinuxPte::Decode(memory_.Read32(slot));
  if (!old.present) {
    ++present_count_;
  }
  memory_.Write32(slot, pte.Encode());
  if (charger != nullptr) {
    charger->Charge(slot, /*is_write=*/true);
  }
}

std::optional<LinuxPte> PageTable::Unmap(EffAddr ea, MemCharger* charger) {
  const std::optional<uint32_t> pte_frame = PtePageFrame(PgdIndex(ea));
  if (!pte_frame.has_value()) {
    return std::nullopt;
  }
  const PhysAddr slot = PteEntryAddr(*pte_frame, PteIndex(ea));
  const LinuxPte old = LinuxPte::Decode(memory_.Read32(slot));
  if (!old.present) {
    return std::nullopt;
  }
  memory_.Write32(slot, 0);
  if (charger != nullptr) {
    charger->Charge(slot, /*is_write=*/true);
  }
  --present_count_;
  return old;
}

void PageTable::Update(EffAddr ea, const std::function<void(LinuxPte&)>& update,
                       MemCharger* charger) {
  const std::optional<uint32_t> pte_frame = PtePageFrame(PgdIndex(ea));
  PPCMM_CHECK_MSG(pte_frame.has_value(), "Update on unmapped region 0x" << std::hex << ea.value);
  const PhysAddr slot = PteEntryAddr(*pte_frame, PteIndex(ea));
  LinuxPte pte = LinuxPte::Decode(memory_.Read32(slot));
  PPCMM_CHECK_MSG(pte.present, "Update on non-present PTE at 0x" << std::hex << ea.value);
  update(pte);
  PPCMM_CHECK_MSG(pte.present, "Update must not clear the present bit; use Unmap");
  memory_.Write32(slot, pte.Encode());
  if (charger != nullptr) {
    charger->Charge(slot, /*is_write=*/true);
  }
}

void PageTable::ForEachPresent(const std::function<void(EffAddr, const LinuxPte&)>& fn) const {
  for (uint32_t g = 0; g < kPgdEntries; ++g) {
    const std::optional<uint32_t> pte_frame = PtePageFrame(g);
    if (!pte_frame.has_value()) {
      continue;
    }
    for (uint32_t i = 0; i < kPteEntriesPerPage; ++i) {
      const LinuxPte pte = LinuxPte::Decode(memory_.Read32(PteEntryAddr(*pte_frame, i)));
      if (pte.present) {
        fn(EffAddr((g << kPgdShift) | (i << kPageShift)), pte);
      }
    }
  }
}

uint32_t PageTable::PresentCount() const { return present_count_; }

}  // namespace ppcmm
