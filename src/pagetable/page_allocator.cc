#include "src/pagetable/page_allocator.h"

#include "src/sim/check.h"

namespace ppcmm {

PageAllocator::PageAllocator(uint32_t first_frame, uint32_t num_frames)
    : first_frame_(first_frame), num_frames_(num_frames), refcount_(num_frames, 0) {
  PPCMM_CHECK(num_frames > 0);
  free_list_.reserve(num_frames);
  // Push in reverse so the lowest frames are handed out first.
  for (uint32_t i = 0; i < num_frames; ++i) {
    free_list_.push_back(first_frame + num_frames - 1 - i);
  }
}

std::optional<uint32_t> PageAllocator::Alloc() {
  if (free_list_.empty()) {
    return std::nullopt;
  }
  const uint32_t frame = free_list_.back();
  free_list_.pop_back();
  PPCMM_CHECK_MSG(refcount_[frame - first_frame_] == 0, "frame on free list had references");
  refcount_[frame - first_frame_] = 1;
  return frame;
}

void PageAllocator::AddRef(uint32_t frame) {
  PPCMM_CHECK_MSG(InRange(frame), "AddRef on out-of-range frame " << frame);
  PPCMM_CHECK_MSG(refcount_[frame - first_frame_] > 0, "AddRef on unallocated frame " << frame);
  ++refcount_[frame - first_frame_];
}

bool PageAllocator::DecRef(uint32_t frame) {
  PPCMM_CHECK_MSG(InRange(frame), "DecRef on out-of-range frame " << frame);
  uint32_t& count = refcount_[frame - first_frame_];
  PPCMM_CHECK_MSG(count > 0, "DecRef on unallocated frame " << frame << " (double free?)");
  if (--count == 0) {
    free_list_.push_back(frame);
    return true;
  }
  return false;
}

uint32_t PageAllocator::RefCount(uint32_t frame) const {
  PPCMM_CHECK_MSG(InRange(frame), "RefCount on out-of-range frame " << frame);
  return refcount_[frame - first_frame_];
}

}  // namespace ppcmm
