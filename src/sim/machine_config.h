// Machine configuration: CPU model, clock, cache geometry, TLB sizes, memory system timing,
// and the interrupt/walk cost constants measured by the paper (§5).
//
// Two CPU families are modelled, matching the paper's testbed:
//   PowerPC 603 — software-reloaded TLB: a TLB miss raises an interrupt (32 cycles to invoke
//                 and return, per §5) and software refills the TLB.
//   PowerPC 604 — hardware-walked hashed page table: a TLB miss triggers a hardware HTAB
//                 search (up to ~120 cycles / 16 memory accesses, per §5); only a miss in
//                 the HTAB raises an interrupt (≥91 cycles, per §5).

#ifndef PPCMM_SRC_SIM_MACHINE_CONFIG_H_
#define PPCMM_SRC_SIM_MACHINE_CONFIG_H_

#include <cstdint>
#include <string>

namespace ppcmm {

// Which PowerPC implementation the machine models.
enum class CpuModel {
  kPpc603,  // software TLB reload
  kPpc604,  // hardware hash-table walk
};

// How TLB misses are serviced. The 603 always uses software; "the 604" in the paper's sense
// (which includes the 601 and 750) always uses the hardware HTAB walk.
enum class TlbReloadMechanism {
  kSoftware,         // interrupt to a software handler on every TLB miss (603)
  kHardwareHtabWalk,  // hardware searches the HTAB; interrupt only on HTAB miss (604)
};

// Geometry of one level-1 cache.
struct CacheGeometry {
  uint32_t size_bytes = 0;
  uint32_t line_bytes = 32;
  uint32_t associativity = 4;

  uint32_t NumLines() const { return size_bytes / line_bytes; }
  uint32_t NumSets() const { return NumLines() / associativity; }
};

// Main-memory timing. The paper notes board quality mattered (the 200 MHz 604 machine had
// "significantly faster main memory and a better board design", §6.2).
struct MemoryTiming {
  uint32_t line_fill_cycles = 28;    // cycles to fill one cache line from DRAM
  uint32_t single_beat_cycles = 12;  // cycles for one cache-inhibited (uncached) access
  uint32_t writeback_cycles = 10;    // extra cycles to write back a dirty victim line
};

// Full machine description.
struct MachineConfig {
  std::string name;
  CpuModel cpu = CpuModel::kPpc604;
  TlbReloadMechanism reload = TlbReloadMechanism::kHardwareHtabWalk;
  uint32_t clock_mhz = 185;

  CacheGeometry icache;
  CacheGeometry dcache;

  // Optional board-level unified L2 (PowerMac-class boards shipped 256K-1M lookaside
  // caches). Disabled in the calibrated standard profiles; Ppc604WithL2() enables it for
  // the board-quality exploration.
  bool has_l2 = false;
  CacheGeometry l2;
  uint32_t l2_hit_cycles = 12;

  uint32_t itlb_entries = 128;
  uint32_t dtlb_entries = 128;
  uint32_t tlb_associativity = 2;  // both 603 and 604 TLBs are 2-way set associative

  // SMP: number of simulated CPUs. Each CPU gets its own split I/D TLBs, segment
  // registers, and L1 caches; physical memory, the HTAB, the BATs, and the optional L2
  // are shared. 1 (the default) is bit-identical to the original uniprocessor model.
  uint32_t ncpus = 1;

  // Inter-processor-interrupt costs for TLB shootdown (the smp_call_function idiom):
  // cycles the requesting CPU spends raising the IPI and the remote CPU spends taking
  // the interrupt before it runs the flush itself.
  uint32_t ipi_send_cycles = 64;
  uint32_t ipi_receive_cycles = 128;

  MemoryTiming memory;
  uint64_t ram_bytes = 32ull * 1024 * 1024;  // the paper fixes 32 MB in every machine (§4)

  // Hashed page table geometry: 2048 PTEGs × 8 PTEs = 16384 entries (§7).
  uint32_t htab_ptegs = 2048;

  // Cost constants, in cycles, from §5 of the paper.
  uint32_t tlb_miss_interrupt_cycles = 32;   // 603: invoke + return from the miss handler
  uint32_t hash_miss_interrupt_cycles = 91;  // 604: invoke the software hash-miss handler
  uint32_t hw_walk_base_cycles = 24;         // 604: hardware walk overhead beyond memory refs

  // Named machine profiles used throughout the paper's tables.
  static MachineConfig Ppc603(uint32_t mhz);
  static MachineConfig Ppc604(uint32_t mhz);
  // The 200 MHz 604 box from Table 1: faster main memory and better board design.
  static MachineConfig Ppc604FastBoard(uint32_t mhz);
  // A 604 board with a 512 KB unified lookaside L2.
  static MachineConfig Ppc604WithL2(uint32_t mhz, uint32_t l2_kb = 512);

  uint32_t PageSizeBytes() const { return 4096; }
  uint64_t NumPageFrames() const { return ram_bytes / PageSizeBytes(); }
  uint32_t HtabEntries() const { return htab_ptegs * 8; }
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_MACHINE_CONFIG_H_
