// Strong types for simulated time.
//
// All costs inside the simulator are expressed in CPU cycles; conversion to wall-clock time
// happens only at reporting time, through the machine's clock rate. Keeping Cycles a distinct
// type prevents the classic unit bug of mixing cycle counts with byte counts or entry counts.

#ifndef PPCMM_SRC_SIM_CYCLE_TYPES_H_
#define PPCMM_SRC_SIM_CYCLE_TYPES_H_

#include <compare>
#include <cstdint>

namespace ppcmm {

// A count of CPU clock cycles.
struct Cycles {
  uint64_t value = 0;

  constexpr Cycles() = default;
  constexpr explicit Cycles(uint64_t v) : value(v) {}

  constexpr auto operator<=>(const Cycles&) const = default;

  constexpr Cycles& operator+=(Cycles other) {
    value += other.value;
    return *this;
  }
  constexpr Cycles& operator-=(Cycles other) {
    value -= other.value;
    return *this;
  }
  friend constexpr Cycles operator+(Cycles a, Cycles b) { return Cycles(a.value + b.value); }
  friend constexpr Cycles operator-(Cycles a, Cycles b) { return Cycles(a.value - b.value); }
  friend constexpr Cycles operator*(Cycles a, uint64_t k) { return Cycles(a.value * k); }
  friend constexpr Cycles operator*(uint64_t k, Cycles a) { return Cycles(a.value * k); }
};

// Converts a cycle count at a given clock rate to microseconds.
constexpr double CyclesToMicros(Cycles c, uint32_t clock_mhz) {
  return static_cast<double>(c.value) / static_cast<double>(clock_mhz);
}

// Converts a cycle count at a given clock rate to seconds.
constexpr double CyclesToSeconds(Cycles c, uint32_t clock_mhz) {
  return CyclesToMicros(c, clock_mhz) / 1e6;
}

// Converts microseconds at a given clock rate back to cycles (rounding down).
constexpr Cycles MicrosToCycles(double micros, uint32_t clock_mhz) {
  return Cycles(static_cast<uint64_t>(micros * static_cast<double>(clock_mhz)));
}

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_CYCLE_TYPES_H_
