#include "src/sim/sweep_runner.h"

#include <cstdlib>

namespace ppcmm {

unsigned SweepRunner::DefaultShards() {
  if (const char* env = std::getenv("PPCMM_SWEEP_SHARDS"); env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return static_cast<unsigned>(parsed);
    }
  }
  return 1;
}

unsigned SweepRunner::DefaultThreads() {
  if (const char* env = std::getenv("PPCMM_SWEEP_THREADS"); env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return static_cast<unsigned>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

}  // namespace ppcmm
