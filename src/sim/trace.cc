#include "src/sim/trace.h"

#include <algorithm>
#include <sstream>

#include "src/sim/check.h"

namespace ppcmm {

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kTlbMiss:
      return "tlb_miss";
    case TraceEvent::kHtabMiss:
      return "htab_miss";
    case TraceEvent::kPageFault:
      return "page_fault";
    case TraceEvent::kCowFault:
      return "cow_fault";
    case TraceEvent::kContextSwitch:
      return "context_switch";
    case TraceEvent::kFlushPage:
      return "flush_page";
    case TraceEvent::kFlushContext:
      return "flush_context";
    case TraceEvent::kZombieReclaim:
      return "zombie_reclaim";
    case TraceEvent::kSyscall:
      return "syscall";
    case TraceEvent::kIdleSlice:
      return "idle_slice";
    case TraceEvent::kDirtyBitUpdate:
      return "dirty_bit_update";
    case TraceEvent::kFaultInjected:
      return "fault_injected";
    case TraceEvent::kOomRollback:
      return "oom_rollback";
    case TraceEvent::kVsidEpochRollover:
      return "vsid_epoch_rollover";
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(uint32_t capacity) : ring_(capacity) {
  PPCMM_CHECK(capacity > 0);
}

void TraceBuffer::Record(uint64_t cycle, TraceEvent event, uint32_t a, uint32_t b) {
  if (!enabled_) {
    return;
  }
  ring_[next_] =
      TraceRecord{.cycle = cycle, .event = event, .a = a, .b = b, .task = current_task_};
  next_ = (next_ + 1) % static_cast<uint32_t>(ring_.size());
  ++total_;
  ++counts_[static_cast<uint8_t>(event) & 0xF];
}

std::vector<TraceRecord> TraceBuffer::Records() const {
  std::vector<TraceRecord> out;
  const uint64_t kept = std::min<uint64_t>(total_, ring_.size());
  out.reserve(kept);
  // Oldest retained record sits at next_ when the ring has wrapped, at 0 otherwise.
  const uint32_t start = total_ > ring_.size() ? next_ : 0;
  for (uint64_t i = 0; i < kept; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceBuffer::CountOf(TraceEvent event) const {
  return counts_[static_cast<uint8_t>(event) & 0xF];
}

std::string TraceBuffer::Dump(uint32_t max_lines) const {
  const std::vector<TraceRecord> records = Records();
  std::ostringstream oss;
  const size_t start = records.size() > max_lines ? records.size() - max_lines : 0;
  for (size_t i = start; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    oss << r.cycle << "  " << TraceEventName(r.event) << "  a=0x" << std::hex << r.a
        << " b=0x" << r.b << std::dec << "  [task " << r.task << "]\n";
  }
  return oss.str();
}

void TraceBuffer::Clear() {
  next_ = 0;
  total_ = 0;
  counts_.fill(0);
  for (TraceRecord& r : ring_) {
    r = TraceRecord{};
  }
}

}  // namespace ppcmm
