// Deterministic, seed-driven fault injection for the MMU simulator.
//
// Each brittle site in the kernel/MMU registers itself by polling the injector with a fault
// class; the injector decides — from a per-class SplitMix64 stream, so runs replay exactly
// from a seed — whether the fault fires at this poll. Sites interpret "fire" themselves:
//
//   kPageAllocExhaustion  MemManager::TryGetFreePage pretends the pool is empty (skips the
//                         prezeroed list and reclaim) and reports out-of-memory.
//   kHtabEvictionStorm    Mmu::SoftwareRefill invalidates both candidate PTEGs before
//                         inserting, forcing live-entry evictions en masse.
//   kSpuriousTlbFlush     Mmu::Access drops the whole TLB (or one page) before translating,
//                         as if an unrelated CPU had broadcast tlbie/tlbia.
//   kVsidWrap             VsidSpace::NewContext jumps the context counter to the end of the
//                         24-bit VSID space, forcing an epoch rollover immediately.
//   kZombieFlood          Kernel::SwitchTo retires a throwaway context and seeds the HTAB
//                         with a burst of zombie PTEs for it.
//
// The injector is passive: a site that is never polled never fires, and a null injector
// pointer (the default everywhere) costs one branch. Tests target one class at a time with
// Enable(cls, one_in) for a steady rate or ArmOnce(cls, after) for a single precise shot.

#ifndef PPCMM_SRC_SIM_FAULT_INJECTOR_H_
#define PPCMM_SRC_SIM_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <utility>

#include "src/sim/rng.h"

namespace ppcmm {

enum class FaultClass : uint32_t {
  kPageAllocExhaustion = 0,
  kHtabEvictionStorm,
  kSpuriousTlbFlush,
  kVsidWrap,
  kZombieFlood,
};

inline constexpr uint32_t kNumFaultClasses = 5;

inline const char* FaultClassName(FaultClass cls) {
  switch (cls) {
    case FaultClass::kPageAllocExhaustion:
      return "page-alloc-exhaustion";
    case FaultClass::kHtabEvictionStorm:
      return "htab-eviction-storm";
    case FaultClass::kSpuriousTlbFlush:
      return "spurious-tlb-flush";
    case FaultClass::kVsidWrap:
      return "vsid-wrap";
    case FaultClass::kZombieFlood:
      return "zombie-flood";
  }
  return "unknown";
}

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) {
    for (uint32_t i = 0; i < kNumFaultClasses; ++i) {
      // Distinct stream per class so enabling one class never perturbs another's schedule.
      sites_[i].rng = Rng(seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
    }
  }

  // Fires roughly once per `one_in` polls (never when one_in == 0).
  void Enable(FaultClass cls, uint32_t one_in) {
    Site& s = site(cls);
    s.one_in = one_in;
    s.armed_countdown = -1;
  }

  void Disable(FaultClass cls) {
    Site& s = site(cls);
    s.one_in = 0;
    s.armed_countdown = -1;
  }

  // Fires exactly once, on the (after_polls + 1)-th poll from now.
  void ArmOnce(FaultClass cls, uint32_t after_polls = 0) {
    site(cls).armed_countdown = static_cast<int64_t>(after_polls);
  }

  // Observes every fire with (class, fires-of-that-class-so-far). The kernel installs one
  // to record kFaultInjected trace events; pass nullptr (default) to clear. The observer
  // must not poll the injector (it would recurse).
  void SetFireObserver(std::function<void(FaultClass, uint64_t)> observer) {
    fire_observer_ = std::move(observer);
  }

  // Called by an injection site. Returns true when the fault should fire now.
  bool ShouldFire(FaultClass cls) {
    Site& s = site(cls);
    ++s.polls;
    bool fire = false;
    if (s.armed_countdown >= 0) {
      fire = s.armed_countdown == 0;
      --s.armed_countdown;
    } else if (s.one_in > 0) {
      fire = s.rng.Chance(1, s.one_in);
    }
    if (fire) {
      ++s.fires;
      if (fire_observer_) {
        fire_observer_(cls, s.fires);
      }
    }
    return fire;
  }

  uint64_t Polls(FaultClass cls) const { return site(cls).polls; }
  uint64_t Fires(FaultClass cls) const { return site(cls).fires; }

  uint64_t TotalFires() const {
    uint64_t total = 0;
    for (const Site& s : sites_) {
      total += s.fires;
    }
    return total;
  }

 private:
  struct Site {
    Rng rng{0};
    uint32_t one_in = 0;          // steady-state rate; 0 = off
    int64_t armed_countdown = -1;  // >= 0: fire when it hits 0; overrides one_in
    uint64_t polls = 0;
    uint64_t fires = 0;
  };

  Site& site(FaultClass cls) { return sites_[static_cast<uint32_t>(cls)]; }
  const Site& site(FaultClass cls) const { return sites_[static_cast<uint32_t>(cls)]; }

  std::array<Site, kNumFaultClasses> sites_;
  std::function<void(FaultClass, uint64_t)> fire_observer_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_FAULT_INJECTOR_H_
