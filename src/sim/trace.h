// Lightweight event tracing: a fixed-size ring buffer of timestamped MMU/kernel events.
//
// Plays the role of the instrumentation the authors bolted onto their kernel while chasing
// these optimizations ("having a repeatable set of benchmarks was an invaluable aid in
// overcoming intuitions", §1 — and so is seeing the event stream). Disabled by default;
// recording is a couple of stores when enabled. Each record carries the task that was
// current when it fired, so exporters can attribute events per task (Perfetto tracks).

#ifndef PPCMM_SRC_SIM_TRACE_H_
#define PPCMM_SRC_SIM_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ppcmm {

// Event kinds, kept coarse on purpose: the trace answers "what happened around cycle X",
// not "every memory reference".
enum class TraceEvent : uint8_t {
  kTlbMiss,            // a = effective page number, b = 1 for instruction side
  kHtabMiss,           // a = effective page number
  kPageFault,          // a = effective page number
  kCowFault,           // a = effective page number
  kContextSwitch,      // a = previous task id, b = next task id
  kFlushPage,          // a = effective page number
  kFlushContext,       // a = retired context, b = fresh context
  kZombieReclaim,      // a = entries reclaimed in this idle pass
  kSyscall,            // a = kernel-op discriminator
  kIdleSlice,          // a = budget in cycles (truncated)
  kDirtyBitUpdate,     // a = effective page number
  kFaultInjected,      // a = FaultClass, b = total fires of that class so far
  kOomRollback,        // a = kernel-op discriminator of the aborted operation
  kVsidEpochRollover,  // a = new epoch count (truncated)
};

// Number of distinct TraceEvent values. Must track the enum above (the last event + 1);
// the counts_ ring index mask in TraceBuffer asserts against it.
inline constexpr uint32_t kNumTraceEvents =
    static_cast<uint32_t>(TraceEvent::kVsidEpochRollover) + 1;

const char* TraceEventName(TraceEvent event);

// One record.
struct TraceRecord {
  uint64_t cycle = 0;
  TraceEvent event = TraceEvent::kTlbMiss;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t task = 0;  // task current at record time (0 = none/kernel bring-up)
};

// The ring buffer.
class TraceBuffer {
 public:
  explicit TraceBuffer(uint32_t capacity = 4096);

  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Sets the task id stamped onto subsequent records. Cheap enough to call unconditionally
  // from the context-switch path (a single store, even when tracing is disabled, so the
  // attribution is correct the moment tracing turns on).
  void SetCurrentTask(uint32_t task) { current_task_ = task; }
  uint32_t current_task() const { return current_task_; }

  // Records an event (no-op when disabled).
  void Record(uint64_t cycle, TraceEvent event, uint32_t a = 0, uint32_t b = 0);

  // The retained records, oldest first (at most `capacity` of the most recent).
  std::vector<TraceRecord> Records() const;
  // Events recorded since construction/Clear, including ones the ring has dropped.
  uint64_t TotalRecorded() const { return total_; }
  uint64_t CountOf(TraceEvent event) const;

  // Renders the retained records, one per line: "cycle  event  a b [task]".
  std::string Dump(uint32_t max_lines = 64) const;

  void Clear();

 private:
  std::vector<TraceRecord> ring_;
  uint32_t next_ = 0;
  uint64_t total_ = 0;
  bool enabled_ = false;
  uint32_t current_task_ = 0;
  std::array<uint64_t, 16> counts_{};
  static_assert(kNumTraceEvents <= 16, "grow counts_ and its index mask");
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_TRACE_H_
