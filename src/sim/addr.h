// Effective and virtual address types for the 32-bit PowerPC translation path (Figure 1 of
// the paper):
//
//   32-bit effective address = [ 4-bit segment # | 16-bit page index | 12-bit byte offset ]
//   52-bit virtual address   = [ 24-bit VSID     | 16-bit page index | 12-bit byte offset ]
//
// The 4 high-order EA bits select one of 16 segment registers; the register supplies the
// 24-bit virtual segment identifier (VSID) that replaces them, yielding the 52-bit virtual
// address that the TLB and hashed page table are keyed by.

#ifndef PPCMM_SRC_SIM_ADDR_H_
#define PPCMM_SRC_SIM_ADDR_H_

#include <compare>
#include <cstdint>

#include "src/sim/phys_addr.h"

namespace ppcmm {

inline constexpr uint32_t kNumSegments = 16;
inline constexpr uint32_t kSegmentShift = 28;
inline constexpr uint32_t kPageIndexBits = 16;
inline constexpr uint32_t kPageIndexMask = (1u << kPageIndexBits) - 1;
inline constexpr uint32_t kVsidBits = 24;
inline constexpr uint32_t kVsidMask = (1u << kVsidBits) - 1;

// The Linux/PPC kernel virtual base: segments 12..15 (0xC0000000 and up) belong to the
// kernel (§5.1 of the paper).
inline constexpr uint32_t kKernelVirtualBase = 0xC0000000u;
inline constexpr uint32_t kFirstKernelSegment = kKernelVirtualBase >> kSegmentShift;  // 12

// A 32-bit effective (program-visible) address.
struct EffAddr {
  uint32_t value = 0;

  constexpr EffAddr() = default;
  constexpr explicit EffAddr(uint32_t v) : value(v) {}

  constexpr auto operator<=>(const EffAddr&) const = default;

  // Index of the segment register selected by the top 4 bits.
  constexpr uint32_t SegmentIndex() const { return value >> kSegmentShift; }
  // 16-bit page index within the segment.
  constexpr uint32_t PageIndex() const { return (value >> kPageShift) & kPageIndexMask; }
  // 20-bit effective page number (segment << 16 | page index).
  constexpr uint32_t EffPageNumber() const { return value >> kPageShift; }
  // 12-bit byte offset within the page.
  constexpr uint32_t PageOffset() const { return value & kPageOffsetMask; }
  // True if the address lies in the kernel's reserved region.
  constexpr bool IsKernel() const { return value >= kKernelVirtualBase; }

  static constexpr EffAddr FromPage(uint32_t eff_page_number, uint32_t offset = 0) {
    return EffAddr((eff_page_number << kPageShift) | (offset & kPageOffsetMask));
  }

  friend constexpr EffAddr operator+(EffAddr a, uint32_t delta) {
    return EffAddr(a.value + delta);
  }
};

// A 24-bit virtual segment identifier.
struct Vsid {
  uint32_t value = 0;

  constexpr Vsid() = default;
  constexpr explicit Vsid(uint32_t v) : value(v & kVsidMask) {}

  constexpr auto operator<=>(const Vsid&) const = default;
};

// A virtual page: the (VSID, page-index) pair that uniquely names one page in the 52-bit
// virtual space. This is the lookup key for both the TLB and the hashed page table.
struct VirtPage {
  Vsid vsid;
  uint32_t page_index = 0;  // 16 bits

  constexpr auto operator<=>(const VirtPage&) const = default;
};

// The kind of memory reference being translated.
enum class AccessKind {
  kInstructionFetch,
  kLoad,
  kStore,
};

constexpr bool IsWrite(AccessKind kind) { return kind == AccessKind::kStore; }
constexpr bool IsInstruction(AccessKind kind) { return kind == AccessKind::kInstructionFetch; }

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_ADDR_H_
