#include "src/sim/machine_config.h"

#include <string>

namespace ppcmm {

MachineConfig MachineConfig::Ppc603(uint32_t mhz) {
  MachineConfig mc;
  mc.name = "PPC603 " + std::to_string(mhz) + "MHz";
  mc.cpu = CpuModel::kPpc603;
  mc.reload = TlbReloadMechanism::kSoftware;
  mc.clock_mhz = mhz;
  // 603: 8K+8K split L1, 64+64 entry split TLBs — half the 604's capacity, as the paper
  // notes ("double the size TLB and cache", §11).
  mc.icache = CacheGeometry{.size_bytes = 8 * 1024, .line_bytes = 32, .associativity = 2};
  mc.dcache = CacheGeometry{.size_bytes = 8 * 1024, .line_bytes = 32, .associativity = 2};
  mc.itlb_entries = 64;
  mc.dtlb_entries = 64;
  mc.tlb_associativity = 2;
  mc.memory = MemoryTiming{.line_fill_cycles = 30, .single_beat_cycles = 13,
                           .writeback_cycles = 11};
  mc.tlb_miss_interrupt_cycles = 32;
  mc.hash_miss_interrupt_cycles = 32;  // on the 603 software raises the "emulated" miss path
  mc.hw_walk_base_cycles = 0;          // no hardware walker
  return mc;
}

MachineConfig MachineConfig::Ppc604(uint32_t mhz) {
  MachineConfig mc;
  mc.name = "PPC604 " + std::to_string(mhz) + "MHz";
  mc.cpu = CpuModel::kPpc604;
  mc.reload = TlbReloadMechanism::kHardwareHtabWalk;
  mc.clock_mhz = mhz;
  mc.icache = CacheGeometry{.size_bytes = 16 * 1024, .line_bytes = 32, .associativity = 4};
  mc.dcache = CacheGeometry{.size_bytes = 16 * 1024, .line_bytes = 32, .associativity = 4};
  mc.itlb_entries = 128;
  mc.dtlb_entries = 128;
  mc.tlb_associativity = 2;
  mc.memory = MemoryTiming{.line_fill_cycles = 28, .single_beat_cycles = 12,
                           .writeback_cycles = 10};
  mc.tlb_miss_interrupt_cycles = 91;  // reaching software at all costs the hash-miss entry
  mc.hash_miss_interrupt_cycles = 91;
  mc.hw_walk_base_cycles = 24;
  return mc;
}

MachineConfig MachineConfig::Ppc604WithL2(uint32_t mhz, uint32_t l2_kb) {
  MachineConfig mc = Ppc604(mhz);
  mc.name = "PPC604 " + std::to_string(mhz) + "MHz +" + std::to_string(l2_kb) + "K L2";
  mc.has_l2 = true;
  // Board-level lookaside caches of the era were direct-mapped or 2-way with wide lines.
  mc.l2 = CacheGeometry{.size_bytes = l2_kb * 1024, .line_bytes = 32, .associativity = 1};
  mc.l2_hit_cycles = 12;
  return mc;
}

MachineConfig MachineConfig::Ppc604FastBoard(uint32_t mhz) {
  MachineConfig mc = Ppc604(mhz);
  mc.name = "PPC604 " + std::to_string(mhz) + "MHz (fast board)";
  mc.memory = MemoryTiming{.line_fill_cycles = 22, .single_beat_cycles = 9,
                           .writeback_cycles = 8};
  return mc;
}

}  // namespace ppcmm
