// Set-associative level-1 cache model with LRU replacement, write-back write-allocate
// policy, and support for cache-inhibited (WIMG "I"-bit) accesses.
//
// The cache is physically indexed and physically tagged, as on the 603/604 L1 caches for
// our purposes. Timing: a hit costs 1 cycle; a miss costs the line-fill latency plus a
// write-back penalty when the victim line is dirty; a cache-inhibited access costs the
// single-beat memory latency and never allocates a line — this is exactly the lever the
// paper pulls in §8 (uncached page tables) and §9 (uncached page clearing).

#ifndef PPCMM_SRC_SIM_CACHE_H_
#define PPCMM_SRC_SIM_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/cycle_types.h"
#include "src/sim/machine_config.h"
#include "src/sim/phys_addr.h"

namespace ppcmm {

// Counters maintained by one cache instance.
struct CacheStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;          // valid lines displaced by fills
  uint64_t dirty_writebacks = 0;   // displaced lines that were dirty
  uint64_t uncached_accesses = 0;  // cache-inhibited accesses (never allocate)
  uint64_t prefetches = 0;         // dcbt-style software prefetches issued

  double HitRate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

// Outcome of one line-level access, for callers that compute costs themselves (the machine
// uses this to layer an optional L2 between the L1s and memory).
struct CacheAccessOutcome {
  bool hit = false;
  bool evicted_dirty = false;  // a dirty victim line was displaced (write-back traffic)
};

// One cache (L1 instruction, L1 data, or a unified L2).
class Cache {
 public:
  Cache(std::string name, CacheGeometry geometry, MemoryTiming timing);

  // Performs one cached access to the line containing `pa`. Returns the cycles charged
  // assuming misses fill straight from memory (no L2).
  Cycles Access(PhysAddr pa, bool is_write);

  // Line-level access without timing: updates state, reports what happened. Defined inline:
  // this is the hottest function in the whole simulator (every charged memory reference
  // lands here), and the call would otherwise cross a translation-unit boundary.
  CacheAccessOutcome AccessLine(PhysAddr pa, bool is_write) {
    ++stats_.accesses;
    ++tick_;

    const uint32_t set = SetIndex(pa);
    const uint32_t tag = Tag(pa);
    Line* ways = &lines_[static_cast<size_t>(set) * geometry_.associativity];

    // Hit path.
    for (uint32_t w = 0; w < geometry_.associativity; ++w) {
      Line& line = ways[w];
      if (line.valid && line.tag == tag) {
        ++stats_.hits;
        line.last_used = tick_;
        line.dirty = line.dirty || is_write;
        return CacheAccessOutcome{.hit = true, .evicted_dirty = false};
      }
    }

    // Miss: pick a victim (prefer an invalid way, else LRU).
    ++stats_.misses;
    Line* victim = &ways[0];
    for (uint32_t w = 0; w < geometry_.associativity; ++w) {
      Line& line = ways[w];
      if (!line.valid) {
        victim = &line;
        break;
      }
      if (line.last_used < victim->last_used) {
        victim = &line;
      }
    }

    CacheAccessOutcome outcome{.hit = false, .evicted_dirty = false};
    if (victim->valid) {
      ++stats_.evictions;
      if (victim->dirty) {
        ++stats_.dirty_writebacks;
        outcome.evicted_dirty = true;
      }
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->last_used = tick_;
    return outcome;
  }

  // `n` accesses to the single line containing `pa`, collapsed: bit-identical to calling
  // AccessLine `n` times with same-line addresses. Only the first access can miss (the
  // returned outcome); the remaining n-1 are hits on the line the first one left resident,
  // so they reduce to counter adds and one LRU refresh. Host-fast-path use only
  // (translation-span replay).
  CacheAccessOutcome AccessLineRun(PhysAddr pa, bool is_write, uint32_t n) {
    const CacheAccessOutcome first = AccessLine(pa, is_write);
    if (n > 1) {
      const uint64_t extra = n - 1;
      stats_.accesses += extra;
      stats_.hits += extra;
      tick_ += extra;
      const uint32_t set = SetIndex(pa);
      const uint32_t tag = Tag(pa);
      Line* ways = &lines_[static_cast<size_t>(set) * geometry_.associativity];
      for (uint32_t w = 0; w < geometry_.associativity; ++w) {
        Line& line = ways[w];
        if (line.valid && line.tag == tag) {
          line.last_used = tick_;
          line.dirty = line.dirty || is_write;
          break;
        }
      }
    }
    return first;
  }

  // Performs one cache-inhibited access (the line is neither looked up nor allocated).
  // Inline: the uncached idle-task configurations issue one of these per zeroed word.
  Cycles AccessUncached(bool /*is_write*/) {
    ++stats_.uncached_accesses;
    return Cycles(timing_.single_beat_cycles);
  }

  // `n` cache-inhibited accesses, collapsed: every one costs the same single-beat latency
  // and touches no line state, so the batch is n counter bumps and one multiply.
  Cycles AccessUncachedRun(bool /*is_write*/, uint32_t n) {
    stats_.uncached_accesses += n;
    return Cycles(static_cast<uint64_t>(timing_.single_beat_cycles) * n);
  }

  // dcbt-style software prefetch: starts filling the line containing `pa` if absent. The
  // fill overlaps with subsequent execution, so only the issue cost is charged — the paper's
  // §10.2 "provide hints to the hardware about access patterns".
  Cycles Prefetch(PhysAddr pa);

  // Returns true if the line containing `pa` is currently resident.
  bool Contains(PhysAddr pa) const;

  // Invalidates every line without writing anything back (simulation-level reset).
  void InvalidateAll();

  // Number of currently valid lines (occupancy probe for pollution experiments).
  uint32_t ValidLineCount() const;

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }
  const CacheGeometry& geometry() const { return geometry_; }
  const std::string& name() const { return name_; }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    uint32_t tag = 0;
    uint64_t last_used = 0;
  };

  // Line size and set count are powers of two (checked at construction), so the index and
  // tag divisions reduce to shifts — precomputed once, they keep integer division out of
  // the per-access path while producing bit-identical values.
  uint32_t SetIndex(PhysAddr pa) const { return (pa.value >> line_shift_) & set_mask_; }
  uint32_t Tag(PhysAddr pa) const { return pa.value >> tag_shift_; }

  std::string name_;
  CacheGeometry geometry_;
  MemoryTiming timing_;
  uint32_t line_shift_ = 0;  // log2(line_bytes)
  uint32_t set_mask_ = 0;    // NumSets() - 1
  uint32_t tag_shift_ = 0;   // log2(line_bytes * NumSets())
  std::vector<Line> lines_;  // sets * ways, row-major by set
  uint64_t tick_ = 0;        // LRU clock
  CacheStats stats_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_CACHE_H_
