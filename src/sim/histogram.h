// Log2-bucket latency histograms for hot-path cycle measurements.
//
// The paper's methodology is distribution-driven: the authors tuned the VSID scatter
// constant against a hash-miss histogram (§5.2) and reasoned about tail costs (the 3 ms
// mmap flushes of §7) that averages hide. Recording a sample here is O(1) — a bit-width
// computation and three stores — so the hot paths (TLB reload, page fault, flush) can feed
// one on every event without perturbing the simulation's cycle accounting.

#ifndef PPCMM_SRC_SIM_HISTOGRAM_H_
#define PPCMM_SRC_SIM_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cstdint>
#include <string>

namespace ppcmm {

// A histogram of uint64 samples in power-of-two buckets.
//
// Bucket 0 holds the value 0; bucket k >= 1 holds [2^(k-1), 2^k - 1]. The last bucket is
// open-ended. Percentiles resolve to the upper edge of the bucket containing the requested
// rank, clamped to the observed maximum — so Percentile(1.0) is exactly Max().
class LatencyHistogram {
 public:
  static constexpr uint32_t kBuckets = 48;

  // The bucket a value lands in.
  static constexpr uint32_t BucketOf(uint64_t value) {
    const uint32_t width = static_cast<uint32_t>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }
  // Inclusive value range of one bucket.
  static constexpr uint64_t BucketLowerEdge(uint32_t bucket) {
    return bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
  }
  static constexpr uint64_t BucketUpperEdge(uint32_t bucket) {
    if (bucket == 0) {
      return 0;
    }
    if (bucket >= kBuckets - 1) {
      return ~uint64_t{0};
    }
    return (uint64_t{1} << bucket) - 1;
  }

  void Record(uint64_t value) {
    ++counts_[BucketOf(value)];
    ++total_;
    sum_ += value;
    if (value > max_) {
      max_ = value;
    }
    if (value < min_ || total_ == 1) {
      min_ = value;
    }
  }

  uint64_t TotalCount() const { return total_; }
  uint64_t Sum() const { return sum_; }
  uint64_t Max() const { return max_; }
  uint64_t Min() const { return total_ == 0 ? 0 : min_; }
  double Mean() const {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(total_);
  }
  uint64_t CountInBucket(uint32_t bucket) const { return counts_[bucket]; }
  const std::array<uint64_t, kBuckets>& buckets() const { return counts_; }

  // The smallest value v such that at least ceil(p * total) samples are <= the upper edge
  // of v's bucket, clamped to the observed max. 0 when empty. p is clamped to [0, 1].
  uint64_t Percentile(double p) const;

  void Merge(const LatencyHistogram& other);
  void Clear();

  // One-line human summary: "n=1234 mean=56.7 p50=32 p95=255 p99=511 max=900".
  std::string Summary() const;

 private:
  std::array<uint64_t, kBuckets> counts_{};
  uint64_t total_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = 0;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_HISTOGRAM_H_
