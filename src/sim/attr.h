// Simulated-cycle attribution: a ledger that charges every cycle the machine spends to a
// cause taxonomy (instruction execution, TLB reload by strategy, hash-search depth, fault
// kind, flush flavor, idle work, ...) keyed secondarily by the running task.
//
// The ledger lives in the sim layer (like TraceBuffer and LatencyProbes) so hot headers
// stay obs-free; exporters (flamegraphs, JSON tables, diffs) live in src/obs/attr. The
// contract mirrors the other observers: when disabled, the only cost on any hot path is
// one predictable branch, and enabling it never advances the clock or perturbs a single
// counter (tests/attr_test.cc proves both, bit-exactly).
//
// Causes nest: Mmu::Reload opens a reload scope, the hash search inside it opens a depth
// scope, so cycles land in a path like dtlb_reload_hw;hash_primary. An open scope is a
// stack of cause bytes; each distinct (path, task) pair owns one cell, and every
// Machine::AddCycles charges the innermost cell (or the task's base "instruction" cell
// when no scope is open). Attributed cycles therefore sum to total simulated cycles by
// construction — there is no "unknown" bucket to leak into.

#ifndef PPCMM_SRC_SIM_ATTR_H_
#define PPCMM_SRC_SIM_ATTR_H_

#include <array>
#include <cstdint>
#include <map>
#include <vector>

namespace ppcmm {

// The cause taxonomy. Order is part of the export format only through AttrCauseName;
// appending is always safe.
enum class AttrCause : uint8_t {
  kInstruction = 0,  // base execution: no scope open (never "unknown" — this is the root)
  // TLB reloads, split by which TLB missed and which reload strategy served it.
  kItlbReloadHw,
  kItlbReloadSwHtab,
  kItlbReloadSwDirect,
  kDtlbReloadHw,
  kDtlbReloadSwHtab,
  kDtlbReloadSwDirect,
  // Hash-table search depth buckets (nested under a reload cause).
  kHashSearchPrimary,    // found in the primary PTEG (<= 8 memory references)
  kHashSearchSecondary,  // found only after probing the secondary PTEG
  kHashSearchMiss,       // both PTEGs searched, no match (leads to a page fault or walk)
  kDirtyBitUpdate,       // deferred C-bit store-back on first write
  // Page-fault kinds, by the backing of the faulting VMA.
  kFaultAnon,
  kFaultFile,
  kFaultShm,
  kFaultIo,
  kCowFault,  // copy-on-write break (the copy loop itself is kCowCopy nested inside)
  kCowCopy,
  // Flush flavors (§7 of the paper: per-page eager vs whole-context lazy).
  kRangeFlushEager,
  kContextFlushLazy,
  kVsidRollover,  // MMU-context generation rollover sweep
  // Idle-task work (§5/§6: the optimized idle loop).
  kIdleLoop,     // the idle loop shell (nested causes carve out reclaim/zero work)
  kIdleReclaim,  // zombie PTE reclaim pass
  kIdleZero,     // background page zeroing
  kContextSwitch,
  // Kernel entry points (coarse buckets for everything the taxonomy above doesn't refine).
  kSyscall,
  kFileIo,
  kPipe,
  kFork,
  kExec,
  kExit,
  // SMP: cross-CPU TLB shootdown rounds (IPI send/receive plus the remote invalidate)
  // and the deferred tlbia an idle-skipped CPU runs when it next schedules.
  kTlbShootdown,
  kNumCauses,  // sentinel, not a cause
};

// Stable snake_case name used in folded stacks, JSON exports, and flight-recorder dumps.
const char* AttrCauseName(AttrCause cause);

// One recent attributed event, recorded when a scope closes. POD so the flight-recorder
// ring is a fixed-size array with no per-event allocation.
struct AttrEvent {
  uint64_t end_cycle = 0;  // simulated cycle at which the scope closed
  uint64_t cycles = 0;     // clock advance across the scope (including nested scopes)
  uint32_t task = 0;       // task current when the scope closed
  AttrCause cause = AttrCause::kInstruction;  // leaf cause of the closed scope
  uint8_t depth = 0;                          // nesting depth of the closed scope (1 = root)
  uint8_t cpu = 0;                            // CPU current when the scope closed
};

// The attribution ledger. One per Machine; all mutation goes through CycleScope
// (src/sim/machine.h) except SetCurrentTask, which the kernel mirrors alongside
// TraceBuffer::SetCurrentTask.
class CycleLedger {
 public:
  static constexpr uint32_t kMaxDepth = 8;
  static constexpr uint32_t kFlightCapacity = 256;

  // Identifies one attribution cell: the open-scope cause path (bytes are cause+1 so a
  // zero byte means "unused level"; all-zero = the base instruction cell) and the task.
  struct CellKey {
    std::array<uint8_t, kMaxDepth> path = {};
    uint32_t task = 0;
    bool operator<(const CellKey& other) const {
      if (path != other.path) return path < other.path;
      return task < other.task;
    }
  };

  // One exported cell: the decoded cause path, owning task, and cycles charged.
  struct Cell {
    std::vector<AttrCause> path;  // empty = base instruction cell
    uint32_t task = 0;
    uint64_t cycles = 0;
  };

  bool enabled() const { return enabled_; }
  // Enabling starts attribution from the current cycle; disabling freezes the ledger
  // (cells and the flight ring remain readable). Enabling resets nothing — call Clear()
  // for a fresh window.
  void SetEnabled(bool enabled);
  void Clear();

  // Charges `cycles` to the innermost open scope (or the current task's base cell).
  // Called from Machine::AddCycles on every clock advance — the one hot-path hook.
  void Charge(uint64_t cycles) {
    if (!enabled_) {
      return;
    }
    current_->second += cycles;
    total_ += cycles;
  }

  // Scope stack. Push/Pop are driven by CycleScope; Rebind reclassifies the innermost
  // scope after the fact (e.g. a hash search discovers only on return whether it stayed
  // in the primary PTEG), moving the cycles already charged to its leaf cell. Rebind must
  // run before any nested scope opens under the rebound one, or the nested cells keep
  // their original parent path (cycles are still conserved, only the label is stale).
  void Push(AttrCause cause);
  void Pop(uint64_t end_cycle, uint64_t elapsed_cycles);
  void Rebind(AttrCause cause);

  // Mirrors the scheduler: subsequent base-cell charges (and new scopes) belong to `task`.
  void SetCurrentTask(uint32_t task);
  uint32_t current_task() const { return task_; }

  // Mirrors the SMP interleaver: flight-recorder events closed from now on are stamped
  // with `cpu`. Cells stay keyed by (path, task) only — the per-CPU view lives in the
  // flight ring and the per-CPU cycle clocks, not in the attribution table.
  void SetCurrentCpu(uint32_t cpu) { cpu_ = cpu; }
  uint32_t current_cpu() const { return cpu_; }

  uint32_t depth() const { return depth_; }
  // Total cycles charged while enabled. The conservation invariant: this equals both the
  // sum over Cells() and the machine's clock advance over the enabled window, bit-exactly.
  uint64_t TotalAttributed() const { return total_; }

  // Snapshot of every cell, deterministically ordered (path bytes, then task).
  std::vector<Cell> Cells() const;

  // Flight recorder: the most recent closed scopes, oldest first. Capacity is fixed;
  // older events are overwritten.
  std::vector<AttrEvent> RecentEvents() const;
  uint64_t events_recorded() const { return events_recorded_; }

 private:
  uint64_t* FindOrCreateCell(const CellKey& key);

  bool enabled_ = false;
  uint32_t task_ = 0;
  uint32_t cpu_ = 0;
  uint32_t depth_ = 0;
  uint64_t total_ = 0;

  // Open-scope bookkeeping: the cause path as stored key bytes, plus per-frame the cell
  // and its balance at entry (so Rebind can move exactly the cycles charged since Push).
  struct Frame {
    AttrCause cause = AttrCause::kInstruction;
    std::map<CellKey, uint64_t>::iterator cell;
    uint64_t entry_cycles = 0;
  };
  std::array<uint8_t, kMaxDepth> path_ = {};
  std::array<Frame, kMaxDepth> frames_;

  // Cell store. std::map keeps iteration deterministic (DET-ITER-012) and nodes stable,
  // so `current_` can point straight at the hot cell between stack operations.
  std::map<CellKey, uint64_t> cells_;
  std::map<CellKey, uint64_t>::iterator base_cell_;  // cached [kInstruction-path, task_]
  std::map<CellKey, uint64_t>::iterator current_;    // innermost open cell (or base)

  // Flight ring.
  std::array<AttrEvent, kFlightCapacity> flight_ = {};
  uint64_t events_recorded_ = 0;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_ATTR_H_
