#include "src/sim/machine.h"

namespace ppcmm {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      memory_(config.ram_bytes),
      icache_("icache", config.icache, config.memory),
      dcache_("dcache", config.dcache, config.memory) {
  config_.ncpus = std::max(1u, config_.ncpus);
  for (uint32_t cpu = 1; cpu < config_.ncpus; ++cpu) {
    extra_cores_.push_back(std::make_unique<ExtraCore>(config_));
  }
  cpu_cycles_.assign(config_.ncpus, 0);
  cpu_cycles_cur_ = &cpu_cycles_[0];
  if (config.has_l2) {
    l2_ = std::make_unique<Cache>("l2", config.l2, config.memory);
  }
#ifdef PPCMM_OBS_FORCE_ENABLE
  // The `obs` build preset: every machine comes up with tracing and latency probes live,
  // so ad-hoc runs produce exportable data without per-binary plumbing.
  trace_.Enable();
  probes_.SetEnabled(true);
  attr_.SetEnabled(true);
#endif
}

Cycles Machine::MissCost(PhysAddr pa, bool is_write, bool l1_evicted_dirty) {
  Cycles cost(0);
  if (l2_ != nullptr) {
    const CacheAccessOutcome l2 = l2_->AccessLine(pa, is_write);
    cost += l2.hit ? Cycles(config_.l2_hit_cycles) : Cycles(config_.memory.line_fill_cycles);
    if (l2.evicted_dirty) {
      cost += Cycles(config_.memory.writeback_cycles);
    }
    if (l1_evicted_dirty) {
      cost += Cycles(2);  // castout absorbed by the L2
    }
  } else {
    cost += Cycles(config_.memory.line_fill_cycles);
    if (l1_evicted_dirty) {
      cost += Cycles(config_.memory.writeback_cycles);
    }
  }
  return cost;
}

}  // namespace ppcmm
