// Lightweight invariant-checking macros for the simulator.
//
// PPCMM_CHECK fires on programming errors (bad arguments, violated internal invariants) by
// throwing ppcmm::CheckFailure. Throwing instead of aborting keeps the library usable from
// tests (EXPECT_THROW) and long-running harnesses that want to surface the message.

#ifndef PPCMM_SRC_SIM_CHECK_H_
#define PPCMM_SRC_SIM_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace ppcmm {

// Thrown when a PPCMM_CHECK condition fails.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

// Thrown when physical memory is genuinely exhausted after every recovery avenue (prezeroed
// list, page-cache reclaim) has been tried. Derives from CheckFailure so legacy callers that
// treat any check as fatal still work, but callers that can shed load (fork, mmap, the torture
// harness) may catch this specifically, roll back, and continue.
class OutOfMemoryError : public CheckFailure {
 public:
  explicit OutOfMemoryError(const std::string& what) : CheckFailure(what) {}
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* condition, const char* file, int line,
                                     const std::string& extra) {
  std::ostringstream oss;
  oss << "PPCMM_CHECK failed: " << condition << " at " << file << ":" << line;
  if (!extra.empty()) {
    oss << " — " << extra;
  }
  throw CheckFailure(oss.str());
}

}  // namespace internal

}  // namespace ppcmm

#define PPCMM_CHECK(cond)                                             \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::ppcmm::internal::CheckFailed(#cond, __FILE__, __LINE__, ""); \
    }                                                                 \
  } while (false)

#define PPCMM_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream ppcmm_check_oss;                                   \
      ppcmm_check_oss << msg;                                               \
      ::ppcmm::internal::CheckFailed(#cond, __FILE__, __LINE__,             \
                                     ppcmm_check_oss.str());                \
    }                                                                       \
  } while (false)

#endif  // PPCMM_SRC_SIM_CHECK_H_
