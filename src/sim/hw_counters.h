// Hardware-monitor-style event counters.
//
// Plays the role of the PPC 604 hardware performance monitor (and the 603 software counters)
// the paper used to "count every TLB and cache miss" (§4). Every layer of the simulator
// increments these; benchmarks snapshot and diff them around measured regions.

#ifndef PPCMM_SRC_SIM_HW_COUNTERS_H_
#define PPCMM_SRC_SIM_HW_COUNTERS_H_

#include <cstdint>
#include <string>

#include "src/sim/cycle_types.h"

namespace ppcmm {

// One monotonically increasing set of event counts. All fields count events since
// construction (or the last explicit reset); use Diff() for interval measurements.
struct HwCounters {
  // Time.
  uint64_t cycles = 0;

  // TLB behaviour.
  uint64_t itlb_accesses = 0;
  uint64_t itlb_misses = 0;
  uint64_t dtlb_accesses = 0;
  uint64_t dtlb_misses = 0;
  uint64_t bat_translations = 0;  // accesses satisfied by a BAT register (no TLB use)

  // Hashed page table behaviour.
  uint64_t htab_searches = 0;          // TLB-miss-time searches (hardware or software)
  uint64_t htab_hits = 0;              // searches that found the PTE
  uint64_t htab_misses = 0;            // searches that fell through to the PTE tree
  uint64_t htab_reloads = 0;           // PTEs inserted into the HTAB
  uint64_t htab_evicts = 0;            // inserts that displaced a valid (live-VSID) PTE
  uint64_t htab_zombie_overwrites = 0; // inserts that displaced a zombie (dead-VSID) PTE
  uint64_t htab_flush_memory_refs = 0; // memory references spent searching during flushes
  uint64_t zombies_reclaimed = 0;      // zombie PTEs invalidated by the idle task

  // Page-fault path.
  uint64_t page_faults = 0;        // Linux-level faults (PTE absent in the tree)
  uint64_t pte_tree_walks = 0;     // software walks of the two-level tree
  uint64_t dirty_bit_updates = 0;  // deferred C-bit traps (first store to a clean page)

  // Flushing.
  uint64_t tlb_page_flushes = 0;      // per-page invalidations (tlbie-style)
  uint64_t tlb_context_flushes = 0;   // whole-context (VSID reassignment) flushes
  uint64_t vsid_epoch_rollovers = 0;  // 24-bit VSID space wraps (global flush + reassign)

  // Kernel activity.
  uint64_t syscalls = 0;
  uint64_t context_switches = 0;
  uint64_t pages_zeroed_on_demand = 0;  // zeroed inside get_free_page()
  uint64_t pages_zeroed_in_idle = 0;    // zeroed by the idle task
  uint64_t prezeroed_page_hits = 0;     // get_free_page() served from the zeroed list
  uint64_t idle_invocations = 0;

  // Gauges (not diffable event counts, but carried here for reporting convenience).
  uint64_t kernel_tlb_highwater = 0;  // max TLB entries simultaneously holding kernel PTEs

  // Returns counters for the interval since `earlier` (gauges keep the later value).
  HwCounters Diff(const HwCounters& earlier) const;

  // Derived rates.
  double DtlbMissRate() const;
  double HtabHitRate() const;
  // Paper's §7 "ratio of evicts to TLB reloads": reloads that had to replace a valid-marked
  // entry — live or zombie, since the reload code cannot tell them apart.
  double EvictToReloadRatio() const;

  // Multi-line human-readable dump.
  std::string ToString() const;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_HW_COUNTERS_H_
