// Hardware-monitor-style event counters.
//
// Plays the role of the PPC 604 hardware performance monitor (and the 603 software counters)
// the paper used to "count every TLB and cache miss" (§4). Every layer of the simulator
// increments these; benchmarks snapshot and diff them around measured regions.
//
// The field set is defined once, by the X-macros below. Diff(), ToString(), and
// ForEachField() are generated from the same list, so adding a counter means adding one
// X(...) line — it is impossible to add a field that Diff or ToString silently skips
// (a static_assert pins sizeof(HwCounters) to the list length).

#ifndef PPCMM_SRC_SIM_HW_COUNTERS_H_
#define PPCMM_SRC_SIM_HW_COUNTERS_H_

#include <cstdint>
#include <string>

#include "src/sim/cycle_types.h"

// Monotonic event counts: X(field, comment). Diff subtracts these.
#define PPCMM_HW_COUNTER_FIELDS(X)                                                          \
  /* Time. */                                                                               \
  X(cycles, "simulated cycles")                                                             \
  /* TLB behaviour. */                                                                      \
  X(itlb_accesses, "instruction TLB lookups")                                               \
  X(itlb_misses, "instruction TLB misses")                                                  \
  X(dtlb_accesses, "data TLB lookups")                                                      \
  X(dtlb_misses, "data TLB misses")                                                         \
  X(bat_translations, "accesses satisfied by a BAT register (no TLB use)")                  \
  /* Hashed page table behaviour. */                                                        \
  X(htab_searches, "TLB-miss-time searches (hardware or software)")                         \
  X(htab_hits, "searches that found the PTE")                                               \
  X(htab_misses, "searches that fell through to the PTE tree")                              \
  X(htab_reloads, "PTEs inserted into the HTAB")                                            \
  X(htab_evicts, "inserts that displaced a valid (live-VSID) PTE")                          \
  X(htab_zombie_overwrites, "inserts that displaced a zombie (dead-VSID) PTE")              \
  X(htab_flush_memory_refs, "memory references spent searching during flushes")             \
  X(zombies_reclaimed, "zombie PTEs invalidated by the idle task")                          \
  /* Page-fault path. */                                                                    \
  X(page_faults, "Linux-level faults (PTE absent in the tree)")                             \
  X(pte_tree_walks, "software walks of the two-level tree")                                 \
  X(dirty_bit_updates, "deferred C-bit traps (first store to a clean page)")                \
  /* Flushing. */                                                                           \
  X(tlb_page_flushes, "per-page invalidations (tlbie-style)")                               \
  X(tlb_all_flushes, "full-TLB invalidations (tlbia-style)")                                \
  X(tlb_context_flushes, "whole-context (VSID reassignment) flushes")                       \
  X(vsid_epoch_rollovers, "24-bit VSID space wraps (global flush + reassign)")              \
  /* SMP TLB shootdown (flushes that must reach every CPU's TLB). */                        \
  X(tlb_shootdown_requests, "eager flushes that ran a cross-CPU shootdown round")           \
  X(tlb_shootdown_ipis, "shootdown IPIs delivered to busy remote CPUs")                     \
  X(tlb_shootdown_idle_skips, "idle remote CPUs skipped (flush deferred to switch-in)")     \
  X(tlb_shootdown_deferred_flushes, "deferred whole-TLB flushes run at CPU switch-in")      \
  /* Kernel activity. */                                                                    \
  X(syscalls, "system calls")                                                               \
  X(context_switches, "task switches")                                                      \
  X(pages_zeroed_on_demand, "zeroed inside get_free_page()")                                \
  X(pages_zeroed_in_idle, "zeroed by the idle task")                                        \
  X(prezeroed_page_hits, "get_free_page() served from the zeroed list")                     \
  X(idle_invocations, "idle task entries")

// Gauges: instantaneous values, not diffable; Diff keeps the later value.
#define PPCMM_HW_GAUGE_FIELDS(X)                                                            \
  X(kernel_tlb_highwater, "max TLB entries simultaneously holding kernel PTEs")

namespace ppcmm {

// One monotonically increasing set of event counts. All fields count events since
// construction (or the last explicit reset); use Diff() for interval measurements.
struct HwCounters {
#define PPCMM_DECLARE_FIELD(name, comment) uint64_t name = 0;
  PPCMM_HW_COUNTER_FIELDS(PPCMM_DECLARE_FIELD)
  PPCMM_HW_GAUGE_FIELDS(PPCMM_DECLARE_FIELD)
#undef PPCMM_DECLARE_FIELD

  static constexpr uint32_t kNumCounterFields =
#define PPCMM_COUNT_FIELD(name, comment) +1
      PPCMM_HW_COUNTER_FIELDS(PPCMM_COUNT_FIELD);
  static constexpr uint32_t kNumGaugeFields = PPCMM_HW_GAUGE_FIELDS(PPCMM_COUNT_FIELD);
#undef PPCMM_COUNT_FIELD
  static constexpr uint32_t kNumFields = kNumCounterFields + kNumGaugeFields;

  // Returns counters for the interval since `earlier` (gauges keep the later value).
  HwCounters Diff(const HwCounters& earlier) const;

  // Calls fn(name, value, is_gauge) for every field, in declaration order. Generated from
  // the same X-macro as the fields themselves, so it can never go stale.
  template <typename Fn>
  void ForEachField(Fn&& fn) const {
#define PPCMM_VISIT_COUNTER(name, comment) fn(#name, name, /*is_gauge=*/false);
#define PPCMM_VISIT_GAUGE(name, comment) fn(#name, name, /*is_gauge=*/true);
    PPCMM_HW_COUNTER_FIELDS(PPCMM_VISIT_COUNTER)
    PPCMM_HW_GAUGE_FIELDS(PPCMM_VISIT_GAUGE)
#undef PPCMM_VISIT_COUNTER
#undef PPCMM_VISIT_GAUGE
  }

  // Derived rates.
  double DtlbMissRate() const;
  double HtabHitRate() const;
  // Paper's §7 "ratio of evicts to TLB reloads": reloads that had to replace a valid-marked
  // entry — live or zombie, since the reload code cannot tell them apart.
  double EvictToReloadRatio() const;

  // Multi-line human-readable dump: one "name=value" per line, declaration order.
  std::string ToString() const;
};

// Every field must be on exactly one of the X-macro lists: a uint64_t added to the struct
// directly would change sizeof without changing kNumFields and fail here.
static_assert(sizeof(HwCounters) == HwCounters::kNumFields * sizeof(uint64_t),
              "HwCounters field added outside PPCMM_HW_COUNTER_FIELDS/PPCMM_HW_GAUGE_FIELDS");

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_HW_COUNTERS_H_
