// Physical address strong type.
//
// The 32-bit PowerPC physical address space: 20-bit physical page number + 12-bit offset.
// Kept in src/sim because the physical memory and cache models — which sit below the MMU —
// operate purely on physical addresses.

#ifndef PPCMM_SRC_SIM_PHYS_ADDR_H_
#define PPCMM_SRC_SIM_PHYS_ADDR_H_

#include <compare>
#include <cstdint>

namespace ppcmm {

inline constexpr uint32_t kPageShift = 12;
inline constexpr uint32_t kPageSize = 1u << kPageShift;
inline constexpr uint32_t kPageOffsetMask = kPageSize - 1;

// A 32-bit physical address.
struct PhysAddr {
  uint32_t value = 0;

  constexpr PhysAddr() = default;
  constexpr explicit PhysAddr(uint32_t v) : value(v) {}

  constexpr auto operator<=>(const PhysAddr&) const = default;

  // Physical page frame number (top 20 bits).
  constexpr uint32_t PageFrame() const { return value >> kPageShift; }
  // Byte offset within the page (low 12 bits).
  constexpr uint32_t PageOffset() const { return value & kPageOffsetMask; }

  // Builds an address from a page frame number and an offset within the page.
  static constexpr PhysAddr FromFrame(uint32_t frame, uint32_t offset = 0) {
    return PhysAddr((frame << kPageShift) | (offset & kPageOffsetMask));
  }

  friend constexpr PhysAddr operator+(PhysAddr a, uint32_t delta) {
    return PhysAddr(a.value + delta);
  }
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_PHYS_ADDR_H_
