// The hardware substrate bundle: physical memory, split L1 caches, the cycle clock and the
// event counters, all configured from one MachineConfig.
//
// Everything above this layer (MMU, kernel, workloads) charges time exclusively through
// Machine, so a single place accounts for every simulated cycle.

#ifndef PPCMM_SRC_SIM_MACHINE_H_
#define PPCMM_SRC_SIM_MACHINE_H_

#include <algorithm>
#include <vector>

#include "src/sim/attr.h"
#include "src/sim/probes.h"
#include "src/sim/cache.h"
#include "src/sim/cycle_types.h"
#include "src/sim/hw_counters.h"
#include "src/sim/machine_config.h"
#include <memory>

#include "src/sim/memory.h"
#include "src/sim/phys_addr.h"
#include "src/sim/trace.h"

namespace ppcmm {

// One simulated machine instance.
class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return config_; }
  PhysicalMemory& memory() { return memory_; }
  const PhysicalMemory& memory() const { return memory_; }
  // The current CPU's L1 caches (CPU 0's unless SetCurrentCpu moved the spotlight).
  Cache& icache() { return *icache_cur_; }
  Cache& dcache() { return *dcache_cur_; }
  // A specific CPU's L1 caches (per-CPU verification views).
  Cache& icache(uint32_t cpu) { return cpu == 0 ? icache_ : extra_cores_[cpu - 1]->icache; }
  Cache& dcache(uint32_t cpu) { return cpu == 0 ? dcache_ : extra_cores_[cpu - 1]->dcache; }
  // The optional board L2 (null when the profile has none; shared by every CPU).
  Cache* l2cache() { return l2_.get(); }

  // ---- SMP interleaving ----
  //
  // The machine simulates N CPUs by time-multiplexing one deterministic execution spotlight
  // over a single global cycle clock: SetCurrentCpu redirects the hot paths at CPU `cpu`'s
  // caches and stamps subsequent attribution events, it never advances the clock. Per-CPU
  // local clocks (CpuCycles) record how much of the global timeline each CPU consumed, so
  // interleaving drivers can pick the least-advanced CPU next.
  uint32_t ncpus() const { return config_.ncpus; }
  uint32_t current_cpu() const { return current_cpu_; }
  void SetCurrentCpu(uint32_t cpu) {
    current_cpu_ = cpu;
    icache_cur_ = &icache(cpu);
    dcache_cur_ = &dcache(cpu);
    cpu_cycles_cur_ = &cpu_cycles_[cpu];
    attr_.SetCurrentCpu(cpu);
  }
  // Cycles CPU `cpu` has consumed of the global timeline.
  uint64_t CpuCycles(uint32_t cpu) const { return cpu_cycles_[cpu]; }

  // Charges cycles spent by a *remote* CPU (IPI receive, remote flush handlers). The global
  // clock and the attribution ledger see them like any other cycles — the serialized
  // interleaving model has one timeline — but they land on `cpu`'s local clock.
  void AddCyclesOn(uint32_t cpu, Cycles c) {
    counters_.cycles += c.value;
    cpu_cycles_[cpu] += c.value;
    attr_.Charge(c.value);
  }
  HwCounters& counters() { return counters_; }
  const HwCounters& counters() const { return counters_; }
  TraceBuffer& trace() { return trace_; }
  LatencyProbes& probes() { return probes_; }
  const LatencyProbes& probes() const { return probes_; }
  CycleLedger& attr() { return attr_; }
  const CycleLedger& attr() const { return attr_; }

  // Records an event at the current cycle (no-op unless tracing is enabled).
  void Trace(TraceEvent event, uint32_t a = 0, uint32_t b = 0) {
    trace_.Record(counters_.cycles, event, a, b);
  }

  // Records the elapsed simulated cycles since `start` into a latency histogram (no-op
  // unless probes are enabled). Pure observation: never advances the clock.
  void RecordLatency(LatencyProbe probe, Cycles start) {
    probes_.Record(probe, counters_.cycles - start.value);
  }

  // Adds raw execution cycles (instruction issue, interrupt overheads, handler bodies).
  // Every clock advance flows through here, so the attribution ledger sees each cycle
  // exactly once (a disabled ledger costs one predictable branch).
  void AddCycles(Cycles c) {
    counters_.cycles += c.value;
    *cpu_cycles_cur_ += c.value;
    attr_.Charge(c.value);
  }
  Cycles Now() const { return Cycles(counters_.cycles); }

  // Charges one data reference at `pa` through (or around) the data cache and advances the
  // clock. `cached=false` models a cache-inhibited (WIMG I-bit) access. Inline so the
  // L1-hit case (the overwhelmingly common one) costs one AccessLine call and one add;
  // only the miss falls out of line into MissCost.
  void TouchData(PhysAddr pa, bool is_write, bool cached = true) {
    if (!cached) {
      AddCycles(dcache_cur_->AccessUncached(is_write));
      return;
    }
    const CacheAccessOutcome l1 = dcache_cur_->AccessLine(pa, is_write);
    AddCycles(l1.hit ? Cycles(1) : MissCost(pa, is_write, l1.evicted_dirty));
  }

  // Charges one instruction fetch at `pa` through the instruction cache.
  void TouchInstruction(PhysAddr pa, bool cached = true) {
    if (!cached) {
      AddCycles(icache_cur_->AccessUncached(false));
      return;
    }
    const CacheAccessOutcome l1 = icache_cur_->AccessLine(pa, false);
    AddCycles(l1.hit ? Cycles(1) : MissCost(pa, false, l1.evicted_dirty));
  }

  // Charges `count` data references starting at `pa`, each `stride` bytes after the
  // previous, all within one physical page — bit-identical to `count` TouchData calls.
  // Within the run addresses are strictly increasing, so each cache line is visited in one
  // contiguous group: the first access of a group is the only one that can miss, the rest
  // collapse inside AccessLineRun, and the cycles accumulate into a single AddCycles (the
  // ledger charges the same total into the same open cell). Host-fast-path use only
  // (translation-span replay; spans never cross a page).
  void TouchDataRun(PhysAddr pa, uint32_t stride, uint32_t count, bool is_write,
                    bool cached = true) {
    if (!cached) {
      AddCycles(dcache_cur_->AccessUncachedRun(is_write, count));
      return;
    }
    const uint32_t line = config_.dcache.line_bytes;
    uint64_t cycles = 0;
    uint32_t i = 0;
    while (i < count) {
      const PhysAddr cur(pa.value + i * stride);
      uint32_t reps = 1;
      if (stride < line) {
        const uint32_t line_left = line - (cur.value & (line - 1));
        reps = std::min(count - i, (line_left - 1) / stride + 1);
      }
      const CacheAccessOutcome l1 = dcache_cur_->AccessLineRun(cur, is_write, reps);
      cycles += l1.hit ? 1 : MissCost(cur, is_write, l1.evicted_dirty).value;
      cycles += reps - 1;  // repeats on the just-touched line are L1 hits, 1 cycle each
      i += reps;
    }
    AddCycles(Cycles(cycles));
  }

  // Instruction-fetch variant of TouchDataRun, same contract against TouchInstruction.
  void TouchInstructionRun(PhysAddr pa, uint32_t stride, uint32_t count, bool cached = true) {
    if (!cached) {
      AddCycles(icache_cur_->AccessUncachedRun(false, count));
      return;
    }
    const uint32_t line = config_.icache.line_bytes;
    uint64_t cycles = 0;
    uint32_t i = 0;
    while (i < count) {
      const PhysAddr cur(pa.value + i * stride);
      uint32_t reps = 1;
      if (stride < line) {
        const uint32_t line_left = line - (cur.value & (line - 1));
        reps = std::min(count - i, (line_left - 1) / stride + 1);
      }
      const CacheAccessOutcome l1 = icache_cur_->AccessLineRun(cur, false, reps);
      cycles += l1.hit ? 1 : MissCost(cur, false, l1.evicted_dirty).value;
      cycles += reps - 1;
      i += reps;
    }
    AddCycles(Cycles(cycles));
  }

  // Issues a software data prefetch (dcbt) for the line containing `pa`.
  void PrefetchData(PhysAddr pa) { AddCycles(dcache_cur_->Prefetch(pa)); }

  // Elapsed simulated wall-clock time at this machine's clock rate.
  double ElapsedMicros() const { return CyclesToMicros(Now(), config_.clock_mhz); }
  double ElapsedSeconds() const { return CyclesToSeconds(Now(), config_.clock_mhz); }

 private:
  // Charges an L1 miss through the L2 (if present) or memory; returns the cycles.
  Cycles MissCost(PhysAddr pa, bool is_write, bool l1_evicted_dirty);

  MachineConfig config_;
  PhysicalMemory memory_;
  // CPU 0's private core state, laid out exactly as the uniprocessor machine was so
  // ncpus=1 stays bit-identical. CPUs 1+ live in extra_cores_ (unique_ptr for pointer
  // stability: the hot-path cache pointers below alias into them).
  Cache icache_;
  Cache dcache_;
  struct ExtraCore {
    Cache icache;
    Cache dcache;
    ExtraCore(const MachineConfig& config)
        : icache("icache", config.icache, config.memory),
          dcache("dcache", config.dcache, config.memory) {}
  };
  std::vector<std::unique_ptr<ExtraCore>> extra_cores_;
  std::unique_ptr<Cache> l2_;
  HwCounters counters_;
  TraceBuffer trace_;
  LatencyProbes probes_;
  CycleLedger attr_;
  // SMP spotlight: which CPU the hot paths currently model. The pointers are the only
  // per-access indirection the refactor added; at ncpus=1 they never move off CPU 0.
  uint32_t current_cpu_ = 0;
  Cache* icache_cur_ = &icache_;
  Cache* dcache_cur_ = &dcache_;
  std::vector<uint64_t> cpu_cycles_;
  uint64_t* cpu_cycles_cur_ = nullptr;
};

// RAII cause scope for the attribution ledger: cycles charged between construction and
// destruction land in the cause path formed by the enclosing scopes plus `cause`. When
// attribution is disabled both ends are a single branch, so hot paths may open scopes
// unconditionally. Rebind reclassifies a scope whose true cause is only known on the way
// out (hash-search depth, fault kind); it must run before any nested scope opens.
class CycleScope {
 public:
  CycleScope(Machine& machine, AttrCause cause)
      : machine_(machine), engaged_(machine.attr().enabled()) {
    if (engaged_) {
      start_ = machine_.Now().value;
      machine_.attr().Push(cause);
    }
  }
  ~CycleScope() {
    if (engaged_ && machine_.attr().enabled()) {
      const uint64_t now = machine_.Now().value;
      machine_.attr().Pop(now, now - start_);
    }
  }
  CycleScope(const CycleScope&) = delete;
  CycleScope& operator=(const CycleScope&) = delete;

  void Rebind(AttrCause cause) {
    if (engaged_ && machine_.attr().enabled()) {
      machine_.attr().Rebind(cause);
    }
  }

 private:
  Machine& machine_;
  bool engaged_;
  uint64_t start_ = 0;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_MACHINE_H_
