// The hardware substrate bundle: physical memory, split L1 caches, the cycle clock and the
// event counters, all configured from one MachineConfig.
//
// Everything above this layer (MMU, kernel, workloads) charges time exclusively through
// Machine, so a single place accounts for every simulated cycle.

#ifndef PPCMM_SRC_SIM_MACHINE_H_
#define PPCMM_SRC_SIM_MACHINE_H_

#include "src/sim/probes.h"
#include "src/sim/cache.h"
#include "src/sim/cycle_types.h"
#include "src/sim/hw_counters.h"
#include "src/sim/machine_config.h"
#include <memory>

#include "src/sim/memory.h"
#include "src/sim/phys_addr.h"
#include "src/sim/trace.h"

namespace ppcmm {

// One simulated machine instance.
class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return config_; }
  PhysicalMemory& memory() { return memory_; }
  const PhysicalMemory& memory() const { return memory_; }
  Cache& icache() { return icache_; }
  Cache& dcache() { return dcache_; }
  // The optional board L2 (null when the profile has none).
  Cache* l2cache() { return l2_.get(); }
  HwCounters& counters() { return counters_; }
  const HwCounters& counters() const { return counters_; }
  TraceBuffer& trace() { return trace_; }
  LatencyProbes& probes() { return probes_; }
  const LatencyProbes& probes() const { return probes_; }

  // Records an event at the current cycle (no-op unless tracing is enabled).
  void Trace(TraceEvent event, uint32_t a = 0, uint32_t b = 0) {
    trace_.Record(counters_.cycles, event, a, b);
  }

  // Records the elapsed simulated cycles since `start` into a latency histogram (no-op
  // unless probes are enabled). Pure observation: never advances the clock.
  void RecordLatency(LatencyProbe probe, Cycles start) {
    probes_.Record(probe, counters_.cycles - start.value);
  }

  // Adds raw execution cycles (instruction issue, interrupt overheads, handler bodies).
  void AddCycles(Cycles c) { counters_.cycles += c.value; }
  Cycles Now() const { return Cycles(counters_.cycles); }

  // Charges one data reference at `pa` through (or around) the data cache and advances the
  // clock. `cached=false` models a cache-inhibited (WIMG I-bit) access. Inline so the
  // L1-hit case (the overwhelmingly common one) costs one AccessLine call and one add;
  // only the miss falls out of line into MissCost.
  void TouchData(PhysAddr pa, bool is_write, bool cached = true) {
    if (!cached) {
      AddCycles(dcache_.AccessUncached(is_write));
      return;
    }
    const CacheAccessOutcome l1 = dcache_.AccessLine(pa, is_write);
    AddCycles(l1.hit ? Cycles(1) : MissCost(pa, is_write, l1.evicted_dirty));
  }

  // Charges one instruction fetch at `pa` through the instruction cache.
  void TouchInstruction(PhysAddr pa, bool cached = true) {
    if (!cached) {
      AddCycles(icache_.AccessUncached(false));
      return;
    }
    const CacheAccessOutcome l1 = icache_.AccessLine(pa, false);
    AddCycles(l1.hit ? Cycles(1) : MissCost(pa, false, l1.evicted_dirty));
  }

  // Issues a software data prefetch (dcbt) for the line containing `pa`.
  void PrefetchData(PhysAddr pa) { AddCycles(dcache_.Prefetch(pa)); }

  // Elapsed simulated wall-clock time at this machine's clock rate.
  double ElapsedMicros() const { return CyclesToMicros(Now(), config_.clock_mhz); }
  double ElapsedSeconds() const { return CyclesToSeconds(Now(), config_.clock_mhz); }

 private:
  // Charges an L1 miss through the L2 (if present) or memory; returns the cycles.
  Cycles MissCost(PhysAddr pa, bool is_write, bool l1_evicted_dirty);

  MachineConfig config_;
  PhysicalMemory memory_;
  Cache icache_;
  Cache dcache_;
  std::unique_ptr<Cache> l2_;
  HwCounters counters_;
  TraceBuffer trace_;
  LatencyProbes probes_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_MACHINE_H_
