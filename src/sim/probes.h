// Latency probes: named histogram slots the hot paths record into.
//
// The Machine owns one LatencyProbes hub. Layers above (MMU reload, fault handlers, flush
// engine, idle reclaim) bracket their work with Machine::Now() and call Record with the
// elapsed simulated cycles. The hub is gated: when disabled (the default), Record is a
// single predictable branch and no histogram memory is touched, so instrumented and
// uninstrumented runs stay cycle-identical — the simulation clock only advances through
// Machine::AddCycles, never through observation.

#ifndef PPCMM_SRC_SIM_PROBES_H_
#define PPCMM_SRC_SIM_PROBES_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/sim/histogram.h"

namespace ppcmm {

// One slot per instrumented hot path. Keep LatencyProbeName in sync.
enum class LatencyProbe : uint32_t {
  kTlbReloadHardware = 0,    // 604-style hardware HTAB walk
  kTlbReloadSoftwareHtab,    // 603-style software miss handler over the HTAB
  kTlbReloadSoftwareDirect,  // software reload straight from the page tables (no HTAB)
  kPageFault,                // Kernel::HandlePageFault end to end
  kCowFault,                 // Kernel::HandleCowFault end to end
  kRangeFlushEager,          // FlushEngine::FlushRange taking the per-page path
  kContextFlushLazy,         // FlushEngine::FlushRange deferring to VSID retirement
  kIdleReclaimPass,          // one ReclaimZombies pass inside Kernel::RunIdle
};

inline constexpr uint32_t kNumLatencyProbes = 8;

const char* LatencyProbeName(LatencyProbe probe);

// The per-machine collection of latency histograms plus the §5.2 per-PTEG hash-miss
// counters. Disabled by default; all recording is a no-op until SetEnabled(true).
class LatencyProbes {
 public:
  bool enabled() const { return enabled_; }
  void SetEnabled(bool enabled) { enabled_ = enabled; }

  void Record(LatencyProbe probe, uint64_t cycles) {
    if (!enabled_) {
      return;
    }
    histograms_[static_cast<uint32_t>(probe)].Record(cycles);
  }

  // Counts an HTAB lookup that missed its primary PTEG (§5.2): the distribution over PTEG
  // indices is what the paper's VSID scatter constant was tuned against. The vector grows
  // on demand so an unused hub costs no memory.
  void RecordHashMiss(uint32_t pteg_index) {
    if (!enabled_) {
      return;
    }
    if (pteg_index >= hash_miss_per_pteg_.size()) {
      hash_miss_per_pteg_.resize(pteg_index + 1, 0);
    }
    ++hash_miss_per_pteg_[pteg_index];
  }

  const LatencyHistogram& histogram(LatencyProbe probe) const {
    return histograms_[static_cast<uint32_t>(probe)];
  }
  const std::vector<uint64_t>& hash_miss_per_pteg() const { return hash_miss_per_pteg_; }

  // Total samples across all histograms (not hash misses). Zero iff nothing recorded.
  uint64_t TotalRecorded() const;

  void Clear();

 private:
  bool enabled_ = false;
  std::array<LatencyHistogram, kNumLatencyProbes> histograms_;
  std::vector<uint64_t> hash_miss_per_pteg_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_PROBES_H_
