#include "src/sim/hw_counters.h"

#include <sstream>

namespace ppcmm {

HwCounters HwCounters::Diff(const HwCounters& earlier) const {
  HwCounters d;
  d.cycles = cycles - earlier.cycles;
  d.itlb_accesses = itlb_accesses - earlier.itlb_accesses;
  d.itlb_misses = itlb_misses - earlier.itlb_misses;
  d.dtlb_accesses = dtlb_accesses - earlier.dtlb_accesses;
  d.dtlb_misses = dtlb_misses - earlier.dtlb_misses;
  d.bat_translations = bat_translations - earlier.bat_translations;
  d.htab_searches = htab_searches - earlier.htab_searches;
  d.htab_hits = htab_hits - earlier.htab_hits;
  d.htab_misses = htab_misses - earlier.htab_misses;
  d.htab_reloads = htab_reloads - earlier.htab_reloads;
  d.htab_evicts = htab_evicts - earlier.htab_evicts;
  d.htab_zombie_overwrites = htab_zombie_overwrites - earlier.htab_zombie_overwrites;
  d.htab_flush_memory_refs = htab_flush_memory_refs - earlier.htab_flush_memory_refs;
  d.zombies_reclaimed = zombies_reclaimed - earlier.zombies_reclaimed;
  d.page_faults = page_faults - earlier.page_faults;
  d.pte_tree_walks = pte_tree_walks - earlier.pte_tree_walks;
  d.dirty_bit_updates = dirty_bit_updates - earlier.dirty_bit_updates;
  d.tlb_page_flushes = tlb_page_flushes - earlier.tlb_page_flushes;
  d.tlb_context_flushes = tlb_context_flushes - earlier.tlb_context_flushes;
  d.vsid_epoch_rollovers = vsid_epoch_rollovers - earlier.vsid_epoch_rollovers;
  d.syscalls = syscalls - earlier.syscalls;
  d.context_switches = context_switches - earlier.context_switches;
  d.pages_zeroed_on_demand = pages_zeroed_on_demand - earlier.pages_zeroed_on_demand;
  d.pages_zeroed_in_idle = pages_zeroed_in_idle - earlier.pages_zeroed_in_idle;
  d.prezeroed_page_hits = prezeroed_page_hits - earlier.prezeroed_page_hits;
  d.idle_invocations = idle_invocations - earlier.idle_invocations;
  d.kernel_tlb_highwater = kernel_tlb_highwater;  // gauge: keep the later value
  return d;
}

double HwCounters::DtlbMissRate() const {
  return dtlb_accesses == 0 ? 0.0
                            : static_cast<double>(dtlb_misses) / static_cast<double>(dtlb_accesses);
}

double HwCounters::HtabHitRate() const {
  return htab_searches == 0 ? 0.0
                            : static_cast<double>(htab_hits) / static_cast<double>(htab_searches);
}

double HwCounters::EvictToReloadRatio() const {
  // The paper's §7 metric: "reloads that require a valid entry be replaced". The reload code
  // cannot tell zombies from live entries — both carry the valid bit — so both count.
  return htab_reloads == 0
             ? 0.0
             : static_cast<double>(htab_evicts + htab_zombie_overwrites) /
                   static_cast<double>(htab_reloads);
}

std::string HwCounters::ToString() const {
  std::ostringstream oss;
  oss << "cycles=" << cycles << "\n"
      << "itlb: accesses=" << itlb_accesses << " misses=" << itlb_misses << "\n"
      << "dtlb: accesses=" << dtlb_accesses << " misses=" << dtlb_misses << "\n"
      << "bat_translations=" << bat_translations << "\n"
      << "htab: searches=" << htab_searches << " hits=" << htab_hits << " misses=" << htab_misses
      << " reloads=" << htab_reloads << " evicts=" << htab_evicts
      << " zombie_overwrites=" << htab_zombie_overwrites << "\n"
      << "htab_flush_memory_refs=" << htab_flush_memory_refs
      << " zombies_reclaimed=" << zombies_reclaimed << "\n"
      << "page_faults=" << page_faults << " pte_tree_walks=" << pte_tree_walks
      << " dirty_bit_updates=" << dirty_bit_updates << "\n"
      << "flushes: page=" << tlb_page_flushes << " context=" << tlb_context_flushes
      << " vsid_epoch_rollovers=" << vsid_epoch_rollovers << "\n"
      << "syscalls=" << syscalls << " context_switches=" << context_switches << "\n"
      << "zeroing: demand=" << pages_zeroed_on_demand << " idle=" << pages_zeroed_in_idle
      << " prezeroed_hits=" << prezeroed_page_hits << " idle_invocations=" << idle_invocations
      << "\n"
      << "kernel_tlb_highwater=" << kernel_tlb_highwater << "\n";
  return oss.str();
}

}  // namespace ppcmm
