#include "src/sim/hw_counters.h"

#include <sstream>

namespace ppcmm {

HwCounters HwCounters::Diff(const HwCounters& earlier) const {
  HwCounters d;
#define PPCMM_DIFF_COUNTER(name, comment) d.name = name - earlier.name;
#define PPCMM_DIFF_GAUGE(name, comment) d.name = name;  // gauge: keep the later value
  PPCMM_HW_COUNTER_FIELDS(PPCMM_DIFF_COUNTER)
  PPCMM_HW_GAUGE_FIELDS(PPCMM_DIFF_GAUGE)
#undef PPCMM_DIFF_COUNTER
#undef PPCMM_DIFF_GAUGE
  return d;
}

double HwCounters::DtlbMissRate() const {
  return dtlb_accesses == 0 ? 0.0
                            : static_cast<double>(dtlb_misses) / static_cast<double>(dtlb_accesses);
}

double HwCounters::HtabHitRate() const {
  return htab_searches == 0 ? 0.0
                            : static_cast<double>(htab_hits) / static_cast<double>(htab_searches);
}

double HwCounters::EvictToReloadRatio() const {
  // The paper's §7 metric: "reloads that require a valid entry be replaced". The reload code
  // cannot tell zombies from live entries — both carry the valid bit — so both count.
  return htab_reloads == 0
             ? 0.0
             : static_cast<double>(htab_evicts + htab_zombie_overwrites) /
                   static_cast<double>(htab_reloads);
}

std::string HwCounters::ToString() const {
  std::ostringstream oss;
  ForEachField([&](const char* name, uint64_t value, bool /*is_gauge*/) {
    oss << name << "=" << value << "\n";
  });
  return oss.str();
}

}  // namespace ppcmm
