#include "src/sim/cache.h"

#include <bit>
#include <utility>

#include "src/sim/check.h"

namespace ppcmm {

namespace {

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Cache::Cache(std::string name, CacheGeometry geometry, MemoryTiming timing)
    : name_(std::move(name)), geometry_(geometry), timing_(timing) {
  PPCMM_CHECK_MSG(IsPowerOfTwo(geometry_.line_bytes), "cache line size must be a power of two");
  PPCMM_CHECK_MSG(geometry_.associativity > 0, "cache must have at least one way");
  PPCMM_CHECK_MSG(geometry_.size_bytes % (geometry_.line_bytes * geometry_.associativity) == 0,
                  "cache size must be divisible by line size * associativity");
  PPCMM_CHECK_MSG(IsPowerOfTwo(geometry_.NumSets()), "number of sets must be a power of two");
  line_shift_ = static_cast<uint32_t>(std::countr_zero(geometry_.line_bytes));
  set_mask_ = geometry_.NumSets() - 1;
  tag_shift_ = line_shift_ + static_cast<uint32_t>(std::countr_zero(geometry_.NumSets()));
  lines_.resize(static_cast<size_t>(geometry_.NumSets()) * geometry_.associativity);
}

Cycles Cache::Access(PhysAddr pa, bool is_write) {
  const CacheAccessOutcome outcome = AccessLine(pa, is_write);
  if (outcome.hit) {
    return Cycles(1);
  }
  Cycles cost(timing_.line_fill_cycles);
  if (outcome.evicted_dirty) {
    cost += Cycles(timing_.writeback_cycles);
  }
  return cost;
}

Cycles Cache::Prefetch(PhysAddr pa) {
  ++stats_.prefetches;
  ++tick_;
  const uint32_t set = SetIndex(pa);
  const uint32_t tag = Tag(pa);
  Line* ways = &lines_[static_cast<size_t>(set) * geometry_.associativity];
  for (uint32_t w = 0; w < geometry_.associativity; ++w) {
    if (ways[w].valid && ways[w].tag == tag) {
      ways[w].last_used = tick_;
      return Cycles(1);  // already resident: just the issue slot
    }
  }
  // Install the line; the memory fill overlaps with the instructions that follow, so the
  // requester pays only the issue cost (the honest model would track overlap windows; the
  // two-cycle charge matches dcbt's pipeline occupancy).
  Line* victim = &ways[0];
  for (uint32_t w = 0; w < geometry_.associativity; ++w) {
    Line& line = ways[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.last_used < victim->last_used) {
      victim = &line;
    }
  }
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) {
      ++stats_.dirty_writebacks;
    }
  }
  victim->valid = true;
  victim->dirty = false;
  victim->tag = tag;
  victim->last_used = tick_;
  return Cycles(2);
}

bool Cache::Contains(PhysAddr pa) const {
  const uint32_t set = SetIndex(pa);
  const uint32_t tag = Tag(pa);
  const Line* ways = &lines_[static_cast<size_t>(set) * geometry_.associativity];
  for (uint32_t w = 0; w < geometry_.associativity; ++w) {
    if (ways[w].valid && ways[w].tag == tag) {
      return true;
    }
  }
  return false;
}

void Cache::InvalidateAll() {
  for (Line& line : lines_) {
    line = Line{};
  }
}

uint32_t Cache::ValidLineCount() const {
  uint32_t count = 0;
  for (const Line& line : lines_) {
    if (line.valid) {
      ++count;
    }
  }
  return count;
}

}  // namespace ppcmm
