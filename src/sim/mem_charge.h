// Interface through which MMU-level data structures (hashed page table, PTE tree) charge the
// memory references their searches perform.
//
// The concrete implementation decides whether those references go through the data cache or
// bypass it — the §8 "cache misuse on page-tables" experiment is implemented entirely by
// swapping that decision.

#ifndef PPCMM_SRC_SIM_MEM_CHARGE_H_
#define PPCMM_SRC_SIM_MEM_CHARGE_H_

#include "src/sim/phys_addr.h"

namespace ppcmm {

// Charges simulated memory references to the machine.
class MemCharger {
 public:
  virtual ~MemCharger() = default;

  // Charges one reference to `pa`. Implementations route it through the data cache or around
  // it (cache-inhibited) according to the active policy.
  virtual void Charge(PhysAddr pa, bool is_write) = 0;
};

// A MemCharger that counts references but charges nothing — used by pure occupancy probes
// and by tests that want functional behaviour without timing side effects.
class NullMemCharger : public MemCharger {
 public:
  void Charge(PhysAddr, bool) override { ++refs_; }
  uint64_t refs() const { return refs_; }

 private:
  uint64_t refs_ = 0;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_MEM_CHARGE_H_
