#include "src/sim/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ppcmm {

uint64_t LatencyHistogram::Percentile(double p) const {
  if (total_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p * static_cast<double>(total_))));
  uint64_t cumulative = 0;
  for (uint32_t bucket = 0; bucket < kBuckets; ++bucket) {
    cumulative += counts_[bucket];
    if (cumulative >= rank) {
      return std::min(BucketUpperEdge(bucket), max_);
    }
  }
  return max_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.total_ == 0) {
    return;
  }
  for (uint32_t bucket = 0; bucket < kBuckets; ++bucket) {
    counts_[bucket] += other.counts_[bucket];
  }
  if (total_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Clear() { *this = LatencyHistogram(); }

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(total_), Mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.95)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace ppcmm
