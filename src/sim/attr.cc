#include "src/sim/attr.h"

#include "src/sim/check.h"

namespace ppcmm {

const char* AttrCauseName(AttrCause cause) {
  switch (cause) {
    case AttrCause::kInstruction: return "instruction";
    case AttrCause::kItlbReloadHw: return "itlb_reload_hw";
    case AttrCause::kItlbReloadSwHtab: return "itlb_reload_sw_htab";
    case AttrCause::kItlbReloadSwDirect: return "itlb_reload_sw_direct";
    case AttrCause::kDtlbReloadHw: return "dtlb_reload_hw";
    case AttrCause::kDtlbReloadSwHtab: return "dtlb_reload_sw_htab";
    case AttrCause::kDtlbReloadSwDirect: return "dtlb_reload_sw_direct";
    case AttrCause::kHashSearchPrimary: return "hash_primary";
    case AttrCause::kHashSearchSecondary: return "hash_secondary";
    case AttrCause::kHashSearchMiss: return "hash_miss";
    case AttrCause::kDirtyBitUpdate: return "dirty_bit_update";
    case AttrCause::kFaultAnon: return "fault_anon";
    case AttrCause::kFaultFile: return "fault_file";
    case AttrCause::kFaultShm: return "fault_shm";
    case AttrCause::kFaultIo: return "fault_io";
    case AttrCause::kCowFault: return "cow_fault";
    case AttrCause::kCowCopy: return "cow_copy";
    case AttrCause::kRangeFlushEager: return "range_flush_eager";
    case AttrCause::kContextFlushLazy: return "context_flush_lazy";
    case AttrCause::kVsidRollover: return "vsid_rollover";
    case AttrCause::kIdleLoop: return "idle_loop";
    case AttrCause::kIdleReclaim: return "idle_reclaim";
    case AttrCause::kIdleZero: return "idle_zero";
    case AttrCause::kContextSwitch: return "context_switch";
    case AttrCause::kSyscall: return "syscall";
    case AttrCause::kFileIo: return "file_io";
    case AttrCause::kPipe: return "pipe";
    case AttrCause::kFork: return "fork";
    case AttrCause::kExec: return "exec";
    case AttrCause::kExit: return "exit";
    case AttrCause::kTlbShootdown: return "tlb_shootdown";
    case AttrCause::kNumCauses: break;
  }
  return "invalid";
}

uint64_t* CycleLedger::FindOrCreateCell(const CellKey& key) {
  return &cells_.try_emplace(key, 0).first->second;
}

void CycleLedger::SetEnabled(bool enabled) {
  if (enabled == enabled_) {
    return;
  }
  if (enabled) {
    // (Re)anchor the cached iterators: Clear() or first enable may have invalidated them.
    CellKey base;
    base.task = task_;
    base_cell_ = cells_.try_emplace(base, 0).first;
    if (depth_ == 0) {
      current_ = base_cell_;
    } else {
      CellKey key;
      key.path = path_;
      key.task = task_;
      current_ = cells_.try_emplace(key, 0).first;
    }
  }
  enabled_ = enabled;
}

void CycleLedger::Clear() {
  cells_.clear();
  total_ = 0;
  events_recorded_ = 0;
  flight_ = {};
  // Scope stack survives (open CycleScopes still reference it); re-anchor if live.
  if (enabled_) {
    enabled_ = false;
    SetEnabled(true);
  }
}

void CycleLedger::Push(AttrCause cause) {
  PPCMM_CHECK_MSG(depth_ < kMaxDepth, "attribution scope stack overflow");
  path_[depth_] = static_cast<uint8_t>(static_cast<uint8_t>(cause) + 1u);
  CellKey key;
  key.path = path_;
  key.task = task_;
  Frame& frame = frames_[depth_];
  frame.cause = cause;
  frame.cell = cells_.try_emplace(key, 0).first;
  frame.entry_cycles = frame.cell->second;
  current_ = frame.cell;
  ++depth_;
}

void CycleLedger::Pop(uint64_t end_cycle, uint64_t elapsed_cycles) {
  if (depth_ == 0) {
    return;  // scope outlived an enable/disable toggle; nothing to unwind
  }
  --depth_;
  const Frame& frame = frames_[depth_];
  AttrEvent& event = flight_[events_recorded_ % kFlightCapacity];
  event.end_cycle = end_cycle;
  event.cycles = elapsed_cycles;
  event.task = task_;
  event.cause = frame.cause;
  event.depth = static_cast<uint8_t>(depth_ + 1);
  event.cpu = static_cast<uint8_t>(cpu_);
  ++events_recorded_;
  path_[depth_] = 0;
  // The parent frame's cell iterator is still valid (map nodes are stable), but the task
  // may have changed inside the scope; charges belong to the task that is current *now*.
  if (depth_ == 0) {
    current_ = base_cell_;
  } else if (frames_[depth_ - 1].cell->first.task == task_) {
    current_ = frames_[depth_ - 1].cell;
  } else {
    CellKey key;
    key.path = path_;
    key.task = task_;
    current_ = cells_.try_emplace(key, 0).first;
  }
}

void CycleLedger::Rebind(AttrCause cause) {
  if (depth_ == 0) {
    return;
  }
  Frame& frame = frames_[depth_ - 1];
  if (frame.cause == cause) {
    return;
  }
  const uint64_t moved = frame.cell->second - frame.entry_cycles;
  frame.cell->second = frame.entry_cycles;
  path_[depth_ - 1] = static_cast<uint8_t>(static_cast<uint8_t>(cause) + 1u);
  CellKey key;
  key.path = path_;
  key.task = task_;
  frame.cause = cause;
  frame.cell = cells_.try_emplace(key, 0).first;
  frame.entry_cycles = frame.cell->second;
  frame.cell->second += moved;
  current_ = frame.cell;
}

void CycleLedger::SetCurrentTask(uint32_t task) {
  if (task == task_) {
    return;
  }
  task_ = task;
  if (!enabled_) {
    return;  // SetEnabled re-anchors the cached cells against the new task
  }
  CellKey base;
  base.task = task_;
  base_cell_ = cells_.try_emplace(base, 0).first;
  if (depth_ == 0) {
    current_ = base_cell_;
  } else {
    // Re-key the innermost cell so charges after the switch land on the new task.
    CellKey key;
    key.path = path_;
    key.task = task_;
    current_ = cells_.try_emplace(key, 0).first;
  }
}

std::vector<CycleLedger::Cell> CycleLedger::Cells() const {
  std::vector<Cell> out;
  out.reserve(cells_.size());
  for (const auto& [key, cycles] : cells_) {
    Cell cell;
    cell.task = key.task;
    cell.cycles = cycles;
    for (uint8_t byte : key.path) {
      if (byte == 0) {
        break;
      }
      cell.path.push_back(static_cast<AttrCause>(byte - 1u));
    }
    out.push_back(std::move(cell));
  }
  return out;
}

std::vector<AttrEvent> CycleLedger::RecentEvents() const {
  std::vector<AttrEvent> out;
  const uint64_t count = events_recorded_ < kFlightCapacity ? events_recorded_
                                                            : kFlightCapacity;
  out.reserve(static_cast<size_t>(count));
  const uint64_t start = events_recorded_ - count;
  for (uint64_t i = 0; i < count; ++i) {
    out.push_back(flight_[(start + i) % kFlightCapacity]);
  }
  return out;
}

}  // namespace ppcmm
