#include "src/sim/probes.h"

namespace ppcmm {

const char* LatencyProbeName(LatencyProbe probe) {
  switch (probe) {
    case LatencyProbe::kTlbReloadHardware:
      return "tlb_reload_hardware";
    case LatencyProbe::kTlbReloadSoftwareHtab:
      return "tlb_reload_software_htab";
    case LatencyProbe::kTlbReloadSoftwareDirect:
      return "tlb_reload_software_direct";
    case LatencyProbe::kPageFault:
      return "page_fault";
    case LatencyProbe::kCowFault:
      return "cow_fault";
    case LatencyProbe::kRangeFlushEager:
      return "range_flush_eager";
    case LatencyProbe::kContextFlushLazy:
      return "context_flush_lazy";
    case LatencyProbe::kIdleReclaimPass:
      return "idle_reclaim_pass";
  }
  return "?";
}

uint64_t LatencyProbes::TotalRecorded() const {
  uint64_t total = 0;
  for (const LatencyHistogram& h : histograms_) {
    total += h.TotalCount();
  }
  return total;
}

void LatencyProbes::Clear() {
  for (LatencyHistogram& h : histograms_) {
    h.Clear();
  }
  hash_miss_per_pteg_.clear();
}

}  // namespace ppcmm
