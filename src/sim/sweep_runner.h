// A small thread-pool runner for embarrassingly parallel simulation sweeps.
//
// Every bench and test that compares configurations runs one independent System per
// configuration — no shared mutable state between them — so the sweep is a pure map.
// SweepRunner::Map claims indices from an atomic counter, runs the supplied factory on a
// pool of host threads, and returns results in index order, so output is deterministic and
// byte-identical to a serial run regardless of the thread count or claim interleaving.
//
// Rules for callers:
//   - the callback must be self-contained: build the Machine/System inside it, return
//     plain data out of it; never touch process-wide state (BenchReport::Global(), stdout)
//     from inside — do that from the caller once Map returns.
//   - thread count: explicit constructor argument, else the PPCMM_SWEEP_THREADS
//     environment variable, else std::thread::hardware_concurrency().
//
// With one thread (or one item) everything runs inline on the calling thread — the serial
// path is the parallel path, not a separate code shape.

#ifndef PPCMM_SRC_SIM_SWEEP_RUNNER_H_
#define PPCMM_SRC_SIM_SWEEP_RUNNER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#ifdef __unix__
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace ppcmm {

class SweepRunner {
 public:
  // `threads` = 0 means auto: PPCMM_SWEEP_THREADS, else hardware_concurrency().
  explicit SweepRunner(unsigned threads = 0)
      : threads_(threads != 0 ? threads : DefaultThreads()) {}

  unsigned threads() const { return threads_; }

  // Runs fn(index) for every index in [0, count) and returns the results ordered by
  // index. If any invocation throws, the lowest-index exception is rethrown on the
  // calling thread after all workers have drained (results are discarded).
  template <typename Fn>
  auto Map(size_t count, Fn&& fn) -> std::vector<std::invoke_result_t<Fn&, size_t>> {
    using Result = std::invoke_result_t<Fn&, size_t>;
    std::vector<std::optional<Result>> slots(count);

    if (threads_ <= 1 || count <= 1) {
      for (size_t i = 0; i < count; ++i) {
        slots[i].emplace(fn(i));
      }
    } else {
      std::atomic<size_t> next{0};
      std::mutex error_mutex;
      size_t error_index = std::numeric_limits<size_t>::max();
      std::exception_ptr error;

      const auto worker = [&]() {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) {
            return;
          }
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (i < error_index) {
              error_index = i;
              error = std::current_exception();
            }
          }
        }
      };

      const unsigned spawned =
          static_cast<unsigned>(std::min<size_t>(threads_, count));
      std::vector<std::thread> pool;
      pool.reserve(spawned);
      for (unsigned t = 0; t < spawned; ++t) {
        pool.emplace_back(worker);
      }
      for (std::thread& t : pool) {
        t.join();
      }
      if (error != nullptr) {
        std::rethrow_exception(error);
      }
    }

    std::vector<Result> results;
    results.reserve(count);
    for (std::optional<Result>& slot : slots) {
      results.push_back(std::move(*slot));
    }
    return results;
  }

  // ---- multi-process sharding ----
  //
  // Runs fn(index) for every index in [0, count) across `shards` forked child processes
  // and returns the results in index order, exactly as Map would. Shard s owns indices
  // i % shards == s (deterministic shard→config assignment) and runs them serially; each
  // child streams fixed-size (index, result) records back over a pipe and _exit(0)s —
  // atexit handlers (BenchReport's output write among them) never run in a child, so the
  // parent process remains the only writer of bench-out/BENCH_*.json and the merged
  // report carries the parent's single host fingerprint.
  //
  // Result must be trivially copyable (it crosses the process boundary as raw bytes) and
  // default-constructible (the parent materializes it from the pipe). A child that dies —
  // CHECK failure, crash, uncaught exception — surfaces as std::runtime_error here.
  // Sharding is engaged deliberately (explicit argument or PPCMM_SWEEP_SHARDS): fork
  // requires the caller to hold no live threads, so call it from the main thread before
  // any pool spins up. On non-unix hosts it degrades to the thread-pool Map.
  template <typename Fn>
  auto MapSharded(size_t count, unsigned shards, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, size_t>> {
    using Result = std::invoke_result_t<Fn&, size_t>;
    static_assert(std::is_trivially_copyable_v<Result>,
                  "MapSharded streams results over a pipe as raw bytes");
    static_assert(std::is_default_constructible_v<Result>,
                  "MapSharded materializes results from the pipe");
#ifndef __unix__
    (void)shards;
    return Map(count, std::forward<Fn>(fn));
#else
    if (shards <= 1 || count <= 1) {
      std::vector<Result> serial;
      serial.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        serial.push_back(fn(i));
      }
      return serial;
    }
    shards = static_cast<unsigned>(std::min<size_t>(shards, count));

    struct Record {
      uint64_t index;
      Result result;
    };
    std::vector<std::optional<Result>> slots(count);
    std::vector<pid_t> pids(shards, -1);
    std::vector<int> fds(shards, -1);
    for (unsigned s = 0; s < shards; ++s) {
      int pipe_fd[2];
      if (pipe(pipe_fd) != 0) {
        throw std::runtime_error("MapSharded: pipe() failed");
      }
      const pid_t pid = fork();
      if (pid < 0) {
        throw std::runtime_error("MapSharded: fork() failed");
      }
      if (pid == 0) {
        close(pipe_fd[0]);
        for (size_t i = s; i < count; i += shards) {
          Record record{i, fn(i)};
          const char* p = reinterpret_cast<const char*>(&record);
          size_t left = sizeof(record);
          while (left > 0) {
            const ssize_t n = write(pipe_fd[1], p, left);
            if (n <= 0) {
              _exit(3);
            }
            p += n;
            left -= static_cast<size_t>(n);
          }
        }
        _exit(0);
      }
      close(pipe_fd[1]);
      pids[s] = pid;
      fds[s] = pipe_fd[0];
    }

    std::string failure;
    for (unsigned s = 0; s < shards; ++s) {
      const size_t expected = (count - s + shards - 1) / shards;
      size_t received = 0;
      while (received < expected) {
        Record record{};
        char* p = reinterpret_cast<char*>(&record);
        size_t got = 0;
        while (got < sizeof(record)) {
          const ssize_t n = read(fds[s], p + got, sizeof(record) - got);
          if (n <= 0) {
            break;  // EOF mid-record: the child died; waitpid below explains
          }
          got += static_cast<size_t>(n);
        }
        if (got < sizeof(record)) {
          break;
        }
        if (record.index < count) {
          slots[record.index].emplace(record.result);
        }
        ++received;
      }
      close(fds[s]);
      int status = 0;
      waitpid(pids[s], &status, 0);
      if (failure.empty()) {
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          failure = "MapSharded: shard " + std::to_string(s) + " of " +
                    std::to_string(shards) + " died (status " + std::to_string(status) + ")";
        } else if (received < expected) {
          failure = "MapSharded: shard " + std::to_string(s) + " returned " +
                    std::to_string(received) + " of " + std::to_string(expected) +
                    " results";
        }
      }
    }
    if (!failure.empty()) {
      throw std::runtime_error(failure);
    }

    std::vector<Result> results;
    results.reserve(count);
    for (std::optional<Result>& slot : slots) {
      results.push_back(std::move(*slot));
    }
    return results;
#endif
  }

  // Shard count from PPCMM_SWEEP_SHARDS, else 1: unlike threads, fork-based sharding
  // stays off unless asked for (bench/run_all.sh --shards N plumbs it through).
  static unsigned DefaultShards();

 private:
  static unsigned DefaultThreads();

  unsigned threads_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_SWEEP_RUNNER_H_
