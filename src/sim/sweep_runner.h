// A small thread-pool runner for embarrassingly parallel simulation sweeps.
//
// Every bench and test that compares configurations runs one independent System per
// configuration — no shared mutable state between them — so the sweep is a pure map.
// SweepRunner::Map claims indices from an atomic counter, runs the supplied factory on a
// pool of host threads, and returns results in index order, so output is deterministic and
// byte-identical to a serial run regardless of the thread count or claim interleaving.
//
// Rules for callers:
//   - the callback must be self-contained: build the Machine/System inside it, return
//     plain data out of it; never touch process-wide state (BenchReport::Global(), stdout)
//     from inside — do that from the caller once Map returns.
//   - thread count: explicit constructor argument, else the PPCMM_SWEEP_THREADS
//     environment variable, else std::thread::hardware_concurrency().
//
// With one thread (or one item) everything runs inline on the calling thread — the serial
// path is the parallel path, not a separate code shape.

#ifndef PPCMM_SRC_SIM_SWEEP_RUNNER_H_
#define PPCMM_SRC_SIM_SWEEP_RUNNER_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ppcmm {

class SweepRunner {
 public:
  // `threads` = 0 means auto: PPCMM_SWEEP_THREADS, else hardware_concurrency().
  explicit SweepRunner(unsigned threads = 0)
      : threads_(threads != 0 ? threads : DefaultThreads()) {}

  unsigned threads() const { return threads_; }

  // Runs fn(index) for every index in [0, count) and returns the results ordered by
  // index. If any invocation throws, the lowest-index exception is rethrown on the
  // calling thread after all workers have drained (results are discarded).
  template <typename Fn>
  auto Map(size_t count, Fn&& fn) -> std::vector<std::invoke_result_t<Fn&, size_t>> {
    using Result = std::invoke_result_t<Fn&, size_t>;
    std::vector<std::optional<Result>> slots(count);

    if (threads_ <= 1 || count <= 1) {
      for (size_t i = 0; i < count; ++i) {
        slots[i].emplace(fn(i));
      }
    } else {
      std::atomic<size_t> next{0};
      std::mutex error_mutex;
      size_t error_index = std::numeric_limits<size_t>::max();
      std::exception_ptr error;

      const auto worker = [&]() {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) {
            return;
          }
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (i < error_index) {
              error_index = i;
              error = std::current_exception();
            }
          }
        }
      };

      const unsigned spawned =
          static_cast<unsigned>(std::min<size_t>(threads_, count));
      std::vector<std::thread> pool;
      pool.reserve(spawned);
      for (unsigned t = 0; t < spawned; ++t) {
        pool.emplace_back(worker);
      }
      for (std::thread& t : pool) {
        t.join();
      }
      if (error != nullptr) {
        std::rethrow_exception(error);
      }
    }

    std::vector<Result> results;
    results.reserve(count);
    for (std::optional<Result>& slot : slots) {
      results.push_back(std::move(*slot));
    }
    return results;
  }

 private:
  static unsigned DefaultThreads();

  unsigned threads_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_SWEEP_RUNNER_H_
