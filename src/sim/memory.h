// Simulated physical memory.
//
// Backs the whole 32 MB RAM of the paper's testbed with real storage so that higher layers
// can verify data integrity end to end (e.g. pre-zeroed pages really contain zeroes, pipe
// payloads survive the round trip). Timing is not modelled here — the cache model charges
// memory-latency cycles; this class is purely functional.

#ifndef PPCMM_SRC_SIM_MEMORY_H_
#define PPCMM_SRC_SIM_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/sim/phys_addr.h"

namespace ppcmm {

// Byte-addressable physical memory with bounds checking.
class PhysicalMemory {
 public:
  explicit PhysicalMemory(uint64_t size_bytes);

  uint64_t size_bytes() const { return data_.size(); }
  uint64_t num_frames() const { return data_.size() / kPageSize; }

  // The scalar accessors are inline — the page-zeroing, pipe-copy and page-table paths
  // issue millions of them — with the bounds check reduced to one compare and the failure
  // path (message formatting, throw) kept cold and out of line.
  uint8_t Read8(PhysAddr pa) const {
    CheckRange(pa, 1);
    return data_[pa.value];
  }
  void Write8(PhysAddr pa, uint8_t value) {
    CheckRange(pa, 1);
    data_[pa.value] = value;
  }
  uint32_t Read32(PhysAddr pa) const {
    CheckRange(pa, 4);
    uint32_t v = 0;
    std::memcpy(&v, &data_[pa.value], 4);
    return v;
  }
  void Write32(PhysAddr pa, uint32_t value) {
    CheckRange(pa, 4);
    std::memcpy(&data_[pa.value], &value, 4);
  }
  uint64_t Read64(PhysAddr pa) const {
    CheckRange(pa, 8);
    uint64_t v = 0;
    std::memcpy(&v, &data_[pa.value], 8);
    return v;
  }
  void Write64(PhysAddr pa, uint64_t value) {
    CheckRange(pa, 8);
    std::memcpy(&data_[pa.value], &value, 8);
  }

  // Copies `len` bytes between physical ranges; ranges must not overlap.
  void Copy(PhysAddr dst, PhysAddr src, uint32_t len);
  // Fills `len` bytes with `value`.
  void Fill(PhysAddr dst, uint8_t value, uint32_t len);
  // Zeroes an entire page frame.
  void ZeroFrame(uint32_t frame);
  // Returns true if the entire page frame is zero.
  bool FrameIsZero(uint32_t frame) const;

 private:
  void CheckRange(PhysAddr pa, uint32_t len) const {
    if (static_cast<uint64_t>(pa.value) + len > data_.size()) [[unlikely]] {
      FailRange(pa, len);
    }
  }
  [[noreturn]] void FailRange(PhysAddr pa, uint32_t len) const;

  std::vector<uint8_t> data_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_MEMORY_H_
