// Simulated physical memory.
//
// Backs the whole 32 MB RAM of the paper's testbed with real storage so that higher layers
// can verify data integrity end to end (e.g. pre-zeroed pages really contain zeroes, pipe
// payloads survive the round trip). Timing is not modelled here — the cache model charges
// memory-latency cycles; this class is purely functional.

#ifndef PPCMM_SRC_SIM_MEMORY_H_
#define PPCMM_SRC_SIM_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/phys_addr.h"

namespace ppcmm {

// Byte-addressable physical memory with bounds checking.
class PhysicalMemory {
 public:
  explicit PhysicalMemory(uint64_t size_bytes);

  uint64_t size_bytes() const { return data_.size(); }
  uint64_t num_frames() const { return data_.size() / kPageSize; }

  uint8_t Read8(PhysAddr pa) const;
  void Write8(PhysAddr pa, uint8_t value);
  uint32_t Read32(PhysAddr pa) const;
  void Write32(PhysAddr pa, uint32_t value);
  uint64_t Read64(PhysAddr pa) const;
  void Write64(PhysAddr pa, uint64_t value);

  // Copies `len` bytes between physical ranges; ranges must not overlap.
  void Copy(PhysAddr dst, PhysAddr src, uint32_t len);
  // Fills `len` bytes with `value`.
  void Fill(PhysAddr dst, uint8_t value, uint32_t len);
  // Zeroes an entire page frame.
  void ZeroFrame(uint32_t frame);
  // Returns true if the entire page frame is zero.
  bool FrameIsZero(uint32_t frame) const;

 private:
  void CheckRange(PhysAddr pa, uint32_t len) const;

  std::vector<uint8_t> data_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_MEMORY_H_
