// Deterministic pseudo-random number generator for workload generation.
//
// SplitMix64: small state, excellent statistical quality for simulation purposes, and fully
// deterministic across platforms — two runs with the same seed produce identical reference
// streams, which the reproducibility property tests rely on.

#ifndef PPCMM_SRC_SIM_RNG_H_
#define PPCMM_SRC_SIM_RNG_H_

#include <cstdint>

#include "src/sim/check.h"

namespace ppcmm {

// Deterministic 64-bit PRNG (SplitMix64).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Returns the next 64-bit value.
  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Returns a value uniformly distributed in [0, bound).
  uint64_t NextBelow(uint64_t bound) {
    PPCMM_CHECK(bound > 0);
    // Multiply-shift rejection-free mapping; bias is negligible for simulation bounds.
    return static_cast<uint64_t>((static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Returns a value uniformly distributed in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    PPCMM_CHECK(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  // Returns true with probability num/den.
  bool Chance(uint64_t num, uint64_t den) {
    PPCMM_CHECK(den > 0);
    return NextBelow(den) < num;
  }

  // Returns a double uniformly distributed in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  uint64_t state_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_SIM_RNG_H_
