#include "src/sim/memory.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/sim/check.h"

namespace ppcmm {

PhysicalMemory::PhysicalMemory(uint64_t size_bytes) : data_(size_bytes, 0) {
  PPCMM_CHECK_MSG(size_bytes % kPageSize == 0, "RAM size must be page aligned");
  PPCMM_CHECK(size_bytes > 0);
}

void PhysicalMemory::FailRange(PhysAddr pa, uint32_t len) const {
  PPCMM_CHECK_MSG(false, "physical access out of range: pa=0x"
                             << std::hex << pa.value << " len=" << std::dec << len);
  std::abort();  // unreachable: PPCMM_CHECK_MSG(false, ...) always throws
}

void PhysicalMemory::Copy(PhysAddr dst, PhysAddr src, uint32_t len) {
  CheckRange(dst, len);
  CheckRange(src, len);
  const bool overlap =
      dst.value < src.value + len && src.value < dst.value + len && len > 0 && dst.value != src.value;
  PPCMM_CHECK_MSG(!overlap || dst.value == src.value, "PhysicalMemory::Copy ranges overlap");
  std::memmove(&data_[dst.value], &data_[src.value], len);
}

void PhysicalMemory::Fill(PhysAddr dst, uint8_t value, uint32_t len) {
  CheckRange(dst, len);
  std::memset(&data_[dst.value], value, len);
}

void PhysicalMemory::ZeroFrame(uint32_t frame) {
  Fill(PhysAddr::FromFrame(frame), 0, kPageSize);
}

bool PhysicalMemory::FrameIsZero(uint32_t frame) const {
  const PhysAddr base = PhysAddr::FromFrame(frame);
  CheckRange(base, kPageSize);
  const uint8_t* p = &data_[base.value];
  return std::all_of(p, p + kPageSize, [](uint8_t b) { return b == 0; });
}

}  // namespace ppcmm
