#include "src/sim/memory.h"

#include <algorithm>
#include <cstring>

#include "src/sim/check.h"

namespace ppcmm {

PhysicalMemory::PhysicalMemory(uint64_t size_bytes) : data_(size_bytes, 0) {
  PPCMM_CHECK_MSG(size_bytes % kPageSize == 0, "RAM size must be page aligned");
  PPCMM_CHECK(size_bytes > 0);
}

void PhysicalMemory::CheckRange(PhysAddr pa, uint32_t len) const {
  PPCMM_CHECK_MSG(static_cast<uint64_t>(pa.value) + len <= data_.size(),
                  "physical access out of range: pa=0x" << std::hex << pa.value << " len=" << std::dec
                                                        << len);
}

uint8_t PhysicalMemory::Read8(PhysAddr pa) const {
  CheckRange(pa, 1);
  return data_[pa.value];
}

void PhysicalMemory::Write8(PhysAddr pa, uint8_t value) {
  CheckRange(pa, 1);
  data_[pa.value] = value;
}

uint32_t PhysicalMemory::Read32(PhysAddr pa) const {
  CheckRange(pa, 4);
  uint32_t v = 0;
  std::memcpy(&v, &data_[pa.value], 4);
  return v;
}

void PhysicalMemory::Write32(PhysAddr pa, uint32_t value) {
  CheckRange(pa, 4);
  std::memcpy(&data_[pa.value], &value, 4);
}

uint64_t PhysicalMemory::Read64(PhysAddr pa) const {
  CheckRange(pa, 8);
  uint64_t v = 0;
  std::memcpy(&v, &data_[pa.value], 8);
  return v;
}

void PhysicalMemory::Write64(PhysAddr pa, uint64_t value) {
  CheckRange(pa, 8);
  std::memcpy(&data_[pa.value], &value, 8);
}

void PhysicalMemory::Copy(PhysAddr dst, PhysAddr src, uint32_t len) {
  CheckRange(dst, len);
  CheckRange(src, len);
  const bool overlap =
      dst.value < src.value + len && src.value < dst.value + len && len > 0 && dst.value != src.value;
  PPCMM_CHECK_MSG(!overlap || dst.value == src.value, "PhysicalMemory::Copy ranges overlap");
  std::memmove(&data_[dst.value], &data_[src.value], len);
}

void PhysicalMemory::Fill(PhysAddr dst, uint8_t value, uint32_t len) {
  CheckRange(dst, len);
  std::memset(&data_[dst.value], value, len);
}

void PhysicalMemory::ZeroFrame(uint32_t frame) {
  Fill(PhysAddr::FromFrame(frame), 0, kPageSize);
}

bool PhysicalMemory::FrameIsZero(uint32_t frame) const {
  const PhysAddr base = PhysAddr::FromFrame(frame);
  CheckRange(base, kPageSize);
  const uint8_t* p = &data_[base.value];
  return std::all_of(p, p + kPageSize, [](uint8_t b) { return b == 0; });
}

}  // namespace ppcmm
