// Derived statistics over a running System — the numbers the paper reports in prose:
// hash-table utilization, the evict/reload ratio, HTAB hit rates, kernel TLB share.

#ifndef PPCMM_SRC_CORE_STATS_H_
#define PPCMM_SRC_CORE_STATS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/core/system.h"
#include "src/mmu/hashed_pte.h"

namespace ppcmm {

// A point-in-time snapshot of the derived metrics.
struct SystemStats {
  // HTAB occupancy.
  uint32_t htab_capacity = 0;
  uint32_t htab_valid = 0;       // entries with V set (live + zombie)
  uint32_t htab_live = 0;        // entries whose VSID belongs to a live context
  double htab_utilization = 0.0; // valid / capacity — the §5.2 / §7 percentage
  std::array<uint32_t, kPtesPerPteg + 1> pteg_occupancy_histogram{};

  // Interval rates (caller supplies interval counters, e.g. System::CountersFor).
  double htab_hit_rate = 0.0;        // §7's 85%–98%
  double evict_to_reload_ratio = 0.0;  // §7's >90% → 30%
  double dtlb_miss_rate = 0.0;
  double itlb_miss_rate = 0.0;

  // TLB occupancy.
  uint32_t tlb_valid_entries = 0;
  uint32_t tlb_kernel_entries = 0;
  double tlb_kernel_share = 0.0;  // §5.1's 33%
  uint64_t kernel_tlb_highwater = 0;

  std::string ToString() const;
};

// Computes the snapshot from the system's current state plus an interval's counters.
SystemStats ComputeStats(System& system, const HwCounters& interval);

}  // namespace ppcmm

#endif  // PPCMM_SRC_CORE_STATS_H_
