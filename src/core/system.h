// The public facade: one simulated PowerPC machine running the mini-kernel with a chosen
// optimization configuration.
//
// Typical use:
//
//   ppcmm::System sys(ppcmm::MachineConfig::Ppc604(185),
//                     ppcmm::OptimizationConfig::AllOptimizations());
//   ppcmm::TaskId t = sys.kernel().CreateTask("worker");
//   sys.kernel().Exec(t, ppcmm::ExecImage{});
//   sys.kernel().SwitchTo(t);
//   sys.kernel().UserTouch(ppcmm::EffAddr(ppcmm::kUserDataBase), ppcmm::AccessKind::kStore);
//   double us = sys.ElapsedMicros();

#ifndef PPCMM_SRC_CORE_SYSTEM_H_
#define PPCMM_SRC_CORE_SYSTEM_H_

#include <functional>

#include "src/kernel/kernel.h"
#include "src/kernel/opt_config.h"
#include "src/sim/machine.h"
#include "src/sim/machine_config.h"

namespace ppcmm {

// A complete simulated system.
class System {
 public:
  System(const MachineConfig& machine_config, const OptimizationConfig& opt_config,
         const KernelCostModel& costs = KernelCostModel{})
      : machine_(machine_config), kernel_(machine_, opt_config, costs) {}

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  Machine& machine() { return machine_; }
  Kernel& kernel() { return kernel_; }
  Mmu& mmu() { return kernel_.mmu(); }

  // Enumerates every live cached translation (TLB + HTAB, zombies skipped) — the
  // verification hook the differential fuzzer cross-checks against its reference oracle.
  void ForEachLiveTranslation(const std::function<void(const LiveTranslation&)>& fn) {
    kernel_.ForEachLiveTranslation(fn);
  }
  const HwCounters& counters() const { return machine_.counters(); }
  const MachineConfig& machine_config() const { return machine_.config(); }
  const OptimizationConfig& opt_config() const { return kernel_.config(); }

  double ElapsedMicros() const { return machine_.ElapsedMicros(); }
  double ElapsedSeconds() const { return machine_.ElapsedSeconds(); }

  // Runs `body` and returns the simulated microseconds it consumed.
  double TimeMicros(const std::function<void()>& body) {
    const Cycles before = machine_.Now();
    body();
    return CyclesToMicros(machine_.Now() - before, machine_.config().clock_mhz);
  }

  // Runs `body` and returns the counter deltas it produced.
  HwCounters CountersFor(const std::function<void()>& body) {
    const HwCounters before = machine_.counters();
    body();
    return machine_.counters().Diff(before);
  }

 private:
  Machine machine_;
  Kernel kernel_;
};

}  // namespace ppcmm

#endif  // PPCMM_SRC_CORE_SYSTEM_H_
