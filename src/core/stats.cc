#include "src/core/stats.h"

#include <sstream>

namespace ppcmm {

SystemStats ComputeStats(System& system, const HwCounters& interval) {
  SystemStats stats;
  HashTable& htab = system.mmu().htab();
  stats.htab_capacity = htab.capacity();
  stats.htab_valid = htab.ValidCount();
  stats.htab_live = htab.LiveCount(system.kernel().vsids());
  stats.htab_utilization =
      static_cast<double>(stats.htab_valid) / static_cast<double>(stats.htab_capacity);
  stats.pteg_occupancy_histogram = htab.OccupancyHistogram();

  stats.htab_hit_rate = interval.HtabHitRate();
  stats.evict_to_reload_ratio = interval.EvictToReloadRatio();
  stats.dtlb_miss_rate = interval.DtlbMissRate();
  stats.itlb_miss_rate =
      interval.itlb_accesses == 0
          ? 0.0
          : static_cast<double>(interval.itlb_misses) / static_cast<double>(interval.itlb_accesses);

  Tlb& itlb = system.mmu().itlb();
  Tlb& dtlb = system.mmu().dtlb();
  stats.tlb_valid_entries = itlb.ValidCount() + dtlb.ValidCount();
  stats.tlb_kernel_entries = itlb.KernelEntryCount() + dtlb.KernelEntryCount();
  stats.tlb_kernel_share =
      stats.tlb_valid_entries == 0
          ? 0.0
          : static_cast<double>(stats.tlb_kernel_entries) /
                static_cast<double>(stats.tlb_valid_entries);
  stats.kernel_tlb_highwater = system.counters().kernel_tlb_highwater;
  return stats;
}

std::string SystemStats::ToString() const {
  std::ostringstream oss;
  oss << "htab: " << htab_valid << "/" << htab_capacity << " valid ("
      << static_cast<int>(htab_utilization * 100) << "%), " << htab_live << " live\n"
      << "htab hit rate: " << htab_hit_rate << ", evict/reload: " << evict_to_reload_ratio
      << "\n"
      << "tlb miss rates: i=" << itlb_miss_rate << " d=" << dtlb_miss_rate << "\n"
      << "tlb: " << tlb_valid_entries << " valid, " << tlb_kernel_entries << " kernel ("
      << static_cast<int>(tlb_kernel_share * 100) << "%), highwater " << kernel_tlb_highwater
      << "\n";
  return oss.str();
}

}  // namespace ppcmm
