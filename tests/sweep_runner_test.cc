// SweepRunner contract: deterministic, index-ordered results regardless of thread count,
// with simulations that are fully independent per task.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/sim/sweep_runner.h"

namespace ppcmm {
namespace {

TEST(SweepRunnerTest, ResultsComeBackInIndexOrder) {
  SweepRunner runner(4);
  const std::vector<size_t> results = runner.Map(64, [](size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 64u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(SweepRunnerTest, EveryIndexRunsExactlyOnce) {
  std::vector<std::atomic<int>> ran(100);
  SweepRunner runner(8);
  runner.Map(100, [&](size_t i) {
    ran[i].fetch_add(1);
    return 0;
  });
  for (size_t i = 0; i < ran.size(); ++i) {
    EXPECT_EQ(ran[i].load(), 1) << i;
  }
}

TEST(SweepRunnerTest, ParallelMatchesSerialOnRealSimulations) {
  // One cycle-exact System per index; byte-identical totals whether the sweep runs inline
  // on one thread or across a pool.
  const auto simulate = [](size_t i) {
    System sys(MachineConfig::Ppc604(133 + static_cast<uint32_t>(i)),
               OptimizationConfig::AllOptimizations());
    Kernel& kernel = sys.kernel();
    const TaskId t = kernel.CreateTask("t");
    kernel.Exec(t, ExecImage{.text_pages = 2, .data_pages = 24, .stack_pages = 2});
    kernel.SwitchTo(t);
    for (uint32_t p = 0; p < 24; ++p) {
      kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kStore);
    }
    return sys.counters().cycles;
  };
  SweepRunner serial(1);
  SweepRunner parallel(4);
  const std::vector<uint64_t> expected = serial.Map(8, simulate);
  const std::vector<uint64_t> actual = parallel.Map(8, simulate);
  EXPECT_EQ(expected, actual);
}

TEST(SweepRunnerTest, LowestIndexExceptionWinsAndPropagates) {
  SweepRunner runner(4);
  try {
    runner.Map(32, [](size_t i) -> int {
      if (i == 5 || i == 20) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
      return 0;
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 5");
  }
}

TEST(SweepRunnerTest, SerialPathHandlesExceptionsToo) {
  SweepRunner runner(1);
  EXPECT_THROW(runner.Map(4,
                          [](size_t i) -> int {
                            if (i == 2) {
                              throw std::runtime_error("serial boom");
                            }
                            return 0;
                          }),
               std::runtime_error);
}

TEST(SweepRunnerTest, EmptyAndSingleItemSweepsWork) {
  SweepRunner runner(8);
  EXPECT_TRUE(runner.Map(0, [](size_t) { return 1; }).empty());
  const std::vector<int> one = runner.Map(1, [](size_t) { return 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7);
}

TEST(SweepRunnerTest, MoreThreadsThanItemsIsFine) {
  SweepRunner runner(16);
  const std::vector<size_t> results = runner.Map(3, [](size_t i) { return i + 1; });
  EXPECT_EQ(results, (std::vector<size_t>{1, 2, 3}));
}

TEST(SweepRunnerTest, ExplicitThreadCountIsHonored) {
  EXPECT_EQ(SweepRunner(3).threads(), 3u);
  EXPECT_GE(SweepRunner().threads(), 1u);  // auto: env override or hardware_concurrency
}

TEST(SweepRunnerShardTest, ShardedMatchesMapOnPlainFunctions) {
  SweepRunner runner(1);
  const auto square = [](size_t i) { return i * i; };
  const std::vector<size_t> expected = runner.Map(37, square);
  for (const unsigned shards : {1u, 2u, 3u, 8u, 64u}) {
    EXPECT_EQ(runner.MapSharded(37, shards, square), expected) << shards << " shards";
  }
}

TEST(SweepRunnerShardTest, ShardedMatchesSerialOnRealSimulations) {
  // Same contract as the thread pool: forked shards run identical deterministic
  // simulations, so the merged results are byte-identical to a serial sweep.
  const auto simulate = [](size_t i) {
    System sys(MachineConfig::Ppc604(133 + static_cast<uint32_t>(i)),
               OptimizationConfig::AllOptimizations());
    Kernel& kernel = sys.kernel();
    const TaskId t = kernel.CreateTask("t");
    kernel.Exec(t, ExecImage{.text_pages = 2, .data_pages = 24, .stack_pages = 2});
    kernel.SwitchTo(t);
    kernel.UserTouchRun(EffAddr(kUserDataBase), kPageSize, 24, AccessKind::kStore);
    return sys.counters().cycles;
  };
  SweepRunner runner(1);
  const std::vector<uint64_t> serial = runner.Map(8, simulate);
  const std::vector<uint64_t> sharded = runner.MapSharded(8, 3, simulate);
  EXPECT_EQ(serial, sharded);
}

TEST(SweepRunnerShardTest, DeadShardSurfacesAsError) {
#ifdef __unix__
  SweepRunner runner(1);
  EXPECT_THROW(runner.MapSharded(8, 2,
                                 [](size_t i) -> int {
                                   if (i == 5) {
                                     _exit(7);  // a shard crashing mid-sweep
                                   }
                                   return static_cast<int>(i);
                                 }),
               std::runtime_error);
#endif
}

TEST(SweepRunnerShardTest, SingleShardAndSingleItemRunInProcess) {
  // shards <= 1 (the PPCMM_SWEEP_SHARDS default) must not fork: side effects written by
  // the callback stay visible in this process.
  SweepRunner runner(1);
  int witnessed = 0;
  runner.MapSharded(4, 1, [&](size_t i) {
    ++witnessed;
    return static_cast<int>(i);
  });
  EXPECT_EQ(witnessed, 4);
  witnessed = 0;
  runner.MapSharded(1, 8, [&](size_t i) {
    ++witnessed;
    return static_cast<int>(i);
  });
  EXPECT_EQ(witnessed, 1);
}

TEST(SweepRunnerShardTest, DefaultShardsIsOneUnlessAskedFor) {
  // Fork-based sharding stays opt-in (PPCMM_SWEEP_SHARDS / --shards); the tests run with
  // the variable unset.
  if (std::getenv("PPCMM_SWEEP_SHARDS") == nullptr) {
    EXPECT_EQ(SweepRunner::DefaultShards(), 1u);
  } else {
    EXPECT_GE(SweepRunner::DefaultShards(), 1u);
  }
}

}  // namespace
}  // namespace ppcmm
