// Trace buffer tests: ring behaviour, event recording from the MMU/kernel paths.

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/sim/trace.h"

namespace ppcmm {
namespace {

TEST(TraceBufferTest, DisabledByDefault) {
  TraceBuffer trace(16);
  trace.Record(1, TraceEvent::kTlbMiss, 2, 3);
  EXPECT_EQ(trace.TotalRecorded(), 0u);
  EXPECT_TRUE(trace.Records().empty());
}

TEST(TraceBufferTest, RecordsInOrder) {
  TraceBuffer trace(16);
  trace.Enable();
  trace.Record(10, TraceEvent::kTlbMiss, 0x100);
  trace.Record(20, TraceEvent::kPageFault, 0x200);
  trace.Record(30, TraceEvent::kContextSwitch, 1, 2);
  const auto records = trace.Records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].cycle, 10u);
  EXPECT_EQ(records[0].event, TraceEvent::kTlbMiss);
  EXPECT_EQ(records[1].a, 0x200u);
  EXPECT_EQ(records[2].b, 2u);
  EXPECT_EQ(trace.CountOf(TraceEvent::kTlbMiss), 1u);
  EXPECT_EQ(trace.CountOf(TraceEvent::kSyscall), 0u);
}

TEST(TraceBufferTest, RingKeepsTheMostRecent) {
  TraceBuffer trace(4);
  trace.Enable();
  for (uint32_t i = 0; i < 10; ++i) {
    trace.Record(i, TraceEvent::kSyscall, i);
  }
  EXPECT_EQ(trace.TotalRecorded(), 10u);
  const auto records = trace.Records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().a, 6u);
  EXPECT_EQ(records.back().a, 9u);
}

TEST(TraceBufferTest, DumpAndClear) {
  TraceBuffer trace(8);
  trace.Enable();
  trace.Record(123, TraceEvent::kFlushContext, 7, 8);
  const std::string dump = trace.Dump();
  EXPECT_NE(dump.find("flush_context"), std::string::npos);
  EXPECT_NE(dump.find("123"), std::string::npos);
  trace.Clear();
  EXPECT_EQ(trace.TotalRecorded(), 0u);
  EXPECT_TRUE(trace.Records().empty());
}

TEST(TraceBufferTest, EveryEventHasAName) {
  for (uint32_t e = 0; e < kNumTraceEvents; ++e) {
    EXPECT_STRNE(TraceEventName(static_cast<TraceEvent>(e)), "unknown");
  }
}

TEST(TraceBufferTest, RecordsStampTheCurrentTask) {
  TraceBuffer trace(8);
  trace.Enable();
  trace.Record(1, TraceEvent::kTlbMiss, 0x100);
  trace.SetCurrentTask(5);
  trace.Record(2, TraceEvent::kPageFault, 0x200);
  const auto records = trace.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].task, 0u);
  EXPECT_EQ(records[1].task, 5u);
}

TEST(TraceIntegrationTest, KernelActivityProducesTheExpectedStream) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::OnlyLazyFlush(20));
  sys.machine().trace().Enable();
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  const TaskId b = kernel.CreateTask("b");
  kernel.Exec(a, ExecImage{});
  kernel.Exec(b, ExecImage{});
  kernel.SwitchTo(a);
  kernel.NullSyscall();
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);  // fault + tlb misses
  kernel.SwitchTo(b);
  const uint32_t start = kernel.Mmap(40);
  for (uint32_t i = 0; i < 40; ++i) {
    kernel.UserTouch(EffAddr::FromPage(start + i), AccessKind::kStore);
  }
  kernel.Munmap(start, 40);  // above the cutoff: a context flush
  kernel.RunIdle(Cycles(5000));

  TraceBuffer& trace = sys.machine().trace();
  EXPECT_GT(trace.CountOf(TraceEvent::kSyscall), 0u);
  EXPECT_GT(trace.CountOf(TraceEvent::kPageFault), 40u);
  EXPECT_GT(trace.CountOf(TraceEvent::kTlbMiss), 40u);
  EXPECT_GE(trace.CountOf(TraceEvent::kContextSwitch), 2u);
  EXPECT_GE(trace.CountOf(TraceEvent::kFlushContext), 1u);
  EXPECT_GE(trace.CountOf(TraceEvent::kIdleSlice), 1u);
  // Cycle stamps are monotonic.
  const auto records = trace.Records();
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].cycle, records[i].cycle);
  }
}

TEST(TraceIntegrationTest, DeferredDirtySchemeTracesUpdates) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  sys.machine().trace().Enable();
  Kernel& kernel = sys.kernel();
  const TaskId t = kernel.CreateTask("t");
  kernel.Exec(t, ExecImage{});
  kernel.SwitchTo(t);
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kLoad);
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  EXPECT_GE(sys.machine().trace().CountOf(TraceEvent::kDirtyBitUpdate), 1u);
}

}  // namespace
}  // namespace ppcmm
