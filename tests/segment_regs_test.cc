// Segment register tests: EA -> (VSID, page index) resolution and context-switch reloads.

#include <gtest/gtest.h>

#include "src/mmu/segment_regs.h"
#include "src/sim/check.h"

namespace ppcmm {
namespace {

TEST(SegmentRegsTest, ResolveUsesTopFourBits) {
  SegmentRegs regs;
  regs.Set(4, Vsid(0xABCDEF));
  const VirtPage vp = regs.Resolve(EffAddr(0x40012345));
  EXPECT_EQ(vp.vsid, Vsid(0xABCDEF));
  EXPECT_EQ(vp.page_index, 0x0012u);
}

TEST(SegmentRegsTest, SixteenIndependentRegisters) {
  SegmentRegs regs;
  for (uint32_t i = 0; i < kNumSegments; ++i) {
    regs.Set(i, Vsid(100 + i));
  }
  for (uint32_t i = 0; i < kNumSegments; ++i) {
    EXPECT_EQ(regs.Get(i), Vsid(100 + i));
    EXPECT_EQ(regs.Resolve(EffAddr(i << kSegmentShift)).vsid, Vsid(100 + i));
  }
}

TEST(SegmentRegsTest, LoadUserSegmentsPreservesKernelHalf) {
  SegmentRegs regs;
  for (uint32_t i = 0; i < kNumSegments; ++i) {
    regs.Set(i, Vsid(500 + i));
  }
  std::array<Vsid, kNumSegments> image{};
  for (uint32_t i = 0; i < kNumSegments; ++i) {
    image[i] = Vsid(900 + i);
  }
  regs.LoadUserSegments(image);
  for (uint32_t i = 0; i < kFirstKernelSegment; ++i) {
    EXPECT_EQ(regs.Get(i), Vsid(900 + i)) << "user segment " << i;
  }
  for (uint32_t i = kFirstKernelSegment; i < kNumSegments; ++i) {
    EXPECT_EQ(regs.Get(i), Vsid(500 + i)) << "kernel segment " << i;
  }
}

TEST(SegmentRegsTest, LoadAllReplacesEverything) {
  SegmentRegs regs;
  std::array<Vsid, kNumSegments> image{};
  for (uint32_t i = 0; i < kNumSegments; ++i) {
    image[i] = Vsid(7000 + i);
  }
  regs.LoadAll(image);
  for (uint32_t i = 0; i < kNumSegments; ++i) {
    EXPECT_EQ(regs.Get(i), Vsid(7000 + i));
  }
}

TEST(SegmentRegsTest, OutOfRangeIndexThrows) {
  SegmentRegs regs;
  EXPECT_THROW(regs.Get(16), CheckFailure);
  EXPECT_THROW(regs.Set(16, Vsid(1)), CheckFailure);
}

}  // namespace
}  // namespace ppcmm
