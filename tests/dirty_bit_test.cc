// Referenced/changed (R/C) bit maintenance tests (§7).
//
// Two schemes:
//   deferred (classic)  — a first store through a clean translation traps, setting the C
//                         bit in the HTAB entry and the dirty bit in the Linux PTE; eager
//                         flushes write accumulated C bits back before invalidating;
//   eager-at-load (§7)  — writable PTEs are marked changed when loaded into the HTAB, so
//                         "a TLB flush is actually a TLB invalidate". Lazy flushing REQUIRES
//                         this: zombie entries never get another chance to write back.

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"

namespace ppcmm {
namespace {

TaskId SpawnStd(Kernel& kernel) {
  const TaskId id = kernel.CreateTask("t");
  kernel.Exec(id, ExecImage{.text_pages = 4, .data_pages = 32, .stack_pages = 2});
  kernel.SwitchTo(id);
  return id;
}

TEST(DirtyBitTest, DeferredSchemeTrapsOnFirstStoreOnly) {
  OptimizationConfig config = OptimizationConfig::Baseline();
  ASSERT_FALSE(config.eager_dirty_marking);
  System sys(MachineConfig::Ppc604(185), config);
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);
  const EffAddr ea(kUserDataBase);

  // Demand-fault via a load so the fresh PTE is clean... a load on a writable anon VMA maps
  // the page writable but not dirty in this kernel? The fault handler sets dirty only for
  // write faults, so fault with a load first.
  kernel.UserTouch(ea, AccessKind::kLoad);
  const HwCounters before = sys.counters();
  kernel.UserTouch(ea, AccessKind::kStore);  // first store: the C-bit trap
  const HwCounters first = sys.counters().Diff(before);
  EXPECT_EQ(first.dirty_bit_updates, 1u);

  const HwCounters before2 = sys.counters();
  kernel.UserTouch(ea, AccessKind::kStore);  // second store: no trap
  kernel.UserTouch(ea + 64, AccessKind::kStore);
  EXPECT_EQ(sys.counters().Diff(before2).dirty_bit_updates, 0u);
}

TEST(DirtyBitTest, DeferredTrapMarksLinuxPteDirty) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel);
  const EffAddr ea(kUserDataBase);
  kernel.UserTouch(ea, AccessKind::kLoad);
  const auto clean = kernel.task(t).mm->page_table->LookupQuiet(ea);
  ASSERT_TRUE(clean.has_value());
  EXPECT_FALSE(clean->dirty);

  kernel.UserTouch(ea, AccessKind::kStore);
  const auto dirty = kernel.task(t).mm->page_table->LookupQuiet(ea);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_TRUE(dirty->dirty);
}

TEST(DirtyBitTest, EagerSchemeNeverTraps) {
  OptimizationConfig config = OptimizationConfig::Baseline();
  config.eager_dirty_marking = true;
  System sys(MachineConfig::Ppc604(185), config);
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);
  for (uint32_t p = 0; p < 16; ++p) {
    kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kLoad);
    kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kStore);
  }
  EXPECT_EQ(sys.counters().dirty_bit_updates, 0u);
}

TEST(DirtyBitTest, LazyFlushForcesEagerMarking) {
  // Even if the caller forgets to enable eager marking, lazy flushing must force it:
  // zombies cannot write their C bits back.
  OptimizationConfig config = OptimizationConfig::Baseline();
  config.lazy_context_flush = true;
  config.range_flush_cutoff = 20;
  config.eager_dirty_marking = false;  // deliberately inconsistent
  System sys(MachineConfig::Ppc604(185), config);
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kLoad);
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  EXPECT_EQ(sys.counters().dirty_bit_updates, 0u);
  EXPECT_TRUE(sys.mmu().policy().eager_dirty_marking);
}

TEST(DirtyBitTest, EagerFlushWritesAccumulatedCBitsBack) {
  // Deferred scheme: dirty a page whose Linux PTE is still clean (possible when the fault
  // was a load and the store's trap... the trap itself dirties the PTE, so instead verify
  // the flush path: invalidate the HTAB entry and confirm dirty survives in the tree.
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel);
  const uint32_t start = kernel.Mmap(4);
  kernel.UserTouch(EffAddr::FromPage(start), AccessKind::kLoad);
  kernel.UserTouch(EffAddr::FromPage(start), AccessKind::kStore);
  kernel.Munmap(start, 4);  // eager per-page flush, reading the C bits back
  // The page is unmapped now; what matters is that the flush path ran without losing state
  // and the remaining pages are consistent.
  EXPECT_EQ(kernel.task(t).mm->vmas.Find(start), std::nullopt);
}

TEST(DirtyBitTest, KernelStoresUseDeferredPathWithoutBats) {
  // Without BATs, kernel data stores go through the TLB and pay C-bit traps too — one more
  // cost the BAT mapping removes for free.
  System no_bat(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  System with_bat(MachineConfig::Ppc604(185), OptimizationConfig::OnlyBatMapping());
  for (System* sys : {&no_bat, &with_bat}) {
    Kernel& kernel = sys->kernel();
    SpawnStd(kernel);
    kernel.NullSyscall();  // kernel work includes stores to kernel data
  }
  EXPECT_GT(no_bat.counters().dirty_bit_updates, 0u);
  EXPECT_EQ(with_bat.counters().dirty_bit_updates, 0u);
}

TEST(DirtyBitTest, DeferredCostsMoreThanEagerOnStoreHeavyWork) {
  OptimizationConfig deferred = OptimizationConfig::Baseline();
  OptimizationConfig eager = OptimizationConfig::Baseline();
  eager.eager_dirty_marking = true;
  System sys_deferred(MachineConfig::Ppc604(185), deferred);
  System sys_eager(MachineConfig::Ppc604(185), eager);
  double times[2];
  int i = 0;
  for (System* sys : {&sys_deferred, &sys_eager}) {
    Kernel& kernel = sys->kernel();
    SpawnStd(kernel);
    for (uint32_t p = 0; p < 24; ++p) {
      kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kLoad);
    }
    times[i++] = sys->TimeMicros([&] {
      for (uint32_t p = 0; p < 24; ++p) {
        kernel.UserTouch(EffAddr(kUserDataBase + p * kPageSize), AccessKind::kStore);
      }
    });
  }
  EXPECT_GT(times[0], times[1]);
}

}  // namespace
}  // namespace ppcmm
