// Shared-memory segment tests: MAP_SHARED semantics across address spaces and fork.

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/sim/check.h"

namespace ppcmm {
namespace {

TaskId SpawnStd(Kernel& kernel, const char* name = "t") {
  const TaskId id = kernel.CreateTask(name);
  kernel.Exec(id, ExecImage{.text_pages = 4, .data_pages = 32, .stack_pages = 2});
  kernel.SwitchTo(id);
  return id;
}

TEST(ShmTest, CreateAttachWriteRead) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId a = SpawnStd(kernel, "a");
  const TaskId b = SpawnStd(kernel, "b");

  kernel.SwitchTo(a);
  const uint32_t shm = kernel.ShmCreate(4);
  const uint32_t start_a = kernel.ShmAttach(shm);
  kernel.UserTouch(EffAddr::FromPage(start_a, 0x10), AccessKind::kStore);
  const uint32_t frame_a =
      kernel.task(a).mm->page_table->LookupQuiet(EffAddr::FromPage(start_a))->frame;
  sys.machine().memory().Write32(PhysAddr::FromFrame(frame_a, 0x10), 0xCAFED00D);

  kernel.SwitchTo(b);
  const uint32_t start_b = kernel.ShmAttach(shm);
  kernel.UserTouch(EffAddr::FromPage(start_b, 0x10), AccessKind::kLoad);
  const uint32_t frame_b =
      kernel.task(b).mm->page_table->LookupQuiet(EffAddr::FromPage(start_b))->frame;
  EXPECT_EQ(frame_a, frame_b);  // the same physical frame, in two address spaces
  EXPECT_EQ(sys.machine().memory().Read32(PhysAddr::FromFrame(frame_b, 0x10)), 0xCAFED00Du);
  // And B can write it — shared mappings are never COW.
  kernel.UserTouch(EffAddr::FromPage(start_b, 0x20), AccessKind::kStore);
}

TEST(ShmTest, SegmentPagesStartZeroed) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);
  const uint32_t shm = kernel.ShmCreate(2);
  const uint32_t start = kernel.ShmAttach(shm);
  kernel.UserTouch(EffAddr::FromPage(start), AccessKind::kLoad);
  const uint32_t frame =
      kernel.task(kernel.current()).mm->page_table->LookupQuiet(EffAddr::FromPage(start))->frame;
  EXPECT_TRUE(sys.machine().memory().FrameIsZero(frame));
}

TEST(ShmTest, ForkSharesWithoutCow) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId parent = SpawnStd(kernel, "p");
  const uint32_t shm = kernel.ShmCreate(2);
  const uint32_t start = kernel.ShmAttach(shm);
  kernel.UserTouch(EffAddr::FromPage(start), AccessKind::kStore);
  const uint32_t frame =
      kernel.task(parent).mm->page_table->LookupQuiet(EffAddr::FromPage(start))->frame;

  const TaskId child = kernel.Fork(parent);
  kernel.SwitchTo(child);
  // The child's store lands in the same frame — no COW fault, no copy.
  const HwCounters before = sys.counters();
  kernel.UserTouch(EffAddr::FromPage(start), AccessKind::kStore);
  EXPECT_EQ(sys.counters().Diff(before).page_faults, 0u);
  const auto child_pte = kernel.task(child).mm->page_table->LookupQuiet(EffAddr::FromPage(start));
  EXPECT_EQ(child_pte->frame, frame);
  EXPECT_TRUE(child_pte->writable);
  // The parent's anon heap is still COW-protected as usual.
  const auto parent_heap = kernel.task(parent).mm->page_table->LookupQuiet(
      EffAddr(kUserDataBase));
  kernel.Exit(child);
  kernel.Exit(parent);
  (void)parent_heap;
}

TEST(ShmTest, DetachReleasesMappingButKeepsSegment) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);
  const uint32_t shm = kernel.ShmCreate(4);
  const uint32_t start = kernel.ShmAttach(shm);
  kernel.UserTouch(EffAddr::FromPage(start, 8), AccessKind::kStore);
  const uint32_t frame = kernel.task(kernel.current())
                             .mm->page_table->LookupQuiet(EffAddr::FromPage(start))
                             ->frame;
  sys.machine().memory().Write32(PhysAddr::FromFrame(frame, 8), 0x12345678);

  kernel.ShmDetach(start, 4);
  EXPECT_THROW(kernel.UserTouch(EffAddr::FromPage(start), AccessKind::kLoad), CheckFailure);

  // Re-attach: the contents survived the detach (the segment owns the frames).
  const uint32_t start2 = kernel.ShmAttach(shm);
  kernel.UserTouch(EffAddr::FromPage(start2), AccessKind::kLoad);
  const uint32_t frame2 = kernel.task(kernel.current())
                              .mm->page_table->LookupQuiet(EffAddr::FromPage(start2))
                              ->frame;
  EXPECT_EQ(frame2, frame);
  EXPECT_EQ(sys.machine().memory().Read32(PhysAddr::FromFrame(frame2, 8)), 0x12345678u);
}

TEST(ShmTest, DestroyReturnsMemory) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);
  const uint32_t free_before = kernel.allocator().FreeCount();
  const uint32_t shm = kernel.ShmCreate(16);
  EXPECT_EQ(kernel.allocator().FreeCount(), free_before - 16);
  const uint32_t start = kernel.ShmAttach(shm);
  kernel.UserTouch(EffAddr::FromPage(start), AccessKind::kStore);
  kernel.ShmDetach(start, 16);
  kernel.ShmDestroy(shm);
  // One frame short: faulting the mapping allocated a PTE directory page for the mmap
  // region, which lives until the task exits (page tables are per-task, not per-mapping).
  EXPECT_EQ(kernel.allocator().FreeCount(), free_before - 1);
  EXPECT_THROW(kernel.ShmAttach(shm), CheckFailure);
  // After the task exits, everything is back — plus the task's own PGD frame, which was
  // already allocated when free_before was snapshotted.
  const TaskId t = kernel.current();
  kernel.Exit(t);
  EXPECT_EQ(kernel.allocator().FreeCount(), free_before + 1);
}

TEST(ShmTest, DestroyWhileAttachedThrows) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);
  const uint32_t shm = kernel.ShmCreate(2);
  kernel.ShmAttach(shm);
  EXPECT_THROW(kernel.ShmDestroy(shm), CheckFailure);
}

TEST(ShmTest, LazyFlushKeepsSharedMappingsCoherent) {
  // A context flush (mmap cutoff) must not leave stale shm translations behind.
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel);
  const uint32_t shm = kernel.ShmCreate(2);
  const uint32_t start = kernel.ShmAttach(shm);
  kernel.UserTouch(EffAddr::FromPage(start), AccessKind::kStore);

  // Trigger a whole-context flush via a big munmap.
  const uint32_t big = kernel.Mmap(64);
  kernel.Munmap(big, 64);
  // The shm mapping still resolves to the segment's frame.
  kernel.UserTouch(EffAddr::FromPage(start, 4), AccessKind::kLoad);
  const auto pa = sys.mmu().Probe(EffAddr::FromPage(start), AccessKind::kLoad);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(pa->PageFrame(),
            kernel.task(t).mm->page_table->LookupQuiet(EffAddr::FromPage(start))->frame);
}

}  // namespace
}  // namespace ppcmm
