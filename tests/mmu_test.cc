// MMU translation-engine tests with a scripted PteBackingSource: BAT priority, TLB refill by
// each reload strategy, cost accounting, fault signalling, and kernel high-water tracking.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/mmu/mmu.h"
#include "src/sim/machine.h"

namespace ppcmm {
namespace {

// A scripted backing source: a map from effective page number to walk info. Charges the
// paper's loads so reload costs are realistic.
class FakeBacking : public PteBackingSource {
 public:
  void MapPage(uint32_t eff_page, uint32_t frame, bool writable = true) {
    pages_[eff_page] = PteWalkInfo{.frame = frame, .writable = writable,
                                   .cache_inhibited = false};
  }
  void UnmapPage(uint32_t eff_page) { pages_.erase(eff_page); }

  std::optional<PteWalkInfo> WalkPte(EffAddr ea, MemCharger& charger) override {
    // Three loads, as in §6.1: task struct, PGD entry, PTE entry.
    charger.Charge(PhysAddr(0x1A0000), false);
    charger.Charge(PhysAddr(0x1B0000), false);
    charger.Charge(PhysAddr(0x1B1000), false);
    ++walks_;
    auto it = pages_.find(ea.EffPageNumber());
    if (it == pages_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  void MarkPteDirty(EffAddr ea, MemCharger& charger) override {
    charger.Charge(PhysAddr(0x1B1000), true);
    dirtied_.insert(ea.EffPageNumber());
  }

  bool IsDirty(uint32_t eff_page) const { return dirtied_.contains(eff_page); }
  uint64_t walks() const { return walks_; }

 private:
  std::map<uint32_t, PteWalkInfo> pages_;
  std::set<uint32_t> dirtied_;
  uint64_t walks_ = 0;
};

struct MmuFixture {
  explicit MmuFixture(ReloadStrategy strategy, bool optimized = true,
                      bool cache_page_tables = true)
      : machine(strategy == ReloadStrategy::kHardwareHtabWalk ? MachineConfig::Ppc604(185)
                                                              : MachineConfig::Ppc603(180)),
        mmu(machine,
            MmuPolicy{.strategy = strategy,
                      .optimized_handlers = optimized,
                      .cache_page_tables = cache_page_tables},
            PhysAddr(0x180000)) {
    mmu.SetBacking(&backing);
    // One user segment with a known VSID.
    mmu.segments().Set(0, Vsid(0x1234));
    mmu.segments().Set(1, Vsid(0x1235));
  }

  Machine machine;
  Mmu mmu;
  FakeBacking backing;
};

TEST(MmuTest, BatHitBypassesTlbAndHtab) {
  MmuFixture f(ReloadStrategy::kHardwareHtabWalk);
  f.mmu.dbats().Set(0, BatEntry{.valid = true,
                                .eff_base = 0xC0000000,
                                .block_bytes = 32 * 1024 * 1024,
                                .phys_base = 0,
                                .cache_inhibited = false,
                                .supervisor_only = true});
  EXPECT_EQ(f.mmu.Access(EffAddr(0xC0001000), AccessKind::kLoad), AccessOutcome::kOk);
  EXPECT_EQ(f.machine.counters().bat_translations, 1u);
  EXPECT_EQ(f.machine.counters().dtlb_accesses, 0u);
  EXPECT_EQ(f.machine.counters().htab_searches, 0u);
}

TEST(MmuTest, HardwareWalkMissFillsHtabThenTlb) {
  MmuFixture f(ReloadStrategy::kHardwareHtabWalk);
  f.backing.MapPage(0x00010, 0x500);
  EXPECT_EQ(f.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad), AccessOutcome::kOk);
  const HwCounters& c = f.machine.counters();
  EXPECT_EQ(c.dtlb_misses, 1u);
  EXPECT_EQ(c.htab_misses, 1u);   // first walk missed
  EXPECT_EQ(c.htab_reloads, 1u);  // software inserted the PTE
  EXPECT_GE(c.htab_hits, 1u);     // hardware retry found it
  EXPECT_EQ(f.backing.walks(), 1u);

  // Second access: pure TLB hit — no new walks, searches or misses.
  const HwCounters before = f.machine.counters();
  EXPECT_EQ(f.mmu.Access(EffAddr(0x00010004), AccessKind::kLoad), AccessOutcome::kOk);
  const HwCounters delta = f.machine.counters().Diff(before);
  EXPECT_EQ(delta.dtlb_misses, 0u);
  EXPECT_EQ(delta.htab_searches, 0u);
  EXPECT_EQ(f.backing.walks(), 1u);
}

TEST(MmuTest, TlbEvictionRefillsFromHtabWithoutTreeWalk) {
  MmuFixture f(ReloadStrategy::kHardwareHtabWalk);
  // 128-entry 2-way DTLB = 64 sets: page indices i and i+64 (and +128...) share a set.
  // Map three pages in the same set of segment 0.
  f.backing.MapPage(0x00000, 0x500);
  f.backing.MapPage(0x00040, 0x501);
  f.backing.MapPage(0x00080, 0x502);
  f.mmu.Access(EffAddr::FromPage(0x00000), AccessKind::kLoad);
  f.mmu.Access(EffAddr::FromPage(0x00040), AccessKind::kLoad);
  f.mmu.Access(EffAddr::FromPage(0x00080), AccessKind::kLoad);  // evicts one of the others
  const uint64_t walks_before = f.backing.walks();
  // Touch the first page again: if it was evicted, the refill must come from the HTAB
  // (hardware walk) without consulting the Linux tree.
  f.mmu.Access(EffAddr::FromPage(0x00000), AccessKind::kLoad);
  f.mmu.Access(EffAddr::FromPage(0x00040), AccessKind::kLoad);
  EXPECT_EQ(f.backing.walks(), walks_before);
}

TEST(MmuTest, SoftwareHtabStrategyChargesMissInterrupt) {
  MmuFixture f(ReloadStrategy::kSoftwareHtab);
  f.backing.MapPage(0x00010, 0x500);
  const Cycles before = f.machine.Now();
  f.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad);
  const uint64_t cost = (f.machine.Now() - before).value;
  // At least the 32-cycle interrupt plus handler body plus the 16-probe search.
  EXPECT_GE(cost, 32u + 16u);
  EXPECT_EQ(f.machine.counters().htab_searches, 1u);
  EXPECT_EQ(f.machine.counters().htab_reloads, 1u);
}

TEST(MmuTest, SoftwareDirectStrategyNeverTouchesHtab) {
  MmuFixture f(ReloadStrategy::kSoftwareDirect);
  f.backing.MapPage(0x00010, 0x500);
  f.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad);
  f.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad);
  const HwCounters& c = f.machine.counters();
  EXPECT_EQ(c.htab_searches, 0u);
  EXPECT_EQ(c.htab_reloads, 0u);
  EXPECT_EQ(f.mmu.htab().ValidCount(), 0u);
  EXPECT_EQ(c.pte_tree_walks, 1u);
}

TEST(MmuTest, DirectReloadIsCheaperThanHtabEmulation) {
  // §6.2's claim, at the cost-model level: the same miss costs less without the HTAB.
  MmuFixture emulating(ReloadStrategy::kSoftwareHtab);
  MmuFixture direct(ReloadStrategy::kSoftwareDirect);
  emulating.backing.MapPage(0x00010, 0x500);
  direct.backing.MapPage(0x00010, 0x500);
  const double emulating_cost = [&] {
    const Cycles before = emulating.machine.Now();
    emulating.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad);
    return static_cast<double>((emulating.machine.Now() - before).value);
  }();
  const double direct_cost = [&] {
    const Cycles before = direct.machine.Now();
    direct.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad);
    return static_cast<double>((direct.machine.Now() - before).value);
  }();
  EXPECT_LT(direct_cost, emulating_cost);
}

TEST(MmuTest, UnoptimizedHandlersCostMore) {
  MmuFixture fast(ReloadStrategy::kSoftwareDirect, /*optimized=*/true);
  MmuFixture slow(ReloadStrategy::kSoftwareDirect, /*optimized=*/false);
  fast.backing.MapPage(0x00010, 0x500);
  slow.backing.MapPage(0x00010, 0x500);
  const Cycles f0 = fast.machine.Now();
  fast.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad);
  const uint64_t fast_cost = (fast.machine.Now() - f0).value;
  const Cycles s0 = slow.machine.Now();
  slow.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad);
  const uint64_t slow_cost = (slow.machine.Now() - s0).value;
  EXPECT_GT(slow_cost, fast_cost + 100);
}

TEST(MmuTest, PageFaultInstallsNothing) {
  MmuFixture f(ReloadStrategy::kHardwareHtabWalk);
  EXPECT_EQ(f.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad), AccessOutcome::kPageFault);
  EXPECT_EQ(f.mmu.htab().ValidCount(), 0u);
  EXPECT_EQ(f.mmu.dtlb().ValidCount(), 0u);
  // Repairing the tree and retrying succeeds.
  f.backing.MapPage(0x00010, 0x500);
  EXPECT_EQ(f.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad), AccessOutcome::kOk);
}

TEST(MmuTest, ProtectionFaultOnStoreToReadOnlyPage) {
  MmuFixture f(ReloadStrategy::kHardwareHtabWalk);
  f.backing.MapPage(0x00010, 0x500, /*writable=*/false);
  EXPECT_EQ(f.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad), AccessOutcome::kOk);
  EXPECT_EQ(f.mmu.Access(EffAddr(0x00010000), AccessKind::kStore),
            AccessOutcome::kProtectionFault);
}

TEST(MmuTest, InstructionFetchUsesItlb) {
  MmuFixture f(ReloadStrategy::kHardwareHtabWalk);
  f.backing.MapPage(0x00010, 0x500);
  f.mmu.Access(EffAddr(0x00010000), AccessKind::kInstructionFetch);
  EXPECT_EQ(f.machine.counters().itlb_misses, 1u);
  EXPECT_EQ(f.machine.counters().dtlb_misses, 0u);
  EXPECT_EQ(f.mmu.itlb().ValidCount(), 1u);
  EXPECT_EQ(f.mmu.dtlb().ValidCount(), 0u);
}

TEST(MmuTest, KernelHighwaterTracksKernelTlbEntries) {
  MmuFixture f(ReloadStrategy::kHardwareHtabWalk);
  // Map kernel pages in the backing (no BATs): they must occupy TLB entries.
  f.mmu.segments().Set(12, Vsid(0xFFFFF0));
  f.backing.MapPage(0xC0000, 0x000);
  f.backing.MapPage(0xC0001, 0x001);
  f.mmu.Access(EffAddr(0xC0000000), AccessKind::kLoad);
  f.mmu.Access(EffAddr(0xC0001000), AccessKind::kLoad);
  EXPECT_EQ(f.machine.counters().kernel_tlb_highwater, 2u);
  EXPECT_EQ(f.mmu.dtlb().KernelEntryCount(), 2u);
}

TEST(MmuTest, TlbInvalidateVsidRemovesOnlyThatAddressSpace) {
  MmuFixture f(ReloadStrategy::kHardwareHtabWalk);
  f.backing.MapPage(0x00010, 0x500);
  f.backing.MapPage(0x10010, 0x501);  // segment 1, different VSID
  f.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad);
  f.mmu.Access(EffAddr(0x10010000), AccessKind::kLoad);
  EXPECT_EQ(f.mmu.TlbInvalidateVsid(Vsid(0x1234)), 1u);
  EXPECT_EQ(f.mmu.dtlb().ValidCount(), 1u);
}

TEST(MmuTest, ProbeDoesNotChargeOrMutate) {
  MmuFixture f(ReloadStrategy::kHardwareHtabWalk);
  f.backing.MapPage(0x00010, 0x500);
  const Cycles before = f.machine.Now();
  const auto pa = f.mmu.Probe(EffAddr(0x00010123), AccessKind::kLoad);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(pa->value, PhysAddr::FromFrame(0x500, 0x123).value);
  EXPECT_EQ(f.machine.Now(), before);
  EXPECT_EQ(f.mmu.dtlb().ValidCount(), 0u);
  EXPECT_FALSE(f.mmu.Probe(EffAddr(0x00020000), AccessKind::kLoad).has_value());
}

TEST(MmuTest, UncachedPageTablesKeepHtabTrafficOutOfDcache) {
  MmuFixture cached(ReloadStrategy::kHardwareHtabWalk, true, /*cache_page_tables=*/true);
  MmuFixture uncached(ReloadStrategy::kHardwareHtabWalk, true, /*cache_page_tables=*/false);
  cached.backing.MapPage(0x00010, 0x500);
  uncached.backing.MapPage(0x00010, 0x500);
  cached.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad);
  uncached.mmu.Access(EffAddr(0x00010000), AccessKind::kLoad);
  // The cached variant allocated data-cache lines for HTAB/PTE traffic; the uncached one
  // only has the payload's single line.
  EXPECT_GT(cached.machine.dcache().ValidLineCount(),
            uncached.machine.dcache().ValidLineCount());
  EXPECT_GT(uncached.machine.dcache().stats().uncached_accesses, 0u);
}

}  // namespace
}  // namespace ppcmm
