// Cross-cutting property tests, parameterized over machine models and optimization presets:
//
//   * translation consistency — after any operation mix, every present PTE translates to
//     exactly the frame the Linux tree records, through any cached path (TLB, HTAB);
//   * determinism — identical seeds produce identical cycle counts and counters;
//   * memory conservation — exiting every task returns the allocator to its start state;
//   * zombie safety — no live context ever resolves through a retired VSID.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/sim/rng.h"

namespace ppcmm {
namespace {

struct PresetCase {
  std::string name;
  OptimizationConfig config;
};

std::vector<PresetCase> AllPresets() {
  return {
      {"baseline", OptimizationConfig::Baseline()},
      {"bat", OptimizationConfig::OnlyBatMapping()},
      {"scatter", OptimizationConfig::OnlyTunedScatter()},
      {"fast_handlers", OptimizationConfig::OnlyFastHandlers()},
      {"direct_reload", OptimizationConfig::OnlyDirectReload()},
      {"lazy_flush", OptimizationConfig::OnlyLazyFlush(20)},
      {"idle_reclaim", OptimizationConfig::OnlyIdleReclaim()},
      {"uncached_pt", OptimizationConfig::OnlyUncachedPageTables()},
      {"idle_zero", OptimizationConfig::OnlyIdleZero(IdleZeroPolicy::kUncachedWithList)},
      {"all", OptimizationConfig::AllOptimizations()},
      {"all_uncached_pt", OptimizationConfig::AllPlusUncachedPageTables()},
      {"all_preloads",
       [] {
         OptimizationConfig c = OptimizationConfig::AllOptimizations();
         c.cache_preload_hints = true;
         return c;
       }()},
      {"all_fb_bat",
       [] {
         OptimizationConfig c = OptimizationConfig::AllOptimizations();
         c.framebuffer_bat = true;
         return c;
       }()},
      {"eager_dirty_only",
       [] {
         OptimizationConfig c = OptimizationConfig::Baseline();
         c.eager_dirty_marking = true;
         return c;
       }()},
  };
}

using CaseParam = std::tuple<int /*preset index*/, int /*cpu: 0=604, 1=603*/>;

class PropertySweep : public ::testing::TestWithParam<CaseParam> {
 protected:
  MachineConfig Machine() const {
    return std::get<1>(GetParam()) == 0 ? MachineConfig::Ppc604(185)
                                        : MachineConfig::Ppc603(180);
  }
  OptimizationConfig Config() const { return AllPresets()[std::get<0>(GetParam())].config; }
};

// Drives a random but deterministic mix of kernel operations.
void DriveWorkload(System& sys, uint64_t seed, int steps) {
  Kernel& kernel = sys.kernel();
  Rng rng(seed);
  std::vector<TaskId> tasks;
  std::vector<std::pair<uint32_t, uint32_t>> live_maps;  // (start, pages)

  auto spawn = [&] {
    // Built with += rather than operator+: GCC 12's -Wrestrict false-fires on the
    // inlined "literal + to_string" concatenation under -O2.
    std::string name = "w";
    name += std::to_string(tasks.size());
    const TaskId id = kernel.CreateTask(name);
    kernel.Exec(id, ExecImage{.text_pages = 8, .data_pages = 48, .stack_pages = 4});
    kernel.SwitchTo(id);
    tasks.push_back(id);
  };
  spawn();
  spawn();

  for (int i = 0; i < steps; ++i) {
    switch (rng.NextBelow(8)) {
      case 0:
        kernel.NullSyscall();
        break;
      case 1:
        kernel.SwitchTo(tasks[rng.NextBelow(tasks.size())]);
        break;
      case 2: {
        const uint32_t offset = static_cast<uint32_t>(rng.NextBelow(40)) * kPageSize;
        kernel.UserTouch(EffAddr(kUserDataBase + offset),
                         rng.Chance(1, 2) ? AccessKind::kStore : AccessKind::kLoad);
        break;
      }
      case 3: {
        const uint32_t pages = 8 + static_cast<uint32_t>(rng.NextBelow(40));
        const uint32_t start = kernel.Mmap(pages);
        for (uint32_t p = 0; p < pages; p += 3) {
          kernel.UserTouch(EffAddr::FromPage(start + p), AccessKind::kStore);
        }
        live_maps.emplace_back(start, pages);
        break;
      }
      case 4:
        if (!live_maps.empty()) {
          const size_t pick = rng.NextBelow(live_maps.size());
          // Unmapping belongs to whoever mapped it; in this driver all maps are made by the
          // current task, so only unmap when it still exists. To keep it simple the driver
          // never exits a task that holds maps; maps are unmapped by the task that made
          // them because we only mmap/munmap on the current task between switches.
          kernel.Munmap(live_maps[pick].first, live_maps[pick].second);
          live_maps.erase(live_maps.begin() + static_cast<long>(pick));
        }
        break;
      case 5:
        kernel.UserExecute(64);
        break;
      case 6:
        kernel.RunIdle(Cycles(2000));
        break;
      case 7: {
        const TaskId child = kernel.Fork(kernel.current());
        kernel.SwitchTo(child);
        kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
        kernel.Exit(child);
        kernel.SwitchTo(tasks[0]);
        live_maps.clear();  // maps belonged to various tasks; stop tracking across forks
        break;
      }
    }
  }
  for (const TaskId id : tasks) {
    kernel.Exit(id);
  }
}

TEST_P(PropertySweep, TranslationConsistency) {
  System sys(Machine(), Config());
  Kernel& kernel = sys.kernel();
  const TaskId t = kernel.CreateTask("t");
  kernel.Exec(t, ExecImage{.text_pages = 8, .data_pages = 64, .stack_pages = 4});
  kernel.SwitchTo(t);
  Rng rng(77);
  for (int i = 0; i < 400; ++i) {
    const uint32_t offset = static_cast<uint32_t>(rng.NextBelow(60)) * kPageSize +
                            static_cast<uint32_t>(rng.NextBelow(64)) * 64;
    const EffAddr ea(kUserDataBase + offset);
    kernel.UserTouch(ea, rng.Chance(1, 2) ? AccessKind::kStore : AccessKind::kLoad);
    // Whatever path served the access, the reachable physical page must be what the Linux
    // tree says.
    const auto pte = kernel.task(t).mm->page_table->LookupQuiet(ea);
    ASSERT_TRUE(pte.has_value() && pte->present);
    const auto pa = sys.mmu().Probe(ea, AccessKind::kLoad);
    ASSERT_TRUE(pa.has_value());
    ASSERT_EQ(pa->PageFrame(), pte->frame) << "stale translation at 0x" << std::hex << ea.value;
  }
  kernel.Exit(t);
}

// tlbia, tlbie and framebuffer-BAT rewrites thrown into the middle of a touch stream must
// be architecturally invisible: after every single operation, every reachable page still
// translates to exactly the frame the Linux tree records, and the aperture reaches the
// same physical frames through the BAT as through PTEs.
TEST_P(PropertySweep, TlbiaAndBatRewriteConsistency) {
  System sys(Machine(), Config());
  Kernel& kernel = sys.kernel();
  const TaskId t = kernel.CreateTask("t");
  kernel.Exec(t, ExecImage{.text_pages = 8, .data_pages = 48, .stack_pages = 4});
  kernel.SwitchTo(t);
  const uint32_t fb_start = kernel.MapFramebuffer();
  const uint32_t fb_first_frame = kernel.FramebufferFirstFrame();
  Rng rng(515);
  bool bat_on = kernel.FramebufferBatActive();

  const auto assert_consistent = [&](EffAddr ea) {
    // Re-touch first: after a tlbia/tlbie/BAT rewrite the access must transparently
    // re-fault or reload (a framebuffer page previously served by the BAT has no PTE
    // until this touch installs one).
    kernel.UserTouch(ea, AccessKind::kLoad);
    const auto pa = sys.mmu().Probe(ea, AccessKind::kLoad);
    ASSERT_TRUE(pa.has_value()) << "unreachable at 0x" << std::hex << ea.value;
    if (ea.EffPageNumber() >= fb_start && ea.EffPageNumber() < fb_start + 512) {
      ASSERT_EQ(pa->PageFrame(), fb_first_frame + (ea.EffPageNumber() - fb_start))
          << "framebuffer aperture mistranslated at 0x" << std::hex << ea.value;
      if (bat_on) {
        return;  // BAT path: no PTE required
      }
    }
    const auto pte = kernel.task(t).mm->page_table->LookupQuiet(ea);
    ASSERT_TRUE(pte.has_value() && pte->present);
    ASSERT_EQ(pa->PageFrame(), pte->frame) << "stale translation at 0x" << std::hex << ea.value;
  };

  EffAddr last_touched(kUserDataBase);
  for (int i = 0; i < 500; ++i) {
    switch (rng.NextBelow(6)) {
      case 0:
      case 1: {  // ordinary data touch
        const uint32_t offset = static_cast<uint32_t>(rng.NextBelow(44)) * kPageSize;
        last_touched = EffAddr(kUserDataBase + offset);
        kernel.UserTouch(last_touched,
                         rng.Chance(1, 2) ? AccessKind::kStore : AccessKind::kLoad);
        break;
      }
      case 2: {  // framebuffer touch: BAT path or PTE path depending on the rewrites below
        const uint32_t page = fb_start + static_cast<uint32_t>(rng.NextBelow(512));
        last_touched = EffAddr::FromPage(page);
        kernel.UserTouch(last_touched,
                         rng.Chance(1, 2) ? AccessKind::kStore : AccessKind::kLoad);
        break;
      }
      case 3:  // BAT rewrite mid-stream, both directions
        bat_on = !bat_on;
        kernel.SetFramebufferBat(bat_on);
        ASSERT_EQ(kernel.FramebufferBatActive(), bat_on);
        break;
      case 4:  // tlbie the page we just used
        sys.mmu().TlbInvalidatePage(last_touched);
        break;
      case 5:  // wipe both TLBs outright
        sys.mmu().TlbInvalidateAll();
        break;
    }
    assert_consistent(last_touched);
  }
  kernel.Exit(t);
}

TEST_P(PropertySweep, DeterministicReplay) {
  System a(Machine(), Config());
  System b(Machine(), Config());
  DriveWorkload(a, 4242, 300);
  DriveWorkload(b, 4242, 300);
  EXPECT_EQ(a.counters().cycles, b.counters().cycles);
  EXPECT_EQ(a.counters().dtlb_misses, b.counters().dtlb_misses);
  EXPECT_EQ(a.counters().htab_reloads, b.counters().htab_reloads);
  EXPECT_EQ(a.counters().page_faults, b.counters().page_faults);
  EXPECT_EQ(a.counters().htab_evicts, b.counters().htab_evicts);
}

TEST_P(PropertySweep, MemoryConservation) {
  System sys(Machine(), Config());
  Kernel& kernel = sys.kernel();
  const uint32_t free_before = kernel.allocator().FreeCount();
  DriveWorkload(sys, 1717, 250);
  EXPECT_EQ(kernel.TaskCount(), 0u);
  // The pre-zeroed list may legitimately hold pages; everything else must be back.
  EXPECT_EQ(kernel.allocator().FreeCount() + kernel.mem().PrezeroedCount(), free_before);
}

TEST_P(PropertySweep, ZombieVsidsNeverResolve) {
  System sys(Machine(), Config());
  Kernel& kernel = sys.kernel();
  // Cycle many short-lived tasks; after each exit, the retired VSIDs must be dead.
  for (int i = 0; i < 30; ++i) {
    const TaskId t = kernel.CreateTask("z");
    kernel.Exec(t, ExecImage{.text_pages = 4, .data_pages = 16, .stack_pages = 2});
    kernel.SwitchTo(t);
    kernel.UserTouchRange(EffAddr(kUserDataBase), 8 * kPageSize, kPageSize,
                          AccessKind::kStore);
    const ContextId ctx = kernel.task(t).mm->context;
    kernel.Exit(t);
    for (uint32_t seg = 0; seg < kFirstKernelSegment; ++seg) {
      EXPECT_FALSE(kernel.vsids().IsLive(kernel.vsids().UserVsid(ctx, seg)));
    }
  }
}

std::string CaseName(const ::testing::TestParamInfo<CaseParam>& info) {
  return AllPresets()[std::get<0>(info.param)].name +
         (std::get<1>(info.param) == 0 ? "_604" : "_603");
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, PropertySweep,
                         ::testing::Combine(::testing::Range(0, 14),
                                            ::testing::Values(0, 1)),
                         CaseName);

}  // namespace
}  // namespace ppcmm
