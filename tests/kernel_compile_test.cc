// Kernel-compile workload tests: the build runs to completion, produces the full activity
// mix, and cleans up after itself.

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/workloads/kernel_compile.h"

namespace ppcmm {
namespace {

KernelCompileConfig TinyBuild() {
  KernelCompileConfig c;
  c.compilation_units = 4;
  c.cc1_text_pages = 24;
  c.working_set_pages = 48;
  c.shared_lib_pages = 40;
  c.compute_loops = 3;
  return c;
}

TEST(KernelCompileTest, RunsToCompletionWithFullActivityMix) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  const KernelCompileResult r = RunKernelCompile(sys, TinyBuild());
  EXPECT_EQ(r.units, 4u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.counters.syscalls, 0u);
  EXPECT_GT(r.counters.context_switches, 0u);
  EXPECT_GT(r.counters.page_faults, 0u);
  EXPECT_GT(r.counters.dtlb_misses, 0u);
  EXPECT_GT(r.counters.idle_invocations, 0u);
  EXPECT_GT(r.counters.tlb_context_flushes + r.counters.tlb_page_flushes, 0u);
}

TEST(KernelCompileTest, CleansUpTasksAndMemory) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::Baseline());
  Kernel& kernel = sys.kernel();
  const uint32_t free_before = kernel.allocator().FreeCount();
  RunKernelCompile(sys, TinyBuild());
  EXPECT_EQ(kernel.TaskCount(), 0u);
  // The cc1/make images stay in the page cache; everything else must be released.
  const uint32_t cached_pages = 24 + 8;
  EXPECT_GE(kernel.allocator().FreeCount() + cached_pages + 8, free_before);
}

TEST(KernelCompileTest, DeterministicForFixedSeed) {
  const KernelCompileConfig config = TinyBuild();
  System a(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  System b(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  const KernelCompileResult ra = RunKernelCompile(a, config);
  const KernelCompileResult rb = RunKernelCompile(b, config);
  EXPECT_EQ(ra.counters.cycles, rb.counters.cycles);
  EXPECT_EQ(ra.counters.dtlb_misses, rb.counters.dtlb_misses);
  EXPECT_EQ(ra.counters.page_faults, rb.counters.page_faults);
}

TEST(KernelCompileTest, OptimizedKernelCompilesFaster) {
  // The paper's headline: the kernel compile drops from 10 to 8 minutes with BATs alone,
  // and further with the full set. We assert the aggregate ordering.
  const KernelCompileConfig config = TinyBuild();
  System base(MachineConfig::Ppc604(133), OptimizationConfig::Baseline());
  System opt(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
  const KernelCompileResult rb = RunKernelCompile(base, config);
  const KernelCompileResult ro = RunKernelCompile(opt, config);
  EXPECT_LT(ro.seconds, rb.seconds);
}

}  // namespace
}  // namespace ppcmm
