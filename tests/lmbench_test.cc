// LmBench driver tests: every test produces sane positive numbers, and the headline
// orderings from the paper hold (optimized beats baseline on every point).

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/workloads/lmbench.h"

namespace ppcmm {
namespace {

LmBenchParams QuickParams() {
  LmBenchParams p;
  p.syscall_iters = 100;
  p.ctxsw_passes = 20;
  p.pipe_latency_iters = 40;
  p.pipe_bandwidth_bytes = 256 * 1024;
  p.file_pages = 64;
  p.file_reread_iters = 2;
  p.mmap_pages = 48;
  p.mmap_iters = 6;
  p.proc_start_iters = 4;
  return p;
}

TEST(LmBenchTest, AllResultsPositiveAndFinite) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  LmBench suite(sys, QuickParams());
  const LmBenchResult r = suite.RunAll();
  EXPECT_GT(r.null_syscall_us, 0);
  EXPECT_GT(r.ctxsw_2p_us, 0);
  EXPECT_GT(r.ctxsw_8p_us, 0);
  EXPECT_GT(r.pipe_latency_us, 0);
  EXPECT_GT(r.pipe_bandwidth_mbs, 0);
  EXPECT_GT(r.file_reread_mbs, 0);
  EXPECT_GT(r.mmap_latency_us, 0);
  EXPECT_GT(r.process_start_us, 0);
  // Magnitude sanity: nothing absurd.
  EXPECT_LT(r.null_syscall_us, 100);
  EXPECT_LT(r.pipe_bandwidth_mbs, 2000);
}

TEST(LmBenchTest, OptimizedBeatsBaselineEverywhere) {
  System base(MachineConfig::Ppc604(133), OptimizationConfig::Baseline());
  System opt(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
  LmBench base_suite(base, QuickParams());
  LmBench opt_suite(opt, QuickParams());
  const LmBenchResult rb = base_suite.RunAll();
  const LmBenchResult ro = opt_suite.RunAll();
  EXPECT_LT(ro.null_syscall_us, rb.null_syscall_us);
  EXPECT_LT(ro.ctxsw_2p_us, rb.ctxsw_2p_us);
  EXPECT_LT(ro.pipe_latency_us, rb.pipe_latency_us);
  EXPECT_GT(ro.pipe_bandwidth_mbs, rb.pipe_bandwidth_mbs);
  EXPECT_LT(ro.mmap_latency_us, rb.mmap_latency_us);
  EXPECT_LT(ro.process_start_us, rb.process_start_us);
}

TEST(LmBenchTest, LazyFlushCollapsesMmapLatency) {
  // §7: the 80x mmap() improvement. With a multi-hundred-page map the ratio is large.
  LmBenchParams p = QuickParams();
  p.mmap_pages = 512;
  p.mmap_iters = 4;
  System eager(MachineConfig::Ppc604(133), OptimizationConfig::Baseline());
  System lazy(MachineConfig::Ppc604(133), OptimizationConfig::OnlyLazyFlush(20));
  LmBench eager_suite(eager, p);
  LmBench lazy_suite(lazy, p);
  const double eager_us = eager_suite.MmapLatencyUs();
  const double lazy_us = lazy_suite.MmapLatencyUs();
  EXPECT_GT(eager_us / lazy_us, 15.0) << "eager=" << eager_us << " lazy=" << lazy_us;
}

TEST(LmBenchTest, MoreProcessesSlowTheSwitch) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  LmBenchParams p = QuickParams();
  p.ctxsw_working_set_kb = 16;
  LmBench suite(sys, p);
  const double two = suite.ContextSwitchUs(2);
  const double eight = suite.ContextSwitchUs(8);
  EXPECT_GT(eight, two * 0.8) << "8-process switching should not be faster than 2-process";
}

TEST(LmBenchTest, SuiteLeavesNoTasksBehind) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const uint32_t frames_before = kernel.allocator().FreeCount();
  {
    LmBench suite(sys, QuickParams());
    suite.RunAll();
  }
  EXPECT_EQ(kernel.TaskCount(), 0u);
  // Pipes keep their buffer frames (no close in the driver) and the page cache keeps file
  // pages, so allow those; but the bulk of memory must be back.
  EXPECT_GT(kernel.allocator().FreeCount(), frames_before / 2);
}

}  // namespace
}  // namespace ppcmm
