// HwCounters tests: interval diffing, derived rates.

#include <gtest/gtest.h>

#include "src/sim/hw_counters.h"

namespace ppcmm {
namespace {

TEST(HwCountersTest, DiffSubtractsEventCounts) {
  HwCounters earlier;
  earlier.cycles = 100;
  earlier.dtlb_misses = 5;
  earlier.htab_reloads = 3;
  HwCounters later = earlier;
  later.cycles = 400;
  later.dtlb_misses = 25;
  later.htab_reloads = 10;
  later.htab_evicts = 4;
  const HwCounters d = later.Diff(earlier);
  EXPECT_EQ(d.cycles, 300u);
  EXPECT_EQ(d.dtlb_misses, 20u);
  EXPECT_EQ(d.htab_reloads, 7u);
  EXPECT_EQ(d.htab_evicts, 4u);
}

TEST(HwCountersTest, DiffKeepsGaugeValue) {
  HwCounters earlier;
  earlier.kernel_tlb_highwater = 10;
  HwCounters later;
  later.kernel_tlb_highwater = 42;
  EXPECT_EQ(later.Diff(earlier).kernel_tlb_highwater, 42u);
}

TEST(HwCountersTest, RatesHandleZeroDenominators) {
  const HwCounters c;
  EXPECT_DOUBLE_EQ(c.DtlbMissRate(), 0.0);
  EXPECT_DOUBLE_EQ(c.HtabHitRate(), 0.0);
  EXPECT_DOUBLE_EQ(c.EvictToReloadRatio(), 0.0);
}

TEST(HwCountersTest, DerivedRates) {
  HwCounters c;
  c.dtlb_accesses = 200;
  c.dtlb_misses = 20;
  c.htab_searches = 100;
  c.htab_hits = 85;
  c.htab_reloads = 50;
  c.htab_evicts = 40;
  c.htab_zombie_overwrites = 5;
  EXPECT_DOUBLE_EQ(c.DtlbMissRate(), 0.1);
  EXPECT_DOUBLE_EQ(c.HtabHitRate(), 0.85);
  // Live evicts and zombie overwrites both count: the reload code can't tell them apart.
  EXPECT_DOUBLE_EQ(c.EvictToReloadRatio(), 0.9);
}

TEST(HwCountersTest, ToStringMentionsKeyFields) {
  HwCounters c;
  c.cycles = 123456;
  c.htab_evicts = 7;
  const std::string s = c.ToString();
  EXPECT_NE(s.find("cycles=123456"), std::string::npos);
  EXPECT_NE(s.find("htab_evicts=7"), std::string::npos);
}

// The X-macro field list must enumerate the struct exactly: the layout assert in the header
// catches added-but-unlisted fields at compile time, this catches listed-but-wrong walks.
TEST(HwCountersTest, FieldEnumerationCoversTheWholeStruct) {
  static_assert(HwCounters::kNumFields ==
                HwCounters::kNumCounterFields + HwCounters::kNumGaugeFields);
  static_assert(sizeof(HwCounters) == HwCounters::kNumFields * sizeof(uint64_t));

  HwCounters c;
  c.cycles = 1;
  c.kernel_tlb_highwater = 99;
  size_t fields = 0;
  size_t gauges = 0;
  bool saw_cycles = false;
  bool saw_highwater_as_gauge = false;
  c.ForEachField([&](const char* name, uint64_t value, bool is_gauge) {
    ++fields;
    gauges += is_gauge ? 1 : 0;
    if (std::string(name) == "cycles") {
      saw_cycles = true;
      EXPECT_EQ(value, 1u);
      EXPECT_FALSE(is_gauge);
    }
    if (std::string(name) == "kernel_tlb_highwater") {
      saw_highwater_as_gauge = is_gauge;
      EXPECT_EQ(value, 99u);
    }
  });
  EXPECT_EQ(fields, HwCounters::kNumFields);
  EXPECT_EQ(gauges, HwCounters::kNumGaugeFields);
  EXPECT_TRUE(saw_cycles);
  EXPECT_TRUE(saw_highwater_as_gauge);
}

TEST(HwCountersTest, ToStringListsEveryField) {
  const HwCounters c;
  const std::string s = c.ToString();
  c.ForEachField([&](const char* name, uint64_t, bool) {
    EXPECT_NE(s.find(std::string(name) + "="), std::string::npos) << name;
  });
}

}  // namespace
}  // namespace ppcmm
