// HwCounters tests: interval diffing, derived rates.

#include <gtest/gtest.h>

#include "src/sim/hw_counters.h"

namespace ppcmm {
namespace {

TEST(HwCountersTest, DiffSubtractsEventCounts) {
  HwCounters earlier;
  earlier.cycles = 100;
  earlier.dtlb_misses = 5;
  earlier.htab_reloads = 3;
  HwCounters later = earlier;
  later.cycles = 400;
  later.dtlb_misses = 25;
  later.htab_reloads = 10;
  later.htab_evicts = 4;
  const HwCounters d = later.Diff(earlier);
  EXPECT_EQ(d.cycles, 300u);
  EXPECT_EQ(d.dtlb_misses, 20u);
  EXPECT_EQ(d.htab_reloads, 7u);
  EXPECT_EQ(d.htab_evicts, 4u);
}

TEST(HwCountersTest, DiffKeepsGaugeValue) {
  HwCounters earlier;
  earlier.kernel_tlb_highwater = 10;
  HwCounters later;
  later.kernel_tlb_highwater = 42;
  EXPECT_EQ(later.Diff(earlier).kernel_tlb_highwater, 42u);
}

TEST(HwCountersTest, RatesHandleZeroDenominators) {
  const HwCounters c;
  EXPECT_DOUBLE_EQ(c.DtlbMissRate(), 0.0);
  EXPECT_DOUBLE_EQ(c.HtabHitRate(), 0.0);
  EXPECT_DOUBLE_EQ(c.EvictToReloadRatio(), 0.0);
}

TEST(HwCountersTest, DerivedRates) {
  HwCounters c;
  c.dtlb_accesses = 200;
  c.dtlb_misses = 20;
  c.htab_searches = 100;
  c.htab_hits = 85;
  c.htab_reloads = 50;
  c.htab_evicts = 40;
  c.htab_zombie_overwrites = 5;
  EXPECT_DOUBLE_EQ(c.DtlbMissRate(), 0.1);
  EXPECT_DOUBLE_EQ(c.HtabHitRate(), 0.85);
  // Live evicts and zombie overwrites both count: the reload code can't tell them apart.
  EXPECT_DOUBLE_EQ(c.EvictToReloadRatio(), 0.9);
}

TEST(HwCountersTest, ToStringMentionsKeyFields) {
  HwCounters c;
  c.cycles = 123456;
  c.htab_evicts = 7;
  const std::string s = c.ToString();
  EXPECT_NE(s.find("cycles=123456"), std::string::npos);
  EXPECT_NE(s.find("evicts=7"), std::string::npos);
}

}  // namespace
}  // namespace ppcmm
