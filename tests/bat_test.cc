// BAT register tests: block matching, privilege, alignment validation (§3, §5.1).

#include <gtest/gtest.h>

#include "src/mmu/bat.h"
#include "src/sim/check.h"

namespace ppcmm {
namespace {

BatEntry KernelBat(uint32_t block = 2 * 1024 * 1024) {
  return BatEntry{.valid = true,
                  .eff_base = 0xC0000000,
                  .block_bytes = block,
                  .phys_base = 0,
                  .cache_inhibited = false,
                  .supervisor_only = true};
}

TEST(BatTest, TranslatesWithinBlock) {
  BatArray bats;
  bats.Set(0, KernelBat());
  const auto hit = bats.Translate(EffAddr(0xC0012345), /*supervisor=*/true);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pa.value, 0x00012345u);
  EXPECT_FALSE(hit->cache_inhibited);
}

TEST(BatTest, MissesOutsideBlock) {
  BatArray bats;
  bats.Set(0, KernelBat(/*block=*/2 * 1024 * 1024));
  EXPECT_FALSE(bats.Translate(EffAddr(0xC0200000), true).has_value());  // just past 2 MB
  EXPECT_FALSE(bats.Translate(EffAddr(0xBFFFFFFF), true).has_value());
  EXPECT_TRUE(bats.Translate(EffAddr(0xC01FFFFF), true).has_value());  // last byte
}

TEST(BatTest, SupervisorOnlyBlocksUserAccess) {
  BatArray bats;
  bats.Set(0, KernelBat());
  EXPECT_FALSE(bats.Translate(EffAddr(0xC0001000), /*supervisor=*/false).has_value());
  EXPECT_TRUE(bats.Translate(EffAddr(0xC0001000), /*supervisor=*/true).has_value());
}

TEST(BatTest, UserVisibleEntryMatchesBothPrivileges) {
  BatArray bats;
  BatEntry fb = KernelBat();
  fb.eff_base = 0x80000000;  // a frame-buffer-style user mapping (§5.1 discussion)
  fb.phys_base = 0x01000000;
  fb.supervisor_only = false;
  fb.cache_inhibited = true;
  bats.Set(1, fb);
  const auto hit = bats.Translate(EffAddr(0x80000040), /*supervisor=*/false);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pa.value, 0x01000040u);
  EXPECT_TRUE(hit->cache_inhibited);
}

TEST(BatTest, RejectsBadBlocks) {
  BatArray bats;
  BatEntry bad = KernelBat();
  bad.block_bytes = 64 * 1024;  // below the 128 KB architectural minimum
  EXPECT_THROW(bats.Set(0, bad), CheckFailure);
  bad = KernelBat();
  bad.block_bytes = 3 * 1024 * 1024;  // not a power of two
  EXPECT_THROW(bats.Set(0, bad), CheckFailure);
  bad = KernelBat();
  bad.eff_base = 0xC0010000;  // unaligned to a 2 MB block
  EXPECT_THROW(bats.Set(0, bad), CheckFailure);
  EXPECT_THROW(bats.Set(7, KernelBat()), CheckFailure);  // only four registers per side
}

TEST(BatTest, ClearAndCount) {
  BatArray bats;
  EXPECT_EQ(bats.ValidCount(), 0u);
  bats.Set(0, KernelBat());
  BatEntry io = KernelBat();
  io.eff_base = 0xE0000000;  // non-overlapping second entry
  bats.Set(2, io);
  EXPECT_EQ(bats.ValidCount(), 2u);
  bats.Clear(0);
  EXPECT_EQ(bats.ValidCount(), 1u);
  EXPECT_FALSE(bats.Translate(EffAddr(0xC0000000), true).has_value());
  EXPECT_TRUE(bats.Translate(EffAddr(0xE0000000), true).has_value());
}

TEST(BatTest, FirstMatchingEntryWins) {
  BatArray bats;
  bats.Set(0, KernelBat());
  BatEntry other = KernelBat();
  other.phys_base = 0x00800000;
  bats.Set(1, other);  // overlapping entry later in the array
  const auto hit = bats.Translate(EffAddr(0xC0000100), true);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pa.value, 0x00000100u);
}

TEST(BatTest, MinimumBlockSize) {
  BatArray bats;
  BatEntry small = KernelBat(kMinBatBlock);
  EXPECT_NO_THROW(bats.Set(0, small));
  EXPECT_TRUE(bats.Translate(EffAddr(0xC001FFFF), true).has_value());
  EXPECT_FALSE(bats.Translate(EffAddr(0xC0020000), true).has_value());
}

}  // namespace
}  // namespace ppcmm
