// Throughput smoke: the host fast path engages on realistic workloads (high hit rate) while
// staying simulation-invisible. The wall-clock speedup itself is measured by
// bench/host_throughput (host timing is too noisy for a CI assertion).

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/workloads/kernel_compile.h"

namespace ppcmm {
namespace {

TEST(HostThroughputTest, FastPathCarriesTheKernelCompile) {
  System sys(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
  ASSERT_TRUE(sys.mmu().fast_path_enabled());  // on by default (PPCMM_FAST_PATH unset)
  KernelCompileConfig cc;
  cc.compilation_units = 4;
  RunKernelCompile(sys, cc);

  const uint64_t hits = sys.mmu().fast_path_hits();
  const uint64_t misses = sys.mmu().fast_path_misses();
  ASSERT_GT(hits + misses, 10000u) << "workload too small to be a meaningful smoke";
  const double hit_rate = static_cast<double>(hits) / static_cast<double>(hits + misses);
  EXPECT_GT(hit_rate, 0.80) << hits << " hits / " << misses << " misses";
}

TEST(HostThroughputTest, FastPathIsSimulationInvisibleOnTheSmokeWorkload) {
  auto cycles = [](bool fast) {
    System sys(MachineConfig::Ppc603(133), OptimizationConfig::Baseline());
    sys.mmu().SetFastPathEnabled(fast);
    KernelCompileConfig cc;
    cc.compilation_units = 1;
    RunKernelCompile(sys, cc);
    return sys.counters().cycles;
  };
  EXPECT_EQ(cycles(false), cycles(true));
}

}  // namespace
}  // namespace ppcmm
