// MetricsRegistry tests: snapshot coverage across all four name families, diff semantics,
// and JSON/CSV round-trips.

#include <gtest/gtest.h>

#include <string>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/obs/metrics.h"

namespace ppcmm {
namespace {

// A small deterministic workload that touches every instrumented path family.
TaskId RunWorkload(System& sys) {
  Kernel& kernel = sys.kernel();
  const TaskId a = kernel.CreateTask("a");
  const TaskId b = kernel.CreateTask("b");
  kernel.Exec(a, ExecImage{.text_pages = 4, .data_pages = 64, .stack_pages = 4});
  kernel.Exec(b, ExecImage{.text_pages = 4, .data_pages = 64, .stack_pages = 4});
  kernel.SwitchTo(a);
  for (uint32_t i = 0; i < 16; ++i) {
    kernel.UserTouch(EffAddr(kUserDataBase + i * kPageSize), AccessKind::kStore);
  }
  kernel.SwitchTo(b);
  kernel.UserTouch(EffAddr(kUserDataBase), AccessKind::kStore);
  kernel.SwitchTo(a);
  return a;
}

TEST(MetricsTest, SnapshotCoversAllNameFamilies) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  sys.machine().probes().SetEnabled(true);
  const TaskId a = RunWorkload(sys);

  const MetricsRegistry registry(sys);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.cycle, 0u);

  // hw.*: every X-macro field appears, counters and gauges filed correctly.
  const uint64_t* cycles = snap.FindCounter("hw.cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_EQ(*cycles, snap.cycle);
  EXPECT_NE(snap.FindCounter("hw.page_faults"), nullptr);
  EXPECT_NE(snap.FindGauge("hw.kernel_tlb_highwater"), nullptr);
  EXPECT_EQ(snap.FindCounter("hw.kernel_tlb_highwater"), nullptr);

  // task.*: attribution for the task that took the faults.
  const std::string task_prefix = "task." + std::to_string(a.value) + ".";
  const uint64_t* faults = snap.FindCounter(task_prefix + "page_faults");
  ASSERT_NE(faults, nullptr);
  EXPECT_GT(*faults, 0u);
  const uint64_t* switches = snap.FindCounter(task_prefix + "switches_in");
  ASSERT_NE(switches, nullptr);
  EXPECT_EQ(*switches, 2u);

  // sys.*: derived gauges.
  const double* utilization = snap.FindGauge("sys.htab_utilization");
  ASSERT_NE(utilization, nullptr);
  EXPECT_GT(*utilization, 0.0);
  EXPECT_NE(snap.FindGauge("sys.tlb_kernel_share"), nullptr);
  EXPECT_NE(snap.FindGauge("sys.htab_zombies"), nullptr);

  // lat.*: the page-fault probe recorded, and its percentiles are ordered.
  const uint64_t* fault_count = snap.FindCounter("lat.page_fault.count");
  ASSERT_NE(fault_count, nullptr);
  EXPECT_GT(*fault_count, 0u);
  const double* p50 = snap.FindGauge("lat.page_fault.p50");
  const double* p99 = snap.FindGauge("lat.page_fault.p99");
  const double* max = snap.FindGauge("lat.page_fault.max");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p99, nullptr);
  ASSERT_NE(max, nullptr);
  EXPECT_GT(*p50, 0.0);
  EXPECT_LE(*p50, *p99);
  EXPECT_LE(*p99, *max);
}

TEST(MetricsTest, DiffSubtractsCountersKeepsGauges) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  const MetricsRegistry registry(sys);
  const MetricsSnapshot before = registry.Snapshot();
  RunWorkload(sys);
  const MetricsSnapshot after = registry.Snapshot();
  const MetricsSnapshot delta = after.Diff(before);

  EXPECT_EQ(delta.cycle, after.cycle - before.cycle);
  const uint64_t* d_cycles = delta.FindCounter("hw.cycles");
  ASSERT_NE(d_cycles, nullptr);
  EXPECT_EQ(*d_cycles, delta.cycle);
  // A counter absent in the earlier snapshot (a task born inside the interval) keeps its
  // full value.
  const uint64_t* born = delta.FindCounter("task.1.switches_in");
  ASSERT_NE(born, nullptr);
  const uint64_t* after_val = after.FindCounter("task.1.switches_in");
  ASSERT_NE(after_val, nullptr);
  EXPECT_EQ(*born, *after_val);
  // Gauges keep the later snapshot's value.
  const double* util = delta.FindGauge("sys.htab_utilization");
  ASSERT_NE(util, nullptr);
  EXPECT_DOUBLE_EQ(*util, *after.FindGauge("sys.htab_utilization"));
}

TEST(MetricsTest, JsonRoundTrips) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  sys.machine().probes().SetEnabled(true);
  RunWorkload(sys);
  const MetricsSnapshot snap = MetricsRegistry(sys).Snapshot();

  std::string error;
  const auto parsed = JsonValue::Parse(snap.ToJson().Serialize(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_DOUBLE_EQ(parsed->Find("cycle")->AsNumber(), static_cast<double>(snap.cycle));
  const JsonValue* counters = parsed->Find("counters");
  const JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(counters->Size(), snap.counters.size());
  EXPECT_EQ(gauges->Size(), snap.gauges.size());
  EXPECT_DOUBLE_EQ(counters->Find("hw.cycles")->AsNumber(),
                   static_cast<double>(snap.cycle));
}

TEST(MetricsTest, CsvHasOneRowPerMetric) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  RunWorkload(sys);
  const MetricsSnapshot snap = MetricsRegistry(sys).Snapshot();
  const std::string csv = snap.ToCsv();
  EXPECT_EQ(csv.rfind("metric,value\n", 0), 0u);
  size_t rows = 0;
  for (const char c : csv) {
    rows += c == '\n' ? 1 : 0;
  }
  // Header + cycle row + one row per metric.
  EXPECT_EQ(rows, 2 + snap.counters.size() + snap.gauges.size());
  EXPECT_NE(csv.find("hw.cycles,"), std::string::npos);
  EXPECT_NE(csv.find("sys.htab_utilization,"), std::string::npos);
}

}  // namespace
}  // namespace ppcmm
