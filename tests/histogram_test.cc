// LatencyHistogram tests: log2 bucketing edges, percentile math at bucket boundaries,
// clamping to the observed max, merge, and JSON round-trip.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/sim/histogram.h"
#include "src/obs/json.h"

namespace ppcmm {
namespace {

TEST(HistogramTest, BucketEdges) {
  // Bucket 0 holds the value 0; bucket k >= 1 holds [2^(k-1), 2^k - 1].
  static_assert(LatencyHistogram::BucketOf(0) == 0);
  static_assert(LatencyHistogram::BucketOf(1) == 1);
  static_assert(LatencyHistogram::BucketOf(2) == 2);
  static_assert(LatencyHistogram::BucketOf(3) == 2);
  static_assert(LatencyHistogram::BucketOf(4) == 3);
  static_assert(LatencyHistogram::BucketOf(7) == 3);
  static_assert(LatencyHistogram::BucketOf(8) == 4);
  static_assert(LatencyHistogram::BucketLowerEdge(0) == 0);
  static_assert(LatencyHistogram::BucketUpperEdge(0) == 0);
  static_assert(LatencyHistogram::BucketLowerEdge(3) == 4);
  static_assert(LatencyHistogram::BucketUpperEdge(3) == 7);
  // Every value lands inside its bucket's [lower, upper] range.
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{255},
                     uint64_t{256}, uint64_t{1} << 40, ~uint64_t{0}}) {
    const uint32_t b = LatencyHistogram::BucketOf(v);
    EXPECT_GE(v, LatencyHistogram::BucketLowerEdge(b)) << v;
    EXPECT_LE(v, LatencyHistogram::BucketUpperEdge(b)) << v;
  }
  // The last bucket is open-ended: enormous values don't fall off the array.
  EXPECT_EQ(LatencyHistogram::BucketOf(~uint64_t{0}), LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::BucketUpperEdge(LatencyHistogram::kBuckets - 1), ~uint64_t{0});
}

TEST(HistogramTest, EmptyHistogram) {
  const LatencyHistogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(1.0), 0u);
}

TEST(HistogramTest, BasicStats) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.TotalCount(), 3u);
  EXPECT_EQ(h.Sum(), 60u);
  EXPECT_EQ(h.Min(), 10u);
  EXPECT_EQ(h.Max(), 30u);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, PercentileAtBucketEdges) {
  LatencyHistogram h;
  // 1 -> bucket 1 [1,1]; 2,3 -> bucket 2 [2,3]; 4 -> bucket 3 [4,7].
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(4);
  // rank(0.25) = 1 -> first sample -> bucket 1's upper edge.
  EXPECT_EQ(h.Percentile(0.25), 1u);
  // rank(0.5) = 2 -> bucket 2, upper edge 3.
  EXPECT_EQ(h.Percentile(0.5), 3u);
  // rank(0.75) = 3 -> still bucket 2.
  EXPECT_EQ(h.Percentile(0.75), 3u);
  // rank(1.0) = 4 -> bucket 3's upper edge is 7 but clamps to the observed max.
  EXPECT_EQ(h.Percentile(1.0), 4u);
  EXPECT_EQ(h.Percentile(1.0), h.Max());
  // Out-of-range p clamps.
  EXPECT_EQ(h.Percentile(-1.0), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(2.0), h.Percentile(1.0));
}

TEST(HistogramTest, PercentileOfZeros) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  EXPECT_EQ(h.CountInBucket(0), 2u);
}

TEST(HistogramTest, PercentileClampsToObservedMax) {
  LatencyHistogram h;
  h.Record(1000);  // bucket upper edge is 1023
  EXPECT_EQ(h.Percentile(0.99), 1000u);
  EXPECT_EQ(h.Percentile(0.5), 1000u);
}

TEST(HistogramTest, SingleSampleAllPercentilesEqualIt) {
  LatencyHistogram h;
  h.Record(137);
  for (double p : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.Percentile(p), 137u) << p;
  }
}

TEST(HistogramTest, MergeCombines) {
  LatencyHistogram a;
  a.Record(5);
  a.Record(100);
  LatencyHistogram b;
  b.Record(2);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.TotalCount(), 4u);
  EXPECT_EQ(a.Sum(), 1107u);
  EXPECT_EQ(a.Min(), 2u);
  EXPECT_EQ(a.Max(), 1000u);
  // Merging an empty histogram changes nothing.
  a.Merge(LatencyHistogram{});
  EXPECT_EQ(a.TotalCount(), 4u);
  EXPECT_EQ(a.Min(), 2u);
}

TEST(HistogramTest, ClearResets) {
  LatencyHistogram h;
  h.Record(42);
  h.Clear();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.CountInBucket(LatencyHistogram::BucketOf(42)), 0u);
}

TEST(HistogramTest, JsonRoundTrips) {
  LatencyHistogram h;
  for (uint64_t v : {3u, 3u, 17u, 255u, 9000u}) {
    h.Record(v);
  }
  const std::string text = HistogramToJson(h).Serialize();
  std::string error;
  const auto parsed = JsonValue::Parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_DOUBLE_EQ(parsed->Find("count")->AsNumber(), 5.0);
  EXPECT_DOUBLE_EQ(parsed->Find("max")->AsNumber(), 9000.0);
  EXPECT_DOUBLE_EQ(parsed->Find("p50")->AsNumber(),
                   static_cast<double>(h.Percentile(0.5)));
  // Only non-empty buckets serialize, and their counts add up to the total.
  const JsonValue* buckets = parsed->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  double total = 0;
  for (const JsonValue& b : buckets->Items()) {
    EXPECT_GT(b.Find("count")->AsNumber(), 0.0);
    total += b.Find("count")->AsNumber();
  }
  EXPECT_DOUBLE_EQ(total, 5.0);
}

}  // namespace
}  // namespace ppcmm
