// File read/write path tests: unaligned offsets, page-crossing copies, write-then-read
// round trips — the CopyUserKernel edge cases the LmBench drivers never hit.

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/layout.h"

namespace ppcmm {
namespace {

TaskId SpawnStd(Kernel& kernel) {
  const TaskId id = kernel.CreateTask("t");
  kernel.Exec(id, ExecImage{.text_pages = 4, .data_pages = 64, .stack_pages = 2});
  kernel.SwitchTo(id);
  return id;
}

TEST(FileIoTest, WriteThenReadRoundTripsUserBytes) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel);
  const FileId file = kernel.page_cache().CreateFile(4);

  // Fill the user source buffer with a pattern through simulated memory.
  const EffAddr src(kUserDataBase);
  kernel.UserTouchRange(src, 2 * kPageSize, kPageSize, AccessKind::kStore);
  for (uint32_t page = 0; page < 2; ++page) {
    const uint32_t frame =
        kernel.task(t).mm->page_table->LookupQuiet(src + page * kPageSize)->frame;
    for (uint32_t off = 0; off < kPageSize; off += 4) {
      sys.machine().memory().Write32(PhysAddr::FromFrame(frame, off),
                                     0xAB000000 + page * kPageSize + off);
    }
  }

  kernel.FileWrite(file, 0, 2 * kPageSize, src);

  // Read back into a different buffer and verify every word.
  const EffAddr dst(kUserDataBase + 0x10000);
  kernel.FileRead(file, 0, 2 * kPageSize, dst);
  for (uint32_t page = 0; page < 2; ++page) {
    const uint32_t frame =
        kernel.task(t).mm->page_table->LookupQuiet(dst + page * kPageSize)->frame;
    for (uint32_t off = 0; off < kPageSize; off += 256) {
      ASSERT_EQ(sys.machine().memory().Read32(PhysAddr::FromFrame(frame, off)),
                0xAB000000 + page * kPageSize + off);
    }
  }
}

TEST(FileIoTest, UnalignedOffsetsCrossPageBoundaries) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel);
  const FileId file = kernel.page_cache().CreateFile(4);

  // Read 600 bytes starting 100 bytes before a page boundary, into a destination that
  // itself straddles a page boundary.
  const uint32_t file_offset = kPageSize - 100;
  const EffAddr dst(kUserDataBase + kPageSize - 200);
  kernel.FileRead(file, file_offset, 600, dst);

  // Expected contents: the page-cache synthesis formula at the right file page/offset.
  auto expected_byte = [&](uint32_t abs_offset) {
    const uint32_t page = abs_offset >> kPageShift;
    const uint32_t in_page = abs_offset & kPageOffsetMask;
    const uint32_t word = (file.value * 0x9E3779B9u) ^ (page << 16) ^ (in_page & ~3u);
    return static_cast<uint8_t>(word >> ((in_page & 3) * 8));
  };
  for (uint32_t i = 0; i < 600; i += 37) {
    const EffAddr ea = dst + i;
    const auto pte = kernel.task(t).mm->page_table->LookupQuiet(ea);
    ASSERT_TRUE(pte.has_value() && pte->present) << "at +" << i;
    const uint8_t got = sys.machine().memory().Read8(
        PhysAddr::FromFrame(pte->frame, ea.PageOffset()));
    ASSERT_EQ(got, expected_byte(file_offset + i)) << "at +" << i;
  }
}

TEST(FileIoTest, WritesPersistAcrossEviction) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  SpawnStd(kernel);
  const FileId file = kernel.page_cache().CreateFile(2);
  const EffAddr buf(kUserDataBase);
  kernel.UserTouch(buf, AccessKind::kStore);
  kernel.FileWrite(file, 64, 16, buf);
  // Note: eviction discards cached contents and refills from the synthetic "disk" — this
  // kernel has no writeback daemon, so dirty page-cache data lives only while cached. The
  // test documents that behaviour: after eviction the original synthesized bytes return.
  bool miss = false;
  const uint32_t frame_before = kernel.page_cache().GetPage(file, 0, &miss);
  EXPECT_FALSE(miss);
  kernel.page_cache().EvictFile(file);
  const uint32_t frame_after = kernel.page_cache().GetPage(file, 0, &miss);
  EXPECT_TRUE(miss);
  (void)frame_before;
  const uint32_t word = sys.machine().memory().Read32(PhysAddr::FromFrame(frame_after, 64));
  EXPECT_EQ(word, (file.value * 0x9E3779B9u) ^ 0u ^ 64u);
}

TEST(FileIoTest, PipeCopiesAtOddOffsets) {
  System sys(MachineConfig::Ppc604(185), OptimizationConfig::AllOptimizations());
  Kernel& kernel = sys.kernel();
  const TaskId t = SpawnStd(kernel);
  const uint32_t pipe = kernel.CreatePipe();
  // Source straddling a page boundary at a 4-byte-aligned but line-unaligned offset.
  const EffAddr src(kUserDataBase + kPageSize - 44);
  kernel.UserTouch(src, AccessKind::kStore);
  kernel.UserTouch(src + 80, AccessKind::kStore);
  const uint32_t f0 = kernel.task(t).mm->page_table->LookupQuiet(src)->frame;
  for (uint32_t i = 0; i < 44; i += 4) {
    sys.machine().memory().Write32(PhysAddr::FromFrame(f0, kPageSize - 44 + i), 0x51000000 + i);
  }
  const uint32_t f1 = kernel.task(t).mm->page_table->LookupQuiet(src + 44)->frame;
  for (uint32_t i = 44; i < 96; i += 4) {
    sys.machine().memory().Write32(PhysAddr::FromFrame(f1, i - 44), 0x51000000 + i);
  }

  EXPECT_EQ(kernel.PipeWrite(pipe, src, 96), 96u);
  const EffAddr dst(kUserDataBase + 0x20000 + 12);  // unaligned destination too
  EXPECT_EQ(kernel.PipeRead(pipe, dst, 96), 96u);
  for (uint32_t i = 0; i < 96; i += 4) {
    const EffAddr ea = dst + i;
    const uint32_t frame = kernel.task(t).mm->page_table->LookupQuiet(ea)->frame;
    ASSERT_EQ(sys.machine().memory().Read32(PhysAddr::FromFrame(frame, ea.PageOffset())),
              0x51000000 + i)
        << "at +" << i;
  }
}

}  // namespace
}  // namespace ppcmm
