// The batched-run contract: UserTouchRun / Mmu::AccessRun must be bit-identical to
// issuing the same accesses one UserTouch at a time — across every fuzz preset, every
// reload strategy, and with the host fast path on and off. The driven workload crosses
// every boundary a translation span must not batch across: demand faults mid-run, COW
// breaks mid-run, eager (tlbie) and lazy (VSID-bump) munmap flushes between runs, context
// switches, sub-page strides, and deferred first-store C-bit traps.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/kernel/layout.h"
#include "src/verify/fuzz/differential.h"

namespace ppcmm {
namespace {

void ExpectCountersIdentical(const HwCounters& single, const HwCounters& batched) {
  single.ForEachField([&](const char* name, uint64_t value_single, bool) {
    bool found = false;
    batched.ForEachField([&](const char* batched_name, uint64_t value_batched, bool) {
      if (std::string(name) == batched_name) {
        EXPECT_EQ(value_single, value_batched) << name;
        found = true;
      }
    });
    EXPECT_TRUE(found) << name;
  });
  EXPECT_EQ(single.cycles, batched.cycles);
}

// Every touch in the workload goes through here: as one page-grained run, or unrolled
// into the per-access calls the run claims to be equivalent to.
void Touch(Kernel& kernel, bool batched, EffAddr start, uint32_t stride, uint32_t count,
           AccessKind kind) {
  if (batched) {
    kernel.UserTouchRun(start, stride, count, kind);
  } else {
    for (uint32_t i = 0; i < count; ++i) {
      kernel.UserTouch(start + i * stride, kind);
    }
  }
}

void DriveWorkload(System& sys, bool batched) {
  Kernel& kernel = sys.kernel();
  auto touch = [&](EffAddr start, uint32_t stride, uint32_t count, AccessKind kind) {
    Touch(kernel, batched, start, stride, count, kind);
  };
  const TaskId a = kernel.CreateTask("a");
  kernel.Exec(a, ExecImage{.text_pages = 4, .data_pages = 64, .stack_pages = 4});
  kernel.SwitchTo(a);
  // Demand-fault 32 pages inside one sub-page-stride run.
  touch(EffAddr(kUserDataBase), 1024, 32 * 4, AccessKind::kStore);
  // Re-stream part of the resident set at cache-line stride (pure span replay).
  touch(EffAddr(kUserDataBase), 64, 8 * (kPageSize / 64), AccessKind::kLoad);
  const TaskId child = kernel.Fork(a);
  kernel.SwitchTo(child);
  // Loads memoize the read-only shared translations, then the store run COW-breaks every
  // page mid-run.
  touch(EffAddr(kUserDataBase), kPageSize, 16, AccessKind::kLoad);
  touch(EffAddr(kUserDataBase), kPageSize, 16, AccessKind::kStore);
  const uint32_t map = kernel.Mmap(30);
  touch(EffAddr::FromPage(map), 2048, 60, AccessKind::kStore);
  kernel.Munmap(map, 30);  // above the cutoff: lazy VSID-bump context flush
  const uint32_t map2 = kernel.Mmap(4);
  touch(EffAddr::FromPage(map2), kPageSize, 4, AccessKind::kStore);
  kernel.Munmap(map2, 4);  // below the cutoff: eager per-page tlbie flush
  // Post-flush re-touch: spans must not survive the generation bumps above.
  touch(EffAddr(kUserDataBase), kPageSize, 32, AccessKind::kLoad);
  kernel.SwitchTo(a);
  touch(EffAddr(kUserDataBase), 512, 16 * 8, AccessKind::kLoad);
  kernel.Exit(child);
  kernel.RunIdle(Cycles(20000));
}

// The reload-strategy axis, pinned the way RunDifferential pins it.
struct StrategyCase {
  const char* name;
  MachineConfig machine;
  bool direct_reload;
};

std::vector<StrategyCase> Strategies() {
  return {
      {"hw_walk", MachineConfig::Ppc604(185), false},
      {"sw_htab", MachineConfig::Ppc603(80), false},
      {"sw_direct", MachineConfig::Ppc603(80), true},
  };
}

TEST(BatchedRunTest, BitIdenticalAcrossPresetsStrategiesAndFastPath) {
  for (const FuzzPreset& preset : FuzzPresets()) {
    for (const StrategyCase& s : Strategies()) {
      OptimizationConfig config = preset.config;
      config.no_htab_direct_reload = s.direct_reload;
      for (const bool fast : {false, true}) {
        SCOPED_TRACE(preset.name + "/" + s.name + (fast ? "/fast" : "/slow"));
        System single(s.machine, config);
        single.mmu().SetFastPathEnabled(fast);
        DriveWorkload(single, /*batched=*/false);

        System batched(s.machine, config);
        batched.mmu().SetFastPathEnabled(fast);
        DriveWorkload(batched, /*batched=*/true);

        ExpectCountersIdentical(single.counters(), batched.counters());
        // Per-access calls never form spans; batched runs only form them on the fast path.
        EXPECT_EQ(single.mmu().span_accesses(), 0u);
        if (fast) {
          EXPECT_GT(batched.mmu().span_accesses(), 0u) << "spans never engaged";
        } else {
          EXPECT_EQ(batched.mmu().span_accesses(), 0u);
        }
      }
    }
  }
}

TEST(BatchedRunTest, AttributionSumsBitExactlyUnderSpans) {
  // CycleLedger conservation: with attribution on, batched and per-access runs charge the
  // identical total, and that total equals the machine's clock advance over the window.
  auto run = [](bool batched) {
    System sys(MachineConfig::Ppc604(133), OptimizationConfig::AllOptimizations());
    sys.machine().attr().SetEnabled(true);
    const uint64_t start = sys.machine().Now().value;
    DriveWorkload(sys, batched);
    const uint64_t elapsed = sys.machine().Now().value - start;
    uint64_t cell_sum = 0;
    for (const CycleLedger::Cell& cell : sys.machine().attr().Cells()) {
      cell_sum += cell.cycles;
    }
    return std::tuple<uint64_t, uint64_t, uint64_t>(
        sys.machine().attr().TotalAttributed(), cell_sum, elapsed);
  };
  const auto [total_single, cells_single, elapsed_single] = run(false);
  const auto [total_batched, cells_batched, elapsed_batched] = run(true);
  EXPECT_EQ(total_single, total_batched);
  EXPECT_EQ(cells_batched, total_batched);
  EXPECT_EQ(cells_single, total_single);
  EXPECT_EQ(elapsed_single, elapsed_batched);
  EXPECT_EQ(total_batched, elapsed_batched);
}

TEST(BatchedRunTest, SpansCarryMostOfASteadyStateStream) {
  // The perf claim behind the API: once a working set is resident, nearly every access in
  // a page-grained run rides a span instead of a per-access memo probe.
  System sys(MachineConfig::Ppc603(133), OptimizationConfig::OnlyDirectReload());
  sys.mmu().SetFastPathEnabled(true);
  Kernel& kernel = sys.kernel();
  const TaskId t = kernel.CreateTask("t");
  kernel.Exec(t, ExecImage{.text_pages = 2, .data_pages = 40, .stack_pages = 2});
  kernel.SwitchTo(t);
  kernel.UserTouchRun(EffAddr(kUserDataBase), 64, 32 * (kPageSize / 64),
                      AccessKind::kStore);  // fault in
  const uint64_t warm_spans = sys.mmu().span_accesses();
  for (int pass = 0; pass < 4; ++pass) {
    kernel.UserTouchRun(EffAddr(kUserDataBase), 64, 32 * (kPageSize / 64),
                        AccessKind::kLoad);
  }
  const uint64_t stream_accesses = 4ull * 32 * (kPageSize / 64);
  const uint64_t stream_spans = sys.mmu().span_accesses() - warm_spans;
  EXPECT_GT(stream_spans, stream_accesses * 95 / 100)
      << stream_spans << " of " << stream_accesses << " accesses rode spans";
  // And each span covers many accesses: the whole point of translating once per page.
  EXPECT_GT(sys.mmu().span_accesses() / sys.mmu().span_runs(), 16u);
}

}  // namespace
}  // namespace ppcmm
